// Package dnssim is a miniature DNS record store used by the §4.4
// hosting-provider identification: the paper determines which provider
// hosts an artist site by whether the site is a subdomain of the provider
// or by where the domain's DNS records point.
package dnssim

import (
	"fmt"
	"strings"
)

// RecordType is the subset of DNS record types the identification needs.
type RecordType int

const (
	// A maps a name to an IPv4 address.
	A RecordType = iota
	// CNAME aliases a name to another name.
	CNAME
)

// Record is one DNS resource record.
type Record struct {
	Type  RecordType
	Value string
}

// Zone is a flat record store. The zero value is not usable; use NewZone.
type Zone struct {
	records map[string][]Record
}

// NewZone returns an empty zone.
func NewZone() *Zone {
	return &Zone{records: make(map[string][]Record)}
}

// SetA adds an A record for name.
func (z *Zone) SetA(name, ip string) {
	key := strings.ToLower(name)
	z.records[key] = append(z.records[key], Record{Type: A, Value: ip})
}

// SetCNAME adds a CNAME record for name.
func (z *Zone) SetCNAME(name, target string) {
	key := strings.ToLower(name)
	z.records[key] = append(z.records[key], Record{Type: CNAME, Value: strings.ToLower(target)})
}

// Lookup returns the records for name.
func (z *Zone) Lookup(name string) []Record {
	return z.records[strings.ToLower(name)]
}

// ResolveA follows CNAME chains (up to 8 hops) and returns the terminal
// A-record addresses for name.
func (z *Zone) ResolveA(name string) ([]string, error) {
	cur := strings.ToLower(name)
	for hop := 0; hop < 8; hop++ {
		recs := z.Lookup(cur)
		if len(recs) == 0 {
			return nil, fmt.Errorf("dnssim: NXDOMAIN %s", name)
		}
		var ips []string
		var next string
		for _, r := range recs {
			switch r.Type {
			case A:
				ips = append(ips, r.Value)
			case CNAME:
				next = r.Value
			}
		}
		if len(ips) > 0 {
			return ips, nil
		}
		if next == "" {
			return nil, fmt.Errorf("dnssim: no address for %s", name)
		}
		cur = next
	}
	return nil, fmt.Errorf("dnssim: CNAME chain too long for %s", name)
}

// CNAMETarget returns the terminal CNAME target of name, if any.
func (z *Zone) CNAMETarget(name string) (string, bool) {
	cur := strings.ToLower(name)
	var last string
	for hop := 0; hop < 8; hop++ {
		var next string
		for _, r := range z.Lookup(cur) {
			if r.Type == CNAME {
				next = r.Value
			}
		}
		if next == "" {
			break
		}
		last = next
		cur = next
	}
	return last, last != ""
}

// IsSubdomainOf reports whether name is a (strict) subdomain of apex.
func IsSubdomainOf(name, apex string) bool {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	apex = strings.ToLower(strings.TrimSuffix(apex, "."))
	return name != apex && strings.HasSuffix(name, "."+apex)
}
