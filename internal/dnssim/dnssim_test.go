package dnssim

import "testing"

func TestResolveA(t *testing.T) {
	z := NewZone()
	z.SetA("direct.test", "192.0.2.1")
	ips, err := z.ResolveA("direct.test")
	if err != nil || len(ips) != 1 || ips[0] != "192.0.2.1" {
		t.Fatalf("ResolveA = %v, %v", ips, err)
	}
}

func TestResolveChain(t *testing.T) {
	z := NewZone()
	z.SetCNAME("www.site.test", "edge.provider.test")
	z.SetCNAME("edge.provider.test", "lb.provider.test")
	z.SetA("lb.provider.test", "198.18.0.1")
	ips, err := z.ResolveA("www.site.test")
	if err != nil || len(ips) != 1 || ips[0] != "198.18.0.1" {
		t.Fatalf("chained ResolveA = %v, %v", ips, err)
	}
	target, ok := z.CNAMETarget("www.site.test")
	if !ok || target != "lb.provider.test" {
		t.Fatalf("CNAMETarget = %q, %v", target, ok)
	}
}

func TestResolveNXDomain(t *testing.T) {
	z := NewZone()
	if _, err := z.ResolveA("missing.test"); err == nil {
		t.Fatal("NXDOMAIN must error")
	}
}

func TestCNAMELoop(t *testing.T) {
	z := NewZone()
	z.SetCNAME("a.test", "b.test")
	z.SetCNAME("b.test", "a.test")
	if _, err := z.ResolveA("a.test"); err == nil {
		t.Fatal("CNAME loop must error, not hang")
	}
}

func TestCNAMEWithoutTerminal(t *testing.T) {
	z := NewZone()
	z.SetCNAME("x.test", "gone.test")
	if _, err := z.ResolveA("x.test"); err == nil {
		t.Fatal("dangling CNAME must error")
	}
}

func TestCaseInsensitive(t *testing.T) {
	z := NewZone()
	z.SetA("MiXeD.test", "192.0.2.9")
	if _, err := z.ResolveA("mixed.TEST"); err != nil {
		t.Fatal("lookups must be case-insensitive")
	}
}

func TestIsSubdomainOf(t *testing.T) {
	cases := []struct {
		name, apex string
		want       bool
	}{
		{"alice.carbonmade.com", "carbonmade.com", true},
		{"carbonmade.com", "carbonmade.com", false},
		{"deep.sub.wixsite.com", "wixsite.com", true},
		{"notcarbonmade.com", "carbonmade.com", false},
		{"evil-carbonmade.com", "carbonmade.com", false},
		{"Alice.Carbonmade.COM", "carbonmade.com", true},
	}
	for _, c := range cases {
		if got := IsSubdomainOf(c.name, c.apex); got != c.want {
			t.Errorf("IsSubdomainOf(%q, %q) = %v, want %v", c.name, c.apex, got, c.want)
		}
	}
}

func TestCNAMETargetAbsent(t *testing.T) {
	z := NewZone()
	z.SetA("plain.test", "192.0.2.2")
	if _, ok := z.CNAMETarget("plain.test"); ok {
		t.Fatal("A-only name has no CNAME target")
	}
}
