// Package measure implements the paper's §5 experiments: do AI crawlers
// respect robots.txt? It stands up the two instrumented measurement sites
// (wildcard-disallow and per-agent-disallow), drives the crawler fleet at
// them, and classifies each crawler from the *server logs alone* — the
// same evidence the paper's passive and active measurements rely on.
package measure

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/agents"
	"repro/internal/crawler"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/useragent"
	"repro/internal/webserver"
)

// measureFarmIP hosts the measurement sites' shared virtual-host farm.
const measureFarmIP = "203.0.113.49"

// Verdict classifies a crawler's observed robots.txt behaviour.
type Verdict int

const (
	// NotObserved: the crawler never visited ('-' in Table 1).
	NotObserved Verdict = iota
	// Respected: fetched robots.txt and fetched no disallowed content.
	Respected
	// FetchedIgnored: fetched robots.txt but crawled anyway (Bytespider).
	FetchedIgnored
	// NotFetched: crawled content without ever requesting robots.txt.
	NotFetched
	// BuggyRobotsFetch: requested a malformed robots.txt URL and crawled.
	BuggyRobotsFetch
	// IntermittentRespect: sometimes fetched (and then honored)
	// robots.txt, sometimes crawled without it.
	IntermittentRespect
	// Anomalous: a single content visit without a robots.txt fetch, too
	// little evidence to classify (ChatGPT-User's passive behaviour,
	// §5.2.1).
	Anomalous
)

// String names the verdict in the paper's terms.
func (v Verdict) String() string {
	switch v {
	case NotObserved:
		return "not observed"
	case Respected:
		return "respects robots.txt"
	case FetchedIgnored:
		return "fetches but ignores robots.txt"
	case NotFetched:
		return "does not fetch robots.txt"
	case BuggyRobotsFetch:
		return "incorrectly fetches robots.txt"
	case IntermittentRespect:
		return "fetches robots.txt inconsistently"
	case Anomalous:
		return "anomalous single visit"
	default:
		return "unknown"
	}
}

// Respects converts a verdict to Table 1's tri-state "Respect in
// Practice" column.
func (v Verdict) Respects() agents.TriState {
	switch v {
	case Respected:
		return agents.Yes
	case FetchedIgnored, NotFetched, BuggyRobotsFetch:
		return agents.No
	default:
		return agents.Unknown
	}
}

// PassiveResult is the outcome of the six-month passive study (§5.2.1).
type PassiveResult struct {
	// Verdicts maps product tokens to their observed behaviour.
	Verdicts map[string]Verdict
	// IPVerified maps tokens to whether the observed source address falls
	// in the company's simulated range (footnote 5's verification).
	IPVerified map[string]bool
	// Visitors lists tokens that visited, sorted.
	Visitors []string
}

// passiveVisitors reproduces §5.2.1: the nine crawlers that visited the
// measurement sites unprompted, with their observed behaviours.
var passiveVisitors = []struct {
	token    string
	behavior crawler.Behavior
}{
	{"Amazonbot", crawler.Compliant},
	{"Applebot", crawler.Compliant},
	{"Bytespider", crawler.FetchIgnore},
	{"CCBot", crawler.Compliant},
	{"ClaudeBot", crawler.Compliant},
	{"GPTBot", crawler.Compliant},
	{"Meta-ExternalAgent", crawler.Compliant},
	{"OAI-SearchBot", crawler.Compliant},
}

// RunPassive stands up both measurement sites, lets the fleet visit, and
// classifies every observed crawler from the combined server logs. It
// honors ctx cancellation between crawl waves.
func RunPassive(ctx context.Context, seed int64) (*PassiveResult, error) {
	nw := netsim.New()
	farm, err := webserver.NewFarm(nw, measureFarmIP)
	if err != nil {
		return nil, err
	}
	defer farm.Close()
	wild, err := farm.StartSite(webserver.WildcardDisallowSite("site-a.test", "203.0.113.50"))
	if err != nil {
		return nil, err
	}
	perAgent, err := farm.StartSite(webserver.PerAgentDisallowSite(
		"site-b.test", "203.0.113.51", agents.Tokens()))
	if err != nil {
		return nil, err
	}

	for _, visitor := range passiveVisitors {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a, ok := agents.ByToken(visitor.token)
		if !ok {
			return nil, fmt.Errorf("measure: unknown visitor %s", visitor.token)
		}
		cr, err := crawler.New(nw, crawler.Profile{
			Token:    a.UserAgent,
			SourceIP: a.IPPrefix + ".10",
			Behavior: visitor.behavior,
		})
		if err != nil {
			return nil, err
		}
		for _, site := range []*webserver.Site{wild, perAgent} {
			if _, err := cr.Crawl(ctx, site.URL()); err != nil {
				return nil, err
			}
		}
	}
	// ChatGPT-User's anomaly: one content visit with no robots.txt fetch,
	// unprompted (§5.2.1: "it is unclear why this crawler visited").
	cgu, _ := agents.ByToken("ChatGPT-User")
	anom, err := crawler.New(nw, crawler.Profile{
		Token:    cgu.UserAgent,
		SourceIP: cgu.IPPrefix + ".10",
		Behavior: crawler.NoFetch,
	})
	if err != nil {
		return nil, err
	}
	if _, _, err := anom.FetchOne(ctx, wild.URL()+"/about.html"); err != nil {
		return nil, err
	}

	log := append(wild.Log(), perAgent.Log()...)
	res := &PassiveResult{
		Verdicts:   Classify(log),
		IPVerified: make(map[string]bool),
	}
	for tok := range res.Verdicts {
		res.Visitors = append(res.Visitors, tok)
		if a, ok := agents.ByToken(tok); ok && a.IPPrefix != "" {
			verified := true
			for _, rec := range log {
				if ProductToken(rec.UserAgent) == tok &&
					!strings.HasPrefix(rec.RemoteIP, a.IPPrefix+".") {
					verified = false
				}
			}
			res.IPVerified[tok] = verified
		}
	}
	sort.Strings(res.Visitors)
	return res, nil
}

// Evidence tallies the robots.txt-relevant requests one product token
// made against a site whose policy restricts it. It is the unit the
// verdict classification consumes; counts from disjoint log windows (or
// disjoint sites) merge by addition, so fleet-scale simulations can
// shard log analysis and still classify exactly as the paper does.
type Evidence struct {
	// RobotsOK counts proper /robots.txt requests.
	RobotsOK int
	// RobotsBroken counts malformed robots-like requests (BuggyFetch).
	RobotsBroken int
	// Content counts content fetches the policy did not permit.
	Content int
}

// Merge returns the combined evidence of two disjoint observations.
func (e Evidence) Merge(o Evidence) Evidence {
	return Evidence{
		RobotsOK:     e.RobotsOK + o.RobotsOK,
		RobotsBroken: e.RobotsBroken + o.RobotsBroken,
		Content:      e.Content + o.Content,
	}
}

// Observed reports whether the token appeared in the logs at all.
func (e Evidence) Observed() bool {
	return e.RobotsOK > 0 || e.RobotsBroken > 0 || e.Content > 0
}

// ClassifyEvidence folds accumulated evidence into the paper's Table 1
// verdict classes (§5.2.1).
func ClassifyEvidence(ev Evidence) Verdict {
	switch {
	case ev.RobotsBroken > 0 && ev.Content > 0:
		return BuggyRobotsFetch
	case ev.RobotsOK > 0 && ev.Content == 0:
		return Respected
	case ev.RobotsOK > 0 && ev.Content > 0:
		return FetchedIgnored
	case ev.Content == 1:
		return Anomalous
	case ev.Content > 1:
		return NotFetched
	default:
		return NotObserved
	}
}

// Classify derives a verdict per product token from server log records.
// Both measurement sites disallow every AI agent, so any content fetch is
// a violation.
func Classify(log []webserver.Record) map[string]Verdict {
	byToken := make(map[string]Evidence)
	for _, rec := range log {
		tok := ProductToken(rec.UserAgent)
		if tok == "" {
			continue
		}
		ev := byToken[tok]
		switch {
		case rec.Path == "/robots.txt":
			ev.RobotsOK++
		case strings.HasPrefix(rec.Path, "/robots.txt"):
			ev.RobotsBroken++
		default:
			ev.Content++
		}
		byToken[tok] = ev
	}
	out := make(map[string]Verdict, len(byToken))
	for tok, ev := range byToken {
		out[tok] = ClassifyEvidence(ev)
	}
	return out
}

// ProductToken extracts the robots.txt product token from a full
// User-Agent header.
func ProductToken(ua string) string {
	// Full UAs look like "Mozilla/5.0 …; compatible; GPTBot/1.1"; take the
	// last token-ish segment.
	if i := strings.LastIndex(ua, "; "); i >= 0 {
		ua = ua[i+2:]
	}
	return useragent.ExtractToken(ua)
}

// Table1Row is one line of the regenerated Table 1.
type Table1Row struct {
	Agent    agents.Agent
	Measured agents.TriState
	Verdict  Verdict
}

// Table1Rows merges the registry's documentation columns with measured
// passive verdicts to regenerate Table 1's "Respect in Practice" column.
func Table1Rows(passive *PassiveResult) []Table1Row {
	rows := make([]Table1Row, 0, len(agents.Table1))
	for _, a := range agents.Table1 {
		v, ok := passive.Verdicts[a.UserAgent]
		if !ok {
			v = NotObserved
		}
		// The ChatGPT-User anomaly resolves through the active study: its
		// user-triggered behaviour respects robots.txt (§5.2.2), which is
		// what Table 1 reports.
		measured := v.Respects()
		if v == Anomalous && a.UserAgent == "ChatGPT-User" {
			measured = agents.Yes
		}
		rows = append(rows, Table1Row{Agent: a, Measured: measured, Verdict: v})
	}
	return rows
}

// ThirdPartyCrawler is one of the §5.2.2 GPT-app backend crawlers.
type ThirdPartyCrawler struct {
	// Backend is the service domain the GPT app contacts.
	Backend string
	// IPs is the crawler's address pool.
	IPs []string
	// Behavior is its robots.txt compliance mode.
	Behavior crawler.Behavior
}

// GenerateThirdParty builds the 23 third-party assistant crawlers with the
// measured behaviour mix: 1 compliant, 1 buggy, 1 intermittent, 20 that
// never fetch robots.txt.
func GenerateThirdParty(seed int64) []ThirdPartyCrawler {
	rn := stats.NewRand(seed).Fork("third-party")
	out := make([]ThirdPartyCrawler, 0, 23)
	for i := 0; i < 23; i++ {
		b := crawler.NoFetch
		switch i {
		case 0:
			b = crawler.Compliant
		case 1:
			b = crawler.BuggyFetch
		case 2:
			b = crawler.IntermittentFetch
		}
		nIPs := 1 + rn.Intn(3)
		ips := make([]string, nIPs)
		for j := range ips {
			ips[j] = fmt.Sprintf("100.%d.%d.%d", 64+i, j, 10+rn.Intn(200))
		}
		out = append(out, ThirdPartyCrawler{
			Backend:  fmt.Sprintf("fetcher%02d.example", i+1),
			IPs:      ips,
			Behavior: b,
		})
	}
	return out
}

// ActiveResult is the outcome of the active study (§5.2.2).
type ActiveResult struct {
	// BuiltinVerdicts covers ChatGPT's and Meta's built-in assistants.
	BuiltinVerdicts map[string]Verdict
	// ThirdPartyVerdicts maps each backend domain to its verdict.
	ThirdPartyVerdicts map[string]Verdict
	// Summary counts third-party crawlers per verdict.
	Summary map[Verdict]int
	// AppsProbed is how many GPT apps were exercised.
	AppsProbed int
	// DistinctCrawlers is the number of clusters after merging observed
	// app traffic by shared IP address or backend domain (paper: 23).
	DistinctCrawlers int
}

// RunActive triggers the built-in assistants and a population of GPT apps
// whose backends are the 23 third-party crawlers, then classifies
// everything from server logs and merges apps into distinct crawlers. It
// honors ctx cancellation between trigger waves.
func RunActive(ctx context.Context, seed int64, nApps int) (*ActiveResult, error) {
	if nApps <= 0 {
		nApps = 120
	}
	nw := netsim.New()
	farm, err := webserver.NewFarm(nw, measureFarmIP)
	if err != nil {
		return nil, err
	}
	defer farm.Close()
	site, err := farm.StartSite(webserver.WildcardDisallowSite("trigger.test", "203.0.113.60"))
	if err != nil {
		return nil, err
	}
	res := &ActiveResult{
		BuiltinVerdicts:    make(map[string]Verdict),
		ThirdPartyVerdicts: make(map[string]Verdict),
		Summary:            make(map[Verdict]int),
	}

	// Built-in assistants: ChatGPT-User obeys robots.txt; Meta fetches
	// with FacebookExternalHit/Meta-ExternalAgent and obeys as well
	// (§5.2.2). Meta-ExternalFetcher never appears, matching the paper.
	builtins := []struct {
		name, token, ip string
	}{
		{"ChatGPT-User", "ChatGPT-User", "18.0.1.20"},
		{"Meta (FacebookExternalHit)", "FacebookExternalHit", "26.0.1.20"},
		{"Meta (Meta-ExternalAgent)", "Meta-ExternalAgent", "26.0.1.21"},
	}
	for _, b := range builtins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cr, err := crawler.New(nw, crawler.Profile{
			Token: b.token, SourceIP: b.ip, Behavior: crawler.Compliant,
		})
		if err != nil {
			return nil, err
		}
		before := site.LogLen()
		if _, _, err := cr.FetchOne(ctx, site.URL()+"/about.html"); err != nil {
			return nil, err
		}
		verdicts := Classify(site.LogSince(before))
		res.BuiltinVerdicts[b.name] = verdicts[b.token]
	}

	// GPT apps: each app delegates to one backend crawler; we observe the
	// backend domain (from the app UI) and source IPs (from our logs).
	third := GenerateThirdParty(seed)
	rn := stats.NewRand(seed).Fork("apps")
	var observations []observation
	crawlers := make(map[string][]*crawler.Crawler) // backend -> per-IP instances
	for _, tp := range third {
		for _, ip := range tp.IPs {
			cr, err := crawler.New(nw, crawler.Profile{
				Token:     "WebFetcher",
				UserAgent: "Mozilla/5.0 (compatible; WebFetcher/1.0; +https://" + tp.Backend + ")",
				SourceIP:  ip,
				Behavior:  tp.Behavior,
			})
			if err != nil {
				return nil, err
			}
			crawlers[tp.Backend] = append(crawlers[tp.Backend], cr)
		}
	}
	for i := 0; i < nApps; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tp := third[i%len(third)]
		pool := crawlers[tp.Backend]
		cr := pool[rn.Intn(len(pool))]
		before := site.LogLen()
		if _, _, err := cr.FetchOne(ctx, site.URL()+"/gallery.html"); err != nil {
			return nil, err
		}
		for _, rec := range site.LogSince(before) {
			observations = append(observations, observation{backend: tp.Backend, ip: rec.RemoteIP})
		}
		res.AppsProbed++
	}

	// Merge observations into distinct crawlers: same backend domain or a
	// shared IP address joins two apps (§5.1's merging rule).
	res.DistinctCrawlers = countClusters(observations)

	// Classify each third-party crawler by triggering it six times against
	// a dedicated site and reading the per-trigger log windows: this is
	// how the paper distinguishes "did not fetch robots.txt most of the
	// time" from outright non-fetchers.
	for _, tp := range third {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Probe sites come and go mid-run: each is a farm map insert and
		// removal, not a server start/stop.
		probe, err := farm.StartSite(webserver.WildcardDisallowSite(
			"probe-"+tp.Backend, probeIP(tp)))
		if err != nil {
			return nil, err
		}
		cr := crawlers[tp.Backend][0]
		var windows []triggerEvidence
		for i := 0; i < 6; i++ {
			before := probe.LogLen()
			if _, _, err := cr.FetchOne(ctx, probe.URL()+"/about.html"); err != nil {
				probe.Close()
				return nil, err
			}
			windows = append(windows, evidenceOf(probe.LogSince(before)))
		}
		v := combineTriggers(windows)
		res.ThirdPartyVerdicts[tp.Backend] = v
		res.Summary[v]++
		probe.Close()
	}
	return res, nil
}

// observation is one (app backend, source IP) pair seen in server logs.
type observation struct {
	backend string
	ip      string
}

// triggerEvidence summarizes one triggered fetch.
type triggerEvidence struct {
	robotsOK     bool
	robotsBroken bool
	content      bool
}

func evidenceOf(window []webserver.Record) triggerEvidence {
	var ev triggerEvidence
	for _, rec := range window {
		switch {
		case rec.Path == "/robots.txt":
			ev.robotsOK = true
		case strings.HasPrefix(rec.Path, "/robots.txt"):
			ev.robotsBroken = true
		default:
			ev.content = true
		}
	}
	return ev
}

// combineTriggers folds per-trigger evidence into a crawler verdict.
func combineTriggers(windows []triggerEvidence) Verdict {
	var respected, ignored, noFetch, buggy int
	for _, ev := range windows {
		switch {
		case ev.robotsBroken:
			buggy++
		case ev.robotsOK && !ev.content:
			respected++
		case ev.robotsOK && ev.content:
			ignored++
		case ev.content:
			noFetch++
		}
	}
	switch {
	case buggy > 0:
		return BuggyRobotsFetch
	case ignored > 0:
		return FetchedIgnored
	case respected > 0 && noFetch > 0:
		return IntermittentRespect
	case respected > 0:
		return Respected
	case noFetch > 0:
		return NotFetched
	default:
		return NotObserved
	}
}

func probeIP(tp ThirdPartyCrawler) string {
	var n int
	fmt.Sscanf(tp.Backend, "fetcher%02d.example", &n)
	return fmt.Sprintf("203.0.114.%d", 10+n)
}

// countClusters unions observations that share a backend domain or an IP
// address and returns the number of connected components.
func countClusters(obs []observation) int {
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, o := range obs {
		union("domain:"+o.backend, "ip:"+o.ip)
	}
	roots := make(map[string]bool)
	for _, o := range obs {
		roots[find("domain:"+o.backend)] = true
	}
	return len(roots)
}
