package measure

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/netsim"
	"repro/internal/webserver"
)

// comparableLog strips timestamps, which are wall-clock and not part of
// the measurement contract; everything the analyses read stays.
func comparableLog(recs []webserver.Record) []webserver.Record {
	out := append([]webserver.Record(nil), recs...)
	for i := range out {
		out[i].Time = time.Time{}
	}
	return out
}

// TestKeepAliveParityPassiveStudy runs the full §5 passive study with the
// pooled keep-alive transport and with the compatibility knob forcing the
// old per-request dial, asserting identical verdicts — the transport must
// be invisible to the measurement.
func TestKeepAliveParityPassiveStudy(t *testing.T) {
	run := func(legacy bool) *PassiveResult {
		if legacy {
			netsim.SetLegacyPerRequestDial(true)
			defer netsim.SetLegacyPerRequestDial(false)
		}
		res, err := RunPassive(context.Background(), 7)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pooled := run(false)
	legacy := run(true)
	if !reflect.DeepEqual(pooled.Verdicts, legacy.Verdicts) {
		t.Errorf("verdicts diverged:\npooled: %v\nlegacy: %v", pooled.Verdicts, legacy.Verdicts)
	}
	if !reflect.DeepEqual(pooled.IPVerified, legacy.IPVerified) {
		t.Errorf("IP verification diverged:\npooled: %v\nlegacy: %v", pooled.IPVerified, legacy.IPVerified)
	}
	if !reflect.DeepEqual(pooled.Visitors, legacy.Visitors) {
		t.Errorf("visitor sets diverged:\npooled: %v\nlegacy: %v", pooled.Visitors, legacy.Visitors)
	}
}

// TestKeepAliveParityServerLogs drives one crawler fleet at an
// instrumented site under both transports and asserts the server logs are
// identical record for record (everything but wall-clock time): same
// source IPs, same user agents, same paths in the same order, same
// statuses and byte counts.
func TestKeepAliveParityServerLogs(t *testing.T) {
	capture := func(legacy bool) []webserver.Record {
		if legacy {
			netsim.SetLegacyPerRequestDial(true)
			defer netsim.SetLegacyPerRequestDial(false)
		}
		nw := netsim.New()
		site, err := webserver.Start(nw, webserver.WildcardDisallowSite("parity.test", "203.0.113.90"))
		if err != nil {
			t.Fatal(err)
		}
		defer site.Close()
		profiles := []crawler.Profile{
			{Token: "GPTBot", SourceIP: "24.0.1.10", Behavior: crawler.Compliant},
			{Token: "Bytespider", SourceIP: "30.0.1.10", Behavior: crawler.FetchIgnore},
			{Token: "WebFetcher", SourceIP: "100.64.0.10", Behavior: crawler.NoFetch},
			{Token: "BuggyBot", SourceIP: "100.65.0.10", Behavior: crawler.BuggyFetch},
		}
		ctx := context.Background()
		for _, p := range profiles {
			cr, err := crawler.New(nw, p)
			if err != nil {
				t.Fatal(err)
			}
			// Two waves each: keep-alive reuses connections across waves,
			// per-request dial opens one per request.
			for wave := 0; wave < 2; wave++ {
				if _, err := cr.Crawl(ctx, site.URL()); err != nil {
					t.Fatal(err)
				}
			}
		}
		return site.Log()
	}
	pooled := comparableLog(capture(false))
	legacy := comparableLog(capture(true))
	if len(pooled) == 0 {
		t.Fatal("no traffic captured")
	}
	if !reflect.DeepEqual(pooled, legacy) {
		if len(pooled) != len(legacy) {
			t.Fatalf("log lengths diverged: pooled %d, legacy %d", len(pooled), len(legacy))
		}
		for i := range pooled {
			if pooled[i] != legacy[i] {
				t.Fatalf("log record %d diverged:\npooled: %+v\nlegacy: %+v", i, pooled[i], legacy[i])
			}
		}
	}
}

// TestFastHTTPParityPassiveStudy runs the full §5 passive study on the
// netsim-native fast HTTP path (the default) and with the compatibility
// knob forcing stdlib net/http on both sides, asserting identical
// results — the hand-rolled framing must be invisible to the
// measurement.
func TestFastHTTPParityPassiveStudy(t *testing.T) {
	run := func(legacy bool) *PassiveResult {
		if legacy {
			netsim.SetLegacyNetHTTP(true)
			defer netsim.SetLegacyNetHTTP(false)
		}
		res, err := RunPassive(context.Background(), 7)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(false)
	legacy := run(true)
	if !reflect.DeepEqual(fast.Verdicts, legacy.Verdicts) {
		t.Errorf("verdicts diverged:\nfast:   %v\nlegacy: %v", fast.Verdicts, legacy.Verdicts)
	}
	if !reflect.DeepEqual(fast.IPVerified, legacy.IPVerified) {
		t.Errorf("IP verification diverged:\nfast:   %v\nlegacy: %v", fast.IPVerified, legacy.IPVerified)
	}
	if !reflect.DeepEqual(fast.Visitors, legacy.Visitors) {
		t.Errorf("visitor sets diverged:\nfast:   %v\nlegacy: %v", fast.Visitors, legacy.Visitors)
	}
}

// TestFastHTTPParityServerLogs drives the crawler fleet at one site under
// the fast path and under stdlib net/http, asserting the server logs are
// identical record for record (everything but wall-clock time): same
// source IPs, same user agents, same paths in the same order, same
// statuses and byte counts.
func TestFastHTTPParityServerLogs(t *testing.T) {
	capture := func(legacy bool) []webserver.Record {
		if legacy {
			netsim.SetLegacyNetHTTP(true)
			defer netsim.SetLegacyNetHTTP(false)
		}
		nw := netsim.New()
		site, err := webserver.Start(nw, webserver.WildcardDisallowSite("parity.test", "203.0.113.90"))
		if err != nil {
			t.Fatal(err)
		}
		defer site.Close()
		profiles := []crawler.Profile{
			{Token: "GPTBot", SourceIP: "24.0.1.10", Behavior: crawler.Compliant},
			{Token: "Bytespider", SourceIP: "30.0.1.10", Behavior: crawler.FetchIgnore},
			{Token: "WebFetcher", SourceIP: "100.64.0.10", Behavior: crawler.NoFetch},
			{Token: "BuggyBot", SourceIP: "100.65.0.10", Behavior: crawler.BuggyFetch},
		}
		ctx := context.Background()
		for _, p := range profiles {
			cr, err := crawler.New(nw, p)
			if err != nil {
				t.Fatal(err)
			}
			for wave := 0; wave < 2; wave++ {
				if _, err := cr.Crawl(ctx, site.URL()); err != nil {
					t.Fatal(err)
				}
			}
		}
		return site.Log()
	}
	fast := comparableLog(capture(false))
	legacy := comparableLog(capture(true))
	if len(fast) == 0 {
		t.Fatal("no traffic captured")
	}
	if !reflect.DeepEqual(fast, legacy) {
		if len(fast) != len(legacy) {
			t.Fatalf("log lengths diverged: fast %d, legacy %d", len(fast), len(legacy))
		}
		for i := range fast {
			if fast[i] != legacy[i] {
				t.Fatalf("log record %d diverged:\nfast:   %+v\nlegacy: %+v", i, fast[i], legacy[i])
			}
		}
	}
}

// TestFarmHostingParityPassiveStudy runs the full §5 passive study under
// farm hosting (the default) and with the compatibility knob forcing the
// legacy per-site servers, asserting identical results — virtual-host
// dispatch on the shared listener must be invisible to the measurement.
func TestFarmHostingParityPassiveStudy(t *testing.T) {
	run := func(legacy bool) *PassiveResult {
		if legacy {
			webserver.SetLegacyPerSiteHosting(true)
			defer webserver.SetLegacyPerSiteHosting(false)
		}
		res, err := RunPassive(context.Background(), 7)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	farm := run(false)
	legacy := run(true)
	if !reflect.DeepEqual(farm.Verdicts, legacy.Verdicts) {
		t.Errorf("verdicts diverged:\nfarm:   %v\nlegacy: %v", farm.Verdicts, legacy.Verdicts)
	}
	if !reflect.DeepEqual(farm.IPVerified, legacy.IPVerified) {
		t.Errorf("IP verification diverged:\nfarm:   %v\nlegacy: %v", farm.IPVerified, legacy.IPVerified)
	}
	if !reflect.DeepEqual(farm.Visitors, legacy.Visitors) {
		t.Errorf("visitor sets diverged:\nfarm:   %v\nlegacy: %v", farm.Visitors, legacy.Visitors)
	}
}

// TestFarmHostingParityActiveStudy covers the §5.2.2 active study, whose
// probe sites join and leave the farm mid-run.
func TestFarmHostingParityActiveStudy(t *testing.T) {
	run := func(legacy bool) *ActiveResult {
		if legacy {
			webserver.SetLegacyPerSiteHosting(true)
			defer webserver.SetLegacyPerSiteHosting(false)
		}
		res, err := RunActive(context.Background(), 7, 40)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	farm := run(false)
	legacy := run(true)
	if !reflect.DeepEqual(farm, legacy) {
		t.Errorf("active study diverged:\nfarm:   %+v\nlegacy: %+v", farm, legacy)
	}
}

// TestFarmHostingParityServerLogs drives the crawler fleet at one site
// hosted both ways and asserts the server logs are identical record for
// record (everything but wall-clock time): same source IPs, same user
// agents, same paths in the same order, same statuses and byte counts.
func TestFarmHostingParityServerLogs(t *testing.T) {
	capture := func(legacy bool) []webserver.Record {
		if legacy {
			webserver.SetLegacyPerSiteHosting(true)
			defer webserver.SetLegacyPerSiteHosting(false)
		}
		nw := netsim.New()
		farm, err := webserver.NewFarm(nw, "203.0.113.91")
		if err != nil {
			t.Fatal(err)
		}
		defer farm.Close()
		site, err := farm.StartSite(webserver.WildcardDisallowSite("parity.test", "203.0.113.90"))
		if err != nil {
			t.Fatal(err)
		}
		profiles := []crawler.Profile{
			{Token: "GPTBot", SourceIP: "24.0.1.10", Behavior: crawler.Compliant},
			{Token: "Bytespider", SourceIP: "30.0.1.10", Behavior: crawler.FetchIgnore},
			{Token: "WebFetcher", SourceIP: "100.64.0.10", Behavior: crawler.NoFetch},
			{Token: "BuggyBot", SourceIP: "100.65.0.10", Behavior: crawler.BuggyFetch},
		}
		ctx := context.Background()
		for _, p := range profiles {
			cr, err := crawler.New(nw, p)
			if err != nil {
				t.Fatal(err)
			}
			for wave := 0; wave < 2; wave++ {
				if _, err := cr.Crawl(ctx, site.URL()); err != nil {
					t.Fatal(err)
				}
			}
		}
		return site.Log()
	}
	farm := comparableLog(capture(false))
	legacy := comparableLog(capture(true))
	if len(farm) == 0 {
		t.Fatal("no traffic captured")
	}
	if !reflect.DeepEqual(farm, legacy) {
		if len(farm) != len(legacy) {
			t.Fatalf("log lengths diverged: farm %d, legacy %d", len(farm), len(legacy))
		}
		for i := range farm {
			if farm[i] != legacy[i] {
				t.Fatalf("log record %d diverged:\nfarm:   %+v\nlegacy: %+v", i, farm[i], legacy[i])
			}
		}
	}
}
