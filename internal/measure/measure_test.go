package measure

import (
	"context"
	"errors"
	"testing"

	"repro/internal/agents"
	"repro/internal/crawler"
)

func TestPassiveStudy(t *testing.T) {
	res, err := RunPassive(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// §5.2.1: nine crawlers visited.
	if len(res.Visitors) != 9 {
		t.Fatalf("visitors = %v, want 9 crawlers", res.Visitors)
	}
	// The seven respecting crawlers.
	for _, tok := range []string{"Amazonbot", "Applebot", "CCBot", "ClaudeBot",
		"GPTBot", "Meta-ExternalAgent", "OAI-SearchBot"} {
		if res.Verdicts[tok] != Respected {
			t.Errorf("%s verdict = %v, want respected", tok, res.Verdicts[tok])
		}
	}
	// Bytespider fetched but ignored.
	if res.Verdicts["Bytespider"] != FetchedIgnored {
		t.Errorf("Bytespider verdict = %v, want fetch-ignore", res.Verdicts["Bytespider"])
	}
	// ChatGPT-User's single anomalous visit.
	if res.Verdicts["ChatGPT-User"] != Anomalous {
		t.Errorf("ChatGPT-User verdict = %v, want anomalous", res.Verdicts["ChatGPT-User"])
	}
	// IP attribution holds for every visitor with a known prefix.
	for tok, ok := range res.IPVerified {
		if !ok {
			t.Errorf("%s visited from outside its simulated range", tok)
		}
	}
}

func TestTable1Rows(t *testing.T) {
	res, err := RunPassive(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	rows := Table1Rows(res)
	if len(rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	byToken := map[string]Table1Row{}
	for _, r := range rows {
		byToken[r.Agent.UserAgent] = r
	}
	// Measured column reproduces the paper's Table 1.
	checks := map[string]agents.TriState{
		"GPTBot":             agents.Yes,
		"CCBot":              agents.Yes,
		"ClaudeBot":          agents.Yes,
		"Amazonbot":          agents.Yes,
		"Applebot":           agents.Yes,
		"Meta-ExternalAgent": agents.Yes,
		"OAI-SearchBot":      agents.Yes,
		"ChatGPT-User":       agents.Yes, // resolved via the active study
		"Bytespider":         agents.No,
		"anthropic-ai":       agents.Unknown, // never visited
		"Google-Extended":    agents.Unknown, // virtual token
		"PerplexityBot":      agents.Unknown,
	}
	for tok, want := range checks {
		if got := byToken[tok].Measured; got != want {
			t.Errorf("%s measured = %v, want %v", tok, got, want)
		}
	}
	// Against the registry's recorded in-practice column.
	for _, r := range rows {
		if r.Agent.RespectsInPractice != r.Measured {
			t.Errorf("%s: measured %v disagrees with Table 1's %v",
				r.Agent.UserAgent, r.Measured, r.Agent.RespectsInPractice)
		}
	}
}

func TestActiveStudy(t *testing.T) {
	res, err := RunActive(context.Background(), 7, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Built-in assistants respect robots.txt (§5.2.2).
	for name, v := range res.BuiltinVerdicts {
		if v != Respected {
			t.Errorf("built-in %s verdict = %v, want respected", name, v)
		}
	}
	if len(res.BuiltinVerdicts) != 3 {
		t.Fatalf("builtin verdicts = %d, want 3", len(res.BuiltinVerdicts))
	}
	// 23 distinct crawlers after merging app observations.
	if res.DistinctCrawlers != 23 {
		t.Errorf("distinct crawlers = %d, want 23", res.DistinctCrawlers)
	}
	if res.AppsProbed != 60 {
		t.Errorf("apps probed = %d", res.AppsProbed)
	}
	// The behaviour mix: 1 respected, 1 buggy, 1 intermittent, 20 no-fetch.
	if res.Summary[Respected] != 1 {
		t.Errorf("respected = %d, want 1", res.Summary[Respected])
	}
	if res.Summary[BuggyRobotsFetch] != 1 {
		t.Errorf("buggy = %d, want 1", res.Summary[BuggyRobotsFetch])
	}
	if res.Summary[IntermittentRespect] != 1 {
		t.Errorf("intermittent = %d, want 1", res.Summary[IntermittentRespect])
	}
	if res.Summary[NotFetched] != 20 {
		t.Errorf("no-fetch = %d, want 20", res.Summary[NotFetched])
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunPassive(ctx, 7); !errors.Is(err, context.Canceled) {
		t.Errorf("RunPassive on canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := RunActive(ctx, 7, 10); !errors.Is(err, context.Canceled) {
		t.Errorf("RunActive on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestEvidenceMergeAndClassify(t *testing.T) {
	a := Evidence{RobotsOK: 1}
	b := Evidence{Content: 2}
	m := a.Merge(b)
	if m.RobotsOK != 1 || m.Content != 2 {
		t.Fatalf("merge = %+v", m)
	}
	if !m.Observed() || (Evidence{}).Observed() {
		t.Fatal("Observed misreports")
	}
	cases := []struct {
		ev   Evidence
		want Verdict
	}{
		{Evidence{RobotsOK: 2}, Respected},
		{Evidence{RobotsOK: 1, Content: 3}, FetchedIgnored},
		{Evidence{RobotsBroken: 1, Content: 3}, BuggyRobotsFetch},
		{Evidence{Content: 1}, Anomalous},
		{Evidence{Content: 5}, NotFetched},
		{Evidence{}, NotObserved},
	}
	for i, tc := range cases {
		if got := ClassifyEvidence(tc.ev); got != tc.want {
			t.Errorf("case %d = %v, want %v", i, got, tc.want)
		}
	}
}

func TestGenerateThirdParty(t *testing.T) {
	tps := GenerateThirdParty(3)
	if len(tps) != 23 {
		t.Fatalf("third-party crawlers = %d, want 23", len(tps))
	}
	seenDomains := map[string]bool{}
	seenIPs := map[string]bool{}
	for _, tp := range tps {
		if seenDomains[tp.Backend] {
			t.Errorf("duplicate backend %s", tp.Backend)
		}
		seenDomains[tp.Backend] = true
		if len(tp.IPs) == 0 {
			t.Errorf("%s has no IPs", tp.Backend)
		}
		for _, ip := range tp.IPs {
			if seenIPs[ip] {
				t.Errorf("IP %s shared across backends; would break clustering", ip)
			}
			seenIPs[ip] = true
		}
	}
	counts := map[crawler.Behavior]int{}
	for _, tp := range tps {
		counts[tp.Behavior]++
	}
	if counts[crawler.Compliant] != 1 || counts[crawler.BuggyFetch] != 1 ||
		counts[crawler.IntermittentFetch] != 1 || counts[crawler.NoFetch] != 20 {
		t.Fatalf("behaviour mix = %v", counts)
	}
	// Determinism.
	again := GenerateThirdParty(3)
	for i := range tps {
		if tps[i].Backend != again[i].Backend || len(tps[i].IPs) != len(again[i].IPs) {
			t.Fatal("third-party generation must be deterministic")
		}
	}
}

func TestCountClusters(t *testing.T) {
	obs := []observation{
		{backend: "a.example", ip: "1.1.1.1"},
		{backend: "a.example", ip: "1.1.1.2"},
		{backend: "b.example", ip: "2.2.2.1"},
		// c shares an IP with b: merged.
		{backend: "c.example", ip: "2.2.2.1"},
	}
	if got := countClusters(obs); got != 2 {
		t.Fatalf("clusters = %d, want 2", got)
	}
	if countClusters(nil) != 0 {
		t.Fatal("no observations → no clusters")
	}
}

func TestVerdictStringsAndRespect(t *testing.T) {
	all := []Verdict{NotObserved, Respected, FetchedIgnored, NotFetched,
		BuggyRobotsFetch, IntermittentRespect, Anomalous, Verdict(99)}
	seen := map[string]bool{}
	for _, v := range all {
		s := v.String()
		if s == "" || (seen[s] && s != "unknown") {
			t.Errorf("verdict %d string %q", v, s)
		}
		seen[s] = true
	}
	if Respected.Respects() != agents.Yes {
		t.Error("respected → Yes")
	}
	for _, v := range []Verdict{FetchedIgnored, NotFetched, BuggyRobotsFetch} {
		if v.Respects() != agents.No {
			t.Errorf("%v → No", v)
		}
	}
	for _, v := range []Verdict{NotObserved, Anomalous, IntermittentRespect} {
		if v.Respects() != agents.Unknown {
			t.Errorf("%v → Unknown", v)
		}
	}
}

func TestCombineTriggers(t *testing.T) {
	r := triggerEvidence{robotsOK: true}
	c := triggerEvidence{content: true}
	ri := triggerEvidence{robotsOK: true, content: true}
	b := triggerEvidence{robotsBroken: true, content: true}
	cases := []struct {
		in   []triggerEvidence
		want Verdict
	}{
		{[]triggerEvidence{r, r, r}, Respected},
		{[]triggerEvidence{c, c}, NotFetched},
		{[]triggerEvidence{r, c, c}, IntermittentRespect},
		{[]triggerEvidence{ri, ri}, FetchedIgnored},
		{[]triggerEvidence{b, c}, BuggyRobotsFetch},
		{nil, NotObserved},
	}
	for i, tc := range cases {
		if got := combineTriggers(tc.in); got != tc.want {
			t.Errorf("case %d = %v, want %v", i, got, tc.want)
		}
	}
}
