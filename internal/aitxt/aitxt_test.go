package aitxt

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	p := ParseString(`# ai.txt
User-Agent: *
Image: N
Text: Y
Disallow: /private/
Allow: /private/press/
`)
	if p.Media[MediaImage] {
		t.Error("images must be denied")
	}
	if !p.Media[MediaText] {
		t.Error("text must be allowed")
	}
	if len(p.Warnings) != 0 {
		t.Errorf("warnings: %v", p.Warnings)
	}
}

func TestPermittedMediaDefaults(t *testing.T) {
	p := ParseString("Image: N\n")
	if p.Permitted("/art/piece.png") {
		t.Error("png is image media; must be denied")
	}
	if !p.Permitted("/about.html") {
		t.Error("html is text; not denied by an image rule")
	}
	if !p.Permitted("/song.mp3") {
		t.Error("audio unspecified; opt-out model defaults to permitted")
	}
}

func TestPermittedPatternPrecedence(t *testing.T) {
	p := ParseString(`Disallow: /private/
Allow: /private/press/
`)
	if p.Permitted("/private/journal.html") {
		t.Error("disallow pattern must deny")
	}
	if !p.Permitted("/private/press/release.html") {
		t.Error("longer allow must win")
	}
	if !p.Permitted("/public/x.html") {
		t.Error("unmatched paths are permitted")
	}
}

func TestPatternsOverrideMedia(t *testing.T) {
	p := ParseString(`Image: Y
Disallow: *.png
`)
	if p.Permitted("/art/piece.png") {
		t.Error("extension pattern must beat the media default")
	}
	if !p.Permitted("/art/piece.webp") {
		t.Error("other image formats follow the media default")
	}
}

func TestMediaOf(t *testing.T) {
	cases := map[string]MediaType{
		"/a/b.PNG":   MediaImage,
		"/x.mp3":     MediaAudio,
		"/clip.webm": MediaVideo,
		"/lib.go":    MediaCode,
		"/page":      MediaText,
		"/doc.pdf":   MediaText,
	}
	for path, want := range cases {
		if got := MediaOf(path); got != want {
			t.Errorf("MediaOf(%q) = %s, want %s", path, got, want)
		}
	}
}

func TestGenerateRoundTrip(t *testing.T) {
	body := Generate(map[MediaType]bool{MediaImage: false, MediaText: true},
		[]string{"/drafts/"}, []string{"/drafts/shared/"})
	p := ParseString(body)
	if p.Media[MediaImage] || !p.Media[MediaText] {
		t.Fatalf("media permissions lost in round trip:\n%s", body)
	}
	if p.Permitted("/drafts/x.html") {
		t.Error("disallow lost in round trip")
	}
	if !p.Permitted("/drafts/shared/x.html") {
		t.Error("allow lost in round trip")
	}
	if len(p.Warnings) != 0 {
		t.Errorf("generated file must parse clean: %v", p.Warnings)
	}
}

func TestUnknownDirectivesWarn(t *testing.T) {
	p := ParseString("Frobnicate: yes\nno colon line\n")
	if len(p.Warnings) != 2 {
		t.Fatalf("warnings = %v", p.Warnings)
	}
}

// The mechanism difference from §2.2: ai.txt changes take effect at
// training time, even for already-collected data; robots.txt cannot do
// that.
func TestRetroactiveOptOut(t *testing.T) {
	var tp TrainingPipeline
	tp.Collect(
		Asset{Site: "artist.example", Path: "/gallery/a.png"},
		Asset{Site: "artist.example", Path: "/about.html"},
		Asset{Site: "other.example", Path: "/photo.jpg"},
	)
	if tp.CorpusSize() != 3 {
		t.Fatal("collection failed")
	}

	// Before any opt-out: everything usable.
	policies := map[string]*Policy{}
	lookup := func(site string) *Policy { return policies[site] }
	if got := len(tp.Filter(lookup)); got != 3 {
		t.Fatalf("usable = %d, want 3", got)
	}

	// The artist publishes ai.txt denying images — AFTER the crawl.
	policies["artist.example"] = ParseString("Image: N\n")
	usable := tp.Filter(lookup)
	if len(usable) != 2 {
		t.Fatalf("usable = %d, want 2 (the png retracted)", len(usable))
	}
	for _, a := range usable {
		if a.Path == "/gallery/a.png" {
			t.Error("retracted image still usable")
		}
	}
}

func TestPatternMatchesQuick(t *testing.T) {
	// Property: a metacharacter-free pattern always prefix-matches itself.
	f := func(s string) bool {
		clean := strings.NewReplacer("*", "", "$", "", "#", "", ":", "").Replace(s)
		pat := "/" + clean
		return patternMatches(pat, pat+"/suffix")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermittedEmptyPolicy(t *testing.T) {
	p := ParseString("")
	if !p.Permitted("/anything.png") {
		t.Fatal("empty ai.txt permits everything")
	}
}
