// Package aitxt implements Spawning AI's ai.txt mechanism (§2.2 of the
// paper): a machine-readable permission file for AI training, organized
// by media type, which — unlike robots.txt — is consulted when an AI
// model attempts to *use* media, enabling real-time opt-outs even for
// content that was already collected.
//
// The package provides the parser and generator, plus a small training-
// pipeline simulation that demonstrates the mechanism's distinguishing
// property: a robots.txt change cannot retract data a crawler already
// holds, while an ai.txt change takes effect at training time.
package aitxt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// MediaType is a content class governed by ai.txt.
type MediaType string

// The media types the spec enumerates.
const (
	MediaText  MediaType = "text"
	MediaImage MediaType = "image"
	MediaAudio MediaType = "audio"
	MediaVideo MediaType = "video"
	MediaCode  MediaType = "code"
)

// MediaTypes lists all governed types in canonical order.
var MediaTypes = []MediaType{MediaText, MediaImage, MediaAudio, MediaVideo, MediaCode}

// extToMedia maps file extensions to media types, mirroring the
// published generator's tables (abridged).
var extToMedia = map[string]MediaType{
	".txt": MediaText, ".html": MediaText, ".htm": MediaText, ".md": MediaText,
	".pdf": MediaText,
	".jpg": MediaImage, ".jpeg": MediaImage, ".png": MediaImage,
	".gif": MediaImage, ".webp": MediaImage, ".svg": MediaImage,
	".mp3": MediaAudio, ".wav": MediaAudio, ".flac": MediaAudio,
	".mp4": MediaVideo, ".webm": MediaVideo, ".mov": MediaVideo,
	".js": MediaCode, ".py": MediaCode, ".go": MediaCode, ".c": MediaCode,
}

// MediaOf classifies a URL path by extension; text is the default for
// extension-less paths (HTML pages).
func MediaOf(path string) MediaType {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		if mt, ok := extToMedia[strings.ToLower(path[i:])]; ok {
			return mt
		}
	}
	return MediaText
}

// Policy is a parsed ai.txt: per-media permissions plus optional path
// patterns (the spec reuses robots.txt-style Allow/Disallow lines with
// wildcard extensions).
type Policy struct {
	// Media maps each media type to whether AI use is permitted. Types
	// absent from the file default to permitted (opt-out model).
	Media map[MediaType]bool
	// DisallowPatterns are path patterns denied for AI use.
	DisallowPatterns []string
	// AllowPatterns are path patterns explicitly permitted.
	AllowPatterns []string
	// Warnings collects unknown directives.
	Warnings []string
}

// Parse reads an ai.txt body. Like robots.txt parsing it is lenient:
// unknown lines produce warnings, never errors.
func Parse(r io.Reader) (*Policy, error) {
	p := &Policy{Media: make(map[MediaType]bool)}
	scanner := bufio.NewScanner(r)
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			p.Warnings = append(p.Warnings, "missing colon: "+line)
			continue
		}
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		switch key {
		case "user-agent":
			// The spec carries a User-Agent line for symmetry with
			// robots.txt; permissions are not per-agent yet.
		case "disallow":
			p.DisallowPatterns = append(p.DisallowPatterns, value)
		case "allow":
			p.AllowPatterns = append(p.AllowPatterns, value)
		case "text", "image", "audio", "video", "code":
			p.Media[MediaType(key)] = parsePermission(value)
		default:
			p.Warnings = append(p.Warnings, "unknown directive: "+key)
		}
	}
	if err := scanner.Err(); err != nil {
		return p, fmt.Errorf("aitxt: reading input: %w", err)
	}
	return p, nil
}

// ParseString parses an in-memory ai.txt body.
func ParseString(s string) *Policy {
	p, _ := Parse(strings.NewReader(s))
	return p
}

func parsePermission(v string) bool {
	switch strings.ToLower(v) {
	case "y", "yes", "allow", "allowed", "true":
		return true
	default:
		return false
	}
}

// Permitted reports whether AI use of the resource at path is allowed.
// Path patterns take precedence over media defaults; the most specific
// (longest) matching pattern wins, allow on ties, mirroring RFC 9309.
func (p *Policy) Permitted(path string) bool {
	bestLen := -1
	permitted := true
	consider := func(patterns []string, allow bool) {
		for _, pat := range patterns {
			if pat == "" || !patternMatches(pat, path) {
				continue
			}
			switch {
			case len(pat) > bestLen:
				bestLen = len(pat)
				permitted = allow
			case len(pat) == bestLen && allow:
				permitted = true
			}
		}
	}
	consider(p.DisallowPatterns, false)
	consider(p.AllowPatterns, true)
	if bestLen >= 0 {
		return permitted
	}
	if allowed, ok := p.Media[MediaOf(path)]; ok {
		return allowed
	}
	return true
}

// patternMatches supports the same prefix + '*' + '$' pattern language as
// robots.txt, plus bare "*.ext" forms the ai.txt generator emits.
func patternMatches(pattern, path string) bool {
	if strings.HasPrefix(pattern, "*.") {
		return strings.HasSuffix(strings.ToLower(path), strings.ToLower(pattern[1:]))
	}
	anchored := strings.HasSuffix(pattern, "$")
	if anchored {
		pattern = pattern[:len(pattern)-1]
	} else {
		pattern += "*"
	}
	var p, s, starP, starS int
	starP, starS = -1, -1
	for s < len(path) {
		switch {
		case p < len(pattern) && pattern[p] == '*':
			starP, starS = p, s
			p++
		case p < len(pattern) && pattern[p] == path[s]:
			p++
			s++
		case starP >= 0:
			starS++
			s = starS
			p = starP + 1
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// Generate renders an ai.txt body from per-media permissions and path
// patterns, in the generator's canonical layout.
func Generate(media map[MediaType]bool, disallow, allow []string) string {
	var sb strings.Builder
	sb.WriteString("# ai.txt — AI training permissions (Spawning spec)\n")
	sb.WriteString("User-Agent: *\n")
	keys := make([]string, 0, len(media))
	for mt := range media {
		keys = append(keys, string(mt))
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := "N"
		if media[MediaType(k)] {
			v = "Y"
		}
		fmt.Fprintf(&sb, "%s: %s\n", titleASCII(k), v)
	}
	for _, d := range disallow {
		fmt.Fprintf(&sb, "Disallow: %s\n", d)
	}
	for _, a := range allow {
		fmt.Fprintf(&sb, "Allow: %s\n", a)
	}
	return sb.String()
}

// titleASCII capitalizes the first ASCII letter of s.
func titleASCII(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

// Asset is one collected resource in a training corpus.
type Asset struct {
	Site string
	Path string
}

// TrainingPipeline simulates the mechanism difference the paper explains:
// robots.txt gates *collection*, ai.txt gates *use*. Assets enter the
// corpus at crawl time; Filter applies the sites' current ai.txt at
// training time.
type TrainingPipeline struct {
	corpus []Asset
}

// Collect adds crawled assets to the training corpus.
func (t *TrainingPipeline) Collect(assets ...Asset) {
	t.corpus = append(t.corpus, assets...)
}

// CorpusSize returns the number of collected assets.
func (t *TrainingPipeline) CorpusSize() int { return len(t.corpus) }

// Filter returns the assets whose current ai.txt (looked up per site)
// still permits training. Sites without ai.txt permit everything.
func (t *TrainingPipeline) Filter(policyFor func(site string) *Policy) []Asset {
	var usable []Asset
	for _, a := range t.corpus {
		p := policyFor(a.Site)
		if p == nil || p.Permitted(a.Path) {
			usable = append(usable, a)
		}
	}
	return usable
}
