package fleet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/policyd"
	"repro/internal/stats"
)

// fakeClock is a manually-advanced limiter clock.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestLimiterBucketSemantics pins the token-bucket contract: burst
// admits immediately, exhaustion rejects with a usable Retry-After,
// waiting exactly that long re-admits, and rejections charge nothing.
func TestLimiterBucketSemantics(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(100, 50, clk.now) // 100 tokens/sec, burst 50

	if wait, ok := l.Admit([]TenantCount{{"GPTBot", 50}}); !ok || wait != 0 {
		t.Fatalf("burst-sized batch rejected (wait %s)", wait)
	}
	wait, ok := l.Admit([]TenantCount{{"GPTBot", 10}})
	if ok {
		t.Fatal("empty bucket admitted a batch")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("Retry-After %s, want (0, 1s] for a 10-token deficit at 100/s", wait)
	}
	// The rejection must not have consumed tokens: after exactly the
	// advertised wait, the same batch fits.
	clk.advance(wait)
	if _, ok := l.Admit([]TenantCount{{"GPTBot", 10}}); !ok {
		t.Fatal("batch still rejected after waiting the advertised Retry-After")
	}

	// Tenants are isolated: GPTBot's exhaustion never throttles CCBot.
	if _, ok := l.Admit([]TenantCount{{"CCBot", 50}}); !ok {
		t.Fatal("fresh tenant rejected while another tenant is exhausted")
	}

	// All-or-nothing: a batch mixing a fitting and a non-fitting tenant
	// is rejected whole, charging neither.
	clk.advance(time.Second) // both buckets full (50)
	if _, ok := l.Admit([]TenantCount{{"GPTBot", 10}, {"CCBot", 60}}); ok {
		t.Fatal("batch with an over-burst tenant group admitted")
	}
	if _, ok := l.Admit([]TenantCount{{"GPTBot", 50}}); !ok {
		t.Fatal("rejected batch consumed GPTBot tokens")
	}

	acc := l.Accounting()
	if len(acc.Tenants) != 2 {
		t.Fatalf("accounting has %d tenants, want 2", len(acc.Tenants))
	}
	// CCBot: granted 50, throttled 60; GPTBot: granted 50+10+50, throttled 10+10.
	want := []TenantQuota{
		{Tenant: "CCBot", Granted: 50, Throttled: 60},
		{Tenant: "GPTBot", Granted: 110, Throttled: 20},
	}
	for i, w := range want {
		if acc.Tenants[i] != w {
			t.Errorf("accounting[%d] = %+v, want %+v", i, acc.Tenants[i], w)
		}
	}
}

// TestLimiterDisabled: rate 0 admits everything but still accounts.
func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 0, newFakeClock().now)
	for i := 0; i < 100; i++ {
		if _, ok := l.Admit([]TenantCount{{"GPTBot", 4096}}); !ok {
			t.Fatal("disabled limiter rejected a batch")
		}
	}
	acc := l.Accounting()
	if acc.Tenants[0].Granted != 409600 || acc.Tenants[0].Throttled != 0 {
		t.Fatalf("accounting %+v", acc.Tenants[0])
	}
}

// TestLimiterDeterminism drives the limiter with a workload drawn from
// a fixed stats.Rand — random tenants, batch sizes, and clock steps —
// and requires the full admit/reject sequence and final ledger to be
// bit-identical across runs. The gateway's quota segment in the run
// store depends on this: same (spec, seed) → same quotas.json.
func TestLimiterDeterminism(t *testing.T) {
	run := func() (string, Accounting) {
		clk := newFakeClock()
		l := NewLimiter(500, 1000, clk.now)
		rn := stats.NewRand(42).Fork("limiter")
		tenants := []string{"GPTBot", "CCBot", "Google-Extended", "Bytespider"}
		trace := ""
		for i := 0; i < 2000; i++ {
			g := []TenantCount{{
				Tenant: tenants[rn.Intn(len(tenants))],
				N:      1 + rn.Intn(64),
			}}
			if rn.Bool(0.3) {
				g = append(g, TenantCount{Tenant: tenants[rn.Intn(len(tenants))], N: 1 + rn.Intn(64)})
			}
			wait, ok := l.Admit(g)
			trace += fmt.Sprintf("%d:%v:%d;", i, ok, wait.Microseconds())
			clk.advance(time.Duration(rn.Intn(10)) * time.Millisecond)
		}
		return trace, l.Accounting()
	}
	t1, a1 := run()
	t2, a2 := run()
	if t1 != t2 {
		t.Fatal("admit/reject trace differs across identical runs")
	}
	if fmt.Sprintf("%+v", a1) != fmt.Sprintf("%+v", a2) {
		t.Fatalf("accounting differs:\n%+v\n%+v", a1, a2)
	}
	// The workload must actually have exercised both outcomes.
	throttledTotal := uint64(0)
	for _, tq := range a1.Tenants {
		throttledTotal += tq.Throttled
	}
	if throttledTotal == 0 {
		t.Fatal("workload never throttled — determinism proved nothing")
	}
}

// TestLimiterOwnsTenantKeys reproduces the frame-wire aliasing hazard:
// policyd.DecodeQueryPayload returns zero-copy strings into the
// connection's payload buffer, which the gateway reuses for the next
// frame. A limiter that keys its ledger on the aliased string would see
// its map keys mutate under it (garbled tenant names, duplicate
// entries); the ledger must own its key bytes.
func TestLimiterOwnsTenantKeys(t *testing.T) {
	l := NewLimiter(0, 0, nil)

	frame, err := policyd.AppendQueryFrame(nil, []policyd.Query{
		{Host: "a.test", Agent: "GPTBot", Path: "/"},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:] // skip the length prefix, as the serve loop does
	qs, err := policyd.DecodeQueryPayload(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Admit([]TenantCount{{Tenant: qs[0].Agent, N: 3}}); !ok {
		t.Fatal("accounting-only limiter rejected")
	}

	// Overwrite the buffer in place, as reading the next frame into the
	// same backing array does.
	for i := range payload {
		payload[i] = 'x'
	}

	acc := l.Accounting()
	if len(acc.Tenants) != 1 || acc.Tenants[0].Tenant != "GPTBot" {
		t.Fatalf("ledger lost tenant identity after buffer reuse: %+v", acc.Tenants)
	}
	if acc.Tenants[0].Granted != 3 {
		t.Fatalf("granted = %d, want 3", acc.Tenants[0].Granted)
	}

	// A fresh admission for the same tenant name must land in the same
	// bucket, not a mutated duplicate.
	if _, ok := l.Admit([]TenantCount{{Tenant: "GPTBot", N: 2}}); !ok {
		t.Fatal("second admit rejected")
	}
	acc = l.Accounting()
	if len(acc.Tenants) != 1 || acc.Tenants[0].Granted != 5 {
		t.Fatalf("duplicate bucket after buffer reuse: %+v", acc.Tenants)
	}
}
