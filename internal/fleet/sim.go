package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"repro/internal/netsim"
	"repro/internal/policyd"
)

// SimFleet boots a complete fleet on one netsim network: N policyd
// replicas (each with JSON, frame, and watch listeners) and one gateway
// (same three listeners), wired together exactly as cmd/policygw wires
// real TCP. Tests and harnesses get a production-shaped topology with
// in-memory latency.
type SimFleet struct {
	NW *netsim.Network
	GW *Gateway
	// Services are the replica decision services, for direct comparison
	// and swap injection.
	Services []*policyd.Service

	// Gateway addresses, dialable from ClientIP.
	GatewayURL       string
	GatewayFrameAddr string
	GatewayWatchAddr string
	// Per-replica addresses for direct (gateway-bypassing) access.
	ReplicaURLs       []string
	ReplicaFrameAddrs []string

	cancel    context.CancelFunc
	listeners []net.Listener
	servers   []*http.Server
}

// ClientIP is the source IP SimFleet clients should dial from.
const ClientIP = "10.0.0.1"

const gatewayIP = "10.0.0.2"

// NewSimFleet starts the fleet with every replica serving snap; gwCfg
// carries the gateway knobs (VNodes, Rate, Burst, Now — Replicas,
// HTTPClient, and Dial are filled in from the simulated topology).
// Close releases all listeners and connections.
func NewSimFleet(snap *policyd.Snapshot, replicas int, gwCfg Config) (*SimFleet, error) {
	if replicas <= 0 {
		replicas = 2
	}
	nw := netsim.New()
	f := &SimFleet{NW: nw}
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel

	var rcs []ReplicaConfig
	for i := 0; i < replicas; i++ {
		ip := fmt.Sprintf("10.0.0.%d", 10+i)
		name := fmt.Sprintf("policyd-%d", i)
		nw.Register(name+".fleet", ip)
		svc := policyd.NewService(snap)
		f.Services = append(f.Services, svc)

		jsonLn, err := f.listen(ip, 80)
		if err != nil {
			f.Close()
			return nil, err
		}
		srv := &http.Server{Handler: policyd.NewHandler(svc)}
		f.servers = append(f.servers, srv)
		go srv.Serve(jsonLn)

		frameLn, err := f.listen(ip, 81)
		if err != nil {
			f.Close()
			return nil, err
		}
		go policyd.ServeFrames(frameLn, svc)

		watchLn, err := f.listen(ip, 82)
		if err != nil {
			f.Close()
			return nil, err
		}
		go policyd.ServeWatch(watchLn, svc)

		rcs = append(rcs, ReplicaConfig{
			Name:      name,
			BaseURL:   "http://" + ip + ":80",
			FrameAddr: ip + ":81",
			WatchAddr: ip + ":82",
		})
		f.ReplicaURLs = append(f.ReplicaURLs, "http://"+ip+":80")
		f.ReplicaFrameAddrs = append(f.ReplicaFrameAddrs, ip+":81")
	}

	gwCfg.Replicas = rcs
	gwCfg.HTTPClient = nw.HTTPClient(gatewayIP)
	gwCfg.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
		return nw.Dial(ctx, gatewayIP, addr)
	}
	gw, err := NewGateway(gwCfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	f.GW = gw
	gw.Start(ctx)

	nw.Register("gateway.fleet", gatewayIP)
	gwJSON, err := f.listen(gatewayIP, 80)
	if err != nil {
		f.Close()
		return nil, err
	}
	gwSrv := &http.Server{Handler: gw.Handler()}
	f.servers = append(f.servers, gwSrv)
	go gwSrv.Serve(gwJSON)

	gwFrame, err := f.listen(gatewayIP, 81)
	if err != nil {
		f.Close()
		return nil, err
	}
	go gw.ServeFrames(gwFrame)

	gwWatch, err := f.listen(gatewayIP, 82)
	if err != nil {
		f.Close()
		return nil, err
	}
	go gw.ServeWatch(gwWatch)

	f.GatewayURL = "http://" + gatewayIP + ":80"
	f.GatewayFrameAddr = gatewayIP + ":81"
	f.GatewayWatchAddr = gatewayIP + ":82"
	return f, nil
}

func (f *SimFleet) listen(ip string, port int) (net.Listener, error) {
	ln, err := f.NW.Listen(ip, port)
	if err != nil {
		return nil, err
	}
	f.listeners = append(f.listeners, ln)
	return ln, nil
}

// Client returns an HTTP client originating from ClientIP.
func (f *SimFleet) Client() *http.Client { return f.NW.HTTPClient(ClientIP) }

// DialFrameV2 opens a v2 frame client from ClientIP to addr (the
// gateway's or a replica's frame listener).
func (f *SimFleet) DialFrameV2(ctx context.Context, addr string) (*policyd.FrameClientV2, error) {
	c, err := f.NW.Dial(ctx, ClientIP, addr)
	if err != nil {
		return nil, err
	}
	return policyd.NewFrameClientV2(c)
}

// DialWatch opens a raw watch connection from ClientIP to addr.
func (f *SimFleet) DialWatch(ctx context.Context, addr string) (net.Conn, error) {
	return f.NW.Dial(ctx, ClientIP, addr)
}

// Swap installs snap on replica i (announcing it on the replica's watch
// feed, which the gateway is following).
func (f *SimFleet) Swap(i int, snap *policyd.Snapshot) { f.Services[i].Swap(snap) }

// SwapAll installs snap on every replica.
func (f *SimFleet) SwapAll(snap *policyd.Snapshot) {
	for _, svc := range f.Services {
		svc.Swap(snap)
	}
}

// Close tears the fleet down: gateway conns, HTTP servers, listeners.
func (f *SimFleet) Close() {
	f.cancel()
	if f.GW != nil {
		f.GW.Close()
	}
	for _, srv := range f.servers {
		srv.Close()
	}
	for _, ln := range f.listeners {
		ln.Close()
	}
}
