package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/policyd"
)

// buildCorpusSnapshot compiles the bench-scale corpus month used across
// the policyd test suite (~2k hosts at scale 0.05).
func buildCorpusSnapshot(t testing.TB, snapIdx int) *policyd.Snapshot {
	t.Helper()
	ctx := context.Background()
	c, err := corpus.New(ctx, corpus.Config{Seed: 20251028, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := policyd.FromCorpus(ctx, c, snapIdx, 0)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// corpusWorkload builds n queries cycling the snapshot's hosts against a
// mixed agent/path roster — every host, AI and non-AI agents, matcher
// corner paths.
func corpusWorkload(snap *policyd.Snapshot, n int) []policyd.Query {
	hosts := snap.Hosts()
	agents := []string{"GPTBot", "CCBot", "Google-Extended", "Googlebot", "Mozilla", "UnknownCrawler9000"}
	paths := []string{"/", "/about.html", "/admin/", "/gallery/2024/work.JPG", "/search?q=art", "/piece.webp"}
	qs := make([]policyd.Query, n)
	for i := range qs {
		qs[i] = policyd.Query{
			Host:  hosts[i%len(hosts)],
			Agent: agents[(i/len(hosts))%len(agents)],
			Path:  paths[(i/7)%len(paths)],
		}
	}
	return qs
}

// TestGatewayParity is the fleet's correctness anchor: 100k corpus
// queries routed through the gateway must produce exactly the decisions
// a direct replica produces, on both wires. Binary: every batch through
// the gateway's frame listener vs in-process DecideBatch. JSON:
// /v1/batch through the gateway vs the in-process decisions, plus
// byte-identical /v1/decide bodies against a direct replica.
func TestGatewayParity(t *testing.T) {
	snap := buildCorpusSnapshot(t, corpus.GPTBotAnnouncedIndex)
	f, err := NewSimFleet(snap, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	direct := policyd.NewService(snap)
	qs := corpusWorkload(snap, 100_000)
	want := direct.DecideBatch(qs, make([]policyd.Decision, 0, len(qs)))

	t.Run("frame", func(t *testing.T) {
		fc, err := f.DialFrameV2(ctx, f.GatewayFrameAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer fc.Close()
		got := make([]policyd.Decision, 0, 512)
		const batch = 256
		checked := 0
		for off := 0; off < len(qs); off += batch {
			end := off + batch
			if end > len(qs) {
				end = len(qs)
			}
			got, version, err := fc.Decide(qs[off:end], got[:0])
			if err != nil {
				t.Fatal(err)
			}
			if version != snap.Version {
				t.Fatalf("batch served from version %q, want %q", version, snap.Version)
			}
			for i, d := range got {
				if d != want[off+i] {
					q := qs[off+i]
					t.Fatalf("query (%s,%s,%s): gateway %v/%v, direct %v/%v",
						q.Host, q.Agent, q.Path, d.Action, d.Signal, want[off+i].Action, want[off+i].Signal)
				}
				checked++
			}
		}
		if checked != len(qs) {
			t.Fatalf("checked %d of %d", checked, len(qs))
		}
		t.Logf("frame wire: %d decisions parity-checked through the gateway", checked)
	})

	t.Run("json", func(t *testing.T) {
		client := f.Client()
		const batch = 500
		checked := 0
		for off := 0; off < len(qs); off += batch {
			end := off + batch
			if end > len(qs) {
				end = len(qs)
			}
			body, _ := json.Marshal(policyd.BatchRequest{Queries: qs[off:end]})
			resp, err := client.Post(f.GatewayURL+"/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("batch status %d", resp.StatusCode)
			}
			if v := resp.Header.Get("X-Policyd-Version"); v != snap.Version {
				t.Fatalf("X-Policyd-Version %q, want %q", v, snap.Version)
			}
			var br policyd.BatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if len(br.Decisions) != end-off {
				t.Fatalf("%d decisions for %d queries", len(br.Decisions), end-off)
			}
			for i, d := range br.Decisions {
				w := want[off+i].JSON()
				if d != w {
					t.Fatalf("query %d: gateway %+v, direct %+v", off+i, d, w)
				}
				checked++
			}
		}
		t.Logf("json wire: %d decisions parity-checked through the gateway", checked)
	})

	t.Run("decide-bytes", func(t *testing.T) {
		// The single-decision endpoint must be byte-identical to a direct
		// replica (same pre-rendered bodies), so gateway and replica are
		// interchangeable to byte-sensitive clients.
		client := f.Client()
		for i := 0; i < 500; i++ {
			q := qs[i*37%len(qs)]
			url := fmt.Sprintf("/v1/decide?host=%s&agent=%s&path=%s", q.Host, q.Agent, q.Path)
			viaGW := fetchBody(t, client, f.GatewayURL+url)
			viaReplica := fetchBody(t, client, f.ReplicaURLs[0]+url)
			if !bytes.Equal(viaGW, viaReplica) {
				t.Fatalf("decide body differs for %+v:\n gw: %q\n rep: %q", q, viaGW, viaReplica)
			}
		}
	})
}

func fetchBody(t *testing.T, client *http.Client, url string) []byte {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// straddleSnapshot builds a synthetic snapshot where every host decides
// identically — so a mixed batch response proves a version straddle.
func straddleSnapshot(t *testing.T, version string, deny bool, hosts int) *policyd.Snapshot {
	t.Helper()
	b := &policyd.Builder{}
	cfg := policyd.HostConfig{}
	if deny {
		cfg.RobotsTxt = "User-agent: *\nDisallow: /\n"
	}
	for i := 0; i < hosts; i++ {
		b.Add(fmt.Sprintf("h%03d.test", i), cfg)
	}
	snap, err := b.Build(context.Background(), version, 0)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestBatchNeverStraddlesVersion hammers a 3-replica fleet with
// scattered batches while swapper goroutines flip every replica between
// an allow-all and a deny-all snapshot. Every batch response must be
// homogeneous and match its reported version — a single mixed batch
// means the gateway split one client batch across a rollover. Run under
// -race this also proves the routing path is data-race clean.
func TestBatchNeverStraddlesVersion(t *testing.T) {
	snapA := straddleSnapshot(t, "vAAA", false, 96)
	snapB := straddleSnapshot(t, "vBBB", true, 96)
	f, err := NewSimFleet(snapA, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	// One batch spanning all 96 hosts: guaranteed to scatter across
	// replicas (the balance test pins that 3 replicas all own keys).
	var qs []policyd.Query
	for i := 0; i < 96; i++ {
		qs = append(qs, policyd.Query{Host: fmt.Sprintf("h%03d.test", i), Agent: "GPTBot", Path: "/x"})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ri := range f.Services {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			flip := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				if flip {
					f.Swap(ri, snapA)
				} else {
					f.Swap(ri, snapB)
				}
				flip = !flip
				time.Sleep(time.Duration(200+150*ri) * time.Microsecond)
			}
		}(ri)
	}

	var clientWG sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 2; w++ {
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			fc, err := f.DialFrameV2(ctx, f.GatewayFrameAddr)
			if err != nil {
				errs <- err
				return
			}
			defer fc.Close()
			out := make([]policyd.Decision, 0, len(qs))
			for iter := 0; iter < 400; iter++ {
				out, version, err := fc.Decide(qs, out[:0])
				if err != nil {
					errs <- err
					return
				}
				first := out[0]
				for i, d := range out {
					if d != first {
						errs <- fmt.Errorf("iter %d: batch straddles versions: out[0]=%v/%v out[%d]=%v/%v (reported %s)",
							iter, first.Action, first.Signal, i, d.Action, d.Signal, version)
						return
					}
				}
				wantAllow := version == "vAAA"
				if first.Allowed() != wantAllow {
					errs <- fmt.Errorf("iter %d: version %s but decisions %v/%v", iter, version, first.Action, first.Signal)
					return
				}
			}
		}()
	}
	clientWG.Wait()
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestGatewayRateLimit covers 429 semantics on both wires with a fixed
// clock: burst exhaustion answers 429 + Retry-After over HTTP and a
// *RateLimitError frame over the binary wire; advancing the clock
// re-admits; /v1/quotas exposes the ledger.
func TestGatewayRateLimit(t *testing.T) {
	snap := straddleSnapshot(t, "v1", false, 8)
	clk := newFakeClock()
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clk.t
	}
	advance := func(d time.Duration) {
		mu.Lock()
		clk.advance(d)
		mu.Unlock()
	}
	f, err := NewSimFleet(snap, 2, Config{Rate: 100, Burst: 100, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()
	client := f.Client()

	url := f.GatewayURL + "/v1/decide?host=h000.test&agent=GPTBot&path=/"
	for i := 0; i < 100; i++ {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d before burst exhausted", i, resp.StatusCode)
		}
	}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d after burst exhausted, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("X-Retry-After-Ms") == "" {
		t.Fatalf("429 without Retry-After headers: %+v", resp.Header)
	}

	// Binary wire: same bucket, in-band error, connection stays usable.
	fc, err := f.DialFrameV2(ctx, f.GatewayFrameAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	qs := []policyd.Query{{Host: "h000.test", Agent: "GPTBot", Path: "/"}}
	_, _, err = fc.Decide(qs, nil)
	var rle *policyd.RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("frame wire error %v, want *RateLimitError", err)
	}
	if rle.RetryAfter <= 0 {
		t.Fatalf("RateLimitError without Retry-After: %+v", rle)
	}
	advance(rle.RetryAfter + time.Second)
	if _, _, err := fc.Decide(qs, nil); err != nil {
		t.Fatalf("frame wire still limited after advancing the clock: %v", err)
	}

	// Other tenants were never throttled.
	if _, _, err := fc.Decide([]policyd.Query{{Host: "h000.test", Agent: "CCBot", Path: "/"}}, nil); err != nil {
		t.Fatalf("fresh tenant throttled: %v", err)
	}

	var acc Accounting
	if err := json.Unmarshal(fetchBody(t, client, f.GatewayURL+"/v1/quotas"), &acc); err != nil {
		t.Fatal(err)
	}
	if len(acc.Tenants) != 2 {
		t.Fatalf("quotas: %+v", acc)
	}
	var gpt TenantQuota
	for _, tq := range acc.Tenants {
		if tq.Tenant == "GPTBot" {
			gpt = tq
		}
	}
	if gpt.Granted != 101 || gpt.Throttled != 2 {
		t.Fatalf("GPTBot ledger %+v, want granted 101 throttled 2", gpt)
	}
}

// TestWatchInvalidation: a client watching the gateway hears exactly the
// fleet-wide rollovers — the initial agreed version, nothing while the
// fleet is split mid-rollover, and the new version once every replica
// swapped.
func TestWatchInvalidation(t *testing.T) {
	snapA := straddleSnapshot(t, "vAAA", false, 8)
	snapB := straddleSnapshot(t, "vBBB", true, 8)
	f, err := NewSimFleet(snapA, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	c, err := f.DialWatch(ctx, f.GatewayWatchAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lines := make(chan string, 16)
	go policyd.WatchVersions(c, func(v string) bool {
		lines <- v
		return true
	})
	readLine := func(within time.Duration) (string, bool) {
		select {
		case v := <-lines:
			return v, true
		case <-time.After(within):
			return "", false
		}
	}

	// The watch loops converge on vAAA shortly after Start.
	v, ok := readLine(5 * time.Second)
	if !ok || v != "vAAA" {
		t.Fatalf("initial fleet version %q ok=%v, want vAAA", v, ok)
	}

	// Half-rolled fleet: no announcement.
	f.Swap(0, snapB)
	if v, ok := readLine(300 * time.Millisecond); ok {
		t.Fatalf("split fleet announced %q", v)
	}

	// Rollover completes: exactly one vBBB announcement.
	f.Swap(1, snapB)
	v, ok = readLine(5 * time.Second)
	if !ok || v != "vBBB" {
		t.Fatalf("rollover announced %q ok=%v, want vBBB", v, ok)
	}

	// Stats reflect convergence.
	var st GatewayStats
	if err := json.Unmarshal(fetchBody(t, f.Client(), f.GatewayURL+"/v1/stats"), &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != "vBBB" || st.Skew != 0 {
		t.Fatalf("stats after rollover: %+v", st)
	}
}
