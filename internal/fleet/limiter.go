package fleet

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Per-tenant token-bucket rate limiting at the gateway edge. The tenant
// key is the query's agent identity — the loadgen/crawler User-Agent —
// so one misbehaving crawler exhausts its own bucket without touching
// anyone else's, the same isolation a production API gateway applies
// per API key.

// TenantCount pairs a tenant with the number of decisions one batch
// asks for on its behalf.
type TenantCount struct {
	Tenant string
	N      int
}

// TenantQuota is one tenant's end-of-run accounting line. The JSON
// shape is the /v1/quotas wire contract and the runstore quotas
// segment.
type TenantQuota struct {
	Tenant    string `json:"tenant"`
	Granted   uint64 `json:"granted"`
	Throttled uint64 `json:"throttled"`
}

// Accounting is the gateway's full quota ledger.
type Accounting struct {
	// Rate and Burst echo the limiter configuration (tokens/sec and
	// bucket depth per tenant); Rate 0 means accounting-only.
	Rate  float64 `json:"rate"`
	Burst float64 `json:"burst"`
	// Tenants is sorted by tenant name for deterministic output.
	Tenants []TenantQuota `json:"tenants"`
}

// Limiter meters decisions per tenant with token buckets refilled at
// rate tokens/sec up to burst, and keeps granted/throttled accounting
// either way. rate <= 0 disables limiting (every batch admitted,
// accounting still kept). The clock is injectable for deterministic
// tests; nil means time.Now.
type Limiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	now     func() time.Time
	tenants map[string]*bucket
}

type bucket struct {
	tokens    float64
	last      time.Time
	granted   uint64
	throttled uint64
}

// NewLimiter returns a limiter. burst <= 0 defaults to one second of
// rate. A batch larger than burst can never be admitted, so callers
// must size burst at or above their maximum batch (cmd/policygw
// defaults it to max(rate, 2×MaxBatch)).
func NewLimiter(rate, burst float64, now func() time.Time) *Limiter {
	if now == nil {
		now = time.Now
	}
	if burst <= 0 {
		burst = rate
	}
	return &Limiter{rate: rate, burst: burst, now: now, tenants: make(map[string]*bucket)}
}

// Admit atomically charges every tenant group of one batch, or charges
// nothing: a batch is answered from one snapshot at one admission
// point, so partial admission would force splitting it. On rejection it
// returns ok=false and the longest wait after which every group could
// fit (its Retry-After), and books the whole batch as throttled.
func (l *Limiter) Admit(groups []TenantCount) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate <= 0 {
		for _, g := range groups {
			l.bucket(g.Tenant).granted += uint64(g.N)
		}
		return 0, true
	}
	t := l.now()
	var wait time.Duration
	for _, g := range groups {
		bk := l.bucket(g.Tenant)
		bk.refill(t, l.rate, l.burst)
		if deficit := float64(g.N) - bk.tokens; deficit > 0 {
			w := time.Duration(deficit / l.rate * float64(time.Second))
			if w > wait {
				wait = w
			}
		}
	}
	if wait > 0 {
		for _, g := range groups {
			l.bucket(g.Tenant).throttled += uint64(g.N)
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		return wait, false
	}
	for _, g := range groups {
		bk := l.tenants[g.Tenant]
		bk.tokens -= float64(g.N)
		bk.granted += uint64(g.N)
	}
	return 0, true
}

// bucket returns (creating if needed) the tenant's bucket. Callers hold
// l.mu.
func (l *Limiter) bucket(tenant string) *bucket {
	bk := l.tenants[tenant]
	if bk == nil {
		bk = &bucket{tokens: l.burst}
		// Frame-wire tenant strings alias the connection's reusable
		// payload buffer (policyd.DecodeQueryPayload is zero-copy); the
		// map key outlives the frame, so it must own its bytes.
		l.tenants[strings.Clone(tenant)] = bk
	}
	return bk
}

func (bk *bucket) refill(t time.Time, rate, burst float64) {
	if bk.last.IsZero() {
		bk.last = t
		return
	}
	if dt := t.Sub(bk.last); dt > 0 {
		bk.tokens += rate * dt.Seconds()
		if bk.tokens > burst {
			bk.tokens = burst
		}
		bk.last = t
	}
}

// Accounting returns the ledger, tenants sorted by name.
func (l *Limiter) Accounting() Accounting {
	l.mu.Lock()
	defer l.mu.Unlock()
	acc := Accounting{Rate: l.rate, Burst: l.burst, Tenants: make([]TenantQuota, 0, len(l.tenants))}
	if l.rate <= 0 {
		acc.Burst = 0
	}
	for name, bk := range l.tenants {
		acc.Tenants = append(acc.Tenants, TenantQuota{Tenant: name, Granted: bk.granted, Throttled: bk.throttled})
	}
	sort.Slice(acc.Tenants, func(i, j int) bool { return acc.Tenants[i].Tenant < acc.Tenants[j].Tenant })
	return acc
}
