package fleet

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/policyd"
)

// Gateway-wide metric families. Per-replica families register at
// gateway construction (registration is idempotent, keyed by the full
// labeled name).
var (
	mRateLimitDrops = obs.NewCounter("fleet_ratelimit_drops_total",
		"Decisions rejected at the gateway by per-tenant token buckets.")
	mVersionSkew = obs.NewGauge("fleet_version_skew",
		"Distinct snapshot versions live across replicas minus one; nonzero while a rollover is in flight.")
	mSwapNotify = obs.NewCounter("fleet_swap_notifications_total",
		"Fleet-version invalidations published to gateway watch subscribers.")
	mRepinned = obs.NewCounter("fleet_batch_repinned_total",
		"Batches retried pinned to one replica after scattered sub-batches answered from different snapshot versions.")
	mGWWireJSON = obs.NewCounter(`fleet_gateway_requests_total{wire="json"}`,
		"Gateway-level decision requests, by protocol.")
	mGWWireFrame = obs.NewCounter(`fleet_gateway_requests_total{wire="frame"}`,
		"Gateway-level decision requests, by protocol.")
)

// ReplicaConfig locates one policyd replica on whatever transport the
// gateway's HTTPClient/Dial reach.
type ReplicaConfig struct {
	// Name identifies the replica on the hash ring and in metrics; it
	// must be unique and stable (a membership change moves only the
	// changed name's keys).
	Name string
	// BaseURL is the replica's JSON API root ("http://10.0.0.11:80").
	BaseURL string
	// FrameAddr is the replica's binary-frame listener ("10.0.0.11:81").
	FrameAddr string
	// WatchAddr is the replica's version watch listener; "" disables
	// watching (versions are then learned from decide responses only).
	WatchAddr string
}

// Config assembles a Gateway.
type Config struct {
	Replicas []ReplicaConfig
	// VNodes per replica on the ring; <= 0 means DefaultVNodes.
	VNodes int
	// Rate/Burst configure per-tenant token buckets (tokens/sec and
	// bucket depth). Rate 0 disables limiting; Burst 0 defaults to
	// max(Rate, 2×policyd.MaxBatch) so a full batch always fits.
	Rate, Burst float64
	// Now is the limiter clock; nil means time.Now.
	Now func() time.Time
	// HTTPClient reaches replica BaseURLs (unused by the frame-routed
	// decision path, available for health probes; netsim or real TCP).
	HTTPClient *http.Client
	// Dial reaches replica FrameAddr/WatchAddr values.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
}

// Gateway routes decision traffic across policyd replicas: host-keyed
// consistent hashing for cache locality, one snapshot version per
// client batch (scatter with repin-on-skew), per-tenant rate limiting
// at admission, and a version feed that tells connected clients when
// the whole fleet has rolled to a new snapshot.
type Gateway struct {
	cfg      Config
	ring     *Ring
	replicas []*replica
	limiter  *Limiter
	feed     *policyd.VersionFeed

	vmu          sync.Mutex
	fleetVersion string

	batches atomic.Uint64
	states  sync.Pool
}

// replica is one fleet member's runtime state.
type replica struct {
	cfg      ReplicaConfig
	idx      int
	gw       *Gateway
	pool     chan *policyd.FrameClientV2
	version  sync.Mutex // guards ver
	ver      string
	mRoute   *obs.Counter
	mLatency *obs.Histogram
}

// NewGateway validates cfg and builds the gateway. Call Start to begin
// watching replica versions, then serve with Handler, ServeFrames, and
// ServeWatch.
func NewGateway(cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas configured")
	}
	if cfg.Dial == nil {
		return nil, fmt.Errorf("fleet: Config.Dial is required")
	}
	names := make([]string, len(cfg.Replicas))
	seen := make(map[string]bool, len(cfg.Replicas))
	for i, rc := range cfg.Replicas {
		if rc.Name == "" || seen[rc.Name] {
			return nil, fmt.Errorf("fleet: replica %d needs a unique name (got %q)", i, rc.Name)
		}
		seen[rc.Name] = true
		names[i] = rc.Name
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
		if m := float64(2 * policyd.MaxBatch); cfg.Burst < m {
			cfg.Burst = m
		}
	}
	g := &Gateway{
		cfg:     cfg,
		ring:    NewRing(names, cfg.VNodes),
		limiter: NewLimiter(cfg.Rate, cfg.Burst, cfg.Now),
		feed:    policyd.NewVersionFeed(""),
	}
	for i, rc := range cfg.Replicas {
		g.replicas = append(g.replicas, &replica{
			cfg:  rc,
			idx:  i,
			gw:   g,
			pool: make(chan *policyd.FrameClientV2, 16),
			mRoute: obs.NewCounter(fmt.Sprintf(`fleet_route_total{replica=%q}`, rc.Name),
				"Decisions routed to each replica."),
			mLatency: obs.NewHistogram(fmt.Sprintf(`fleet_replica_latency_ns{replica=%q}`, rc.Name),
				"Round-trip latency of one routed sub-batch per replica, ns."),
		})
	}
	return g, nil
}

// Start launches the per-replica watch loops; they reconnect with
// backoff until ctx is done. Without Start the gateway still works —
// versions are learned from decide responses — but swap invalidations
// reach clients only after the next routed batch.
func (g *Gateway) Start(ctx context.Context) {
	for _, r := range g.replicas {
		if r.cfg.WatchAddr != "" {
			go r.watchLoop(ctx)
		}
	}
}

// Watch subscribes to fleet-version announcements (published when every
// replica reports the same version and it changed).
func (g *Gateway) Watch() (<-chan string, func()) { return g.feed.Watch() }

// FleetVersion returns the last version the whole fleet agreed on, ""
// before the first agreement is observed.
func (g *Gateway) FleetVersion() string { return g.feed.Current() }

// Limiter exposes the gateway's quota ledger.
func (g *Gateway) Limiter() *Limiter { return g.limiter }

// ServeWatch serves fleet-version invalidations on ln with the policyd
// watch line protocol.
func (g *Gateway) ServeWatch(ln net.Listener) error { return g.feed.Serve(ln) }

// Close drains and closes all pooled replica connections.
func (g *Gateway) Close() {
	for _, r := range g.replicas {
		for {
			select {
			case fc := <-r.pool:
				fc.Close()
			default:
				goto next
			}
		}
	next:
	}
}

func (r *replica) watchLoop(ctx context.Context) {
	for ctx.Err() == nil {
		c, err := r.gw.cfg.Dial(ctx, r.cfg.WatchAddr)
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		done := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				c.Close()
			case <-done:
			}
		}()
		_ = policyd.WatchVersions(c, func(v string) bool {
			r.noteVersion(v)
			return true
		})
		close(done)
		c.Close()
		select {
		case <-ctx.Done():
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// noteVersion records a replica's observed snapshot version (from its
// watch channel or a decide response) and recomputes the fleet view.
func (r *replica) noteVersion(v string) {
	if v == "" {
		return
	}
	r.version.Lock()
	changed := r.ver != v
	r.ver = v
	r.version.Unlock()
	if changed {
		r.gw.recomputeVersions()
	}
}

func (r *replica) currentVersion() string {
	r.version.Lock()
	defer r.version.Unlock()
	return r.ver
}

// recomputeVersions refreshes the skew gauge and publishes a new fleet
// version when all replicas agree on one.
func (g *Gateway) recomputeVersions() {
	g.vmu.Lock()
	defer g.vmu.Unlock()
	// Fleets are small: collect distinct versions into a stack slice.
	var seen [8]string
	distinct, unknown := 0, 0
	for _, r := range g.replicas {
		v := r.currentVersion()
		if v == "" {
			unknown++
			continue
		}
		dup := false
		for i := 0; i < distinct && i < len(seen); i++ {
			if seen[i] == v {
				dup = true
				break
			}
		}
		if !dup {
			if distinct < len(seen) {
				seen[distinct] = v
			}
			distinct++
		}
	}
	skew := 0
	if distinct > 1 {
		skew = distinct - 1
	}
	mVersionSkew.Set(float64(skew))
	if distinct == 1 && unknown == 0 && seen[0] != g.fleetVersion {
		g.fleetVersion = seen[0]
		g.feed.Publish(seen[0])
		mSwapNotify.Inc()
	}
}

// get returns a pooled or fresh frame connection to the replica.
func (r *replica) get(ctx context.Context) (*policyd.FrameClientV2, error) {
	select {
	case fc := <-r.pool:
		return fc, nil
	default:
	}
	c, err := r.gw.cfg.Dial(ctx, r.cfg.FrameAddr)
	if err != nil {
		return nil, err
	}
	return policyd.NewFrameClientV2(c)
}

func (r *replica) put(fc *policyd.FrameClientV2) {
	select {
	case r.pool <- fc:
	default:
		fc.Close()
	}
}

// decideOn answers qs on one replica, appending to out. A transport
// error retries once on a fresh connection (the pooled conn may have
// died idle); the replica's observed version updates from the response.
func (g *Gateway) decideOn(ctx context.Context, r *replica, qs []policyd.Query, out []policyd.Decision) ([]policyd.Decision, string, error) {
	base := len(out)
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		fc, err := r.get(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		start := time.Now()
		ds, version, err := fc.Decide(qs, out[:base])
		if err != nil {
			fc.Close()
			lastErr = err
			continue
		}
		r.mLatency.Observe(uint64(time.Since(start)))
		r.put(fc)
		r.mRoute.Add(uint64(len(qs)))
		r.noteVersion(version)
		return ds, version, nil
	}
	return out[:base], "", fmt.Errorf("fleet: replica %s: %w", r.cfg.Name, lastErr)
}

// connState is the per-connection (or pooled per-request) routing
// scratch, so the frame hot path stays allocation-steady.
type connState struct {
	assign []int32
	subQ   []policyd.Query
	subD   []policyd.Decision
	order  []int32
	groups []TenantCount
}

func (g *Gateway) getState() *connState {
	if st, ok := g.states.Get().(*connState); ok && st != nil {
		return st
	}
	return &connState{}
}

func (g *Gateway) putState(st *connState) { g.states.Put(st) }

// admit groups the batch by tenant (query agent) and charges the
// limiter all-or-nothing. Small batches have few distinct agents, so
// grouping is a linear scan over a reused slice.
func (g *Gateway) admit(qs []policyd.Query, st *connState) (time.Duration, bool) {
	st.groups = st.groups[:0]
outer:
	for i := range qs {
		for j := range st.groups {
			if st.groups[j].Tenant == qs[i].Agent {
				st.groups[j].N++
				continue outer
			}
		}
		st.groups = append(st.groups, TenantCount{Tenant: qs[i].Agent, N: 1})
	}
	wait, ok := g.limiter.Admit(st.groups)
	if !ok {
		mRateLimitDrops.Add(uint64(len(qs)))
	}
	return wait, ok
}

// routeBatch answers qs through the fleet, appending to out in query
// order, and returns the single snapshot version that served the whole
// batch. Batches whose hosts all hash to one replica go direct; others
// scatter, and if the sub-batches come back from different versions
// (a rollover in flight) the whole batch retries pinned to one replica,
// whose single DecideBatch guarantees one consistent snapshot.
func (g *Gateway) routeBatch(ctx context.Context, qs []policyd.Query, out []policyd.Decision, st *connState) ([]policyd.Decision, string, error) {
	g.batches.Add(1)
	base := len(out)
	if len(qs) == 0 {
		return out, g.FleetVersion(), nil
	}
	st.assign = st.assign[:0]
	first := int32(g.ring.Pick(qs[0].Host))
	single := true
	st.assign = append(st.assign, first)
	for i := 1; i < len(qs); i++ {
		ri := int32(g.ring.Pick(qs[i].Host))
		if ri != first {
			single = false
		}
		st.assign = append(st.assign, ri)
	}
	if single {
		return g.decideOn(ctx, g.replicas[first], qs, out)
	}

	// Scatter: route each replica's sub-batch, writing decisions back
	// into their original positions.
	for range qs {
		out = append(out, policyd.Decision{})
	}
	version := ""
	mismatch := false
	var newest *replica
	for ri := range g.replicas {
		st.subQ = st.subQ[:0]
		st.order = st.order[:0]
		for i := range qs {
			if int(st.assign[i]) == ri {
				st.subQ = append(st.subQ, qs[i])
				st.order = append(st.order, int32(i))
			}
		}
		if len(st.subQ) == 0 {
			continue
		}
		subD, v, err := g.decideOn(ctx, g.replicas[ri], st.subQ, st.subD[:0])
		st.subD = subD[:0]
		if err != nil {
			return out[:base], "", err
		}
		if version == "" {
			version = v
			newest = g.replicas[ri]
		} else if v != version {
			mismatch = true
			if v > version {
				version = v
				newest = g.replicas[ri]
			}
		}
		for j, pos := range st.order {
			out[base+int(pos)] = subD[j]
		}
	}
	if !mismatch {
		return out, version, nil
	}
	// A rollover is mid-flight: re-answer the whole batch on the replica
	// already serving the newest version, so the client sees exactly one
	// snapshot. Corpus versions ("YYYY-WW") order lexically.
	mRepinned.Inc()
	return g.decideOn(ctx, newest, qs, out[:base])
}

// Decide answers one query through the fleet (rate limiting applied by
// the serving wrappers, not here).
func (g *Gateway) decide(ctx context.Context, q policyd.Query, st *connState) (policyd.Decision, string, error) {
	g.batches.Add(1)
	ri := g.ring.Pick(q.Host)
	st.subQ = append(st.subQ[:0], q)
	ds, version, err := g.decideOn(ctx, g.replicas[ri], st.subQ, st.subD[:0])
	st.subD = ds[:0]
	if err != nil {
		return policyd.Decision{}, "", err
	}
	return ds[0], version, nil
}

// ReplicaStatus is one replica's row in gateway stats.
type ReplicaStatus struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	Routed  uint64 `json:"routed"`
}

// GatewayStats is the /v1/stats response body.
type GatewayStats struct {
	// Version is the last fleet-agreed snapshot version ("" during a
	// rollover that has not yet converged, or before first contact).
	Version string `json:"version"`
	// Skew is the current distinct-version count minus one.
	Skew int `json:"skew"`
	// Batches counts routed client batches (a single decide counts 1).
	Batches  uint64          `json:"batches"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// Stats returns the gateway's current fleet view.
func (g *Gateway) Stats() GatewayStats {
	st := GatewayStats{Version: g.FleetVersion(), Batches: g.batches.Load()}
	versions := map[string]bool{}
	for _, r := range g.replicas {
		v := r.currentVersion()
		if v != "" {
			versions[v] = true
		}
		st.Replicas = append(st.Replicas, ReplicaStatus{Name: r.cfg.Name, Version: v, Routed: r.mRoute.Value()})
	}
	if len(versions) > 1 {
		st.Skew = len(versions) - 1
	}
	return st
}

// Handler returns the gateway's JSON API: the replica API plus quota
// introspection. Decision bodies are byte-identical to a replica's —
// the gateway adds only the X-Policyd-Version header (the serving
// snapshot) so routed responses stay parity-comparable.
//
//	GET  /v1/decide?host=H&agent=U&path=P  (429 + Retry-After on quota)
//	POST /v1/batch                         (one snapshot version per batch)
//	GET  /v1/stats                         (fleet view)
//	GET  /v1/quotas                        (per-tenant ledger)
//	GET  /healthz
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/decide", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		q := policyd.Query{
			Host:  r.URL.Query().Get("host"),
			Agent: r.URL.Query().Get("agent"),
			Path:  r.URL.Query().Get("path"),
		}
		if q.Host == "" || q.Agent == "" {
			http.Error(w, "host and agent are required", http.StatusBadRequest)
			return
		}
		mGWWireJSON.Inc()
		st := g.getState()
		defer g.putState(st)
		st.subQ = append(st.subQ[:0], q)
		if wait, ok := g.admit(st.subQ, st); !ok {
			writeRateLimited(w, wait)
			return
		}
		d, version, err := g.decide(r.Context(), q, st)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("X-Policyd-Version", version)
		if body, ok := policyd.DecisionBody(d); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Write(body)
			return
		}
		writeJSON(w, d.JSON())
	})
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req policyd.BatchRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
			return
		}
		if len(req.Queries) > policyd.MaxBatch {
			http.Error(w, fmt.Sprintf("batch exceeds %d queries", policyd.MaxBatch), http.StatusRequestEntityTooLarge)
			return
		}
		mGWWireJSON.Inc()
		st := g.getState()
		defer g.putState(st)
		if wait, ok := g.admit(req.Queries, st); !ok {
			writeRateLimited(w, wait)
			return
		}
		ds, version, err := g.routeBatch(r.Context(), req.Queries, nil, st)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		resp := policyd.BatchResponse{Decisions: make([]policyd.DecisionJSON, len(ds))}
		for i, d := range ds {
			resp.Decisions[i] = d.JSON()
		}
		w.Header().Set("X-Policyd-Version", version)
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, g.Stats())
	})
	mux.HandleFunc("/v1/quotas", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, g.limiter.Accounting())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeRateLimited answers 429 with both the spec's integer-second
// Retry-After and an exact millisecond variant (token buckets at
// realistic rates refill in well under a second).
func writeRateLimited(w http.ResponseWriter, wait time.Duration) {
	secs := int(wait / time.Second)
	if wait%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(wait.Milliseconds(), 10))
	http.Error(w, "rate limited", http.StatusTooManyRequests)
}

// ServeFrames accepts binary-frame connections on ln and answers them
// through the fleet until the listener closes. Both dialects are
// accepted: RPB2 clients get versioned responses and in-band
// rate-limit frames; RPB1 clients get legacy responses, and a quota
// rejection closes their connection (v1 has no error channel).
func (g *Gateway) ServeFrames(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		go g.serveFrameConn(c)
	}
}

func (g *Gateway) serveFrameConn(c net.Conn) {
	defer c.Close()
	var magic [4]byte
	if _, err := io.ReadFull(c, magic[:]); err != nil {
		return
	}
	v2 := magic == policyd.FrameMagicV2
	if !v2 && magic != policyd.FrameMagic {
		return
	}
	ctx := context.Background()
	st := g.getState()
	defer g.putState(st)
	var lenBuf [4]byte
	payload := make([]byte, 0, 64*1024)
	wbuf := make([]byte, 0, 16*1024)
	var qs []policyd.Query
	var out []policyd.Decision
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 4<<20 {
			return
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(c, payload); err != nil {
			return
		}
		var err error
		qs, err = policyd.DecodeQueryPayload(payload, qs[:0])
		if err != nil {
			return
		}
		mGWWireFrame.Inc()
		if wait, ok := g.admit(qs, st); !ok {
			if !v2 {
				return
			}
			wbuf = policyd.AppendRateLimitFrame(wbuf[:0], wait)
			if _, err := c.Write(wbuf); err != nil {
				return
			}
			continue
		}
		var version string
		out, version, err = g.routeBatch(ctx, qs, out[:0], st)
		if err != nil {
			return
		}
		if v2 {
			wbuf = policyd.AppendDecisionFrameV2(wbuf[:0], out, version)
		} else {
			wbuf = policyd.AppendDecisionFrame(wbuf[:0], out)
		}
		if _, err := c.Write(wbuf); err != nil {
			return
		}
	}
}
