// Package fleet turns the single-process policyd.Service into a
// replicated serving fleet behind a gateway: N replicas each holding a
// compiled snapshot, a consistent-hash router keeping each host's
// queries on one replica (so that replica's shard maps and parse-cache
// lines stay hot), per-tenant token-bucket rate limiting with quota
// accounting at the edge, and snapshot-version-aware batch routing with
// watch-channel invalidation — the production shape of the paper's
// decision surface under "millions of users" traffic.
//
// The package is transport-agnostic the same way policyd is: replicas
// are reached through an injected HTTP client and dial func, so one
// Gateway implementation serves netsim harnesses (SimFleet) and real
// TCP (cmd/policygw) identically.
package fleet

import "sort"

// DefaultVNodes is the virtual-node count per replica when a ring is
// built with vnodes <= 0. 64 points per replica keeps the max/mean load
// imbalance under ~15% for small fleets while the ring stays a few KB.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over named replicas. Keys
// (host names) map to the replica owning the first ring point at or
// after the key's hash. Because each replica's points depend only on its
// own name, adding or removing a replica moves only the keys whose
// owning point belonged to the changed replica — on average 1/(N+1) of
// the keyspace on add, exactly the removed replica's share on remove.
type Ring struct {
	points []ringPoint
	names  []string
}

type ringPoint struct {
	hash    uint64
	replica int32
}

// NewRing builds a ring over the given replica names (order defines the
// replica indices Pick returns). vnodes <= 0 means DefaultVNodes.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*vnodes),
	}
	for i, name := range r.names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(name, v), replica: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// Len returns the number of replicas on the ring.
func (r *Ring) Len() int { return len(r.names) }

// Name returns the name of replica i.
func (r *Ring) Name(i int) string { return r.names[i] }

// Names returns the replica names in index order.
func (r *Ring) Names() []string { return append([]string(nil), r.names...) }

// Pick returns the replica index owning key, or -1 on an empty ring.
// It does not allocate.
func (r *Ring) Pick(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := fnv64a(key)
	// Binary search for the first point at or after h, wrapping to 0.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return int(r.points[lo].replica)
}

// Add returns a new ring with name appended (same vnode density as the
// per-replica point count of the receiver).
func (r *Ring) Add(name string) *Ring {
	return NewRing(append(r.Names(), name), r.vnodesPer())
}

// Remove returns a new ring without name; removing an absent name
// returns an equivalent ring.
func (r *Ring) Remove(name string) *Ring {
	names := make([]string, 0, len(r.names))
	for _, n := range r.names {
		if n != name {
			names = append(names, n)
		}
	}
	return NewRing(names, r.vnodesPer())
}

func (r *Ring) vnodesPer() int {
	if len(r.names) == 0 {
		return DefaultVNodes
	}
	return len(r.points) / len(r.names)
}

// vnodeHash positions one virtual node: FNV-1a over the replica name,
// then the vnode ordinal's bytes, then a 64-bit finalizer — name-stable,
// so an unrelated membership change never moves a surviving replica's
// points. The finalizer matters: replica names differ in a byte or two
// and FNV alone leaves their points correlated, which starves replicas.
func vnodeHash(name string, v int) uint64 {
	h := fnv64aRaw(name)
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= 1099511628211
	}
	return mix64(h)
}

// fnv64a hashes a key without allocating, finalized for ring-position
// uniformity.
func fnv64a(s string) uint64 { return mix64(fnv64aRaw(s)) }

func fnv64aRaw(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the MurmurHash3 finalizer: full avalanche over 64 bits.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
