package fleet

import (
	"fmt"
	"testing"
)

// ringKeys is a corpus-shaped key population: enough hosts that the
// statistical properties (balance, movement fractions) are stable.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("site-%05d.example.test", i)
	}
	return keys
}

func ringNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("policyd-%d", i)
	}
	return names
}

// TestRingBalance: every replica owns a non-trivial share of the
// keyspace — no starved replica, no >3× overload at 64 vnodes.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{2, 3, 5} {
		r := NewRing(ringNames(n), 0)
		counts := make([]int, n)
		for _, k := range keys {
			counts[r.Pick(k)]++
		}
		mean := len(keys) / n
		for i, c := range counts {
			if c < mean/3 || c > mean*3 {
				t.Errorf("n=%d: replica %d owns %d keys, mean %d — imbalance beyond 3x", n, i, c, mean)
			}
		}
	}
}

// TestRingStability pins the consistent-hashing contract that makes the
// gateway's cache-locality story work across membership changes.
//
// Remove: a key that mapped to a surviving replica MUST NOT move — only
// the removed replica's keys redistribute. This is exact, not
// statistical: removing a name removes only that name's vnode points.
//
// Add: every key that moves must move TO the new replica, and the moved
// fraction stays near 1/(N+1).
func TestRingStability(t *testing.T) {
	keys := ringKeys(20000)
	names := ringNames(4)
	r := NewRing(names, 0)

	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Name(r.Pick(k))
	}

	t.Run("remove", func(t *testing.T) {
		removed := "policyd-2"
		r2 := r.Remove(removed)
		moved := 0
		for _, k := range keys {
			now := r2.Name(r2.Pick(k))
			was := before[k]
			if was != removed && now != was {
				t.Fatalf("key %s moved %s -> %s although %s survived", k, was, now, was)
			}
			if was == removed {
				moved++
			}
		}
		if moved == 0 {
			t.Fatal("removed replica owned no keys — balance test should have caught this")
		}
		t.Logf("remove: %d/%d keys redistributed (the removed replica's share)", moved, len(keys))
	})

	t.Run("add", func(t *testing.T) {
		r2 := r.Add("policyd-9")
		moved := 0
		for _, k := range keys {
			now := r2.Name(r2.Pick(k))
			if now != before[k] {
				if now != "policyd-9" {
					t.Fatalf("key %s moved %s -> %s, not to the new replica", k, before[k], now)
				}
				moved++
			}
		}
		// Expected share 1/(N+1) = 20%; allow generous slack for vnode
		// placement variance but fail on unbounded movement.
		frac := float64(moved) / float64(len(keys))
		if frac == 0 || frac > 0.40 {
			t.Fatalf("add moved %.1f%% of keys, want ~20%% (bounded)", 100*frac)
		}
		t.Logf("add: %.1f%% of keys moved to the new replica (expected ~%.0f%%)", 100*frac, 100.0/5)
	})
}

// TestRingDeterminism: same membership, same assignments — Pick must be
// a pure function of (names, key) so every gateway instance routes
// identically.
func TestRingDeterminism(t *testing.T) {
	keys := ringKeys(1000)
	a := NewRing(ringNames(3), 0)
	b := NewRing(ringNames(3), 0)
	for _, k := range keys {
		if a.Pick(k) != b.Pick(k) {
			t.Fatalf("rings with identical membership disagree on %s", k)
		}
	}
	if NewRing(nil, 0).Pick("x") != -1 {
		t.Fatal("empty ring must return -1")
	}
}
