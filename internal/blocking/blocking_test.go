package blocking

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/netsim"
	"repro/internal/useragent"
	"repro/internal/webserver"
)

func TestUABlockerStyles(t *testing.T) {
	mk := func(style BlockStyle) *UABlocker {
		return &UABlocker{Patterns: []string{"ClaudeBot"}, Style: style}
	}
	req, _ := http.NewRequest("GET", "http://x/", nil)
	req.Header.Set("User-Agent", useragent.FullUA("ClaudeBot", "1.0"))

	if d := mk(StyleForbidden).Check(req); d == nil || d.Status != 403 || d.Challenge {
		t.Fatalf("forbidden style = %+v", d)
	}
	if d := mk(StyleChallenge).Check(req); d == nil || !d.Challenge {
		t.Fatalf("challenge style = %+v", d)
	}
	if d := mk(StyleSoft200).Check(req); d == nil || d.Status != 200 {
		t.Fatalf("soft-200 style = %+v", d)
	}
	// Non-matching UA passes.
	req2, _ := http.NewRequest("GET", "http://x/", nil)
	req2.Header.Set("User-Agent", useragent.BrowserChromeUA)
	if d := mk(StyleForbidden).Check(req2); d != nil {
		t.Fatal("browser UA must pass")
	}
}

func TestAutomationBlocker(t *testing.T) {
	req, _ := http.NewRequest("GET", "http://x/", nil)
	req.Header.Set("User-Agent", useragent.BrowserChromeUA)
	if d := (AutomationBlocker{}).Check(req); d != nil {
		t.Fatal("no fingerprint → pass")
	}
	req.Header.Set(FingerprintHeader, FingerprintHeadless)
	if d := (AutomationBlocker{}).Check(req); d == nil || d.Status != 403 {
		t.Fatal("fingerprinted tool must be blocked")
	}
}

func TestChainFirstDecisionWins(t *testing.T) {
	c := Chain{
		AutomationBlocker{},
		&UABlocker{Patterns: []string{"ClaudeBot"}, Style: StyleSoft200},
	}
	req, _ := http.NewRequest("GET", "http://x/", nil)
	req.Header.Set("User-Agent", useragent.FullUA("ClaudeBot", "1.0"))
	req.Header.Set(FingerprintHeader, FingerprintHeadless)
	if d := c.Check(req); d == nil || d.Status != 403 {
		t.Fatal("automation blocker must take precedence")
	}
}

func testFarm(t *testing.T, nw *netsim.Network) *webserver.Farm {
	t.Helper()
	farm, err := webserver.NewFarm(nw, "10.9.0.1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { farm.Close() })
	return farm
}

func TestProbeVerdicts(t *testing.T) {
	nw := netsim.New()
	farm := testFarm(t, nw)
	cases := []struct {
		name string
		spec SiteSpec
		want SiteVerdict
		opts DetectorOptions
	}{
		{"open site", SiteSpec{Domain: "open.example", IP: "10.1.0.1"}, NoBlocking, DefaultDetector},
		{"ua blocker 403", SiteSpec{Domain: "ua403.example", IP: "10.1.0.2", UABlock: true, Style: StyleForbidden}, BlocksAI, DefaultDetector},
		{"ua blocker challenge", SiteSpec{Domain: "uach.example", IP: "10.1.0.3", UABlock: true, Style: StyleChallenge}, BlocksAI, DefaultDetector},
		{"ua blocker soft200", SiteSpec{Domain: "soft.example", IP: "10.1.0.4", UABlock: true, Style: StyleSoft200}, BlocksAI, DefaultDetector},
		{"soft200 invisible to status-only", SiteSpec{Domain: "soft2.example", IP: "10.1.0.5", UABlock: true, Style: StyleSoft200}, NoBlocking, StatusOnlyDetector},
		{"inherent blocker", SiteSpec{Domain: "inh.example", IP: "10.1.0.6", InherentBlock: true}, NoInference, DefaultDetector},
		{"inherent + ua", SiteSpec{Domain: "both.example", IP: "10.1.0.7", InherentBlock: true, UABlock: true}, NoInference, DefaultDetector},
	}
	for _, tc := range cases {
		site, err := StartSite(farm, tc.spec, 2000)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		p := NewProber(nw, "198.51.100.220", tc.opts)
		out, err := p.Probe(context.Background(), site.URL()+"/")
		site.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if out.Verdict != tc.want {
			t.Errorf("%s: verdict = %v, want %v", tc.name, out.Verdict, tc.want)
		}
	}
}

func TestRealCrawlerNotInherentlyBlocked(t *testing.T) {
	// A real crawler (no fingerprint header) passes an inherent blocker —
	// the lower-bound property the paper notes.
	nw := netsim.New()
	spec := SiteSpec{Domain: "inh2.example", IP: "10.1.0.8", InherentBlock: true}
	site, err := StartSite(testFarm(t, nw), spec, 2000)
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	client := nw.HTTPClient("24.0.1.50")
	req, _ := http.NewRequest("GET", site.URL()+"/", nil)
	req.Header.Set("User-Agent", useragent.FullUA("GPTBot", "1.0"))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("real crawler got %d; inherent blocking must only hit the probe tool", resp.StatusCode)
	}
}

func TestGeneratePopulationCounts(t *testing.T) {
	n := 2000
	specs := GeneratePopulation(n, 5)
	if len(specs) != n {
		t.Fatalf("population = %d", len(specs))
	}
	var inherent, ua, overlap int
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Domain] || seen[s.IP] {
			t.Fatalf("duplicate domain or IP: %+v", s)
		}
		seen[s.Domain], seen[s.IP] = true, true
		if s.InherentBlock {
			inherent++
			if s.UABlock {
				t.Fatal("categories must be disjoint")
			}
		}
		if s.UABlock {
			ua++
			if s.RobotsRestrictsProbeAgents {
				overlap++
			}
		} else if s.RobotsRestrictsProbeAgents {
			t.Fatal("robots overlap only applies to UA blockers")
		}
	}
	wantInherent := int(float64(n)*PaperInherentRate + 0.5)
	wantUA := int(float64(n)*PaperUABlockRate + 0.5)
	if inherent != wantInherent {
		t.Errorf("inherent = %d, want %d", inherent, wantInherent)
	}
	if ua != wantUA {
		t.Errorf("ua blockers = %d, want %d", ua, wantUA)
	}
	wantOverlap := int(float64(wantUA)*PaperRobotsOverlapRate + 0.5)
	if overlap != wantOverlap {
		t.Errorf("robots overlap = %d, want %d", overlap, wantOverlap)
	}
}

func TestRunSurveySmall(t *testing.T) {
	n := 400
	res, err := RunSurvey(context.Background(), n, 9, 16, DefaultDetector)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probed != n {
		t.Fatalf("probed = %d", res.Probed)
	}
	wantInherent := int(float64(n)*PaperInherentRate + 0.5)
	wantUA := int(float64(n)*PaperUABlockRate + 0.5)
	if res.InherentlyBlocked != wantInherent {
		t.Errorf("inherently blocked = %d, want %d", res.InherentlyBlocked, wantInherent)
	}
	if res.ActiveBlockers != wantUA {
		t.Errorf("active blockers = %d, want %d (detector must find them all)",
			res.ActiveBlockers, wantUA)
	}
	wantOverlap := int(float64(wantUA)*PaperRobotsOverlapRate + 0.5)
	if res.RobotsOverlap != wantOverlap {
		t.Errorf("robots overlap = %d, want %d", res.RobotsOverlap, wantOverlap)
	}
	if res.NoBlocking != n-wantInherent-wantUA {
		t.Errorf("no-blocking = %d", res.NoBlocking)
	}
}

func TestStatusOnlyDetectorUndercounts(t *testing.T) {
	n := 400
	full, err := RunSurvey(context.Background(), n, 9, 16, DefaultDetector)
	if err != nil {
		t.Fatal(err)
	}
	statusOnly, err := RunSurvey(context.Background(), n, 9, 16, StatusOnlyDetector)
	if err != nil {
		t.Fatal(err)
	}
	if statusOnly.ActiveBlockers >= full.ActiveBlockers {
		t.Errorf("status-only (%d) must miss the soft-200 blockers full (%d) catches",
			statusOnly.ActiveBlockers, full.ActiveBlockers)
	}
}

func TestSignificantDelta(t *testing.T) {
	if !significantDelta(1000, 100, 0.5) {
		t.Error("90% shrink is significant")
	}
	if significantDelta(1000, 900, 0.5) {
		t.Error("10% shrink is not significant at ratio 0.5")
	}
	if !significantDelta(0, 10, 0.5) {
		t.Error("growth from zero is significant")
	}
	if significantDelta(0, 0, 0.5) {
		t.Error("zero vs zero is not significant")
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[SiteVerdict]string{
		NoInference:     "inherently blocks automation",
		BlocksAI:        "actively blocks AI user agents",
		NoBlocking:      "no user-agent blocking detected",
		SiteVerdict(42): "unknown",
	} {
		if got := v.String(); got != want {
			t.Errorf("%d = %q, want %q", v, got, want)
		}
	}
}

func TestBlockerAgainstRealServerLog(t *testing.T) {
	// End-to-end: blocked requests appear in the site log with their
	// block status, like §6's server-side evidence.
	nw := netsim.New()
	spec := SiteSpec{Domain: "log.example", IP: "10.1.0.9", UABlock: true, Style: StyleForbidden}
	site, err := StartSite(testFarm(t, nw), spec, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	p := NewProber(nw, "198.51.100.221", DefaultDetector)
	if _, err := p.Probe(context.Background(), site.URL()+"/"); err != nil {
		t.Fatal(err)
	}
	var saw403 bool
	for _, rec := range site.Log() {
		if rec.Status == 403 {
			saw403 = true
		}
	}
	if !saw403 {
		t.Fatal("block decisions must be visible in the server log")
	}
	_ = webserver.Record{}
}

// The Labyrinth style: a non-compliant crawler gets trapped in decoy
// pages and never reaches real content.
func TestLabyrinthTrapsCrawler(t *testing.T) {
	nw := netsim.New()
	cfg := webserver.Config{
		Domain: "maze.example", IP: "10.1.0.20",
		Pages:   webserver.ContentPages("maze.example"),
		Blocker: &LabyrinthBlocker{Patterns: []string{"Bytespider"}},
	}
	site, err := testFarm(t, nw).StartSite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()

	cr, err := crawler.New(nw, crawler.Profile{
		Token: "Bytespider", SourceIP: "16.0.1.40",
		Behavior: crawler.NoFetch, MaxPages: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := cr.Crawl(context.Background(), site.URL())
	if err != nil {
		t.Fatal(err)
	}
	// The crawler exhausted its page budget…
	if len(v.Fetched) != 12 {
		t.Fatalf("fetched %d pages, want the full budget of 12", len(v.Fetched))
	}
	// …but every page after the root was a maze decoy, and the real
	// content was never served.
	for _, p := range v.Fetched[1:] {
		if !strings.HasPrefix(p, "/maze/") {
			t.Errorf("crawler escaped the maze to %s", p)
		}
	}
	for _, rec := range site.Log() {
		if rec.Status != 200 {
			t.Errorf("labyrinth must look like success, got %d for %s", rec.Status, rec.Path)
		}
	}
	// A browser still sees the real site.
	client := nw.HTTPClient("198.51.100.99")
	req, _ := http.NewRequest("GET", site.URL()+"/", nil)
	req.Header.Set("User-Agent", useragent.BrowserChromeUA)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "Welcome") {
		t.Error("browser must receive the real page")
	}
}

func TestDecoyPageDeterministic(t *testing.T) {
	if decoyPage("/a") != decoyPage("/a") {
		t.Fatal("decoys must be deterministic per path")
	}
	if decoyPage("/a") == decoyPage("/b") {
		t.Fatal("different paths get different decoys")
	}
}
