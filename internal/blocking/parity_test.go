package blocking

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/webserver"
)

// TestFarmHostingParitySurvey runs the §6.2 survey with the whole
// population on one virtual-host farm and with the compatibility knob
// forcing a dedicated server per site, asserting the aggregate result is
// identical — the hosting redesign must change no verdict.
func TestFarmHostingParitySurvey(t *testing.T) {
	run := func(legacy bool) *SurveyResult {
		if legacy {
			webserver.SetLegacyPerSiteHosting(true)
			defer webserver.SetLegacyPerSiteHosting(false)
		}
		res, err := RunSurvey(context.Background(), 300, 11, 8, DefaultDetector)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	farm := run(false)
	legacy := run(true)
	if !reflect.DeepEqual(farm, legacy) {
		t.Errorf("survey diverged:\nfarm:   %+v\nlegacy: %+v", farm, legacy)
	}
	if farm.ActiveBlockers == 0 || farm.InherentlyBlocked == 0 {
		t.Errorf("degenerate survey result: %+v", farm)
	}
}
