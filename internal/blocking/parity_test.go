package blocking

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/webserver"
)

// TestFarmHostingParitySurvey runs the §6.2 survey with the whole
// population on one virtual-host farm and with the compatibility knob
// forcing a dedicated server per site, asserting the aggregate result is
// identical — the hosting redesign must change no verdict.
func TestFarmHostingParitySurvey(t *testing.T) {
	run := func(legacy bool) *SurveyResult {
		if legacy {
			webserver.SetLegacyPerSiteHosting(true)
			defer webserver.SetLegacyPerSiteHosting(false)
		}
		res, err := RunSurvey(context.Background(), 300, 11, 8, DefaultDetector)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	farm := run(false)
	legacy := run(true)
	if !reflect.DeepEqual(farm, legacy) {
		t.Errorf("survey diverged:\nfarm:   %+v\nlegacy: %+v", farm, legacy)
	}
	if farm.ActiveBlockers == 0 || farm.InherentlyBlocked == 0 {
		t.Errorf("degenerate survey result: %+v", farm)
	}
}

// TestFastHTTPParitySurvey runs the §6.2 survey on the netsim-native
// fast HTTP path (the default) and with the compatibility knob forcing
// stdlib net/http on both sides, asserting the aggregate result is
// identical — the hand-rolled framing must change no verdict.
func TestFastHTTPParitySurvey(t *testing.T) {
	run := func(legacy bool) *SurveyResult {
		if legacy {
			netsim.SetLegacyNetHTTP(true)
			defer netsim.SetLegacyNetHTTP(false)
		}
		res, err := RunSurvey(context.Background(), 300, 11, 8, DefaultDetector)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(false)
	legacy := run(true)
	if !reflect.DeepEqual(fast, legacy) {
		t.Errorf("survey diverged:\nfast:   %+v\nlegacy: %+v", fast, legacy)
	}
	if fast.ActiveBlockers == 0 || fast.InherentlyBlocked == 0 {
		t.Errorf("degenerate survey result: %+v", fast)
	}
}
