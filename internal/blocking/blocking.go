// Package blocking implements active crawler blocking (§6) and the
// paper's methodology for detecting it: the user-agent differential probe
// of §6.1 (visit with a browser user agent, revisit with AI crawler user
// agents, compare status codes, exceptions and content lengths per
// [53, 88]) and the §6.2 adoption survey over a top-10k site population.
//
// Substitution note: the paper's probe is a Selenium-driven headless
// Chromium, and 15% of sites block the *tool* via fingerprinting
// regardless of user agent. Browser fingerprinting has no observable
// equivalent at the HTTP layer of this simulation, so the prober marks
// itself with a fingerprint header and "inherently blocking" sites key on
// that marker; real crawlers (internal/crawler) do not carry it. The
// detector's logic — and its blindness — are unchanged: it cannot infer
// anything about sites that block the tool itself, making the measured
// adoption rate a lower bound exactly as in the paper.
package blocking

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/par"
	"repro/internal/robots"
	"repro/internal/stats"
	"repro/internal/useragent"
	"repro/internal/webserver"
)

// FingerprintHeader is the request header the probe tool carries; it
// stands in for the browser fingerprint surface real anti-bot services
// inspect.
const FingerprintHeader = "X-Client-Fingerprint"

// FingerprintHeadless is the probe tool's fingerprint value.
const FingerprintHeadless = "headless-chromium-selenium"

// BlockStyle is how a site responds to a blocked request.
type BlockStyle int

const (
	// StyleForbidden returns 403 with a short block page.
	StyleForbidden BlockStyle = iota
	// StyleChallenge returns a CAPTCHA-like challenge page with 403.
	StyleChallenge
	// StyleSoft200 returns HTTP 200 with a stub page instead of content —
	// detectable only by comparing content lengths (§6.1's length
	// feature; the ablation bench quantifies what status-only misses).
	StyleSoft200
)

// UABlocker blocks requests whose User-Agent contains any pattern.
type UABlocker struct {
	Patterns []string
	Style    BlockStyle
}

// Check implements webserver.Blocker.
func (b *UABlocker) Check(r *http.Request) *webserver.BlockDecision {
	if _, ok := useragent.MatchesAny(r.UserAgent(), b.Patterns); !ok {
		return nil
	}
	switch b.Style {
	case StyleChallenge:
		return &webserver.BlockDecision{
			Status: http.StatusForbidden, Challenge: true,
			Body: "<html><body><h1>Attention required</h1><p>Complete the CAPTCHA to continue.</p></body></html>",
		}
	case StyleSoft200:
		return &webserver.BlockDecision{
			Status: http.StatusOK,
			Body:   "<html><body>unavailable</body></html>",
		}
	default:
		return &webserver.BlockDecision{
			Status: http.StatusForbidden,
			Body:   "<html><body><h1>403 Forbidden</h1></body></html>",
		}
	}
}

// AutomationBlocker blocks any client whose fingerprint marks it as an
// automation tool, regardless of user agent (the sites §6.1 must exclude).
type AutomationBlocker struct{}

// Check implements webserver.Blocker.
func (AutomationBlocker) Check(r *http.Request) *webserver.BlockDecision {
	if r.Header.Get(FingerprintHeader) != "" {
		return &webserver.BlockDecision{
			Status: http.StatusForbidden,
			Body:   "<html><body>automated access denied</body></html>",
		}
	}
	return nil
}

// Chain composes blockers; the first non-nil decision wins.
type Chain []webserver.Blocker

// Check implements webserver.Blocker.
func (c Chain) Check(r *http.Request) *webserver.BlockDecision {
	for _, b := range c {
		if d := b.Check(r); d != nil {
			return d
		}
	}
	return nil
}

// DetectorOptions selects which §6.1 features the probe compares.
type DetectorOptions struct {
	// UseLength enables the content-length comparison (default true via
	// DefaultDetector). LengthRatio is the relative difference that counts
	// as significant (0 means 0.5).
	UseLength   bool
	LengthRatio float64
	// UseErrors treats transport errors on the AI crawl as blocking.
	UseErrors bool
}

// DefaultDetector is the paper's full feature set.
var DefaultDetector = DetectorOptions{UseLength: true, LengthRatio: 0.5, UseErrors: true}

// StatusOnlyDetector is the ablation: status codes only.
var StatusOnlyDetector = DetectorOptions{}

// SiteVerdict is the §6.1 classification of one site.
type SiteVerdict int

const (
	// NoInference: the control crawl failed; the site blocks the tool
	// itself and nothing can be said about AI-specific blocking.
	NoInference SiteVerdict = iota
	// BlocksAI: at least one AI user agent got a materially different
	// response than the control.
	BlocksAI
	// NoBlocking: control and AI responses match.
	NoBlocking
)

// String names the verdict.
func (v SiteVerdict) String() string {
	switch v {
	case NoInference:
		return "inherently blocks automation"
	case BlocksAI:
		return "actively blocks AI user agents"
	case NoBlocking:
		return "no user-agent blocking detected"
	default:
		return "unknown"
	}
}

// ProbeAgents are the two AI user agents the §6 probes use: the most
// frequently restricted agents without published IP ranges, so sites must
// block them by user agent.
var ProbeAgents = []string{"ClaudeBot", "anthropic-ai"}

// Prober runs user-agent differential probes.
type Prober struct {
	client  *http.Client
	options DetectorOptions
}

// NewProber builds a prober that dials from sourceIP.
func NewProber(nw *netsim.Network, sourceIP string, opts DetectorOptions) *Prober {
	if opts.UseLength && opts.LengthRatio == 0 {
		opts.LengthRatio = 0.5
	}
	return &Prober{client: nw.HTTPClient(sourceIP), options: opts}
}

// ProbeOutcome is one site's differential probe result.
type ProbeOutcome struct {
	URL           string
	Verdict       SiteVerdict
	ControlStatus int
	// AIStatus maps each probe agent to its response status (0 = error).
	AIStatus map[string]int
}

// Probe runs the §6.1 procedure against one site: control crawl with a
// Chrome user agent, then one crawl per AI probe agent, all carrying the
// automation fingerprint (it is the same tool).
func (p *Prober) Probe(ctx context.Context, siteURL string) (*ProbeOutcome, error) {
	out := &ProbeOutcome{URL: siteURL, AIStatus: make(map[string]int)}
	ctrlStatus, ctrlBody, err := p.fetch(ctx, siteURL, useragent.BrowserChromeUA)
	if err != nil {
		return nil, fmt.Errorf("blocking: control crawl: %w", err)
	}
	out.ControlStatus = ctrlStatus
	if ctrlStatus != http.StatusOK {
		out.Verdict = NoInference
		return out, nil
	}
	blocked := false
	for _, agent := range ProbeAgents {
		status, body, err := p.fetch(ctx, siteURL, useragent.FullUA(agent, "1.0"))
		if err != nil {
			if p.options.UseErrors {
				blocked = true
			}
			out.AIStatus[agent] = 0
			continue
		}
		out.AIStatus[agent] = status
		if status != ctrlStatus {
			blocked = true
			continue
		}
		if p.options.UseLength && significantDelta(len(ctrlBody), len(body), p.options.LengthRatio) {
			blocked = true
		}
	}
	if blocked {
		out.Verdict = BlocksAI
	} else {
		out.Verdict = NoBlocking
	}
	return out, nil
}

func significantDelta(control, ai int, ratio float64) bool {
	if control == 0 {
		return ai != 0
	}
	diff := control - ai
	if diff < 0 {
		diff = -diff
	}
	return float64(diff)/float64(control) >= ratio
}

func (p *Prober) fetch(ctx context.Context, url, ua string) (int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("User-Agent", ua)
	req.Header.Set(FingerprintHeader, FingerprintHeadless)
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String(), nil
}

// Population fractions from §6.2, expressed over the top 10k.
const (
	// PaperInherentRate: 1,487 of 10,000 sites block the tool itself.
	PaperInherentRate = 0.1487
	// PaperUABlockRate: 1,433 of 10,000 block the Anthropic user agents.
	PaperUABlockRate = 0.1433
	// PaperRobotsOverlapRate: 35 of the 1,433 also restrict those agents
	// in robots.txt (§6.2: "only 2%").
	PaperRobotsOverlapRate = 35.0 / 1433.0
	// soft200Share is the share of UA blockers that return 200 with a stub
	// page, detectable only via content length.
	soft200Share = 0.15
)

// SiteSpec is the generated ground truth for one survey site.
type SiteSpec struct {
	Domain        string
	IP            string
	InherentBlock bool
	UABlock       bool
	Style         BlockStyle
	// RobotsRestrictsProbeAgents mirrors the §6.2 overlap measurement.
	RobotsRestrictsProbeAgents bool
}

// GeneratePopulation builds n survey sites with the paper's §6.2 mix.
// Counts are exact (category sizes are rounded, then assigned by shuffled
// position) so the survey reproduces the paper's proportions at any scale.
func GeneratePopulation(n int, seed int64) []SiteSpec {
	rn := stats.NewRand(seed).Fork("blocking-population")
	nInherent := int(float64(n)*PaperInherentRate + 0.5)
	nUA := int(float64(n)*PaperUABlockRate + 0.5)
	nOverlap := int(float64(nUA)*PaperRobotsOverlapRate + 0.5)

	specs := make([]SiteSpec, n)
	perm := rn.Perm(n)
	for i := range specs {
		specs[i] = SiteSpec{
			Domain: fmt.Sprintf("top%05d.example", i+1),
			IP:     fmt.Sprintf("10.%d.%d.%d", 10+i/65536, (i/256)%256, i%256),
		}
	}
	// First nInherent shuffled positions block inherently; next nUA block
	// by user agent.
	for _, idx := range perm[:nInherent] {
		specs[idx].InherentBlock = true
	}
	uaIdx := perm[nInherent : nInherent+nUA]
	for j, idx := range uaIdx {
		specs[idx].UABlock = true
		switch {
		case rn.Bool(soft200Share):
			specs[idx].Style = StyleSoft200
		case rn.Bool(0.3):
			specs[idx].Style = StyleChallenge
		default:
			specs[idx].Style = StyleForbidden
		}
		if j < nOverlap {
			specs[idx].RobotsRestrictsProbeAgents = true
		}
	}
	return specs
}

// StartSite hosts one survey site on the farm according to its spec.
func StartSite(farm *webserver.Farm, spec SiteSpec, bodySize int) (*webserver.Site, error) {
	body := "<html><body><h1>" + spec.Domain + "</h1>" +
		strings.Repeat("<p>content paragraph</p>\n", bodySize/25+1) + "</body></html>"
	var robotsTxt *string
	if spec.RobotsRestrictsProbeAgents {
		txt := "User-agent: ClaudeBot\nUser-agent: anthropic-ai\nDisallow: /\n"
		robotsTxt = &txt
	}
	var chain Chain
	if spec.InherentBlock {
		chain = append(chain, AutomationBlocker{})
	}
	if spec.UABlock {
		chain = append(chain, &UABlocker{Patterns: ProbeAgents, Style: spec.Style})
	}
	cfg := webserver.Config{
		Domain:    spec.Domain,
		IP:        spec.IP,
		RobotsTxt: robotsTxt,
		Pages:     map[string]webserver.Page{"/": {Body: body}},
	}
	if len(chain) > 0 {
		cfg.Blocker = chain
	}
	return farm.StartSite(cfg)
}

// surveyFarmIP hosts every survey site: one listener for the whole
// population, outside the 10.10+.x.x block GeneratePopulation assigns to
// sites.
const surveyFarmIP = "10.9.0.1"

// SurveyResult aggregates the §6.2 measurement.
type SurveyResult struct {
	Probed            int
	InherentlyBlocked int
	ActiveBlockers    int
	NoBlocking        int
	// RobotsOverlap counts detected blockers that also restrict the probe
	// agents in robots.txt (the paper's 35-of-1,433 finding).
	RobotsOverlap int
}

// RunSurvey generates a population of n sites, hosts them, probes each
// with the §6.1 detector, and checks robots.txt overlap for detected
// blockers. workers bounds probe concurrency; cancellation is honored
// between sites.
func RunSurvey(ctx context.Context, n int, seed int64, workers int, opts DetectorOptions) (*SurveyResult, error) {
	if workers <= 0 {
		workers = 32
	}
	workers = par.Clamp(workers)
	nw := netsim.New()
	specs := GeneratePopulation(n, seed)
	sizeRand := stats.NewRand(seed).Fork("body-sizes")
	// The whole population shares one virtual-host farm: site startup is
	// a map insert plus an IP alias, not a per-site server.
	farm, err := webserver.NewFarm(nw, surveyFarmIP)
	if err != nil {
		return nil, err
	}
	defer farm.Close()
	for i, spec := range specs {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if _, err := StartSite(farm, spec, 1500+sizeRand.Intn(3000)); err != nil {
			return nil, err
		}
	}

	prober := func() *Prober { return NewProber(nw, "198.51.100.200", opts) }
	type job struct{ i int }
	verdicts := make([]SiteVerdict, len(specs))
	jobs := make(chan job)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := prober()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // drain remaining jobs after cancellation
				}
				out, err := p.Probe(ctx, "http://"+specs[j.i].Domain+"/")
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				verdicts[j.i] = out.Verdict
			}
		}()
	}
	for i := range specs {
		jobs <- job{i}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	res := &SurveyResult{Probed: len(specs)}
	// The overlap pass issues requests without a caller context, so give
	// this client its own overall timeout as the bound.
	client := nw.HTTPClient("198.51.100.201")
	client.Timeout = 10 * time.Second
	for i, v := range verdicts {
		switch v {
		case NoInference:
			res.InherentlyBlocked++
		case BlocksAI:
			res.ActiveBlockers++
			if robotsRestricts(client, specs[i].Domain) {
				res.RobotsOverlap++
			}
		case NoBlocking:
			res.NoBlocking++
		}
	}
	return res, nil
}

// robotsRestricts fetches the site's robots.txt with a neutral user agent
// and reports whether it explicitly restricts either probe agent.
func robotsRestricts(client *http.Client, domain string) bool {
	req, err := http.NewRequest(http.MethodGet, "http://"+domain+"/robots.txt", nil)
	if err != nil {
		return false
	}
	req.Header.Set("User-Agent", "robots-survey/1.0")
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	rb := parseRobots(sb.String())
	for _, agent := range ProbeAgents {
		if lvl, explicit := rb.ExplicitRestriction(agent); explicit && lvl.Restricted() {
			return true
		}
	}
	return false
}

// parseRobots is a tiny indirection for testability. It parses through
// the shared content-keyed cache: survey populations reuse a handful of
// robots.txt templates across thousands of sites.
func parseRobots(body string) *robots.Robots { return robots.ParseCached(body) }

// LabyrinthBlocker implements the "serve fake content" blocking style
// (§2.2, Cloudflare's AI Labyrinth [110]): matched crawlers receive
// generated decoy pages whose links lead only to more decoys, wasting the
// crawler's budget without ever returning real content or an error it
// could detect.
type LabyrinthBlocker struct {
	// Patterns are the user-agent substrings to trap.
	Patterns []string
}

// Check implements webserver.Blocker.
func (b *LabyrinthBlocker) Check(r *http.Request) *webserver.BlockDecision {
	if _, ok := useragent.MatchesAny(r.UserAgent(), b.Patterns); !ok {
		return nil
	}
	return &webserver.BlockDecision{
		Status: http.StatusOK,
		Body:   decoyPage(r.URL.Path),
	}
}

// decoyPage deterministically generates a plausible page whose links all
// stay inside the maze.
func decoyPage(path string) string {
	h := fnv32(path)
	var sb strings.Builder
	sb.WriteString("<html><head><title>Archive section ")
	sb.WriteString(hexByte(byte(h)))
	sb.WriteString("</title></head><body>\n<h1>Archive</h1>\n")
	for i := 0; i < 4; i++ {
		h = h*1664525 + 1013904223
		sb.WriteString("<p>Entry ")
		sb.WriteString(hexByte(byte(h >> 8)))
		sb.WriteString(": procedurally generated filler prose that resembles ")
		sb.WriteString("an article body but carries no information.</p>\n")
		sb.WriteString(`<a href="/maze/` + hexByte(byte(h>>16)) + hexByte(byte(h>>24)) + `.html">continue</a>` + "\n")
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func hexByte(b byte) string {
	const digits = "0123456789abcdef"
	return string([]byte{digits[b>>4], digits[b&0xf]})
}
