package survey

import (
	"math"
	"testing"
)

func pop(t *testing.T) *Population {
	t.Helper()
	return Generate(17)
}

func TestPopulationSize(t *testing.T) {
	p := pop(t)
	if len(p.Respondents) != PaperN {
		t.Fatalf("N = %d, want %d", len(p.Respondents), PaperN)
	}
}

func TestTable5(t *testing.T) {
	p := pop(t)
	t5 := p.Table5()
	want := map[IncomeBucket]int{
		LessThan1Year: 17, OneToFiveYears: 68, FiveToTenYears: 44, TenPlusYears: 47,
	}
	total := 0
	for b, k := range want {
		if t5[b] != k {
			t.Errorf("%v = %d, want %d", b, t5[b], k)
		}
		total += t5[b]
	}
	if total != 176 {
		t.Errorf("Table 5 total = %d, want 176", total)
	}
}

func TestTable6(t *testing.T) {
	p := pop(t)
	t6 := p.Table6()
	want := map[string]int{
		"North America": 109, "Europe": 52, "Asia": 21,
		"South America": 18, "Africa": 2, "Oceania": 1,
	}
	for c, k := range want {
		if t6[c] != k {
			t.Errorf("%s = %d, want %d", c, t6[c], k)
		}
	}
	// Country detail: 89 US, 18 UK, 9 PH (§4.1, App. D.2).
	counts := map[string]int{}
	for _, r := range p.Respondents {
		counts[r.Country]++
	}
	if counts["United States"] != 89 {
		t.Errorf("US = %d, want 89", counts["United States"])
	}
	if counts["United Kingdom"] != 18 {
		t.Errorf("UK = %d, want 18", counts["United Kingdom"])
	}
	if counts["Philippines"] != 9 {
		t.Errorf("PH = %d, want 9", counts["Philippines"])
	}
}

func TestTable7(t *testing.T) {
	p := pop(t)
	rows := p.Table7()
	if len(rows) < 5 {
		t.Fatalf("art types = %d", len(rows))
	}
	want := []struct {
		name  string
		count int
	}{
		{"Illustration", 163},
		{"Digital 2D", 143},
		{"Character and Creature Design", 99},
		{"Traditional Painting and Drawing", 78},
		{"Concept Art", 68},
	}
	for i, w := range want {
		if rows[i].Key != w.name || rows[i].Count != w.count {
			t.Errorf("rank %d = %s/%d, want %s/%d",
				i+1, rows[i].Key, rows[i].Count, w.name, w.count)
		}
	}
	top5 := 0
	for i := 0; i < 5; i++ {
		top5 += rows[i].Count
	}
	if top5 != 551 {
		t.Errorf("top-5 total = %d, want 551", top5)
	}
}

func TestTable8(t *testing.T) {
	p := pop(t)
	t8 := p.Table8()
	want := map[Term]float64{
		TermWebsite: 4.60, TermSearchEngine: 4.35, TermGenerativeAI: 3.89,
		TermRobotsTxt: 1.99, TermBogus: 1.56,
	}
	for term, mean := range want {
		if math.Abs(t8[term]-mean) > 0.01 {
			t.Errorf("%s mean = %.3f, want %.2f", term, t8[term], mean)
		}
	}
	// The digital-literacy check: the bogus item must rank lowest.
	for term, mean := range t8 {
		if term != TermBogus && mean <= t8[TermBogus] {
			t.Errorf("bogus item (%.2f) must rank below %s (%.2f)",
				t8[TermBogus], term, mean)
		}
	}
}

func TestHeadline(t *testing.T) {
	p := pop(t)
	h := p.ComputeHeadline()
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"professional %", h.ProfessionalPct, 67, 1},
		{"makes money %", h.MakesMoneyPct, 87, 1},
		{"never heard robots.txt %", h.NeverHeardRobotsPct, 59, 1},
		{"moderate+ impact %", h.ModerateImpactPlusPct, 79, 1.5},
		{"significant+ impact %", h.SignificantPlusPct, 54, 1.5},
		{"took action %", h.TookActionPct, 83, 1},
		{"glaze among actors %", h.GlazeAmongActorsPct, 71, 1},
		{"very likely block %", h.VeryLikelyBlockPct, 93, 2},
		{"want block %", h.WantBlockPct, 97, 1},
		{"distrust among new %", h.DistrustAmongNewPct, 77, 1.5},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %.1f, want %.0f±%.1f", c.name, c.got, c.want, c.tol)
		}
	}
	if h.UnderstoodAfterCount != 113 {
		t.Errorf("understood after = %d, want 113", h.UnderstoodAfterCount)
	}
	if h.AwareWithSite != 38 {
		t.Errorf("aware with site = %d, want 38", h.AwareWithSite)
	}
	if h.AwareSiteNotUsing != 27 {
		t.Errorf("aware not using = %d, want 27", h.AwareSiteNotUsing)
	}
	if h.AwareSiteNoControl != 9 {
		t.Errorf("no control = %d, want 9", h.AwareSiteNoControl)
	}
	if h.MultiPlatform != 5 {
		t.Errorf("multi-platform = %d, want 5", h.MultiPlatform)
	}
}

func TestAdoptionLikelihoodAmongNew(t *testing.T) {
	p := pop(t)
	var likelyPlus, total int
	for _, r := range p.Respondents {
		if r.HeardRobots {
			continue
		}
		total++
		if r.AdoptLikelihood >= Likely {
			likelyPlus++
		}
	}
	if total != 119 {
		t.Fatalf("not-heard population = %d, want 119", total)
	}
	pct := 100 * float64(likelyPlus) / float64(total)
	if math.Abs(pct-75) > 1.5 {
		t.Errorf("likely-to-adopt among new = %.1f%%, want ≈75%%", pct)
	}
}

func TestThemeCounts(t *testing.T) {
	p := pop(t)
	for _, q := range Questions() {
		entries := p.ThemeCounts(q)
		if len(entries) == 0 {
			t.Errorf("question %s has no themes", q)
			continue
		}
		valid := map[string]bool{}
		for _, th := range Codebook[q] {
			valid[th] = true
		}
		for _, e := range entries {
			if !valid[e.Key] {
				t.Errorf("%s: theme %q not in codebook", q, e.Key)
			}
		}
	}
	// Distrust themes exist for the 92 distrusting respondents.
	distrust := p.ThemeCounts(QWhyDistrust)
	var total int
	for _, e := range distrust {
		total += e.Count
	}
	if total != 92 {
		t.Errorf("distrust theme assignments = %d, want 92", total)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(99)
	b := Generate(99)
	for i := range a.Respondents {
		ra, rb := a.Respondents[i], b.Respondents[i]
		if ra.Country != rb.Country || ra.HeardRobots != rb.HeardRobots ||
			ra.JobImpact != rb.JobImpact || len(ra.ArtTypes) != len(rb.ArtTypes) {
			t.Fatalf("respondent %d differs across identical seeds", i)
		}
	}
}

func TestSeedChangesJointAssignment(t *testing.T) {
	a := Generate(1)
	b := Generate(2)
	same := 0
	for i := range a.Respondents {
		if a.Respondents[i].Country == b.Respondents[i].Country {
			same++
		}
	}
	if same == len(a.Respondents) {
		t.Fatal("different seeds must shuffle attribute assignment")
	}
	// But the marginals stay exact.
	if a.Table6()["Europe"] != 52 || b.Table6()["Europe"] != 52 {
		t.Fatal("marginals must be seed-independent")
	}
}

func TestEveryRespondentHasFamiliarity(t *testing.T) {
	p := pop(t)
	for _, r := range p.Respondents {
		for _, term := range Terms {
			v, ok := r.Familiarity[term]
			if !ok || v < 1 || v > 5 {
				t.Fatalf("respondent %d: familiarity[%s] = %d, ok=%v", r.ID, term, v, ok)
			}
		}
	}
}

func TestIncomeBucketStrings(t *testing.T) {
	if LessThan1Year.String() == "" || NoIncome.String() == "" {
		t.Fatal("bucket strings must be non-empty")
	}
	if OneToFiveYears.String() != "1-5 years" {
		t.Fatalf("bucket = %q", OneToFiveYears.String())
	}
}

func TestRobotsUsersSubset(t *testing.T) {
	p := pop(t)
	for _, r := range p.Respondents {
		if r.UsesRobotsNow && (!r.HasPersonalSite || !r.HeardRobots) {
			t.Fatal("robots.txt users must be aware site owners")
		}
		if r.NoRobotsControl && r.UsesRobotsNow {
			t.Fatal("no-control respondents cannot be users")
		}
	}
}

func TestExampleQuotes(t *testing.T) {
	// Every codebook theme has a representative quote from the paper.
	for q, themes := range Codebook {
		for _, theme := range themes {
			if ExampleQuote(q, theme) == "" {
				t.Errorf("%s/%s: missing example quote", q, theme)
			}
		}
	}
	if ExampleQuote("nope", "nope") != "" {
		t.Error("unknown question must return empty")
	}
}
