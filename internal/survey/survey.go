// Package survey models the paper's §4 user study: a 203-artist
// population whose joint attribute distribution reproduces every
// statistic the paper reports — the demographic tables (Tables 5–8
// including the bogus-item digital-literacy check), the §4.2 sentiment
// findings, the §4.3 awareness/ability/agency gaps, and the codebook
// theme frequencies of Tables 9–12.
//
// The population is constructed, not sampled: category sizes are
// allocated exactly and then assigned to shuffled respondents, so every
// tabulation is reproducible and matches the paper's counts precisely.
package survey

import (
	"sort"

	"repro/internal/stats"
)

// PaperN is the number of valid survey responses (§4.1).
const PaperN = 203

// Likert is a 1–5 scale response.
type Likert int

// Likert anchors.
const (
	NotLikelyAtAll Likert = 1 + iota
	Unlikely
	Neutral
	Likely
	VeryLikely
)

// Impact is the Q16 job-security impact scale.
type Impact int

// Impact levels.
const (
	NoImpact Impact = iota
	MinorImpact
	ModerateImpact
	SignificantImpact
	SevereImpact
)

// IncomeBucket is Table 5's "how long making money" scale.
type IncomeBucket int

// Income duration buckets.
const (
	NoIncome IncomeBucket = iota
	LessThan1Year
	OneToFiveYears
	FiveToTenYears
	TenPlusYears
)

// String renders the bucket as in Table 5.
func (b IncomeBucket) String() string {
	switch b {
	case LessThan1Year:
		return "Less than 1 year"
	case OneToFiveYears:
		return "1-5 years"
	case FiveToTenYears:
		return "5-10 years"
	case TenPlusYears:
		return "10 years or more"
	default:
		return "no income from art"
	}
}

// Term is a Q6 familiarity item.
type Term string

// The five Q6 items, including the bogus control item from Hargittai [41].
const (
	TermWebsite      Term = "Website"
	TermSearchEngine Term = "Search engine"
	TermGenerativeAI Term = "Generative AI"
	TermRobotsTxt    Term = "Robots.txt"
	TermBogus        Term = "Nearest diffusion tree" // does not exist
)

// Terms lists the familiarity items in Table 8 order.
var Terms = []Term{TermWebsite, TermSearchEngine, TermGenerativeAI, TermRobotsTxt, TermBogus}

// Respondent is one artist's joint response.
type Respondent struct {
	ID           int
	Professional bool
	MakesMoney   bool
	Income       IncomeBucket
	Continent    string
	Country      string
	ArtTypes     []string
	Familiarity  map[Term]Likert

	HasPersonalSite bool
	HeardRobots     bool
	// UnderstandsRobots: basic understanding (before the study for those
	// who had heard of it, after the explanation for those who had not).
	UnderstandsRobots bool

	JobImpact  Impact
	TookAction bool
	UsesGlaze  bool

	// BlockLikelihood is Q23 (provider-offered blocking mechanism).
	BlockLikelihood Likert
	// AdoptLikelihood is Q26 (adopt robots.txt in the future); only asked
	// of those who had not heard of robots.txt.
	AdoptLikelihood Likert
	// TrustAI is Q27: how likely AI companies are to respect robots.txt.
	TrustAI Likert

	// UsesRobotsNow: currently uses robots.txt to disallow AI crawlers.
	UsesRobotsNow bool
	// NoRobotsControl: reports having no control over robots.txt content.
	NoRobotsControl bool
	// MultiPlatformIssue: notes that posting on many platforms limits
	// what a personal-site robots.txt can protect.
	MultiPlatformIssue bool

	// Themes maps codebook questions to assigned open-answer themes.
	Themes map[string][]string
}

// Codebook questions (Tables 9–12).
const (
	QOtherActions = "other-actions" // Table 9
	QWhyNotAdopt  = "why-not-adopt" // Table 10
	QWhyBlock     = "why-block"     // Table 11
	QWhyDistrust  = "why-distrust"  // Table 12
)

// Codebook themes per question, in table order.
var Codebook = map[string][]string{
	QOtherActions: {"modify post", "switch platforms", "raise awareness",
		"unionize", "change career path", "miscellaneous"},
	QWhyNotAdopt: {"efficacy", "usability", "more information",
		"no personal website", "search results"},
	QWhyBlock: {"protection", "consent", "compensation",
		"useful mechanism", "legal benefit", "misc"},
	QWhyDistrust: {"track record", "profit", "perception", "loophole",
		"legal enforcement", "voluntary nature", "misc"},
}

// Population is the generated respondent set.
type Population struct {
	Respondents []Respondent
}

// Anchor counts from the paper.
const (
	countProfessional  = 136 // 67%
	countMakesMoney    = 176 // Table 5 total
	countHeardRobots   = 84  // 41%; 119 had not
	countGlazeUsers    = 120 // 71% of the 169 action-takers
	countTookAction    = 169 // 83%
	countAwareWithSite = 38  // §4.3: aware of robots.txt + personal site
	countNotUtilized   = 27  // of the 38, have not used robots.txt
	countNoControl     = 9   // of the 38, report no control
	countMultiPlatform = 5   // of the 38, note the multi-platform limit
)

// Generate builds the 203-artist population.
func Generate(seed int64) *Population {
	rn := stats.NewRand(seed).Fork("survey")
	n := PaperN
	rs := make([]Respondent, n)
	for i := range rs {
		rs[i] = Respondent{
			ID:          i + 1,
			Familiarity: make(map[Term]Likert),
			Themes:      make(map[string][]string),
		}
	}

	assign := func(count int, f func(r *Respondent)) {
		idx := rn.SampleWithoutReplacement(n, count)
		for _, i := range idx {
			f(&rs[i])
		}
	}

	assign(countProfessional, func(r *Respondent) { r.Professional = true })

	// Table 5: income duration buckets (17/68/44/47 of the 176 earners).
	{
		idx := rn.SampleWithoutReplacement(n, countMakesMoney)
		buckets := []struct {
			b IncomeBucket
			k int
		}{
			{LessThan1Year, 17}, {OneToFiveYears, 68},
			{FiveToTenYears, 44}, {TenPlusYears, 47},
		}
		pos := 0
		for _, bk := range buckets {
			for j := 0; j < bk.k; j++ {
				r := &rs[idx[pos]]
				r.MakesMoney = true
				r.Income = bk.b
				pos++
			}
		}
	}

	// Table 6: continents with the country detail the paper gives.
	{
		perm := rn.Perm(n)
		type geo struct {
			continent string
			countries []string
			counts    []int
			total     int
		}
		geos := []geo{
			{"North America", []string{"United States", "Canada", "Mexico"}, []int{89, 15, 5}, 109},
			{"Europe", []string{"United Kingdom", "Poland", "Germany", "France", "Spain", "Italy"}, []int{18, 5, 5, 9, 8, 7}, 52},
			{"Asia", []string{"Philippines", "Japan", "India", "China"}, []int{9, 4, 4, 4}, 21},
			{"South America", []string{"Brazil", "Argentina"}, []int{12, 6}, 18},
			{"Africa", []string{"South Africa"}, []int{2}, 2},
			{"Oceania", []string{"Australia"}, []int{1}, 1},
		}
		pos := 0
		for _, g := range geos {
			ci := 0
			remainingInCountry := g.counts[0]
			for j := 0; j < g.total; j++ {
				for remainingInCountry == 0 && ci < len(g.countries)-1 {
					ci++
					remainingInCountry = g.counts[ci]
				}
				r := &rs[perm[pos]]
				r.Continent = g.continent
				r.Country = g.countries[ci]
				remainingInCountry--
				pos++
			}
		}
	}

	// Table 7: multi-select art types with the paper's top-five counts.
	for _, at := range []struct {
		name  string
		count int
	}{
		{"Illustration", 163},
		{"Digital 2D", 143},
		{"Character and Creature Design", 99},
		{"Traditional Painting and Drawing", 78},
		{"Concept Art", 68},
		{"Digital 3D", 41},
		{"Anime and Manga Art", 37},
		{"Comicbook Art", 22},
	} {
		name := at.name
		assign(at.count, func(r *Respondent) { r.ArtTypes = append(r.ArtTypes, name) })
	}

	// Table 8: familiarity means via exact two-point allocations.
	for _, tm := range []struct {
		term Term
		mean float64
	}{
		{TermWebsite, 4.60}, {TermSearchEngine, 4.35}, {TermGenerativeAI, 3.89},
		{TermRobotsTxt, 1.99}, {TermBogus, 1.56},
	} {
		base := Likert(int(tm.mean))
		frac := tm.mean - float64(int(tm.mean))
		high := int(frac*float64(n) + 0.5)
		idx := rn.Perm(n)
		for j, i := range idx {
			if j < high {
				rs[i].Familiarity[tm.term] = base + 1
			} else {
				rs[i].Familiarity[tm.term] = base
			}
		}
	}

	// Q16 job impact: 55 severe + 55 significant (54%), 51 moderate
	// (cumulative 79%), 30 minor, 12 none.
	{
		perm := rn.Perm(n)
		levels := []struct {
			lvl Impact
			k   int
		}{
			{SevereImpact, 55}, {SignificantImpact, 55}, {ModerateImpact, 51},
			{MinorImpact, 30}, {NoImpact, 12},
		}
		pos := 0
		for _, lv := range levels {
			for j := 0; j < lv.k; j++ {
				rs[perm[pos]].JobImpact = lv.lvl
				pos++
			}
		}
	}

	// Actions: 169 took action; 120 of them use Glaze (71%).
	{
		idx := rn.SampleWithoutReplacement(n, countTookAction)
		for j, i := range idx {
			rs[i].TookAction = true
			if j < countGlazeUsers {
				rs[i].UsesGlaze = true
			}
			// Table 9 themes for the "other actions" question.
			theme := Codebook[QOtherActions][rn.WeightedIndex([]float64{30, 25, 15, 8, 4, 18})]
			rs[i].Themes[QOtherActions] = append(rs[i].Themes[QOtherActions], theme)
		}
	}

	// Q23: provider-offered blocking. 185 very likely (93%), 12 likely
	// (97% cumulative), 4 neutral, 2 unlikely.
	{
		perm := rn.Perm(n)
		levels := []struct {
			lvl Likert
			k   int
		}{
			{VeryLikely, 185}, {Likely, 12}, {Neutral, 4}, {Unlikely, 2},
		}
		pos := 0
		for _, lv := range levels {
			for j := 0; j < lv.k; j++ {
				r := &rs[perm[pos]]
				r.BlockLikelihood = lv.lvl
				if lv.lvl >= Likely {
					theme := Codebook[QWhyBlock][rn.WeightedIndex([]float64{35, 25, 15, 10, 5, 10})]
					r.Themes[QWhyBlock] = append(r.Themes[QWhyBlock], theme)
				} else {
					rs[perm[pos]].Themes[QWhyNotAdopt] = append(rs[perm[pos]].Themes[QWhyNotAdopt],
						Codebook[QWhyNotAdopt][rn.WeightedIndex([]float64{40, 25, 20, 10, 5})])
				}
				pos++
			}
		}
	}

	// robots.txt awareness: 84 heard (90% of them understand), 119 not
	// (113 understand after the explanation).
	{
		idx := rn.SampleWithoutReplacement(n, countHeardRobots)
		heardSet := make(map[int]bool, len(idx))
		for j, i := range idx {
			rs[i].HeardRobots = true
			heardSet[i] = true
			rs[i].UnderstandsRobots = j < 76 // 90% of 84
		}
		var notHeard []int
		for i := range rs {
			if !heardSet[i] {
				notHeard = append(notHeard, i)
			}
		}
		// 113 of 119 gain understanding; 75% (89) likely/very likely to
		// adopt; 77% (92) distrust AI companies.
		for j, i := range notHeard {
			rs[i].UnderstandsRobots = j < 113
			switch {
			case j < 50:
				rs[i].AdoptLikelihood = VeryLikely
			case j < 89:
				rs[i].AdoptLikelihood = Likely
			case j < 104:
				rs[i].AdoptLikelihood = Neutral
			default:
				rs[i].AdoptLikelihood = Unlikely
				rs[i].Themes[QWhyNotAdopt] = append(rs[i].Themes[QWhyNotAdopt],
					Codebook[QWhyNotAdopt][rn.WeightedIndex([]float64{40, 25, 20, 10, 5})])
			}
		}
		sh := rn.Fork("distrust")
		sh.Shuffle(len(notHeard), func(a, b int) { notHeard[a], notHeard[b] = notHeard[b], notHeard[a] })
		for j, i := range notHeard {
			if j < 92 {
				if sh.Bool(0.5) {
					rs[i].TrustAI = Unlikely
				} else {
					rs[i].TrustAI = NotLikelyAtAll
				}
				rs[i].Themes[QWhyDistrust] = append(rs[i].Themes[QWhyDistrust],
					Codebook[QWhyDistrust][sh.WeightedIndex([]float64{30, 20, 15, 10, 10, 10, 5})])
			} else {
				rs[i].TrustAI = Neutral
			}
		}
	}

	// §4.3 agency: 38 aware-with-personal-site; 27 of them never used
	// robots.txt; 9 report no control; 5 note the multi-platform limit.
	{
		var heard []int
		for i := range rs {
			if rs[i].HeardRobots {
				heard = append(heard, i)
			}
		}
		sh := rn.Fork("sites")
		sh.Shuffle(len(heard), func(a, b int) { heard[a], heard[b] = heard[b], heard[a] })
		for j := 0; j < countAwareWithSite; j++ {
			r := &rs[heard[j]]
			r.HasPersonalSite = true
			switch {
			case j < countAwareWithSite-countNotUtilized:
				r.UsesRobotsNow = true // 11 of 38 actually use it
			case j < countAwareWithSite-countNotUtilized+countNoControl:
				r.NoRobotsControl = true
			}
			if j >= countAwareWithSite-countMultiPlatform {
				r.MultiPlatformIssue = true
			}
		}
		// Some not-heard artists also run personal sites.
		extra := 0
		for i := range rs {
			if !rs[i].HeardRobots && extra < 60 && sh.Bool(0.55) {
				rs[i].HasPersonalSite = true
				extra++
			}
		}
	}
	return &Population{Respondents: rs}
}

// Table5 tabulates income duration (Table 5).
func (p *Population) Table5() map[IncomeBucket]int {
	out := make(map[IncomeBucket]int)
	for _, r := range p.Respondents {
		if r.MakesMoney {
			out[r.Income]++
		}
	}
	return out
}

// Table6 tabulates continent of residence (Table 6).
func (p *Population) Table6() map[string]int {
	out := make(map[string]int)
	for _, r := range p.Respondents {
		out[r.Continent]++
	}
	return out
}

// Table7 returns art-type counts sorted descending (Table 7).
func (p *Population) Table7() []stats.Entry {
	c := stats.NewCounter()
	for _, r := range p.Respondents {
		for _, at := range r.ArtTypes {
			c.Inc(at)
		}
	}
	return c.Sorted()
}

// Table8 returns mean familiarity per term (Table 8).
func (p *Population) Table8() map[Term]float64 {
	sums := make(map[Term]int)
	for _, r := range p.Respondents {
		for term, v := range r.Familiarity {
			sums[term] += int(v)
		}
	}
	out := make(map[Term]float64, len(sums))
	for term, s := range sums {
		out[term] = float64(s) / float64(len(p.Respondents))
	}
	return out
}

// Headline bundles §4.2–4.3's headline statistics.
type Headline struct {
	N                     int
	ProfessionalPct       float64
	MakesMoneyPct         float64
	NeverHeardRobotsPct   float64 // 59%
	UnderstoodAfterCount  int     // 113 of 119
	ModerateImpactPlusPct float64 // ≥79%
	SignificantPlusPct    float64 // ≥54%
	TookActionPct         float64 // 83%
	GlazeAmongActorsPct   float64 // 71%
	VeryLikelyBlockPct    float64 // 93%
	WantBlockPct          float64 // 97% (likely or very likely)
	DistrustAmongNewPct   float64 // 77%
	AwareWithSite         int     // 38
	AwareSiteNotUsing     int     // 27
	AwareSiteNoControl    int     // 9
	MultiPlatform         int     // 5
}

// ComputeHeadline tabulates the headline statistics.
func (p *Population) ComputeHeadline() Headline {
	n := len(p.Respondents)
	h := Headline{N: n}
	var prof, money, notHeard, understoodAfter, modPlus, sigPlus int
	var action, glaze, veryLikely, wantBlock, newDistrust, newTotal int
	for _, r := range p.Respondents {
		if r.Professional {
			prof++
		}
		if r.MakesMoney {
			money++
		}
		if !r.HeardRobots {
			notHeard++
			newTotal++
			if r.UnderstandsRobots {
				understoodAfter++
			}
			if r.TrustAI <= Unlikely && r.TrustAI != 0 {
				newDistrust++
			}
		}
		if r.JobImpact >= ModerateImpact {
			modPlus++
		}
		if r.JobImpact >= SignificantImpact {
			sigPlus++
		}
		if r.TookAction {
			action++
			if r.UsesGlaze {
				glaze++
			}
		}
		if r.BlockLikelihood == VeryLikely {
			veryLikely++
		}
		if r.BlockLikelihood >= Likely {
			wantBlock++
		}
		if r.HasPersonalSite && r.HeardRobots {
			h.AwareWithSite++
			if !r.UsesRobotsNow {
				h.AwareSiteNotUsing++
			}
			if r.NoRobotsControl {
				h.AwareSiteNoControl++
			}
			if r.MultiPlatformIssue {
				h.MultiPlatform++
			}
		}
	}
	h.ProfessionalPct = stats.Percent(prof, n)
	h.MakesMoneyPct = stats.Percent(money, n)
	h.NeverHeardRobotsPct = stats.Percent(notHeard, n)
	h.UnderstoodAfterCount = understoodAfter
	h.ModerateImpactPlusPct = stats.Percent(modPlus, n)
	h.SignificantPlusPct = stats.Percent(sigPlus, n)
	h.TookActionPct = stats.Percent(action, n)
	h.GlazeAmongActorsPct = stats.Percent(glaze, action)
	h.VeryLikelyBlockPct = stats.Percent(veryLikely, n)
	h.WantBlockPct = stats.Percent(wantBlock, n)
	h.DistrustAmongNewPct = stats.Percent(newDistrust, newTotal)
	return h
}

// ThemeCounts tabulates codebook theme frequencies for a question
// (Tables 9–12).
func (p *Population) ThemeCounts(question string) []stats.Entry {
	c := stats.NewCounter()
	for _, r := range p.Respondents {
		for _, th := range r.Themes[question] {
			c.Inc(th)
		}
	}
	return c.Sorted()
}

// Questions returns the codebook question keys, sorted.
func Questions() []string {
	out := make([]string, 0, len(Codebook))
	for q := range Codebook {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// exampleQuotes carries the representative open-answer quote the paper's
// codebook gives for each theme (Tables 9–12).
var exampleQuotes = map[string]map[string]string{
	QOtherActions: {
		"modify post":        "Overlaying watermarks or art filters to modify the artwork",
		"switch platforms":   "Use Cara instead of Instagram",
		"raise awareness":    "Spreading awareness about the damage AI-generated art does",
		"unionize":           "Connecting with groups of professional artists being impacted to search for collective solutions for our field",
		"change career path": "I left school and am taking a gap year to reevaluate my life",
		"miscellaneous":      "Using block lists to block AI art accounts",
	},
	QWhyNotAdopt: {
		"efficacy":            "if the companies can ignore it why would they respect it considering what they already do",
		"usability":           "It sounds like something difficult to use",
		"more information":    "Not informed enough about it",
		"no personal website": "I do not have a personal website",
		"search results":      "If it hides things from *search engines* then how will people find my work?",
	},
	QWhyBlock: {
		"protection":       "To protect my original concepts and visual brand (aka original character designs and artstyle)",
		"consent":          "I havent given AI companies permission to use my work",
		"compensation":     "I do not want other companies to profit off of it without my knowledge, permission, or without fair compensation towards the source",
		"useful mechanism": "Adds a sense of security and ease of use",
		"legal benefit":    "it is a measure to reinforce a statement that we do not condone with these practices and will probably benefit in a possible lawsuit in the future",
		"misc":             "At this point if the option is presented I'll do my research on it and if it seems legitimate I'll do it on principle",
	},
	QWhyDistrust: {
		"track record":      "Based on the attitudes I have seen from AI companies and the way AI companies have already used data without consent, I'm unsure if they will respect robot.txt",
		"profit":            "Money before morals",
		"perception":        "AI companies are morally bankrupt",
		"loophole":          "They might start loopholes to get around it or something",
		"legal enforcement": "They have to be forced to respect it by law, we can't trust their good faith",
		"voluntary nature":  "At best it seems that robot.txt is just a warning sign, and will not entirely stop AI companies from deciding to scrape any particular content",
		"misc":              "I think, unfortunately, a lot of companies will not respect and will do it anyway",
	},
}

// ExampleQuote returns the codebook's representative quote for a theme,
// or "" when the codebook has none.
func ExampleQuote(question, theme string) string {
	return exampleQuotes[question][theme]
}
