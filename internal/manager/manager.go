// Package manager implements managed robots.txt services (§2.2 of the
// paper: Dark Visitors, YoastSEO, AIOSEO): tools that maintain a site's
// robots.txt against an evolving registry of AI user agents, so that the
// "burden of keeping track of the current user agent mapping" (§8.1)
// falls on the service instead of each site administrator.
//
// The package also quantifies that burden: Coverage computes how much of
// the AI-agent population a static, hand-written rule list misses as new
// crawlers are announced over the study window.
package manager

import (
	"sort"
	"time"

	"repro/internal/agents"
	"repro/internal/robots"
	"repro/internal/stats"
)

// PolicyClass selects which kinds of AI agents a site wants to block.
type PolicyClass int

const (
	// BlockAIData blocks training-data crawlers only.
	BlockAIData PolicyClass = 1 << iota
	// BlockAIAssistants blocks user-triggered assistant crawlers.
	BlockAIAssistants
	// BlockAISearch blocks AI search indexers.
	BlockAISearch
	// BlockUndocumented blocks undocumented AI agents.
	BlockUndocumented
	// BlockAllAI blocks every AI agent class.
	BlockAllAI = BlockAIData | BlockAIAssistants | BlockAISearch | BlockUndocumented
)

// categoryBit maps an agent category to its policy bit.
func categoryBit(c agents.Category) PolicyClass {
	switch c {
	case agents.AIData:
		return BlockAIData
	case agents.AIAssistant:
		return BlockAIAssistants
	case agents.AISearch:
		return BlockAISearch
	case agents.Undocumented:
		return BlockUndocumented
	default:
		return 0
	}
}

// Manager renders managed robots.txt content from a policy and the agent
// registry, as of a given date. Sites using a manager automatically pick
// up rules for newly announced agents; hand-maintained sites do not.
type Manager struct {
	// Policy selects which agent classes to block.
	Policy PolicyClass
	// KeepSearchIndexing, when set, spares dual-purpose search crawlers
	// and blocks their virtual control tokens instead (§6.2: blocking
	// Googlebot outright would remove the site from search).
	KeepSearchIndexing bool
	// BaseDisallows are the site's own non-AI rules, kept verbatim.
	BaseDisallows []string
}

// BlockedAgents returns the user agents the manager blocks as of date, in
// registry order.
func (m Manager) BlockedAgents(asOf time.Time) []string {
	var out []string
	for _, a := range agents.Table1 {
		if categoryBit(a.Category)&m.Policy == 0 {
			continue
		}
		if !agents.AnnouncedBy(a.UserAgent, asOf) {
			continue
		}
		if m.KeepSearchIndexing && a.Category == agents.AISearch && !a.VirtualToken {
			continue
		}
		out = append(out, a.UserAgent)
	}
	return out
}

// Render produces the managed robots.txt as of date.
func (m Manager) Render(asOf time.Time) string {
	b := robots.NewBuilder()
	b.Comment("managed robots.txt — agent list as of " + asOf.Format("2006-01-02"))
	if blocked := m.BlockedAgents(asOf); len(blocked) > 0 {
		b.Group(blocked...).DisallowAll()
	}
	g := b.Group("*")
	if len(m.BaseDisallows) > 0 {
		g.Disallow(m.BaseDisallows...)
	} else {
		g.Disallow()
	}
	return b.String()
}

// Coverage is the §8.1 maintenance-gap measurement for one point in time.
type Coverage struct {
	Date time.Time
	// Announced is how many blockable agents exist at this date.
	Announced int
	// StaticCovered is how many a list frozen at the freeze date covers.
	StaticCovered int
	// ManagedCovered is how many the managed list covers (always all).
	ManagedCovered int
}

// Gap returns the fraction of announced agents the static list misses.
func (c Coverage) Gap() float64 {
	if c.Announced == 0 {
		return 0
	}
	return float64(c.Announced-c.StaticCovered) / float64(c.Announced)
}

// MaintenanceGap compares a static rule list frozen at freezeDate against
// a managed list at each subsequent date. It quantifies the §8.1 burden:
// a site that wrote a thorough AI blocklist in 2023 silently loses
// coverage as new crawlers appear.
func MaintenanceGap(policy PolicyClass, freezeDate time.Time, dates []time.Time) []Coverage {
	m := Manager{Policy: policy}
	frozen := make(map[string]bool)
	for _, ua := range m.BlockedAgents(freezeDate) {
		frozen[ua] = true
	}
	var out []Coverage
	for _, d := range dates {
		current := m.BlockedAgents(d)
		cov := Coverage{Date: d, Announced: len(current), ManagedCovered: len(current)}
		for _, ua := range current {
			if frozen[ua] {
				cov.StaticCovered++
			}
		}
		out = append(out, cov)
	}
	return out
}

// GapSeries converts a coverage slice to a plottable series of static-list
// gap percentages.
func GapSeries(covs []Coverage) stats.Series {
	s := stats.Series{Name: "static-list gap"}
	for _, c := range covs {
		s.Points = append(s.Points, stats.Point{
			Time:  c.Date,
			Label: c.Date.Format("Jan 2006"),
			Value: 100 * c.Gap(),
		})
	}
	return s
}

// AgentsAnnouncedBetween lists agents announced in (from, to], sorted by
// announcement date — what a site administrator would have had to notice
// and add by hand.
func AgentsAnnouncedBetween(from, to time.Time) []agents.Agent {
	var out []agents.Agent
	for _, a := range agents.Table1 {
		if a.Announced.After(from) && !a.Announced.After(to) {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Announced.Before(out[j].Announced) })
	return out
}
