package manager

import (
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/robots"
)

func date(y int, m time.Month) time.Time {
	return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
}

func TestBlockedAgentsAnnouncementGated(t *testing.T) {
	m := Manager{Policy: BlockAllAI}
	early := m.BlockedAgents(date(2022, time.October))
	late := m.BlockedAgents(date(2024, time.October))
	if len(early) >= len(late) {
		t.Fatalf("agent list must grow: %d early vs %d late", len(early), len(late))
	}
	has := func(list []string, ua string) bool {
		for _, x := range list {
			if x == ua {
				return true
			}
		}
		return false
	}
	if has(early, "GPTBot") {
		t.Error("GPTBot was not announced in Oct 2022")
	}
	if !has(late, "GPTBot") || !has(late, "ClaudeBot") {
		t.Error("late list must include post-announcement agents")
	}
}

func TestPolicyClasses(t *testing.T) {
	now := date(2024, time.October)
	dataOnly := Manager{Policy: BlockAIData}.BlockedAgents(now)
	for _, ua := range dataOnly {
		if ua == "ChatGPT-User" || ua == "OAI-SearchBot" {
			t.Errorf("data-only policy must not block %s", ua)
		}
	}
	all := Manager{Policy: BlockAllAI}.BlockedAgents(now)
	if len(all) <= len(dataOnly) {
		t.Error("block-all must cover more agents than data-only")
	}
}

func TestKeepSearchIndexing(t *testing.T) {
	now := date(2024, time.October)
	m := Manager{Policy: BlockAllAI, KeepSearchIndexing: true}
	blocked := m.BlockedAgents(now)
	for _, ua := range blocked {
		if ua == "Applebot" || ua == "Amazonbot" || ua == "OAI-SearchBot" {
			t.Errorf("search-preserving policy must spare %s", ua)
		}
	}
	// Virtual control tokens stay blocked: that is the §6.2 mechanism for
	// opting out of training without losing indexing.
	found := false
	for _, ua := range blocked {
		if ua == "Google-Extended" {
			found = true
		}
	}
	if !found {
		t.Error("Google-Extended must be blocked to opt out of training")
	}
}

func TestRenderParsesAndBlocks(t *testing.T) {
	m := Manager{Policy: BlockAllAI, BaseDisallows: []string{"/admin/"}}
	body := m.Render(date(2024, time.October))
	rb := robots.ParseString(body)
	if rb.HasMistakes() {
		t.Fatalf("managed robots.txt must lint clean: %v", rb.Warnings)
	}
	if rb.Allowed("GPTBot", "/art/piece.png") {
		t.Error("managed file must block GPTBot")
	}
	if !rb.Allowed("Googlebot", "/art/piece.png") {
		t.Error("non-AI crawler must pass")
	}
	if rb.Allowed("Googlebot", "/admin/panel") {
		t.Error("base disallows must be kept")
	}
}

func TestRenderEmptyPolicy(t *testing.T) {
	body := Manager{}.Render(date(2024, time.January))
	rb := robots.ParseString(body)
	if !rb.Allowed("GPTBot", "/x") {
		t.Error("empty policy blocks nothing")
	}
}

func TestMaintenanceGapGrows(t *testing.T) {
	var dates []time.Time
	for _, s := range corpus.Snapshots {
		dates = append(dates, s.Date)
	}
	// Freeze a thorough list right after the GPTBot announcement.
	covs := MaintenanceGap(BlockAllAI, date(2023, time.October), dates)
	if len(covs) != len(dates) {
		t.Fatalf("coverage points = %d", len(covs))
	}
	// Before the freeze date the static list is complete.
	if covs[5].Gap() != 0 {
		t.Errorf("gap at freeze time = %.2f, want 0", covs[5].Gap())
	}
	// By Oct 2024 the static list misses the agents announced since
	// (ClaudeBot, Applebot-Extended, Meta-ExternalAgent, …).
	last := covs[len(covs)-1]
	if last.Gap() <= 0.10 {
		t.Errorf("end gap = %.2f, want >10%% of agents missed", last.Gap())
	}
	if last.ManagedCovered != last.Announced {
		t.Error("the managed list never falls behind")
	}
	// Gap is non-decreasing after the freeze.
	for i := 6; i < len(covs); i++ {
		if covs[i].Gap()+1e-9 < covs[i-1].Gap() {
			t.Errorf("gap decreased at %s", covs[i].Date.Format("2006-01"))
		}
	}
}

func TestGapSeries(t *testing.T) {
	dates := []time.Time{date(2023, time.October), date(2024, time.October)}
	s := GapSeries(MaintenanceGap(BlockAllAI, date(2023, time.October), dates))
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[1].Value <= s.Points[0].Value {
		t.Error("gap series must grow")
	}
}

func TestAgentsAnnouncedBetween(t *testing.T) {
	newAgents := AgentsAnnouncedBetween(date(2023, time.October), date(2024, time.October))
	if len(newAgents) == 0 {
		t.Fatal("agents were announced in that window")
	}
	for i := 1; i < len(newAgents); i++ {
		if newAgents[i].Announced.Before(newAgents[i-1].Announced) {
			t.Fatal("must be sorted by announcement date")
		}
	}
	for _, a := range newAgents {
		if !a.Announced.After(date(2023, time.October)) {
			t.Errorf("%s announced %v, outside window", a.UserAgent, a.Announced)
		}
	}
}

func TestCoverageGapZeroDivision(t *testing.T) {
	c := Coverage{}
	if c.Gap() != 0 {
		t.Fatal("empty coverage gap must be 0")
	}
}
