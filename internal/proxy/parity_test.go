package proxy

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/webserver"
)

// TestFarmHostingParityInferenceSurvey runs the §6.3 Figure 7 survey
// with the proxied population on one virtual-host farm and with the
// compatibility knob forcing per-site servers, asserting identical
// classifications and robots correlations.
func TestFarmHostingParityInferenceSurvey(t *testing.T) {
	run := func(legacy bool) *CFSurveyResult {
		if legacy {
			webserver.SetLegacyPerSiteHosting(true)
			defer webserver.SetLegacyPerSiteHosting(false)
		}
		res, err := RunInferenceSurvey(context.Background(), 300, 11, 8)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	farm := run(false)
	legacy := run(true)
	if !reflect.DeepEqual(farm, legacy) {
		t.Errorf("inference survey diverged:\nfarm:   %+v\nlegacy: %+v", farm, legacy)
	}
	if farm.Inconclusive == 0 || farm.OnBlock == 0 {
		t.Errorf("degenerate survey result: %+v", farm)
	}
}

// TestFastHTTPParityInferenceSurvey runs the §6.3 Figure 7 survey on the
// netsim-native fast HTTP path (the default) and with the compatibility
// knob forcing stdlib net/http on both sides, asserting identical
// classifications and robots correlations. The proxied population mixes
// 403-with-body blocks and plain pages, exercising both response shapes.
func TestFastHTTPParityInferenceSurvey(t *testing.T) {
	run := func(legacy bool) *CFSurveyResult {
		if legacy {
			netsim.SetLegacyNetHTTP(true)
			defer netsim.SetLegacyNetHTTP(false)
		}
		res, err := RunInferenceSurvey(context.Background(), 300, 11, 8)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(false)
	legacy := run(true)
	if !reflect.DeepEqual(fast, legacy) {
		t.Errorf("inference survey diverged:\nfast:   %+v\nlegacy: %+v", fast, legacy)
	}
	if fast.Inconclusive == 0 || fast.OnBlock == 0 {
		t.Errorf("degenerate survey result: %+v", fast)
	}
}
