package proxy

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/agents"
	"repro/internal/netsim"
	"repro/internal/useragent"
	"repro/internal/webserver"
)

// farmSeq hands each test farm a distinct listener IP so several farms
// can share one test network.
var farmSeq atomic.Uint32

func startProxied(t *testing.T, nw *netsim.Network, domain, ip string, s Settings) (*webserver.Site, *Proxy) {
	t.Helper()
	px := New(s)
	farm, err := webserver.NewFarm(nw, "11.9.1."+itoa(int(farmSeq.Add(1))))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { farm.Close() })
	site, err := farm.StartSite(webserver.Config{
		Domain: domain, IP: ip,
		Pages:   map[string]webserver.Page{"/": {Body: "<html><body>real content here</body></html>"}},
		Blocker: px,
	})
	if err != nil {
		t.Fatal(err)
	}
	return site, px
}

func fetchAs(t *testing.T, client *http.Client, url, ua string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("User-Agent", ua)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

func TestBlockAIBotsBlocksListedAgents(t *testing.T) {
	nw := netsim.New()
	site, _ := startProxied(t, nw, "p1.test", "203.0.113.90", Settings{BlockAIBots: true})
	client := nw.HTTPClient("198.51.100.1")

	for _, tok := range []string{"GPTBot", "CCBot", "ClaudeBot", "Bytespider", "PerplexityBot"} {
		status, body := fetchAs(t, client, site.URL()+"/", useragent.FullUA(tok, "1.0"))
		if status != 403 || !strings.Contains(body, BlockPageMarker) {
			t.Errorf("%s: status=%d, want block page", tok, status)
		}
	}
	// Applebot and OAI-SearchBot are NOT blocked (§6.3 footnote 8).
	for _, tok := range []string{"Applebot", "OAI-SearchBot"} {
		status, _ := fetchAs(t, client, site.URL()+"/", useragent.FullUA(tok, "1.0"))
		if status != 200 {
			t.Errorf("%s: status=%d, must pass", tok, status)
		}
	}
	// Browsers pass.
	status, body := fetchAs(t, client, site.URL()+"/", useragent.BrowserChromeUA)
	if status != 200 || !strings.Contains(body, "real content") {
		t.Errorf("browser: %d %q", status, body)
	}
}

func TestBlockAIOffPassesEverything(t *testing.T) {
	nw := netsim.New()
	site, _ := startProxied(t, nw, "p2.test", "203.0.113.91", Settings{})
	client := nw.HTTPClient("198.51.100.2")
	for _, tok := range []string{"GPTBot", "ClaudeBot", "curl"} {
		status, _ := fetchAs(t, client, site.URL()+"/", useragent.FullUA(tok, "1.0"))
		if status != 200 {
			t.Errorf("%s blocked with everything off", tok)
		}
	}
}

func TestChallengeFlavor(t *testing.T) {
	nw := netsim.New()
	site, _ := startProxied(t, nw, "p3.test", "203.0.113.92",
		Settings{BlockAIBots: true, ChallengeAI: true})
	client := nw.HTTPClient("198.51.100.3")
	_, body := fetchAs(t, client, site.URL()+"/", useragent.FullUA("ClaudeBot", "1.0"))
	if !strings.Contains(body, ChallengePageMarker) {
		t.Fatal("challenge flavor must serve challenge pages")
	}
}

func TestDefinitelyAutomated(t *testing.T) {
	nw := netsim.New()
	site, _ := startProxied(t, nw, "p4.test", "203.0.113.93",
		Settings{DefinitelyAutomated: true})
	client := nw.HTTPClient("198.51.100.4")

	// Automation tools are challenged.
	for _, tok := range []string{"HeadlessChrome", "libwww-perl", "curl", "python-requests"} {
		_, body := fetchAs(t, client, site.URL()+"/", useragent.FullUA(tok, "1.0"))
		if !strings.Contains(body, ChallengePageMarker) {
			t.Errorf("%s must be challenged by Definitely Automated", tok)
		}
	}
	// A browser passes.
	status, _ := fetchAs(t, client, site.URL()+"/", useragent.BrowserChromeUA)
	if status != 200 {
		t.Error("browser must pass Definitely Automated")
	}
}

func TestVerifiedBotValidation(t *testing.T) {
	nw := netsim.New()
	site, _ := startProxied(t, nw, "p5.test", "203.0.113.94",
		Settings{DefinitelyAutomated: true})

	gpt, _ := agents.ByToken("GPTBot")
	realBot := nw.HTTPClient(gpt.IPPrefix + ".5")
	status, _ := fetchAs(t, realBot, site.URL()+"/", gpt.FullUserAgent())
	if status != 200 {
		t.Error("the real GPTBot (correct range) bypasses Definitely Automated")
	}

	fakeBot := nw.HTTPClient("198.51.100.66")
	_, body := fetchAs(t, fakeBot, site.URL()+"/", gpt.FullUserAgent())
	if !strings.Contains(body, ChallengePageMarker) {
		t.Error("a fake GPTBot (wrong range) is definitely automated")
	}
}

func TestGreyBoxInfersBlockList(t *testing.T) {
	res, err := RunGreyBox(1, 590)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probed != 614 {
		t.Fatalf("probed = %d, want 614 (24 Table-1 + 590 public)", res.Probed)
	}
	if len(res.BlockedTokens) != 17 {
		t.Fatalf("inferred %d blocked tokens, want 17 (App. C.3): %v",
			len(res.BlockedTokens), res.BlockedTokens)
	}
	want := map[string]bool{
		"Amazonbot": true, "AwarioRssBot": true, "AwarioSmartBot": true,
		"Bytespider": true, "CCBot": true, "ChatGPT-User": true,
		"Claude-Web": true, "ClaudeBot": true, "cohere-ai": true,
		"Diffbot": true, "GPTBot": true, "magpie-crawler": true,
		"MeltwaterNews": true, "omgili": true, "PerplexityBot": true,
		"PiplBot": true, "YouBot": true,
	}
	for _, tok := range res.BlockedTokens {
		if !want[tok] {
			t.Errorf("unexpected blocked token %q", tok)
		}
	}
}

func TestInferBlockAIFlow(t *testing.T) {
	nw := netsim.New()
	client := nw.HTTPClient("198.51.100.7")
	cases := []struct {
		name string
		s    Settings
		want Inference
	}{
		{"off", Settings{}, InferredOff},
		{"on-block", Settings{BlockAIBots: true}, InferredOnBlock},
		{"on-challenge", Settings{BlockAIBots: true, ChallengeAI: true}, InferredOnChallenge},
		{"da-only", Settings{DefinitelyAutomated: true}, Inconclusive},
		{"da-plus-ai", Settings{DefinitelyAutomated: true, BlockAIBots: true}, Inconclusive},
	}
	for i, tc := range cases {
		domain := "inf" + string(rune('a'+i)) + ".test"
		ip := "203.0.115." + itoa(10+i)
		site, _ := startProxied(t, nw, domain, ip, tc.s)
		got, err := InferBlockAI(context.Background(), client, site.URL()+"/")
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: inference = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func itoa(v int) string {
	var b [4]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestGenerateCFPopulation(t *testing.T) {
	n := 2018
	specs := GenerateCFPopulation(n, 4)
	if len(specs) != n {
		t.Fatalf("population = %d", len(specs))
	}
	var onBlock, onChallenge, da int
	for _, s := range specs {
		switch {
		case s.Settings.DefinitelyAutomated:
			da++
		case s.Settings.BlockAIBots && s.Settings.ChallengeAI:
			onChallenge++
		case s.Settings.BlockAIBots:
			onBlock++
		}
	}
	if onBlock != 77 {
		t.Errorf("on-block = %d, want 77", onBlock)
	}
	if onChallenge != 30 {
		t.Errorf("on-challenge = %d, want 30", onChallenge)
	}
	if da != 145 {
		t.Errorf("inconclusive (DA) = %d, want 145", da)
	}
}

func TestRunInferenceSurvey(t *testing.T) {
	n := 600
	res, err := RunInferenceSurvey(context.Background(), n, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != n {
		t.Fatalf("total = %d", res.Total)
	}
	wantOnBlock := int(float64(n)*onBlockRate + 0.5)
	wantOnChallenge := int(float64(n)*onChallengeRate + 0.5)
	wantInconclusive := int(float64(n)*inconclusiveRate + 0.5)
	if res.OnBlock != wantOnBlock {
		t.Errorf("on-block = %d, want %d", res.OnBlock, wantOnBlock)
	}
	if res.OnChallenge != wantOnChallenge {
		t.Errorf("on-challenge = %d, want %d", res.OnChallenge, wantOnChallenge)
	}
	if res.Inconclusive != wantInconclusive {
		t.Errorf("inconclusive = %d, want %d", res.Inconclusive, wantInconclusive)
	}
	if res.Off != n-wantOnBlock-wantOnChallenge-wantInconclusive {
		t.Errorf("off = %d", res.Off)
	}
	// Conclusive rate ≈ 93%, adoption ≈ 5.7% (§6.3).
	if cr := res.ConclusiveRate(); cr < 0.90 || cr > 0.95 {
		t.Errorf("conclusive rate = %.3f, want ≈0.93", cr)
	}
	if or := res.OnRate(); or < 0.04 || or > 0.08 {
		t.Errorf("on rate = %.3f, want ≈0.057", or)
	}
	// Robots correlation: enabled sites restrict AI in robots.txt at
	// roughly twice the rate of others (24% vs 12%).
	if res.OnRobotsRate <= res.OffRobotsRate {
		t.Errorf("robots correlation missing: on=%.2f off=%.2f",
			res.OnRobotsRate, res.OffRobotsRate)
	}
}

func TestInferenceStrings(t *testing.T) {
	for i, want := range map[Inference]string{
		InferredOff: "Block AI off", InferredOnBlock: "Block AI on (block)",
		InferredOnChallenge: "Block AI on (challenge)", Inconclusive: "inconclusive",
		Inference(9): "unknown",
	} {
		if got := i.String(); got != want {
			t.Errorf("%d = %q, want %q", i, got, want)
		}
	}
}

func TestProxyConfigureIsAtomic(t *testing.T) {
	px := New(Settings{})
	if px.Settings().BlockAIBots {
		t.Fatal("initial settings wrong")
	}
	px.Configure(Settings{BlockAIBots: true})
	if !px.Settings().BlockAIBots {
		t.Fatal("configure did not take")
	}
}

func TestClassifyResponse(t *testing.T) {
	if classifyResponse(200, "<html>hi</html>") != kindOK {
		t.Error("plain 200 is OK")
	}
	if classifyResponse(403, blockPage().Body) != kindBlock {
		t.Error("block page must classify as block")
	}
	if classifyResponse(403, challengePage().Body) != kindChallenge {
		t.Error("challenge page must classify as challenge")
	}
	if classifyResponse(500, "oops") != kindOther {
		t.Error("unmarked 500 is other")
	}
}
