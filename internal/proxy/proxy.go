// Package proxy implements the third-party reverse-proxy blocking service
// the paper evaluates in §6.3 — a Cloudflare-like proxy with a Verified
// Bots registry, the "Definitely Automated" managed ruleset (App. C.2)
// and the one-click "Block AI Scrapers and Crawlers" feature (App. C.3) —
// plus the paper's two measurement procedures against it:
//
//   - the grey-box evaluation: toggling Block AI Bots on a site we control
//     and replaying 614 user agents to infer the undocumented rule list;
//   - the Figure 7 inference flow: classifying third-party sites as
//     Block-AI on / off / inconclusive from probe responses alone.
package proxy

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/agents"
	"repro/internal/netsim"
	"repro/internal/par"
	"repro/internal/robots"
	"repro/internal/stats"
	"repro/internal/useragent"
	"repro/internal/webserver"
)

// Page body markers, used the way the paper uses Cloudflare's block and
// challenge page HTML to classify responses.
const (
	BlockPageMarker     = "cf-block-page"
	ChallengePageMarker = "cf-challenge-page"
)

// cfFarmIP hosts the proxied populations' shared virtual-host farm,
// outside the 11.10+.x.x block GenerateCFPopulation assigns to sites.
const cfFarmIP = "11.9.0.1"

// Settings is a proxied site's bot-management configuration.
type Settings struct {
	// BlockAIBots is the one-click AI blocking feature.
	BlockAIBots bool
	// ChallengeAI serves challenge pages instead of block pages for AI
	// matches (the "managed challenge" flavor some customers configure;
	// drives Figure 7's 4.16% vs 1.64% split).
	ChallengeAI bool
	// DefinitelyAutomated enables the managed automation ruleset.
	DefinitelyAutomated bool
}

// verifiedBotIPs maps verified bot tokens to the IP prefix the proxy
// validates them against (simulated published ranges).
var verifiedBotIPs = func() map[string]string {
	m := make(map[string]string)
	for name := range agents.CloudflareVerifiedAIBots {
		if a, ok := agents.ByToken(name); ok && a.IPPrefix != "" {
			m[strings.ToLower(name)] = a.IPPrefix
			continue
		}
		// Verified bots outside Table 1 (ICC Crawler, DuckAssistbot).
		switch name {
		case "ICC Crawler":
			m[strings.ToLower(name)] = "52.0.1"
		case "DuckAssistbot":
			m[strings.ToLower(name)] = "53.0.1"
		}
	}
	return m
}()

// Proxy screens requests for one site. It implements webserver.Blocker so
// it can front any instrumented site.
type Proxy struct {
	mu       sync.Mutex
	settings Settings
}

// New returns a proxy with the given settings.
func New(s Settings) *Proxy { return &Proxy{settings: s} }

// Configure atomically replaces the settings (the dashboard toggle).
func (p *Proxy) Configure(s Settings) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.settings = s
}

// Settings returns the current configuration.
func (p *Proxy) Settings() Settings {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.settings
}

// Check implements webserver.Blocker with the §6.3 evaluation order:
// Block AI Bots (user-agent based), then verified-bot validation, then
// Definitely Automated.
func (p *Proxy) Check(r *http.Request) *webserver.BlockDecision {
	s := p.Settings()
	ua := r.UserAgent()

	if s.BlockAIBots {
		if _, hit := useragent.MatchesAny(ua, agents.CloudflareBlockAIBots); hit {
			if s.ChallengeAI {
				return challengePage()
			}
			return blockPage()
		}
	}

	verified, fake := p.verifiedStatus(r)
	if verified {
		// Verified bots (correct source range) bypass Definitely Automated.
		return nil
	}
	if s.DefinitelyAutomated {
		if fake {
			// A request claiming a verified bot from the wrong range is
			// definitely automated (App. C.2 note).
			return challengePage()
		}
		if _, hit := useragent.MatchesAny(ua, agents.CloudflareDefinitelyAutomated); hit {
			return challengePage()
		}
	}
	return nil
}

// verifiedStatus reports whether the request is a validated verified bot,
// or a fake one (verified UA from the wrong source range).
func (p *Proxy) verifiedStatus(r *http.Request) (verified, fake bool) {
	ua := strings.ToLower(r.UserAgent())
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	for name, prefix := range verifiedBotIPs {
		if !strings.Contains(ua, name) {
			continue
		}
		if strings.HasPrefix(host, prefix+".") {
			return true, false
		}
		return false, true
	}
	return false, false
}

func blockPage() *webserver.BlockDecision {
	return &webserver.BlockDecision{
		Status: http.StatusForbidden,
		Body: "<html><body class=\"" + BlockPageMarker + "\"><h1>Sorry, you have been blocked</h1>" +
			"<p>This website is using a security service to protect itself.</p></body></html>",
	}
}

func challengePage() *webserver.BlockDecision {
	return &webserver.BlockDecision{
		Status: http.StatusForbidden, Challenge: true,
		Body: "<html><body class=\"" + ChallengePageMarker + "\"><h1>Checking your browser</h1>" +
			"<p>Complete the challenge to continue.</p></body></html>",
	}
}

// responseKind classifies a probe response the way the paper reads
// Cloudflare pages.
type responseKind int

const (
	kindOK responseKind = iota
	kindBlock
	kindChallenge
	kindOther
)

func classifyResponse(status int, body string) responseKind {
	switch {
	case strings.Contains(body, ChallengePageMarker):
		return kindChallenge
	case strings.Contains(body, BlockPageMarker):
		return kindBlock
	case status == http.StatusOK:
		return kindOK
	default:
		return kindOther
	}
}

// GreyBoxResult is the §6.3 rule-list inference outcome.
type GreyBoxResult struct {
	// Probed is the number of user agents replayed.
	Probed int
	// BlockedTokens are the distinct product tokens blocked only when the
	// feature is on, sorted (paper: 17).
	BlockedTokens []string
}

// RunGreyBox stands up a site behind the proxy, replays every probe user
// agent with Block AI Bots off and then on, and infers the blocked list
// from the differential — the paper's methodology for Appendix C.3.
func RunGreyBox(seed int64, extraAgents int) (*GreyBoxResult, error) {
	if extraAgents <= 0 {
		extraAgents = 590
	}
	nw := netsim.New()
	px := New(Settings{})
	farm, err := webserver.NewFarm(nw, cfFarmIP)
	if err != nil {
		return nil, err
	}
	defer farm.Close()
	site, err := farm.StartSite(webserver.Config{
		Domain: "greybox.test", IP: "203.0.113.80",
		Pages:   map[string]webserver.Page{"/": {Body: "<html><body>owner content</body></html>"}},
		Blocker: px,
	})
	if err != nil {
		return nil, err
	}
	// Grey-box replays run without a caller context; bound them with a
	// client-level timeout instead.
	client := nw.HTTPClient("198.51.100.230")
	client.Timeout = 10 * time.Second

	var probes []string
	for _, a := range agents.Table1 {
		probes = append(probes, a.FullUserAgent())
	}
	probes = append(probes, agents.GenericCrawlerUserAgents(extraAgents)...)

	fetch := func(ua string) (responseKind, error) {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, site.URL()+"/", nil)
		if err != nil {
			return kindOther, err
		}
		req.Header.Set("User-Agent", ua)
		resp, err := client.Do(req)
		if err != nil {
			return kindOther, err
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 2048)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return classifyResponse(resp.StatusCode, sb.String()), nil
	}

	res := &GreyBoxResult{Probed: len(probes)}
	offOK := make(map[string]bool, len(probes))
	px.Configure(Settings{BlockAIBots: false})
	for _, ua := range probes {
		kind, err := fetch(ua)
		if err != nil {
			return nil, err
		}
		offOK[ua] = kind == kindOK
	}
	px.Configure(Settings{BlockAIBots: true})
	blocked := make(map[string]bool)
	for _, ua := range probes {
		kind, err := fetch(ua)
		if err != nil {
			return nil, err
		}
		if offOK[ua] && kind != kindOK {
			blocked[tokenOf(ua)] = true
		}
	}
	for tok := range blocked {
		res.BlockedTokens = append(res.BlockedTokens, tok)
	}
	sort.Strings(res.BlockedTokens)
	return res, nil
}

func tokenOf(ua string) string {
	if i := strings.LastIndex(ua, "; "); i >= 0 {
		ua = ua[i+2:]
	}
	return useragent.ExtractToken(ua)
}

// Inference is the Figure 7 classification of one proxied site.
type Inference int

const (
	// InferredOff: the AI probe agents got content → Block AI off.
	InferredOff Inference = iota
	// InferredOnBlock: AI agents got block pages, automation probes got
	// content → Block AI on.
	InferredOnBlock
	// InferredOnChallenge: AI agents got challenge pages, automation
	// probes got content → Block AI on (challenge flavor).
	InferredOnChallenge
	// Inconclusive: the automation probes were also blocked — the AI
	// block could come from either ruleset (Figure 7's 7.19%).
	Inconclusive
)

// String names the inference.
func (i Inference) String() string {
	switch i {
	case InferredOff:
		return "Block AI off"
	case InferredOnBlock:
		return "Block AI on (block)"
	case InferredOnChallenge:
		return "Block AI on (challenge)"
	case Inconclusive:
		return "inconclusive"
	default:
		return "unknown"
	}
}

// aiProbeUAs and automationProbeUAs are Figure 7's probe sets: the two
// most-restricted unverified AI agents, and two unpopular automation
// libraries from the Definitely Automated list.
var (
	aiProbeUAs         = []string{"ClaudeBot", "anthropic-ai"}
	automationProbeUAs = []string{"HeadlessChrome", "libwww-perl"}
)

// InferBlockAI runs the Figure 7 flow against one site.
func InferBlockAI(ctx context.Context, client *http.Client, siteURL string) (Inference, error) {
	probe := func(token string) (responseKind, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, siteURL, nil)
		if err != nil {
			return kindOther, err
		}
		req.Header.Set("User-Agent", useragent.FullUA(token, "1.0"))
		resp, err := client.Do(req)
		if err != nil {
			return kindOther, err
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 2048)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return classifyResponse(resp.StatusCode, sb.String()), nil
	}

	aiKind := kindOK
	for _, ua := range aiProbeUAs {
		k, err := probe(ua)
		if err != nil {
			return Inconclusive, err
		}
		if k != kindOK {
			aiKind = k
		}
	}
	if aiKind == kindOK {
		return InferredOff, nil
	}
	for _, ua := range automationProbeUAs {
		k, err := probe(ua)
		if err != nil {
			return Inconclusive, err
		}
		if k != kindOK {
			// The Definitely Automated ruleset (or a custom WAF) is in
			// play; the AI block cannot be attributed.
			return Inconclusive, nil
		}
	}
	if aiKind == kindChallenge {
		return InferredOnChallenge, nil
	}
	return InferredOnBlock, nil
}

// Population fractions for the §6.3 survey, calibrated to the paper's
// text (107 of 1,875 conclusively-determined sites enable Block AI) with
// Figure 7's block/challenge ratio.
const (
	// PaperCloudflareShare: 2,018 of the top 10k sites proxy through
	// Cloudflare (20%).
	PaperCloudflareShare = 0.2018
	// onBlockRate and onChallengeRate split the enabled population.
	onBlockRate     = 0.0382 // ~77 of 2,018
	onChallengeRate = 0.0149 // ~30 of 2,018
	// inconclusiveRate is Figure 7's 7.19%.
	inconclusiveRate = 0.0719
	// PaperOnRobotsRate / PaperOffRobotsRate: §6.3's correlation — sites
	// enabling Block AI also disallow AI crawlers in robots.txt at 24%
	// vs 12% for the rest.
	PaperOnRobotsRate  = 0.24
	PaperOffRobotsRate = 0.12
)

// CFSiteSpec is the generated ground truth for one proxied site.
type CFSiteSpec struct {
	Domain            string
	IP                string
	Settings          Settings
	RobotsDisallowsAI bool
}

// GenerateCFPopulation builds n Cloudflare-proxied sites matching the
// §6.3 distribution with exact category counts.
func GenerateCFPopulation(n int, seed int64) []CFSiteSpec {
	rn := stats.NewRand(seed).Fork("cf-population")
	nOnBlock := int(float64(n)*onBlockRate + 0.5)
	nOnChallenge := int(float64(n)*onChallengeRate + 0.5)
	nInconclusive := int(float64(n)*inconclusiveRate + 0.5)

	specs := make([]CFSiteSpec, n)
	for i := range specs {
		specs[i] = CFSiteSpec{
			Domain: fmt.Sprintf("cf%05d.example", i+1),
			IP:     fmt.Sprintf("11.%d.%d.%d", 10+i/65536, (i/256)%256, i%256),
		}
	}
	perm := rn.Perm(n)
	idx := 0
	take := func(k int) []int {
		out := perm[idx : idx+k]
		idx += k
		return out
	}
	for _, i := range take(nOnBlock) {
		specs[i].Settings = Settings{BlockAIBots: true}
	}
	for _, i := range take(nOnChallenge) {
		specs[i].Settings = Settings{BlockAIBots: true, ChallengeAI: true}
	}
	for _, i := range take(nInconclusive) {
		// Definitely Automated on; Block AI state unobservable (half on).
		specs[i].Settings = Settings{DefinitelyAutomated: true, BlockAIBots: i%2 == 0}
	}
	// Robots.txt correlation.
	for i := range specs {
		rate := PaperOffRobotsRate
		if specs[i].Settings.BlockAIBots && !specs[i].Settings.DefinitelyAutomated {
			rate = PaperOnRobotsRate
		}
		specs[i].RobotsDisallowsAI = rn.Bool(rate)
	}
	return specs
}

// CFSurveyResult aggregates the Figure 7 inference over a population.
type CFSurveyResult struct {
	Total        int
	Off          int
	OnBlock      int
	OnChallenge  int
	Inconclusive int
	// OnRobotsRate and OffRobotsRate are the fractions of (conclusive)
	// sites whose robots.txt disallows AI crawlers, split by inferred
	// setting (paper: 24% vs 12%).
	OnRobotsRate  float64
	OffRobotsRate float64
}

// ConclusiveRate returns the fraction of sites classified conclusively.
func (r *CFSurveyResult) ConclusiveRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Total-r.Inconclusive) / float64(r.Total)
}

// OnRate returns the Block-AI adoption rate among conclusive sites
// (paper: 107/1,875 = 5.7%).
func (r *CFSurveyResult) OnRate() float64 {
	conclusive := r.Total - r.Inconclusive
	if conclusive == 0 {
		return 0
	}
	return float64(r.OnBlock+r.OnChallenge) / float64(conclusive)
}

// RunInferenceSurvey hosts n proxied sites and classifies each with the
// Figure 7 flow, then measures the robots.txt correlation. Probes run on
// a workers-bounded pool; cancellation is honored between sites.
func RunInferenceSurvey(ctx context.Context, n int, seed int64, workers int) (*CFSurveyResult, error) {
	if workers <= 0 {
		workers = 32
	}
	workers = par.Clamp(workers)
	nw := netsim.New()
	specs := GenerateCFPopulation(n, seed)
	// One virtual-host farm stands in for the whole proxied population —
	// fittingly, real Cloudflare-fronted sites share edge listeners too.
	farm, err := webserver.NewFarm(nw, cfFarmIP)
	if err != nil {
		return nil, err
	}
	defer farm.Close()
	aiRobots := "User-agent: GPTBot\nUser-agent: anthropic-ai\nUser-agent: ClaudeBot\nDisallow: /\n"
	plainRobots := "User-agent: *\nDisallow: /admin/\n"
	for i, spec := range specs {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		robotsTxt := plainRobots
		if spec.RobotsDisallowsAI {
			robotsTxt = aiRobots
		}
		rt := robotsTxt
		if _, err := farm.StartSite(webserver.Config{
			Domain:    spec.Domain,
			IP:        spec.IP,
			RobotsTxt: &rt,
			Pages:     map[string]webserver.Page{"/": {Body: "<html><body>site content for " + spec.Domain + "</body></html>"}},
			Blocker:   New(spec.Settings),
		}); err != nil {
			return nil, err
		}
	}

	inferences := make([]Inference, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := nw.HTTPClient("198.51.100.240")
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain remaining jobs after cancellation
				}
				inf, err := InferBlockAI(ctx, client, "http://"+specs[i].Domain+"/")
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				inferences[i] = inf
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	res := &CFSurveyResult{Total: n}
	// The robots correlation pass issues requests without a caller
	// context, so give this client its own overall timeout as the bound.
	client := nw.HTTPClient("198.51.100.241")
	client.Timeout = 10 * time.Second
	var onRobots, offRobots, onCount, offCount int
	for i, inf := range inferences {
		switch inf {
		case InferredOff:
			res.Off++
			offCount++
			if robotsDisallowsAI(client, specs[i].Domain) {
				offRobots++
			}
		case InferredOnBlock, InferredOnChallenge:
			if inf == InferredOnBlock {
				res.OnBlock++
			} else {
				res.OnChallenge++
			}
			onCount++
			if robotsDisallowsAI(client, specs[i].Domain) {
				onRobots++
			}
		case Inconclusive:
			res.Inconclusive++
		}
	}
	if onCount > 0 {
		res.OnRobotsRate = float64(onRobots) / float64(onCount)
	}
	if offCount > 0 {
		res.OffRobotsRate = float64(offRobots) / float64(offCount)
	}
	return res, nil
}

// robotsDisallowsAI fetches robots.txt with a neutral UA and reports
// whether it explicitly restricts any Table 1 AI agent.
func robotsDisallowsAI(client *http.Client, domain string) bool {
	req, err := http.NewRequest(http.MethodGet, "http://"+domain+"/robots.txt", nil)
	if err != nil {
		return false
	}
	req.Header.Set("User-Agent", "robots-survey/1.0")
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var sb strings.Builder
	buf := make([]byte, 2048)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	rb := robots.ParseCached(sb.String())
	for _, tok := range rb.AgentTokens() {
		if _, ok := agents.ByToken(tok); ok {
			if lvl, explicit := rb.ExplicitRestriction(tok); explicit && lvl.Restricted() {
				return true
			}
		}
	}
	return false
}
