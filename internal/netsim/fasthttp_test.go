package netsim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// rawServe accepts connections on ln and hands each to fn in its own
// goroutine — a hand-written peer for exercising exact wire behaviour
// the fast client must survive.
func rawServe(ln net.Listener, fn func(net.Conn)) {
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go fn(c)
		}
	}()
}

// readRequestHead consumes one request head (through the blank line) so
// a raw peer can answer it.
func readRequestHead(c net.Conn) error {
	buf := make([]byte, 4096)
	total := 0
	for {
		n, err := c.Read(buf[total:])
		total += n
		if bytes.Contains(buf[:total], []byte("\r\n\r\n")) {
			return nil
		}
		if err != nil {
			return err
		}
		if total == len(buf) {
			return errors.New("head too large")
		}
	}
}

// TestFastClientDeadlineMidRead pins deadline behaviour when the peer
// stalls after the response head: the body read must fail with a
// deadline error instead of hanging.
func TestFastClientDeadlineMidRead(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("203.0.113.60", 80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	nw.Register("stall.test", "203.0.113.60")
	rawServe(ln, func(c net.Conn) {
		defer c.Close()
		if err := readRequestHead(c); err != nil {
			return
		}
		// Promise 100 bytes, deliver 5, then stall forever.
		fmt.Fprintf(c, "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nhello")
		time.Sleep(10 * time.Second)
	})

	client := nw.HTTPClient("198.51.100.60")
	client.Timeout = 50 * time.Millisecond
	start := time.Now()
	resp, err := client.Get("http://stall.test/")
	if err != nil {
		t.Fatalf("head should have arrived before the stall: %v", err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatal("body read succeeded though the peer stalled")
	}
	var nerr net.Error
	timeout := errors.As(err, &nerr) && nerr.Timeout()
	if !timeout && !errors.Is(err, os.ErrDeadlineExceeded) && !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want deadline/timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

// TestFastClientPeerCloseMidResponse pins the truncated-response case:
// the peer closes after sending part of a fixed-length body, and the
// client must surface an error once the buffered bytes drain — not EOF
// masquerading as success, and not a hang.
func TestFastClientPeerCloseMidResponse(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("203.0.113.61", 80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	nw.Register("trunc.test", "203.0.113.61")
	rawServe(ln, func(c net.Conn) {
		if err := readRequestHead(c); err != nil {
			c.Close()
			return
		}
		fmt.Fprintf(c, "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nonly this much")
		c.Close() // netsim delivers buffered bytes, then EOF
	})

	client := nw.HTTPClient("198.51.100.61")
	resp, err := client.Get("http://trunc.test/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatalf("truncated body read succeeded with %d of 100 bytes", len(body))
	}
	if string(body) != "only this much" {
		t.Fatalf("buffered bytes not drained before the error: %q", body)
	}
}

// TestFastClientPostBodyAcrossRing sends a POST body several times the
// 32KiB netsim ring and checks the bytes arrive intact: the client must
// interleave body writes with the server's reads instead of deadlocking
// on a full ring.
func TestFastClientPostBodyAcrossRing(t *testing.T) {
	const bodySize = 100 << 10 // ~3 rings
	payload := bytes.Repeat([]byte("0123456789abcdef"), bodySize/16)

	nw := New()
	ln, err := nw.Listen("203.0.113.62", 80)
	if err != nil {
		t.Fatal(err)
	}
	nw.Register("post.test", "203.0.113.62")
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !bytes.Equal(got, payload) {
			http.Error(w, fmt.Sprintf("body corrupted: %d bytes", len(got)), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "%d", len(got))
	})}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() { srv.Close(); <-done }()

	client := nw.HTTPClient("198.51.100.62")
	client.Timeout = 10 * time.Second
	for i := 0; i < 3; i++ { // repeat to also cover pooled-conn reuse
		resp, err := client.Post("http://post.test/upload", "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		reply, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK || string(reply) != fmt.Sprintf("%d", bodySize) {
			t.Fatalf("round %d: status %d, reply %q", i, resp.StatusCode, reply)
		}
	}
}

// TestFastClientRetriesDeadPooledConn pins the retry-once contract: a
// pooled keep-alive connection whose peer hung up must be replaced
// transparently on the next request.
func TestFastClientRetriesDeadPooledConn(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("203.0.113.63", 80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	nw.Register("flaky.test", "203.0.113.63")
	rawServe(ln, func(c net.Conn) {
		// Answer exactly one request per connection, then hang up without
		// announcing Connection: close — the client's pooled conn dies.
		defer c.Close()
		if err := readRequestHead(c); err != nil {
			return
		}
		fmt.Fprintf(c, "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
	})

	client := nw.HTTPClient("198.51.100.63")
	for i := 0; i < 3; i++ {
		resp, err := client.Get("http://flaky.test/")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(body) != "ok" {
			t.Fatalf("request %d: body %q, err %v", i, body, err)
		}
	}
}

// TestFastClientContextCancelMidRequest checks per-request contexts
// translate to deadlines on the simulated conn.
func TestFastClientContextCancelMidRequest(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("203.0.113.64", 80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	nw.Register("slow.test", "203.0.113.64")
	rawServe(ln, func(c net.Conn) {
		defer c.Close()
		readRequestHead(c)
		time.Sleep(10 * time.Second)
	})

	client := nw.HTTPClient("198.51.100.64")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://slow.test/", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("request succeeded though the server never answered")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context deadline took %v to fire", elapsed)
	}
}
