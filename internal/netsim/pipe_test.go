package netsim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"
)

// dialPair builds a connected client/server conn pair through a listener.
func dialPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	nw := New()
	ln, err := nw.Listen("192.0.2.40", 80)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err = nw.Dial(context.Background(), "198.51.100.1", "192.0.2.40:80")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case server = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("accept did not complete")
	}
	return client, server
}

func TestBufferedConnRoundTrip(t *testing.T) {
	client, server := dialPair(t)
	defer client.Close()
	defer server.Close()

	// Writes smaller than the buffer complete without a reader present —
	// the buffered behaviour net.Pipe lacks.
	msg := []byte("hello over the simulated wire")
	done := make(chan error, 1)
	go func() {
		_, err := client.Write(msg)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("buffered write: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("small write blocked: conn is not buffered")
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
}

func TestBufferedConnLargeTransfer(t *testing.T) {
	client, server := dialPair(t)
	defer client.Close()
	defer server.Close()

	// A payload several times the ring capacity must flow with a
	// concurrent reader, exercising wraparound and writer blocking.
	payload := bytes.Repeat([]byte("0123456789abcdef"), 20*1024) // 320 KiB
	go func() {
		client.Write(payload)
		client.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer mismatch: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestCloseDeliversEOFAfterDrain(t *testing.T) {
	client, server := dialPair(t)
	defer server.Close()

	if _, err := client.Write([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	// The peer reads the buffered data first, then EOF — like a TCP FIN.
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatalf("read after peer close: %v", err)
	}
	if string(got) != "last words" {
		t.Fatalf("drained %q", got)
	}
	// Writing to the closed peer fails with a reset.
	if _, err := server.Write([]byte("x")); !errors.Is(err, ErrConnReset) {
		t.Fatalf("write to closed peer = %v, want ErrConnReset", err)
	}
}

func TestReadWriteAfterOwnClose(t *testing.T) {
	client, server := dialPair(t)
	defer server.Close()
	client.Close()
	if _, err := client.Read(make([]byte, 1)); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("read after own close = %v, want io.ErrClosedPipe", err)
	}
	if _, err := client.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("write after own close = %v, want io.ErrClosedPipe", err)
	}
}

func TestReadDeadline(t *testing.T) {
	client, server := dialPair(t)
	defer client.Close()
	defer server.Close()

	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := client.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read past deadline = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	// Clearing the deadline makes the conn usable again.
	client.SetReadDeadline(time.Time{})
	go server.Write([]byte("k"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(client, buf); err != nil || buf[0] != 'k' {
		t.Fatalf("read after clearing deadline: %q, %v", buf, err)
	}
}

func TestWriteDeadlineUnblocksFullBuffer(t *testing.T) {
	client, server := dialPair(t)
	defer client.Close()
	defer server.Close()

	client.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
	// Nobody reads: the write fills the ring and must fail at the
	// deadline instead of blocking forever.
	payload := make([]byte, 4*connBufSize)
	_, err := client.Write(payload)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("over-capacity write = %v, want ErrDeadlineExceeded", err)
	}
}

// TestClosingListenerDrainsBacklog pins the PR 2 stress-test fix: conns
// accepted into a closing listener's backlog are closed by Close, so the
// dialer's synchronous write fails fast instead of hanging until a
// deadline.
func TestClosingListenerDrainsBacklog(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("192.0.2.41", 80)
	if err != nil {
		t.Fatal(err)
	}
	// Dial without any Accept loop: the conn sits in the backlog.
	c, err := nw.Dial(context.Background(), "198.51.100.2", "192.0.2.41:80")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()

	// No deadline set: the fix, not a workaround, must unblock us. The
	// ring absorbs up to connBufSize bytes, so write more than that.
	done := make(chan error, 1)
	go func() {
		_, werr := c.Write(make([]byte, 2*connBufSize))
		done <- werr
	}()
	select {
	case werr := <-done:
		if !errors.Is(werr, ErrConnReset) {
			t.Fatalf("write into drained backlog = %v, want ErrConnReset", werr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write into drained backlog hung: listener.Close did not drain")
	}
	// Reads observe the close too.
	if _, rerr := c.Read(make([]byte, 1)); rerr != io.EOF && !errors.Is(rerr, ErrConnReset) {
		t.Fatalf("read on drained conn = %v, want EOF or reset", rerr)
	}
	c.Close()

	// New dials are refused outright.
	if _, err := nw.Dial(context.Background(), "198.51.100.2", "192.0.2.41:80"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("dial after close = %v, want ErrConnRefused", err)
	}
}

// TestHTTPKeepAlivePoolsPerSourceAndTarget proves connection reuse: the
// server sees one remote port across sequential requests from one
// client, while the legacy knob restores a fresh dial (new ephemeral
// port) per request.
func TestHTTPKeepAlivePoolsPerSourceAndTarget(t *testing.T) {
	remotePorts := func(legacy bool) []string {
		if legacy {
			SetLegacyPerRequestDial(true)
			defer SetLegacyPerRequestDial(false)
		}
		nw := New()
		nw.Register("pool.test", "203.0.113.30")
		ln, err := nw.Listen("203.0.113.30", 80)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var ports []string
		srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, port, _ := net.SplitHostPort(r.RemoteAddr)
			mu.Lock()
			ports = append(ports, port)
			mu.Unlock()
			fmt.Fprint(w, "ok")
		})}
		go srv.Serve(ln)
		defer srv.Close()
		client := nw.HTTPClient("198.51.100.60")
		for i := 0; i < 3; i++ {
			resp, err := client.Get("http://pool.test/")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), ports...)
	}

	pooled := remotePorts(false)
	if len(pooled) != 3 || pooled[0] != pooled[1] || pooled[1] != pooled[2] {
		t.Fatalf("keep-alive requests used ports %v, want one reused port", pooled)
	}
	legacy := remotePorts(true)
	if len(legacy) != 3 || legacy[0] == legacy[1] || legacy[1] == legacy[2] {
		t.Fatalf("legacy per-request dial used ports %v, want distinct ports", legacy)
	}
}

// TestConnBuffersRecycled sanity-checks that closing both ends releases
// ring buffers back to the pool without double-free panics under churn.
func TestConnBuffersRecycled(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("192.0.2.42", 80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(io.Discard, c)
				c.Close()
			}(c)
		}
	}()
	for i := 0; i < 200; i++ {
		c, err := nw.Dial(context.Background(), "198.51.100.3", "192.0.2.42:80")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		c.Close()
		// Double close must be safe.
		c.Close()
	}
}
