package netsim

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// ErrConnReset is returned by reads and writes on a connection whose peer
// has closed — including dials that were accepted into a listener's
// backlog just before the listener shut down and drained it.
var ErrConnReset = errors.New("netsim: connection reset by peer")

// connBufSize is the per-direction buffer capacity of a simulated
// connection. It plays the role of the TCP window: writers block only
// when the reader has fallen this many bytes behind, instead of
// rendezvousing with the reader on every byte the way net.Pipe does.
// 32 KiB comfortably exceeds every request and response the simulated
// sites exchange while keeping pooled keep-alive connections cheap.
const connBufSize = 32 * 1024

// bufPool recycles direction buffers across connections; crawl workloads
// open and close connections at a rate that would otherwise make these
// 64 KiB allocations the dominant source of garbage.
var bufPool = sync.Pool{
	New: func() any { return make([]byte, connBufSize) },
}

// halfPipe is one direction of a duplex connection: a fixed-capacity ring
// buffer with exactly one reading conn and one writing conn. A single
// cond (broadcast on every state change) serves both sides; each
// direction has at most one blocked reader and one blocked writer, so the
// extra wakeups are immaterial.
type halfPipe struct {
	mu   sync.Mutex
	cond sync.Cond

	buf []byte // ring storage, returned to bufPool when both sides close
	r   int    // index of the next byte to read
	n   int    // bytes currently buffered

	readerGone bool // read side closed: writes fail with ErrConnReset
	writerGone bool // write side closed: reads drain, then io.EOF

	rdl expiry // read deadline (owned by the reading conn)
	wdl expiry // write deadline (owned by the writing conn)
}

// expiry is an armable deadline; when the timer fires it marks itself
// expired and broadcasts the halfPipe's cond so blocked operations fail.
// gen invalidates in-flight timer callbacks: a callback whose Stop lost
// the race must not poison a deadline that was cleared or re-armed after
// it was scheduled.
type expiry struct {
	timer   *time.Timer
	expired bool
	gen     uint64
}

func newHalfPipe() *halfPipe {
	h := &halfPipe{buf: bufPool.Get().([]byte)}
	h.cond.L = &h.mu
	return h
}

// read copies buffered bytes into p, blocking until data, EOF, deadline
// expiry, or close.
func (h *halfPipe) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		switch {
		case h.readerGone:
			return 0, io.ErrClosedPipe
		case h.rdl.expired:
			return 0, os.ErrDeadlineExceeded
		case h.n > 0:
			nr := 0
			for nr < len(p) && h.n > 0 {
				chunk := len(h.buf) - h.r // contiguous run before wraparound
				if chunk > h.n {
					chunk = h.n
				}
				c := copy(p[nr:], h.buf[h.r:h.r+chunk])
				nr += c
				h.r = (h.r + c) % len(h.buf)
				h.n -= c
			}
			if h.writerGone && h.n == 0 {
				h.releaseLocked() // FIN already seen and now fully drained
			}
			h.cond.Broadcast() // space freed: wake a blocked writer
			return nr, nil
		case h.writerGone:
			return 0, io.EOF
		}
		h.cond.Wait()
	}
}

// write copies all of p into the ring, blocking while the buffer is full.
func (h *halfPipe) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var total int
	for len(p) > 0 {
		switch {
		case h.writerGone:
			return total, io.ErrClosedPipe
		case h.readerGone:
			return total, ErrConnReset
		case h.wdl.expired:
			return total, os.ErrDeadlineExceeded
		}
		if h.n == len(h.buf) {
			h.cond.Wait()
			continue
		}
		w := (h.r + h.n) % len(h.buf)
		chunk := len(h.buf) - w // contiguous run before wraparound
		if free := len(h.buf) - h.n; chunk > free {
			chunk = free
		}
		c := copy(h.buf[w:w+chunk], p)
		h.n += c
		total += c
		p = p[c:]
		h.cond.Broadcast() // data available: wake a blocked reader
	}
	return total, nil
}

// closeRead shuts the reading side: the peer's pending and future writes
// fail with ErrConnReset.
func (h *halfPipe) closeRead() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.readerGone {
		return
	}
	h.readerGone = true
	if h.rdl.timer != nil {
		h.rdl.timer.Stop()
		h.rdl.timer = nil
	}
	h.releaseLocked()
	h.cond.Broadcast()
}

// closeWrite shuts the writing side: the peer drains what is buffered and
// then reads io.EOF, exactly like a TCP FIN.
func (h *halfPipe) closeWrite() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.writerGone {
		return
	}
	h.writerGone = true
	if h.wdl.timer != nil {
		h.wdl.timer.Stop()
		h.wdl.timer = nil
	}
	h.releaseLocked()
	h.cond.Broadcast()
}

// releaseLocked returns the ring storage to the pool once no byte can
// ever be read from it again: the read side closed (undelivered bytes
// are dropped and writes fail with ErrConnReset), or the write side
// closed and the reader has drained everything (future reads see EOF
// without touching the ring). Releasing on either condition — not only
// when both conns close — matters because an idle keep-alive conn whose
// peer closed may never be touched again by its owner; waiting for a
// symmetric Close would leak both rings until GC. Callers must hold
// h.mu.
func (h *halfPipe) releaseLocked() {
	if h.buf == nil {
		return
	}
	if h.readerGone || (h.writerGone && h.n == 0) {
		bufPool.Put(h.buf) //nolint:staticcheck // fixed-size []byte, no pointer indirection concern
		h.buf = nil
		h.n = 0
		h.r = 0
	}
}

// setDeadline arms or clears one side's deadline. Callers pass the field
// they own (rdl for the reading conn, wdl for the writing conn).
func (h *halfPipe) setDeadline(d *expiry, t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if d.timer != nil {
		d.timer.Stop()
		d.timer = nil
	}
	d.expired = false
	d.gen++
	if !t.IsZero() {
		if dur := time.Until(t); dur <= 0 {
			d.expired = true
		} else {
			gen := d.gen
			d.timer = time.AfterFunc(dur, func() {
				h.mu.Lock()
				if d.gen == gen { // not cleared or re-armed since scheduling
					d.expired = true
					h.cond.Broadcast()
				}
				h.mu.Unlock()
			})
		}
	}
	h.cond.Broadcast()
}

// conn is one end of a simulated duplex connection: it reads from one
// ring and writes to the other, and carries the simulated addresses that
// server logs attribute requests by.
type conn struct {
	rd, wr        *halfPipe
	local, remote net.Addr
	closeOnce     sync.Once
}

// newConnPair builds the two ends of a connection between client and
// server addresses.
func newConnPair(clientAddr, serverAddr net.Addr) (clientEnd, serverEnd *conn) {
	req := newHalfPipe()  // client -> server
	resp := newHalfPipe() // server -> client
	clientEnd = &conn{rd: resp, wr: req, local: clientAddr, remote: serverAddr}
	serverEnd = &conn{rd: req, wr: resp, local: serverAddr, remote: clientAddr}
	return clientEnd, serverEnd
}

func (c *conn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *conn) Write(p []byte) (int, error) { return c.wr.write(p) }

// Close shuts both directions: the peer drains buffered data and then
// sees EOF on reads, and its writes fail with ErrConnReset.
func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.rd.closeRead()
		c.wr.closeWrite()
	})
	return nil
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func (c *conn) SetDeadline(t time.Time) error {
	c.rd.setDeadline(&c.rd.rdl, t)
	c.wr.setDeadline(&c.wr.wdl, t)
	return nil
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.rd.setDeadline(&c.rd.rdl, t)
	return nil
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.wr.setDeadline(&c.wr.wdl, t)
	return nil
}
