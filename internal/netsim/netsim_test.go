package netsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHTTPOverNetworkPreservesSourceIP(t *testing.T) {
	nw := New()
	nw.Register("example.test", "203.0.113.10")

	ln, err := nw.Listen("203.0.113.10", 80)
	if err != nil {
		t.Fatal(err)
	}
	var seenRemote string
	var mu sync.Mutex
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		host, _, _ := net.SplitHostPort(r.RemoteAddr)
		seenRemote = host
		mu.Unlock()
		fmt.Fprint(w, "hello from example.test")
	})}
	go srv.Serve(ln)
	defer srv.Close()

	client := nw.HTTPClient("198.51.100.77")
	resp, err := client.Get("http://example.test/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello from example.test" {
		t.Fatalf("body = %q", body)
	}
	mu.Lock()
	defer mu.Unlock()
	if seenRemote != "198.51.100.77" {
		t.Fatalf("server saw remote %q, want the simulated crawler IP", seenRemote)
	}
}

func TestDialUnknownHost(t *testing.T) {
	nw := New()
	_, err := nw.Dial(context.Background(), "10.0.0.1", "nowhere.test:80")
	if !errors.Is(err, ErrNameNotFound) {
		t.Fatalf("err = %v, want ErrNameNotFound", err)
	}
}

func TestDialRefused(t *testing.T) {
	nw := New()
	_, err := nw.Dial(context.Background(), "10.0.0.1", "192.0.2.1:80")
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestListenConflict(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("192.0.2.5", 80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Listen("192.0.2.5", 80); err == nil {
		t.Fatal("second bind to same address must fail")
	}
	ln.Close()
	// After close the address is free again.
	ln2, err := nw.Listen("192.0.2.5", 80)
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	ln2.Close()
}

func TestListenInvalidIP(t *testing.T) {
	nw := New()
	if _, err := nw.Listen("not-an-ip", 80); err == nil {
		t.Fatal("invalid IP must fail")
	}
}

func TestDialBadAddress(t *testing.T) {
	nw := New()
	if _, err := nw.Dial(context.Background(), "10.0.0.1", "missing-port"); err == nil {
		t.Fatal("address without port must fail")
	}
	if _, err := nw.Dial(context.Background(), "10.0.0.1", "192.0.2.1:notaport"); err == nil {
		t.Fatal("non-numeric port must fail")
	}
}

func TestAcceptAfterClose(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("192.0.2.6", 80)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	ln.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Accept after close: %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not return after Close")
	}
	// Dials to a closed listener are refused.
	if _, err := nw.Dial(context.Background(), "10.0.0.1", "192.0.2.6:80"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("dial to closed listener: %v", err)
	}
}

func TestDialContextCancel(t *testing.T) {
	nw := New()
	nw.SetLatency(5 * time.Second)
	ln, err := nw.Listen("192.0.2.7", 80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = nw.Dial(ctx, "10.0.0.1", "192.0.2.7:80")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not interrupt the latency delay")
	}
}

func TestDialCancelledContextNoLatency(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("192.0.2.12", 80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := nw.Dial(ctx, "10.0.0.1", "192.0.2.12:80"); !errors.Is(err, context.Canceled) {
		t.Fatalf("dial with cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestLatencyApplied(t *testing.T) {
	nw := New()
	nw.SetLatency(30 * time.Millisecond)
	ln, err := nw.Listen("192.0.2.8", 80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	start := time.Now()
	c, err := nw.Dial(context.Background(), "10.0.0.1", "192.0.2.8:80")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("dial returned in %v, want >= 30ms latency", elapsed)
	}
}

func TestConcurrentClients(t *testing.T) {
	nw := New()
	nw.Register("busy.test", "203.0.113.20")
	ln, err := nw.Listen("203.0.113.20", 80)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host, _, _ := net.SplitHostPort(r.RemoteAddr)
		fmt.Fprint(w, host)
	})}
	go srv.Serve(ln)
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ip := fmt.Sprintf("198.51.100.%d", i+1)
			client := nw.HTTPClient(ip)
			resp, err := client.Get("http://busy.test/")
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if string(body) != ip {
				errs <- fmt.Errorf("client %s echoed %q", ip, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestManyConcurrentDialsAndListens hammers one network with listeners
// binding, accepting, and closing while many clients dial — the access
// pattern the scenario engine's parallel site simulations produce. Run
// with -race; the assertions are that nothing deadlocks and every dial
// either succeeds or fails with a refusal.
func TestManyConcurrentDialsAndListens(t *testing.T) {
	nw := New()
	const listeners = 16
	const dialsPerTarget = 25

	var servers sync.WaitGroup
	lns := make([]net.Listener, listeners)
	for i := 0; i < listeners; i++ {
		ip := fmt.Sprintf("203.0.113.%d", 100+i)
		ln, err := nw.Listen(ip, 80)
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		servers.Add(1)
		go func(ln net.Listener) {
			defer servers.Done()
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func(c net.Conn) {
					io.Copy(io.Discard, c)
					c.Close()
				}(c)
			}
		}(ln)
	}

	var clients sync.WaitGroup
	errs := make(chan error, listeners*dialsPerTarget)
	for i := 0; i < listeners; i++ {
		target := fmt.Sprintf("203.0.113.%d:80", 100+i)
		for j := 0; j < dialsPerTarget; j++ {
			clients.Add(1)
			go func(target string, j int) {
				defer clients.Done()
				src := fmt.Sprintf("198.51.100.%d", 1+j%200)
				c, err := nw.Dial(context.Background(), src, target)
				if err != nil {
					// Refusals are expected once listeners start closing.
					if !errors.Is(err, ErrConnRefused) {
						errs <- err
					}
					return
				}
				// A dial can land in a backlog that its listener closes
				// before accepting; Close drains the backlog and closes
				// those conns, so the write either succeeds (buffered or
				// read by the server) or fails fast with a reset — no
				// deadline needed to avoid blocking forever.
				if _, werr := fmt.Fprint(c, "ping"); werr != nil && !errors.Is(werr, ErrConnReset) {
					errs <- fmt.Errorf("write after refused accept: %w", werr)
				}
				c.Close()
			}(target, j)
		}
	}
	// Close half the listeners while dials are in flight.
	for i := 0; i < listeners; i += 2 {
		go lns[i].Close()
	}

	done := make(chan struct{})
	go func() { clients.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent dials deadlocked")
	}
	for _, ln := range lns {
		ln.Close()
	}
	servers.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("dial: %v", err)
	}
	// The network is still serviceable afterwards.
	ln, err := nw.Listen("203.0.113.99", 80)
	if err != nil {
		t.Fatalf("post-stress listen: %v", err)
	}
	ln.Close()
}

func TestResolveLiteralIP(t *testing.T) {
	nw := New()
	ip, err := nw.Resolve("192.0.2.99")
	if err != nil || ip != "192.0.2.99" {
		t.Fatalf("Resolve literal = %q, %v", ip, err)
	}
}

func TestRegisterCaseInsensitive(t *testing.T) {
	nw := New()
	nw.Register("Example.TEST", "192.0.2.50")
	ip, err := nw.Resolve("example.test")
	if err != nil || ip != "192.0.2.50" {
		t.Fatalf("Resolve = %q, %v", ip, err)
	}
}

func TestListenerAddr(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("192.0.2.9", 8080)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := ln.Addr().String(); got != "192.0.2.9:8080" {
		t.Fatalf("Addr = %q", got)
	}
}

func TestDoubleCloseListener(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("192.0.2.11", 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal("second Close must be a no-op, not panic or error")
	}
}

// TestAliasDialReachesSharedListener pins the virtual-IP aliasing
// contract the webserver farm relies on: a dial to an alias address is
// accepted by the target listener, and the accepted connection's local
// address is the alias — the advertised per-site IP — not the listener's
// primary address.
func TestAliasDialReachesSharedListener(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("192.0.2.20", 80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := nw.AddAlias("192.0.2.21", 80, ln); err != nil {
		t.Fatal(err)
	}

	type accepted struct {
		conn net.Conn
		err  error
	}
	got := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		got <- accepted{c, err}
	}()
	cc, err := nw.Dial(context.Background(), "198.51.100.7", "192.0.2.21:80")
	if err != nil {
		t.Fatalf("dial alias: %v", err)
	}
	defer cc.Close()
	acc := <-got
	if acc.err != nil {
		t.Fatalf("accept: %v", acc.err)
	}
	defer acc.conn.Close()
	if la := acc.conn.LocalAddr().String(); la != "192.0.2.21:80" {
		t.Fatalf("server local addr = %s, want the alias 192.0.2.21:80", la)
	}
	if ra := acc.conn.RemoteAddr().String(); !strings.HasPrefix(ra, "198.51.100.7:") {
		t.Fatalf("server remote addr = %s, want source 198.51.100.7", ra)
	}
}

// TestAliasLifecycle covers conflicts, removal, and listener close
// releasing every alias.
func TestAliasLifecycle(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("192.0.2.30", 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.AddAlias("bogus", 80, ln); err == nil {
		t.Fatal("invalid alias IP must fail")
	}
	if err := nw.AddAlias("192.0.2.30", 80, ln); err == nil {
		t.Fatal("aliasing the primary address must fail (in use)")
	}
	if err := nw.AddAlias("192.0.2.31", 80, ln); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddAlias("192.0.2.31", 80, ln); err == nil {
		t.Fatal("duplicate alias must fail")
	}
	other := New()
	if err := other.AddAlias("192.0.2.32", 80, ln); err == nil {
		t.Fatal("aliasing a foreign network's listener must fail")
	}

	// Removing the primary address via RemoveAlias is a no-op.
	nw.RemoveAlias("192.0.2.30", 80)
	if _, err := nw.Dial(context.Background(), "198.51.100.7", "192.0.2.30:80"); err != nil {
		t.Fatalf("primary address must survive RemoveAlias: %v", err)
	}
	nw.RemoveAlias("192.0.2.31", 80)
	if _, err := nw.Dial(context.Background(), "198.51.100.7", "192.0.2.31:80"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("dial removed alias = %v, want refused", err)
	}

	if err := nw.AddAlias("192.0.2.33", 80, ln); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	if _, err := nw.Dial(context.Background(), "198.51.100.7", "192.0.2.33:80"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("dial alias after listener close = %v, want refused", err)
	}
	// The alias slots are free again.
	if _, err := nw.Listen("192.0.2.33", 80); err != nil {
		t.Fatalf("rebinding released alias: %v", err)
	}
	// Aliasing a closed listener is refused; the address stays free.
	if err := nw.AddAlias("192.0.2.34", 80, ln); err == nil {
		t.Fatal("aliasing a closed listener must fail")
	}
	if ln2, err := nw.Listen("192.0.2.34", 80); err != nil {
		t.Fatalf("address leaked by rejected alias: %v", err)
	} else {
		ln2.Close()
	}
}
