package netsim

import "repro/internal/obs"

// Fast-path HTTP client metrics. Registered at init so the families
// appear in /metrics (with zero values) in any binary that links
// netsim, traffic or not. The legacy-vs-fast split is a label on one
// family: path="fast" is the hand-rolled framing, path="legacy" is a
// request the fast transport handed to the stdlib fallback because it
// fell outside the closed-world subset.
var (
	mHTTPFastRequests = obs.NewCounter(`netsim_http_requests_total{path="fast"}`,
		"HTTP requests through the netsim client, by framing path.")
	mHTTPLegacyRequests = obs.NewCounter(`netsim_http_requests_total{path="legacy"}`,
		"HTTP requests through the netsim client, by framing path.")
	mHTTPRetries = obs.NewCounter("netsim_http_retries_total",
		"Requests replayed on a fresh conn after a pooled conn turned out dead.")
	mHTTPPoolHits = obs.NewCounter(`netsim_http_pool_total{result="hit"}`,
		"Idle-pool lookups by outcome (hit reuses a conn, miss dials).")
	mHTTPPoolMisses = obs.NewCounter(`netsim_http_pool_total{result="miss"}`,
		"Idle-pool lookups by outcome (hit reuses a conn, miss dials).")
	mHTTPBytesOut = obs.NewCounter(`netsim_http_bytes_total{dir="out"}`,
		"Bytes written/read by the fast-path client, by direction.")
	mHTTPBytesIn = obs.NewCounter(`netsim_http_bytes_total{dir="in"}`,
		"Bytes written/read by the fast-path client, by direction.")
	mHTTPLatency = obs.NewHistogram("netsim_http_request_latency_ns",
		"Fast-path request latency (write to response headers parsed), ns.")
)
