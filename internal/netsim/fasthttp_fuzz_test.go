package netsim

import (
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// fuzzConn serves a fixed byte stream as a net.Conn: reads drain the
// buffer then report io.EOF, writes are discarded. It stands in for a
// peer that sends exactly the fuzzed bytes and hangs up.
type fuzzConn struct{ data []byte }

func (c *fuzzConn) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, c.data)
	c.data = c.data[n:]
	return n, nil
}

func (c *fuzzConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *fuzzConn) Close() error                     { return nil }
func (c *fuzzConn) LocalAddr() net.Addr              { return fuzzAddr{} }
func (c *fuzzConn) RemoteAddr() net.Addr             { return fuzzAddr{} }
func (c *fuzzConn) SetDeadline(time.Time) error      { return nil }
func (c *fuzzConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fuzzConn) SetWriteDeadline(time.Time) error { return nil }

type fuzzAddr struct{}

func (fuzzAddr) Network() string { return "netsim" }
func (fuzzAddr) String() string  { return "198.51.100.1:9" }

// FuzzFastResponseParse throws arbitrary bytes at the fast client's
// response parser: any input must either parse into a response whose
// body drains to a clean end, or return an error — never panic, never
// loop forever.
func FuzzFastResponseParse(f *testing.F) {
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 5\r\n\r\nhello"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n"))
	f.Add([]byte("HTTP/1.0 404 Not Found\r\n\r\nbody until eof"))
	f.Add([]byte("HTTP/1.1 204 No Content\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 421 Misdirected Request\r\nContent-Length: 2\r\nConnection: close\r\n\r\nno"))
	f.Add([]byte("HTTP/9.9 xxx\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 99999999\r\n\r\nshort"))
	f.Add([]byte("garbage\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := newFastTransport(nil, "198.51.100.1")
		req, err := http.NewRequest(http.MethodGet, "http://fuzz.test/", nil)
		if err != nil {
			t.Fatal(err)
		}
		fc := &fastConn{c: &fuzzConn{data: data}}
		fc.br.c = fc.c
		fc.br.buf = make([]byte, fastReadBufSize)
		resp, _, err := tr.readResponse(fc, req, "fuzz.test:80")
		if err != nil {
			return
		}
		if resp.StatusCode < 100 || resp.StatusCode > 999 {
			t.Fatalf("accepted out-of-range status %d", resp.StatusCode)
		}
		// The head parsed; the finite stream must drain without panicking.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	})
}
