package netsim_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// TestMetricsHandlerOverNetsim proves the obs /metrics handler is
// servable inside the simulated network, not just on real TCP: an
// in-sim operator can scrape any simulated daemon. It also exercises
// the fast-path client against a stdlib handler and checks the netsim
// client families advance.
func TestMetricsHandlerOverNetsim(t *testing.T) {
	nw := netsim.New()
	ln, err := nw.Listen("10.9.0.1", 80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	client := nw.HTTPClient("10.9.0.99")
	resp, err := client.Get("http://10.9.0.1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := string(body)
	for _, fam := range []string{
		"netsim_http_requests_total", "netsim_http_pool_total",
		"netsim_http_bytes_total", "netsim_http_request_latency_ns",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("netsim-served /metrics missing family %s", fam)
		}
	}
	// The scrape itself rode the fast path, so the fast-request counter
	// cannot be zero in its own output... but the output snapshot was
	// taken mid-request. Scrape again and check the counter moved.
	resp2, err := client.Get("http://10.9.0.1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body2), `netsim_http_requests_total{path="fast"}`) {
		t.Fatal("second scrape missing the fast-path request counter series")
	}
	var line string
	for _, l := range strings.Split(string(body2), "\n") {
		if strings.HasPrefix(l, `netsim_http_requests_total{path="fast"}`) {
			line = l
		}
	}
	if strings.HasSuffix(line, " 0") {
		t.Fatalf("fast-path counter still zero after scraping over netsim: %q", line)
	}
}
