// Package netsim provides an in-memory IP network that carries real
// net.Conn traffic between simulated hosts.
//
// The paper's §5 experiments identify crawlers by the source IP addresses
// observed in web server logs (some companies publish crawl ranges, some do
// not). Loopback TCP cannot reproduce that: every connection arrives from
// 127.0.0.1. netsim instead implements net.Listener and a dialer on top of
// buffered duplex pipe pairs (see pipe.go) whose LocalAddr/RemoteAddr carry
// the simulated addresses, so an unmodified net/http server and client
// exchange real HTTP while logs show the crawler's simulated source IP.
// Unlike net.Pipe, reads and writes do not rendezvous per byte: each
// direction buffers up to a TCP-window's worth of data, and deadlines are
// honored.
//
// A Network also contains a miniature name service (Register/Resolve) so
// HTTP clients can use ordinary host-based URLs.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrConnRefused is returned by Dial when no listener is bound to the
// target address.
var ErrConnRefused = errors.New("netsim: connection refused")

// ErrNameNotFound is returned when a hostname has no registered address.
var ErrNameNotFound = errors.New("netsim: no such host")

// legacyPerRequestDial restores the pre-pooling transport behaviour:
// every HTTP request dials a fresh connection (DisableKeepAlives). It
// exists as a compatibility knob so parity tests can prove that pooled
// keep-alive connections leave server logs and verdicts bit-identical;
// production paths never set it.
var legacyPerRequestDial atomic.Bool

// SetLegacyPerRequestDial toggles the compatibility transport for clients
// created after the call: when enabled, HTTPClient disables keep-alives
// and dials per request exactly as the pre-optimization transport did.
func SetLegacyPerRequestDial(enabled bool) { legacyPerRequestDial.Store(enabled) }

// LegacyPerRequestDial reports whether the compatibility transport is on.
func LegacyPerRequestDial() bool { return legacyPerRequestDial.Load() }

// Network is an in-memory IP network. The zero value is not usable; create
// one with New. All methods are safe for concurrent use.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*listener // key "ip:port"
	names     map[string]string    // lowercase hostname -> ip
	ephemeral atomic.Uint32
	latency   time.Duration
}

// New returns an empty network.
func New() *Network {
	return &Network{
		listeners: make(map[string]*listener),
		names:     make(map[string]string),
	}
}

// SetLatency sets a fixed one-way connection setup delay applied on every
// successful dial. Zero (the default) disables the delay.
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// Register binds hostname to ip in the network's name service, replacing
// any previous binding. Hostnames are case-insensitive.
func (n *Network) Register(hostname, ip string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.names[strings.ToLower(hostname)] = ip
}

// Resolve returns the IP bound to hostname. If hostname already parses as
// an IP it is returned verbatim.
func (n *Network) Resolve(hostname string) (string, error) {
	if net.ParseIP(hostname) != nil {
		return hostname, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if ip, ok := n.names[strings.ToLower(hostname)]; ok {
		return ip, nil
	}
	return "", fmt.Errorf("%w: %s", ErrNameNotFound, hostname)
}

// Listen binds a listener to ip:port. Binding an address that is already
// bound is an error. Closing the listener releases the address.
func (n *Network) Listen(ip string, port int) (net.Listener, error) {
	parsed := net.ParseIP(ip)
	if parsed == nil {
		return nil, fmt.Errorf("netsim: invalid listen IP %q", ip)
	}
	key := net.JoinHostPort(ip, strconv.Itoa(port))
	l := &listener{
		network: n,
		key:     key,
		addr:    &net.TCPAddr{IP: parsed, Port: port},
	}
	l.cond.L = &l.mu
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[key]; exists {
		return nil, fmt.Errorf("netsim: address %s already in use", key)
	}
	n.listeners[key] = l
	return l, nil
}

// AddAlias makes aliasIP:port a second address of target, a listener
// previously returned by Listen on this network: dials to the alias are
// accepted by the same listener, and the server side of each such
// connection reports the alias as its local address. This is virtual IP
// aliasing — one accept loop serving many advertised site IPs — and is
// what lets a multi-site farm advertise a distinct per-site IP without a
// per-site listener. Closing the listener releases every alias.
func (n *Network) AddAlias(aliasIP string, port int, target net.Listener) error {
	if net.ParseIP(aliasIP) == nil {
		return fmt.Errorf("netsim: invalid alias IP %q", aliasIP)
	}
	l, ok := target.(*listener)
	if !ok || l.network != n {
		return fmt.Errorf("netsim: alias target is not a listener of this network")
	}
	key := net.JoinHostPort(aliasIP, strconv.Itoa(port))
	// Hold l.mu across the whole registration so it cannot interleave
	// with Close: either the alias lands before Close snapshots the
	// alias list (and is released with the listener), or Close has
	// already marked the listener and the alias is refused — never a
	// leaked address pointing at a dead listener.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("netsim: alias target %s is closed", l.key)
	}
	n.mu.Lock()
	if _, exists := n.listeners[key]; exists {
		n.mu.Unlock()
		return fmt.Errorf("netsim: address %s already in use", key)
	}
	n.listeners[key] = l
	n.mu.Unlock()
	l.aliasMu.Lock()
	l.aliases = append(l.aliases, key)
	l.aliasMu.Unlock()
	return nil
}

// RemoveAlias releases an alias added with AddAlias. Removing an address
// that is not an alias is a no-op, so callers can tear down sites without
// tracking whether their IP was aliased or primary.
func (n *Network) RemoveAlias(aliasIP string, port int) {
	key := net.JoinHostPort(aliasIP, strconv.Itoa(port))
	n.mu.Lock()
	l, ok := n.listeners[key]
	if !ok || l.key == key {
		n.mu.Unlock()
		return // unknown, or the listener's primary address
	}
	delete(n.listeners, key)
	n.mu.Unlock()
	l.aliasMu.Lock()
	for i, k := range l.aliases {
		if k == key {
			l.aliases = append(l.aliases[:i], l.aliases[i+1:]...)
			break
		}
	}
	l.aliasMu.Unlock()
}

// Dial opens a connection from sourceIP to addr ("host:port", where host
// may be a registered name or a literal IP). It honors ctx cancellation.
func (n *Network) Dial(ctx context.Context, sourceIP, addr string) (net.Conn, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad address %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad port %q: %w", portStr, err)
	}
	ip, err := n.Resolve(host)
	if err != nil {
		return nil, err
	}
	key := net.JoinHostPort(ip, strconv.Itoa(port))

	n.mu.Lock()
	l, ok := n.listeners[key]
	latency := n.latency
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, key)
	}
	if latency > 0 {
		timer := time.NewTimer(latency)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	srcPort := 32768 + int(n.ephemeral.Add(1)%28000)
	clientAddr := &net.TCPAddr{IP: net.ParseIP(sourceIP), Port: srcPort}
	serverAddr := &net.TCPAddr{IP: net.ParseIP(ip), Port: port}
	cc, sc := newConnPair(clientAddr, serverAddr)
	if reason := l.enqueue(sc); reason != "" {
		cc.Close()
		sc.Close()
		return nil, fmt.Errorf("%w: %s (%s)", ErrConnRefused, key, reason)
	}
	return cc, nil
}

// Dialer returns a DialContext function suitable for http.Transport that
// originates connections from sourceIP.
func (n *Network) Dialer(sourceIP string) func(ctx context.Context, network, addr string) (net.Conn, error) {
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		return n.Dial(ctx, sourceIP, addr)
	}
}

// HTTPClient returns an http.Client whose connections originate from
// sourceIP and traverse this network. Each call returns an independent
// client with its own transport, so connection pooling is naturally keyed
// by (sourceIP, target): sequential requests to the same host reuse one
// kept-alive connection, and server logs still attribute every request to
// the client's simulated source IP via CLF.
//
// By default the client rides the netsim-native fast path (see
// fasthttp.go): a hand-rolled HTTP/1.1 writer/reader over the buffered
// duplex conns that skips stdlib net/http's per-request machinery while
// keeping the exact wire format and keep-alive pooling semantics.
// Requests outside the fast path's closed world fall back to a stdlib
// transport transparently, and the SetLegacyNetHTTP knob restores the
// stdlib stack wholesale for parity testing.
//
// The client carries no overall request timeout: wrapping every request
// in a deadline context costs several allocations and a timer on the hot
// path, and the simulated network cannot stall silently (a closed peer
// always surfaces as EOF or ErrConnReset). Callers that want a bound
// pass a cancellable or deadline context per request — every experiment
// driver in this repo already does — or set Timeout on the returned
// client.
func (n *Network) HTTPClient(sourceIP string) *http.Client {
	if legacyNetHTTP.Load() || legacyPerRequestDial.Load() {
		// Every client in this codebase issues requests sequentially, so
		// one idle connection per host is all reuse requires; the caps
		// keep surveys that touch thousands of hosts from pinning buffer
		// memory.
		tr := &http.Transport{
			DialContext:         n.Dialer(sourceIP),
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 2,
			IdleConnTimeout:     90 * time.Second,
		}
		if legacyPerRequestDial.Load() {
			tr.DisableKeepAlives = true
		}
		return &http.Client{Transport: tr}
	}
	return &http.Client{Transport: newFastTransport(n, sourceIP)}
}

// maxBacklog bounds a listener's accept queue, like a kernel SYN queue:
// dials beyond it are refused rather than queued without bound. High
// enough that a listener with a live accept loop never hits it.
const maxBacklog = 1024

// listener is a bound address with a bounded accept queue. Close drains
// the queue and closes every conn still in it, so a dialer whose
// connection was accepted into the backlog but never served observes a
// reset on first use instead of blocking forever.
type listener struct {
	network *Network
	key     string
	addr    net.Addr

	// aliases are additional "ip:port" keys in network.listeners that
	// resolve to this listener (see Network.AddAlias), guarded separately
	// so alias bookkeeping never contends with the accept path.
	aliasMu sync.Mutex
	aliases []string

	mu     sync.Mutex
	cond   sync.Cond
	queue  []net.Conn
	closed bool
}

// enqueue hands the server end of a new connection to the listener. A
// non-empty return is the refusal reason.
func (l *listener) enqueue(c net.Conn) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return "listener closed"
	}
	if len(l.queue) >= maxBacklog {
		return "backlog full"
	}
	l.queue = append(l.queue, c)
	l.cond.Signal()
	return ""
}

// Accept waits for an inbound connection.
func (l *listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) == 0 && !l.closed {
		l.cond.Wait()
	}
	if len(l.queue) > 0 {
		c := l.queue[0]
		l.queue = l.queue[1:]
		return c, nil
	}
	return nil, net.ErrClosed
}

// Close releases the bound address. Dials after the close fail with
// ErrConnRefused; connections already queued in the backlog are closed,
// so their dialers see ErrConnReset on first read or write.
func (l *listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	drained := l.queue
	l.queue = nil
	l.cond.Broadcast()
	l.mu.Unlock()

	l.aliasMu.Lock()
	aliases := l.aliases
	l.aliases = nil
	l.aliasMu.Unlock()
	l.network.mu.Lock()
	delete(l.network.listeners, l.key)
	for _, key := range aliases {
		delete(l.network.listeners, key)
	}
	l.network.mu.Unlock()

	for _, c := range drained {
		c.Close()
	}
	return nil
}

// Addr returns the bound address.
func (l *listener) Addr() net.Addr { return l.addr }
