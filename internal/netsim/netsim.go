// Package netsim provides an in-memory IP network that carries real
// net.Conn traffic between simulated hosts.
//
// The paper's §5 experiments identify crawlers by the source IP addresses
// observed in web server logs (some companies publish crawl ranges, some do
// not). Loopback TCP cannot reproduce that: every connection arrives from
// 127.0.0.1. netsim instead implements net.Listener and a dialer on top of
// synchronous net.Pipe pairs whose LocalAddr/RemoteAddr carry the simulated
// addresses, so an unmodified net/http server and client exchange real HTTP
// while logs show the crawler's simulated source IP.
//
// A Network also contains a miniature name service (Register/Resolve) so
// HTTP clients can use ordinary host-based URLs.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrConnRefused is returned by Dial when no listener is bound to the
// target address.
var ErrConnRefused = errors.New("netsim: connection refused")

// ErrNameNotFound is returned when a hostname has no registered address.
var ErrNameNotFound = errors.New("netsim: no such host")

// Network is an in-memory IP network. The zero value is not usable; create
// one with New. All methods are safe for concurrent use.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*listener // key "ip:port"
	names     map[string]string    // lowercase hostname -> ip
	ephemeral atomic.Uint32
	latency   time.Duration
}

// New returns an empty network.
func New() *Network {
	return &Network{
		listeners: make(map[string]*listener),
		names:     make(map[string]string),
	}
}

// SetLatency sets a fixed one-way connection setup delay applied on every
// successful dial. Zero (the default) disables the delay.
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// Register binds hostname to ip in the network's name service, replacing
// any previous binding. Hostnames are case-insensitive.
func (n *Network) Register(hostname, ip string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.names[strings.ToLower(hostname)] = ip
}

// Resolve returns the IP bound to hostname. If hostname already parses as
// an IP it is returned verbatim.
func (n *Network) Resolve(hostname string) (string, error) {
	if net.ParseIP(hostname) != nil {
		return hostname, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if ip, ok := n.names[strings.ToLower(hostname)]; ok {
		return ip, nil
	}
	return "", fmt.Errorf("%w: %s", ErrNameNotFound, hostname)
}

// Listen binds a listener to ip:port. Binding an address that is already
// bound is an error. Closing the listener releases the address.
func (n *Network) Listen(ip string, port int) (net.Listener, error) {
	parsed := net.ParseIP(ip)
	if parsed == nil {
		return nil, fmt.Errorf("netsim: invalid listen IP %q", ip)
	}
	key := net.JoinHostPort(ip, strconv.Itoa(port))
	l := &listener{
		network: n,
		key:     key,
		addr:    &net.TCPAddr{IP: parsed, Port: port},
		backlog: make(chan net.Conn, 64),
		done:    make(chan struct{}),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[key]; exists {
		return nil, fmt.Errorf("netsim: address %s already in use", key)
	}
	n.listeners[key] = l
	return l, nil
}

// Dial opens a connection from sourceIP to addr ("host:port", where host
// may be a registered name or a literal IP). It honors ctx cancellation.
func (n *Network) Dial(ctx context.Context, sourceIP, addr string) (net.Conn, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad address %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad port %q: %w", portStr, err)
	}
	ip, err := n.Resolve(host)
	if err != nil {
		return nil, err
	}
	key := net.JoinHostPort(ip, strconv.Itoa(port))

	n.mu.Lock()
	l, ok := n.listeners[key]
	latency := n.latency
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, key)
	}
	if latency > 0 {
		timer := time.NewTimer(latency)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}

	clientSide, serverSide := net.Pipe()
	srcPort := 32768 + int(n.ephemeral.Add(1)%28000)
	clientAddr := &net.TCPAddr{IP: net.ParseIP(sourceIP), Port: srcPort}
	serverAddr := &net.TCPAddr{IP: net.ParseIP(ip), Port: port}
	cc := &conn{Conn: clientSide, local: clientAddr, remote: serverAddr}
	sc := &conn{Conn: serverSide, local: serverAddr, remote: clientAddr}

	select {
	case l.backlog <- sc:
		return cc, nil
	case <-l.done:
		cc.Close()
		sc.Close()
		return nil, fmt.Errorf("%w: %s (listener closed)", ErrConnRefused, key)
	case <-ctx.Done():
		cc.Close()
		sc.Close()
		return nil, ctx.Err()
	}
}

// Dialer returns a DialContext function suitable for http.Transport that
// originates connections from sourceIP.
func (n *Network) Dialer(sourceIP string) func(ctx context.Context, network, addr string) (net.Conn, error) {
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		return n.Dial(ctx, sourceIP, addr)
	}
}

// HTTPClient returns an http.Client whose connections originate from
// sourceIP and traverse this network. Each call returns an independent
// client with its own transport so callers may customize timeouts freely.
func (n *Network) HTTPClient(sourceIP string) *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext:       n.Dialer(sourceIP),
			DisableKeepAlives: true,
		},
		Timeout: 10 * time.Second,
	}
}

type listener struct {
	network   *Network
	key       string
	addr      net.Addr
	backlog   chan net.Conn
	done      chan struct{}
	closeOnce sync.Once
}

// Accept waits for an inbound connection.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close releases the bound address. Pending dials fail with ErrConnRefused.
func (l *listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.network.mu.Lock()
		delete(l.network.listeners, l.key)
		l.network.mu.Unlock()
	})
	return nil
}

// Addr returns the bound address.
func (l *listener) Addr() net.Addr { return l.addr }

// conn decorates a pipe end with simulated addresses.
type conn struct {
	net.Conn
	local, remote net.Addr
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }
