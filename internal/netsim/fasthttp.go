package netsim

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// legacyNetHTTP restores the pre-fast-path transport stack: HTTPClient
// hands out a stock net/http Transport and the webserver packages serve
// with stock http.Servers, exactly as PR 3–5 did. It exists as a
// compatibility knob so parity tests can prove the hand-rolled HTTP/1.1
// fast path leaves verdicts and server logs bit-identical; production
// paths never set it.
var legacyNetHTTP atomic.Bool

// SetLegacyNetHTTP toggles the compatibility HTTP stack for clients and
// servers created after the call: when enabled, HTTPClient returns a
// stdlib-transport client and webserver hosting uses stock http.Servers.
func SetLegacyNetHTTP(enabled bool) { legacyNetHTTP.Store(enabled) }

// LegacyNetHTTP reports whether the compatibility HTTP stack is on.
func LegacyNetHTTP() bool { return legacyNetHTTP.Load() }

// The netsim-native HTTP/1.1 fast path.
//
// Profiles since PR 3 put ~85% of the remaining per-request cost in
// stdlib net/http: request/response serialization, MIME header maps, the
// per-connection reader and writer goroutine pair, and a few dozen
// allocations per exchange — all machinery for generality the closed
// world behind netsim never uses. fastTransport is an http.RoundTripper
// that speaks exactly the subset our traffic needs — GET/HEAD/POST, a
// small fixed header set, Content-Length or chunked framing, keep-alive
// pooling — straight over the buffered duplex conns, with pooled buffers
// and no per-request goroutines. Anything outside that subset falls back
// to a lazily built stdlib transport, so the http.Client surface is
// unchanged.

const (
	fastMaxIdlePerHost = 2  // matches the stdlib transport config it replaces
	fastMaxIdleTotal   = 64 // ditto
	fastReadBufSize    = 8 * 1024
	fastMaxHeaderLine  = fastReadBufSize // a header line must fit the read buffer
	// fastMaxInlineBody is the largest request body serialized into the
	// head buffer so the whole request goes out in one ring write and can
	// be replayed on a dead pooled connection without GetBody.
	fastMaxInlineBody = 256 << 10
)

var (
	// fastHeadPool recycles request-head / response-head scratch buffers.
	fastHeadPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}
	// fastReadPool recycles per-connection read buffers.
	fastReadPool = sync.Pool{New: func() any { return make([]byte, fastReadBufSize) }}
	// fastCopyPool recycles copy buffers for streamed request bodies.
	fastCopyPool = sync.Pool{New: func() any { b := make([]byte, 16*1024); return &b }}
)

var errFastHeaderTooLong = errors.New("netsim: fast http: header line exceeds buffer")

// fastTransport implements http.RoundTripper over a Network.
type fastTransport struct {
	nw       *Network
	sourceIP string

	mu    sync.Mutex
	idle  map[string][]*fastConn // key: URL host (port included when present)
	nIdle int

	fallbackOnce sync.Once
	fallback     *http.Transport
}

func newFastTransport(nw *Network, sourceIP string) *fastTransport {
	return &fastTransport{nw: nw, sourceIP: sourceIP, idle: make(map[string][]*fastConn)}
}

// legacyRT builds the stdlib transport on first use, for the rare
// request outside the fast path's closed world.
func (t *fastTransport) legacyRT() http.RoundTripper {
	t.fallbackOnce.Do(func() {
		t.fallback = &http.Transport{
			DialContext:         t.nw.Dialer(t.sourceIP),
			MaxIdleConns:        fastMaxIdleTotal,
			MaxIdleConnsPerHost: fastMaxIdlePerHost,
			IdleConnTimeout:     90 * time.Second,
		}
	})
	return t.fallback
}

// fastEligible reports whether the request fits the closed-world subset
// the hand-rolled path covers.
func fastEligible(req *http.Request) bool {
	u := req.URL
	if u == nil || u.Scheme != "http" || u.Host == "" || u.Opaque != "" || u.User != nil {
		return false
	}
	switch req.Method {
	case http.MethodGet, http.MethodHead:
		if req.Body != nil && req.ContentLength != 0 {
			return false
		}
	case http.MethodPost:
		if req.ContentLength < 0 {
			return false // unknown length would need chunked encoding
		}
	default:
		return false
	}
	if len(req.TransferEncoding) > 0 || len(req.Trailer) > 0 {
		return false
	}
	return true
}

// fastConn is one pooled connection: the raw conn plus its persistent
// buffered reader (leftover reads survive across pooled requests).
type fastConn struct {
	c             net.Conn
	br            connReader
	deadlineArmed bool
}

func (fc *fastConn) close() {
	fc.c.Close()
	if fc.br.buf != nil {
		fastReadPool.Put(fc.br.buf) //nolint:staticcheck // fixed-size []byte
		fc.br.buf = nil
	}
}

// RoundTrip implements http.RoundTripper.
func (t *fastTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !fastEligible(req) {
		mHTTPLegacyRequests.Inc()
		return t.legacyRT().RoundTrip(req)
	}
	mHTTPFastRequests.Inc()
	var started time.Time
	if obs.Enabled() {
		started = time.Now()
	}
	ctx := req.Context()
	if err := ctx.Err(); err != nil {
		closeRequestBody(req)
		return nil, err
	}

	headp := fastHeadPool.Get().(*[]byte)
	head := appendRequestHead((*headp)[:0], req)

	// Small bodies ride in the head buffer: one ring write, and the
	// request can be replayed verbatim if a pooled conn turns out dead.
	var stream io.ReadCloser
	if req.Body != nil && req.ContentLength > 0 {
		if req.ContentLength <= fastMaxInlineBody {
			n := len(head)
			need := n + int(req.ContentLength)
			if cap(head) < need {
				grown := make([]byte, n, need)
				copy(grown, head)
				head = grown
			}
			head = head[:need]
			_, err := io.ReadFull(req.Body, head[n:])
			req.Body.Close()
			if err != nil {
				*headp = head[:0]
				fastHeadPool.Put(headp)
				return nil, fmt.Errorf("netsim: fast http: reading request body: %w", err)
			}
		} else {
			stream = req.Body
		}
	} else if req.Body != nil {
		req.Body.Close()
	}

	deadline, hasDeadline := ctx.Deadline()
	key := req.URL.Host

	for attempt := 0; ; attempt++ {
		fc, reused, err := t.getConn(req, key)
		if err != nil {
			closeStream(stream)
			*headp = head[:0]
			fastHeadPool.Put(headp)
			return nil, err
		}
		if hasDeadline {
			fc.c.SetDeadline(deadline)
			fc.deadlineArmed = true
		} else if fc.deadlineArmed {
			fc.c.SetDeadline(time.Time{})
			fc.deadlineArmed = false
		}
		resp, retryable, err := t.exchange(fc, head, stream, req, key)
		if err == nil {
			*headp = head[:0]
			fastHeadPool.Put(headp)
			if !started.IsZero() {
				mHTTPLatency.ObserveSince(started)
			}
			return resp, nil
		}
		fc.close()
		// A pooled conn may have been closed by the server (site removed,
		// server shut down) between requests; the write or the first
		// response byte fails cleanly, and — like the stdlib transport —
		// we replay the request once on a fresh conn.
		if reused && attempt == 0 && retryable {
			mHTTPRetries.Inc()
			if stream != nil {
				if req.GetBody == nil {
					closeStream(stream)
					*headp = head[:0]
					fastHeadPool.Put(headp)
					return nil, err
				}
				stream, err = req.GetBody()
				if err != nil {
					*headp = head[:0]
					fastHeadPool.Put(headp)
					return nil, err
				}
			}
			continue
		}
		closeStream(stream)
		*headp = head[:0]
		fastHeadPool.Put(headp)
		return nil, err
	}
}

func closeStream(s io.ReadCloser) {
	if s != nil {
		s.Close()
	}
}

func closeRequestBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// getConn pops an idle connection for key or dials a fresh one.
func (t *fastTransport) getConn(req *http.Request, key string) (*fastConn, bool, error) {
	t.mu.Lock()
	if l := t.idle[key]; len(l) > 0 {
		fc := l[len(l)-1]
		l[len(l)-1] = nil
		t.idle[key] = l[:len(l)-1]
		t.nIdle--
		t.mu.Unlock()
		mHTTPPoolHits.Inc()
		return fc, true, nil
	}
	t.mu.Unlock()
	mHTTPPoolMisses.Inc()
	addr := key
	if !strings.Contains(key, ":") {
		addr = key + ":80"
	}
	c, err := t.nw.Dial(req.Context(), t.sourceIP, addr)
	if err != nil {
		return nil, false, err
	}
	fc := &fastConn{c: c}
	fc.br.c = c
	fc.br.buf = fastReadPool.Get().([]byte)
	return fc, false, nil
}

// putIdle returns a healthy keep-alive connection to the pool, honoring
// the same caps as the stdlib transport it replaces.
func (t *fastTransport) putIdle(key string, fc *fastConn) {
	t.mu.Lock()
	if len(t.idle[key]) >= fastMaxIdlePerHost || t.nIdle >= fastMaxIdleTotal {
		t.mu.Unlock()
		fc.close()
		return
	}
	t.idle[key] = append(t.idle[key], fc)
	t.nIdle++
	t.mu.Unlock()
}

// exchange writes one serialized request and reads its response. The
// returned bool reports whether the failure is safely retryable on a
// fresh connection: the peer vanished before yielding a single response
// byte.
func (t *fastTransport) exchange(fc *fastConn, head []byte, stream io.ReadCloser, req *http.Request, key string) (*http.Response, bool, error) {
	if _, err := fc.c.Write(head); err != nil {
		return nil, retryableErr(err), err
	}
	mHTTPBytesOut.Add(uint64(len(head)))
	if stream != nil {
		bufp := fastCopyPool.Get().(*[]byte)
		n, err := io.CopyBuffer(fc.c, stream, *bufp)
		fastCopyPool.Put(bufp)
		stream.Close()
		mHTTPBytesOut.Add(uint64(n))
		if err != nil {
			return nil, false, err // body partially consumed; caller needs GetBody
		}
	}
	return t.readResponse(fc, req, key)
}

// retryableErr reports whether an error means "peer gone" rather than
// deadline expiry or local cancellation.
func retryableErr(err error) bool {
	return errors.Is(err, ErrConnReset) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe)
}

// readResponse parses one HTTP/1.x response head and hands the body back
// as a framed reader that returns the connection to the pool when fully
// drained.
func (t *fastTransport) readResponse(fc *fastConn, req *http.Request, key string) (*http.Response, bool, error) {
	br := &fc.br
	line, err := br.readLine()
	if err != nil {
		// Nothing buffered and the peer is gone: the reused conn was dead.
		return nil, br.buffered() == 0 && retryableErr(err), err
	}
	// Status line: "HTTP/1.x NNN reason".
	if len(line) < 12 || string(line[:7]) != "HTTP/1." || line[8] != ' ' {
		return nil, false, fmt.Errorf("netsim: fast http: malformed status line %q", line)
	}
	minor := line[7] - '0'
	if minor > 1 {
		return nil, false, fmt.Errorf("netsim: fast http: unsupported proto %q", line[:8])
	}
	code := 0
	for _, c := range line[9:12] {
		if c < '0' || c > '9' {
			return nil, false, fmt.Errorf("netsim: fast http: malformed status line %q", line)
		}
		code = code*10 + int(c-'0')
	}
	if code < 100 {
		return nil, false, fmt.Errorf("netsim: fast http: status code %d out of range", code)
	}
	if len(line) > 12 && line[12] != ' ' {
		return nil, false, fmt.Errorf("netsim: fast http: malformed status line %q", line)
	}

	resp := &http.Response{
		StatusCode: code,
		Status:     strconv.Itoa(code) + " " + http.StatusText(code),
		Proto:      "HTTP/1." + string(rune('0'+minor)),
		ProtoMajor: 1,
		ProtoMinor: int(minor),
		Header:     make(http.Header, 4),
		Request:    req,
	}

	contentLength := int64(-1)
	chunked := false
	keepAlive := minor == 1
	for {
		line, err = br.readLine()
		if err != nil {
			return nil, false, fmt.Errorf("netsim: fast http: reading response header: %w", err)
		}
		if len(line) == 0 {
			break
		}
		colon := -1
		for i, c := range line {
			if c == ':' {
				colon = i
				break
			}
		}
		if colon <= 0 {
			return nil, false, fmt.Errorf("netsim: fast http: malformed response header %q", line)
		}
		kb, vb := line[:colon], trimOWS(line[colon+1:])
		switch {
		case asciiEqualFold(kb, "Content-Length"):
			n, perr := strconv.ParseInt(string(vb), 10, 64)
			if perr != nil || n < 0 {
				return nil, false, fmt.Errorf("netsim: fast http: bad Content-Length %q", vb)
			}
			contentLength = n
			resp.Header["Content-Length"] = []string{string(vb)}
		case asciiEqualFold(kb, "Transfer-Encoding"):
			if !asciiEqualFold(vb, "chunked") {
				return nil, false, fmt.Errorf("netsim: fast http: unsupported transfer encoding %q", vb)
			}
			chunked = true
			resp.TransferEncoding = []string{"chunked"}
		case asciiEqualFold(kb, "Connection"):
			if asciiEqualFold(vb, "close") {
				keepAlive = false
			} else if asciiEqualFold(vb, "keep-alive") {
				keepAlive = true
			}
		default:
			resp.Header[canonicalKey(kb)] = append(resp.Header[canonicalKey(kb)], string(vb))
		}
	}

	noBody := req.Method == http.MethodHead || code == http.StatusNoContent ||
		code == http.StatusNotModified || (code >= 100 && code < 200)
	body := &fastBody{t: t, fc: fc, key: key, keepAlive: keepAlive}
	switch {
	case noBody:
		body.mode = bodyNone
		if req.Method == http.MethodHead {
			resp.ContentLength = contentLength
		}
	case chunked:
		body.mode = bodyChunked
		resp.ContentLength = -1
	case contentLength >= 0:
		body.mode = bodyFixed
		body.remaining = contentLength
		resp.ContentLength = contentLength
	default:
		// No framing header: the body runs to connection close (HTTP/1.0
		// style); the conn cannot be reused.
		body.mode = bodyUntilEOF
		body.keepAlive = false
		resp.ContentLength = -1
	}
	resp.Body = body
	return resp, false, nil
}

// trimOWS strips optional leading/trailing spaces and tabs.
func trimOWS(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// asciiEqualFold reports b == s ASCII-case-insensitively, allocation
// free.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		a, c := b[i], s[i]
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if a != c {
			return false
		}
	}
	return true
}

// canonicalKey interns the response header keys the closed world
// actually sees, falling back to textproto canonicalization.
func canonicalKey(b []byte) string {
	switch string(b) { // compiler-recognized, no allocation
	case "Content-Type":
		return "Content-Type"
	case "Date":
		return "Date"
	case "Content-Length":
		return "Content-Length"
	case "Connection":
		return "Connection"
	case "X-Content-Type-Options":
		return "X-Content-Type-Options"
	}
	return textproto.CanonicalMIMEHeaderKey(string(b))
}

// appendRequestHead serializes the request line and headers, matching
// what the stdlib transport would have put on the wire for the same
// request (incl. its default User-Agent) so server logs are identical.
func appendRequestHead(b []byte, req *http.Request) []byte {
	b = append(b, req.Method...)
	b = append(b, ' ')
	path := req.URL.EscapedPath()
	if path == "" {
		path = "/"
	}
	b = append(b, path...)
	if req.URL.ForceQuery || req.URL.RawQuery != "" {
		b = append(b, '?')
		b = append(b, req.URL.RawQuery...)
	}
	b = append(b, " HTTP/1.1\r\nHost: "...)
	host := req.Host
	if host == "" {
		host = req.URL.Host
	}
	b = append(b, host...)
	b = append(b, '\r', '\n')
	if ua, ok := req.Header["User-Agent"]; !ok {
		b = append(b, "User-Agent: Go-http-client/1.1\r\n"...)
	} else if len(ua) > 0 && ua[0] != "" {
		b = append(b, "User-Agent: "...)
		b = append(b, ua[0]...)
		b = append(b, '\r', '\n')
	}
	for k, vs := range req.Header {
		switch k {
		case "User-Agent", "Host", "Content-Length", "Connection", "Transfer-Encoding":
			continue
		}
		for _, v := range vs {
			b = append(b, k...)
			b = append(b, ':', ' ')
			b = append(b, v...)
			b = append(b, '\r', '\n')
		}
	}
	if req.Method == http.MethodPost {
		b = append(b, "Content-Length: "...)
		b = strconv.AppendInt(b, req.ContentLength, 10)
		b = append(b, '\r', '\n')
	}
	if req.Close {
		b = append(b, "Connection: close\r\n"...)
	}
	return append(b, '\r', '\n')
}

// connReader is a minimal buffered reader over one connection. Unlike
// bufio.Reader it exposes exactly what the fast path needs — CRLF lines
// and counted reads — and its buffer is pool-recycled with the conn.
type connReader struct {
	c    net.Conn
	buf  []byte
	r, w int
}

func (cr *connReader) buffered() int { return cr.w - cr.r }

// fill compacts the buffer and reads more data; returns an error only
// when nothing could be read.
func (cr *connReader) fill() error {
	if cr.r > 0 {
		copy(cr.buf, cr.buf[cr.r:cr.w])
		cr.w -= cr.r
		cr.r = 0
	}
	if cr.w == len(cr.buf) {
		return errFastHeaderTooLong
	}
	n, err := cr.c.Read(cr.buf[cr.w:])
	cr.w += n
	if n > 0 {
		mHTTPBytesIn.Add(uint64(n))
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

// readLine consumes and returns one CRLF- (or bare-LF-) terminated line,
// without its terminator. The returned slice aliases the buffer and is
// valid until the next read.
func (cr *connReader) readLine() ([]byte, error) {
	scanned := 0
	for {
		if i := indexByteFrom(cr.buf[cr.r:cr.w], scanned, '\n'); i >= 0 {
			line := cr.buf[cr.r : cr.r+i]
			cr.r += i + 1
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
			return line, nil
		}
		scanned = cr.w - cr.r
		if err := cr.fill(); err != nil {
			return nil, err
		}
	}
}

func indexByteFrom(b []byte, from int, c byte) int {
	for i := from; i < len(b); i++ {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// Read drains buffered bytes first, then reads straight from the conn
// (bypassing the buffer for large reads).
func (cr *connReader) Read(p []byte) (int, error) {
	if cr.r < cr.w {
		n := copy(p, cr.buf[cr.r:cr.w])
		cr.r += n
		return n, nil
	}
	if len(p) >= len(cr.buf) {
		n, err := cr.c.Read(p)
		if n > 0 {
			mHTTPBytesIn.Add(uint64(n))
		}
		return n, err
	}
	if err := cr.fill(); err != nil {
		return 0, err
	}
	n := copy(p, cr.buf[cr.r:cr.w])
	cr.r += n
	return n, nil
}

// readFull reads exactly len(p) bytes.
func (cr *connReader) readFull(p []byte) error {
	for len(p) > 0 {
		n, err := cr.Read(p)
		p = p[n:]
		if err != nil {
			if err == io.EOF && n > 0 {
				continue
			}
			return err
		}
	}
	return nil
}

// discard consumes and drops n bytes.
func (cr *connReader) discard(n int64) error {
	for n > 0 {
		if have := int64(cr.buffered()); have > 0 {
			if have > n {
				have = n
			}
			cr.r += int(have)
			n -= have
			continue
		}
		if err := cr.fill(); err != nil {
			return err
		}
	}
	return nil
}

// Body framing modes.
const (
	bodyNone = iota
	bodyFixed
	bodyChunked
	bodyUntilEOF
)

// fastBody is a response body that knows its framing; when the caller
// drains and closes it, the underlying connection goes back to the idle
// pool (the keep-alive contract), otherwise the conn is closed.
type fastBody struct {
	t         *fastTransport
	fc        *fastConn
	key       string
	mode      int
	remaining int64 // bodyFixed
	chunkRem  int64 // bodyChunked: bytes left in current chunk
	finalRead bool  // bodyChunked: last chunk consumed
	keepAlive bool
	done      bool // body fully consumed; conn clean
	closed    bool
	err       error
}

func (fb *fastBody) Read(p []byte) (int, error) {
	if fb.closed {
		return 0, errors.New("netsim: fast http: read on closed response body")
	}
	if fb.err != nil {
		return 0, fb.err
	}
	if fb.done {
		return 0, io.EOF
	}
	var n int
	var err error
	switch fb.mode {
	case bodyNone:
		fb.done = true
		return 0, io.EOF
	case bodyFixed:
		if fb.remaining == 0 {
			fb.done = true
			return 0, io.EOF
		}
		if int64(len(p)) > fb.remaining {
			p = p[:fb.remaining]
		}
		n, err = fb.fc.br.Read(p)
		fb.remaining -= int64(n)
		if fb.remaining == 0 && err == nil {
			fb.done = true
		}
		if err == io.EOF && fb.remaining > 0 {
			err = io.ErrUnexpectedEOF
		}
	case bodyChunked:
		n, err = fb.readChunked(p)
	case bodyUntilEOF:
		n, err = fb.fc.br.Read(p)
		if err == io.EOF {
			fb.done = true
		}
	}
	if err != nil && err != io.EOF {
		fb.err = err
	}
	return n, err
}

// readChunked implements the chunked transfer coding decode, enough for
// stdlib servers that chunk responses larger than their write buffer.
func (fb *fastBody) readChunked(p []byte) (int, error) {
	br := &fb.fc.br
	for fb.chunkRem == 0 {
		if fb.finalRead {
			fb.done = true
			return 0, io.EOF
		}
		line, err := br.readLine()
		if err != nil {
			return 0, fmt.Errorf("netsim: fast http: reading chunk size: %w", err)
		}
		size, err := parseChunkSize(line)
		if err != nil {
			return 0, err
		}
		if size == 0 {
			// Trailer section: consume lines until the blank terminator.
			for {
				line, err := br.readLine()
				if err != nil {
					return 0, fmt.Errorf("netsim: fast http: reading chunk trailer: %w", err)
				}
				if len(line) == 0 {
					break
				}
			}
			fb.finalRead = true
			fb.done = true
			return 0, io.EOF
		}
		fb.chunkRem = size
	}
	if int64(len(p)) > fb.chunkRem {
		p = p[:fb.chunkRem]
	}
	n, err := br.Read(p)
	fb.chunkRem -= int64(n)
	if fb.chunkRem == 0 && err == nil {
		// Consume the CRLF that closes the chunk.
		var crlf [2]byte
		if ferr := br.readFull(crlf[:]); ferr != nil {
			return n, ferr
		}
		if crlf[0] != '\r' || crlf[1] != '\n' {
			return n, errors.New("netsim: fast http: malformed chunk terminator")
		}
	}
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// parseChunkSize parses a hex chunk-size line, ignoring extensions.
func parseChunkSize(line []byte) (int64, error) {
	if i := indexByteFrom(line, 0, ';'); i >= 0 {
		line = line[:i]
	}
	line = trimOWS(line)
	if len(line) == 0 || len(line) > 16 {
		return 0, fmt.Errorf("netsim: fast http: malformed chunk size %q", line)
	}
	var n int64
	for _, c := range line {
		var d int64
		switch {
		case '0' <= c && c <= '9':
			d = int64(c - '0')
		case 'a' <= c && c <= 'f':
			d = int64(c-'a') + 10
		case 'A' <= c && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, fmt.Errorf("netsim: fast http: malformed chunk size %q", line)
		}
		n = n<<4 | d
		if n < 0 {
			return 0, fmt.Errorf("netsim: fast http: chunk size overflow")
		}
	}
	return n, nil
}

// Close releases the connection: back to the idle pool when the body was
// fully drained on a keep-alive response, closed otherwise. Closing
// without draining a small remainder finishes the drain first, like the
// stdlib transport's bodyEOFSignal does, so sequential requests keep
// their pooled conn even when a caller skips the tail of a body.
func (fb *fastBody) Close() error {
	if fb.closed {
		return nil
	}
	fb.closed = true
	if !fb.done && fb.err == nil && fb.keepAlive {
		fb.tryDrain()
	}
	if fb.done && fb.err == nil && fb.keepAlive {
		fb.t.putIdle(fb.key, fb.fc)
	} else {
		fb.fc.close()
	}
	return nil
}

// maxDrainBytes bounds how much of an abandoned body Close will consume
// to rescue the connection for reuse.
const maxDrainBytes = 256 << 10

func (fb *fastBody) tryDrain() {
	switch fb.mode {
	case bodyFixed:
		if fb.remaining > maxDrainBytes {
			return
		}
		if err := fb.fc.br.discard(fb.remaining); err != nil {
			fb.err = err
			return
		}
		fb.remaining = 0
		fb.done = true
	case bodyChunked:
		var scratch [512]byte
		var total int64
		for {
			n, err := fb.readChunked(scratch[:])
			total += int64(n)
			if err == io.EOF {
				return // done flag set by readChunked
			}
			if err != nil || total > maxDrainBytes {
				return
			}
		}
	}
}

var (
	_ http.RoundTripper = (*fastTransport)(nil)
	_ io.ReadCloser     = (*fastBody)(nil)
)
