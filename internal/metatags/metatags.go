// Package metatags implements the NoAI meta tag measurement from §2.2 of
// the paper: scanning HTML for DeviantArt-style
// "<meta name=\"robots\" content=\"noai, noimageai\">" directives and
// reproducing the top-10k scan (17 sites with noai, 16 with noimageai in
// the October 2024 Tranco list).
package metatags

import (
	"strings"

	"repro/internal/stats"
)

// Directives found in a page's robots meta tags.
type Directives struct {
	// NoAI is true when a robots meta tag contains the "noai" token.
	NoAI bool
	// NoImageAI is true when it contains "noimageai".
	NoImageAI bool
	// Other collects the remaining tokens (noindex, nofollow, …).
	Other []string
}

// Scan extracts robots meta directives from an HTML document. It is a
// token scanner, not a full HTML parser, mirroring what large-scale
// measurement pipelines do: find meta tags, take name and content
// attributes, split content on commas.
func Scan(html string) Directives {
	var d Directives
	lower := strings.ToLower(html)
	idx := 0
	for {
		i := strings.Index(lower[idx:], "<meta")
		if i < 0 {
			break
		}
		start := idx + i
		end := strings.IndexByte(lower[start:], '>')
		if end < 0 {
			break
		}
		tag := lower[start : start+end]
		idx = start + end
		if attr(tag, "name") != "robots" {
			continue
		}
		for _, token := range strings.Split(attr(tag, "content"), ",") {
			switch strings.TrimSpace(token) {
			case "":
			case "noai":
				d.NoAI = true
			case "noimageai":
				d.NoImageAI = true
			default:
				d.Other = append(d.Other, strings.TrimSpace(token))
			}
		}
	}
	return d
}

// attr extracts a quoted attribute value from a lowercased tag string.
func attr(tag, name string) string {
	for _, quote := range []string{`"`, `'`} {
		key := name + "=" + quote
		i := strings.Index(tag, key)
		if i < 0 {
			continue
		}
		rest := tag[i+len(key):]
		j := strings.Index(rest, quote)
		if j < 0 {
			continue
		}
		return strings.TrimSpace(rest[:j])
	}
	return ""
}

// ScanResult is the aggregate of a population scan.
type ScanResult struct {
	Scanned   int
	NoAI      int
	NoImageAI int
}

// Paper counts for the top-10k scan (§2.2).
const (
	PaperTopN      = 10_000
	PaperNoAI      = 17
	PaperNoImageAI = 16
)

// GenerateHomepages builds n synthetic homepages of which exactly
// wantNoAI carry the noai token and wantNoImageAI carry noimageai
// (overlapping where possible, as observed: most adopters set both).
func GenerateHomepages(n, wantNoAI, wantNoImageAI int, seed int64) []string {
	rn := stats.NewRand(seed).Fork("metatags")
	pages := make([]string, n)
	both := wantNoImageAI
	if wantNoAI < both {
		both = wantNoAI
	}
	// Adopters: indices chosen deterministically.
	idx := rn.SampleWithoutReplacement(n, wantNoAI+wantNoImageAI-both)
	for i := range pages {
		pages[i] = "<html><head><title>site</title></head><body><p>content</p></body></html>"
	}
	for j, i := range idx {
		var content string
		switch {
		case j < both:
			content = "noai, noimageai"
		case j < wantNoAI:
			content = "noai"
		default:
			content = "noimageai"
		}
		pages[i] = `<html><head><meta name="robots" content="` + content +
			`"><title>protected</title></head><body><p>art</p></body></html>`
	}
	return pages
}

// ScanAll scans a page population.
func ScanAll(pages []string) ScanResult {
	res := ScanResult{Scanned: len(pages)}
	for _, p := range pages {
		d := Scan(p)
		if d.NoAI {
			res.NoAI++
		}
		if d.NoImageAI {
			res.NoImageAI++
		}
	}
	return res
}

// RunTop10kScan reproduces the §2.2 measurement at the paper's scale.
func RunTop10kScan(seed int64) ScanResult {
	pages := GenerateHomepages(PaperTopN, PaperNoAI, PaperNoImageAI, seed)
	return ScanAll(pages)
}
