package metatags

import "testing"

func TestScanBasic(t *testing.T) {
	d := Scan(`<html><head><meta name="robots" content="noai, noimageai"></head></html>`)
	if !d.NoAI || !d.NoImageAI {
		t.Fatalf("directives = %+v", d)
	}
}

func TestScanSingleQuotesAndCase(t *testing.T) {
	d := Scan(`<META NAME='ROBOTS' CONTENT='NoAI'>`)
	if !d.NoAI || d.NoImageAI {
		t.Fatalf("directives = %+v", d)
	}
}

func TestScanOtherDirectives(t *testing.T) {
	d := Scan(`<meta name="robots" content="noindex, nofollow, noai">`)
	if !d.NoAI {
		t.Fatal("noai missing")
	}
	if len(d.Other) != 2 {
		t.Fatalf("other = %v", d.Other)
	}
}

func TestScanIgnoresNonRobotsMeta(t *testing.T) {
	d := Scan(`<meta name="description" content="noai art site">
<meta property="og:title" content="noai">`)
	if d.NoAI || d.NoImageAI {
		t.Fatal("non-robots meta tags must be ignored")
	}
}

func TestScanNoMeta(t *testing.T) {
	d := Scan(`<html><body>plain page</body></html>`)
	if d.NoAI || d.NoImageAI || len(d.Other) != 0 {
		t.Fatal("plain page must be empty")
	}
}

func TestScanMultipleTags(t *testing.T) {
	d := Scan(`<meta name="robots" content="noindex">
<meta name="robots" content="noai">`)
	if !d.NoAI {
		t.Fatal("second robots tag must be honored")
	}
}

func TestScanMalformed(t *testing.T) {
	// Unclosed tag must not panic or loop.
	d := Scan(`<meta name="robots" content="noai`)
	if d.NoAI {
		t.Fatal("unclosed tag should not parse")
	}
}

func TestGenerateAndScanExactCounts(t *testing.T) {
	pages := GenerateHomepages(1000, 17, 16, 3)
	res := ScanAll(pages)
	if res.Scanned != 1000 || res.NoAI != 17 || res.NoImageAI != 16 {
		t.Fatalf("scan = %+v", res)
	}
}

func TestRunTop10kScan(t *testing.T) {
	res := RunTop10kScan(3)
	if res.Scanned != PaperTopN {
		t.Fatalf("scanned = %d", res.Scanned)
	}
	if res.NoAI != PaperNoAI || res.NoImageAI != PaperNoImageAI {
		t.Fatalf("scan = %+v, want 17/16 (§2.2)", res)
	}
}

func TestAttr(t *testing.T) {
	if got := attr(`<meta name="robots" content="noai">`, "content"); got != "noai" {
		t.Fatalf("attr = %q", got)
	}
	if got := attr(`<meta name=robots>`, "name"); got != "" {
		t.Fatalf("unquoted attr = %q (unsupported form must be empty)", got)
	}
}
