package webserver

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// clfTime is the Common Log Format timestamp layout.
const clfTime = "02/Jan/2006:15:04:05 -0700"

// FormatCLF renders a request record in Combined Log Format, the format
// real measurement studies (and the paper's server-side analyses) consume:
//
//	remote - - [time] "GET /path HTTP/1.1" status bytes "-" "user-agent"
func FormatCLF(r Record) string {
	return fmt.Sprintf("%s - - [%s] %q %d %d %q %q",
		r.RemoteIP,
		r.Time.Format(clfTime),
		"GET "+r.Path+" HTTP/1.1",
		r.Status,
		r.Bytes,
		"-",
		r.UserAgent,
	)
}

// WriteCLF writes the site's current log to w in Combined Log Format.
func (s *Site) WriteCLF(w io.Writer) error {
	for _, rec := range s.Log() {
		if _, err := fmt.Fprintln(w, FormatCLF(rec)); err != nil {
			return err
		}
	}
	return nil
}

// ParseCLF reads Combined Log Format lines back into records. Lines that
// do not parse are skipped and counted, the way log-analysis pipelines
// tolerate corrupt entries.
func ParseCLF(r io.Reader) (records []Record, skipped int, err error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	for scanner.Scan() {
		rec, ok := parseCLFLine(scanner.Text())
		if !ok {
			skipped++
			continue
		}
		records = append(records, rec)
	}
	if err := scanner.Err(); err != nil {
		return records, skipped, fmt.Errorf("webserver: reading log: %w", err)
	}
	return records, skipped, nil
}

func parseCLFLine(line string) (Record, bool) {
	var rec Record
	// remote - - [time] "request" status bytes "referer" "ua"
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return rec, false
	}
	rec.RemoteIP = line[:sp]

	lb := strings.IndexByte(line, '[')
	rb := strings.IndexByte(line, ']')
	if lb < 0 || rb < lb {
		return rec, false
	}
	ts, err := time.Parse(clfTime, line[lb+1:rb])
	if err != nil {
		return rec, false
	}
	rec.Time = ts

	rest := line[rb+1:]
	req, rest, ok := quoted(rest)
	if !ok {
		return rec, false
	}
	parts := strings.Fields(req)
	if len(parts) < 2 {
		return rec, false
	}
	rec.Path = parts[1]

	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return rec, false
	}
	status, err1 := strconv.Atoi(fields[0])
	bytes, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil {
		return rec, false
	}
	rec.Status, rec.Bytes = status, bytes

	// Skip the referer, take the user agent.
	if _, rest2, ok := quoted(rest); ok {
		if ua, _, ok := quoted(rest2); ok {
			rec.UserAgent = ua
		}
	}
	return rec, true
}

// quoted extracts the first double-quoted segment of s and returns it
// with the remainder after the closing quote.
func quoted(s string) (content, rest string, ok bool) {
	start := strings.IndexByte(s, '"')
	if start < 0 {
		return "", "", false
	}
	end := strings.IndexByte(s[start+1:], '"')
	if end < 0 {
		return "", "", false
	}
	return s[start+1 : start+1+end], s[start+2+end:], true
}
