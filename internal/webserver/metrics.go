package webserver

import "repro/internal/obs"

// Farm hosting metrics. Per-site hit counts stay on the Site itself
// (Site.Hits) — site cardinality is unbounded in scenarios, so only the
// farm-level aggregates live in the registry.
var (
	mFarmRequests = obs.NewCounter("farm_requests_total",
		"Requests dispatched by farm listeners (matched hosts only).")
	mFarmMemoHits = obs.NewCounter(`farm_dispatch_total{result="memo"}`,
		"Farm host dispatches by path: memo reuses the per-conn site memo, map probes the host table.")
	mFarmMemoMisses = obs.NewCounter(`farm_dispatch_total{result="map"}`,
		"Farm host dispatches by path: memo reuses the per-conn site memo, map probes the host table.")
	mFarmUnmatched = obs.NewCounter("farm_unmatched_total",
		"Requests answered 421 because no site claims the Host header.")
	mFarmActiveConns = obs.NewGauge("farm_active_conns",
		"Open connections across all farm listeners.")
)
