package webserver

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
)

// legacyPerSiteHosting restores the pre-farm hosting behaviour: every
// Farm.StartSite stands up a dedicated listener + http.Server for the
// site, exactly as webserver.Start always did. It exists as a
// compatibility knob so parity tests can prove that shared-listener
// virtual-host dispatch leaves server logs and survey verdicts
// bit-identical; production paths never set it.
var legacyPerSiteHosting atomic.Bool

// SetLegacyPerSiteHosting toggles the compatibility hosting mode for
// farms created after the call: when enabled, NewFarm binds no shared
// listener and each StartSite runs its own per-site server.
func SetLegacyPerSiteHosting(enabled bool) { legacyPerSiteHosting.Store(enabled) }

// LegacyPerSiteHosting reports whether the compatibility hosting mode is
// on.
func LegacyPerSiteHosting() bool { return legacyPerSiteHosting.Load() }

// Farm hosts any number of sites on one netsim network behind a single
// shared listener, dispatching each request to its site by the Host
// header — name-based virtual hosting. Adding a site is a map insert
// plus (when the site advertises its own IP) a virtual-IP alias of the
// farm listener, instead of the listener + accept loop + http.Server a
// per-site webserver.Start costs; at survey scale (thousands of sites
// per network) that server spin-up used to be ~30% of the run.
//
// Sites keep their full measurement contract under a farm: each site has
// its own request log with the per-site global sequence, LogSince
// windows, and deterministic per-connection ordering; every request
// still carries the client's simulated source IP; and robots.txt /
// blocker swaps apply per site. Requests for a Host no site claims are
// answered 421 Misdirected Request.
//
// All methods are safe for concurrent use, including StartSite and
// Remove while requests are in flight.
type Farm struct {
	nw     *netsim.Network
	ip     string
	ln     net.Listener
	srv    *http.Server
	fsrv   *fastServer
	done   chan struct{}
	legacy bool

	// gen invalidates per-connection dispatch memos: it bumps after every
	// hosts-map mutation (StartSite, Remove, Close), so a memo stamped
	// with an older generation re-resolves through the map once.
	gen atomic.Uint64

	mu    sync.RWMutex
	hosts map[string]*Site // lowercased Host (domain or IP) -> site
	// members is the set of live sites, for idempotent removal and Close.
	members map[*Site]bool
	// aliasRefs counts member sites advertising each aliased IP so the
	// alias is released only when its last site is removed.
	aliasRefs map[string]int
	closed    bool

	unmatched atomic.Uint64

	connMu sync.Mutex
	conns  map[net.Conn]*farmConn
}

// farmConnKey carries a connection's shard carrier through the request
// context.
type farmConnKey struct{}

// farmConn tracks one farm connection's per-site log shards. A
// keep-alive connection normally speaks to a single site (transports
// pool per host), but nothing stops a client from switching Host headers
// mid-connection, so shards are kept per (connection, site).
type farmConn struct {
	mu     sync.Mutex
	shards map[*Site]*logShard

	// memo caches the connection's last dispatch result. Connections
	// almost always speak to one Host, so the hot path is one atomic
	// load plus a string compare instead of an RLock'd map probe and a
	// shard-map lookup per request.
	memo atomic.Pointer[siteMemo]
}

// siteMemo is one immutable dispatch result, valid while the farm's
// generation is unchanged.
type siteMemo struct {
	gen   uint64
	key   string
	site  *Site
	shard *logShard
}

// shardFor returns the connection's shard for the site, creating and
// registering it on first use.
func (fc *farmConn) shardFor(s *Site) *logShard {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	sh := fc.shards[s]
	if sh == nil {
		sh = &logShard{}
		fc.shards[s] = sh
		s.addShard(sh)
	}
	return sh
}

// NewFarm binds the farm's shared listener at ip:80 on nw. Every site
// subsequently added with StartSite is served from this one listener;
// sites whose Config.IP differs from the farm address are reachable at
// their own IP via a netsim virtual-IP alias.
//
// When the legacy per-site hosting knob is on, the farm binds no
// listener and StartSite hosts each site on a dedicated server instead —
// same API, pre-farm mechanics — so parity tests can flip one switch and
// compare.
func NewFarm(nw *netsim.Network, ip string) (*Farm, error) {
	f := &Farm{
		nw:        nw,
		ip:        ip,
		hosts:     make(map[string]*Site),
		members:   make(map[*Site]bool),
		aliasRefs: make(map[string]int),
		legacy:    legacyPerSiteHosting.Load(),
	}
	if f.legacy {
		return f, nil
	}
	ln, err := nw.Listen(ip, 80)
	if err != nil {
		return nil, fmt.Errorf("webserver: farm listener: %w", err)
	}
	f.ln = ln
	f.conns = make(map[net.Conn]*farmConn)
	if !netsim.LegacyNetHTTP() {
		f.fsrv = startFastServer(ln, fastHooks{
			connOpen: func(c net.Conn) any {
				fc := &farmConn{shards: make(map[*Site]*logShard)}
				f.connMu.Lock()
				f.conns[c] = fc
				f.connMu.Unlock()
				mFarmActiveConns.Add(1)
				return fc
			},
			connClose: func(c net.Conn, _ any) { f.retireConn(c) },
			serve: func(carrier any, w *fastResponseWriter, r *http.Request) {
				f.handleReq(carrier.(*farmConn), w, r)
			},
		})
		return f, nil
	}
	f.done = make(chan struct{})
	f.srv = &http.Server{
		Handler: http.HandlerFunc(f.dispatch),
		ConnContext: func(ctx context.Context, c net.Conn) context.Context {
			fc := &farmConn{shards: make(map[*Site]*logShard)}
			f.connMu.Lock()
			f.conns[c] = fc
			f.connMu.Unlock()
			mFarmActiveConns.Add(1)
			return context.WithValue(ctx, farmConnKey{}, fc)
		},
		ConnState: func(c net.Conn, st http.ConnState) {
			if st == http.StateClosed || st == http.StateHijacked {
				f.retireConn(c)
			}
		},
	}
	go func() {
		defer close(f.done)
		f.srv.Serve(ln)
	}()
	return f, nil
}

// IP returns the farm listener's address.
func (f *Farm) IP() string { return f.ip }

// Unmatched returns the number of requests that named a Host no site
// claims (answered 421).
func (f *Farm) Unmatched() uint64 { return f.unmatched.Load() }

// Len returns the number of sites currently hosted.
func (f *Farm) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.members)
}

// StartSite adds a site to the farm and returns it, registering
// cfg.Domain in the network's name service and aliasing cfg.IP to the
// farm listener when it differs from the farm address. Duplicate host
// registration is an error — a second site may not silently shadow the
// first — as is an invalid Config.
func (f *Farm) StartSite(cfg Config) (*Site, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if f.legacy {
		return f.startSiteLegacy(cfg)
	}
	domainKey := strings.ToLower(cfg.Domain)
	s := newSite(cfg)
	s.farm = f

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("webserver: farm is closed")
	}
	if prev := f.hosts[domainKey]; prev != nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("webserver: host %q already registered on this farm", cfg.Domain)
	}
	if cfg.IP != f.ip {
		if f.aliasRefs[cfg.IP] == 0 {
			if err := f.nw.AddAlias(cfg.IP, 80, f.ln); err != nil {
				f.mu.Unlock()
				return nil, fmt.Errorf("webserver: site IP %s: %w", cfg.IP, err)
			}
		}
		f.aliasRefs[cfg.IP]++
	}
	f.hosts[domainKey] = s
	// Also answer requests that address the site by literal IP, unless
	// another site already claims that IP (sites may share one).
	if f.hosts[cfg.IP] == nil {
		f.hosts[cfg.IP] = s
	}
	f.members[s] = true
	f.mu.Unlock()
	f.gen.Add(1)

	f.nw.Register(cfg.Domain, cfg.IP)
	return s, nil
}

// startSiteLegacy hosts the site on its own server (compat knob path),
// keeping the farm's duplicate-host contract and membership tracking so
// Close tears the site down either way.
func (f *Farm) startSiteLegacy(cfg Config) (*Site, error) {
	domainKey := strings.ToLower(cfg.Domain)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("webserver: farm is closed")
	}
	if prev := f.hosts[domainKey]; prev != nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("webserver: host %q already registered on this farm", cfg.Domain)
	}
	f.mu.Unlock()

	s, err := Start(f.nw, cfg)
	if err != nil {
		return nil, err
	}
	s.farm = f
	f.mu.Lock()
	// Re-check under the lock: a concurrent StartSite for the same host
	// may have won the race since the pre-flight check, and it must not
	// be silently shadowed.
	if f.closed || f.hosts[domainKey] != nil {
		closed := f.closed
		f.mu.Unlock()
		s.shutdownServer()
		if closed {
			return nil, fmt.Errorf("webserver: farm is closed")
		}
		return nil, fmt.Errorf("webserver: host %q already registered on this farm", cfg.Domain)
	}
	f.hosts[domainKey] = s
	f.members[s] = true
	f.mu.Unlock()
	f.gen.Add(1)
	return s, nil
}

// Remove takes a site out of the farm: its Host stops resolving (421),
// its IP alias is released once no other site advertises it, and — in
// legacy mode — its dedicated server shuts down. The site's log remains
// readable. Removing a site twice, or one the farm does not host, is a
// no-op. Site.Close on a farm-hosted site delegates here.
func (f *Farm) Remove(s *Site) error {
	f.mu.Lock()
	if !f.members[s] {
		f.mu.Unlock()
		return nil
	}
	delete(f.members, s)
	domainKey := strings.ToLower(s.cfg.Domain)
	if f.hosts[domainKey] == s {
		delete(f.hosts, domainKey)
	}
	if f.hosts[s.cfg.IP] == s {
		delete(f.hosts, s.cfg.IP)
		// Hand literal-IP dispatch to a surviving site advertising the
		// same address, so sharing an IP with a removed neighbour does
		// not silence it for dial-by-IP clients.
		for other := range f.members {
			if other.cfg.IP == s.cfg.IP {
				f.hosts[s.cfg.IP] = other
				break
			}
		}
	}
	if !f.legacy && s.cfg.IP != f.ip {
		f.aliasRefs[s.cfg.IP]--
		if f.aliasRefs[s.cfg.IP] <= 0 {
			delete(f.aliasRefs, s.cfg.IP)
			f.nw.RemoveAlias(s.cfg.IP, 80)
		}
	}
	f.mu.Unlock()
	f.gen.Add(1)

	if s.srv != nil || s.fsrv != nil {
		return s.shutdownServer()
	}
	// Close the connections that served the removed site, exactly as
	// closing a dedicated per-site server would: their goroutines and
	// ring buffers are released instead of idling until farm Close — at
	// scenario scale, thousands of retired sites' worth. A client with a
	// pooled idle connection transparently redials; an in-flight request
	// observes a reset, the same outcome the legacy path produced.
	f.connMu.Lock()
	var stale []net.Conn
	for c, fc := range f.conns {
		fc.mu.Lock()
		if _, ok := fc.shards[s]; ok {
			stale = append(stale, c)
		}
		fc.mu.Unlock()
	}
	f.connMu.Unlock()
	for _, c := range stale {
		c.Close()
	}
	return nil
}

// Close shuts the farm down: the shared listener and server stop (in
// legacy mode, every remaining per-site server stops) and all sites are
// removed. Site logs remain readable.
func (f *Farm) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	remaining := make([]*Site, 0, len(f.members))
	for s := range f.members {
		remaining = append(remaining, s)
	}
	f.members = make(map[*Site]bool)
	f.hosts = make(map[string]*Site)
	f.aliasRefs = make(map[string]int)
	f.mu.Unlock()
	f.gen.Add(1)

	var err error
	for _, s := range remaining {
		if cerr := s.shutdownServer(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if f.fsrv != nil {
		if cerr := f.fsrv.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if f.srv != nil {
		if cerr := f.srv.Close(); cerr != nil && err == nil {
			err = cerr
		}
		<-f.done
	}
	return err
}

// dispatch routes one request to the site owning its Host header
// (stdlib-server entry point; the fast server calls handleReq directly
// with its per-connection carrier).
func (f *Farm) dispatch(w http.ResponseWriter, r *http.Request) {
	fc, _ := r.Context().Value(farmConnKey{}).(*farmConn)
	f.handleReq(fc, w, r)
}

// handleReq resolves the request's Host to a site and serves it. The
// per-connection memo short-circuits the host-map RLock and the shard
// lookup for the dominant one-conn-one-site case; any hosts-map
// mutation bumps f.gen, which invalidates every memo at once.
func (f *Farm) handleReq(fc *farmConn, w http.ResponseWriter, r *http.Request) {
	key := hostKey(r.Host)
	gen := f.gen.Load()
	if fc != nil {
		if m := fc.memo.Load(); m != nil && m.gen == gen && m.key == key {
			mFarmRequests.Inc()
			mFarmMemoHits.Inc()
			m.site.serve(w, r, m.shard)
			return
		}
	}
	mFarmMemoMisses.Inc()
	f.mu.RLock()
	s := f.hosts[key]
	f.mu.RUnlock()
	if s == nil {
		f.unmatched.Add(1)
		mFarmUnmatched.Inc()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusMisdirectedRequest)
		io.WriteString(w, "421 misdirected request: no site for host\n")
		return
	}
	mFarmRequests.Inc()
	sh := s.fallback
	if fc != nil {
		sh = fc.shardFor(s)
		fc.memo.Store(&siteMemo{gen: gen, key: key, site: s, shard: sh})
	}
	s.serve(w, r, sh)
}

// retireConn retires every per-site shard the closed connection
// accumulated.
func (f *Farm) retireConn(c net.Conn) {
	f.connMu.Lock()
	fc, ok := f.conns[c]
	if ok {
		delete(f.conns, c)
	}
	f.connMu.Unlock()
	if !ok {
		return
	}
	mFarmActiveConns.Add(-1)
	fc.mu.Lock()
	shards := fc.shards
	fc.shards = nil
	fc.mu.Unlock()
	for s, sh := range shards {
		s.retire(sh)
	}
}

// hostKey normalizes a Host header for dispatch: the optional port is
// dropped and the name lowercased. The fast path — a lowercase host with
// no port, which is what every client in this codebase sends — does not
// allocate.
func hostKey(h string) string {
	if host, _, err := net.SplitHostPort(h); err == nil {
		h = host
	}
	for i := 0; i < len(h); i++ {
		if c := h[i]; c >= 'A' && c <= 'Z' {
			return strings.ToLower(h)
		}
	}
	return h
}
