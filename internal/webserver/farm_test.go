package webserver

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/netsim"
)

func newFarm(t *testing.T, nw *netsim.Network, ip string) *Farm {
	t.Helper()
	f, err := NewFarm(nw, ip)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestFarmDispatchesByHost hosts several sites behind one listener and
// checks that each request reaches its own site — content, robots.txt,
// blocker, and the per-site log with correct source-IP attribution.
func TestFarmDispatchesByHost(t *testing.T) {
	nw := netsim.New()
	farm := newFarm(t, nw, "203.0.113.250")

	a, err := farm.StartSite(WildcardDisallowSite("farm-a.test", "203.0.113.61"))
	if err != nil {
		t.Fatal(err)
	}
	bCfg := Config{Domain: "farm-b.test", IP: "203.0.113.62", Pages: ContentPages("farm-b.test")}
	bCfg.Blocker = BlockerFunc(func(r *http.Request) *BlockDecision {
		if strings.Contains(r.UserAgent(), "Bytespider") {
			return &BlockDecision{Status: 403, Body: "<html>blocked</html>"}
		}
		return nil
	})
	b, err := farm.StartSite(bCfg)
	if err != nil {
		t.Fatal(err)
	}

	client := nw.HTTPClient("198.51.100.90")
	resp, body := get(t, client, a.URL()+"/robots.txt", "GPTBot/1.0")
	if resp.StatusCode != 200 || !strings.Contains(body, "User-agent: *") {
		t.Fatalf("site a robots = %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, client, b.URL()+"/robots.txt", "GPTBot/1.0")
	if resp.StatusCode != 404 {
		t.Fatalf("site b must have no robots.txt, got %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, client, b.URL()+"/", "GPTBot/1.0")
	if resp.StatusCode != 200 || !strings.Contains(body, "farm-b.test") {
		t.Fatalf("site b index = %d %q", resp.StatusCode, body)
	}
	resp, _ = get(t, client, b.URL()+"/", "Bytespider/1.0")
	if resp.StatusCode != 403 {
		t.Fatalf("site b blocker = %d, want 403", resp.StatusCode)
	}

	aLog, bLog := a.Log(), b.Log()
	if len(aLog) != 1 || aLog[0].Path != "/robots.txt" {
		t.Fatalf("site a log = %+v", aLog)
	}
	if len(bLog) != 3 {
		t.Fatalf("site b log = %d records, want 3", len(bLog))
	}
	for _, rec := range append(aLog, bLog...) {
		if rec.RemoteIP != "198.51.100.90" {
			t.Fatalf("record attributes source %q, want the client IP", rec.RemoteIP)
		}
	}
	if farm.Len() != 2 {
		t.Fatalf("farm.Len() = %d, want 2", farm.Len())
	}
}

// TestFarmServesAliasedSiteIPs dials sites by their advertised literal
// IPs: the farm listener answers through netsim aliases, without
// per-site listeners.
func TestFarmServesAliasedSiteIPs(t *testing.T) {
	nw := netsim.New()
	farm := newFarm(t, nw, "203.0.113.250")
	if _, err := farm.StartSite(WildcardDisallowSite("alias-a.test", "203.0.113.71")); err != nil {
		t.Fatal(err)
	}
	client := nw.HTTPClient("198.51.100.91")
	resp, body := get(t, client, "http://203.0.113.71/robots.txt", "GPTBot/1.0")
	if resp.StatusCode != 200 || !strings.Contains(body, "Disallow: /") {
		t.Fatalf("dial by site IP = %d %q", resp.StatusCode, body)
	}
}

// TestFarmUnknownHost pins the misdirected-request contract: a Host no
// site claims gets 421 and increments the farm's unmatched counter.
func TestFarmUnknownHost(t *testing.T) {
	nw := netsim.New()
	farm := newFarm(t, nw, "203.0.113.250")
	if _, err := farm.StartSite(WildcardDisallowSite("known.test", "203.0.113.72")); err != nil {
		t.Fatal(err)
	}
	nw.Register("ghost.test", "203.0.113.250") // resolves to the farm, but no site claims it
	client := nw.HTTPClient("198.51.100.92")
	resp, body := get(t, client, "http://ghost.test/", "GPTBot/1.0")
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("unknown host = %d %q, want 421", resp.StatusCode, body)
	}
	if farm.Unmatched() != 1 {
		t.Fatalf("Unmatched = %d, want 1", farm.Unmatched())
	}
}

// TestFarmValidationAndDuplicates covers the Config validation satellite:
// empty host/IP and duplicate host registration fail with clear errors
// instead of silently shadowing the earlier site.
func TestFarmValidationAndDuplicates(t *testing.T) {
	nw := netsim.New()
	farm := newFarm(t, nw, "203.0.113.250")
	if _, err := farm.StartSite(Config{IP: "203.0.113.73"}); err == nil {
		t.Fatal("empty host must fail")
	}
	if _, err := farm.StartSite(Config{Domain: "v.test"}); err == nil {
		t.Fatal("empty IP must fail")
	}
	if _, err := farm.StartSite(Config{Domain: "v.test", IP: "not-an-ip"}); err == nil {
		t.Fatal("bad IP must fail")
	}
	first, err := farm.StartSite(WildcardDisallowSite("dup.test", "203.0.113.74"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := farm.StartSite(WildcardDisallowSite("DUP.test", "203.0.113.75")); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate host err = %v, want already-registered error", err)
	}
	// The original site still serves.
	client := nw.HTTPClient("198.51.100.93")
	if resp, _ := get(t, client, first.URL()+"/robots.txt", "x"); resp.StatusCode != 200 {
		t.Fatalf("original site broken after duplicate rejection: %d", resp.StatusCode)
	}
}

// TestFarmRemoveMidRun exercises the scenario-engine lifecycle: sites
// leave and join while the farm keeps serving, a removed site's alias IP
// and connections are released (dials are refused, exactly as if its
// dedicated server closed), its log stays readable, and the host becomes
// registerable again. A removed site that shared the farm IP instead
// answers 421 — the listener survives, the Host mapping is gone.
func TestFarmRemoveMidRun(t *testing.T) {
	nw := netsim.New()
	farm := newFarm(t, nw, "203.0.113.250")
	s1, err := farm.StartSite(WildcardDisallowSite("cycle.test", "203.0.113.76"))
	if err != nil {
		t.Fatal(err)
	}
	client := nw.HTTPClient("198.51.100.94")
	if resp, _ := get(t, client, s1.URL()+"/robots.txt", "x"); resp.StatusCode != 200 {
		t.Fatalf("pre-remove fetch = %d", resp.StatusCode)
	}
	if err := s1.Close(); err != nil { // Site.Close delegates to farm.Remove
		t.Fatal(err)
	}
	if _, err := client.Get(s1.URL() + "/robots.txt"); err == nil {
		t.Fatal("fetch after removal must fail: alias and connections are released")
	}
	if got := len(s1.Log()); got != 1 {
		t.Fatalf("removed site's log = %d records, want 1 (still readable)", got)
	}
	// A site sharing the farm's own IP keeps the listener; removal turns
	// its Host into a 421.
	sh, err := farm.StartSite(Config{Domain: "shared-rm.test", IP: "203.0.113.250",
		Pages: map[string]Page{"/": {Body: "<html>x</html>"}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(t, client, sh.URL()+"/", "x"); resp.StatusCode != 200 {
		t.Fatalf("shared-IP pre-remove = %d", resp.StatusCode)
	}
	sh.Close()
	if resp, _ := get(t, client, sh.URL()+"/", "x"); resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("shared-IP post-remove = %d, want 421", resp.StatusCode)
	}
	if err := farm.Remove(s1); err != nil {
		t.Fatal("double remove must be a no-op")
	}
	// The host and IP are free again.
	s2, err := farm.StartSite(Config{Domain: "cycle.test", IP: "203.0.113.76",
		Pages: map[string]Page{"/": {Body: "<html>fresh</html>"}}})
	if err != nil {
		t.Fatalf("re-register removed host: %v", err)
	}
	if resp, body := get(t, client, s2.URL()+"/", "x"); resp.StatusCode != 200 || !strings.Contains(body, "fresh") {
		t.Fatalf("re-registered site = %d %q", resp.StatusCode, body)
	}
	if got := len(s2.Log()); got != 1 {
		t.Fatalf("fresh site inherited a log? %d records, want 1", got)
	}
}

// TestFarmPerSiteLogOrderDeterministic pins the log contract under the
// shared listener: sequential requests from one client land in each
// site's log in issue order, and a replay produces a record-for-record
// identical pair of logs — the determinism the measurement windows and
// scenario flushes rely on, now with two sites interleaving on one
// accept loop.
func TestFarmPerSiteLogOrderDeterministic(t *testing.T) {
	paths := []string{"/robots.txt", "/", "/about.html", "/gallery.html", "/missing"}
	capture := func() ([]Record, []Record) {
		nw := netsim.New()
		farm := newFarm(t, nw, "203.0.113.250")
		a, err := farm.StartSite(WildcardDisallowSite("det-a.test", "203.0.113.77"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := farm.StartSite(WildcardDisallowSite("det-b.test", "203.0.113.78"))
		if err != nil {
			t.Fatal(err)
		}
		client := nw.HTTPClient("198.51.100.95")
		for _, p := range paths { // alternate sites per request
			get(t, client, a.URL()+p, "GPTBot/1.0")
			get(t, client, b.URL()+p, "GPTBot/1.0")
		}
		return a.Log(), b.Log()
	}
	a1, b1 := capture()
	a2, b2 := capture()
	for _, logs := range [][2][]Record{{a1, a2}, {b1, b2}} {
		first, second := logs[0], logs[1]
		if len(first) != len(paths) || len(second) != len(paths) {
			t.Fatalf("log lengths = %d, %d, want %d", len(first), len(second), len(paths))
		}
		for i := range first {
			if first[i].Path != paths[i] {
				t.Fatalf("record %d = %s, want %s (issue order)", i, first[i].Path, paths[i])
			}
			f, s := first[i], second[i]
			f.Time = s.Time // wall-clock is not part of the contract
			if f != s {
				t.Fatalf("replay diverged at %d: %+v vs %+v", i, first[i], second[i])
			}
		}
	}
}

// TestFarmConcurrentRegisterRemoveVsRequests races churn (sites joining
// and leaving) against in-flight requests to a stable site, under -race.
// The stable site must answer every request and log exactly one record
// per request; churn-site requests may observe 200 or 421, or a
// transport error when they race a removal (Remove closes the removed
// site's connections, like closing a dedicated server would).
func TestFarmConcurrentRegisterRemoveVsRequests(t *testing.T) {
	nw := netsim.New()
	farm := newFarm(t, nw, "203.0.113.250")
	stable, err := farm.StartSite(WildcardDisallowSite("stable.test", "203.0.113.79"))
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 40
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds+rounds)

	// Churner: register and remove a revolving set of sites.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			cfg := Config{
				Domain: fmt.Sprintf("churn-%d.test", i%8),
				IP:     fmt.Sprintf("203.0.113.%d", 100+i%8),
				Pages:  map[string]Page{"/": {Body: "<html>churn</html>"}},
			}
			s, err := farm.StartSite(cfg)
			if err != nil {
				errs <- fmt.Errorf("churn register: %w", err)
				return
			}
			if err := farm.Remove(s); err != nil {
				errs <- fmt.Errorf("churn remove: %w", err)
				return
			}
		}
	}()
	// Clients: hammer the stable site, and poke churn hosts.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := nw.HTTPClient(fmt.Sprintf("198.51.100.%d", 110+c))
			for i := 0; i < rounds; i++ {
				resp, err := client.Get(stable.URL() + "/robots.txt")
				if err != nil {
					errs <- fmt.Errorf("stable fetch: %w", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("stable fetch status %d", resp.StatusCode)
					return
				}
				if c == 0 {
					req, _ := http.NewRequest(http.MethodGet, "http://203.0.113.250/", nil)
					req.Host = fmt.Sprintf("churn-%d.test", i%8)
					resp, err := client.Do(req)
					if err != nil {
						continue // raced a removal's connection close
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 && resp.StatusCode != http.StatusMisdirectedRequest {
						errs <- fmt.Errorf("churn fetch status %d", resp.StatusCode)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(stable.Log()); got != clients*rounds {
		t.Fatalf("stable site logged %d records, want %d", got, clients*rounds)
	}
}

// TestFarmLegacyKnob flips the compatibility knob and checks the same
// farm code path hosts each site on a dedicated server with identical
// observable behaviour — the baseline the parity suites diff against.
func TestFarmLegacyKnob(t *testing.T) {
	SetLegacyPerSiteHosting(true)
	defer SetLegacyPerSiteHosting(false)
	nw := netsim.New()
	farm := newFarm(t, nw, "203.0.113.250")
	a, err := farm.StartSite(WildcardDisallowSite("legacy-a.test", "203.0.113.81"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := farm.StartSite(WildcardDisallowSite("legacy-a.test", "203.0.113.82")); err == nil {
		t.Fatal("duplicate host must fail in legacy mode too")
	}
	client := nw.HTTPClient("198.51.100.96")
	resp, body := get(t, client, a.URL()+"/robots.txt", "GPTBot/1.0")
	if resp.StatusCode != 200 || !strings.Contains(body, "User-agent: *") {
		t.Fatalf("legacy-hosted robots = %d %q", resp.StatusCode, body)
	}
	if len(a.Log()) != 1 {
		t.Fatalf("legacy-hosted log = %d records", len(a.Log()))
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// The dedicated listener is gone: dials are refused.
	if _, err := client.Get(a.URL() + "/robots.txt"); err == nil {
		t.Fatal("fetch after legacy-mode removal must fail (listener closed)")
	}
}

// TestFarmCloseStopsServing pins Close semantics: idempotent, sites
// unregistered, further StartSite calls fail.
func TestFarmCloseStopsServing(t *testing.T) {
	nw := netsim.New()
	farm, err := NewFarm(nw, "203.0.113.250")
	if err != nil {
		t.Fatal(err)
	}
	site, err := farm.StartSite(WildcardDisallowSite("bye.test", "203.0.113.83"))
	if err != nil {
		t.Fatal(err)
	}
	client := nw.HTTPClient("198.51.100.97")
	get(t, client, site.URL()+"/robots.txt", "x")
	if err := farm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := farm.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if _, err := farm.StartSite(WildcardDisallowSite("late.test", "203.0.113.84")); err == nil {
		t.Fatal("StartSite after Close must fail")
	}
	if len(site.Log()) != 1 {
		t.Fatalf("log after close = %d records, want 1", len(site.Log()))
	}
}

// TestFarmSharedSiteIP hosts two domains on one advertised IP — the
// scenario-engine layout where every site shares the farm address.
func TestFarmSharedSiteIP(t *testing.T) {
	nw := netsim.New()
	farm := newFarm(t, nw, "203.0.113.250")
	a, err := farm.StartSite(Config{Domain: "shared-a.test", IP: "203.0.113.250",
		Pages: map[string]Page{"/": {Body: "<html>A</html>"}}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := farm.StartSite(Config{Domain: "shared-b.test", IP: "203.0.113.250",
		Pages: map[string]Page{"/": {Body: "<html>B</html>"}}})
	if err != nil {
		t.Fatal(err)
	}
	client := nw.HTTPClient("198.51.100.98")
	if _, body := get(t, client, a.URL()+"/", "x"); !strings.Contains(body, ">A<") {
		t.Fatalf("site a body = %q", body)
	}
	if _, body := get(t, client, b.URL()+"/", "x"); !strings.Contains(body, ">B<") {
		t.Fatalf("site b body = %q", body)
	}
	// Literal-IP dispatch lands on one of the sharers.
	if resp, _ := get(t, client, "http://203.0.113.250/", "x"); resp.StatusCode != 200 {
		t.Fatalf("dial-by-IP on shared address = %d", resp.StatusCode)
	}
	a.Close()
	if resp, body := get(t, client, b.URL()+"/", "x"); resp.StatusCode != 200 || !strings.Contains(body, ">B<") {
		t.Fatalf("site b after removing a = %d %q", resp.StatusCode, body)
	}
	// Removing one sharer hands literal-IP dispatch to the survivor.
	if resp, body := get(t, client, "http://203.0.113.250/", "x"); resp.StatusCode != 200 || !strings.Contains(body, ">B<") {
		t.Fatalf("dial-by-IP after removing sharer = %d %q", resp.StatusCode, body)
	}
}
