package webserver

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/netsim"
)

func get(t *testing.T, client *http.Client, url, ua string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ua != "" {
		req.Header.Set("User-Agent", ua)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func TestSiteServesContentAndLogs(t *testing.T) {
	nw := netsim.New()
	site, err := Start(nw, WildcardDisallowSite("art.test", "203.0.113.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()

	client := nw.HTTPClient("198.51.100.9")
	resp, body := get(t, client, site.URL()+"/robots.txt", "GPTBot/1.0")
	if resp.StatusCode != 200 {
		t.Fatalf("robots.txt status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "User-agent: *") {
		t.Fatalf("robots body = %q", body)
	}
	resp, body = get(t, client, site.URL()+"/", "GPTBot/1.0")
	if resp.StatusCode != 200 || !strings.Contains(body, "Welcome") {
		t.Fatalf("index fetch: %d %q", resp.StatusCode, body[:40])
	}
	resp, _ = get(t, client, site.URL()+"/missing", "GPTBot/1.0")
	if resp.StatusCode != 404 {
		t.Fatalf("missing page status = %d", resp.StatusCode)
	}

	log := site.Log()
	if len(log) != 3 {
		t.Fatalf("log entries = %d, want 3", len(log))
	}
	for _, rec := range log {
		if rec.RemoteIP != "198.51.100.9" {
			t.Errorf("logged remote IP = %q", rec.RemoteIP)
		}
		if !strings.Contains(rec.UserAgent, "GPTBot") {
			t.Errorf("logged UA = %q", rec.UserAgent)
		}
	}
	if log[0].Path != "/robots.txt" || log[0].Status != 200 {
		t.Errorf("first record = %+v", log[0])
	}
	if log[2].Status != 404 {
		t.Errorf("third record status = %d", log[2].Status)
	}
}

func TestNoRobotsSite(t *testing.T) {
	nw := netsim.New()
	cfg := Config{Domain: "bare.test", IP: "203.0.113.2", Pages: ContentPages("bare.test")}
	site, err := Start(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	client := nw.HTTPClient("198.51.100.10")
	resp, _ := get(t, client, site.URL()+"/robots.txt", "CCBot/2.0")
	if resp.StatusCode != 404 {
		t.Fatalf("robots on bare site = %d, want 404", resp.StatusCode)
	}
}

func TestSetRobotsAtRuntime(t *testing.T) {
	nw := netsim.New()
	site, err := Start(nw, Config{Domain: "dyn.test", IP: "203.0.113.3",
		Pages: ContentPages("dyn.test")})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	client := nw.HTTPClient("198.51.100.11")
	resp, _ := get(t, client, site.URL()+"/robots.txt", "x")
	if resp.StatusCode != 404 {
		t.Fatal("expected no robots initially")
	}
	robots := "User-agent: GPTBot\nDisallow: /\n"
	site.SetRobots(&robots)
	resp, body := get(t, client, site.URL()+"/robots.txt", "x")
	if resp.StatusCode != 200 || !strings.Contains(body, "GPTBot") {
		t.Fatalf("updated robots: %d %q", resp.StatusCode, body)
	}
}

func TestBlockerScreensRequests(t *testing.T) {
	nw := netsim.New()
	cfg := WildcardDisallowSite("blocked.test", "203.0.113.4")
	cfg.Blocker = BlockerFunc(func(r *http.Request) *BlockDecision {
		if strings.Contains(strings.ToLower(r.UserAgent()), "claudebot") {
			return &BlockDecision{Status: 403, Body: "<html>blocked</html>"}
		}
		return nil
	})
	site, err := Start(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	client := nw.HTTPClient("198.51.100.12")

	resp, body := get(t, client, site.URL()+"/", "ClaudeBot/1.0")
	if resp.StatusCode != 403 || !strings.Contains(body, "blocked") {
		t.Fatalf("blocked fetch: %d %q", resp.StatusCode, body)
	}
	// The blocker screens robots.txt too, like real reverse proxies.
	resp, _ = get(t, client, site.URL()+"/robots.txt", "ClaudeBot/1.0")
	if resp.StatusCode != 403 {
		t.Fatalf("robots for blocked UA = %d, want 403", resp.StatusCode)
	}
	// Other agents pass.
	resp, _ = get(t, client, site.URL()+"/", "GPTBot/1.0")
	if resp.StatusCode != 200 {
		t.Fatalf("unblocked fetch = %d", resp.StatusCode)
	}
}

func TestRequestsMatchingAndObservedAgents(t *testing.T) {
	nw := netsim.New()
	site, err := Start(nw, WildcardDisallowSite("obs.test", "203.0.113.5"))
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	for i, ua := range []string{"GPTBot/1.0", "ClaudeBot/1.0", "GPTBot/1.0"} {
		ip := "198.51.100." + string(rune('1'+i))
		client := nw.HTTPClient(ip)
		get(t, client, site.URL()+"/", ua)
	}
	if got := len(site.RequestsMatching("gptbot")); got != 2 {
		t.Fatalf("GPTBot requests = %d, want 2", got)
	}
	agents := site.ObservedAgents()
	if len(agents) != 2 {
		t.Fatalf("observed agents = %v", agents)
	}
}

func TestPerAgentDisallowSiteRobots(t *testing.T) {
	cfg := PerAgentDisallowSite("x.test", "203.0.113.6", []string{"GPTBot", "CCBot"})
	if !strings.Contains(*cfg.RobotsTxt, "User-agent: GPTBot\nDisallow: /") {
		t.Fatalf("per-agent robots missing GPTBot: %q", *cfg.RobotsTxt)
	}
	if strings.Contains(*cfg.RobotsTxt, "User-agent: *") {
		t.Fatal("per-agent site must not use the wildcard")
	}
}

func TestStartValidation(t *testing.T) {
	nw := netsim.New()
	if _, err := Start(nw, Config{IP: "1.2.3.4"}); err == nil {
		t.Fatal("missing domain must fail")
	}
	if _, err := Start(nw, Config{Domain: "x.test"}); err == nil {
		t.Fatal("missing IP must fail")
	}
	if _, err := Start(nw, Config{Domain: "x.test", IP: "bogus"}); err == nil {
		t.Fatal("bad IP must fail")
	}
}

func TestContentPagesInterlinked(t *testing.T) {
	pages := ContentPages("linked.test")
	if _, ok := pages["/"]; !ok {
		t.Fatal("no index page")
	}
	if !strings.Contains(pages["/"].Body, "/gallery.html") {
		t.Fatal("index must link to the gallery")
	}
	if pages["/images/art1.png"].ContentType != "image/png" {
		t.Fatal("image content type wrong")
	}
}

// TestLogOrderingDeterministicPerConnection pins the log contract the
// scenario engine's monthly windowing relies on: requests issued
// sequentially by one client append in issue order, and replaying the
// same sequence on a fresh site yields an identical log (paths, status,
// bytes).
func TestLogOrderingDeterministicPerConnection(t *testing.T) {
	paths := []string{"/robots.txt", "/", "/about.html", "/gallery.html", "/missing", "/robots.txt"}
	capture := func() []Record {
		nw := netsim.New()
		site, err := Start(nw, WildcardDisallowSite("order.test", "203.0.113.7"))
		if err != nil {
			t.Fatal(err)
		}
		defer site.Close()
		client := nw.HTTPClient("198.51.100.40")
		for _, p := range paths {
			get(t, client, site.URL()+p, "GPTBot/1.0")
		}
		if site.LogLen() != len(site.Log()) {
			t.Fatalf("LogLen = %d, len(Log) = %d; must agree when quiescent",
				site.LogLen(), len(site.Log()))
		}
		return site.Log()
	}
	first := capture()
	if len(first) != len(paths) {
		t.Fatalf("logged %d records, want %d", len(first), len(paths))
	}
	for i, rec := range first {
		if rec.Path != paths[i] {
			t.Fatalf("record %d = %s, want %s (sequential requests must log in order)",
				i, rec.Path, paths[i])
		}
	}
	second := capture()
	for i := range first {
		a, b := first[i], second[i]
		if a.Path != b.Path || a.Status != b.Status || a.Bytes != b.Bytes ||
			a.RemoteIP != b.RemoteIP || a.UserAgent != b.UserAgent {
			t.Fatalf("replay diverged at record %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestLogSurvivesConnectionChurn forces a fresh connection per request
// (the legacy transport) so every request's shard is retired when its
// connection closes, and asserts the merged log still holds every record
// in issue order — retirement must move records, never drop or reorder
// them.
func TestLogSurvivesConnectionChurn(t *testing.T) {
	netsim.SetLegacyPerRequestDial(true)
	defer netsim.SetLegacyPerRequestDial(false)
	nw := netsim.New()
	site, err := Start(nw, WildcardDisallowSite("churn.test", "203.0.113.9"))
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	client := nw.HTTPClient("198.51.100.45")
	var want []string
	paths := []string{"/robots.txt", "/", "/about.html", "/gallery.html"}
	for round := 0; round < 5; round++ {
		for _, p := range paths {
			get(t, client, site.URL()+p, "GPTBot/1.0")
			want = append(want, p)
		}
	}
	log := site.Log()
	if len(log) != len(want) {
		t.Fatalf("logged %d records, want %d", len(log), len(want))
	}
	for i, rec := range log {
		if rec.Path != want[i] {
			t.Fatalf("record %d = %s, want %s (retired shards must preserve order)",
				i, rec.Path, want[i])
		}
	}
}

// TestLogOrderingConcurrentClientsPreserved checks that under concurrent
// clients each connection's own requests still appear in issue order,
// even though the interleaving across clients is unspecified.
func TestLogOrderingConcurrentClientsPreserved(t *testing.T) {
	nw := netsim.New()
	site, err := Start(nw, WildcardDisallowSite("interleave.test", "203.0.113.8"))
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	paths := []string{"/robots.txt", "/", "/about.html", "/gallery.html"}
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ip := fmt.Sprintf("198.51.100.%d", 50+c)
			client := nw.HTTPClient(ip)
			for _, p := range paths {
				req, err := http.NewRequest(http.MethodGet, site.URL()+p, nil)
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("User-Agent", fmt.Sprintf("TestBot-%d/1.0", c))
				resp, err := client.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	log := site.Log()
	if len(log) != clients*len(paths) {
		t.Fatalf("logged %d records, want %d", len(log), clients*len(paths))
	}
	perClient := map[string][]string{}
	for _, rec := range log {
		perClient[rec.RemoteIP] = append(perClient[rec.RemoteIP], rec.Path)
	}
	if len(perClient) != clients {
		t.Fatalf("saw %d client IPs, want %d", len(perClient), clients)
	}
	for ip, got := range perClient {
		for i := range paths {
			if got[i] != paths[i] {
				t.Fatalf("client %s order %v, want %v", ip, got, paths)
			}
		}
	}
}

// newTestNetwork is shared by the CLF tests.
func newTestNetwork(t *testing.T) *netsim.Network {
	t.Helper()
	return netsim.New()
}

// TestLogSinceIncrementalWindows checks the O(window) view against the
// full merged log: every (mark, now) window must equal the same slice
// of Log(), including across connection churn that retires shards into
// the sorted fallback.
func TestLogSinceIncrementalWindows(t *testing.T) {
	netsim.SetLegacyPerRequestDial(true)
	defer netsim.SetLegacyPerRequestDial(false)
	nw := netsim.New()
	site, err := Start(nw, WildcardDisallowSite("since.test", "203.0.113.12"))
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	client := nw.HTTPClient("198.51.100.70")

	paths := []string{"/robots.txt", "/", "/about.html", "/gallery.html"}
	mark := site.LogLen()
	if mark != 0 {
		t.Fatalf("fresh site LogLen = %d", mark)
	}
	var allWindows []Record
	for round := 0; round < 6; round++ {
		for i := 0; i <= round%len(paths); i++ {
			get(t, client, site.URL()+paths[i], "GPTBot/1.0")
		}
		next := site.LogLen()
		window := site.LogSince(mark)
		if len(window) != next-mark {
			t.Fatalf("round %d: window has %d records, want %d", round, len(window), next-mark)
		}
		allWindows = append(allWindows, window...)
		mark = next
	}
	full := site.Log()
	if len(full) != len(allWindows) {
		t.Fatalf("windows cover %d records, full log has %d", len(allWindows), len(full))
	}
	for i := range full {
		if full[i] != allWindows[i] {
			t.Fatalf("record %d: window view %+v != log view %+v", i, allWindows[i], full[i])
		}
	}
	if tail := site.LogSince(site.LogLen()); len(tail) != 0 {
		t.Fatalf("LogSince(now) returned %d records, want 0", len(tail))
	}
}

// TestLogSinceAcrossConcurrentClients checks that a LogSince window
// taken after concurrent traffic equals the suffix of the full log.
func TestLogSinceAcrossConcurrentClients(t *testing.T) {
	nw := netsim.New()
	site, err := Start(nw, WildcardDisallowSite("since2.test", "203.0.113.13"))
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()

	hammer := func(clients int) {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				client := nw.HTTPClient(fmt.Sprintf("198.51.100.%d", 80+c))
				for i := 0; i < 5; i++ {
					get(t, client, site.URL()+"/about.html", fmt.Sprintf("SinceBot-%d/1.0", c))
				}
			}(c)
		}
		wg.Wait()
	}
	hammer(4)
	mark := site.LogLen()
	hammer(6)
	window := site.LogSince(mark)
	full := site.Log()
	if len(window) != len(full)-mark {
		t.Fatalf("window %d records, want %d", len(window), len(full)-mark)
	}
	for i, rec := range window {
		if rec != full[mark+i] {
			t.Fatalf("window[%d] = %+v, want %+v", i, rec, full[mark+i])
		}
	}
}
