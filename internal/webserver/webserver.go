// Package webserver hosts instrumented websites over an in-memory network
// for the paper's §5 and §6 experiments: sites with configurable
// robots.txt, linked content pages, request logging (the "web server
// logs" the passive measurement analyses), and pluggable active-blocking
// hooks.
package webserver

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
)

// Page is one servable resource on a site.
type Page struct {
	// ContentType defaults to text/html when empty.
	ContentType string
	// Body is the response payload.
	Body string
}

// BlockDecision is an active-blocking outcome for a request.
type BlockDecision struct {
	// Status is the HTTP status to return (e.g. 403).
	Status int
	// Body is the block or challenge page markup.
	Body string
	// Challenge marks CAPTCHA-style challenge pages, which the §6.3
	// inference flow distinguishes from hard blocks.
	Challenge bool
}

// Blocker inspects a request before content is served. A nil return means
// the request passes. Implementations live in internal/blocking and
// internal/proxy.
type Blocker interface {
	Check(r *http.Request) *BlockDecision
}

// BlockerFunc adapts a function to the Blocker interface.
type BlockerFunc func(r *http.Request) *BlockDecision

// Check implements Blocker.
func (f BlockerFunc) Check(r *http.Request) *BlockDecision { return f(r) }

// Config describes a site to host.
type Config struct {
	// Domain registers the site in the network's name service.
	Domain string
	// IP is the site's advertised address. Under a Farm the address is a
	// virtual alias of the farm listener; with per-site hosting it is the
	// listen address.
	IP string
	// RobotsTxt is served at /robots.txt; nil means the site has no
	// robots.txt (404).
	RobotsTxt *string
	// Pages maps paths (starting with '/') to content.
	Pages map[string]Page
	// Blocker, when set, screens every request (including robots.txt,
	// like real reverse proxies do).
	Blocker Blocker
}

// Validate reports whether the config can be hosted: a non-empty domain
// and a parseable, non-empty IP. Hosting entry points (Start and
// Farm.StartSite) apply it before touching the network, so a bad config
// fails with a clear error instead of a half-registered site.
func (cfg Config) Validate() error {
	if cfg.Domain == "" {
		return fmt.Errorf("webserver: site host (Domain) must not be empty")
	}
	if cfg.IP == "" {
		return fmt.Errorf("webserver: site IP must not be empty")
	}
	if net.ParseIP(cfg.IP) == nil {
		return fmt.Errorf("webserver: invalid site IP %q", cfg.IP)
	}
	return nil
}

// Record is one logged request, the unit of §5's passive analysis.
type Record struct {
	Time      time.Time
	RemoteIP  string
	UserAgent string
	Path      string
	Status    int
	Bytes     int
}

// logShard is one connection's private slice of the site log. Each
// serving goroutine appends to its own shard under its own mutex, so
// concurrent connections never contend on a site-wide log lock; a global
// sequence number stamped at append time lets Log merge the shards back
// into the exact arrival order a single mutex would have produced.
type logShard struct {
	mu   sync.Mutex
	recs []seqRecord
}

type seqRecord struct {
	seq uint64
	rec Record
}

// shardKey carries a connection's logShard through the request context.
type shardKey struct{}

// Site is a running instrumented website. It is hosted either by a Farm
// (virtual-host dispatch on the farm's shared listener) or by a dedicated
// per-site server (the legacy Start path); the measurement surface —
// request log, runtime policy swaps — is identical in both modes.
type Site struct {
	cfg Config

	mu sync.Mutex // guards cfg mutations (robots, blocker, pages)

	// farm is set when the site is hosted by a Farm; srv/ln/done (stdlib
	// stack) or fsrv (fast path) are set when the site runs its own
	// server. Exactly one hosting mode is active.
	farm *Farm
	srv  *http.Server
	fsrv *fastServer
	ln   net.Listener
	done chan struct{}

	logSeq   atomic.Uint64
	shardsMu sync.Mutex
	shards   []*logShard
	// connShards maps live connections to their shards so records can be
	// folded into fallback when a connection closes, keeping the shard
	// list proportional to live connections rather than total churn.
	// Farm-hosted sites track shards per (connection, site) in the farm's
	// carrier instead.
	connShards map[net.Conn]*logShard
	fallback   *logShard // for requests without a connection shard

	// hits counts requests served by this site across both hosting
	// modes. Site cardinality is unbounded, so this stays a plain
	// per-site atomic (see Hits) rather than an obs registry entry.
	hits atomic.Uint64
}

// Hits returns the number of requests this site has served.
func (s *Site) Hits() uint64 { return s.hits.Load() }

// newSite builds the log machinery shared by both hosting modes.
func newSite(cfg Config) *Site {
	s := &Site{cfg: cfg}
	s.fallback = &logShard{}
	s.shards = []*logShard{s.fallback}
	return s
}

// Start hosts the site on its own dedicated listener at cfg.IP:80 and
// registers cfg.Domain.
//
// This is the legacy single-site hosting path: every call costs a
// listener, an accept-loop goroutine, and an http.Server. Surveys and
// simulations that stand up many sites on one network should use a Farm,
// which hosts any number of sites behind one listener; Start remains for
// single-site uses and as the reference implementation the farm parity
// tests compare against.
func Start(nw *netsim.Network, cfg Config) (*Site, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := nw.Listen(cfg.IP, 80)
	if err != nil {
		return nil, fmt.Errorf("webserver: %w", err)
	}
	nw.Register(cfg.Domain, cfg.IP)
	s := newSite(cfg)
	s.ln = ln
	s.connShards = make(map[net.Conn]*logShard)
	if !netsim.LegacyNetHTTP() {
		// Fast path: the hand-rolled per-connection serve loop. The shard
		// lifecycle matches the stdlib branch exactly — one shard per
		// connection, registered on open, retired on close.
		s.fsrv = startFastServer(ln, fastHooks{
			connOpen: func(c net.Conn) any {
				sh := &logShard{}
				s.shardsMu.Lock()
				s.shards = append(s.shards, sh)
				s.connShards[c] = sh
				s.shardsMu.Unlock()
				return sh
			},
			connClose: func(c net.Conn, _ any) { s.retireShard(c) },
			serve: func(carrier any, w *fastResponseWriter, r *http.Request) {
				s.serve(w, r, carrier.(*logShard))
			},
		})
		return s, nil
	}
	s.done = make(chan struct{})
	s.srv = &http.Server{
		Handler: http.HandlerFunc(s.handle),
		ConnContext: func(ctx context.Context, c net.Conn) context.Context {
			sh := &logShard{}
			s.shardsMu.Lock()
			s.shards = append(s.shards, sh)
			s.connShards[c] = sh
			s.shardsMu.Unlock()
			return context.WithValue(ctx, shardKey{}, sh)
		},
		ConnState: func(c net.Conn, st http.ConnState) {
			if st == http.StateClosed || st == http.StateHijacked {
				s.retireShard(c)
			}
		},
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// Close stops the site. A farm-hosted site is removed from its farm (its
// log stays readable); a self-hosted site shuts down its server.
func (s *Site) Close() error {
	if s.farm != nil {
		return s.farm.Remove(s)
	}
	return s.shutdownServer()
}

// shutdownServer stops whichever dedicated server stack (fast or stdlib)
// hosts the site; a no-op for farm-hosted sites, which have neither.
func (s *Site) shutdownServer() error {
	if s.fsrv != nil {
		return s.fsrv.Close()
	}
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	<-s.done
	return err
}

// Domain returns the site's registered name.
func (s *Site) Domain() string { return s.cfg.Domain }

// URL returns the site's base URL.
func (s *Site) URL() string { return "http://" + s.cfg.Domain }

// SetRobots replaces the robots.txt content at runtime (nil removes it).
func (s *Site) SetRobots(txt *string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.RobotsTxt = txt
}

// SetBlocker replaces the active-blocking hook at runtime.
func (s *Site) SetBlocker(b Blocker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Blocker = b
}

// handle serves a request on the legacy per-site server, resolving the
// connection's log shard from the request context.
func (s *Site) handle(w http.ResponseWriter, r *http.Request) {
	sh, _ := r.Context().Value(shardKey{}).(*logShard)
	if sh == nil {
		sh = s.fallback
	}
	s.serve(w, r, sh)
}

// serve answers one request and appends its record to the given log
// shard. Both hosting modes funnel here, which is what keeps the
// observable site behaviour — responses, blocking, log contents —
// independent of how the site is hosted.
func (s *Site) serve(w http.ResponseWriter, r *http.Request, sh *logShard) {
	s.hits.Add(1)
	s.mu.Lock()
	robotsTxt := s.cfg.RobotsTxt
	blocker := s.cfg.Blocker
	page, havePage := s.cfg.Pages[r.URL.Path]
	s.mu.Unlock()

	status := http.StatusOK
	var body, contentType string

	var decision *BlockDecision
	if blocker != nil {
		decision = blocker.Check(r)
	}
	switch {
	case decision != nil:
		status, body, contentType = decision.Status, decision.Body, "text/html"
	case r.URL.Path == "/robots.txt":
		if robotsTxt == nil {
			status, body = http.StatusNotFound, "no robots.txt\n"
		} else {
			body, contentType = *robotsTxt, "text/plain"
		}
	case havePage:
		body = page.Body
		contentType = page.ContentType
	default:
		status, body = http.StatusNotFound, "not found\n"
	}
	if contentType == "" {
		contentType = "text/html; charset=utf-8"
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	n, _ := io.WriteString(w, body)

	host, _, _ := net.SplitHostPort(r.RemoteAddr)
	rec := Record{
		Time:      time.Now(),
		RemoteIP:  host,
		UserAgent: r.UserAgent(),
		Path:      r.URL.Path,
		Status:    status,
		Bytes:     n,
	}
	sh.mu.Lock()
	sh.recs = append(sh.recs, seqRecord{seq: s.logSeq.Add(1) - 1, rec: rec})
	sh.mu.Unlock()
}

// Log returns a copy of all requests logged so far, merged across the
// per-connection shards into global arrival order. Requests issued
// sequentially — by one client or by any externally serialized schedule —
// appear exactly in issue order, the contract the measurement windowing
// relies on.
func (s *Site) Log() []Record {
	return s.LogSince(0)
}

// LogSince returns the requests logged since mark — a LogLen value
// captured earlier — in global arrival order. Every shard keeps its
// records sequence-sorted (appends are monotonic and retirement merges
// preserve order), so the window is located by binary search per shard
// and the cost is O(window), not O(total log): the incremental view
// monthly flush loops and measurement windows rely on.
//
// Like LogLen, the boundary is exact in quiescent states; a request in
// flight at the mark may land on either side.
func (s *Site) LogSince(mark int) []Record {
	// Hold shardsMu for the whole collection: shard retirement moves
	// records between shards under the same lock, so a reader can never
	// observe the post-drain shard with the pre-merge fallback and lose
	// a window's records. Handlers only touch their own shard's mutex
	// and are not blocked.
	s.shardsMu.Lock()
	seqMark := uint64(mark)
	var all []seqRecord
	for _, sh := range s.shards {
		sh.mu.Lock()
		recs := sh.recs
		i := sort.Search(len(recs), func(i int) bool { return recs[i].seq >= seqMark })
		all = append(all, recs[i:]...)
		sh.mu.Unlock()
	}
	s.shardsMu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]Record, len(all))
	for i, sr := range all {
		out[i] = sr.rec
	}
	return out
}

// LogLen returns the number of requests logged so far without copying the
// log. In quiescent states — no request in flight — it equals len(Log()),
// which makes it the cheap way to mark a log window's start.
func (s *Site) LogLen() int {
	return int(s.logSeq.Load())
}

// addShard registers a fresh per-connection shard with the site so Log
// and LogSince merge it. Farm connections call it lazily on a
// connection's first request to each site.
func (s *Site) addShard(sh *logShard) {
	s.shardsMu.Lock()
	s.shards = append(s.shards, sh)
	s.shardsMu.Unlock()
}

// retireShard resolves a closed legacy-server connection to its shard
// and retires it.
func (s *Site) retireShard(c net.Conn) {
	s.shardsMu.Lock()
	sh, ok := s.connShards[c]
	if ok {
		delete(s.connShards, c)
	}
	s.shardsMu.Unlock()
	if ok {
		s.retire(sh)
	}
}

// retire folds a closed connection's records into the fallback shard and
// drops the shard, so the shard list tracks live connections instead of
// growing with every connection the site ever served. The serve loop has
// exited by the time ConnState reports StateClosed, so no handler can
// still be appending to the shard. The whole move happens under shardsMu
// so LogSince (which reads under the same lock) can never see the
// drained shard alongside the pre-merge fallback.
func (s *Site) retire(sh *logShard) {
	s.shardsMu.Lock()
	defer s.shardsMu.Unlock()
	for i, x := range s.shards {
		if x == sh {
			s.shards = append(s.shards[:i], s.shards[i+1:]...)
			break
		}
	}
	sh.mu.Lock()
	recs := sh.recs
	sh.recs = nil
	sh.mu.Unlock()
	if len(recs) == 0 {
		return
	}
	// Merge by sequence so the fallback shard stays sorted: LogSince
	// binary-searches every shard, and a retired connection's records can
	// interleave with those of connections retired earlier. Direct
	// fallback appends keep the invariant for free — a fresh record's
	// sequence exceeds every previously assigned one.
	s.fallback.mu.Lock()
	s.fallback.recs = mergeBySeq(s.fallback.recs, recs)
	s.fallback.mu.Unlock()
}

// mergeBySeq merges two sequence-sorted record slices.
func mergeBySeq(a, b []seqRecord) []seqRecord {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	if a[len(a)-1].seq < b[0].seq {
		return append(a, b...)
	}
	out := make([]seqRecord, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].seq <= b[j].seq {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// RequestsMatching returns logged requests whose user agent contains the
// given substring (case-insensitive).
func (s *Site) RequestsMatching(uaSubstring string) []Record {
	var out []Record
	needle := strings.ToLower(uaSubstring)
	for _, rec := range s.Log() {
		if strings.Contains(strings.ToLower(rec.UserAgent), needle) {
			out = append(out, rec)
		}
	}
	return out
}

// ObservedAgents returns the distinct product-token-bearing user agents
// seen in the log, sorted.
func (s *Site) ObservedAgents() []string {
	seen := map[string]bool{}
	for _, rec := range s.Log() {
		seen[rec.UserAgent] = true
	}
	out := make([]string, 0, len(seen))
	for ua := range seen {
		out = append(out, ua)
	}
	sort.Strings(out)
	return out
}

// ContentPages returns a small interlinked site: an index page linking to
// articles and gallery images, mirroring the "basic text, images, and
// links to other pages" of the paper's measurement sites (§5.1).
func ContentPages(domain string) map[string]Page {
	abs := func(p string) string { return "http://" + domain + p }
	return map[string]Page{
		"/": {Body: `<html><head><title>` + domain + `</title></head><body>
<h1>Welcome to ` + domain + `</h1>
<p>Portfolio of original artwork.</p>
<a href="` + abs("/about.html") + `">About</a>
<a href="` + abs("/gallery.html") + `">Gallery</a>
<a href="/blog/post1.html">Latest post</a>
</body></html>`},
		"/about.html": {Body: `<html><body><h1>About</h1>
<p>Contact and biography.</p><a href="/">Home</a></body></html>`},
		"/gallery.html": {Body: `<html><body><h1>Gallery</h1>
<img src="/images/art1.png"><img src="/images/art2.png">
<a href="/images/art1.png">Artwork 1</a>
<a href="/images/art2.png">Artwork 2</a></body></html>`},
		"/blog/post1.html": {Body: `<html><body><h1>Post</h1>
<p>Some writing about process.</p><a href="/gallery.html">Gallery</a></body></html>`},
		"/images/art1.png": {ContentType: "image/png", Body: fakePNG},
		"/images/art2.png": {ContentType: "image/png", Body: fakePNG},
	}
}

// fakePNG is a minimal PNG header followed by filler, enough to be a
// plausible binary asset in logs.
var fakePNG = "\x89PNG\r\n\x1a\n" + strings.Repeat("artbytes", 64)

// WildcardDisallowSite returns the first §5.1 measurement site: a
// robots.txt disallowing all crawlers with the wildcard rule.
func WildcardDisallowSite(domain, ip string) Config {
	robots := "User-agent: *\nDisallow: /\n"
	return Config{
		Domain:    domain,
		IP:        ip,
		RobotsTxt: &robots,
		Pages:     ContentPages(domain),
	}
}

// PerAgentDisallowSite returns the second §5.1 measurement site: a
// robots.txt disallowing each AI user agent individually.
func PerAgentDisallowSite(domain, ip string, agentTokens []string) Config {
	var b strings.Builder
	for _, ua := range agentTokens {
		fmt.Fprintf(&b, "User-agent: %s\nDisallow: /\n\n", ua)
	}
	robots := b.String()
	return Config{
		Domain:    domain,
		IP:        ip,
		RobotsTxt: &robots,
		Pages:     ContentPages(domain),
	}
}
