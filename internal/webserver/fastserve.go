package webserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/textproto"
	"net/url"
	"strconv"
	"sync"
)

// The server half of the netsim-native HTTP fast path (see
// internal/netsim/fasthttp.go for the client half and the rationale).
//
// A fastServer replaces the stock http.Server both hosting modes used:
// one goroutine per connection runs a read-parse-serve-write loop with
// per-connection reused request/header/URL structures, an interning
// table that keeps log strings off the reused read buffer, and a pooled
// response buffer flushed in a single ring write. Handlers see the same
// http.ResponseWriter + *http.Request surface as before — Site.serve and
// Farm dispatch run unchanged — so the fast and stdlib servers are
// swappable via netsim.SetLegacyNetHTTP.

const (
	srvReadBufSize  = 8 * 1024
	srvMaxHeaders   = 64      // header count bound per request
	srvMaxBodyDrain = 8 << 20 // largest request body the server will swallow
	srvMaxInterned  = 512     // per-connection intern table bound
	srvRespBufSize  = 4 * 1024
)

var (
	errSrvHeaderTooLong = errors.New("webserver: fast server: header line exceeds buffer")
	errSrvTooManyHdrs   = errors.New("webserver: fast server: too many header lines")
)

var (
	srvReadPool = sync.Pool{New: func() any { return make([]byte, srvReadBufSize) }}
	srvRespPool = sync.Pool{New: func() any { b := make([]byte, 0, srvRespBufSize); return &b }}
)

// fastHooks are the per-connection callbacks a hosting mode plugs into
// the fast server; carrier is the mode's per-connection state (a
// *logShard for a dedicated site, a *farmConn for a farm).
type fastHooks struct {
	connOpen  func(c net.Conn) any
	connClose func(c net.Conn, carrier any)
	serve     func(carrier any, w *fastResponseWriter, r *http.Request)
}

// fastServer accepts connections and runs one serve loop per conn.
type fastServer struct {
	ln    net.Listener
	hooks fastHooks

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

func startFastServer(ln net.Listener, hooks fastHooks) *fastServer {
	fs := &fastServer{ln: ln, hooks: hooks, conns: make(map[net.Conn]struct{})}
	fs.wg.Add(1)
	go fs.acceptLoop()
	return fs
}

func (fs *fastServer) acceptLoop() {
	defer fs.wg.Done()
	for {
		c, err := fs.ln.Accept()
		if err != nil {
			return
		}
		fs.mu.Lock()
		if fs.closed {
			fs.mu.Unlock()
			c.Close()
			return
		}
		fs.conns[c] = struct{}{}
		fs.mu.Unlock()
		fs.wg.Add(1)
		go fs.serveConn(c)
	}
}

// Close stops the listener and closes every live connection, then waits
// for the serve loops to retire their log shards — the same quiescence
// http.Server.Close plus the done-channel wait used to provide.
func (fs *fastServer) Close() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		fs.wg.Wait()
		return nil
	}
	fs.closed = true
	conns := make([]net.Conn, 0, len(fs.conns))
	for c := range fs.conns {
		conns = append(conns, c)
	}
	fs.mu.Unlock()
	err := fs.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	fs.wg.Wait()
	return err
}

func (fs *fastServer) forget(c net.Conn) {
	fs.mu.Lock()
	delete(fs.conns, c)
	fs.mu.Unlock()
}

// serveConn is the per-connection loop: parse one request, serve it,
// flush the response, repeat until the peer goes away or framing breaks.
func (fs *fastServer) serveConn(c net.Conn) {
	defer fs.wg.Done()
	carrier := fs.hooks.connOpen(c)
	st := newSrvConnState(c)
	defer func() {
		c.Close()
		fs.forget(c)
		fs.hooks.connClose(c, carrier)
		st.release()
	}()
	for {
		if err := st.readRequest(); err != nil {
			return
		}
		st.w.reset(st.req.Method == http.MethodHead)
		fs.hooks.serve(carrier, &st.w, &st.req)
		if err := st.w.finish(c, st.closeAfter); err != nil {
			return
		}
		if st.closeAfter {
			return
		}
	}
}

// srvConnState is one connection's reused parsing state. Every string
// that outlives a request (log records keep Path and User-Agent) is
// interned, never aliased to the reused read buffer.
type srvConnState struct {
	rd         reqReader
	req        http.Request
	u          url.URL
	hdr        http.Header
	strs       map[string]string
	w          fastResponseWriter
	remoteAddr string
	closeAfter bool
}

func newSrvConnState(c net.Conn) *srvConnState {
	st := &srvConnState{
		hdr:        make(http.Header, 8),
		strs:       make(map[string]string, 16),
		remoteAddr: c.RemoteAddr().String(),
	}
	st.rd.c = c
	st.rd.buf = srvReadPool.Get().([]byte)
	st.w.hdr = make(http.Header, 4)
	st.w.buf = (*srvRespPool.Get().(*[]byte))[:0]
	st.req.Header = st.hdr
	st.req.Proto = "HTTP/1.1"
	st.req.ProtoMajor, st.req.ProtoMinor = 1, 1
	st.req.RemoteAddr = st.remoteAddr
	st.req.Body = http.NoBody
	return st
}

func (st *srvConnState) release() {
	srvReadPool.Put(st.rd.buf) //nolint:staticcheck // fixed-size []byte
	st.rd.buf = nil
	b := st.w.buf[:0]
	srvRespPool.Put(&b)
	st.w.buf = nil
}

// intern returns a stable string equal to b. The per-connection table is
// bounded; once full, rare new strings fall back to a plain copy.
func (st *srvConnState) intern(b []byte) string {
	if s, ok := st.strs[string(b)]; ok { // no-alloc map probe
		return s
	}
	s := string(b)
	if len(st.strs) < srvMaxInterned {
		st.strs[s] = s
	}
	return s
}

// readRequest parses one request head into the reused request struct and
// drains any declared body so the handler never has to.
func (st *srvConnState) readRequest() error {
	line, err := st.rd.readLine()
	if err != nil {
		return err
	}
	// Request line: METHOD SP TARGET SP HTTP/1.x
	sp1 := indexByte(line, ' ')
	if sp1 <= 0 {
		return fmt.Errorf("webserver: fast server: malformed request line %q", line)
	}
	sp2 := indexByteFrom(line, sp1+1, ' ')
	if sp2 < 0 || sp2 == sp1+1 {
		return fmt.Errorf("webserver: fast server: malformed request line %q", line)
	}
	methodB, targetB, protoB := line[:sp1], line[sp1+1:sp2], line[sp2+1:]
	var keepAlive bool
	switch {
	case string(protoB) == "HTTP/1.1":
		keepAlive = true
	case string(protoB) == "HTTP/1.0":
		keepAlive = false
	default:
		return fmt.Errorf("webserver: fast server: unsupported proto %q", protoB)
	}
	method := st.intern(methodB)

	// Reset per-request state. Truncating (not deleting) header values
	// keeps each key's []string backing allocated across requests;
	// Header.Get on a truncated key sees "", exactly like an absent key.
	for k, v := range st.hdr {
		if len(v) > 0 {
			st.hdr[k] = v[:0]
		}
	}
	st.req.Method = method
	st.req.Host = ""
	st.req.ContentLength = 0
	st.req.Body = http.NoBody
	st.closeAfter = !keepAlive

	// Headers.
	var contentLength int64
	chunked := false
	for n := 0; ; n++ {
		if n > srvMaxHeaders {
			return errSrvTooManyHdrs
		}
		line, err = st.rd.readLine()
		if err != nil {
			return err
		}
		if len(line) == 0 {
			break
		}
		colon := indexByte(line, ':')
		if colon <= 0 {
			return fmt.Errorf("webserver: fast server: malformed header %q", line)
		}
		kb, vb := line[:colon], trimOWSBytes(line[colon+1:])
		val := st.intern(vb)
		switch {
		case equalFoldBytes(kb, "host"):
			st.req.Host = val
		case equalFoldBytes(kb, "content-length"):
			cl, perr := strconv.ParseInt(val, 10, 64)
			if perr != nil || cl < 0 {
				return fmt.Errorf("webserver: fast server: bad Content-Length %q", val)
			}
			contentLength = cl
		case equalFoldBytes(kb, "connection"):
			if equalFoldBytes(vb, "close") {
				st.closeAfter = true
			} else if equalFoldBytes(vb, "keep-alive") {
				st.closeAfter = false
			}
			continue // not surfaced in the header map, like stdlib
		case equalFoldBytes(kb, "transfer-encoding"):
			chunked = true
			continue
		}
		key := st.canonicalKey(kb)
		st.hdr[key] = append(st.hdr[key], val)
	}
	if chunked {
		return errors.New("webserver: fast server: chunked request bodies unsupported")
	}
	if st.req.Host == "" && keepAlive {
		// HTTP/1.1 requires Host; 1.0 requests may omit it.
		return errors.New("webserver: fast server: missing Host header")
	}
	st.req.ContentLength = contentLength

	// Request target. The overwhelmingly common case — origin-form, no
	// query, no escapes — fills the reused URL; anything else takes the
	// net/url slow path.
	if len(targetB) > 0 && targetB[0] == '/' && !needsURLParse(targetB) {
		target := st.intern(targetB)
		st.u = url.URL{Path: target}
		st.req.URL = &st.u
		st.req.RequestURI = target
	} else {
		target := st.intern(targetB)
		parsed, perr := url.ParseRequestURI(target)
		if perr != nil {
			return fmt.Errorf("webserver: fast server: bad request target %q: %w", target, perr)
		}
		st.req.URL = parsed
		st.req.RequestURI = target
	}

	// Drain the body up front: handlers never read it, and a client
	// blocked writing a large body into the 32 KiB ring cannot start
	// reading our response until we consume it.
	if contentLength > 0 {
		if contentLength > srvMaxBodyDrain {
			return fmt.Errorf("webserver: fast server: request body of %d bytes exceeds limit", contentLength)
		}
		if err := st.rd.discard(contentLength); err != nil {
			return err
		}
	}
	return nil
}

// needsURLParse reports whether the target has a query or escape and so
// needs real URL parsing.
func needsURLParse(b []byte) bool {
	for _, c := range b {
		if c == '?' || c == '%' || c == '#' {
			return true
		}
	}
	return false
}

// canonicalKey converts a header key to its canonical form, interning
// the already-canonical common case without allocation.
func (st *srvConnState) canonicalKey(b []byte) string {
	if isCanonicalKey(b) {
		return st.intern(b)
	}
	return textproto.CanonicalMIMEHeaderKey(string(b))
}

// isCanonicalKey reports whether b is already in canonical MIME form
// (uppercase after dashes, lowercase elsewhere, token chars only).
func isCanonicalKey(b []byte) bool {
	upper := true
	for _, c := range b {
		switch {
		case c >= 'A' && c <= 'Z':
			if !upper {
				return false
			}
		case c >= 'a' && c <= 'z':
			if upper {
				return false
			}
		case c >= '0' && c <= '9', c == '-':
		default:
			return false
		}
		upper = c == '-'
	}
	return true
}

func indexByte(b []byte, c byte) int { return indexByteFrom(b, 0, c) }

func indexByteFrom(b []byte, from int, c byte) int {
	for i := from; i < len(b); i++ {
		if b[i] == c {
			return i
		}
	}
	return -1
}

func trimOWSBytes(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// equalFoldBytes reports b == lower ASCII-case-insensitively; lower must
// be lowercase.
func equalFoldBytes(b []byte, lower string) bool {
	if len(b) != len(lower) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

// reqReader is the server-side buffered line/byte reader (the client
// half keeps its own copy in netsim; the two packages do not share
// unexported types).
type reqReader struct {
	c    net.Conn
	buf  []byte
	r, w int
}

func (rr *reqReader) fill() error {
	if rr.r > 0 {
		copy(rr.buf, rr.buf[rr.r:rr.w])
		rr.w -= rr.r
		rr.r = 0
	}
	if rr.w == len(rr.buf) {
		return errSrvHeaderTooLong
	}
	n, err := rr.c.Read(rr.buf[rr.w:])
	rr.w += n
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

func (rr *reqReader) readLine() ([]byte, error) {
	scanned := 0
	for {
		if i := indexByteFrom(rr.buf[rr.r:rr.w], scanned, '\n'); i >= 0 {
			line := rr.buf[rr.r : rr.r+i]
			rr.r += i + 1
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
			return line, nil
		}
		scanned = rr.w - rr.r
		if err := rr.fill(); err != nil {
			return nil, err
		}
	}
}

func (rr *reqReader) discard(n int64) error {
	for n > 0 {
		if have := int64(rr.w - rr.r); have > 0 {
			if have > n {
				have = n
			}
			rr.r += int(have)
			n -= have
			continue
		}
		if err := rr.fill(); err != nil {
			return err
		}
	}
	return nil
}

// fastResponseWriter implements http.ResponseWriter (and io.StringWriter,
// which Site.serve's io.WriteString uses) over a reused buffer; finish
// frames the response with the computed Content-Length and flushes it in
// at most one ring write.
type fastResponseWriter struct {
	hdr         http.Header
	status      int
	wroteHeader bool
	isHead      bool
	buf         []byte // accumulated body bytes (suppressed for HEAD)
	headN       int    // HEAD: bytes the handler "wrote"
}

func (w *fastResponseWriter) reset(isHead bool) {
	for k, v := range w.hdr {
		if len(v) > 0 {
			w.hdr[k] = v[:0]
		}
	}
	w.status = http.StatusOK
	w.wroteHeader = false
	w.isHead = isHead
	w.buf = w.buf[:0]
	w.headN = 0
}

// Header implements http.ResponseWriter.
func (w *fastResponseWriter) Header() http.Header { return w.hdr }

// WriteHeader implements http.ResponseWriter.
func (w *fastResponseWriter) WriteHeader(code int) {
	if w.wroteHeader {
		return
	}
	w.status = code
	w.wroteHeader = true
}

// Write implements http.ResponseWriter.
func (w *fastResponseWriter) Write(p []byte) (int, error) {
	w.wroteHeader = true
	if w.isHead {
		w.headN += len(p)
		return len(p), nil
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// WriteString implements io.StringWriter, keeping string bodies off the
// []byte conversion path.
func (w *fastResponseWriter) WriteString(s string) (int, error) {
	w.wroteHeader = true
	if w.isHead {
		w.headN += len(s)
		return len(s), nil
	}
	w.buf = append(w.buf, s...)
	return len(s), nil
}

// finish frames and flushes the buffered response. The head is built in
// a pooled scratch buffer; when head + body fit one buffer they go out
// in a single conn write.
func (w *fastResponseWriter) finish(c net.Conn, closeAfter bool) error {
	hp := srvRespPool.Get().(*[]byte)
	h := (*hp)[:0]
	h = append(h, "HTTP/1.1 "...)
	h = strconv.AppendInt(h, int64(w.status), 10)
	h = append(h, ' ')
	if text := http.StatusText(w.status); text != "" {
		h = append(h, text...)
	} else {
		h = append(h, "Status"...)
	}
	h = append(h, '\r', '\n')
	for k, vs := range w.hdr {
		if k == "Content-Length" {
			continue
		}
		for _, v := range vs {
			h = append(h, k...)
			h = append(h, ':', ' ')
			h = append(h, v...)
			h = append(h, '\r', '\n')
		}
	}
	h = append(h, "Content-Length: "...)
	if w.isHead {
		h = strconv.AppendInt(h, int64(w.headN), 10)
	} else {
		h = strconv.AppendInt(h, int64(len(w.buf)), 10)
	}
	h = append(h, '\r', '\n')
	if closeAfter {
		h = append(h, "Connection: close\r\n"...)
	}
	h = append(h, '\r', '\n')

	var err error
	if !w.isHead && len(w.buf) > 0 {
		h = append(h, w.buf...)
	}
	_, err = c.Write(h)
	*hp = h[:0]
	srvRespPool.Put(hp)
	return err
}

var _ http.ResponseWriter = (*fastResponseWriter)(nil)
var _ io.StringWriter = (*fastResponseWriter)(nil)
