package webserver

import (
	"strings"
	"testing"
	"time"
)

func sampleRecord() Record {
	return Record{
		Time:      time.Date(2024, 11, 3, 15, 4, 5, 0, time.UTC),
		RemoteIP:  "24.0.1.10",
		UserAgent: "Mozilla/5.0; compatible; GPTBot/1.1",
		Path:      "/gallery/art1.png",
		Status:    200,
		Bytes:     520,
	}
}

func TestFormatCLF(t *testing.T) {
	line := FormatCLF(sampleRecord())
	for _, want := range []string{
		"24.0.1.10 - - [03/Nov/2024:15:04:05 +0000]",
		`"GET /gallery/art1.png HTTP/1.1" 200 520`,
		`"Mozilla/5.0; compatible; GPTBot/1.1"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("CLF line missing %q:\n%s", want, line)
		}
	}
}

func TestCLFRoundTrip(t *testing.T) {
	rec := sampleRecord()
	parsed, skipped, err := ParseCLF(strings.NewReader(FormatCLF(rec) + "\n"))
	if err != nil || skipped != 0 {
		t.Fatalf("parse: %v, skipped=%d", err, skipped)
	}
	if len(parsed) != 1 {
		t.Fatalf("records = %d", len(parsed))
	}
	got := parsed[0]
	if got.RemoteIP != rec.RemoteIP || got.Path != rec.Path ||
		got.Status != rec.Status || got.Bytes != rec.Bytes ||
		got.UserAgent != rec.UserAgent {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
	if !got.Time.Equal(rec.Time) {
		t.Fatalf("time %v != %v", got.Time, rec.Time)
	}
}

func TestParseCLFSkipsCorruptLines(t *testing.T) {
	input := FormatCLF(sampleRecord()) + "\n" +
		"not a log line\n" +
		"1.2.3.4 - - [bad time] \"GET / HTTP/1.1\" 200 10 \"-\" \"ua\"\n" +
		"1.2.3.4 - - [03/Nov/2024:15:04:05 +0000] \"GET / HTTP/1.1\" xx 10 \"-\" \"ua\"\n"
	parsed, skipped, err := ParseCLF(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || skipped != 3 {
		t.Fatalf("parsed=%d skipped=%d, want 1/3", len(parsed), skipped)
	}
}

func TestWriteCLFFromLiveSite(t *testing.T) {
	// End to end: serve traffic, export CLF, parse it back, and verify
	// the measurement pipeline could classify from the re-parsed log.
	nw := newTestNetwork(t)
	site, err := Start(nw, WildcardDisallowSite("clf.test", "203.0.113.30"))
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	client := nw.HTTPClient("24.0.1.77")
	get(t, client, site.URL()+"/robots.txt", "GPTBot/1.1")
	get(t, client, site.URL()+"/", "Bytespider/2.0")

	var sb strings.Builder
	if err := site.WriteCLF(&sb); err != nil {
		t.Fatal(err)
	}
	records, skipped, err := ParseCLF(strings.NewReader(sb.String()))
	if err != nil || skipped != 0 {
		t.Fatalf("parse: %v skipped=%d\n%s", err, skipped, sb.String())
	}
	if len(records) != 2 {
		t.Fatalf("records = %d", len(records))
	}
	if records[0].Path != "/robots.txt" || !strings.Contains(records[0].UserAgent, "GPTBot") {
		t.Errorf("first record = %+v", records[0])
	}
	if records[1].RemoteIP != "24.0.1.77" {
		t.Errorf("remote IP lost: %+v", records[1])
	}
}
