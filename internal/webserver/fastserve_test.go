package webserver

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/netsim"
)

func (f *Farm) connCount() int {
	f.connMu.Lock()
	defer f.connMu.Unlock()
	return len(f.conns)
}

// TestKeepAliveReuseAfter421 pins that a 421 does not poison a
// keep-alive connection: after a misdirected request the same pooled
// conn must serve correctly-addressed requests, and the dispatch memo
// must not leak the wrong site across the Host switch.
func TestKeepAliveReuseAfter421(t *testing.T) {
	nw := netsim.New()
	farm := newFarm(t, nw, "203.0.113.250")
	site, err := farm.StartSite(WildcardDisallowSite("known.test", "203.0.113.80"))
	if err != nil {
		t.Fatal(err)
	}
	nw.Register("ghost.test", "203.0.113.250") // resolves to the farm, no site claims it

	client := nw.HTTPClient("198.51.100.95")
	// Same URL host (= same client pool key, same conn), alternating Host
	// headers: ghost → 421, known → 200, ghost → 421, known → 200.
	for round := 0; round < 2; round++ {
		req, err := http.NewRequest(http.MethodGet, "http://known.test/robots.txt", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Host = "ghost.test"
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("round %d ghost: %v", round, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("round %d ghost = %d, want 421", round, resp.StatusCode)
		}

		resp, body := get(t, client, "http://known.test/robots.txt", "GPTBot/1.0")
		if resp.StatusCode != http.StatusOK || !strings.Contains(body, "Disallow: /") {
			t.Fatalf("round %d known = %d %q, want the site's robots.txt", round, resp.StatusCode, body)
		}
	}
	if got := farm.Unmatched(); got != 2 {
		t.Fatalf("Unmatched = %d, want 2", got)
	}
	if got := farm.connCount(); got != 1 {
		t.Fatalf("farm saw %d connections, want 1 reused across the 421s", got)
	}
	if recs := site.Log(); len(recs) != 2 {
		t.Fatalf("site log = %d records, want only the 2 matched requests", len(recs))
	}
}

// TestFastServerDrainsPostAcrossRing sends a POST body several times the
// 32KiB netsim ring at a farm site. Content sites have no POST handler,
// but the server must still drain the body (otherwise the client blocks
// writing into a full ring while the server blocks writing the response)
// and then keep serving the connection.
func TestFastServerDrainsPostAcrossRing(t *testing.T) {
	nw := netsim.New()
	farm := newFarm(t, nw, "203.0.113.251")
	if _, err := farm.StartSite(WildcardDisallowSite("upload.test", "203.0.113.81")); err != nil {
		t.Fatal(err)
	}

	client := nw.HTTPClient("198.51.100.96")
	payload := bytes.Repeat([]byte("x"), 100<<10)
	resp, err := client.Post("http://upload.test/", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The connection must still be usable for a normal request.
	resp2, body := get(t, client, "http://upload.test/robots.txt", "GPTBot/1.0")
	if resp2.StatusCode != http.StatusOK || !strings.Contains(body, "Disallow: /") {
		t.Fatalf("follow-up after big POST = %d %q", resp2.StatusCode, body)
	}
	if got := farm.connCount(); got != 1 {
		t.Fatalf("farm saw %d connections, want 1", got)
	}
}

// BenchmarkFarmDispatchMemo measures the dispatch hot path when a
// keep-alive connection keeps talking to one site — the memo-hit case
// the atomic last-site cache exists for.
func BenchmarkFarmDispatchMemo(b *testing.B) {
	nw := netsim.New()
	farm, err := NewFarm(nw, "203.0.113.252")
	if err != nil {
		b.Fatal(err)
	}
	defer farm.Close()
	for i := 0; i < 8; i++ {
		cfg := WildcardDisallowSite(fmt.Sprintf("memo-%d.test", i), fmt.Sprintf("203.0.113.%d", 100+i))
		if _, err := farm.StartSite(cfg); err != nil {
			b.Fatal(err)
		}
	}
	client := nw.HTTPClient("198.51.100.97")
	req, err := http.NewRequest(http.MethodGet, "http://memo-0.test/robots.txt", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkFarmDispatchMemoMiss alternates Host headers on one
// connection so every request invalidates the memo and falls back to
// the locked map probe — the worst case the memo must not regress.
func BenchmarkFarmDispatchMemoMiss(b *testing.B) {
	nw := netsim.New()
	farm, err := NewFarm(nw, "203.0.113.253")
	if err != nil {
		b.Fatal(err)
	}
	defer farm.Close()
	for i := 0; i < 2; i++ {
		cfg := WildcardDisallowSite(fmt.Sprintf("miss-%d.test", i), fmt.Sprintf("203.0.113.%d", 110+i))
		if _, err := farm.StartSite(cfg); err != nil {
			b.Fatal(err)
		}
	}
	client := nw.HTTPClient("198.51.100.98")
	reqs := make([]*http.Request, 2)
	for i := range reqs {
		req, err := http.NewRequest(http.MethodGet, "http://miss-0.test/robots.txt", nil)
		if err != nil {
			b.Fatal(err)
		}
		req.Host = fmt.Sprintf("miss-%d.test", i)
		reqs[i] = req
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Do(reqs[i%2])
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
