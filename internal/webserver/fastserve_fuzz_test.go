package webserver

import (
	"io"
	"net"
	"testing"
	"time"
)

// fuzzServerConn serves a fixed byte stream as a net.Conn: reads drain
// the buffer then report io.EOF, writes are discarded. It stands in for
// a client that sends exactly the fuzzed bytes and hangs up.
type fuzzServerConn struct{ data []byte }

func (c *fuzzServerConn) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, c.data)
	c.data = c.data[n:]
	return n, nil
}

func (c *fuzzServerConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *fuzzServerConn) Close() error                     { return nil }
func (c *fuzzServerConn) LocalAddr() net.Addr              { return fuzzServerAddr{} }
func (c *fuzzServerConn) RemoteAddr() net.Addr             { return fuzzServerAddr{} }
func (c *fuzzServerConn) SetDeadline(time.Time) error      { return nil }
func (c *fuzzServerConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fuzzServerConn) SetWriteDeadline(time.Time) error { return nil }

type fuzzServerAddr struct{}

func (fuzzServerAddr) Network() string { return "netsim" }
func (fuzzServerAddr) String() string  { return "198.51.100.2:1234" }

// FuzzFastRequestParse throws arbitrary bytes at the fast server's
// request parser: any input must either parse into well-formed requests
// (keep-alive style, several per connection) or return an error — never
// panic, never loop forever.
func FuzzFastRequestParse(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: a.test\r\nUser-Agent: GPTBot/1.0\r\n\r\n"))
	f.Add([]byte("GET /a HTTP/1.1\r\nHost: a.test\r\n\r\nGET /b HTTP/1.1\r\nHost: a.test\r\n\r\n"))
	f.Add([]byte("POST /submit HTTP/1.1\r\nHost: a.test\r\nContent-Length: 3\r\n\r\nabc"))
	f.Add([]byte("HEAD /robots.txt HTTP/1.0\r\nHost: a.test\r\n\r\n"))
	f.Add([]byte("GET /a%20b?q=1#frag HTTP/1.1\r\nHost: a\r\nX-Weird: v\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nHost: a\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nConnection: close\r\nHost: a\r\n\r\n"))
	f.Add([]byte("BROKEN"))
	f.Add([]byte("GET / HTTP/1.1\r\nHost: a\r\nContent-Length: 99999999\r\n\r\nshort"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st := newSrvConnState(&fuzzServerConn{data: data})
		defer st.release()
		for i := 0; i < 64; i++ {
			if err := st.readRequest(); err != nil {
				return
			}
			if st.req.Method == "" || st.req.URL == nil || st.req.RequestURI == "" {
				t.Fatalf("accepted incomplete request: %+v", st.req)
			}
			if st.closeAfter {
				return
			}
		}
	})
}
