// Package stats provides small deterministic statistics and randomness
// helpers shared by the measurement substrates.
//
// Every stochastic component in this repository draws randomness through
// stats.Rand seeded explicitly, so all experiments are reproducible
// bit-for-bit across runs and machines.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// DefaultSeed is the seed used by experiments unless overridden. It encodes
// the IMC '25 conference start date (October 28, 2025).
const DefaultSeed int64 = 20251028

// Rand is a deterministic random source. It wraps math/rand.Rand and adds
// the sampling helpers the generators need. Rand is not safe for concurrent
// use; derive per-goroutine sources with Fork.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream labeled by name. Two forks of the same
// parent with different names produce uncorrelated streams; forking is
// stable across runs.
func (rn *Rand) Fork(name string) *Rand {
	return NewRand(rn.ForkSeed(name))
}

// ForkSeed returns the seed Fork(name) would use, consuming one parent
// draw exactly as Fork does. A Rand carries kilobytes of generator
// state, so callers that need millions of sibling streams can derive
// the 8-byte seeds in order and materialize each source transiently
// instead of holding every fork live.
func (rn *Rand) ForkSeed(name string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	return rn.r.Int63() ^ h
}

// Float64 returns a uniform value in [0, 1).
func (rn *Rand) Float64() float64 { return rn.r.Float64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (rn *Rand) Intn(n int) int { return rn.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (rn *Rand) Int63() int64 { return rn.r.Int63() }

// Bool returns true with probability p.
func (rn *Rand) Bool(p float64) bool { return rn.r.Float64() < p }

// NormFloat64 returns a normally distributed value with the given mean and
// standard deviation.
func (rn *Rand) NormFloat64(mean, stddev float64) float64 {
	return rn.r.NormFloat64()*stddev + mean
}

// Perm returns a pseudo-random permutation of [0, n).
func (rn *Rand) Perm(n int) []int { return rn.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (rn *Rand) Shuffle(n int, swap func(i, j int)) { rn.r.Shuffle(n, swap) }

// WeightedIndex samples an index proportionally to weights. Negative
// weights are treated as zero. If all weights are zero it returns 0.
func (rn *Rand) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := rn.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Poisson samples a Poisson-distributed count with the given mean using
// Knuth's method; suitable for the small means the generators use.
func (rn *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rn.r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1_000_000 { // guard against pathological means
			return k
		}
	}
}

// Pick returns a uniformly chosen element of xs. It panics on empty input.
func Pick[T any](rn *Rand, xs []T) T {
	return xs[rn.Intn(len(xs))]
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). If k >= n it returns all n indices. The result order is random.
func (rn *Rand) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return rn.Perm(n)
	}
	perm := rn.Perm(n)
	return perm[:k]
}

// Percent returns 100*num/den, or 0 when den is zero.
func Percent(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, or 0 for empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// WilsonInterval returns the 95% Wilson score interval for k successes out
// of n trials, as (low, high) proportions in [0, 1].
func WilsonInterval(k, n int) (low, high float64) {
	if n == 0 {
		return 0, 0
	}
	const z = 1.959963984540054 // 97.5th percentile of the standard normal
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	margin := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	low = center - margin
	high = center + margin
	if low < 0 {
		low = 0
	}
	if high > 1 {
		high = 1
	}
	return low, high
}

// Point is one sample of a labeled time series.
type Point struct {
	// Time is the nominal timestamp of the sample (snapshot date).
	Time time.Time
	// Label is a human-readable x-axis label such as "Oct 2022".
	Label string
	// Value is the measured y value (often a percentage or a count).
	Value float64
}

// Series is a named sequence of points, the unit in which figures are
// reported.
type Series struct {
	Name   string
	Points []Point
}

// Last returns the final point of the series, or a zero Point when empty.
func (s Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Max returns the maximum point value, or 0 when empty.
func (s Series) Max() float64 {
	var m float64
	for i, p := range s.Points {
		if i == 0 || p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Sum returns the sum of all point values.
func (s Series) Sum() float64 {
	var t float64
	for _, p := range s.Points {
		t += p.Value
	}
	return t
}

// Sparkline renders the series as a unicode sparkline for terminal output.
// The result has one rune per point; an empty series yields "".
func (s Series) Sparkline() string {
	if len(s.Points) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := s.Points[0].Value, s.Points[0].Value
	for _, p := range s.Points {
		if p.Value < lo {
			lo = p.Value
		}
		if p.Value > hi {
			hi = p.Value
		}
	}
	out := make([]rune, 0, len(s.Points))
	for _, p := range s.Points {
		idx := 0
		if hi > lo {
			idx = int((p.Value - lo) / (hi - lo) * float64(len(ticks)-1))
		}
		out = append(out, ticks[idx])
	}
	return string(out)
}

// FormatPercent renders v as a fixed-width percentage like "12.3%".
func FormatPercent(v float64) string {
	return fmt.Sprintf("%.1f%%", v)
}

// Counter tallies occurrences of string keys and reports them in
// deterministic order.
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int)} }

// Add increments key by n.
func (c *Counter) Add(key string, n int) { c.counts[key] += n }

// Inc increments key by one.
func (c *Counter) Inc(key string) { c.counts[key]++ }

// Get returns the tally for key.
func (c *Counter) Get(key string) int { return c.counts[key] }

// Total returns the sum of all tallies.
func (c *Counter) Total() int {
	var t int
	for _, n := range c.counts {
		t += n
	}
	return t
}

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Entry is a key with its tally.
type Entry struct {
	Key   string
	Count int
}

// Sorted returns entries ordered by descending count, ties broken by key.
func (c *Counter) Sorted() []Entry {
	out := make([]Entry, 0, len(c.counts))
	for k, n := range c.counts {
		out = append(out, Entry{k, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Keys returns all keys in lexical order.
func (c *Counter) Keys() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
