package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRand(7)
	f1 := parent.Fork("alpha")
	parent2 := NewRand(7)
	f2 := parent2.Fork("alpha")
	for i := 0; i < 50; i++ {
		if f1.Int63() != f2.Int63() {
			t.Fatalf("fork with same lineage diverged at draw %d", i)
		}
	}
	// Different names must give different streams (overwhelmingly likely).
	g1 := NewRand(7).Fork("alpha")
	g2 := NewRand(7).Fork("beta")
	same := 0
	for i := 0; i < 20; i++ {
		if g1.Int63() == g2.Int63() {
			same++
		}
	}
	if same == 20 {
		t.Fatal("differently named forks produced identical streams")
	}
}

func TestBoolProbability(t *testing.T) {
	rn := NewRand(1)
	n := 20000
	hits := 0
	for i := 0; i < n; i++ {
		if rn.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if p < 0.27 || p > 0.33 {
		t.Fatalf("Bool(0.3) empirical rate %.3f out of tolerance", p)
	}
}

func TestWeightedIndex(t *testing.T) {
	rn := NewRand(2)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[rn.WeightedIndex(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %.2f, want ~3", ratio)
	}
}

func TestWeightedIndexDegenerate(t *testing.T) {
	rn := NewRand(3)
	if got := rn.WeightedIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights: got %d, want 0", got)
	}
	if got := rn.WeightedIndex([]float64{-1, -2, 5}); got != 2 {
		t.Fatalf("negative weights: got %d, want 2", got)
	}
}

func TestPoissonMean(t *testing.T) {
	rn := NewRand(4)
	var sum int
	n := 20000
	for i := 0; i < n; i++ {
		sum += rn.Poisson(2.5)
	}
	mean := float64(sum) / float64(n)
	if mean < 2.3 || mean > 2.7 {
		t.Fatalf("Poisson(2.5) empirical mean %.3f", mean)
	}
	if rn.Poisson(0) != 0 {
		t.Fatal("Poisson(0) must be 0")
	}
	if rn.Poisson(-1) != 0 {
		t.Fatal("Poisson(-1) must be 0")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rn := NewRand(5)
	got := rn.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("len=%d want 4", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 10 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	if got := rn.SampleWithoutReplacement(3, 10); len(got) != 3 {
		t.Fatalf("k>n: len=%d want 3", len(got))
	}
}

func TestPercent(t *testing.T) {
	if Percent(1, 0) != 0 {
		t.Fatal("division by zero must yield 0")
	}
	if got := Percent(25, 100); got != 25 {
		t.Fatalf("Percent(25,100)=%v", got)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty input must yield 0")
	}
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Fatalf("Mean=%v", Mean(xs))
	}
	if Median(xs) != 2 {
		t.Fatalf("Median=%v", Median(xs))
	}
	if xs[0] != 3 {
		t.Fatal("Median must not mutate its input")
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("even median=%v", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0)
	if lo != 0 || hi != 0 {
		t.Fatal("n=0 must yield zero interval")
	}
	lo, hi = WilsonInterval(50, 100)
	if !(lo < 0.5 && hi > 0.5) {
		t.Fatalf("interval [%.3f, %.3f] must contain 0.5", lo, hi)
	}
	if lo < 0.39 || hi > 0.61 {
		t.Fatalf("interval [%.3f, %.3f] too wide for n=100", lo, hi)
	}
	lo, hi = WilsonInterval(100, 100)
	if hi != 1 || lo < 0.9 {
		t.Fatalf("k=n interval [%.3f, %.3f]", lo, hi)
	}
}

func TestWilsonIntervalProperties(t *testing.T) {
	f := func(k, n uint8) bool {
		kk := int(k)
		nn := int(n)
		if nn == 0 {
			return true
		}
		kk %= nn + 1
		lo, hi := WilsonInterval(kk, nn)
		p := float64(kk) / float64(nn)
		return lo >= 0 && hi <= 1 && lo <= p+1e-9 && hi >= p-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var empty Series
	if empty.Last().Value != 0 || empty.Max() != 0 || empty.Sparkline() != "" {
		t.Fatal("empty series accessors must be zero-valued")
	}
	s := Series{Name: "x", Points: []Point{{Value: 1}, {Value: 5}, {Value: 3}}}
	if s.Last().Value != 3 {
		t.Fatalf("Last=%v", s.Last().Value)
	}
	if s.Max() != 5 {
		t.Fatalf("Max=%v", s.Max())
	}
	if s.Sum() != 9 {
		t.Fatalf("Sum=%v", s.Sum())
	}
	spark := s.Sparkline()
	if len([]rune(spark)) != 3 {
		t.Fatalf("sparkline %q should have 3 runes", spark)
	}
}

func TestSparklineFlat(t *testing.T) {
	s := Series{Points: []Point{{Value: 2}, {Value: 2}}}
	if got := s.Sparkline(); got != "▁▁" {
		t.Fatalf("flat sparkline = %q", got)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("b")
	c.Inc("a")
	c.Inc("a")
	c.Add("c", 5)
	if c.Get("a") != 2 || c.Get("missing") != 0 {
		t.Fatal("Get mismatch")
	}
	if c.Total() != 8 {
		t.Fatalf("Total=%d", c.Total())
	}
	if c.Len() != 3 {
		t.Fatalf("Len=%d", c.Len())
	}
	sorted := c.Sorted()
	if sorted[0].Key != "c" || sorted[1].Key != "a" || sorted[2].Key != "b" {
		t.Fatalf("Sorted order wrong: %+v", sorted)
	}
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("Keys order wrong: %v", keys)
	}
}

func TestNormFloat64(t *testing.T) {
	rn := NewRand(6)
	var sum, sq float64
	n := 50000
	for i := 0; i < n; i++ {
		v := rn.NormFloat64(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sq/float64(n) - mean*mean)
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("mean=%.3f", mean)
	}
	if sd < 1.9 || sd > 2.1 {
		t.Fatalf("sd=%.3f", sd)
	}
}

func TestPick(t *testing.T) {
	rn := NewRand(8)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(rn, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never chose some element: %v", seen)
	}
}
