// Package par provides the bounded fork-join helper the substrate
// packages use to parallelize their hot loops. Work is split into
// contiguous shards so callers can keep per-shard accumulators and merge
// them with commutative operations, which keeps results independent of
// scheduling and of the worker count.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// shardsPerWorker over-partitions the range so a slow shard does not
// leave the other workers idle at the tail.
const shardsPerWorker = 4

// inlineShard bounds how much work runs between cancellation checks when
// executing inline (workers <= 1).
const inlineShard = 1024

// Clamp bounds a worker count by GOMAXPROCS: the pools in this
// repository are CPU-bound (in-memory networks, parsing, sampling), so
// goroutines beyond the core count only add scheduling overhead — on a
// 1-CPU runner, workers>1 used to be strictly slower than inline
// execution. Results never depend on worker counts, so clamping is
// always safe. Non-positive counts clamp to 1.
func Clamp(workers int) int {
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Do runs fn over [0, n) split into contiguous [start, end) shards.
// With workers <= 1 (after the GOMAXPROCS clamp) the shards run inline
// on the calling goroutine; otherwise they are distributed over a
// bounded pool. Cancellation is checked between shards: Do returns
// ctx.Err() as soon as it is observed, without waiting for the
// remaining shards to be claimed. fn must be safe to call concurrently
// on disjoint shards.
func Do(ctx context.Context, workers, n int, fn func(start, end int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Clamp(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for start := 0; start < n; start += inlineShard {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(start, min(start+inlineShard, n))
		}
		return ctx.Err()
	}

	shards := workers * shardsPerWorker
	size := (n + shards - 1) / shards
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(1)-1) * size
				if start >= n || ctx.Err() != nil {
					return
				}
				fn(start, min(start+size, n))
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
