package par

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 10_000
		hits := make([]int32, n)
		err := Do(context.Background(), workers, n, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestDoEmptyRange(t *testing.T) {
	if err := Do(context.Background(), 4, 0, func(int, int) { t.Fatal("fn called") }); err != nil {
		t.Fatal(err)
	}
}

func TestDoCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Do(ctx, 4, 1_000_000, func(start, end int) {
		if ran.Add(1) == 1 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation is checked between shards, so the pool must stop well
	// short of claiming every shard.
	if n := ran.Load(); n > 64 {
		t.Errorf("ran %d shards after cancellation", n)
	}
}

func TestDoPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Do(ctx, 1, 10, func(int, int) { t.Fatal("fn called on cancelled ctx") })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestClamp(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(1)
	if got := Clamp(8); got != 1 {
		t.Errorf("Clamp(8) on 1 CPU = %d, want 1", got)
	}
	if got := Clamp(0); got != 1 {
		t.Errorf("Clamp(0) = %d, want 1", got)
	}
	runtime.GOMAXPROCS(old)
	if got := Clamp(1); got != 1 {
		t.Errorf("Clamp(1) = %d, want 1", got)
	}
	if old > 1 {
		if got := Clamp(old + 5); got != old {
			t.Errorf("Clamp(%d) = %d, want %d", old+5, got, old)
		}
	}

	// Do must still cover the range exactly once when clamped to inline.
	runtime.GOMAXPROCS(1)
	seen := make([]int, 5000)
	if err := Do(context.Background(), 8, len(seen), func(start, end int) {
		for i := start; i < end; i++ {
			seen[i]++
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d visited %d times", i, n)
		}
	}
}
