package par

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestDoCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 10_000
		hits := make([]int32, n)
		err := Do(context.Background(), workers, n, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestDoEmptyRange(t *testing.T) {
	if err := Do(context.Background(), 4, 0, func(int, int) { t.Fatal("fn called") }); err != nil {
		t.Fatal(err)
	}
}

func TestDoCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Do(ctx, 4, 1_000_000, func(start, end int) {
		if ran.Add(1) == 1 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation is checked between shards, so the pool must stop well
	// short of claiming every shard.
	if n := ran.Load(); n > 64 {
		t.Errorf("ran %d shards after cancellation", n)
	}
}

func TestDoPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Do(ctx, 1, 10, func(int, int) { t.Fatal("fn called on cancelled ctx") })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
