// Package robots implements the Robots Exclusion Protocol (RFC 9309).
//
// The paper's measurements all hinge on interpreting robots.txt exactly the
// way production crawlers do. Its authors used Google's C++ parser after
// finding that home-grown parsers are error-prone (§3.1, footnote 3); this
// package reimplements those semantics in Go:
//
//   - multiple consecutive User-agent lines form one group (App. B.2 case 2);
//   - comments, blank lines and unsupported directives such as Crawl-delay
//     are transparent to grouping (App. B.2 cases 1 and 3);
//   - rules for the same product token in different groups are merged
//     (RFC 9309 §2.2.1);
//   - the most specific matching rule wins, with Allow beating Disallow on
//     ties (RFC 9309 §2.2.2);
//   - patterns support the '*' wildcard and the '$' end anchor;
//   - user-agent matching is case-insensitive on product tokens, with
//     hierarchical specificity ("googlebot" governs "googlebot-news" when
//     no more specific group exists).
//
// Known-buggy interpretations studied in the paper (§8.1: the parser of
// [70] treats User-agent lines case-sensitively and keeps only the last of
// a run of grouped User-agent lines) are available as parse Profiles so the
// ablation benchmarks can quantify the resulting measurement error.
package robots

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/useragent"
)

// MaxSize is the number of robots.txt bytes a compliant crawler must
// process (RFC 9309 §2.5: at least 500 KiB). Input beyond this limit is
// discarded and the result is marked Truncated.
const MaxSize = 500 * 1024

// Profile selects the interpretation semantics used by Parse. The zero
// value is the Google-compatible default; the bug flags reproduce the
// non-compliant parsers discussed in §8.1 and Appendix B.2 of the paper.
type Profile struct {
	// Name identifies the profile in reports.
	Name string

	// CaseSensitiveAgents matches User-agent group names case-sensitively,
	// a bug the paper estimates caused ~10% parse error in prior work.
	CaseSensitiveAgents bool

	// LastAgentWins keeps only the final User-agent line of a consecutive
	// run instead of grouping them (App. B.2 case 2 divergence).
	LastAgentWins bool

	// BlankLineBreaksGroups terminates a group at blank or comment lines,
	// orphaning rules that follow (App. B.2 case 1 divergence).
	BlankLineBreaksGroups bool

	// CrawlDelayBreaksGroups treats Crawl-delay as a group member
	// directive, so a User-agent line after it starts a fresh group
	// (App. B.2 case 3 divergence).
	CrawlDelayBreaksGroups bool

	// StrictTokenMatch disables hierarchical (prefix-at-dash) user agent
	// matching and requires exact token equality, per a literal reading of
	// RFC 9309.
	StrictTokenMatch bool

	// FirstMatchPrecedence applies rules in file order instead of
	// longest-match precedence, as the original 1994 REP draft did.
	FirstMatchPrecedence bool
}

// Predefined profiles.
var (
	// ProfileGoogle is the default, Google-parser-compatible profile the
	// paper's measurements rely on.
	ProfileGoogle = Profile{Name: "google"}
	// ProfileStrictRFC is RFC 9309 with exact product-token matching.
	ProfileStrictRFC = Profile{Name: "strict-rfc", StrictTokenMatch: true}
	// ProfileLegacyBuggy reproduces the accumulated bugs of the parser
	// used by prior work [70]: case-sensitive agents, last-agent-wins
	// grouping, and blank lines breaking groups.
	ProfileLegacyBuggy = Profile{
		Name:                  "legacy-buggy",
		CaseSensitiveAgents:   true,
		LastAgentWins:         true,
		BlankLineBreaksGroups: true,
	}
	// ProfileClassic1994 reproduces the original REP draft: first match
	// wins and crawl-delay is an honored member directive.
	ProfileClassic1994 = Profile{
		Name:                   "classic-1994",
		CrawlDelayBreaksGroups: true,
		FirstMatchPrecedence:   true,
		StrictTokenMatch:       true,
	}
)

// Rule is a single Allow or Disallow pattern inside a group.
type Rule struct {
	// Allow is true for Allow rules and false for Disallow rules.
	Allow bool
	// Path is the raw pattern as written (after comment stripping and
	// trimming); it may contain '*' wildcards and a '$' end anchor.
	Path string
	// Line is the 1-based source line of the rule.
	Line int
}

// Group is a set of user agents and the rules that apply to them.
type Group struct {
	// Agents are the raw User-agent values of the group, in order.
	Agents []string
	// Rules are the group's Allow/Disallow patterns, in order.
	Rules []Rule
	// Line is the 1-based source line where the group started.
	Line int
}

// Extension is a recognized non-standard directive (Crawl-delay, Host,
// Noindex, …) that compliant parsers record but ignore.
type Extension struct {
	Key   string
	Value string
	// Agents holds the group agents in scope when the extension appeared,
	// or nil for extensions outside any group.
	Agents []string
	Line   int
}

// Robots is a parsed robots.txt file.
type Robots struct {
	// Groups are the user-agent groups in file order.
	Groups []Group
	// Sitemaps are the Sitemap directive values in file order.
	Sitemaps []string
	// Extensions are recognized non-standard directives.
	Extensions []Extension
	// Warnings are the problems found while parsing; see Lint.
	Warnings []Warning
	// Truncated is true when the input exceeded MaxSize.
	Truncated bool

	profile Profile

	// access memoizes Agent lookups per queried user agent. It makes
	// repeated access checks against one parsed file — the crawl hot path
	// — cheap, and is safe for concurrent use so parsed files can be
	// shared through a Cache. Robots values must not be copied after
	// first use.
	access sync.Map
}

// Parse reads a robots.txt body with the default Google-compatible
// profile. Parsing never fails on malformed content — RFC 9309 requires
// crawlers to be lenient — so errors are only possible from the reader.
func Parse(r io.Reader) (*Robots, error) {
	return ParseProfile(r, ProfileGoogle)
}

// ParseString parses a robots.txt body held in memory.
func ParseString(s string) *Robots {
	rb, _ := ParseProfile(strings.NewReader(s), ProfileGoogle)
	return rb
}

// ParseStringProfile parses s under the given semantics profile.
func ParseStringProfile(s string, p Profile) *Robots {
	rb, _ := ParseProfile(strings.NewReader(s), p)
	return rb
}

// scanBufPool recycles scanner buffers across parses: the 64 KiB
// initial buffer dominated the uncached parse's allocation profile
// (~68 KB/parse), and corpus construction parses tens of thousands of
// distinct bodies. Scanner tokens are copied out via Text() before the
// buffer returns to the pool.
var scanBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64*1024)
		return &b
	},
}

// ParseProfile reads a robots.txt body under the given semantics profile.
func ParseProfile(r io.Reader, p Profile) (*Robots, error) {
	rb := &Robots{profile: p}
	limited := &io.LimitedReader{R: r, N: MaxSize + 1}
	scanner := bufio.NewScanner(limited)
	bufp := scanBufPool.Get().(*[]byte)
	defer scanBufPool.Put(bufp)
	scanner.Buffer(*bufp, 1024*1024)
	scanner.Split(scanLines)

	var (
		lineNo       int
		cur          *Group // group currently being built, nil if none
		lastWasAgent bool   // previous meaningful line was a User-agent line
		groupClosed  bool   // rules may no longer attach (buggy profiles)

		// ruleArena accumulates every group's rules contiguously; each
		// flushed group receives a capped sub-slice. One growing backing
		// array replaces the per-group append chains that otherwise
		// dominate rule allocation.
		ruleArena []Rule
		ruleStart int
	)
	flush := func() {
		if cur != nil {
			if n := len(ruleArena) - ruleStart; n > 0 {
				cur.Rules = ruleArena[ruleStart:len(ruleArena):len(ruleArena)]
			}
			ruleStart = len(ruleArena)
			if rb.Groups == nil {
				rb.Groups = make([]Group, 0, 8)
			}
			rb.Groups = append(rb.Groups, *cur)
			cur = nil
		}
	}
	for scanner.Scan() {
		lineNo++
		raw := scanner.Text()
		if lineNo == 1 {
			raw = strings.TrimPrefix(raw, "\ufeff")
		}
		line := stripComment(raw)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			// Blank or comment-only line: transparent by default.
			if p.BlankLineBreaksGroups {
				flush()
				lastWasAgent = false
				groupClosed = true
			}
			continue
		}
		key, value, ok := splitDirective(trimmed)
		if !ok {
			rb.warn(lineNo, WarnMissingColon, trimmed)
			continue
		}
		switch canon, typo := canonicalKey(key); canon {
		case keyUserAgent:
			if typo {
				rb.warn(lineNo, WarnNonCanonicalKey, key)
			}
			if value == "" {
				rb.warn(lineNo, WarnEmptyUserAgent, "")
				continue
			}
			if lastWasAgent && cur != nil {
				if p.LastAgentWins {
					cur.Agents = []string{value}
				} else {
					cur.Agents = append(cur.Agents, value)
				}
			} else {
				flush()
				cur = &Group{Agents: []string{value}, Line: lineNo}
			}
			lastWasAgent = true
			groupClosed = false
		case keyAllow, keyDisallow:
			if typo {
				rb.warn(lineNo, WarnDirectiveTypo, key)
			}
			if cur == nil || groupClosed {
				rb.warn(lineNo, WarnRuleOutsideGroup, trimmed)
				lastWasAgent = false
				continue
			}
			if value != "" && value[0] != '/' && value[0] != '*' && value[0] != '$' {
				rb.warn(lineNo, WarnPathNotAbsolute, value)
			}
			if ruleArena == nil {
				ruleArena = make([]Rule, 0, 8)
			}
			ruleArena = append(ruleArena, Rule{
				Allow: canon == keyAllow,
				Path:  value,
				Line:  lineNo,
			})
			lastWasAgent = false
		case keySitemap:
			rb.Sitemaps = append(rb.Sitemaps, value)
			// Sitemap is a standalone directive; it does not affect groups.
		case keyCrawlDelay:
			rb.warn(lineNo, WarnCrawlDelay, value)
			rb.recordExtension(key, value, cur, lineNo)
			if p.CrawlDelayBreaksGroups {
				lastWasAgent = false
			}
		case keyExtension:
			rb.recordExtension(key, value, cur, lineNo)
		default:
			rb.warn(lineNo, WarnUnknownDirective, key)
		}
	}
	if err := scanner.Err(); err != nil {
		return rb, fmt.Errorf("robots: reading input: %w", err)
	}
	flush()
	if limited.N <= 0 {
		rb.Truncated = true
		rb.warn(lineNo, WarnTruncated, fmt.Sprintf("input exceeds %d bytes", MaxSize))
	}
	return rb, nil
}

func (rb *Robots) recordExtension(key, value string, cur *Group, line int) {
	var agents []string
	if cur != nil {
		agents = append([]string(nil), cur.Agents...)
	}
	rb.Extensions = append(rb.Extensions, Extension{
		Key: strings.ToLower(key), Value: value, Agents: agents, Line: line,
	})
}

// scanLines splits on \n, \r\n and bare \r, all of which occur in the wild.
func scanLines(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if atEOF && len(data) == 0 {
		return 0, nil, nil
	}
	for i, b := range data {
		switch b {
		case '\n':
			return i + 1, data[:i], nil
		case '\r':
			if i+1 < len(data) {
				if data[i+1] == '\n' {
					return i + 2, data[:i], nil
				}
				return i + 1, data[:i], nil
			}
			if atEOF {
				return i + 1, data[:i], nil
			}
			return 0, nil, nil // need one more byte to disambiguate \r\n
		}
	}
	if atEOF {
		return len(data), data, nil
	}
	return 0, nil, nil
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		return line[:i]
	}
	return line
}

// splitDirective splits "Key: value" at the first colon.
func splitDirective(line string) (key, value string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:]), true
}

type directiveKind int

const (
	keyUnknown directiveKind = iota
	keyUserAgent
	keyAllow
	keyDisallow
	keySitemap
	keyCrawlDelay
	keyExtension
)

// canonicalKey classifies a directive key, tolerating the common
// misspellings production parsers accept. typo reports whether the key was
// a non-canonical spelling.
func canonicalKey(key string) (kind directiveKind, typo bool) {
	switch strings.ToLower(key) {
	case "user-agent":
		return keyUserAgent, false
	case "useragent", "user agent":
		return keyUserAgent, true
	case "allow":
		return keyAllow, false
	case "disallow":
		return keyDisallow, false
	case "dissallow", "disalow", "dissalow", "disallaw":
		return keyDisallow, true
	case "sitemap", "site-map":
		return keySitemap, false
	case "crawl-delay", "crawldelay":
		return keyCrawlDelay, false
	case "host", "clean-param", "noindex", "request-rate", "visit-time":
		return keyExtension, false
	default:
		return keyUnknown, false
	}
}

// AgentTokens returns the distinct product tokens named by any group,
// excluding the wildcard, in file order. Used by the longitudinal analysis
// to see which crawlers a site addresses explicitly.
func (rb *Robots) AgentTokens() []string {
	seen := make(map[string]bool)
	var out []string
	for _, g := range rb.Groups {
		for _, a := range g.Agents {
			if useragent.IsWildcard(a) {
				continue
			}
			tok := strings.ToLower(useragent.ExtractToken(a))
			if tok == "" || seen[tok] {
				continue
			}
			seen[tok] = true
			out = append(out, useragent.ExtractToken(a))
		}
	}
	return out
}

// CrawlDelay returns the crawl-delay in effect for the given user agent, if
// any was declared for it or for the wildcard group.
func (rb *Robots) CrawlDelay(ua string) (string, bool) {
	token := useragent.ExtractToken(ua)
	wildcard := ""
	found := false
	for _, ext := range rb.Extensions {
		if ext.Key != "crawl-delay" && ext.Key != "crawldelay" {
			continue
		}
		for _, a := range ext.Agents {
			if useragent.IsWildcard(a) {
				wildcard = ext.Value
				found = true
			} else if useragent.EqualToken(useragent.ExtractToken(a), token) {
				return ext.Value, true
			}
		}
	}
	return wildcard, found
}
