package robots

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		// Prefix semantics.
		{"/", "/", true},
		{"/", "/anything/else", true},
		{"/fish", "/fish", true},
		{"/fish", "/fish.html", true},
		{"/fish", "/fishheads/yummy.html", true},
		{"/fish", "/Fish.asp", false}, // case-sensitive paths
		{"/fish", "/catfish", false},
		{"/fish/", "/fish/salmon.htm", true},
		{"/fish/", "/fish", false},
		// Wildcards (examples from Google's reference docs).
		{"/fish*", "/fish.html", true},
		{"/fish*", "/fishheads", true},
		{"*/fish", "/a/fish", true},
		{"/*.php", "/index.php", true},
		{"/*.php", "/folder/filename.php?parameters", true},
		{"/*.php", "/index.html", false},
		{"/*.php", "/php/", false},
		{"/a*b*c", "/aXXbYYc", true},
		{"/a*b*c", "/acb", false},
		// End anchor.
		{"/*.php$", "/filename.php", true},
		{"/*.php$", "/filename.php?parameters", false},
		{"/*.php$", "/filename.php5", false},
		{"/fish$", "/fish", true},
		{"/fish$", "/fish.html", false},
		// '$' only anchors at the end; a lone "$" matches empty prefix of
		// nothing — the empty pattern case is filtered before matching.
		{"/$", "/", true},
		{"/$", "/x", false},
		// Stars collapsing.
		{"/**", "/x", true},
		{"/*/", "/a/", true},
		{"/*/", "/a", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.pattern, c.path); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v",
				c.pattern, c.path, got, c.want)
		}
	}
}

func TestMatchFullBacktracking(t *testing.T) {
	// Pathological backtracking input must still complete and be correct.
	pattern := strings.Repeat("*a", 20)
	path := "/" + strings.Repeat("a", 40)
	if !matchFull("*"+pattern, path, true) {
		t.Error("repeated-star pattern should match the run of a's")
	}
	if matchFull("*"+pattern+"b", path, true) {
		t.Error("trailing literal not in path must fail")
	}
}

func TestNormalizePath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/a%2fb", "/a%2Fb"},
		{"/a%2Fb", "/a%2Fb"},
		{"/plain", "/plain"},
		{"/with space", "/with%20space"},
		{"/caf\xc3\xa9", "/caf%C3%A9"},
		{"/bad%zz", "/bad%zz"}, // invalid triplet left alone
		{"/trail%2", "/trail%2"},
	}
	for _, c := range cases {
		if got := normalizePath(c.in); got != c.want {
			t.Errorf("normalizePath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPercentEncodingEquivalence(t *testing.T) {
	rb := ParseString("User-agent: *\nDisallow: /caf%c3%a9/\n")
	if rb.Allowed("Bot", "/caf%C3%A9/menu") {
		t.Error("differently-cased percent escapes must compare equal")
	}
	if rb.Allowed("Bot", "/café/menu") {
		t.Error("raw UTF-8 path must normalize to the encoded pattern")
	}
}

func TestAccessRulesCopy(t *testing.T) {
	rb := ParseString(figure1)
	acc := rb.Agent("GPTBot")
	rules := acc.Rules()
	if len(rules) == 0 {
		t.Fatal("expected rules")
	}
	rules[0].Path = "/mutated"
	if rb.Agent("GPTBot").Rules()[0].Path == "/mutated" {
		t.Error("Rules must return a defensive copy")
	}
}

func TestEmptyPathDefaultsToRoot(t *testing.T) {
	rb := ParseString("User-agent: *\nDisallow: /\n")
	if rb.Agent("Bot").Allowed("") {
		t.Error("empty path must be treated as /")
	}
}

// Property: a pattern always matches itself when it contains no
// metacharacters (a pattern is a prefix of itself).
func TestMatchSelfProperty(t *testing.T) {
	f := func(s string) bool {
		p := "/" + strings.NewReplacer("*", "", "$", "", "#", "").Replace(s)
		return matchPattern(p, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix monotonicity — if a metacharacter-free pattern matches
// a path, it matches every extension of that path.
func TestMatchPrefixMonotonic(t *testing.T) {
	f := func(a, b string) bool {
		clean := func(s string) string {
			return strings.NewReplacer("*", "", "$", "", "#", "").Replace(s)
		}
		p := "/" + clean(a)
		path := p + clean(b)
		return matchPattern(p, path)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: normalizePath is idempotent.
func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := normalizePath(s)
		return normalizePath(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a disallow rule never makes a previously-disallowed
// path allowed (restriction monotonicity under longest-match precedence
// holds when the added rule is a Disallow at least as long as any allow).
func TestDisallowMonotonicityOnRoot(t *testing.T) {
	f := func(raw string) bool {
		seg := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' {
				return r
			}
			return -1
		}, raw)
		base := "User-agent: *\nDisallow: /" + seg + "\n"
		rb := ParseString(base)
		if rb.Allowed("Bot", "/"+seg) {
			return false
		}
		// Appending another disallow cannot re-allow it.
		rb2 := ParseString(base + "Disallow: /other\n")
		return !rb2.Allowed("Bot", "/"+seg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the builder's output parses back to the same access decisions.
func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.Comment("generated")
	b.Group("GPTBot", "CCBot").DisallowAll()
	b.Group("Googlebot").AllowAll().Disallow("/private/")
	b.Group("*").Disallow("/secret/")
	b.Sitemap("https://example.com/sitemap.xml")
	rb := ParseString(b.String())

	if rb.Allowed("GPTBot", "/") || rb.Allowed("CCBot", "/art") {
		t.Error("grouped disallow lost in round trip")
	}
	if !rb.Allowed("Googlebot", "/ok") || rb.Allowed("Googlebot", "/private/x") {
		t.Error("google group lost in round trip")
	}
	if rb.Allowed("Other", "/secret/x") || !rb.Allowed("Other", "/open") {
		t.Error("wildcard group lost in round trip")
	}
	if len(rb.Sitemaps) != 1 {
		t.Error("sitemap lost in round trip")
	}
	if rb.HasMistakes() {
		t.Errorf("builder output must lint clean: %v", rb.Warnings)
	}
}

func TestBuilderCrawlDelayAndRaw(t *testing.T) {
	b := NewBuilder()
	b.Group("SlowBot").CrawlDelay("15").Disallow("/x/")
	b.Raw("Bogus-directive: yes")
	body := b.String()
	rb := ParseString(body)
	if d, ok := rb.CrawlDelay("SlowBot"); !ok || d != "15" {
		t.Errorf("crawl delay round trip = %q, %v", d, ok)
	}
	if !rb.HasMistakes() {
		t.Error("raw bogus directive must lint dirty")
	}
}

func TestBuilderEmpty(t *testing.T) {
	if got := NewBuilder().String(); got != "" {
		t.Errorf("empty builder = %q", got)
	}
}

func TestGroupBuilderChaining(t *testing.T) {
	s := NewBuilder().
		Group("A").Disallow("/a/").
		Group("B").Allow("/b/").
		Builder().Sitemap("https://x/s.xml").String()
	rb := ParseString(s)
	if rb.Allowed("A", "/a/1") {
		t.Error("chained group A lost")
	}
	if len(rb.Sitemaps) != 1 {
		t.Error("chained sitemap lost")
	}
}
