package robots

import "strings"

// Builder assembles robots.txt content programmatically. The corpus
// generator and the hosting-provider substrate use it to render the files
// whose parsed interpretation the experiments then measure, which keeps
// generation and interpretation honest against each other.
//
// The zero value is ready to use. Builders are not safe for concurrent use.
type Builder struct {
	lines []string
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Comment appends "# text" lines; multi-line text becomes one comment line
// per input line.
func (b *Builder) Comment(text string) *Builder {
	for _, l := range strings.Split(text, "\n") {
		b.lines = append(b.lines, "# "+l)
	}
	return b
}

// Blank appends an empty line.
func (b *Builder) Blank() *Builder {
	b.lines = append(b.lines, "")
	return b
}

// Raw appends a verbatim line; used for error injection in the corpus.
func (b *Builder) Raw(line string) *Builder {
	b.lines = append(b.lines, line)
	return b
}

// Sitemap appends a Sitemap directive.
func (b *Builder) Sitemap(url string) *Builder {
	b.lines = append(b.lines, "Sitemap: "+url)
	return b
}

// Group starts a group for the given agents and returns a GroupBuilder for
// its rules. Finish the group by calling further Builder methods or by
// starting another group; no explicit close is needed.
func (b *Builder) Group(agents ...string) *GroupBuilder {
	if len(b.lines) > 0 && b.lines[len(b.lines)-1] != "" {
		b.Blank()
	}
	for _, a := range agents {
		b.lines = append(b.lines, "User-agent: "+a)
	}
	return &GroupBuilder{b: b}
}

// String renders the accumulated robots.txt content, ending with a
// newline when non-empty.
func (b *Builder) String() string {
	if len(b.lines) == 0 {
		return ""
	}
	return strings.Join(b.lines, "\n") + "\n"
}

// GroupBuilder adds rules to the group most recently started on its parent
// Builder.
type GroupBuilder struct {
	b *Builder
}

// Disallow appends Disallow rules for each path.
func (g *GroupBuilder) Disallow(paths ...string) *GroupBuilder {
	for _, p := range paths {
		g.b.lines = append(g.b.lines, "Disallow: "+p)
	}
	return g
}

// DisallowAll appends "Disallow: /".
func (g *GroupBuilder) DisallowAll() *GroupBuilder { return g.Disallow("/") }

// Allow appends Allow rules for each path.
func (g *GroupBuilder) Allow(paths ...string) *GroupBuilder {
	for _, p := range paths {
		g.b.lines = append(g.b.lines, "Allow: "+p)
	}
	return g
}

// AllowAll appends "Allow: /".
func (g *GroupBuilder) AllowAll() *GroupBuilder { return g.Allow("/") }

// CrawlDelay appends a Crawl-delay extension line to the group.
func (g *GroupBuilder) CrawlDelay(value string) *GroupBuilder {
	g.b.lines = append(g.b.lines, "Crawl-delay: "+value)
	return g
}

// Builder returns the parent builder to continue with non-group content.
func (g *GroupBuilder) Builder() *Builder { return g.b }

// Group starts a sibling group on the parent builder.
func (g *GroupBuilder) Group(agents ...string) *GroupBuilder {
	return g.b.Group(agents...)
}

// String renders the parent builder.
func (g *GroupBuilder) String() string { return g.b.String() }
