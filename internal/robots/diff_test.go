package robots

import "testing"

func TestDiffLicensingDealSignature(t *testing.T) {
	// The §3.3 pattern: GPTBot and ChatGPT-User rules vanish, the rest of
	// the file stays identical.
	before := ParseString(`User-agent: GPTBot
User-agent: ChatGPT-User
Disallow: /

User-agent: CCBot
Disallow: /

User-agent: *
Disallow: /admin/
`)
	after := ParseString(`User-agent: CCBot
Disallow: /

User-agent: *
Disallow: /admin/
`)
	changes := Diff(before, after)
	if len(changes) != 2 {
		t.Fatalf("changes = %+v, want 2 removals", changes)
	}
	for _, c := range changes {
		if c.Kind != Removed {
			t.Errorf("%s: kind = %v, want removed", c.Agent, c.Kind)
		}
		if c.From != FullyDisallowed || c.To != Unrestricted {
			t.Errorf("%s: levels %v → %v", c.Agent, c.From, c.To)
		}
	}
	if changes[0].Agent != "chatgpt-user" || changes[1].Agent != "gptbot" {
		t.Errorf("agents = %s, %s (want sorted)", changes[0].Agent, changes[1].Agent)
	}
}

func TestDiffAdditionAndAllow(t *testing.T) {
	before := ParseString("User-agent: *\nDisallow: /x/\n")
	after := ParseString(`User-agent: Bytespider
Disallow: /

User-agent: GPTBot
Allow: /

User-agent: *
Disallow: /x/
`)
	changes := Diff(before, after)
	byAgent := map[string]Change{}
	for _, c := range changes {
		byAgent[c.Agent] = c
	}
	if byAgent["bytespider"].Kind != Added {
		t.Errorf("bytespider = %v", byAgent["bytespider"].Kind)
	}
	if byAgent["gptbot"].Kind != NowAllowed {
		t.Errorf("gptbot = %v", byAgent["gptbot"].Kind)
	}
}

func TestDiffTightenLoosen(t *testing.T) {
	partial := ParseString("User-agent: GPTBot\nDisallow: /images/\n")
	full := ParseString("User-agent: GPTBot\nDisallow: /\n")
	up := Diff(partial, full)
	if len(up) != 1 || up[0].Kind != Tightened {
		t.Fatalf("tighten diff = %+v", up)
	}
	down := Diff(full, partial)
	if len(down) != 1 || down[0].Kind != Loosened {
		t.Fatalf("loosen diff = %+v", down)
	}
}

func TestDiffNoChanges(t *testing.T) {
	a := ParseString(figure1)
	b := ParseString(figure1)
	if changes := Diff(a, b); len(changes) != 0 {
		t.Fatalf("identical files must not differ: %+v", changes)
	}
}

func TestDiffWildcardOnlyChangeIgnored(t *testing.T) {
	before := ParseString("User-agent: *\nDisallow: /a/\n")
	after := ParseString("User-agent: *\nDisallow: /\n")
	if changes := Diff(before, after); len(changes) != 0 {
		t.Fatalf("wildcard change is not an agent change: %+v", changes)
	}
}

func TestChangeKindStrings(t *testing.T) {
	for k, want := range map[ChangeKind]string{
		Added: "restriction added", Removed: "restriction removed",
		Tightened: "restriction tightened", Loosened: "restriction loosened",
		NowAllowed: "explicitly allowed", ChangeKind(9): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d = %q, want %q", k, got, want)
		}
	}
}
