package robots

import (
	"sort"
	"strings"

	"repro/internal/useragent"
)

// Access is the view of a parsed robots.txt from one crawler's
// perspective: the merged rule set of every group that governs the
// crawler's product token.
type Access struct {
	// Token is the product token extracted from the queried user agent.
	Token string
	// Explicit is true when a non-wildcard group matched the token.
	Explicit bool
	// MatchedAgents are the group names that matched (lowercased).
	MatchedAgents []string

	rules                []Rule
	firstMatchPrecedence bool
}

// Agent returns the access view for a crawler identified by ua, which may
// be a full User-Agent header or a bare product token. Group selection
// follows the parse profile: by default the most specific matching group
// name governs ("googlebot-news" over "googlebot" over "*"), with all
// groups of that name merged per RFC 9309.
func (rb *Robots) Agent(ua string) Access {
	token := useragent.ExtractToken(ua)
	acc := Access{Token: token, firstMatchPrecedence: rb.profile.FirstMatchPrecedence}

	type candidate struct {
		specificity int // length of the matched group name
		groupIdx    int
		agent       string
	}
	var cands []candidate
	best := -1
	for gi, g := range rb.Groups {
		for _, a := range g.Agents {
			name := useragent.ExtractToken(a)
			if name == "" || useragent.IsWildcard(a) {
				continue
			}
			if !rb.agentNameMatches(name, token) {
				continue
			}
			cands = append(cands, candidate{len(name), gi, strings.ToLower(name)})
			if len(name) > best {
				best = len(name)
			}
		}
	}
	if best >= 0 {
		acc.Explicit = true
		seenGroup := make(map[int]bool)
		seenAgent := make(map[string]bool)
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].groupIdx < cands[j].groupIdx })
		for _, c := range cands {
			if c.specificity != best {
				continue
			}
			if !seenAgent[c.agent] {
				seenAgent[c.agent] = true
				acc.MatchedAgents = append(acc.MatchedAgents, c.agent)
			}
			if seenGroup[c.groupIdx] {
				continue
			}
			seenGroup[c.groupIdx] = true
			acc.rules = append(acc.rules, rb.Groups[c.groupIdx].Rules...)
		}
		return acc
	}
	// Fall back to the wildcard groups, merged.
	for _, g := range rb.Groups {
		wild := false
		for _, a := range g.Agents {
			if useragent.IsWildcard(a) {
				wild = true
				break
			}
		}
		if wild {
			acc.rules = append(acc.rules, g.Rules...)
		}
	}
	if len(acc.rules) > 0 {
		acc.MatchedAgents = []string{"*"}
	}
	return acc
}

// agentNameMatches reports whether a robots.txt group name governs the
// crawler token under the parse profile's semantics.
func (rb *Robots) agentNameMatches(name, token string) bool {
	if rb.profile.CaseSensitiveAgents {
		if rb.profile.StrictTokenMatch {
			return name == token
		}
		return name == token || hierarchicalPrefix(name, token)
	}
	if useragent.EqualToken(name, token) {
		return true
	}
	if rb.profile.StrictTokenMatch {
		return false
	}
	return hierarchicalPrefixFold(name, token)
}

// hierarchicalPrefixFold reports whether name governs token by the
// product-token hierarchy: "googlebot" governs "googlebot-news" (the match
// must end at a '-' boundary), case-insensitively.
func hierarchicalPrefixFold(name, token string) bool {
	if len(name) >= len(token) {
		return false
	}
	if !strings.EqualFold(token[:len(name)], name) {
		return false
	}
	return token[len(name)] == '-'
}

func hierarchicalPrefix(name, token string) bool {
	if len(name) >= len(token) {
		return false
	}
	return token[:len(name)] == name && token[len(name)] == '-'
}

// HasRules reports whether any rule governs this agent.
func (a Access) HasRules() bool { return len(a.rules) > 0 }

// Rules returns a copy of the merged rules governing this agent.
func (a Access) Rules() []Rule { return append([]Rule(nil), a.rules...) }

// Allowed reports whether the agent may fetch the given path. The path
// should begin with '/' and may include a query string; the empty path is
// treated as "/". Per RFC 9309, "/robots.txt" is always allowed.
func (a Access) Allowed(path string) bool {
	if path == "" {
		path = "/"
	}
	if path == "/robots.txt" {
		return true
	}
	path = normalizePath(path)
	if a.firstMatchPrecedence {
		for _, r := range a.rules {
			if r.Path == "" {
				continue
			}
			if matchPattern(normalizePath(r.Path), path) {
				return r.Allow
			}
		}
		return true
	}
	bestLen := -1
	allowed := true
	for _, r := range a.rules {
		if r.Path == "" {
			continue // empty pattern matches nothing
		}
		pat := normalizePath(r.Path)
		if !matchPattern(pat, path) {
			continue
		}
		pl := patternPriority(pat)
		switch {
		case pl > bestLen:
			bestLen = pl
			allowed = r.Allow
		case pl == bestLen && r.Allow && !allowed:
			// Tie: Allow wins (RFC 9309 §2.2.2).
			allowed = true
		}
	}
	return allowed
}

// Allowed is a convenience wrapper: may the crawler ua fetch path?
func (rb *Robots) Allowed(ua, path string) bool {
	return rb.Agent(ua).Allowed(path)
}

// patternPriority is the specificity of a pattern for longest-match
// precedence: its length in bytes (Google uses the same metric).
func patternPriority(pat string) int { return len(pat) }

// matchPattern reports whether a robots.txt pattern matches the path.
// Patterns are prefix patterns: "/foo" matches "/foobar" and "/foo/baz".
// '*' matches any run of characters (including the empty run); '$' at the
// very end anchors the pattern to the end of the path.
func matchPattern(pattern, path string) bool {
	if strings.HasSuffix(pattern, "$") {
		return matchFull(pattern[:len(pattern)-1], path)
	}
	// An unanchored pattern must match some prefix of the path, which is
	// the same as fully matching with an implicit trailing wildcard.
	return matchFull(pattern+"*", path)
}

// matchFull reports whether pattern (with '*' wildcards) matches the whole
// path, using greedy two-pointer matching with backtracking. It runs in
// O(len(pattern) * len(path)) worst case and allocates nothing.
func matchFull(pattern, path string) bool {
	var (
		p, s         int  // cursors into pattern and path
		starP, starS int  // backtrack positions
		haveStar     bool // a '*' has been seen
	)
	for s < len(path) {
		switch {
		case p < len(pattern) && pattern[p] == '*':
			haveStar = true
			starP = p
			starS = s
			p++
		case p < len(pattern) && pattern[p] == path[s]:
			p++
			s++
		case haveStar:
			starS++
			s = starS
			p = starP + 1
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// normalizePath canonicalizes percent-encoding so that patterns and paths
// compare the way RFC 9309 §2.2.3 requires: valid %xx triplets are
// uppercased and bytes outside the ASCII printable range are
// percent-encoded. '*' and '$' are printable ASCII and pass through, so
// the same normalization serves patterns and paths alike.
func normalizePath(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '%' && i+2 < len(s) && isHex(s[i+1]) && isHex(s[i+2]):
			b.WriteByte('%')
			b.WriteByte(upperHex(s[i+1]))
			b.WriteByte(upperHex(s[i+2]))
			i += 2
		case c >= 0x80 || c == ' ':
			const hexdigits = "0123456789ABCDEF"
			b.WriteByte('%')
			b.WriteByte(hexdigits[c>>4])
			b.WriteByte(hexdigits[c&0xf])
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func upperHex(c byte) byte {
	if c >= 'a' && c <= 'f' {
		return c - 'a' + 'A'
	}
	return c
}
