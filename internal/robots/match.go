package robots

import (
	"strings"

	"repro/internal/useragent"
)

// Access is the view of a parsed robots.txt from one crawler's
// perspective: the merged rule set of every group that governs the
// crawler's product token.
type Access struct {
	// Token is the product token extracted from the queried user agent.
	Token string
	// Explicit is true when a non-wildcard group matched the token.
	Explicit bool
	// MatchedAgents are the group names that matched (lowercased).
	MatchedAgents []string

	rules []Rule
	// normPats holds normalizePath(rules[i].Path), precomputed once so
	// Allowed does no per-call normalization work.
	normPats             []string
	firstMatchPrecedence bool
}

// Agent returns the access view for a crawler identified by ua, which may
// be a full User-Agent header or a bare product token. Group selection
// follows the parse profile: by default the most specific matching group
// name governs ("googlebot-news" over "googlebot" over "*"), with all
// groups of that name merged per RFC 9309.
//
// Access views are memoized per user agent on the Robots value; the memo
// is concurrency-safe, so cached *Robots (see Cache) can serve many
// crawler goroutines at once.
func (rb *Robots) Agent(ua string) Access {
	if v, ok := rb.access.Load(ua); ok {
		return v.(Access)
	}
	acc := rb.buildAccess(ua)
	// Concurrent builders compute identical values; last store wins.
	rb.access.Store(ua, acc)
	return acc
}

// buildAccess resolves the governing groups for ua. Two passes over the
// groups: the first finds the winning specificity, the second collects
// the matching groups' rules in file order — no sorting or scratch maps.
func (rb *Robots) buildAccess(ua string) Access {
	token := useragent.ExtractToken(ua)
	acc := Access{Token: token, firstMatchPrecedence: rb.profile.FirstMatchPrecedence}

	best := -1
	for gi := range rb.Groups {
		for _, a := range rb.Groups[gi].Agents {
			name := useragent.ExtractToken(a)
			if name == "" || useragent.IsWildcard(a) {
				continue
			}
			if rb.agentNameMatches(name, token) && len(name) > best {
				best = len(name)
			}
		}
	}
	if best >= 0 {
		acc.Explicit = true
		for gi := range rb.Groups {
			g := &rb.Groups[gi]
			matched := false
			for _, a := range g.Agents {
				name := useragent.ExtractToken(a)
				if name == "" || useragent.IsWildcard(a) || len(name) != best {
					continue
				}
				if !rb.agentNameMatches(name, token) {
					continue
				}
				matched = true
				lower := strings.ToLower(name)
				if !containsString(acc.MatchedAgents, lower) {
					acc.MatchedAgents = append(acc.MatchedAgents, lower)
				}
			}
			if matched {
				acc.rules = append(acc.rules, g.Rules...)
			}
		}
		acc.normalizeRules()
		return acc
	}
	// Fall back to the wildcard groups, merged.
	for gi := range rb.Groups {
		g := &rb.Groups[gi]
		for _, a := range g.Agents {
			if useragent.IsWildcard(a) {
				acc.rules = append(acc.rules, g.Rules...)
				break
			}
		}
	}
	if len(acc.rules) > 0 {
		acc.MatchedAgents = []string{"*"}
	}
	acc.normalizeRules()
	return acc
}

// normalizeRules precomputes the normalized pattern for every rule.
func (a *Access) normalizeRules() {
	if len(a.rules) == 0 {
		return
	}
	a.normPats = make([]string, len(a.rules))
	for i, r := range a.rules {
		if r.Path != "" {
			a.normPats[i] = normalizePath(r.Path)
		}
	}
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// agentNameMatches reports whether a robots.txt group name governs the
// crawler token under the parse profile's semantics.
func (rb *Robots) agentNameMatches(name, token string) bool {
	if rb.profile.CaseSensitiveAgents {
		if rb.profile.StrictTokenMatch {
			return name == token
		}
		return name == token || hierarchicalPrefix(name, token)
	}
	if useragent.EqualToken(name, token) {
		return true
	}
	if rb.profile.StrictTokenMatch {
		return false
	}
	return hierarchicalPrefixFold(name, token)
}

// hierarchicalPrefixFold reports whether name governs token by the
// product-token hierarchy: "googlebot" governs "googlebot-news" (the match
// must end at a '-' boundary), case-insensitively.
func hierarchicalPrefixFold(name, token string) bool {
	if len(name) >= len(token) {
		return false
	}
	if !strings.EqualFold(token[:len(name)], name) {
		return false
	}
	return token[len(name)] == '-'
}

func hierarchicalPrefix(name, token string) bool {
	if len(name) >= len(token) {
		return false
	}
	return token[:len(name)] == name && token[len(name)] == '-'
}

// HasRules reports whether any rule governs this agent.
func (a Access) HasRules() bool { return len(a.rules) > 0 }

// Rules returns a copy of the merged rules governing this agent.
func (a Access) Rules() []Rule { return append([]Rule(nil), a.rules...) }

// Allowed reports whether the agent may fetch the given path. The path
// should begin with '/' and may include a query string; the empty path is
// treated as "/". Per RFC 9309, "/robots.txt" is always allowed.
func (a Access) Allowed(path string) bool {
	if path == "" {
		path = "/"
	}
	if path == "/robots.txt" {
		return true
	}
	path = normalizePath(path)
	if a.firstMatchPrecedence {
		for i, r := range a.rules {
			if r.Path == "" {
				continue
			}
			if matchPattern(a.normPat(i), path) {
				return r.Allow
			}
		}
		return true
	}
	bestLen := -1
	allowed := true
	for i, r := range a.rules {
		if r.Path == "" {
			continue // empty pattern matches nothing
		}
		pat := a.normPat(i)
		if !matchPattern(pat, path) {
			continue
		}
		pl := patternPriority(pat)
		switch {
		case pl > bestLen:
			bestLen = pl
			allowed = r.Allow
		case pl == bestLen && r.Allow && !allowed:
			// Tie: Allow wins (RFC 9309 §2.2.2).
			allowed = true
		}
	}
	return allowed
}

// normPat returns the precomputed normalized pattern for rule i, falling
// back to on-the-fly normalization for Access values built elsewhere.
func (a Access) normPat(i int) string {
	if i < len(a.normPats) {
		return a.normPats[i]
	}
	return normalizePath(a.rules[i].Path)
}

// Allowed is a convenience wrapper: may the crawler ua fetch path?
func (rb *Robots) Allowed(ua, path string) bool {
	return rb.Agent(ua).Allowed(path)
}

// patternPriority is the specificity of a pattern for longest-match
// precedence: its length in bytes (Google uses the same metric).
func patternPriority(pat string) int { return len(pat) }

// matchPattern reports whether a robots.txt pattern matches the path.
// Patterns are prefix patterns: "/foo" matches "/foobar" and "/foo/baz".
// '*' matches any run of characters (including the empty run); '$' at the
// very end anchors the pattern to the end of the path.
func matchPattern(pattern, path string) bool {
	if strings.HasSuffix(pattern, "$") {
		return matchFull(pattern[:len(pattern)-1], path, true)
	}
	// An unanchored pattern must match some prefix of the path — the same
	// as fully matching with an implicit trailing wildcard, handled inside
	// matchFull without building a new pattern string.
	return matchFull(pattern, path, false)
}

// matchFull reports whether pattern (with '*' wildcards) matches path,
// using greedy two-pointer matching with backtracking. When anchored is
// false the pattern only needs to match a prefix of the path (implicit
// trailing '*'). It runs in O(len(pattern) * len(path)) worst case and
// allocates nothing.
func matchFull(pattern, path string, anchored bool) bool {
	var (
		p, s         int  // cursors into pattern and path
		starP, starS int  // backtrack positions
		haveStar     bool // a '*' has been seen
	)
	for s < len(path) {
		if !anchored && p == len(pattern) {
			return true // implicit trailing '*' consumes the rest
		}
		switch {
		case p < len(pattern) && pattern[p] == '*':
			haveStar = true
			starP = p
			starS = s
			p++
		case p < len(pattern) && pattern[p] == path[s]:
			p++
			s++
		case haveStar:
			starS++
			s = starS
			p = starP + 1
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// normalizePath canonicalizes percent-encoding so that patterns and paths
// compare the way RFC 9309 §2.2.3 requires: valid %xx triplets are
// uppercased and bytes outside the ASCII printable range are
// percent-encoded. '*' and '$' are printable ASCII and pass through, so
// the same normalization serves patterns and paths alike. Paths that need
// no rewriting — the overwhelmingly common case — are returned as-is
// without allocating.
func normalizePath(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '%' || c == ' ' || c >= 0x80 {
			return normalizePathSlow(s)
		}
	}
	return s
}

func normalizePathSlow(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '%' && i+2 < len(s) && isHex(s[i+1]) && isHex(s[i+2]):
			b.WriteByte('%')
			b.WriteByte(upperHex(s[i+1]))
			b.WriteByte(upperHex(s[i+2]))
			i += 2
		case c >= 0x80 || c == ' ':
			const hexdigits = "0123456789ABCDEF"
			b.WriteByte('%')
			b.WriteByte(hexdigits[c>>4])
			b.WriteByte(hexdigits[c&0xf])
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func upperHex(c byte) byte {
	if c >= 'a' && c <= 'f' {
		return c - 'a' + 'A'
	}
	return c
}
