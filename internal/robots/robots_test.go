package robots

import (
	"strings"
	"testing"
)

// figure1 is the example robots.txt from Figure 1 of the paper.
const figure1 = `# An example robots.txt file
User-agent: Googlebot
Allow: /

User-agent: ChatGPT-User
User-agent: GPTBot
Disallow: /

User-agent: *
Disallow: /secret/
`

func TestFigure1Example(t *testing.T) {
	rb := ParseString(figure1)
	if len(rb.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(rb.Groups))
	}
	if !rb.Allowed("Googlebot", "/anything") {
		t.Error("Googlebot must be allowed everywhere")
	}
	for _, ua := range []string{"ChatGPT-User", "GPTBot"} {
		if rb.Allowed(ua, "/") || rb.Allowed(ua, "/art/page.html") {
			t.Errorf("%s must be fully disallowed", ua)
		}
	}
	// Other crawlers: only /secret/ blocked.
	if rb.Allowed("SomeBot", "/secret/file") {
		t.Error("wildcard group must block /secret/")
	}
	if !rb.Allowed("SomeBot", "/public") {
		t.Error("wildcard group must allow /public")
	}
	// Categorization matches the paper's reading of the figure.
	if got := rb.Restriction("GPTBot"); got != FullyDisallowed {
		t.Errorf("GPTBot restriction = %v", got)
	}
	if got := rb.Restriction("Googlebot"); got != Unrestricted {
		t.Errorf("Googlebot restriction = %v", got)
	}
	if got := rb.Restriction("SomeBot"); got != PartiallyDisallowed {
		t.Errorf("SomeBot restriction = %v", got)
	}
}

// Appendix B.2 case 1: comments and blank lines inside a group must not
// detach the rules that follow them.
func TestEdgeCaseCommentsInsideGroup(t *testing.T) {
	body := `User-agent: *
# Blog restrictions
Disallow: /blog/latest/*
Disallow: /blogs/*
`
	rb := ParseString(body)
	if rb.Allowed("AnyBot", "/blogs/march") {
		t.Error("compliant parser must keep rules after a comment line")
	}
	if !rb.Allowed("AnyBot", "/shop") {
		t.Error("unrelated path must stay allowed")
	}

	// The buggy profile drops the rules: everything is allowed.
	buggy := ParseStringProfile(strings.Replace(body, "# Blog restrictions", "\n# Blog restrictions\n", 1), ProfileLegacyBuggy)
	if !buggy.Allowed("AnyBot", "/blogs/march") {
		t.Error("buggy profile should orphan rules after blank lines")
	}
}

// Appendix B.2 case 2: consecutive User-agent lines form one group.
func TestEdgeCaseGroupedAgents(t *testing.T) {
	body := `User-agent: GPTBot
User-agent: anthropic-ai
User-agent: Claudebot
Disallow: /
`
	rb := ParseString(body)
	for _, ua := range []string{"GPTBot", "anthropic-ai", "Claudebot"} {
		if rb.Allowed(ua, "/") {
			t.Errorf("%s must be disallowed by the shared group", ua)
		}
		if got := rb.Restriction(ua); got != FullyDisallowed {
			t.Errorf("%s restriction = %v, want fully disallowed", ua, got)
		}
	}
	// Buggy last-agent-wins parser only restricts Claudebot.
	buggy := ParseStringProfile(body, ProfileLegacyBuggy)
	if buggy.Allowed("Claudebot", "/") {
		t.Error("buggy parser must still restrict the last agent")
	}
	if !buggy.Allowed("GPTBot", "/") {
		t.Error("buggy parser must lose the first grouped agents")
	}
}

// Appendix B.2 case 3: Crawl-delay is transparent, so the two User-agent
// lines around it merge into one group under a compliant parser.
func TestEdgeCaseCrawlDelayGrouping(t *testing.T) {
	body := `User-agent: *
Disallow: /

User-agent: *
Crawl-delay: 5
User-agent: GoogleBot
Allow: /
Disallow: /z/
`
	rb := ParseString(body)
	// GoogleBot's group is {*, GoogleBot} with Allow:/ Disallow:/z/.
	if !rb.Allowed("GoogleBot", "/anything") {
		t.Error("GoogleBot must be allowed outside /z/")
	}
	if rb.Allowed("GoogleBot", "/z/secret") {
		t.Error("GoogleBot must be disallowed under /z/")
	}
	// Any other bot merges both wildcard groups: Disallow:/ + Allow:/ +
	// Disallow:/z/. For "/x": Allow:/ ties Disallow:/ at length 1 → allow.
	if !rb.Allowed("OtherBot", "/x") {
		t.Error("tie between Allow:/ and Disallow:/ must favor allow")
	}
	if rb.Allowed("OtherBot", "/z/secret") {
		t.Error("/z/ must stay disallowed for other bots")
	}

	// A parser that honors crawl-delay as a member directive does NOT
	// group GoogleBot with the second wildcard group.
	classic := ParseStringProfile(body, ProfileClassic1994)
	var googleGroup *Group
	for i := range classic.Groups {
		for _, a := range classic.Groups[i].Agents {
			if a == "GoogleBot" {
				googleGroup = &classic.Groups[i]
			}
		}
	}
	if googleGroup == nil {
		t.Fatal("classic profile lost the GoogleBot group")
	}
	if len(googleGroup.Agents) != 1 {
		t.Errorf("classic profile grouped agents %v, want GoogleBot alone",
			googleGroup.Agents)
	}
}

func TestRuleMerging(t *testing.T) {
	// RFC 9309: multiple groups naming the same token are merged.
	body := `User-agent: GPTBot
Disallow: /a/

User-agent: GPTBot
Disallow: /b/
`
	rb := ParseString(body)
	if rb.Allowed("GPTBot", "/a/x") || rb.Allowed("GPTBot", "/b/x") {
		t.Error("rules from both GPTBot groups must merge")
	}
	if !rb.Allowed("GPTBot", "/c/x") {
		t.Error("unlisted path must stay allowed")
	}
}

func TestLongestMatchPrecedence(t *testing.T) {
	body := `User-agent: *
Disallow: /shop
Allow: /shop/public
`
	rb := ParseString(body)
	if rb.Allowed("Bot", "/shop/cart") {
		t.Error("/shop/cart must be disallowed")
	}
	if !rb.Allowed("Bot", "/shop/public/item") {
		t.Error("longer Allow must beat shorter Disallow")
	}

	// First-match precedence flips the outcome when order favors disallow.
	classic := ParseStringProfile(body, ProfileClassic1994)
	if classic.Allowed("Bot", "/shop/public/item") {
		t.Error("first-match profile must stop at Disallow: /shop")
	}
}

func TestWildcardPatterns(t *testing.T) {
	body := `User-agent: *
Disallow: /*.php
Disallow: /private*/data
Disallow: /exact$
`
	rb := ParseString(body)
	cases := []struct {
		path string
		want bool // allowed?
	}{
		{"/index.php", false},
		{"/deep/down/page.php?q=1", false},
		{"/index.html", true},
		{"/private2024/data", false},
		{"/private/data", false},
		{"/privat/data", true},
		{"/exact", false},
		{"/exactly", true}, // '$' anchors
		{"/exact/", true},
	}
	for _, c := range cases {
		if got := rb.Allowed("Bot", c.path); got != c.want {
			t.Errorf("Allowed(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestEmptyDisallowMeansAllowAll(t *testing.T) {
	body := `User-agent: GPTBot
Disallow:
`
	rb := ParseString(body)
	if !rb.Allowed("GPTBot", "/anything") {
		t.Error("empty Disallow must not restrict")
	}
	if got := rb.Restriction("GPTBot"); got != Unrestricted {
		t.Errorf("restriction = %v, want unrestricted", got)
	}
	// But the group is still explicit.
	if _, explicit := rb.ExplicitRestriction("GPTBot"); !explicit {
		t.Error("empty-disallow group is still an explicit group")
	}
}

func TestRobotsTxtItselfAlwaysAllowed(t *testing.T) {
	rb := ParseString("User-agent: *\nDisallow: /\n")
	if !rb.Allowed("AnyBot", "/robots.txt") {
		t.Error("/robots.txt must always be fetchable")
	}
}

func TestCaseInsensitiveAgentMatch(t *testing.T) {
	rb := ParseString("User-agent: gptbot\nDisallow: /\n")
	if rb.Allowed("GPTBot/1.0 (+https://openai.com)", "/") {
		t.Error("agent match must be case-insensitive and token-based")
	}
	// The buggy case-sensitive profile misses it.
	buggy := ParseStringProfile("User-agent: gptbot\nDisallow: /\n", ProfileLegacyBuggy)
	if !buggy.Allowed("GPTBot", "/") {
		t.Error("case-sensitive profile must fail to match GPTBot")
	}
}

func TestHierarchicalAgentMatch(t *testing.T) {
	rb := ParseString("User-agent: Googlebot\nDisallow: /\n")
	if rb.Allowed("Googlebot-News", "/x") {
		t.Error("googlebot group must govern googlebot-news")
	}
	// But not the other way around, and not mid-token.
	rb2 := ParseString("User-agent: Googlebot-News\nDisallow: /\n")
	if !rb2.Allowed("Googlebot", "/x") {
		t.Error("more specific group must not govern the generic token")
	}
	rb3 := ParseString("User-agent: Google\nDisallow: /\n")
	if !rb3.Allowed("Googlebot", "/x") {
		t.Error("prefix without '-' boundary must not match")
	}
	// Strict RFC profile: exact only.
	strict := ParseStringProfile("User-agent: Googlebot\nDisallow: /\n", ProfileStrictRFC)
	if !strict.Allowed("Googlebot-News", "/x") {
		t.Error("strict profile must not match hierarchically")
	}
}

func TestMostSpecificGroupWins(t *testing.T) {
	body := `User-agent: Googlebot
Disallow: /generic/

User-agent: Googlebot-News
Disallow: /news-only/
`
	rb := ParseString(body)
	// Googlebot-News is governed only by its most specific group.
	if rb.Allowed("Googlebot-News", "/news-only/x") {
		t.Error("specific group must apply")
	}
	if !rb.Allowed("Googlebot-News", "/generic/x") {
		t.Error("generic group must not apply when a specific one exists")
	}
}

func TestWildcardFallback(t *testing.T) {
	body := `User-agent: SomethingElse
Disallow: /else/

User-agent: *
Disallow: /all/
`
	rb := ParseString(body)
	acc := rb.Agent("GPTBot")
	if acc.Explicit {
		t.Error("GPTBot has no explicit group here")
	}
	if acc.Allowed("/all/x") {
		t.Error("wildcard rules must govern unmatched agents")
	}
	if !acc.Allowed("/else/x") {
		t.Error("another agent's rules must not leak")
	}
}

func TestRuleOutsideGroupIgnored(t *testing.T) {
	body := "Disallow: /orphan/\nUser-agent: *\nDisallow: /real/\n"
	rb := ParseString(body)
	if rb.Allowed("Bot", "/real/x") {
		t.Error("in-group rule must apply")
	}
	if !rb.Allowed("Bot", "/orphan/x") {
		t.Error("orphan rule must be ignored")
	}
	found := false
	for _, w := range rb.Warnings {
		if w.Code == WarnRuleOutsideGroup {
			found = true
		}
	}
	if !found {
		t.Error("orphan rule must be warned about")
	}
}

func TestSitemapAndExtensions(t *testing.T) {
	body := `Sitemap: https://example.com/sitemap.xml
User-agent: *
Crawl-delay: 10
Disallow: /x/
Host: example.com
`
	rb := ParseString(body)
	if len(rb.Sitemaps) != 1 || rb.Sitemaps[0] != "https://example.com/sitemap.xml" {
		t.Errorf("sitemaps = %v", rb.Sitemaps)
	}
	if delay, ok := rb.CrawlDelay("AnyBot"); !ok || delay != "10" {
		t.Errorf("crawl delay = %q, %v", delay, ok)
	}
	// Sitemap must not have broken the group: Disallow applies.
	if rb.Allowed("Bot", "/x/1") {
		t.Error("group must survive interleaved extensions")
	}
}

func TestCrawlDelayPerAgent(t *testing.T) {
	body := `User-agent: SlowBot
Crawl-delay: 30
Disallow:

User-agent: *
Crawl-delay: 5
`
	rb := ParseString(body)
	if d, ok := rb.CrawlDelay("SlowBot"); !ok || d != "30" {
		t.Errorf("SlowBot delay = %q, %v", d, ok)
	}
	if d, ok := rb.CrawlDelay("FastBot"); !ok || d != "5" {
		t.Errorf("FastBot delay = %q, %v (want wildcard 5)", d, ok)
	}
}

func TestAgentTokens(t *testing.T) {
	rb := ParseString(figure1)
	toks := rb.AgentTokens()
	want := []string{"Googlebot", "ChatGPT-User", "GPTBot"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", toks, want)
		}
	}
}

func TestExplicitlyAllows(t *testing.T) {
	body := `User-agent: GPTBot
Allow: /

User-agent: *
Disallow: /
`
	rb := ParseString(body)
	if !rb.ExplicitlyAllows("GPTBot") {
		t.Error("explicit Allow: / group must count as invitation")
	}
	if rb.ExplicitlyAllows("CCBot") {
		t.Error("CCBot has no explicit allow")
	}
	// A disallow that negates the allow cancels the invitation.
	rb2 := ParseString("User-agent: GPTBot\nAllow: /\nDisallow: /*\n")
	// Allow:/ (len 1) vs Disallow:/* (len 2) → disallow wins on "/".
	if rb2.ExplicitlyAllows("GPTBot") {
		t.Error("negated allow must not count")
	}
}

func TestWildcardFullDisallow(t *testing.T) {
	if !ParseString("User-agent: *\nDisallow: /\n").WildcardFullDisallow() {
		t.Error("blanket disallow not detected")
	}
	if ParseString("User-agent: *\nDisallow: /x/\n").WildcardFullDisallow() {
		t.Error("partial wildcard disallow misdetected as full")
	}
	if ParseString("User-agent: GPTBot\nDisallow: /\n").WildcardFullDisallow() {
		t.Error("explicit group misdetected as wildcard")
	}
}

func TestLint(t *testing.T) {
	body := `User-agent: *
Disallow: secret/
Noai: true
Disallow: /ok/
`
	rep := Lint(body)
	if rep.Mistakes != 2 {
		t.Fatalf("mistakes = %d, want 2 (relative path + unknown directive): %v",
			rep.Mistakes, rep.Warnings)
	}
	if rep.Groups != 1 || rep.Rules != 2 {
		t.Fatalf("groups=%d rules=%d", rep.Groups, rep.Rules)
	}
}

func TestLintCleanFile(t *testing.T) {
	rep := Lint(figure1)
	if rep.Mistakes != 0 {
		t.Fatalf("figure 1 must lint clean, got %v", rep.Warnings)
	}
}

func TestWarningStrings(t *testing.T) {
	w := Warning{Line: 3, Code: WarnPathNotAbsolute, Detail: "secret/"}
	if got := w.String(); !strings.Contains(got, "line 3") || !strings.Contains(got, "path-not-absolute") {
		t.Errorf("warning string = %q", got)
	}
	codes := []WarningCode{
		WarnUnknownDirective, WarnRuleOutsideGroup, WarnPathNotAbsolute,
		WarnEmptyUserAgent, WarnMissingColon, WarnNonCanonicalKey,
		WarnDirectiveTypo, WarnCrawlDelay, WarnTruncated, WarningCode(99),
	}
	seen := map[string]bool{}
	for _, c := range codes {
		s := c.String()
		if s == "" {
			t.Errorf("code %d has empty string", c)
		}
		if seen[s] && s != "unknown" {
			t.Errorf("duplicate code string %q", s)
		}
		seen[s] = true
	}
}

func TestDirectiveTypos(t *testing.T) {
	rb := ParseString("User-agent: *\nDissallow: /x/\n")
	if rb.Allowed("Bot", "/x/1") {
		t.Error("tolerated typo must still create the rule")
	}
	if !rb.HasMistakes() {
		t.Error("typo must be flagged as a mistake")
	}
}

func TestCRLFAndBareCR(t *testing.T) {
	rb := ParseString("User-agent: *\r\nDisallow: /a/\rDisallow: /b/\n")
	if rb.Allowed("Bot", "/a/x") || rb.Allowed("Bot", "/b/x") {
		t.Error("CRLF and bare-CR line endings must both split lines")
	}
}

func TestBOMStripped(t *testing.T) {
	rb := ParseString("\ufeffUser-agent: *\nDisallow: /\n")
	if rb.Allowed("Bot", "/") {
		t.Error("UTF-8 BOM must not corrupt the first directive")
	}
}

func TestInlineComments(t *testing.T) {
	rb := ParseString("User-agent: * # everyone\nDisallow: /a/ # keep out\n")
	if rb.Allowed("Bot", "/a/x") {
		t.Error("inline comments must be stripped")
	}
	if !rb.Allowed("Bot", "/b/") {
		t.Error("comment text must not become part of the pattern")
	}
}

func TestTruncationAtMaxSize(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("User-agent: *\nDisallow: /early/\n")
	filler := strings.Repeat("# padding comment line to inflate the file\n", 1+MaxSize/40)
	sb.WriteString(filler)
	sb.WriteString("User-agent: LateBot\nDisallow: /\n")
	rb := ParseString(sb.String())
	if !rb.Truncated {
		t.Fatal("oversized input must be marked truncated")
	}
	if rb.Allowed("AnyBot", "/early/x") {
		t.Error("rules before the cap must survive")
	}
	if !rb.Allowed("LateBot", "/anything") {
		t.Error("rules after the cap must be discarded")
	}
}

func TestEmptyAndCommentOnlyFiles(t *testing.T) {
	for _, body := range []string{"", "\n\n", "# nothing here\n# at all\n"} {
		rb := ParseString(body)
		if len(rb.Groups) != 0 {
			t.Errorf("%q: groups = %d", body, len(rb.Groups))
		}
		if !rb.Allowed("AnyBot", "/x") {
			t.Errorf("%q: empty file must allow everything", body)
		}
		if got := rb.Restriction("AnyBot"); got != Unrestricted {
			t.Errorf("%q: restriction = %v", body, got)
		}
	}
}

func TestMissingColonWarning(t *testing.T) {
	rb := ParseString("User-agent *\nDisallow: /\n")
	var found bool
	for _, w := range rb.Warnings {
		if w.Code == WarnMissingColon {
			found = true
		}
	}
	if !found {
		t.Error("line without colon must warn")
	}
}

func TestEmptyUserAgentWarning(t *testing.T) {
	rb := ParseString("User-agent:\nDisallow: /\n")
	var found bool
	for _, w := range rb.Warnings {
		if w.Code == WarnEmptyUserAgent {
			found = true
		}
	}
	if !found {
		t.Error("empty user-agent must warn")
	}
	// The orphan Disallow is also flagged.
	if !rb.HasMistakes() {
		t.Error("file must have mistakes")
	}
}

func TestExplicitRestriction(t *testing.T) {
	body := `User-agent: *
Disallow: /

User-agent: GPTBot
Disallow: /models/
`
	rb := ParseString(body)
	lvl, explicit := rb.ExplicitRestriction("GPTBot")
	if !explicit || lvl != PartiallyDisallowed {
		t.Errorf("GPTBot explicit = %v %v", lvl, explicit)
	}
	_, explicit = rb.ExplicitRestriction("CCBot")
	if explicit {
		t.Error("CCBot is only covered by wildcard; not explicit")
	}
	// Restriction (non-explicit) still sees the wildcard full disallow.
	if got := rb.Restriction("CCBot"); got != FullyDisallowed {
		t.Errorf("CCBot overall restriction = %v", got)
	}
}

func TestPartialWithAllowOverride(t *testing.T) {
	body := `User-agent: GPTBot
Disallow: /
Allow: /public/
`
	rb := ParseString(body)
	if got := rb.Restriction("GPTBot"); got != PartiallyDisallowed {
		t.Errorf("restriction = %v, want partial (allow carve-out)", got)
	}
	if !rb.Allowed("GPTBot", "/public/art.png") {
		t.Error("carve-out must be allowed")
	}
	if rb.Allowed("GPTBot", "/private/x") {
		t.Error("rest must stay disallowed")
	}
}

func TestLevelStrings(t *testing.T) {
	for lvl, want := range map[Level]string{
		NoRobotsFile:        "no robots.txt",
		Unrestricted:        "no restrictions",
		PartiallyDisallowed: "partially disallowed",
		FullyDisallowed:     "fully disallowed",
		Level(42):           "unknown",
	} {
		if got := lvl.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", lvl, got, want)
		}
	}
	if NoRobotsFile.Restricted() || Unrestricted.Restricted() {
		t.Error("unrestricted levels must not report Restricted")
	}
	if !PartiallyDisallowed.Restricted() || !FullyDisallowed.Restricted() {
		t.Error("disallowed levels must report Restricted")
	}
}
