package robots

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheIdentitySameBodySameRobots(t *testing.T) {
	c := NewCache(16)
	body := "User-agent: GPTBot\nDisallow: /\n"
	a := c.Parse(body)
	b := c.Parse(body)
	if a != b {
		t.Fatal("same body must return the identical *Robots")
	}
	// A different profile is a different cache identity.
	strict := c.ParseProfile(body, ProfileStrictRFC)
	if strict == a {
		t.Fatal("different profiles must not share a parse")
	}
	if again := c.ParseProfile(body, ProfileStrictRFC); again != strict {
		t.Fatal("same profile+body must return the identical *Robots")
	}
	// Different bodies are distinct entries.
	if other := c.Parse("User-agent: CCBot\nDisallow: /\n"); other == a {
		t.Fatal("different bodies must not share a parse")
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.Len())
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(2)
	bodyA := "User-agent: A\nDisallow: /\n"
	bodyB := "User-agent: B\nDisallow: /\n"
	bodyC := "User-agent: C\nDisallow: /\n"

	a1 := c.Parse(bodyA)
	c.Parse(bodyB)
	// Touch A so B is the least recently used, then insert C.
	if a2 := c.Parse(bodyA); a2 != a1 {
		t.Fatal("A evicted prematurely")
	}
	c.Parse(bodyC)
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want cap 2", c.Len())
	}
	// A survived (recently used)...
	if a3 := c.Parse(bodyA); a3 != a1 {
		t.Fatal("recently-used entry was evicted")
	}
	// ...which means B was evicted and re-parsing it grew the cache back
	// to cap by evicting C in turn; the fresh parse is a new value that
	// still classifies identically.
	b2 := c.Parse(bodyB)
	if !b2.Agent("B").Explicit {
		t.Fatal("re-parsed entry lost its content")
	}
}

func TestCacheConcurrentAccessSingleIdentity(t *testing.T) {
	c := NewCache(64)
	const goroutines = 32
	const bodies = 8
	results := make([][]*Robots, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]*Robots, bodies)
			for i := 0; i < bodies; i++ {
				body := fmt.Sprintf("User-agent: Bot%d\nDisallow: /private%d/\n", i, i)
				results[g][i] = c.Parse(body)
				// Exercise the concurrent access memo too.
				if results[g][i].Allowed(fmt.Sprintf("Bot%d", i), fmt.Sprintf("/private%d/x", i)) {
					t.Errorf("body %d: disallowed path reported allowed", i)
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < bodies; i++ {
		for g := 1; g < goroutines; g++ {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d got a different *Robots for body %d", g, i)
			}
		}
	}
	if c.Len() != bodies {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), bodies)
	}
}

// TestCachedVerdictParityAcrossProfiles asserts that a cached parse and a
// fresh parse reach identical access verdicts for every parser profile,
// on bodies that specifically exercise each profile's divergences.
func TestCachedVerdictParityAcrossProfiles(t *testing.T) {
	bodies := []string{
		"User-agent: *\nDisallow: /\n",
		"User-agent: GPTBot\nUser-agent: CCBot\nDisallow: /images/\nAllow: /images/public/\n",
		// Blank line inside a group (BlankLineBreaksGroups divergence).
		"User-agent: Bytespider\n\nDisallow: /\n",
		// Crawl-delay between groups (CrawlDelayBreaksGroups divergence).
		"User-agent: gptbot\nCrawl-delay: 5\nUser-agent: ClaudeBot\nDisallow: /blog/\n",
		// Case sensitivity and hierarchy (CaseSensitiveAgents / StrictTokenMatch).
		"User-agent: Googlebot\nDisallow: /news/\n",
		// Precedence ordering (FirstMatchPrecedence divergence).
		"User-agent: *\nAllow: /shop/public\nDisallow: /shop\nDisallow: /search$\n",
	}
	agents := []string{"GPTBot", "gptbot", "CCBot", "Bytespider", "ClaudeBot",
		"Googlebot", "Googlebot-News", "RandomBot"}
	paths := []string{"/", "/images/x.png", "/images/public/x.png", "/blog/post",
		"/news/today", "/shop/public/item", "/shop/cart", "/search", "/robots.txt"}
	profiles := []Profile{ProfileGoogle, ProfileStrictRFC, ProfileLegacyBuggy, ProfileClassic1994}

	cache := NewCache(0)
	for _, p := range profiles {
		for _, body := range bodies {
			cached := cache.ParseProfile(body, p)
			fresh := ParseStringProfile(body, p)
			for _, ua := range agents {
				ca, fa := cached.Agent(ua), fresh.Agent(ua)
				if ca.Explicit != fa.Explicit {
					t.Errorf("profile %s body %q agent %s: Explicit cached=%v fresh=%v",
						p.Name, body, ua, ca.Explicit, fa.Explicit)
				}
				for _, path := range paths {
					if got, want := ca.Allowed(path), fa.Allowed(path); got != want {
						t.Errorf("profile %s body %q agent %s path %s: cached=%v fresh=%v",
							p.Name, body, ua, path, got, want)
					}
				}
				// Restriction classification must agree too.
				cl, ce := cached.ExplicitRestriction(ua)
				fl, fe := fresh.ExplicitRestriction(ua)
				if cl != fl || ce != fe {
					t.Errorf("profile %s body %q agent %s: restriction cached=(%v,%v) fresh=(%v,%v)",
						p.Name, body, ua, cl, ce, fl, fe)
				}
			}
		}
	}
}

// TestCacheNormalizedKeyCollapsesTemplates pins the normalized content
// key: bodies that differ only in per-site comment and Sitemap lines —
// how every corpus rendering differs from its neighbours — share one
// cache entry, one *Robots identity, and identical rule semantics, and
// the hit/miss counters prove the dedup.
func TestCacheNormalizedKeyCollapsesTemplates(t *testing.T) {
	c := NewCache(0)
	template := func(domain string) string {
		return "# robots.txt for " + domain + "\n" +
			"User-agent: *\nDisallow: /admin/\n\n" +
			"User-agent: GPTBot\nUser-agent: CCBot\nDisallow: /\n\n" +
			"Sitemap: https://" + domain + "/sitemap.xml\n"
	}
	first := c.Parse(template("site-00001.example"))
	for i := 2; i <= 100; i++ {
		rb := c.Parse(template(fmt.Sprintf("site-%05d.example", i)))
		if rb != first {
			t.Fatalf("site %d: normalized bodies must share one parse identity", i)
		}
	}
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (all bodies are one template)", st.Entries)
	}
	if st.Misses != 1 || st.Hits != 99 {
		t.Fatalf("hits/misses = %d/%d, want 99/1", st.Hits, st.Misses)
	}
	if rate := st.HitRate(); rate < 0.98 {
		t.Fatalf("hit rate = %.3f, want ≥ 0.98", rate)
	}

	// Rule semantics match a verbatim parse exactly.
	body := template("site-00042.example")
	direct := ParseString(body)
	for _, tc := range []struct {
		agent, path string
	}{
		{"GPTBot", "/"}, {"GPTBot", "/about.html"}, {"CCBot", "/x"},
		{"Googlebot", "/admin/x"}, {"Googlebot", "/page"},
	} {
		if got, want := first.Allowed(tc.agent, tc.path), direct.Allowed(tc.agent, tc.path); got != want {
			t.Errorf("Allowed(%s, %s): cached %v, direct %v", tc.agent, tc.path, got, want)
		}
	}

	// A body with genuinely different rules is a different entry.
	other := c.Parse("User-agent: *\nDisallow: /\n")
	if other == first {
		t.Fatal("different policies must not collapse")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

// TestCacheNormalizationRespectsBuggyProfiles pins the gate: under a
// profile where comment lines break groups (the legacy-buggy parser
// reproduction), stripping them would change semantics, so the cache
// keys those bodies verbatim.
func TestCacheNormalizationRespectsBuggyProfiles(t *testing.T) {
	// Under ProfileLegacyBuggy the comment line splits the two User-agent
	// lines into separate groups (and last-agent-wins drops the first);
	// with the comment stripped they form one group.
	body := "User-agent: GPTBot\n# split here\nUser-agent: CCBot\nDisallow: /\n"
	c := NewCache(0)
	cached := c.ParseProfile(body, ProfileLegacyBuggy)
	direct := ParseStringProfile(body, ProfileLegacyBuggy)
	if got, want := cached.Allowed("GPTBot", "/x"), direct.Allowed("GPTBot", "/x"); got != want {
		t.Fatalf("legacy-buggy cached parse diverged from direct parse: %v vs %v", got, want)
	}
	// And the buggy profile's entry must not be shared with a normalized
	// Google-profile entry for the same body.
	if c.ParseProfile(body, ProfileGoogle) == cached {
		t.Fatal("profiles must not share entries")
	}
}

// TestNormalizeKey covers the line classifier directly.
func TestNormalizeKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"User-agent: *\nDisallow: /\n", "User-agent: *\nDisallow: /\n"}, // untouched, no alloc path
		{"# c\nUser-agent: *\nDisallow: /\n", "User-agent: *\nDisallow: /\n"},
		{"  \t# indented comment\nAllow: /a\n", "Allow: /a\n"},
		{"Sitemap: https://a/s.xml\nUser-agent: *\nDisallow: /\n", "User-agent: *\nDisallow: /\n"},
		{"SITE-MAP : https://a/s.xml\nAllow: /\n", "Allow: /\n"},
		{"User-agent: *\nDisallow: /a#frag\n", "User-agent: *\nDisallow: /a#frag\n"}, // inline '#' kept
		{"Sitemapish: x\n", "Sitemapish: x\n"},                                       // not a sitemap directive
		{"Disallow: / # trailing comment\n", "Disallow: / # trailing comment\n"},     // whole-line only
		{"# only a comment", ""},
	}
	for _, tc := range cases {
		if got := normalizeKey(tc.in); got != tc.want {
			t.Errorf("normalizeKey(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// The no-strip fast path returns the identical string.
	in := "User-agent: *\nDisallow: /\n"
	if out := normalizeKey(in); &in != &in || out != in {
		t.Errorf("fast path changed the body")
	}
}
