package robots

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheIdentitySameBodySameRobots(t *testing.T) {
	c := NewCache(16)
	body := "User-agent: GPTBot\nDisallow: /\n"
	a := c.Parse(body)
	b := c.Parse(body)
	if a != b {
		t.Fatal("same body must return the identical *Robots")
	}
	// A different profile is a different cache identity.
	strict := c.ParseProfile(body, ProfileStrictRFC)
	if strict == a {
		t.Fatal("different profiles must not share a parse")
	}
	if again := c.ParseProfile(body, ProfileStrictRFC); again != strict {
		t.Fatal("same profile+body must return the identical *Robots")
	}
	// Different bodies are distinct entries.
	if other := c.Parse("User-agent: CCBot\nDisallow: /\n"); other == a {
		t.Fatal("different bodies must not share a parse")
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.Len())
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(2)
	bodyA := "User-agent: A\nDisallow: /\n"
	bodyB := "User-agent: B\nDisallow: /\n"
	bodyC := "User-agent: C\nDisallow: /\n"

	a1 := c.Parse(bodyA)
	c.Parse(bodyB)
	// Touch A so B is the least recently used, then insert C.
	if a2 := c.Parse(bodyA); a2 != a1 {
		t.Fatal("A evicted prematurely")
	}
	c.Parse(bodyC)
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want cap 2", c.Len())
	}
	// A survived (recently used)...
	if a3 := c.Parse(bodyA); a3 != a1 {
		t.Fatal("recently-used entry was evicted")
	}
	// ...which means B was evicted and re-parsing it grew the cache back
	// to cap by evicting C in turn; the fresh parse is a new value that
	// still classifies identically.
	b2 := c.Parse(bodyB)
	if !b2.Agent("B").Explicit {
		t.Fatal("re-parsed entry lost its content")
	}
}

func TestCacheConcurrentAccessSingleIdentity(t *testing.T) {
	c := NewCache(64)
	const goroutines = 32
	const bodies = 8
	results := make([][]*Robots, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]*Robots, bodies)
			for i := 0; i < bodies; i++ {
				body := fmt.Sprintf("User-agent: Bot%d\nDisallow: /private%d/\n", i, i)
				results[g][i] = c.Parse(body)
				// Exercise the concurrent access memo too.
				if results[g][i].Allowed(fmt.Sprintf("Bot%d", i), fmt.Sprintf("/private%d/x", i)) {
					t.Errorf("body %d: disallowed path reported allowed", i)
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < bodies; i++ {
		for g := 1; g < goroutines; g++ {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d got a different *Robots for body %d", g, i)
			}
		}
	}
	if c.Len() != bodies {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), bodies)
	}
}

// TestCachedVerdictParityAcrossProfiles asserts that a cached parse and a
// fresh parse reach identical access verdicts for every parser profile,
// on bodies that specifically exercise each profile's divergences.
func TestCachedVerdictParityAcrossProfiles(t *testing.T) {
	bodies := []string{
		"User-agent: *\nDisallow: /\n",
		"User-agent: GPTBot\nUser-agent: CCBot\nDisallow: /images/\nAllow: /images/public/\n",
		// Blank line inside a group (BlankLineBreaksGroups divergence).
		"User-agent: Bytespider\n\nDisallow: /\n",
		// Crawl-delay between groups (CrawlDelayBreaksGroups divergence).
		"User-agent: gptbot\nCrawl-delay: 5\nUser-agent: ClaudeBot\nDisallow: /blog/\n",
		// Case sensitivity and hierarchy (CaseSensitiveAgents / StrictTokenMatch).
		"User-agent: Googlebot\nDisallow: /news/\n",
		// Precedence ordering (FirstMatchPrecedence divergence).
		"User-agent: *\nAllow: /shop/public\nDisallow: /shop\nDisallow: /search$\n",
	}
	agents := []string{"GPTBot", "gptbot", "CCBot", "Bytespider", "ClaudeBot",
		"Googlebot", "Googlebot-News", "RandomBot"}
	paths := []string{"/", "/images/x.png", "/images/public/x.png", "/blog/post",
		"/news/today", "/shop/public/item", "/shop/cart", "/search", "/robots.txt"}
	profiles := []Profile{ProfileGoogle, ProfileStrictRFC, ProfileLegacyBuggy, ProfileClassic1994}

	cache := NewCache(0)
	for _, p := range profiles {
		for _, body := range bodies {
			cached := cache.ParseProfile(body, p)
			fresh := ParseStringProfile(body, p)
			for _, ua := range agents {
				ca, fa := cached.Agent(ua), fresh.Agent(ua)
				if ca.Explicit != fa.Explicit {
					t.Errorf("profile %s body %q agent %s: Explicit cached=%v fresh=%v",
						p.Name, body, ua, ca.Explicit, fa.Explicit)
				}
				for _, path := range paths {
					if got, want := ca.Allowed(path), fa.Allowed(path); got != want {
						t.Errorf("profile %s body %q agent %s path %s: cached=%v fresh=%v",
							p.Name, body, ua, path, got, want)
					}
				}
				// Restriction classification must agree too.
				cl, ce := cached.ExplicitRestriction(ua)
				fl, fe := fresh.ExplicitRestriction(ua)
				if cl != fl || ce != fe {
					t.Errorf("profile %s body %q agent %s: restriction cached=(%v,%v) fresh=(%v,%v)",
						p.Name, body, ua, cl, ce, fl, fe)
				}
			}
		}
	}
}
