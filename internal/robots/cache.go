package robots

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultCacheSize is the entry cap of the package-level shared cache.
// Robots bodies in the simulations are highly repetitive (site templates,
// managed rule lists, the two measurement policies), so even a modest cap
// achieves a near-perfect hit rate.
const DefaultCacheSize = 4096

// Cache is a concurrency-safe, content-keyed parse cache: the same body
// parsed under the same Profile returns the same *Robots. Parsing is
// singleflighted — concurrent first requests for one body parse it once
// while the others wait — and entries are evicted least-recently-used
// beyond the cap.
//
// The content key is normalized before lookup (for profiles where the
// normalization is semantics-preserving, see normalizeKey): whole-line
// comments and Sitemap directives — the only lines that make one site's
// rendered robots.txt differ from the next site's — are stripped, so a
// corpus of tens of thousands of near-identical bodies collapses to the
// few hundred underlying policy templates. The cached *Robots is the
// parse of the normalized body; its rule semantics are identical, but
// Sitemaps, comment-derived line numbers, and lint warnings for the
// stripped lines are absent. Every hot-path consumer reads only rule
// semantics; callers that need the file verbatim (linting, diffing)
// parse directly.
//
// Sharing parsed policies is safe because *Robots is immutable after
// Parse: every accessor builds its answer from the parsed groups without
// mutating them (the per-agent access memo in match.go is itself
// concurrency-safe).
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*list.Element
	lru     *list.List // front = most recently used; Value is *cacheEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

// CacheStats is a point-in-time view of a cache's effectiveness. The
// normalized content key is judged by Entries staying near the number of
// distinct policy templates while Hits grows with every re-parse
// avoided.
type CacheStats struct {
	// Hits counts lookups answered from a previous parse.
	Hits uint64
	// Misses counts lookups that had to parse.
	Misses uint64
	// Entries is the current number of cached parses (including any in
	// flight).
	Entries int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the cache's hit/miss counters and current size.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries := c.lru.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: entries,
	}
}

type cacheKey struct {
	profile Profile
	body    string
}

type cacheEntry struct {
	key  cacheKey
	done chan struct{} // closed once rb is set
	rb   *Robots
}

// NewCache returns a cache holding at most maxEntries parsed files;
// maxEntries <= 0 means DefaultCacheSize.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &Cache{
		max:     maxEntries,
		entries: make(map[cacheKey]*list.Element),
		lru:     list.New(),
	}
}

// Parse returns the parsed form of body under the default profile,
// reusing a previous parse of identical content when available.
func (c *Cache) Parse(body string) *Robots {
	return c.ParseProfile(body, ProfileGoogle)
}

// ParseProfile returns the parsed form of body under profile p, reusing a
// previous parse of equivalent content when available (see the type
// comment for the normalized-key contract).
func (c *Cache) ParseProfile(body string, p Profile) *Robots {
	// Comments are group-transparent in every profile except the
	// BlankLineBreaksGroups reproductions, where stripping a comment line
	// would merge groups the buggy parser splits; those profiles key (and
	// parse) the body verbatim.
	if !p.BlankLineBreaksGroups {
		body = normalizeKey(body)
	}
	key := cacheKey{profile: p, body: body}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.done
		return e.rb
	}
	c.misses.Add(1)
	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()

	// Parse outside the lock; waiters block on done, not on the mutex. An
	// entry evicted while in flight still completes for its waiters.
	e.rb = ParseStringProfile(body, p)
	close(e.done)
	return e.rb
}

// normalizeKey strips the lines that differ between per-site renderings
// of one policy template but cannot change rule semantics under
// comment-transparent profiles: whole-line comments ("# robots.txt for
// example.com") and the standalone Sitemap directive (RFC 9309 §2.2.4:
// "not part of any group"), which carries the site's own URL. The ~40k
// near-identical corpus bodies collapse to the few hundred underlying
// templates under this key. Bodies containing no such line — every
// hand-written policy in the simulations' hot paths — are returned
// as-is, without allocating.
func normalizeKey(body string) string {
	strip := false
	rest := body
	for len(rest) > 0 {
		line := rest
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if strippableLine(line) {
			strip = true
			break
		}
	}
	if !strip {
		return body
	}
	var b strings.Builder
	b.Grow(len(body))
	rest = body
	for len(rest) > 0 {
		line := rest
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i+1], rest[i+1:]
		} else {
			rest = ""
		}
		if !strippableLine(line) {
			b.WriteString(line)
		}
	}
	return b.String()
}

// strippableLine reports whether the line (with or without its trailing
// newline) is a whole-line comment or a Sitemap directive.
func strippableLine(line string) bool {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
		i++
	}
	if i < len(line) && line[i] == '#' {
		return true
	}
	const sm, smLen = "sitemap", 7
	rest := line[i:]
	if len(rest) >= smLen && strings.EqualFold(rest[:smLen], sm) {
		rest = rest[smLen:]
	} else if len(rest) >= smLen+1 && strings.EqualFold(rest[:4], "site") && rest[4] == '-' && strings.EqualFold(rest[5:smLen+1], "map") {
		rest = rest[smLen+1:]
	} else {
		return false
	}
	for len(rest) > 0 && (rest[0] == ' ' || rest[0] == '\t') {
		rest = rest[1:]
	}
	return len(rest) > 0 && rest[0] == ':'
}

// EqualNormalized reports whether two robots.txt bodies are equivalent
// under the cache's normalized content key: identical once whole-line
// comments and Sitemap directives are stripped, and therefore identical
// in rule semantics under every comment-transparent profile. Incremental
// snapshot recompilation uses this to prove a host's policy unchanged
// between corpus months without re-parsing either body; the common cases
// (bit-identical, or sharing no strippable lines) compare without
// allocating.
func EqualNormalized(a, b string) bool {
	if a == b {
		return true
	}
	return normalizeKey(a) == normalizeKey(b)
}

// Len returns the number of cached entries (including in-flight parses).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// sharedCache backs ParseCached / ParseCachedProfile: one process-wide
// policy cache shared by the crawl hot paths (crawler fetches, blocking
// surveys, proxy robots checks, scenario policy updates).
var sharedCache = NewCache(DefaultCacheSize)

// ParseCached parses a robots.txt body through the shared process-wide
// cache: identical bodies return the identical *Robots. Use it on hot
// paths that repeatedly see the same policies; results must be treated as
// read-only (all exported accessors are).
func ParseCached(body string) *Robots {
	return sharedCache.Parse(body)
}

// ParseCachedProfile is ParseCached under an explicit semantics profile.
func ParseCachedProfile(body string, p Profile) *Robots {
	return sharedCache.ParseProfile(body, p)
}

// SharedCacheStats returns the process-wide cache's hit/miss counters —
// the proof line for the normalized content key: corpus-scale workloads
// should show entries near the template count and a hit rate near 1.
func SharedCacheStats() CacheStats {
	return sharedCache.Stats()
}
