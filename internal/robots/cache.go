package robots

import (
	"container/list"
	"sync"
)

// DefaultCacheSize is the entry cap of the package-level shared cache.
// Robots bodies in the simulations are highly repetitive (site templates,
// managed rule lists, the two measurement policies), so even a modest cap
// achieves a near-perfect hit rate.
const DefaultCacheSize = 4096

// Cache is a concurrency-safe, content-keyed parse cache: the same body
// parsed under the same Profile returns the same *Robots. Parsing is
// singleflighted — concurrent first requests for one body parse it once
// while the others wait — and entries are evicted least-recently-used
// beyond the cap.
//
// Sharing parsed policies is safe because *Robots is immutable after
// Parse: every accessor builds its answer from the parsed groups without
// mutating them (the per-agent access memo in match.go is itself
// concurrency-safe).
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*list.Element
	lru     *list.List // front = most recently used; Value is *cacheEntry
}

type cacheKey struct {
	profile Profile
	body    string
}

type cacheEntry struct {
	key  cacheKey
	done chan struct{} // closed once rb is set
	rb   *Robots
}

// NewCache returns a cache holding at most maxEntries parsed files;
// maxEntries <= 0 means DefaultCacheSize.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &Cache{
		max:     maxEntries,
		entries: make(map[cacheKey]*list.Element),
		lru:     list.New(),
	}
}

// Parse returns the parsed form of body under the default profile,
// reusing a previous parse of identical content when available.
func (c *Cache) Parse(body string) *Robots {
	return c.ParseProfile(body, ProfileGoogle)
}

// ParseProfile returns the parsed form of body under profile p, reusing a
// previous parse of identical content when available.
func (c *Cache) ParseProfile(body string, p Profile) *Robots {
	key := cacheKey{profile: p, body: body}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		<-e.done
		return e.rb
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()

	// Parse outside the lock; waiters block on done, not on the mutex. An
	// entry evicted while in flight still completes for its waiters.
	e.rb = ParseStringProfile(body, p)
	close(e.done)
	return e.rb
}

// Len returns the number of cached entries (including in-flight parses).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// sharedCache backs ParseCached / ParseCachedProfile: one process-wide
// policy cache shared by the crawl hot paths (crawler fetches, blocking
// surveys, proxy robots checks, scenario policy updates).
var sharedCache = NewCache(DefaultCacheSize)

// ParseCached parses a robots.txt body through the shared process-wide
// cache: identical bodies return the identical *Robots. Use it on hot
// paths that repeatedly see the same policies; results must be treated as
// read-only (all exported accessors are).
func ParseCached(body string) *Robots {
	return sharedCache.Parse(body)
}

// ParseCachedProfile is ParseCached under an explicit semantics profile.
func ParseCachedProfile(body string, p Profile) *Robots {
	return sharedCache.ParseProfile(body, p)
}
