package robots

import (
	"strings"
	"testing"
	"testing/quick"
)

// Conformance battery modeled on the behaviours of Google's open-source
// robots.txt parser (the reference implementation the paper uses), its
// documentation examples, and RFC 9309. Each case is one (robots, agent,
// path) access decision.
func TestGoogleConformance(t *testing.T) {
	cases := []struct {
		name   string
		robots string
		agent  string
		path   string
		allow  bool
	}{
		// --- Rule precedence examples from Google's reference docs ---
		{"allow page beats shorter disallow", "User-agent: *\nAllow: /p\nDisallow: /\n", "bot", "/page", true},
		{"allow folder tie goes to allow", "User-agent: *\nAllow: /folder\nDisallow: /folder\n", "bot", "/folder/page", true},
		{"longer wildcard disallow beats allow", "User-agent: *\nAllow: /page\nDisallow: /*.htm\n", "bot", "/page.htm", false},
		{"anchored allow of root only", "User-agent: *\nAllow: /$\nDisallow: /\n", "bot", "/", true},
		{"anchored allow does not extend", "User-agent: *\nAllow: /$\nDisallow: /\n", "bot", "/page", false},
		{"equal length allow wins", "User-agent: *\nDisallow: /ab\nAllow: /ab\n", "bot", "/abc", true},

		// --- Grouping ---
		{"group applies to both agents (first)",
			"User-agent: a\nUser-agent: b\nDisallow: /\n", "a", "/x", false},
		{"group applies to both agents (second)",
			"User-agent: a\nUser-agent: b\nDisallow: /\n", "b", "/x", false},
		{"later group same agent merges",
			"User-agent: a\nDisallow: /x/\n\nUser-agent: a\nDisallow: /y/\n", "a", "/y/1", false},
		{"specific group excludes wildcard rules",
			"User-agent: a\nDisallow: /only-a/\n\nUser-agent: *\nDisallow: /all/\n", "a", "/all/x", true},
		{"wildcard applies when no specific group",
			"User-agent: a\nDisallow: /only-a/\n\nUser-agent: *\nDisallow: /all/\n", "b", "/all/x", false},
		{"sitemap line does not split group",
			"User-agent: a\nSitemap: https://e/s.xml\nDisallow: /x/\n", "a", "/x/1", false},
		{"comment line does not split group",
			"User-agent: a\n# note\nDisallow: /x/\n", "a", "/x/1", false},
		{"blank line does not split group (google behaviour)",
			"User-agent: a\n\nDisallow: /x/\n", "a", "/x/1", false},
		{"crawl-delay does not split group",
			"User-agent: a\nCrawl-delay: 1\nDisallow: /x/\n", "a", "/x/1", false},

		// --- User agent matching ---
		{"agent match is case-insensitive", "User-agent: FooBot\nDisallow: /\n", "fOoBoT", "/x", false},
		{"full UA string resolves to token",
			"User-agent: FooBot\nDisallow: /\n", "Mozilla/5.0 (compatible; FooBot/2.1)", "/x", true},
		// (the full string's token is "Mozilla", not FooBot — per token
		// extraction the policy for FooBot does not govern Mozilla)
		{"token from versioned UA", "User-agent: FooBot\nDisallow: /\n", "FooBot/2.1", "/x", false},
		{"no rules for unknown agent", "User-agent: FooBot\nDisallow: /\n", "BarBot", "/x", true},

		// --- Path matching ---
		{"paths are case-sensitive", "User-agent: *\nDisallow: /X/\n", "bot", "/x/1", true},
		{"prefix match", "User-agent: *\nDisallow: /fish\n", "bot", "/fish.html", false},
		{"prefix does not match mid-path", "User-agent: *\nDisallow: /fish\n", "bot", "/catfish", true},
		{"query string included in match", "User-agent: *\nDisallow: /*?sort=\n", "bot", "/list?sort=asc", false},
		{"star collapses", "User-agent: *\nDisallow: /a***b\n", "bot", "/aXXXb", false},
		{"dollar mid-pattern is literal", "User-agent: *\nDisallow: /a$b\n", "bot", "/a$b-c", false},
		{"dollar mid-pattern literal no match", "User-agent: *\nDisallow: /a$b\n", "bot", "/ab", true},

		// --- Empty values and degenerate files ---
		{"empty disallow allows all", "User-agent: *\nDisallow:\n", "bot", "/x", true},
		{"empty file allows all", "", "bot", "/x", true},
		{"whitespace-only file allows all", "  \n\t\n", "bot", "/x", true},
		{"rules without group ignored", "Disallow: /\n", "bot", "/x", true},
		{"allow-only file imposes nothing", "User-agent: *\nAllow: /public/\n", "bot", "/private/x", true},

		// --- Percent encoding ---
		{"encoded pattern matches raw path", "User-agent: *\nDisallow: /caf%C3%A9/\n", "bot", "/café/menu", false},
		{"raw pattern matches encoded-equal path", "User-agent: *\nDisallow: /a%2Fb\n", "bot", "/a%2fb", false},

		// --- Key tolerance ---
		{"useragent spelling accepted", "useragent: *\ndisallow: /x/\n", "bot", "/x/1", false},
		{"mixed case keys accepted", "USER-AGENT: *\nDISALLOW: /x/\n", "bot", "/x/1", false},
		{"dissallow typo accepted", "User-agent: *\nDissallow: /x/\n", "bot", "/x/1", false},

		// --- robots.txt itself ---
		{"robots.txt always fetchable", "User-agent: *\nDisallow: /\n", "bot", "/robots.txt", true},

		// --- Whitespace and comments ---
		{"spaces around colon", "User-agent :   *  \nDisallow : /x/\n", "bot", "/x/1", false},
		{"trailing comment stripped", "User-agent: * # everyone\nDisallow: /x/ # private\n", "bot", "/x/1", false},
		{"leading whitespace tolerated", "  User-agent: *\n\tDisallow: /x/\n", "bot", "/x/1", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rb := ParseString(c.robots)
			if got := rb.Allowed(c.agent, c.path); got != c.allow {
				t.Errorf("Allowed(%q, %q) = %v, want %v\nrobots:\n%s",
					c.agent, c.path, got, c.allow, c.robots)
			}
		})
	}
}

// The parser must be total: arbitrary input never panics, and every
// access decision is well-defined.
func TestParserTotality(t *testing.T) {
	f := func(body, agent, path string) bool {
		rb := ParseString(body)
		_ = rb.Allowed(agent, "/"+path)
		_ = rb.Restriction(agent)
		_, _ = rb.ExplicitRestriction(agent)
		_ = rb.AgentTokens()
		_ = rb.WildcardFullDisallow()
		_ = rb.HasMistakes()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Adversarial inputs drawn from real-world robots.txt corpora.
func TestHostileInputs(t *testing.T) {
	inputs := []string{
		strings.Repeat("User-agent: *\n", 1000) + "Disallow: /\n",
		strings.Repeat("Disallow: /x\n", 1000),
		"User-agent: *\nDisallow: " + strings.Repeat("*", 500) + "\n",
		"User-agent: " + strings.Repeat("a", 10000) + "\nDisallow: /\n",
		strings.Repeat("#", 100000),
		"User-agent: *\r\rDisallow: /\r",
		"\x00\x01\x02User-agent: *\nDisallow: /\n",
		"User-agent: *\nDisallow: /\xff\xfe/\n",
	}
	for i, in := range inputs {
		rb := ParseString(in)
		_ = rb.Allowed("GPTBot", "/some/path")
		_ = rb.Restriction("GPTBot")
		_ = i
	}
}

// Pathological wildcard patterns must not blow up matching time; this is
// a correctness test for the backtracking bound (the 10s test timeout
// would trip on exponential behaviour).
func TestMatcherPerformanceBound(t *testing.T) {
	pattern := "/" + strings.Repeat("a*", 50)
	path := "/" + strings.Repeat("a", 2000) + "b"
	rb := ParseString("User-agent: *\nDisallow: " + pattern + "\n")
	for i := 0; i < 50; i++ {
		rb.Allowed("bot", path)
	}
}

// Decision stability: the same Robots value always returns the same
// answer (no internal mutation during matching).
func TestDecisionStability(t *testing.T) {
	rb := ParseString(figure1)
	f := func(path string) bool {
		p := "/" + path
		first := rb.Allowed("GPTBot", p)
		for i := 0; i < 3; i++ {
			if rb.Allowed("GPTBot", p) != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Merging invariance: parsing a file twice and querying in different
// orders yields identical categorization.
func TestQueryOrderInvariance(t *testing.T) {
	body := `User-agent: GPTBot
User-agent: CCBot
Disallow: /

User-agent: GPTBot
Allow: /public/

User-agent: *
Disallow: /admin/
`
	a := ParseString(body)
	b := ParseString(body)
	agentsOrder1 := []string{"GPTBot", "CCBot", "Other"}
	agentsOrder2 := []string{"Other", "CCBot", "GPTBot"}
	res1 := map[string]Level{}
	for _, ua := range agentsOrder1 {
		res1[ua] = a.Restriction(ua)
	}
	res2 := map[string]Level{}
	for _, ua := range agentsOrder2 {
		res2[ua] = b.Restriction(ua)
	}
	for ua, lvl := range res1 {
		if res2[ua] != lvl {
			t.Errorf("%s: %v vs %v depending on query order", ua, lvl, res2[ua])
		}
	}
	if res1["GPTBot"] != PartiallyDisallowed {
		t.Errorf("GPTBot = %v, want partial (allow carve-out merged from second group)", res1["GPTBot"])
	}
	if res1["CCBot"] != FullyDisallowed {
		t.Errorf("CCBot = %v, want full", res1["CCBot"])
	}
}
