package robots

import "fmt"

// WarningCode identifies a class of robots.txt authoring problem.
type WarningCode int

const (
	// WarnUnknownDirective flags a directive key that is neither standard
	// nor a recognized extension — one of the paper's ~1% "mistakes".
	WarnUnknownDirective WarningCode = iota
	// WarnRuleOutsideGroup flags an Allow/Disallow with no preceding
	// User-agent line; compliant parsers discard such rules.
	WarnRuleOutsideGroup
	// WarnPathNotAbsolute flags a rule path that does not begin with '/'
	// or a wildcard — the other canonical mistake the paper reports.
	WarnPathNotAbsolute
	// WarnEmptyUserAgent flags "User-agent:" with no value.
	WarnEmptyUserAgent
	// WarnMissingColon flags a non-empty line with no key:value separator.
	WarnMissingColon
	// WarnNonCanonicalKey flags accepted spellings like "useragent".
	WarnNonCanonicalKey
	// WarnDirectiveTypo flags accepted misspellings like "dissallow".
	WarnDirectiveTypo
	// WarnCrawlDelay flags use of the non-standard Crawl-delay directive,
	// which RFC 9309-compliant parsers ignore (App. B.2 case 3).
	WarnCrawlDelay
	// WarnTruncated flags input longer than MaxSize.
	WarnTruncated
)

// String returns a short identifier for the code.
func (c WarningCode) String() string {
	switch c {
	case WarnUnknownDirective:
		return "unknown-directive"
	case WarnRuleOutsideGroup:
		return "rule-outside-group"
	case WarnPathNotAbsolute:
		return "path-not-absolute"
	case WarnEmptyUserAgent:
		return "empty-user-agent"
	case WarnMissingColon:
		return "missing-colon"
	case WarnNonCanonicalKey:
		return "non-canonical-key"
	case WarnDirectiveTypo:
		return "directive-typo"
	case WarnCrawlDelay:
		return "crawl-delay-used"
	case WarnTruncated:
		return "truncated"
	default:
		return "unknown"
	}
}

// Warning is one problem found while parsing.
type Warning struct {
	// Line is the 1-based line number of the problem.
	Line int
	// Code classifies the problem.
	Code WarningCode
	// Detail is the offending key, value or line fragment.
	Detail string
}

// String formats the warning as "line N: code (detail)".
func (w Warning) String() string {
	if w.Detail == "" {
		return fmt.Sprintf("line %d: %s", w.Line, w.Code)
	}
	return fmt.Sprintf("line %d: %s (%q)", w.Line, w.Code, w.Detail)
}

// IsMistake reports whether the warning is an authoring mistake in the
// paper's sense (§8.1: "not starting a path with '/' or using non-existent
// directives"), as opposed to tolerated legacy usage like Crawl-delay.
func (w Warning) IsMistake() bool {
	switch w.Code {
	case WarnUnknownDirective, WarnPathNotAbsolute, WarnRuleOutsideGroup,
		WarnMissingColon, WarnEmptyUserAgent, WarnDirectiveTypo:
		return true
	default:
		return false
	}
}

func (rb *Robots) warn(line int, code WarningCode, detail string) {
	rb.Warnings = append(rb.Warnings, Warning{Line: line, Code: code, Detail: detail})
}

// HasMistakes reports whether the file contains at least one authoring
// mistake per Warning.IsMistake.
func (rb *Robots) HasMistakes() bool {
	for _, w := range rb.Warnings {
		if w.IsMistake() {
			return true
		}
	}
	return false
}

// LintReport summarizes the problems in one robots.txt file.
type LintReport struct {
	// Warnings are all problems in source order.
	Warnings []Warning
	// Mistakes counts warnings that qualify as authoring mistakes.
	Mistakes int
	// Groups and Rules count the parsed structure, as a sanity signal.
	Groups int
	Rules  int
}

// Lint parses body and returns a report of its problems.
func Lint(body string) LintReport {
	rb := ParseString(body)
	rep := LintReport{Warnings: rb.Warnings, Groups: len(rb.Groups)}
	for _, g := range rb.Groups {
		rep.Rules += len(g.Rules)
	}
	for _, w := range rb.Warnings {
		if w.IsMistake() {
			rep.Mistakes++
		}
	}
	return rep
}
