package robots

import "sort"

// ChangeKind classifies one agent's restriction change between two
// versions of a robots.txt file.
type ChangeKind int

const (
	// Added: the agent is explicitly restricted in the new version only.
	Added ChangeKind = iota
	// Removed: the agent lost its explicit restriction (the §3.3
	// licensing-deal signature).
	Removed
	// Tightened: the restriction level rose (partial → full).
	Tightened
	// Loosened: the restriction level fell (full → partial).
	Loosened
	// NowAllowed: the agent gained an explicit blanket Allow (§3.4).
	NowAllowed
)

// String names the change.
func (k ChangeKind) String() string {
	switch k {
	case Added:
		return "restriction added"
	case Removed:
		return "restriction removed"
	case Tightened:
		return "restriction tightened"
	case Loosened:
		return "restriction loosened"
	case NowAllowed:
		return "explicitly allowed"
	default:
		return "unknown"
	}
}

// Change is one agent-level difference between two robots.txt versions.
type Change struct {
	// Agent is the product token affected (lowercased).
	Agent string
	Kind  ChangeKind
	// From and To are the explicit restriction levels before and after
	// (Unrestricted when the agent was not explicitly named).
	From, To Level
}

// Diff compares two parsed robots.txt files and reports per-agent
// explicit-restriction changes, sorted by agent. It considers every agent
// named in either version; wildcard-only changes are not agent changes.
//
// This is the primitive behind the paper's §3.3 removal analysis: a
// publisher striking a licensing deal shows up as Removed changes for the
// OpenAI tokens with the rest of the file untouched.
func Diff(before, after *Robots) []Change {
	levels := func(rb *Robots) map[string]Level {
		m := make(map[string]Level)
		for _, tok := range rb.AgentTokens() {
			if lvl, explicit := rb.ExplicitRestriction(tok); explicit {
				m[lower(tok)] = lvl
			} else {
				m[lower(tok)] = Unrestricted
			}
		}
		return m
	}
	allowed := func(rb *Robots) map[string]bool {
		m := make(map[string]bool)
		for _, tok := range rb.AgentTokens() {
			if rb.ExplicitlyAllows(tok) {
				m[lower(tok)] = true
			}
		}
		return m
	}
	beforeLvl, afterLvl := levels(before), levels(after)
	beforeAllow, afterAllow := allowed(before), allowed(after)

	agentSet := make(map[string]bool, len(beforeLvl)+len(afterLvl))
	for a := range beforeLvl {
		agentSet[a] = true
	}
	for a := range afterLvl {
		agentSet[a] = true
	}

	var out []Change
	for agent := range agentSet {
		b, bOK := beforeLvl[agent]
		a, aOK := afterLvl[agent]
		if !bOK {
			b = Unrestricted
		}
		if !aOK {
			a = Unrestricted
		}
		switch {
		case !beforeAllow[agent] && afterAllow[agent]:
			out = append(out, Change{Agent: agent, Kind: NowAllowed, From: b, To: a})
		case !b.Restricted() && a.Restricted():
			out = append(out, Change{Agent: agent, Kind: Added, From: b, To: a})
		case b.Restricted() && !a.Restricted():
			out = append(out, Change{Agent: agent, Kind: Removed, From: b, To: a})
		case b == PartiallyDisallowed && a == FullyDisallowed:
			out = append(out, Change{Agent: agent, Kind: Tightened, From: b, To: a})
		case b == FullyDisallowed && a == PartiallyDisallowed:
			out = append(out, Change{Agent: agent, Kind: Loosened, From: b, To: a})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Agent < out[j].Agent })
	return out
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
