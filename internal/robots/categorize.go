package robots

import "repro/internal/useragent"

// Level is the paper's four-way classification of how a robots.txt file
// restricts a given crawler (§2.2).
type Level int

const (
	// NoRobotsFile means the site serves no robots.txt. The parser never
	// produces this level itself; callers that know a fetch failed use it.
	NoRobotsFile Level = iota
	// Unrestricted means the crawler may access every path.
	Unrestricted
	// PartiallyDisallowed means some but not all paths are blocked.
	PartiallyDisallowed
	// FullyDisallowed means the crawler may access no path at all.
	FullyDisallowed
)

// String returns the paper's wording for the level.
func (l Level) String() string {
	switch l {
	case NoRobotsFile:
		return "no robots.txt"
	case Unrestricted:
		return "no restrictions"
	case PartiallyDisallowed:
		return "partially disallowed"
	case FullyDisallowed:
		return "fully disallowed"
	default:
		return "unknown"
	}
}

// Restricted reports whether the level blocks at least one path.
func (l Level) Restricted() bool {
	return l == PartiallyDisallowed || l == FullyDisallowed
}

// probePaths is a small representative set used to confirm full
// disallowance beyond the root path check.
var probePaths = []string{
	"/", "/index.html", "/about", "/images/art.png", "/blog/2024/post?id=1",
}

// Restriction classifies how this robots.txt restricts the crawler ua,
// considering wildcard groups as well as explicit ones.
//
// The classification follows the paper's wrapper around Google's parser:
// a crawler is fully disallowed when the effective rules deny every path;
// partially disallowed when at least one non-empty Disallow pattern exists
// but some path remains reachable; unrestricted otherwise.
func (rb *Robots) Restriction(ua string) Level {
	return classify(rb.Agent(ua))
}

// ExplicitRestriction classifies the restriction imposed on ua only by
// groups that explicitly name its product token. The boolean reports
// whether such a group exists; when it is false the level is Unrestricted.
//
// The paper's longitudinal analysis (§3.1) counts a site as disallowing an
// AI crawler only under this explicit notion, so that sites with a blanket
// "User-agent: *; Disallow: /" are not counted as expressing AI-specific
// intent.
func (rb *Robots) ExplicitRestriction(ua string) (Level, bool) {
	acc := rb.Agent(ua)
	if !acc.Explicit {
		return Unrestricted, false
	}
	return classify(acc), true
}

func classify(acc Access) Level {
	if !acc.HasRules() {
		return Unrestricted
	}
	hasDisallow := false
	hasUsableAllow := false
	for _, r := range acc.rules {
		if r.Path == "" {
			continue
		}
		if r.Allow {
			hasUsableAllow = true
		} else {
			hasDisallow = true
		}
	}
	if !hasDisallow {
		return Unrestricted
	}
	if !hasUsableAllow {
		rootDenied := !acc.Allowed("/")
		if rootDenied {
			allDenied := true
			for _, p := range probePaths {
				if acc.Allowed(p) {
					allDenied = false
					break
				}
			}
			if allDenied {
				return FullyDisallowed
			}
		}
		return PartiallyDisallowed
	}
	// Allow rules exist: some path may be reachable. Verify with probes —
	// if even the probes are all denied we still call it partial, since an
	// allow rule expresses intent to leave something open.
	return PartiallyDisallowed
}

// ExplicitlyAllows reports whether the robots.txt contains a group that
// names ua's product token and allows it everything (an explicit
// invitation such as "User-agent: GPTBot / Allow: /" — §3.4 of the paper).
func (rb *Robots) ExplicitlyAllows(ua string) bool {
	token := useragent.ExtractToken(ua)
	for _, g := range rb.Groups {
		named := false
		for _, a := range g.Agents {
			if useragent.EqualToken(useragent.ExtractToken(a), token) {
				named = true
				break
			}
		}
		if !named {
			continue
		}
		for _, r := range g.Rules {
			if r.Allow && (r.Path == "/" || r.Path == "/*" || r.Path == "*") {
				// The allow must not be negated by a disallow in scope.
				if rb.Agent(token).Allowed("/") {
					return true
				}
			}
		}
	}
	return false
}

// WildcardFullDisallow reports whether the file blocks all crawlers via a
// catch-all group ("User-agent: *; Disallow: /"). The paper excludes such
// sites (<2% of the Stable Top 100k) from AI-specific intent counts.
func (rb *Robots) WildcardFullDisallow() bool {
	for _, g := range rb.Groups {
		wild := false
		for _, a := range g.Agents {
			if useragent.IsWildcard(a) {
				wild = true
				break
			}
		}
		if !wild {
			continue
		}
		for _, r := range g.Rules {
			if !r.Allow && (r.Path == "/" || r.Path == "/*") {
				return true
			}
		}
	}
	return false
}
