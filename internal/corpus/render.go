package corpus

import (
	"sort"

	"repro/internal/robots"
)

// SiteState is a site's effective AI-crawler policy at one snapshot,
// produced by folding the event timeline.
type SiteState struct {
	// Full maps agent tokens that are explicitly fully disallowed.
	Full map[string]bool
	// Partial maps agents with an explicit partial restriction.
	Partial map[string]bool
	// Allowed maps agents with an explicit "Allow: /" invitation.
	Allowed map[string]bool
}

// Restricted reports whether any agent is explicitly restricted.
func (st SiteState) Restricted() bool { return len(st.Full)+len(st.Partial) > 0 }

// StateAt folds the site's events up to and including snapshot k.
func (c *Corpus) StateAt(s *Site, k int) SiteState {
	st := SiteState{
		Full:    make(map[string]bool),
		Partial: make(map[string]bool),
		Allowed: make(map[string]bool),
	}
	for _, e := range s.Events {
		if e.Snap > k {
			break
		}
		switch e.Kind {
		case EventAddRestriction:
			for _, a := range e.Agents {
				delete(st.Allowed, a)
				if e.Full {
					delete(st.Partial, a)
					st.Full[a] = true
				} else if !st.Full[a] {
					st.Partial[a] = true
				}
			}
		case EventRemoveRestriction:
			if len(e.Agents) == 0 {
				st.Full = make(map[string]bool)
				st.Partial = make(map[string]bool)
			} else {
				for _, a := range e.Agents {
					delete(st.Full, a)
					delete(st.Partial, a)
				}
			}
		case EventExplicitAllow:
			for _, a := range e.Agents {
				delete(st.Full, a)
				delete(st.Partial, a)
				st.Allowed[a] = true
			}
		}
	}
	return st
}

// RobotsBody renders the robots.txt the site serves at snapshot k. The
// longitudinal analysis parses these bodies back with internal/robots;
// generation and measurement only meet at the rendered text.
func (c *Corpus) RobotsBody(s *Site, k int) string {
	st := c.StateAt(s, k)
	b := robots.NewBuilder()
	b.Comment("robots.txt for " + s.Domain)

	if s.wildcardFull {
		b.Group("*").DisallowAll()
	} else {
		g := b.Group("*")
		switch s.genericGroups {
		case 0:
			g.Disallow("/admin/")
		case 1:
			g.Disallow("/admin/", "/search")
		default:
			g.Disallow("/admin/", "/cgi-bin/", "/tmp/")
		}
		if s.hasCrawlDelay {
			// The deprecated Crawl-Delay extension some sites still carry;
			// compliant parsers record and ignore it (App. B.2 case 3).
			g.CrawlDelay("10")
		}
		if s.hasMistake {
			// The two canonical authoring mistakes from §8.1: a relative
			// path and a non-existent directive.
			g.Disallow("images/private")
			b.Raw("Noai: true")
		}
	}

	if full := sortedKeys(st.Full); len(full) > 0 {
		b.Group(full...).DisallowAll()
	}
	for _, a := range sortedKeys(st.Partial) {
		b.Group(a).Disallow("/images/", "/gallery/")
	}
	if allowed := sortedKeys(st.Allowed); len(allowed) > 0 {
		b.Group(allowed...).AllowAll()
	}

	if s.hasSitemap {
		b.Blank()
		b.Sitemap("https://" + s.Domain + "/sitemap.xml")
	}
	return b.String()
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
