package corpus

import (
	"context"
	"strings"
	"testing"

	"repro/internal/robots"
)

func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := New(context.Background(), Config{Seed: 11, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestParallelGenerationIdentical locks down the engine guarantee that a
// corpus is bit-identical for every worker count: all randomness comes
// from per-site forks derived in a fixed sequential order.
func TestParallelGenerationIdentical(t *testing.T) {
	ctx := context.Background()
	base, err := New(ctx, Config{Seed: 11, Scale: 0.05, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		c, err := New(ctx, Config{Seed: 11, Scale: 0.05, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Sites()) != len(base.Sites()) {
			t.Fatalf("workers=%d: %d sites, want %d", workers, len(c.Sites()), len(base.Sites()))
		}
		last := len(Snapshots) - 1
		for i, s := range c.Sites() {
			b := base.Sites()[i]
			if s.Domain != b.Domain || s.Top5k != b.Top5k {
				t.Fatalf("workers=%d: site %d = %s/%v, want %s/%v",
					workers, i, s.Domain, s.Top5k, b.Domain, b.Top5k)
			}
			if got, want := c.RobotsBody(s, last), base.RobotsBody(b, last); got != want {
				t.Fatalf("workers=%d: %s robots.txt diverges:\n%s\n--- want ---\n%s",
					workers, s.Domain, got, want)
			}
		}
	}
}

func TestGenerationCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(ctx, Config{Seed: 11, Scale: 0.05}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSnapshotTable(t *testing.T) {
	if len(Snapshots) != 15 {
		t.Fatalf("snapshots = %d, want 15 (Table 3)", len(Snapshots))
	}
	for i := 1; i < len(Snapshots); i++ {
		if !Snapshots[i-1].Date.Before(Snapshots[i].Date) {
			t.Errorf("snapshot dates not increasing at %d", i)
		}
	}
	// Table 3 totals from the paper.
	if Snapshots[0].TargetSites != 40177 || Snapshots[0].TargetRobots != 31494 {
		t.Error("first snapshot targets wrong")
	}
	if Snapshots[14].ID != "2024-42" || Snapshots[14].TargetSites != 40420 {
		t.Error("last snapshot targets wrong")
	}
	if SnapshotIndex("2023-40") != 5 {
		t.Errorf("2023-40 index = %d, want 5 (GPTBot announcement)", SnapshotIndex("2023-40"))
	}
	if SnapshotIndex("nope") != -1 {
		t.Error("unknown snapshot must be -1")
	}
	if GPTBotAnnouncedIndex != SnapshotIndex("2023-40") {
		t.Error("announcement index constant out of sync")
	}
	if EUAIActIndex != SnapshotIndex("2024-33") {
		t.Error("EU AI Act index constant out of sync")
	}
}

func TestTable4Data(t *testing.T) {
	if len(Table4) != 78 {
		t.Fatalf("Table 4 rows = %d, want 78", len(Table4))
	}
	seen := map[string]bool{}
	for _, r := range Table4 {
		if seen[r.Domain] {
			t.Errorf("duplicate Table 4 domain %s", r.Domain)
		}
		seen[r.Domain] = true
		if SnapshotIndex(r.FirstSeen) < 0 {
			t.Errorf("%s: unknown snapshot %s", r.Domain, r.FirstSeen)
		}
	}
	// Five persistent allowers since GPTBot's release (§ B.3).
	early := 0
	for _, r := range Table4 {
		if idx := SnapshotIndex(r.FirstSeen); idx <= SnapshotIndex("2023-50") {
			early++
		}
	}
	if early != 5 {
		t.Errorf("early allowers = %d, want 5 (nfhs, 10best, ground, network54, tarleton)", early)
	}
}

func TestDealsData(t *testing.T) {
	if len(Deals) != 6 {
		t.Fatalf("deals = %d, want 6", len(Deals))
	}
	for _, d := range Deals {
		if SnapshotIndex(d.EffectiveSnapshot) < 0 {
			t.Errorf("%s: bad snapshot %s", d.Publisher, d.EffectiveSnapshot)
		}
		if len(d.Domains) == 0 {
			t.Errorf("%s: no domains", d.Publisher)
		}
	}
	// Vox Media's explicit-allow domains must all be Table 4 rows.
	t4 := map[string]bool{}
	for _, r := range Table4 {
		t4[r.Domain] = true
	}
	for _, d := range Deals {
		if !d.ExplicitAllow {
			continue
		}
		for _, dom := range d.Domains {
			if !t4[dom] {
				t.Errorf("%s: explicit-allow domain %s missing from Table 4", d.Publisher, dom)
			}
		}
	}
	// Future PLC is the suspected private deal.
	for _, d := range Deals {
		if d.Publisher == "Future PLC" && d.Public {
			t.Error("Future PLC must be non-public (§3.3)")
		}
	}
}

func TestCorpusConstruction(t *testing.T) {
	c := testCorpus(t)
	if len(c.Sites()) == 0 {
		t.Fatal("no sites")
	}
	// Top tier first.
	for i, s := range c.Sites() {
		if (i < c.Top5kCount()) != s.Top5k {
			t.Fatalf("site %d top5k flag inconsistent with ordering", i)
		}
	}
	// All pinned domains present.
	for _, d := range PinnedDomains() {
		if _, ok := c.SiteByDomain(d); !ok {
			t.Errorf("pinned domain %s missing", d)
		}
	}
	if c.NonRobotsCount() == 0 {
		t.Error("non-robots population missing")
	}
}

func TestCorpusDeterminism(t *testing.T) {
	c1 := testCorpus(t)
	c2 := testCorpus(t)
	if len(c1.Sites()) != len(c2.Sites()) {
		t.Fatal("site counts differ")
	}
	for i := range c1.Sites() {
		s1, s2 := c1.Sites()[i], c2.Sites()[i]
		if s1.Domain != s2.Domain || len(s1.Events) != len(s2.Events) {
			t.Fatalf("site %d differs between identical-seed corpora", i)
		}
	}
	s := c1.Sites()[len(c1.Sites())/2]
	if c1.RobotsBody(s, 14) != c2.RobotsBody(c2.Sites()[len(c2.Sites())/2], 14) {
		t.Fatal("rendered bodies differ")
	}
}

func TestRenderedBodiesParse(t *testing.T) {
	c := testCorpus(t)
	mistakes, total := 0, 0
	for _, s := range c.Sites()[:200] {
		body := c.RobotsBody(s, 14)
		rep := robots.Lint(body)
		total++
		if rep.Mistakes > 0 {
			mistakes++
			if !s.hasMistake {
				t.Errorf("%s: unexpected lint mistakes: %v", s.Domain, rep.Warnings)
			}
		} else if s.hasMistake {
			t.Errorf("%s: mistake trait not rendered", s.Domain)
		}
		if rep.Groups == 0 {
			t.Errorf("%s: rendered body has no groups", s.Domain)
		}
	}
	if mistakes == total {
		t.Error("every file has mistakes; injection rate broken")
	}
}

func TestVoxDealTimeline(t *testing.T) {
	c := testCorpus(t)
	s, ok := c.SiteByDomain("vox.com")
	if !ok {
		t.Fatal("vox.com missing")
	}
	// Before the deal: GPTBot fully disallowed (from the surge snapshot).
	body := c.RobotsBody(s, 8)
	rb := robots.ParseString(body)
	if lvl, explicit := rb.ExplicitRestriction("GPTBot"); !explicit || lvl != robots.FullyDisallowed {
		t.Errorf("pre-deal vox.com GPTBot = %v explicit=%v, want fully disallowed", lvl, explicit)
	}
	// After the deal (snapshot 14 = 2024-42): explicit allow.
	body = c.RobotsBody(s, 14)
	rb = robots.ParseString(body)
	if !rb.ExplicitlyAllows("GPTBot") {
		t.Errorf("post-deal vox.com must explicitly allow GPTBot:\n%s", body)
	}
}

func TestEarlyAllowerTimeline(t *testing.T) {
	c := testCorpus(t)
	s, ok := c.SiteByDomain("nfhs.org")
	if !ok {
		t.Fatal("nfhs.org missing")
	}
	// First seen at 2023-40 (index 5) and persistent through the end.
	for k := 5; k <= 14; k++ {
		rb := robots.ParseString(c.RobotsBody(s, k))
		if !rb.ExplicitlyAllows("GPTBot") {
			t.Errorf("nfhs.org must allow GPTBot at snapshot %d", k)
		}
	}
	rb := robots.ParseString(c.RobotsBody(s, 4))
	if rb.ExplicitlyAllows("GPTBot") {
		t.Error("nfhs.org must not allow GPTBot before its first-seen snapshot")
	}
}

func TestStackExchangeRemoval(t *testing.T) {
	c := testCorpus(t)
	s, ok := c.SiteByDomain("stackoverflow.com")
	if !ok {
		t.Fatal("stackoverflow.com missing")
	}
	dealIdx := SnapshotIndex("2024-22")
	rb := robots.ParseString(c.RobotsBody(s, dealIdx-1))
	if _, explicit := rb.ExplicitRestriction("GPTBot"); !explicit {
		t.Error("stackoverflow must restrict GPTBot before the deal")
	}
	if _, explicit := rb.ExplicitRestriction("ChatGPT-User"); !explicit {
		t.Error("stackoverflow must restrict ChatGPT-User before the deal")
	}
	rb = robots.ParseString(c.RobotsBody(s, dealIdx))
	if _, explicit := rb.ExplicitRestriction("GPTBot"); explicit {
		t.Error("stackoverflow must drop the GPTBot restriction at the deal")
	}
	if _, explicit := rb.ExplicitRestriction("ChatGPT-User"); explicit {
		t.Error("the deal removes both OpenAI agents")
	}
}

func TestStateFoldingSemantics(t *testing.T) {
	c := testCorpus(t)
	s := &Site{Domain: "fold.test", Events: []Event{
		{Snap: 1, Kind: EventAddRestriction, Agents: []string{"GPTBot"}, Full: true},
		{Snap: 2, Kind: EventAddRestriction, Agents: []string{"CCBot"}, Full: false},
		{Snap: 3, Kind: EventExplicitAllow, Agents: []string{"GPTBot"}},
		{Snap: 4, Kind: EventRemoveRestriction},
	}}
	st := c.StateAt(s, 0)
	if st.Restricted() {
		t.Error("no events yet at snapshot 0")
	}
	st = c.StateAt(s, 2)
	if !st.Full["GPTBot"] || !st.Partial["CCBot"] {
		t.Errorf("state at 2 = %+v", st)
	}
	st = c.StateAt(s, 3)
	if st.Full["GPTBot"] || !st.Allowed["GPTBot"] {
		t.Error("allow must clear the restriction")
	}
	st = c.StateAt(s, 4)
	if st.Restricted() {
		t.Error("remove-all must clear restrictions")
	}
	if !st.Allowed["GPTBot"] {
		t.Error("remove-restriction must not clear explicit allows")
	}
}

func TestPartialDoesNotDowngradeFull(t *testing.T) {
	c := testCorpus(t)
	s := &Site{Domain: "x.test", Events: []Event{
		{Snap: 0, Kind: EventAddRestriction, Agents: []string{"GPTBot"}, Full: true},
		{Snap: 1, Kind: EventAddRestriction, Agents: []string{"GPTBot"}, Full: false},
	}}
	st := c.StateAt(s, 1)
	if !st.Full["GPTBot"] || st.Partial["GPTBot"] {
		t.Error("a later partial event must not downgrade a full restriction")
	}
}

func TestPresenceCounts(t *testing.T) {
	c := testCorpus(t)
	for k := range Snapshots {
		sites, robotsN := c.PresenceCounts(k)
		if robotsN > sites {
			t.Fatalf("snapshot %d: robots %d > sites %d", k, robotsN, sites)
		}
		if robotsN > len(c.Sites()) {
			t.Fatalf("snapshot %d: robots %d exceeds population", k, robotsN)
		}
		if sites == 0 {
			t.Fatalf("snapshot %d: no sites present", k)
		}
	}
	if s, r := c.PresenceCounts(-1); s != 0 || r != 0 {
		t.Error("out-of-range snapshot must be empty")
	}
}

func TestScaledPopulations(t *testing.T) {
	c := testCorpus(t) // scale 0.05
	scale := 0.05
	wantTop := int(float64(PaperTop5kPopulation)*scale + 0.5)
	if got := c.Top5kCount(); got != wantTop {
		t.Errorf("top5k = %d, want %d", got, wantTop)
	}
	// Other population: scaled target plus pinned publisher domains.
	wantOther := int(float64(PaperOtherPopulation)*scale + 0.5)
	got := len(c.Sites()) - c.Top5kCount()
	if got < wantOther || got > wantOther+len(PinnedDomains()) {
		t.Errorf("other population = %d, want within [%d, %d]",
			got, wantOther, wantOther+len(PinnedDomains()))
	}
}

func TestInvalidScale(t *testing.T) {
	if _, err := New(context.Background(), Config{Seed: 1, Scale: -1}); err == nil {
		t.Fatal("negative scale must be rejected")
	}
}

func TestEventOrdering(t *testing.T) {
	c := testCorpus(t)
	for _, s := range c.Sites() {
		for i := 1; i < len(s.Events); i++ {
			if s.Events[i-1].Snap > s.Events[i].Snap {
				t.Fatalf("%s: events out of order", s.Domain)
			}
		}
	}
}

// Property: the rendered robots.txt always parses back to exactly the
// folded event state — generation and measurement agree at the protocol
// surface for every site and snapshot.
func TestRenderStateConsistency(t *testing.T) {
	c := testCorpus(t)
	sites := c.Sites()
	step := len(sites)/150 + 1
	for i := 0; i < len(sites); i += step {
		s := sites[i]
		for _, k := range []int{0, 5, 9, 14} {
			st := c.StateAt(s, k)
			rb := robots.ParseString(c.RobotsBody(s, k))
			for ua := range st.Full {
				lvl, explicit := rb.ExplicitRestriction(ua)
				if !explicit || lvl != robots.FullyDisallowed {
					t.Fatalf("%s@%d: %s state=full, parsed=%v explicit=%v",
						s.Domain, k, ua, lvl, explicit)
				}
			}
			for ua := range st.Partial {
				lvl, explicit := rb.ExplicitRestriction(ua)
				if !explicit || lvl != robots.PartiallyDisallowed {
					t.Fatalf("%s@%d: %s state=partial, parsed=%v explicit=%v",
						s.Domain, k, ua, lvl, explicit)
				}
			}
			for ua := range st.Allowed {
				if !rb.ExplicitlyAllows(ua) {
					t.Fatalf("%s@%d: %s state=allowed, parser disagrees", s.Domain, k, ua)
				}
			}
			// And nothing extra: every explicitly restricted Table-1 token
			// in the parse exists in the state.
			for _, tok := range rb.AgentTokens() {
				if lvl, explicit := rb.ExplicitRestriction(tok); explicit && lvl.Restricted() {
					if !st.Full[canonicalAgent(tok)] && !st.Partial[canonicalAgent(tok)] {
						t.Fatalf("%s@%d: parsed restriction for %s not in state", s.Domain, k, tok)
					}
				}
			}
		}
	}
}

// canonicalAgent maps a parsed token back to the event-state agent name.
func canonicalAgent(tok string) string {
	for _, a := range []string{
		"GPTBot", "CCBot", "Google-Extended", "ChatGPT-User", "anthropic-ai",
		"ClaudeBot", "Claude-Web", "PerplexityBot", "Bytespider", "omgili",
		"FacebookBot", "Amazonbot", "cohere-ai", "Diffbot", "Applebot-Extended",
		"Meta-ExternalAgent", "Meta-ExternalFetcher", "Timpibot", "YouBot",
		"Applebot", "AI2Bot", "Kangaroo Bot", "OAI-SearchBot", "Webzio-Extended",
	} {
		if strings.EqualFold(a, tok) || strings.EqualFold(strings.Split(a, " ")[0], tok) {
			return a
		}
	}
	return tok
}

// TestCorpusRobotsBodiesCollapseInParseCache proves the normalized parse
// cache key on real corpus renderings: bodies are unique per site only
// because of the per-domain comment and Sitemap lines, so a fresh cache
// fed every site's robots.txt at one snapshot must collapse them to the
// underlying policy templates — orders of magnitude fewer entries than
// sites — with the hit-rate counter showing the dedup.
func TestCorpusRobotsBodiesCollapseInParseCache(t *testing.T) {
	c, err := New(context.Background(), Config{Seed: 5, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cache := robots.NewCache(0)
	k := len(Snapshots) - 1
	sites := c.Sites()
	for _, s := range sites {
		cache.Parse(c.RobotsBody(s, k))
	}
	st := cache.Stats()
	if int(st.Hits+st.Misses) != len(sites) {
		t.Fatalf("counter mismatch: %d lookups for %d sites", st.Hits+st.Misses, len(sites))
	}
	// Template diversity grows sublinearly with population (it is the set
	// of distinct agent-combination × path-set policies), so the collapse
	// factor improves with scale; at this test's 0.05 scale ~250
	// templates cover ~2k sites, the ROADMAP's "few hundred templates"
	// at 40k-site full scale.
	if st.Entries*5 > len(sites) {
		t.Fatalf("normalized key left %d entries for %d sites; want at least 5x collapse",
			st.Entries, len(sites))
	}
	if rate := st.HitRate(); rate < 0.85 {
		t.Fatalf("hit rate = %.3f over %d sites, want ≥ 0.85", rate, len(sites))
	}
	t.Logf("%d sites -> %d cached templates, hit rate %.3f", len(sites), st.Entries, st.HitRate())

	// The cached parse must agree with a verbatim parse on the decisions
	// the analyses make: explicit restriction of every Table-1-ish agent
	// at the root and at a partial-restriction path.
	for _, s := range sites[:50] {
		body := c.RobotsBody(s, k)
		cached, direct := cache.Parse(body), robots.ParseString(body)
		for _, agent := range []string{"GPTBot", "CCBot", "ClaudeBot", "Googlebot", "Bytespider"} {
			for _, path := range []string{"/", "/images/pic.png", "/admin/x"} {
				if got, want := cached.Allowed(agent, path), direct.Allowed(agent, path); got != want {
					t.Fatalf("site %s agent %s path %s: cached %v, direct %v",
						s.Domain, agent, path, got, want)
				}
			}
		}
	}
}
