// Package corpus is the Common-Crawl-like substrate for the paper's §3
// longitudinal analysis: a deterministic, generative model of how the
// robots.txt files of the Stable Top 100k sites evolved across fifteen
// snapshots from October 2022 to October 2024.
//
// The original study downloads historic robots.txt files from Common
// Crawl; that archive is not reachable from this environment, so the
// corpus synthesizes per-site robots.txt timelines whose event structure
// is calibrated to everything the paper reports: the adoption surge after
// OpenAI announced GPTBot (Aug 2023), the EU-AI-Act uptick (Aug 2024),
// publisher licensing-deal removals (§3.3, with the publishers and dates
// the paper names), the explicit-allow population of Table 4 (pinned
// domain by domain), authoring-mistake rates (~1%, §8.1), and blanket
// wildcard-disallow sites (<2%, §3.1). The longitudinal analysis then
// *parses the rendered files* — generation and measurement meet only at
// robots.txt text, exactly as they would on real Common Crawl data.
package corpus

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/agents"
	"repro/internal/par"
	"repro/internal/ranking"
	"repro/internal/stats"
)

// Population constants from the paper (§3.1).
const (
	// PaperStablePopulation is the number of consistently popular sites.
	PaperStablePopulation = 51_605
	// PaperRobotsPopulation is the analysis population: stable sites with
	// robots.txt data in every snapshot.
	PaperRobotsPopulation = 40_455
	// PaperTop5kPopulation is the Stable Top 5k analysis population.
	PaperTop5kPopulation = 2_551
	// PaperOtherPopulation is the non-top-tier analysis population.
	PaperOtherPopulation = PaperRobotsPopulation - PaperTop5kPopulation // 37,904
)

// Config parameterizes corpus generation.
type Config struct {
	// Seed drives all randomness; 0 means stats.DefaultSeed.
	Seed int64
	// Scale multiplies every population size; 0 means 1.0 (full scale:
	// 40,455 analysis sites). Use ~0.05 in unit tests.
	Scale float64
	// Workers bounds generation concurrency; 0 means GOMAXPROCS. The
	// generated corpus is bit-identical for every worker count: each
	// site's randomness comes from its own fork, and forks are derived
	// sequentially before the parallel sampling passes.
	Workers int
}

func (c *Config) fillDefaults() {
	if c.Seed == 0 {
		c.Seed = stats.DefaultSeed
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// EventKind is the type of a robots.txt timeline event.
type EventKind int

const (
	// EventAddRestriction adds Disallow rules for a set of AI agents.
	EventAddRestriction EventKind = iota
	// EventRemoveRestriction deletes rules for a set of agents (nil set =
	// all AI agents), as after a licensing deal.
	EventRemoveRestriction
	// EventExplicitAllow adds an explicit "Allow: /" group for agents.
	EventExplicitAllow
)

// Event is one change to a site's robots.txt, effective from snapshot
// index Snap onward.
type Event struct {
	Snap   int
	Kind   EventKind
	Agents []string
	// Full marks add events that fully disallow (vs a partial path rule).
	Full bool
}

// Site is one member of the analysis population.
type Site struct {
	// Domain is the site's name; pinned publisher domains match Table 4.
	Domain string
	// Top5k marks membership in the Stable Top 5k tier.
	Top5k bool
	// Events is the site's robots.txt timeline, sorted by snapshot.
	Events []Event

	// Base-content traits, fixed for the whole window.
	wildcardFull  bool
	hasMistake    bool
	hasSitemap    bool
	hasCrawlDelay bool
	genericGroups int
}

// Corpus is the generated snapshot store.
type Corpus struct {
	cfg       Config
	sites     []*Site
	byDomain  map[string]*Site
	top5k     int
	nonRobots []string // stable sites without a robots.txt trait
}

// adoption targets: cumulative fraction of each tier that has adopted at
// least one AI restriction by snapshot index. Calibrated so that the
// *fully disallowed* fraction (≈85% of adopters) reproduces Figure 2:
// a surge at snapshot 5 (first post-GPTBot-announcement snapshot), then
// 12–14% for the Stable Top 5k and 8–10% for the rest by late 2024.
var (
	adoptionTop5k = []float64{
		0.006, 0.007, 0.009, 0.014, 0.024, 0.135, 0.148, 0.156,
		0.160, 0.163, 0.165, 0.167, 0.170, 0.173, 0.176,
	}
	adoptionOther = []float64{
		0.005, 0.006, 0.007, 0.010, 0.017, 0.080, 0.089, 0.096,
		0.100, 0.103, 0.106, 0.108, 0.112, 0.115, 0.118,
	}
)

// agentWeight is the probability that a site adopting (or updating) AI
// restrictions includes each user agent, before announcement gating.
// Calibrated against Figure 3's per-agent adoption ordering.
var agentWeight = map[string]float64{
	"GPTBot":             0.80,
	"CCBot":              0.52,
	"Google-Extended":    0.40,
	"ChatGPT-User":       0.34,
	"anthropic-ai":       0.30,
	"ClaudeBot":          0.27,
	"Claude-Web":         0.25,
	"PerplexityBot":      0.21,
	"Bytespider":         0.20,
	"omgili":             0.16,
	"FacebookBot":        0.12,
	"Amazonbot":          0.09,
	"cohere-ai":          0.13,
	"Diffbot":            0.08,
	"Applebot-Extended":  0.07,
	"Meta-ExternalAgent": 0.06,
	"Timpibot":           0.04,
	"YouBot":             0.05,
}

// AdoptionCurve returns a copy of the calibrated cumulative adoption
// fractions for the given tier, indexed by snapshot (see Snapshots for
// the dates). The scenario engine resamples these onto its monthly
// virtual clock so counterfactual worlds share the observed world's
// policy-adoption distribution.
func AdoptionCurve(top5k bool) []float64 {
	src := adoptionOther
	if top5k {
		src = adoptionTop5k
	}
	return append([]float64(nil), src...)
}

const (
	fullShare          = 0.85  // adopters that fully (vs partially) disallow
	updateProb         = 0.22  // chance an adopter revisits its list per snapshot
	updateAgentFactor  = 0.50  // weight multiplier when updating
	euActUpdateBoost   = 2.0   // update-probability boost from EUAIActIndex on
	removalProbOther   = 0.011 // background removal hazard per snapshot
	removalProbTop5k   = 0.012 // top-tier background removals (Fig 2 dip)
	removalStartIdx    = 6     // background removals begin after the surge
	top5kRemovalIdx    = 11    // the late-window top-tier dip
	wildcardFullProb   = 0.018 // §3.1: <2% blanket-disallow sites
	mistakeProb        = 0.012 // §8.1: ~1% of files have mistakes
	crawlDelayProb     = 0.08  // deprecated Crawl-Delay usage (Sun et al. [108])
	extraAllowSites    = 30    // §3.4 background explicit allows (non-GPTBot)
	dealPriorRestrict  = 5     // deal domains restricted since the surge
	table4PriorRestr   = 0.5   // chance a Table-4 site had a prior restriction
	backgroundAllowUA1 = "CCBot"
	backgroundAllowUA2 = "Amazonbot"
)

// New generates the corpus. Generation runs on a cfg.Workers-bounded
// pool with cancellation checked between shards; the output is
// bit-identical for every worker count because all randomness is drawn
// from per-site forks derived in a fixed sequential order.
func New(ctx context.Context, cfg Config) (*Corpus, error) {
	cfg.fillDefaults()
	if cfg.Scale < 0 {
		return nil, fmt.Errorf("corpus: negative scale %v", cfg.Scale)
	}
	rn := stats.NewRand(cfg.Seed).Fork("corpus")

	scale := func(n int) int {
		v := int(float64(n)*cfg.Scale + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	nTop := scale(PaperTop5kPopulation)
	nOther := scale(PaperOtherPopulation)
	nNonRobots := scale(PaperStablePopulation - PaperRobotsPopulation)

	pinned := PinnedDomains()
	rcfg := ranking.Config{
		TopK:               scale(100_000),
		TopTier:            scale(5_000),
		StableCount:        scale(PaperStablePopulation),
		StableTopTierCount: nTop,
		RequiredStable:     pinned,
		Seed:               cfg.Seed,
	}
	model, err := ranking.NewModel(rcfg)
	if err != nil {
		return nil, fmt.Errorf("corpus: ranking model: %w", err)
	}

	c := &Corpus{cfg: cfg, byDomain: make(map[string]*Site)}

	top5kSet := make(map[string]bool)
	for _, d := range model.StableTopTier() {
		top5kSet[d] = true
	}
	pinnedSet := make(map[string]bool, len(pinned))
	for _, d := range pinned {
		pinnedSet[d] = true
	}

	// Partition the stable population: all of the top tier plus the pinned
	// publisher domains carry the robots.txt trait; the rest split between
	// robots-trait sites and no-robots sites.
	var robotsOthers, rest []string
	for _, d := range model.StableDomains() {
		switch {
		case top5kSet[d]:
			// handled below
		case pinnedSet[d]:
			robotsOthers = append(robotsOthers, d)
		default:
			rest = append(rest, d)
		}
	}
	need := nOther - len(robotsOthers)
	if need < 0 {
		need = 0
	}
	if need > len(rest) {
		need = len(rest)
	}
	// rest is sorted (StableDomains is sorted); take a deterministic
	// random subset for the robots trait.
	pick := rn.Fork("robots-trait").SampleWithoutReplacement(len(rest), need)
	sort.Ints(pick)
	picked := make(map[int]bool, len(pick))
	for _, i := range pick {
		picked[i] = true
	}
	for i, d := range rest {
		if picked[i] {
			robotsOthers = append(robotsOthers, d)
		} else if len(c.nonRobots) < nNonRobots {
			c.nonRobots = append(c.nonRobots, d)
		}
	}

	// Derive every site's fork sequentially — Fork consumes parent state,
	// so this order is part of the deterministic stream — then sample the
	// per-site traits in parallel from the private forks.
	type pendingSite struct {
		domain string
		top5k  bool
		rn     *stats.Rand
	}
	var pendingSites []pendingSite
	for _, d := range model.StableTopTier() {
		pendingSites = append(pendingSites, pendingSite{d, true, rn.Fork("site-" + d)})
	}
	c.top5k = len(pendingSites)
	sort.Strings(robotsOthers)
	for _, d := range robotsOthers {
		pendingSites = append(pendingSites, pendingSite{d, false, rn.Fork("site-" + d)})
	}
	c.sites = make([]*Site, len(pendingSites))
	if err := par.Do(ctx, cfg.Workers, len(pendingSites), func(start, end int) {
		for i := start; i < end; i++ {
			p := pendingSites[i]
			c.sites[i] = &Site{
				Domain:        p.domain,
				Top5k:         p.top5k,
				wildcardFull:  p.rn.Bool(wildcardFullProb),
				hasMistake:    p.rn.Bool(mistakeProb),
				hasSitemap:    p.rn.Bool(0.55),
				hasCrawlDelay: p.rn.Bool(crawlDelayProb),
				genericGroups: p.rn.Intn(3),
			}
		}
	}); err != nil {
		return nil, err
	}
	for _, s := range c.sites {
		c.byDomain[s.Domain] = s
	}

	c.buildPinnedEvents(rn.Fork("pinned"))
	if err := c.buildOrganicEvents(ctx, rn.Fork("organic"), cfg.Workers); err != nil {
		return nil, err
	}
	c.buildBackgroundAllows(rn.Fork("bg-allow"))
	if err := par.Do(ctx, cfg.Workers, len(c.sites), func(start, end int) {
		for _, s := range c.sites[start:end] {
			sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].Snap < s.Events[j].Snap })
		}
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// buildPinnedEvents replays the documented histories: licensing-deal
// removals (§3.3) and the Table 4 explicit-allow population (§3.4).
func (c *Corpus) buildPinnedEvents(rn *stats.Rand) {
	inDeal := make(map[string]bool)
	for _, deal := range Deals {
		snap := SnapshotIndex(deal.EffectiveSnapshot)
		if snap < 0 {
			continue
		}
		for _, d := range deal.Domains {
			s, ok := c.byDomain[d]
			if !ok {
				continue
			}
			inDeal[d] = true
			// The publisher had restricted the OpenAI crawlers since the
			// surge; the deal removes exactly those rules while the rest
			// of robots.txt stays unchanged (§3.3).
			s.Events = append(s.Events, Event{
				Snap:   dealPriorRestrict,
				Kind:   EventAddRestriction,
				Agents: []string{"GPTBot", "ChatGPT-User"},
				Full:   true,
			})
			s.Events = append(s.Events, Event{
				Snap:   snap,
				Kind:   EventRemoveRestriction,
				Agents: []string{"GPTBot", "ChatGPT-User"},
			})
			if deal.ExplicitAllow {
				// Table 4 pins when the explicit allow first appears.
				first := snap
				if fs, ok := table4ByDomain[d]; ok {
					first = SnapshotIndex(fs)
				}
				s.Events = append(s.Events, Event{
					Snap:   first,
					Kind:   EventExplicitAllow,
					Agents: []string{"GPTBot"},
				})
			}
		}
	}
	// Standalone Table 4 domains (not covered by a deal above).
	for _, row := range Table4 {
		if inDeal[row.Domain] {
			continue
		}
		s, ok := c.byDomain[row.Domain]
		if !ok {
			continue
		}
		snap := SnapshotIndex(row.FirstSeen)
		if snap < 0 {
			continue
		}
		if snap > dealPriorRestrict && rn.Bool(table4PriorRestr) {
			s.Events = append(s.Events, Event{
				Snap:   dealPriorRestrict,
				Kind:   EventAddRestriction,
				Agents: []string{"GPTBot"},
				Full:   true,
			})
			s.Events = append(s.Events, Event{
				Snap:   snap,
				Kind:   EventRemoveRestriction,
				Agents: []string{"GPTBot"},
			})
		}
		s.Events = append(s.Events, Event{
			Snap:   snap,
			Kind:   EventExplicitAllow,
			Agents: []string{"GPTBot"},
		})
	}
}

// buildOrganicEvents draws each unpinned site's adoption trajectory from
// the calibrated hazard curves. Forks are derived sequentially (the
// parent stream is order-sensitive); the draws themselves run on the
// bounded pool, each site writing only its own event slice.
func (c *Corpus) buildOrganicEvents(ctx context.Context, rn *stats.Rand, workers int) error {
	pinned := make(map[string]bool)
	for _, d := range PinnedDomains() {
		pinned[d] = true
	}
	type organicSite struct {
		site *Site
		rn   *stats.Rand
	}
	var work []organicSite
	for _, s := range c.sites {
		if pinned[s.Domain] {
			continue
		}
		work = append(work, organicSite{s, rn.Fork(s.Domain)})
	}
	return par.Do(ctx, workers, len(work), func(start, end int) {
		for _, w := range work[start:end] {
			c.buildSiteOrganicEvents(w.site, w.rn)
		}
	})
}

// buildSiteOrganicEvents draws one site's trajectory from its own fork.
func (c *Corpus) buildSiteOrganicEvents(s *Site, sr *stats.Rand) {
	curve := adoptionOther
	if s.Top5k {
		curve = adoptionTop5k
	}
	u := sr.Float64()
	adoptAt := -1
	for k, target := range curve {
		if u < target {
			adoptAt = k
			break
		}
	}
	if adoptAt < 0 {
		return
	}
	full := sr.Bool(fullShare)
	chosen := c.pickAgents(sr, adoptAt, 1.0)
	s.Events = append(s.Events, Event{
		Snap: adoptAt, Kind: EventAddRestriction, Agents: chosen, Full: full,
	})
	have := make(map[string]bool, len(chosen))
	for _, a := range chosen {
		have[a] = true
	}
	removed := false
	for k := adoptAt + 1; k < len(Snapshots) && !removed; k++ {
		// Background removals (licensing deals we can't see, policy
		// reversals): stronger in the top tier late in the window,
		// reproducing Figure 2's level-off and dip.
		if k >= removalStartIdx {
			p := removalProbOther
			if s.Top5k && k >= top5kRemovalIdx {
				p = removalProbTop5k
			}
			if sr.Bool(p) {
				s.Events = append(s.Events, Event{Snap: k, Kind: EventRemoveRestriction})
				removed = true
				continue
			}
		}
		// List updates: adopters add newly announced agents over time,
		// more eagerly after the EU AI Act draft.
		up := updateProb
		if k >= EUAIActIndex {
			up *= euActUpdateBoost
		}
		if !sr.Bool(up) {
			continue
		}
		var added []string
		for _, extra := range c.pickAgents(sr, k, updateAgentFactor) {
			if !have[extra] {
				have[extra] = true
				added = append(added, extra)
			}
		}
		if len(added) > 0 {
			s.Events = append(s.Events, Event{
				Snap: k, Kind: EventAddRestriction, Agents: added, Full: full,
			})
		}
	}
}

// pickAgents samples the agent list for an adoption or update at snapshot
// k: each agent is included with probability weight×factor, but only if it
// had been announced by the snapshot date. At least one agent is returned.
func (c *Corpus) pickAgents(rn *stats.Rand, k int, factor float64) []string {
	date := Snapshots[k].Date
	var out []string
	for _, a := range agents.Table1 {
		w, ok := agentWeight[a.UserAgent]
		if !ok {
			w = 0.03
		}
		if !agents.AnnouncedBy(a.UserAgent, date) {
			continue
		}
		if rn.Bool(w * factor) {
			out = append(out, a.UserAgent)
		}
	}
	if len(out) == 0 {
		// Fall back to the most popular announced agent.
		best, bestW := "", -1.0
		for _, a := range agents.Table1 {
			if !agents.AnnouncedBy(a.UserAgent, date) {
				continue
			}
			if w := agentWeight[a.UserAgent]; w > bestW {
				bestW, best = w, a.UserAgent
			}
		}
		if best != "" {
			out = append(out, best)
		}
	}
	return out
}

// buildBackgroundAllows adds the small population of sites that invite
// non-OpenAI crawlers (§3.4: shopping and misinformation sites welcoming
// AI traffic). They use CCBot/Amazonbot so the GPTBot-specific Table 4
// reproduction stays exact.
func (c *Corpus) buildBackgroundAllows(rn *stats.Rand) {
	pinned := make(map[string]bool)
	for _, d := range PinnedDomains() {
		pinned[d] = true
	}
	n := int(float64(extraAllowSites)*c.cfg.Scale + 0.5)
	count := 0
	for _, s := range c.sites {
		if count >= n {
			break
		}
		if pinned[s.Domain] || s.wildcardFull {
			continue
		}
		if !rn.Bool(0.01) {
			continue
		}
		ua := backgroundAllowUA1
		if rn.Bool(0.4) {
			ua = backgroundAllowUA2
		}
		snap := 6 + rn.Intn(len(Snapshots)-6)
		s.Events = append(s.Events, Event{
			Snap: snap, Kind: EventExplicitAllow, Agents: []string{ua},
		})
		count++
	}
}

// Sites returns the analysis population (sites with the robots.txt trait),
// top-tier sites first.
func (c *Corpus) Sites() []*Site { return c.sites }

// SiteByDomain returns the site with the given domain.
func (c *Corpus) SiteByDomain(d string) (*Site, bool) {
	s, ok := c.byDomain[d]
	return s, ok
}

// Top5kCount returns how many analysis sites are in the Stable Top 5k; the
// Sites slice keeps them first.
func (c *Corpus) Top5kCount() int { return c.top5k }

// NonRobotsCount returns the number of stable sites outside the analysis
// population (no robots.txt).
func (c *Corpus) NonRobotsCount() int { return len(c.nonRobots) }

// Config returns the effective configuration.
func (c *Corpus) Config() Config { return c.cfg }

// PresenceCounts returns Table 3's per-snapshot counts for this corpus:
// how many stable sites the crawler saw in snapshot k, and how many of
// those served a robots.txt. The counts follow the paper's targets scaled
// by the corpus scale, with membership sampled deterministically.
func (c *Corpus) PresenceCounts(k int) (sites, withRobots int) {
	if k < 0 || k >= len(Snapshots) {
		return 0, 0
	}
	snap := Snapshots[k]
	scale := c.cfg.Scale
	withRobots = int(float64(snap.TargetRobots)*scale + 0.5)
	if withRobots > len(c.sites) {
		withRobots = len(c.sites)
	}
	noRobots := int(float64(snap.TargetSites-snap.TargetRobots)*scale + 0.5)
	if noRobots > len(c.nonRobots) {
		noRobots = len(c.nonRobots)
	}
	return withRobots + noRobots, withRobots
}
