package corpus

import "time"

// Snapshot describes one Common-Crawl-style corpus snapshot (Table 3).
type Snapshot struct {
	// ID is the snapshot identifier (canonical CC-MAIN week naming).
	ID string
	// Label is the month range the snapshot covers, as the paper prints it.
	Label string
	// Date is the representative date: the most recent month of the
	// snapshot, which is how the paper plots multi-month snapshots (§3.2).
	Date time.Time
	// TargetSites is the paper's count of Stable Top 100k sites crawled in
	// the snapshot; TargetRobots is how many of those had a robots.txt.
	TargetSites  int
	TargetRobots int
}

func month(y int, m time.Month) time.Time {
	return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
}

// Snapshots are the fifteen snapshots of Table 3, October 2022 through
// October 2024.
var Snapshots = []Snapshot{
	{"2022-40", "Sep/Oct 2022", month(2022, time.October), 40177, 31494},
	{"2022-49", "Nov/Dec 2022", month(2022, time.December), 40614, 31536},
	{"2023-06", "Jan/Feb 2023", month(2023, time.February), 39080, 30063},
	{"2023-14", "Mar/Apr 2023", month(2023, time.April), 39216, 29963},
	{"2023-23", "May/Jun 2023", month(2023, time.June), 39212, 30107},
	{"2023-40", "Sep/Oct 2023", month(2023, time.October), 39033, 29721},
	{"2023-50", "Nov/Dec 2023", month(2023, time.December), 39722, 30060},
	{"2024-10", "Feb/Mar 2024", month(2024, time.March), 41446, 31282},
	{"2024-18", "Apr 2024", month(2024, time.April), 41640, 31010},
	{"2024-22", "May 2024", month(2024, time.May), 41004, 30763},
	{"2024-26", "Jun 2024", month(2024, time.June), 41047, 30661},
	{"2024-30", "Jul 2024", month(2024, time.July), 40927, 30526},
	{"2024-33", "Aug 2024", month(2024, time.August), 40455, 29922},
	{"2024-38", "Sep 2024", month(2024, time.September), 40444, 29806},
	{"2024-42", "Oct 2024", month(2024, time.October), 40420, 29867},
}

// SnapshotIndex returns the position of the snapshot with the given ID,
// or -1 if unknown.
func SnapshotIndex(id string) int {
	for i, s := range Snapshots {
		if s.ID == id {
			return i
		}
	}
	return -1
}

// GPTBotAnnouncedIndex is the first snapshot after OpenAI announced the
// GPTBot and ChatGPT-User user agents (August 2023): "2023-40", Sep/Oct
// 2023. The Figure 2 surge happens here.
const GPTBotAnnouncedIndex = 5

// EUAIActIndex is the first snapshot after the EU AI Act's code-of-
// practice draft (Aug 2024) whose Sub-Measure 4.1 requires respecting
// robots.txt; Figures 2 and 3 show a secondary uptick from here.
const EUAIActIndex = 12

// Table4Row is one row of Appendix B.3's Table 4: a domain that explicitly
// and fully allows GPTBot, and the snapshot where that behaviour was first
// observed.
type Table4Row struct {
	Domain    string
	FirstSeen string // snapshot ID
}

// Table4 reproduces the paper's Table 4 verbatim (78 domains).
var Table4 = []Table4Row{
	{"nfhs.org", "2023-40"},
	{"10best.com", "2023-40"},
	{"ground.news", "2023-40"},
	{"opindia.com", "2024-42"},
	{"tarleton.edu", "2023-50"},
	{"alldatasheet.com", "2024-42"},
	{"bestproductsreviews.com", "2024-42"},
	{"network54.com", "2023-50"},
	{"care.com", "2024-42"},
	{"kbs.co.kr", "2024-42"},
	{"brit.co", "2024-42"},
	{"lonza.com", "2024-42"},
	{"millersville.edu", "2024-42"},
	{"icelandair.com", "2024-42"},
	{"customink.com", "2024-42"},
	{"celebmafia.com", "2024-18"},
	{"credit-agricole.fr", "2024-42"},
	{"adelaidenow.com.au", "2024-42"},
	{"dailytelegraph.com.au", "2024-42"},
	{"walkhighlands.co.uk", "2024-42"},
	{"softonic-ar.com", "2024-22"},
	{"heraldsun.com.au", "2024-42"},
	{"royalsocietypublishing.org", "2024-22"},
	{"softonic.com", "2024-42"},
	{"shopstyle.com", "2024-42"},
	{"couriermail.com.au", "2024-42"},
	{"theaustralian.com.au", "2024-42"},
	{"news.com.au", "2024-42"},
	{"kaufland.de", "2024-42"},
	{"sendpulse.com", "2024-26"},
	{"washingtonexaminer.com", "2024-33"},
	{"thedodo.com", "2024-42"},
	{"g2a.com", "2024-42"},
	{"fieldgulls.com", "2024-42"},
	{"recode.net", "2024-42"},
	{"novartis.com", "2024-38"},
	{"mmafighting.com", "2024-42"},
	{"vox.com", "2024-42"},
	{"mmamania.com", "2024-42"},
	{"bleedcubbieblue.com", "2024-42"},
	{"popsugar.com", "2024-42"},
	{"voxmedia.com", "2024-42"},
	{"patspulpit.com", "2024-42"},
	{"barcablaugranes.com", "2024-42"},
	{"eater.com", "2024-42"},
	{"popsugar.co.uk", "2024-42"},
	{"prideofdetroit.com", "2024-42"},
	{"royalsreview.com", "2024-42"},
	{"truebluela.com", "2024-42"},
	{"thrillist.com", "2024-42"},
	{"sbnation.com", "2024-42"},
	{"arrowheadpride.com", "2024-42"},
	{"theringer.com", "2024-42"},
	{"adslzone.net", "2024-42"},
	{"milehighreport.com", "2024-42"},
	{"polygon.com", "2024-42"},
	{"racked.com", "2024-42"},
	{"behindthesteelcurtain.com", "2024-42"},
	{"bavarianfootballworks.com", "2024-42"},
	{"bleedinggreennation.com", "2024-42"},
	{"silverscreenandroll.com", "2024-42"},
	{"gnc.com", "2024-42"},
	{"cagesideseats.com", "2024-42"},
	{"blazersedge.com", "2024-42"},
	{"badlefthook.com", "2024-42"},
	{"cincyjungle.com", "2024-42"},
	{"hogshaven.com", "2024-42"},
	{"bigblueview.com", "2024-42"},
	{"ninersnation.com", "2024-42"},
	{"pinstripealley.com", "2024-42"},
	{"bloggingtheboys.com", "2024-42"},
	{"quickbase.com", "2024-42"},
	{"embluemail.com", "2024-42"},
	{"softonic.com.br", "2024-42"},
	{"stimulustech.com", "2024-42"},
	{"searchenginejournal.com", "2024-42"},
	{"giant-bicycles.com", "2024-42"},
	{"realself.com", "2024-42"},
}

// Deal is a publicly known (or suspected) data-licensing agreement that
// led a publisher's domains to remove GPTBot restrictions from robots.txt
// (§3.3). EffectiveSnapshot is when the robots.txt change appears.
type Deal struct {
	Publisher string
	// EffectiveSnapshot is the snapshot ID where removals appear.
	EffectiveSnapshot string
	// Domains the publisher controls in the Stable Top 100k.
	Domains []string
	// ExplicitAllow is true when the publisher went further and added an
	// explicit "Allow: /" for GPTBot (the Vox Media and News Corp sites in
	// Table 4).
	ExplicitAllow bool
	// Public is false for suspected private deals (Future PLC, §3.3).
	Public bool
}

// Deals are the publisher agreements the paper documents. Domains that
// also appear in Table 4 get their explicit-allow first-seen snapshot from
// Table 4; the deal only controls when restrictions disappear.
var Deals = []Deal{
	{
		Publisher:         "Dotdash Meredith",
		EffectiveSnapshot: "2024-22", // May 2024 partnership [91]
		Public:            true,
		Domains: []string{
			"investopedia.com", "people.com", "allrecipes.com", "byrdie.com",
			"thespruce.com", "seriouseats.com", "simplyrecipes.com",
			"verywellhealth.com", "verywellmind.com", "verywellfit.com",
			"thebalancemoney.com", "lifewire.com", "tripsavvy.com",
			"liquor.com", "foodandwine.com", "travelandleisure.com",
			"realsimple.com", "shape.com", "health.com", "parents.com",
			"southernliving.com", "bhg.com", "marthastewart.com",
			"eatingwell.com", "instyle.com", "brides.com",
		},
	},
	{
		Publisher:         "Stack Exchange",
		EffectiveSnapshot: "2024-22", // May 2024 OpenAI partnership [84]
		Public:            true,
		Domains: []string{
			"stackoverflow.com", "superuser.com", "serverfault.com",
			"askubuntu.com", "stackexchange.com", "mathoverflow.net",
			"stackapps.com",
		},
	},
	{
		Publisher:         "Condé Nast",
		EffectiveSnapshot: "2024-33", // Aug 2024 deal [57]
		Public:            true,
		Domains: []string{
			"newyorker.com", "vanityfair.com", "wired.com", "vogue.com",
			"gq.com", "bonappetit.com", "epicurious.com", "glamour.com",
			"architecturaldigest.com", "cntraveler.com", "teenvogue.com",
			"allure.com", "self.com", "pitchfork.com", "arstechnica.com",
		},
	},
	{
		Publisher:         "Vox Media",
		EffectiveSnapshot: "2024-42", // Oct 2024 [58]; sites turn explicit-allow
		Public:            true,
		ExplicitAllow:     true,
		Domains: []string{
			"vox.com", "voxmedia.com", "sbnation.com", "polygon.com",
			"theringer.com", "eater.com", "thedodo.com", "thrillist.com",
			"popsugar.com", "popsugar.co.uk", "recode.net", "racked.com",
			"mmafighting.com", "mmamania.com", "bleedcubbieblue.com",
			"patspulpit.com", "barcablaugranes.com", "prideofdetroit.com",
			"royalsreview.com", "truebluela.com", "arrowheadpride.com",
			"milehighreport.com", "behindthesteelcurtain.com",
			"bavarianfootballworks.com", "bleedinggreennation.com",
			"silverscreenandroll.com", "cagesideseats.com", "blazersedge.com",
			"badlefthook.com", "cincyjungle.com", "hogshaven.com",
			"bigblueview.com", "ninersnation.com", "pinstripealley.com",
			"bloggingtheboys.com", "fieldgulls.com",
		},
	},
	{
		Publisher:         "News Corp Australia",
		EffectiveSnapshot: "2024-42",
		Public:            true,
		ExplicitAllow:     true,
		Domains: []string{
			"news.com.au", "theaustralian.com.au", "dailytelegraph.com.au",
			"heraldsun.com.au", "couriermail.com.au", "adelaidenow.com.au",
		},
	},
	{
		Publisher:         "Future PLC",
		EffectiveSnapshot: "2024-22", // May 2024, denied partnership [10]
		Public:            false,
		Domains: []string{
			"techradar.com", "tomsguide.com", "cyclingnews.com",
			"pcgamer.com", "gamesradar.com", "livescience.com",
			"space.com", "laptopmag.com", "whattowatch.com",
			"musicradar.com", "creativebloq.com", "itpro.com",
		},
	},
}

// PinnedDomains returns every domain named by Table 4 or a deal; the
// ranking model pins these into the stable population so the corpus can
// replay their documented histories.
func PinnedDomains() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, r := range Table4 {
		add(r.Domain)
	}
	for _, deal := range Deals {
		for _, d := range deal.Domains {
			add(d)
		}
	}
	return out
}

// table4ByDomain indexes Table 4 for event construction.
var table4ByDomain = func() map[string]string {
	m := make(map[string]string, len(Table4))
	for _, r := range Table4 {
		m[r.Domain] = r.FirstSeen
	}
	return m
}()
