package hosting

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/robots"
	"repro/internal/useragent"
)

func TestProvidersTable(t *testing.T) {
	if len(Providers) != 8 {
		t.Fatalf("providers = %d, want 8 (Table 2)", len(Providers))
	}
	// Table 2's share column.
	wantShares := map[string]float64{
		"Squarespace": 20.7, "ArtStation": 20.4, "Wix (Paid)": 9.3,
		"Adobe Portfolio": 4.8, "Wix (Free)": 3.5, "Weebly": 3.1,
		"Shopify": 1.7, "Carbonmade": 1.5,
	}
	for name, share := range wantShares {
		p, ok := ProviderByName(name)
		if !ok {
			t.Fatalf("provider %q missing", name)
		}
		if p.SharePct != share {
			t.Errorf("%s share = %v, want %v", name, p.SharePct, share)
		}
	}
	// Control surfaces.
	checks := map[string]ControlLevel{
		"Squarespace": AIToggle, "Wix (Paid)": FullEdit,
		"Adobe Portfolio": SearchEngineToggle, "Weebly": SearchEngineToggle,
		"ArtStation": NoControl, "Carbonmade": NoControl,
	}
	for name, lvl := range checks {
		p, _ := ProviderByName(name)
		if p.Control != lvl {
			t.Errorf("%s control = %v, want %v", name, p.Control, lvl)
		}
	}
	if _, ok := ProviderByName("GeoCities"); ok {
		t.Error("unknown provider must not resolve")
	}
}

func TestControlLevelStrings(t *testing.T) {
	for lvl, want := range map[ControlLevel]string{
		NoControl: "No", SearchEngineToggle: "No (SE)",
		AIToggle: "No (AI, SE)", FullEdit: "Yes", ControlLevel(9): "?",
	} {
		if got := lvl.String(); got != want {
			t.Errorf("%d = %q, want %q", lvl, got, want)
		}
	}
}

func TestSquarespaceToggleRobots(t *testing.T) {
	p, _ := ProviderByName("Squarespace")
	off := robots.ParseString(p.RobotsTxt(false))
	if _, explicit := off.ExplicitRestriction("GPTBot"); explicit {
		t.Error("toggle off: no AI restrictions")
	}
	on := robots.ParseString(p.RobotsTxt(true))
	// All ten Appendix C.1 agents are fully disallowed.
	for _, ua := range p.ToggleAgents {
		lvl, explicit := on.ExplicitRestriction(ua)
		if !explicit || lvl != robots.FullyDisallowed {
			t.Errorf("toggle on: %s = %v explicit=%v, want fully disallowed", ua, lvl, explicit)
		}
	}
	if len(p.ToggleAgents) != 10 {
		t.Errorf("toggle agents = %d, want 10", len(p.ToggleAgents))
	}
}

func TestCarbonmadeDefaultBlocksAI(t *testing.T) {
	p, _ := ProviderByName("Carbonmade")
	rb := robots.ParseString(p.RobotsTxt(false))
	for _, ua := range []string{"GPTBot", "CCBot"} {
		lvl, explicit := rb.ExplicitRestriction(ua)
		if !explicit || lvl != robots.FullyDisallowed {
			t.Errorf("Carbonmade default must block %s", ua)
		}
	}
	if !restrictsAnyAI(p.RobotsTxt(false)) {
		t.Error("Carbonmade must count as disallowing AI")
	}
}

func TestWeeblyBlocker(t *testing.T) {
	p, _ := ProviderByName("Weebly")
	b := p.Blocker()
	if b == nil {
		t.Fatal("Weebly must have a blocker")
	}
	req, _ := http.NewRequest("GET", "http://x/", nil)
	req.Header.Set("User-Agent", useragent.FullUA("Claudebot", "1.0"))
	if d := b.Check(req); d == nil || d.Status != 403 {
		t.Error("Weebly must block Claudebot")
	}
	req.Header.Set("User-Agent", useragent.FullUA("Bytespider", "1.0"))
	if d := b.Check(req); d == nil {
		t.Error("Weebly must block Bytespider")
	}
	req.Header.Set("User-Agent", useragent.FullUA("GPTBot", "1.0"))
	if d := b.Check(req); d != nil {
		t.Error("Weebly must not block GPTBot")
	}
}

func TestArtStationChallengesAutomation(t *testing.T) {
	p, _ := ProviderByName("ArtStation")
	b := p.Blocker()
	req, _ := http.NewRequest("GET", "http://x/", nil)
	req.Header.Set("User-Agent", useragent.FullUA("GPTBot", "1.0"))
	d := b.Check(req)
	if d == nil || !d.Challenge {
		t.Error("ArtStation must challenge automated requests")
	}
	req.Header.Set("User-Agent", useragent.BrowserChromeUA)
	if d := b.Check(req); d != nil {
		t.Error("ArtStation must serve browsers")
	}
}

func TestNoBlockerProviders(t *testing.T) {
	for _, name := range []string{"Squarespace", "Wix (Paid)", "Adobe Portfolio", "Shopify"} {
		p, _ := ProviderByName(name)
		if p.Blocker() != nil {
			t.Errorf("%s should not block at the edge", name)
		}
	}
}

func TestGeneratePopulation(t *testing.T) {
	pop := GeneratePopulation(0, 13)
	if len(pop.Sites) != PaperPopulationSize {
		t.Fatalf("population = %d, want %d", len(pop.Sites), PaperPopulationSize)
	}
	counts := map[string]int{}
	for _, s := range pop.Sites {
		counts[s.Provider]++
		if s.Domain == "" {
			t.Fatal("site without domain")
		}
	}
	// Exact provider counts from Table 2 shares.
	for _, p := range Providers {
		want := int(float64(PaperPopulationSize)*p.SharePct/100 + 0.5)
		if counts[p.Name] != want {
			t.Errorf("%s sites = %d, want %d", p.Name, counts[p.Name], want)
		}
	}
	if counts[""] == 0 {
		t.Error("long-tail population missing")
	}
}

func TestIdentifyProvider(t *testing.T) {
	pop := GeneratePopulation(400, 13)
	for _, s := range pop.Sites {
		got := IdentifyProvider(pop.Zone, s.Domain)
		if got != s.Provider {
			t.Fatalf("%s: identified %q, want %q", s.Domain, got, s.Provider)
		}
	}
}

func TestTable2Reproduction(t *testing.T) {
	pop := GeneratePopulation(0, 13)
	rows := Table2(pop)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Provider] = r
	}
	// Ordering: descending share, Squarespace first.
	if rows[0].Provider != "Squarespace" || rows[1].Provider != "ArtStation" {
		t.Errorf("row order: %s, %s", rows[0].Provider, rows[1].Provider)
	}
	// Carbonmade: 100% disallow via defaults.
	if byName["Carbonmade"].DisallowAIPct != 100 {
		t.Errorf("Carbonmade disallow = %.1f%%, want 100%%", byName["Carbonmade"].DisallowAIPct)
	}
	// Squarespace: ≈17% (toggle adoption).
	sq := byName["Squarespace"]
	if sq.DisallowAIPct < 10 || sq.DisallowAIPct > 25 {
		t.Errorf("Squarespace disallow = %.1f%%, want ≈17%%", sq.DisallowAIPct)
	}
	// Everyone else: 0%.
	for _, name := range []string{"ArtStation", "Wix (Paid)", "Adobe Portfolio",
		"Wix (Free)", "Weebly", "Shopify"} {
		if byName[name].DisallowAIPct != 0 {
			t.Errorf("%s disallow = %.1f%%, want 0%%", name, byName[name].DisallowAIPct)
		}
	}
	// Shares approximate Table 2.
	if sq.SharePct < 19 || sq.SharePct > 22 {
		t.Errorf("Squarespace share = %.1f%%", sq.SharePct)
	}
}

func TestSummarize(t *testing.T) {
	pop := GeneratePopulation(0, 13)
	sum := Summarize(pop)
	if sum.ToggleEligible == 0 {
		t.Fatal("no toggle-eligible sites")
	}
	rate := float64(sum.ToggleEnabled) / float64(sum.ToggleEligible)
	if rate < 0.10 || rate > 0.25 {
		t.Errorf("toggle adoption = %.2f, want ≈0.17 (§4.4)", rate)
	}
	// Only paid Wix offers full editing; nobody edits (0 observed in the
	// paper), so FullEdit sites exist but contribute no AI restrictions.
	if sum.ByControl[FullEdit] == 0 {
		t.Error("paid Wix population missing")
	}
}

func TestRobotsTxtAlwaysParses(t *testing.T) {
	for _, p := range Providers {
		for _, enabled := range []bool{false, true} {
			body := p.RobotsTxt(enabled)
			rep := robots.Lint(body)
			if rep.Mistakes > 0 {
				t.Errorf("%s robots.txt has lint mistakes: %v", p.Name, rep.Warnings)
			}
			if !strings.Contains(body, "User-agent: *") {
				t.Errorf("%s robots.txt lacks a wildcard group", p.Name)
			}
		}
	}
}

func TestLooksAutomated(t *testing.T) {
	if looksAutomated(useragent.BrowserChromeUA) {
		t.Error("Chrome UA must not look automated")
	}
	for _, ua := range []string{
		useragent.FullUA("GPTBot", "1.0"),
		"curl/8.0",
		"python-requests/2.31",
	} {
		if !looksAutomated(ua) {
			t.Errorf("%q must look automated", ua)
		}
	}
}
