// Package hosting models the artist website hosting ecosystem of §4.4:
// the eight providers of Table 2, the control surfaces they expose over
// robots.txt (none, a search-engine toggle, an AI toggle, or full
// editing), their default robots.txt files and provider-side active
// blocking, plus a 1,182-site artist population and the DNS-based
// provider identification the paper uses.
package hosting

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/agents"
	"repro/internal/dnssim"
	"repro/internal/robots"
	"repro/internal/stats"
	"repro/internal/useragent"
	"repro/internal/webserver"
)

// ControlLevel is what a provider lets customers do to robots.txt.
type ControlLevel int

const (
	// NoControl: the provider serves a fixed robots.txt.
	NoControl ControlLevel = iota
	// SearchEngineToggle: customers can disallow search engine crawlers.
	SearchEngineToggle
	// AIToggle: customers can disallow AI crawlers with one click
	// (Squarespace, Figure 5).
	AIToggle
	// FullEdit: customers can edit robots.txt directly (paid Wix).
	FullEdit
)

// String renders Table 2's "Edit?" column.
func (c ControlLevel) String() string {
	switch c {
	case NoControl:
		return "No"
	case SearchEngineToggle:
		return "No (SE)"
	case AIToggle:
		return "No (AI, SE)"
	case FullEdit:
		return "Yes"
	default:
		return "?"
	}
}

// Provider is one hosting service.
type Provider struct {
	// Name as in Table 2.
	Name string
	// SharePct is Table 2's "% Sites" column.
	SharePct float64
	// Control is the robots.txt control surface.
	Control ControlLevel
	// SubdomainHosting: artist sites are subdomains of Apex (Carbonmade,
	// free Wix); otherwise custom domains point at InfraIP via DNS.
	SubdomainHosting bool
	// Apex is the provider's own domain.
	Apex string
	// InfraIP is the shared ingress address custom domains resolve to.
	InfraIP string
	// DefaultDisallows are paths the provider's stock robots.txt blocks
	// for all crawlers.
	DefaultDisallows []string
	// DefaultAIDisallows are AI agents the stock robots.txt fully blocks
	// (Carbonmade ships GPTBot and CCBot blocked by default).
	DefaultAIDisallows []string
	// ToggleAgents are the agents added when a customer enables the AI
	// toggle (Squarespace's Appendix C.1 list).
	ToggleAgents []string
	// ToggleAdoptionRate is the fraction of customers who enabled the AI
	// toggle (§4.4: 17% on Squarespace; 0 elsewhere).
	ToggleAdoptionRate float64
	// BlockedUAs are user agents the provider actively blocks at the edge
	// (§4.4: Weebly blocks Claudebot and Bytespider).
	BlockedUAs []string
	// ChallengesAutomation: the provider challenges all automated
	// requests (§4.4: ArtStation and Carbonmade).
	ChallengesAutomation bool
	// ToSAITraining summarizes the provider's terms-of-service stance on
	// AI training over user content.
	ToSAITraining string
}

// Providers is Table 2: the top eight providers in artist-share order.
var Providers = []Provider{
	{
		Name: "Squarespace", SharePct: 20.7, Control: AIToggle,
		Apex: "squarespace.com", InfraIP: "198.185.159.1",
		DefaultDisallows:   []string{"/config", "/search", "/account"},
		ToggleAgents:       agents.SquarespaceBlockedAgents,
		ToggleAdoptionRate: 0.17,
		ToSAITraining:      "not addressed",
	},
	{
		Name: "ArtStation", SharePct: 20.4, Control: NoControl,
		Apex: "artstation.com", InfraIP: "104.26.5.1",
		DefaultDisallows:     []string{"/search", "/api/"},
		ChallengesAutomation: true,
		ToSAITraining:        "no generative-AI licensing of user content",
	},
	{
		Name: "Wix (Paid)", SharePct: 9.3, Control: FullEdit,
		Apex: "wix.com", InfraIP: "185.230.63.1",
		DefaultDisallows: []string{"/_api/"},
		ToSAITraining:    "may train service-improvement AI tools on user content",
	},
	{
		Name: "Adobe Portfolio", SharePct: 4.8, Control: SearchEngineToggle,
		Apex: "myportfolio.com", InfraIP: "151.101.195.1",
		ToSAITraining: "no generative-AI training on user content",
	},
	{
		Name: "Wix (Free)", SharePct: 3.5, Control: NoControl,
		SubdomainHosting: true, Apex: "wixsite.com", InfraIP: "185.230.63.2",
		DefaultDisallows: []string{"/_api/"},
		ToSAITraining:    "may train service-improvement AI tools on user content",
	},
	{
		Name: "Weebly", SharePct: 3.1, Control: SearchEngineToggle,
		Apex: "weebly.com", InfraIP: "199.34.228.1",
		DefaultDisallows: []string{"/ajax/"},
		BlockedUAs:       []string{"Claudebot", "Bytespider"},
		ToSAITraining:    "not addressed",
	},
	{
		Name: "Shopify", SharePct: 1.7, Control: NoControl,
		Apex: "myshopify.com", InfraIP: "23.227.38.1",
		DefaultDisallows: []string{"/checkout", "/cart", "/admin"},
		ToSAITraining:    "not addressed",
	},
	{
		Name: "Carbonmade", SharePct: 1.5, Control: NoControl,
		SubdomainHosting: true, Apex: "carbonmade.com", InfraIP: "104.18.22.1",
		DefaultAIDisallows:   []string{"GPTBot", "CCBot"},
		ChallengesAutomation: true,
		ToSAITraining:        "ToS bars scraping content from the site",
	},
}

// ProviderByName returns the named provider.
func ProviderByName(name string) (Provider, bool) {
	for _, p := range Providers {
		if p.Name == name {
			return p, true
		}
	}
	return Provider{}, false
}

// RobotsTxt renders the robots.txt a site hosted on p serves.
// aiToggleEnabled only matters for AIToggle providers.
func (p Provider) RobotsTxt(aiToggleEnabled bool) string {
	b := robots.NewBuilder()
	b.Comment("robots.txt served by " + p.Name)
	g := b.Group("*")
	if len(p.DefaultDisallows) > 0 {
		g.Disallow(p.DefaultDisallows...)
	} else {
		g.Disallow()
	}
	if len(p.DefaultAIDisallows) > 0 {
		b.Group(p.DefaultAIDisallows...).DisallowAll()
	}
	if p.Control == AIToggle && aiToggleEnabled && len(p.ToggleAgents) > 0 {
		b.Group(p.ToggleAgents...).DisallowAll()
	}
	return b.String()
}

// Blocker returns the provider's edge blocking behaviour as a
// webserver.Blocker, or nil when the provider does not block.
func (p Provider) Blocker() webserver.Blocker {
	if len(p.BlockedUAs) == 0 && !p.ChallengesAutomation {
		return nil
	}
	blocked := append([]string(nil), p.BlockedUAs...)
	challenges := p.ChallengesAutomation
	return webserver.BlockerFunc(func(r *http.Request) *webserver.BlockDecision {
		if _, hit := useragent.MatchesAny(r.UserAgent(), blocked); hit {
			return &webserver.BlockDecision{Status: http.StatusForbidden,
				Body: "<html><body>blocked by " + p.Name + "</body></html>"}
		}
		if challenges && looksAutomated(r.UserAgent()) {
			return &webserver.BlockDecision{Status: http.StatusForbidden, Challenge: true,
				Body: "<html><body>captcha challenge from " + p.Name + "</body></html>"}
		}
		return nil
	})
}

// looksAutomated is the provider-side heuristic: anything that is not a
// mainstream browser UA counts as automated.
func looksAutomated(ua string) bool {
	l := strings.ToLower(ua)
	isBrowser := strings.Contains(l, "chrome/") || strings.Contains(l, "firefox/") ||
		strings.Contains(l, "safari/")
	compat := strings.Contains(l, "compatible;") || strings.Contains(l, "bot") ||
		strings.Contains(l, "crawler") || strings.Contains(l, "spider")
	return !isBrowser || compat
}

// ArtistSite is one of the 1,182 directory sites.
type ArtistSite struct {
	// Artist is a display name.
	Artist string
	// Domain is the site's hostname (custom domain or provider subdomain).
	Domain string
	// Provider is the Table 2 provider name, or "" for the long tail
	// (small providers, self-hosted, social media).
	Provider string
	// AIToggleEnabled: the artist enabled the provider's AI toggle.
	AIToggleEnabled bool
}

// Population is the generated artist-site study population.
type Population struct {
	Sites []ArtistSite
	Zone  *dnssim.Zone
}

// PaperPopulationSize is the number of artist sites the paper collected.
const PaperPopulationSize = 1182

// GeneratePopulation builds n artist sites (0 means the paper's 1,182)
// with Table 2's provider shares, DNS records for identification, and
// Squarespace toggle adoption at the measured 17%.
func GeneratePopulation(n int, seed int64) *Population {
	if n <= 0 {
		n = PaperPopulationSize
	}
	rn := stats.NewRand(seed).Fork("artists")
	pop := &Population{Zone: dnssim.NewZone()}

	// Deterministic provider assignment: exact counts per share.
	type slot struct {
		provider string
	}
	var slots []slot
	for _, p := range Providers {
		count := int(float64(n)*p.SharePct/100 + 0.5)
		for i := 0; i < count; i++ {
			slots = append(slots, slot{p.Name})
		}
	}
	for len(slots) < n {
		slots = append(slots, slot{""}) // long tail
	}
	slots = slots[:n]
	rn.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })

	for i, s := range slots {
		artist := fmt.Sprintf("artist-%04d", i+1)
		site := ArtistSite{Artist: artist, Provider: s.provider}
		switch {
		case s.provider == "":
			// Long tail: self-hosted or small providers.
			site.Domain = artist + "-art.example"
			pop.Zone.SetA(site.Domain, fmt.Sprintf("192.0.2.%d", 1+i%250))
		default:
			p, _ := ProviderByName(s.provider)
			if p.SubdomainHosting {
				site.Domain = artist + "." + p.Apex
				pop.Zone.SetA(site.Domain, p.InfraIP)
			} else {
				site.Domain = artist + ".art"
				pop.Zone.SetCNAME(site.Domain, "ingress."+p.Apex)
				pop.Zone.SetA("ingress."+p.Apex, p.InfraIP)
			}
			if p.Control == AIToggle {
				site.AIToggleEnabled = rn.Bool(p.ToggleAdoptionRate)
			}
		}
		pop.Sites = append(pop.Sites, site)
	}
	return pop
}

// IdentifyProvider attributes a domain to a Table 2 provider the way the
// paper does: by subdomain suffix, or by resolving DNS to provider
// infrastructure. It returns "" when the domain matches no provider.
func IdentifyProvider(zone *dnssim.Zone, domain string) string {
	for _, p := range Providers {
		if p.SubdomainHosting && dnssim.IsSubdomainOf(domain, p.Apex) {
			return p.Name
		}
	}
	if target, ok := zone.CNAMETarget(domain); ok {
		for _, p := range Providers {
			if target == "ingress."+p.Apex || dnssim.IsSubdomainOf(target, p.Apex) {
				return p.Name
			}
		}
	}
	if ips, err := zone.ResolveA(domain); err == nil {
		for _, p := range Providers {
			for _, ip := range ips {
				if ip == p.InfraIP {
					return p.Name
				}
			}
		}
	}
	return ""
}

// Table2Row is one line of the regenerated Table 2.
type Table2Row struct {
	Provider string
	// SharePct is the measured share of the population.
	SharePct float64
	// Control is the provider's robots.txt editability.
	Control ControlLevel
	// DisallowAIPct is the percentage of the provider's sites whose
	// robots.txt explicitly disallows at least one Table 1 AI agent.
	DisallowAIPct float64
	// Sites and DisallowAI are the underlying counts.
	Sites      int
	DisallowAI int
}

// Table2 regenerates the paper's Table 2 from a population: identify each
// site's provider via DNS, obtain the robots.txt the provider would
// serve, parse it, and categorize AI restrictions.
func Table2(pop *Population) []Table2Row {
	perProvider := make(map[string]*Table2Row)
	for _, p := range Providers {
		perProvider[p.Name] = &Table2Row{Provider: p.Name, Control: p.Control}
	}
	for _, site := range pop.Sites {
		name := IdentifyProvider(pop.Zone, site.Domain)
		row, ok := perProvider[name]
		if !ok {
			continue
		}
		row.Sites++
		p, _ := ProviderByName(name)
		body := p.RobotsTxt(site.AIToggleEnabled)
		if restrictsAnyAI(body) {
			row.DisallowAI++
		}
	}
	rows := make([]Table2Row, 0, len(Providers))
	for _, p := range Providers {
		row := perProvider[p.Name]
		row.SharePct = stats.Percent(row.Sites, len(pop.Sites))
		row.DisallowAIPct = stats.Percent(row.DisallowAI, row.Sites)
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].SharePct > rows[j].SharePct })
	return rows
}

// restrictsAnyAI parses a robots.txt body and reports whether any Table 1
// agent is explicitly restricted.
func restrictsAnyAI(body string) bool {
	rb := robots.ParseString(body)
	for _, tok := range rb.AgentTokens() {
		if _, ok := agents.ByToken(tok); !ok {
			continue
		}
		if lvl, explicit := rb.ExplicitRestriction(tok); explicit && lvl.Restricted() {
			return true
		}
	}
	return false
}

// ControlSummary aggregates §4.4's agency findings over a population.
type ControlSummary struct {
	// Total sites on each control level.
	ByControl map[ControlLevel]int
	// ToggleEligible and ToggleEnabled measure the gap between having a
	// one-click option and using it (49 of 293 in the paper).
	ToggleEligible int
	ToggleEnabled  int
}

// Summarize computes the control summary.
func Summarize(pop *Population) ControlSummary {
	sum := ControlSummary{ByControl: make(map[ControlLevel]int)}
	for _, site := range pop.Sites {
		p, ok := ProviderByName(site.Provider)
		if !ok {
			continue
		}
		sum.ByControl[p.Control]++
		if p.Control == AIToggle {
			sum.ToggleEligible++
			if site.AIToggleEnabled {
				sum.ToggleEnabled++
			}
		}
	}
	return sum
}
