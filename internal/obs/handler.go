package obs

import "net/http"

// Handler returns an http.Handler serving the registry in Prometheus
// text format, or JSON when the request has ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }
