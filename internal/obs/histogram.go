package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count. Bucket 0 holds values <= 1;
// bucket i (i >= 1) holds values in (2^(i-1), 2^i]; the last bucket
// additionally absorbs everything beyond 2^62. 64 power-of-two buckets
// cover 1ns..~4.6e18, i.e. any duration or byte size the repo can
// produce, with <2x relative error — plenty for tail-latency work.
const histBuckets = 64

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(v - 1) // v in (2^(b-1), 2^b]
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// histShard is one shard's buckets plus a running sum, padded so
// adjacent shards never false-share. Counts and sum are monotone, so
// readers get a consistent-enough view from plain atomic loads.
type histShard struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
	_       [56]byte
}

// Histogram is a fixed-bucket power-of-two histogram of uint64 samples
// (nanoseconds, bytes, batch sizes). Observe is 0 allocs and a handful
// of nanoseconds. The zero value is not usable; obtain one from a
// Registry (or NewHistogram).
type Histogram struct {
	shards []histShard
}

func newHistogram() *Histogram { return &Histogram{shards: make([]histShard, nShards)} }

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if !enabled.Load() {
		return
	}
	var i uint32
	if shardMask != 0 {
		i = shardIdx()
	}
	s := &h.shards[i]
	s.buckets[bucketOf(v)].Add(1)
	s.sum.Add(v)
}

// ObserveSince records the elapsed nanoseconds since start. Callers
// should guard the time.Now() that produced start with Enabled() so the
// disabled path costs nothing.
func (h *Histogram) ObserveSince(start time.Time) {
	if !enabled.Load() {
		return
	}
	h.Observe(uint64(time.Since(start)))
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Snapshot sums the shards. Concurrent Observes may land between shard
// reads; the result is a valid snapshot of some interleaving.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < histBuckets; b++ {
			s.Buckets[b] += sh.buckets[b].Load()
		}
		s.Sum += sh.sum.Load()
	}
	for b := 0; b < histBuckets; b++ {
		s.Count += s.Buckets[b]
	}
	return s
}

// Sub returns the delta snapshot s - prev (counts and sum subtract
// bucket-wise), for measuring one phase of a longer-lived histogram.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	for b := 0; b < histBuckets; b++ {
		d.Buckets[b] = s.Buckets[b] - prev.Buckets[b]
	}
	return d
}

// BucketUpper returns the inclusive upper bound of bucket i (2^i,
// saturating at MaxUint64 for the overflow bucket).
func BucketUpper(i int) uint64 {
	if i >= 63 {
		return ^uint64(0)
	}
	return uint64(1) << uint(i)
}

// bucketLower returns the exclusive lower bound of bucket i.
func bucketLower(i int) uint64 {
	if i == 0 {
		return 0
	}
	return uint64(1) << uint(i-1)
}

// Quantile returns the bucket bounds (lo, hi] containing the q-th
// quantile sample, using the same rank definition as cmd/loadgen's
// reservoir percentiles: the element at index q*(count-1) of the sorted
// samples. On an empty snapshot both bounds are 0.
func (s HistSnapshot) Quantile(q float64) (lo, hi uint64) {
	if s.Count == 0 {
		return 0, 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1)) // 0-based index into sorted samples
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += s.Buckets[b]
		if cum > rank {
			return bucketLower(b), BucketUpper(b)
		}
	}
	return bucketLower(histBuckets - 1), BucketUpper(histBuckets - 1)
}

// Mean returns the average observed value, 0 if empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
