package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLI-facing helpers shared by cmd/scenario, cmd/loadgen, and
// cmd/policyd: -cpuprofile/-memprofile flags and end-of-run -metrics
// dumps all route through here so the three binaries behave
// identically.

// StartCPUProfile begins a CPU profile written to path and returns the
// stop function. An empty path is a no-op.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after a GC (so the
// profile reflects live objects, not garbage). An empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}

// DumpMetrics writes the Default registry in Prometheus text format to
// path; "-" means stderr. An empty path is a no-op.
func DumpMetrics(path string) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return Default.WritePrometheus(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: metrics dump: %w", err)
	}
	defer f.Close()
	return Default.WritePrometheus(f)
}
