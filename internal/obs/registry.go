package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// A metric name is `family` or `family{label="x",other="y"}`. The part
// before the brace is the Prometheus family; everything inside braces is
// rendered verbatim as the label set. Families group in the output with
// one # TYPE line each.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name   string // full name incl. labels
	family string
	labels string // raw `a="b",c="d"` part, "" if none
	kind   metricKind
	help   string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds registered metrics and renders them. Registration
// happens at package init or program start; rendering takes a snapshot
// under a read lock.
type Registry struct {
	mu         sync.RWMutex
	metrics    []*metric
	byName     map[string]*metric
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Default is the process-wide registry the package-level constructors
// register into.
var Default = NewRegistry()

func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[m.name]; ok {
		if prev.kind != m.kind {
			panic("obs: metric " + m.name + " re-registered with a different kind")
		}
		// Idempotent re-registration returns the existing storage via
		// the caller's lookup; keep prev.
		return
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// NewCounter registers (or returns the existing) counter under name.
func (r *Registry) NewCounter(name, help string) *Counter {
	fam, lab := splitName(name)
	r.mu.RLock()
	prev := r.byName[name]
	r.mu.RUnlock()
	if prev != nil && prev.kind == kindCounter {
		return prev.c
	}
	m := &metric{name: name, family: fam, labels: lab, kind: kindCounter, help: help, c: newCounter()}
	r.add(m)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name].c
}

// NewGauge registers (or returns the existing) gauge under name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	fam, lab := splitName(name)
	r.mu.RLock()
	prev := r.byName[name]
	r.mu.RUnlock()
	if prev != nil && prev.kind == kindGauge {
		return prev.g
	}
	m := &metric{name: name, family: fam, labels: lab, kind: kindGauge, help: help, g: newGauge()}
	r.add(m)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name].g
}

// NewHistogram registers (or returns the existing) histogram under name.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	fam, lab := splitName(name)
	r.mu.RLock()
	prev := r.byName[name]
	r.mu.RUnlock()
	if prev != nil && prev.kind == kindHistogram {
		return prev.h
	}
	m := &metric{name: name, family: fam, labels: lab, kind: kindHistogram, help: help, h: newHistogram()}
	r.add(m)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name].h
}

// AddCollector registers a function run at the start of every render —
// the hook point for sampled sources like runtime/metrics gauges.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Package-level constructors against Default.
func NewCounter(name, help string) *Counter     { return Default.NewCounter(name, help) }
func NewGauge(name, help string) *Gauge         { return Default.NewGauge(name, help) }
func NewHistogram(name, help string) *Histogram { return Default.NewHistogram(name, help) }

// snapshotMetrics runs collectors and returns a stable-ordered copy of
// the metric list (sorted by family then labels).
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.RLock()
	collectors := append([]func(){}, r.collectors...)
	ms := append([]*metric{}, r.metrics...)
	r.mu.RUnlock()
	for _, fn := range collectors {
		fn()
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].family != ms[j].family {
			return ms[i].family < ms[j].family
		}
		return ms[i].labels < ms[j].labels
	})
	return ms
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Histograms render cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`; empty buckets
// are skipped (the cumulative count still covers them) to keep 64-bucket
// histograms from dominating the page.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms := r.snapshotMetrics()
	var b strings.Builder
	lastFamily := ""
	for _, m := range ms {
		if m.family != lastFamily {
			lastFamily = m.family
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.family, m.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.family, typeString(m.kind))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", promSeries(m.family, m.labels, ""), m.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %g\n", promSeries(m.family, m.labels, ""), m.g.Value())
		case kindHistogram:
			s := m.h.Snapshot()
			var cum uint64
			for i := 0; i < histBuckets-1; i++ {
				if s.Buckets[i] == 0 {
					continue
				}
				cum += s.Buckets[i]
				fmt.Fprintf(&b, "%s %d\n",
					promSeries(m.family+"_bucket", m.labels, fmt.Sprintf(`le="%d"`, BucketUpper(i))), cum)
			}
			// The +Inf terminator always renders so the cumulative
			// series is complete even when the histogram is empty.
			fmt.Fprintf(&b, "%s %d\n", promSeries(m.family+"_bucket", m.labels, `le="+Inf"`), s.Count)
			fmt.Fprintf(&b, "%s %d\n", promSeries(m.family+"_sum", m.labels, ""), s.Sum)
			fmt.Fprintf(&b, "%s %d\n", promSeries(m.family+"_count", m.labels, ""), s.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// promSeries assembles `name{labels,extra}` with correct brace handling
// for any combination of empty parts.
func promSeries(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

// WriteJSON renders every metric as one JSON object keyed by full
// metric name; histograms include count/sum/mean and the p50/p90/p99
// bucket upper bounds. Keys are sorted, output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	ms := r.snapshotMetrics()
	var b strings.Builder
	b.WriteString("{\n")
	for i, m := range ms {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "  %q: ", m.name)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%d", m.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%g", m.g.Value())
		case kindHistogram:
			s := m.h.Snapshot()
			_, p50 := s.Quantile(0.50)
			_, p90 := s.Quantile(0.90)
			_, p99 := s.Quantile(0.99)
			fmt.Fprintf(&b, `{"count":%d,"sum":%d,"mean":%.1f,"p50_le":%d,"p90_le":%d,"p99_le":%d}`,
				s.Count, s.Sum, s.Mean(), p50, p90, p99)
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
