package obs

import (
	"strings"
	"testing"
)

// renderJSON snapshots a registry the way the run store does.
func renderJSON(t *testing.T, r *Registry) []byte {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	return []byte(sb.String())
}

func TestSnapshotDelta(t *testing.T) {
	ra := NewRegistry()
	ca := ra.NewCounter("requests_total", "")
	ga := ra.NewGauge("pool_size", "")
	ha := ra.NewHistogram("latency_ns", "")
	ra.NewCounter("steady_total", "").Add(5)
	ca.Add(10)
	ga.Set(3)
	ha.Observe(100)
	ha.Observe(300)
	snapA := renderJSON(t, ra)

	rb := NewRegistry()
	cb := rb.NewCounter("requests_total", "")
	gb := rb.NewGauge("pool_size", "")
	hb := rb.NewHistogram("latency_ns", "")
	rb.NewCounter("steady_total", "").Add(5)
	rb.NewCounter("appeared_total", "").Add(1)
	cb.Add(25)
	gb.Set(3)
	hb.Observe(100)
	hb.Observe(300)
	hb.Observe(500)
	snapB := renderJSON(t, rb)

	deltas, err := SnapshotDelta(snapA, snapB)
	if err != nil {
		t.Fatal(err)
	}

	byName := make(map[string]Delta, len(deltas))
	for i, d := range deltas {
		byName[d.Name] = d
		if i > 0 && deltas[i-1].Name >= d.Name {
			t.Errorf("deltas not sorted: %q before %q", deltas[i-1].Name, d.Name)
		}
	}

	// Changed counter.
	if d, ok := byName["requests_total"]; !ok || d.A != 10 || d.B != 25 || d.Diff != 15 || !d.InA || !d.InB {
		t.Errorf("requests_total delta = %+v", byName["requests_total"])
	}
	// Histogram expands to _count/_sum.
	if d, ok := byName["latency_ns_count"]; !ok || d.Diff != 1 {
		t.Errorf("latency_ns_count delta = %+v", byName["latency_ns_count"])
	}
	if d, ok := byName["latency_ns_sum"]; !ok || d.Diff != 500 {
		t.Errorf("latency_ns_sum delta = %+v", byName["latency_ns_sum"])
	}
	// New family carries InA=false.
	if d, ok := byName["appeared_total"]; !ok || d.InA || !d.InB || d.B != 1 {
		t.Errorf("appeared_total delta = %+v", byName["appeared_total"])
	}
	// Unchanged metrics are omitted.
	if _, ok := byName["steady_total"]; ok {
		t.Error("unchanged steady_total reported")
	}
	if _, ok := byName["pool_size"]; ok {
		t.Error("unchanged pool_size reported")
	}
}

func TestSnapshotDeltaIdentical(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c_total", "").Add(4)
	r.NewHistogram("h_ns", "").Observe(7)
	snap := renderJSON(t, r)
	deltas, err := SnapshotDelta(snap, snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Fatalf("identical snapshots produced %d deltas: %+v", len(deltas), deltas)
	}
}

func TestSnapshotDeltaDisappeared(t *testing.T) {
	ra := NewRegistry()
	ra.NewCounter("gone_total", "").Add(9)
	snapA := renderJSON(t, ra)
	snapB := renderJSON(t, NewRegistry())
	deltas, err := SnapshotDelta(snapA, snapB)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1: %+v", len(deltas), deltas)
	}
	d := deltas[0]
	if d.Name != "gone_total" || !d.InA || d.InB || d.A != 9 || d.Diff != -9 {
		t.Errorf("disappeared delta = %+v", d)
	}
}

func TestSnapshotDeltaMalformed(t *testing.T) {
	good := renderJSON(t, NewRegistry())
	for _, bad := range []string{
		`not json`,
		`{"weird": "string-value"}`,
		`{"weird": {"nested": true}}`,
	} {
		if _, err := SnapshotDelta([]byte(bad), good); err == nil {
			t.Errorf("SnapshotDelta(%q, good) succeeded", bad)
		}
		if _, err := SnapshotDelta(good, []byte(bad)); err == nil {
			t.Errorf("SnapshotDelta(good, %q) succeeded", bad)
		}
	}
}

// TestRegistrySnapshotDelta covers the method form.
func TestRegistrySnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("m_total", "")
	c.Add(1)
	a := renderJSON(t, r)
	c.Add(2)
	b := renderJSON(t, r)
	deltas, err := r.SnapshotDelta(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Diff != 2 {
		t.Fatalf("deltas = %+v, want one +2", deltas)
	}
}
