// Package obs is the repository's observability core: dependency-free,
// allocation-free metrics for the serving and simulation hot paths.
//
// Six PRs of performance work (the netsim fast path, farm hosting, the
// policyd frame protocol) are validated only by offline benchsnap runs;
// nothing inside a running daemon or scenario can say what the system is
// doing right now. obs closes that gap with three primitives sized for
// hot paths that already fought for every allocation:
//
//   - Counter: a monotonically increasing count, sharded across padded
//     per-P-ish cells so concurrent Adds never share a cache line.
//   - Gauge: a float64 point-in-time value (active connections, GC mark
//     seconds sampled from runtime/metrics).
//   - Histogram: a fixed 64-bucket power-of-two latency/size histogram —
//     bucket i holds values in (2^(i-1), 2^i] — sharded like counters.
//
// All record paths (Add, Inc, Set, Observe) perform zero allocations and
// cost a few nanoseconds; SetEnabled(false) turns every record path into
// a single atomic load and branch, so instrumented code never pays more
// than one predictable branch when observability is off.
//
// Metrics register in a Registry (usually Default, via the package-level
// NewCounter/NewGauge/NewHistogram constructors) which renders the
// Prometheus text exposition format and JSON. Registration is meant for
// package init: construct once, record forever.
package obs

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// enabled gates every record path. Default on: production binaries are
// observable unless they opt out.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled toggles all record paths package-wide. Disabling does not
// reset values; re-enabling resumes accumulation.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether record paths are live. Instrumented code can
// consult it to skip work that only feeds metrics (e.g. a time.Now pair
// around a request).
func Enabled() bool { return enabled.Load() }

// nShards is the power-of-two shard count record paths spread over,
// sized to the machine's parallelism at startup and capped so idle
// metrics stay small.
var nShards = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n > 64 {
		n = 64
	}
	return n
}()

var shardMask = uint32(nShards - 1)

// shardIdx picks this goroutine's shard. Goroutine stacks live at
// distinct addresses, so hashing the address of a stack variable spreads
// concurrent writers across shards without runtime internals or
// goroutine IDs; within one goroutine the index is stable enough that a
// tight record loop keeps hitting the same cache line.
func shardIdx() uint32 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return uint32(p>>10^p>>20) & shardMask
}

// pad64 is one cache-line-padded atomic cell.
type pad64 struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. The zero value
// is not usable; obtain one from a Registry (or NewCounter).
type Counter struct {
	shards []pad64
}

func newCounter() *Counter { return &Counter{shards: make([]pad64, nShards)} }

// Add increments the counter by n. It never allocates; when obs is
// disabled it is a load and a branch. Single-shard registries (the
// common case on small GOMAXPROCS) skip the shard hash entirely.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	var i uint32
	if shardMask != 0 {
		i = shardIdx()
	}
	c.shards[i].v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a float64 point-in-time value. Writes are atomic; Add is a
// CAS loop, fine for the per-connection and per-sample rates gauges see.
// The zero value is not usable; obtain one from a Registry (or NewGauge).
type Gauge struct {
	bits atomic.Uint64
}

func newGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add adds delta to the gauge (negative deltas decrement).
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// floatBits/bitsFloat are math.Float64bits/Float64frombits without the
// import (kept local so the package's dependency list stays flat).
func floatBits(f float64) uint64 { return *(*uint64)(unsafe.Pointer(&f)) }
func bitsFloat(b uint64) float64 { return *(*float64)(unsafe.Pointer(&b)) }
