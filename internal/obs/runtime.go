package obs

import (
	"runtime/metrics"
)

// Runtime GC gauges, sampled from runtime/metrics at render time via a
// Default-registry collector. These make the ROADMAP's "~8% of macro
// bench time in background marking" claim visible per run instead of
// requiring an offline profile.
var (
	gGCMarkSeconds = NewGauge("go_gc_mark_cpu_seconds",
		"Cumulative CPU seconds spent in GC mark (assist + dedicated + idle).")
	gCPUTotalSeconds = NewGauge("go_cpu_total_seconds",
		"Cumulative CPU seconds available to the process (runtime/metrics /cpu/classes/total).")
	gGCMarkFraction = NewGauge("go_gc_mark_cpu_fraction",
		"Fraction of available CPU spent in GC mark since process start.")
	gGCCycles = NewGauge("go_gc_cycles_total",
		"Completed GC cycles since process start.")
	gHeapObjects = NewGauge("go_heap_objects_bytes",
		"Bytes of live heap occupied by objects.")
)

var runtimeSamples = []metrics.Sample{
	{Name: "/cpu/classes/gc/mark/assist:cpu-seconds"},
	{Name: "/cpu/classes/gc/mark/dedicated:cpu-seconds"},
	{Name: "/cpu/classes/gc/mark/idle:cpu-seconds"},
	{Name: "/cpu/classes/total:cpu-seconds"},
	{Name: "/gc/cycles/total:gc-cycles"},
	{Name: "/memory/classes/heap/objects:bytes"},
}

func init() { Default.AddCollector(sampleRuntime) }

// sampleRuntime refreshes the runtime gauges. Also callable directly
// (e.g. before an end-of-run dump with collectors disabled).
func sampleRuntime() {
	s := make([]metrics.Sample, len(runtimeSamples))
	copy(s, runtimeSamples)
	metrics.Read(s)
	mark := sampleFloat(s[0]) + sampleFloat(s[1]) + sampleFloat(s[2])
	total := sampleFloat(s[3])
	gGCMarkSeconds.Set(mark)
	gCPUTotalSeconds.Set(total)
	if total > 0 {
		gGCMarkFraction.Set(mark / total)
	}
	gGCCycles.Set(sampleFloat(s[4]))
	gHeapObjects.Set(sampleFloat(s[5]))
}

func sampleFloat(s metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindFloat64:
		return s.Value.Float64()
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	default:
		return 0
	}
}
