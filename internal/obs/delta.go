package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Delta is one metric's drift between two rendered JSON snapshots.
// Histograms contribute two deltas, `name_count` and `name_sum`, since
// bucket-level drift is rarely actionable across runs.
type Delta struct {
	Name string  `json:"name"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
	// Diff is B - A. For counters a negative value usually means the
	// snapshots came from different processes, not a decrement.
	Diff float64 `json:"diff"`
	// InA/InB distinguish "changed" from "appeared"/"disappeared" —
	// a family registered in only one of the two revisions.
	InA bool `json:"in_a"`
	InB bool `json:"in_b"`
}

// SnapshotDelta diffs two snapshots rendered by WriteJSON into
// counter/gauge deltas, sorted by metric name. Metrics with identical
// values on both sides are omitted; metrics present on only one side are
// reported with the corresponding In* flag cleared. The input order does
// matter: deltas read as "what changed going from a to b".
func (r *Registry) SnapshotDelta(a, b []byte) ([]Delta, error) {
	return SnapshotDelta(a, b)
}

// SnapshotDelta is the package-level form of Registry.SnapshotDelta; the
// snapshots carry their own metric universe, so no registry state is
// needed to diff them.
func SnapshotDelta(a, b []byte) ([]Delta, error) {
	av, err := parseSnapshot(a)
	if err != nil {
		return nil, fmt.Errorf("obs: snapshot a: %w", err)
	}
	bv, err := parseSnapshot(b)
	if err != nil {
		return nil, fmt.Errorf("obs: snapshot b: %w", err)
	}
	names := make(map[string]struct{}, len(av)+len(bv))
	for n := range av {
		names[n] = struct{}{}
	}
	for n := range bv {
		names[n] = struct{}{}
	}
	var out []Delta
	for n := range names {
		x, inA := av[n]
		y, inB := bv[n]
		if inA && inB && x == y {
			continue
		}
		out = append(out, Delta{Name: n, A: x, B: y, Diff: y - x, InA: inA, InB: inB})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// histogramJSON mirrors WriteJSON's histogram object.
type histogramJSON struct {
	Count *float64 `json:"count"`
	Sum   *float64 `json:"sum"`
}

// parseSnapshot flattens a WriteJSON document into name → value:
// counters and gauges map directly, histograms expand to _count/_sum.
func parseSnapshot(data []byte) (map[string]float64, error) {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(raw))
	for name, msg := range raw {
		var v float64
		if err := json.Unmarshal(msg, &v); err == nil {
			out[name] = v
			continue
		}
		var h histogramJSON
		if err := json.Unmarshal(msg, &h); err != nil || h.Count == nil || h.Sum == nil {
			return nil, fmt.Errorf("metric %q: neither scalar nor histogram", name)
		}
		out[name+"_count"] = *h.Count
		out[name+"_sum"] = *h.Sum
	}
	return out, nil
}
