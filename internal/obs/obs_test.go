package obs

import (
	"math"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := newCounter()
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := newCounter()
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("Value = %d, want %d", got, goroutines*per)
	}
}

func TestGaugeBasics(t *testing.T) {
	g := newGauge()
	g.Set(1.5)
	g.Add(2.0)
	g.Add(-0.5)
	if got := g.Value(); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("Value = %g, want 3.0", got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21}, {^uint64(0), histBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Every bucket's upper bound must land in its own bucket.
	for i := 0; i < 63; i++ {
		if got := bucketOf(BucketUpper(i)); got != i {
			t.Errorf("bucketOf(BucketUpper(%d)=%d) = %d", i, BucketUpper(i), got)
		}
	}
}

func TestHistogramSnapshotAndQuantile(t *testing.T) {
	h := newHistogram()
	vals := []uint64{1, 2, 3, 100, 1000, 1000, 5000, 1 << 20}
	for _, v := range vals {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(vals))
	}
	var sum uint64
	for _, v := range vals {
		sum += v
	}
	if s.Sum != sum {
		t.Fatalf("Sum = %d, want %d", s.Sum, sum)
	}
	// The quantile bucket must contain the exact sample at the same
	// rank loadgen's pctile uses: sorted[int(q*(n-1))].
	sorted := append([]uint64{}, vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		want := sorted[int(q*float64(len(sorted)-1))]
		lo, hi := s.Quantile(q)
		if want <= lo || want > hi {
			t.Errorf("Quantile(%g) = (%d, %d], exact sample %d outside", q, lo, hi, want)
		}
	}
}

func TestHistogramSub(t *testing.T) {
	h := newHistogram()
	h.Observe(10)
	before := h.Snapshot()
	h.Observe(20)
	h.Observe(30)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 || d.Sum != 50 {
		t.Fatalf("delta count=%d sum=%d, want 2/50", d.Count, d.Sum)
	}
}

func TestSetEnabledNoOp(t *testing.T) {
	defer SetEnabled(true)
	c, g, h := newCounter(), newGauge(), newHistogram()
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() = true after SetEnabled(false)")
	}
	c.Inc()
	g.Set(7)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("record paths not disabled")
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("record paths did not resume")
	}
}

// TestRecordPathsZeroAlloc is the satellite guard: every record path
// must be allocation-free, enabled or not.
func TestRecordPathsZeroAlloc(t *testing.T) {
	c, g, h := newCounter(), newGauge(), newHistogram()
	start := time.Now()
	paths := map[string]func(){
		"Counter.Add":            func() { c.Add(3) },
		"Counter.Inc":            func() { c.Inc() },
		"Gauge.Set":              func() { g.Set(1.0) },
		"Gauge.Add":              func() { g.Add(1.0) },
		"Histogram.Observe":      func() { h.Observe(123456) },
		"Histogram.ObserveSince": func() { h.ObserveSince(start) },
	}
	for name, fn := range paths {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s allocates %.1f allocs/op, want 0", name, n)
		}
	}
	defer SetEnabled(true)
	SetEnabled(false)
	for name, fn := range paths {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s (disabled) allocates %.1f allocs/op, want 0", name, n)
		}
	}
}

func TestRegistryPrometheusRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter(`demo_requests_total{path="fast"}`, "Requests.")
	c2 := r.NewCounter(`demo_requests_total{path="legacy"}`, "Requests.")
	g := r.NewGauge("demo_active_conns", "Active conns.")
	h := r.NewHistogram("demo_latency_ns", "Latency.")
	c.Add(5)
	c2.Add(2)
	g.Set(3)
	h.Observe(100)
	h.Observe(2000)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE demo_requests_total counter",
		`demo_requests_total{path="fast"} 5`,
		`demo_requests_total{path="legacy"} 2`,
		"# TYPE demo_active_conns gauge",
		"demo_active_conns 3",
		"# TYPE demo_latency_ns histogram",
		`demo_latency_ns_bucket{le="128"} 1`,
		`demo_latency_ns_bucket{le="2048"} 2`,
		`demo_latency_ns_bucket{le="+Inf"} 2`,
		"demo_latency_ns_sum 2100",
		"demo_latency_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q\n%s", want, out)
		}
	}
	// TYPE must appear exactly once per family.
	if n := strings.Count(out, "# TYPE demo_requests_total"); n != 1 {
		t.Errorf("TYPE line for demo_requests_total appears %d times", n)
	}
	checkPrometheusParseable(t, out)
}

// checkPrometheusParseable is a minimal exposition-format validator:
// every non-comment line is `series value` where series is a metric
// name with optional well-formed {label="value"} set.
func checkPrometheusParseable(t *testing.T, out string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Errorf("unparseable line %q", line)
			continue
		}
		series := line[:sp]
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Errorf("bad label set in %q", line)
			}
		}
		val := line[sp+1:]
		if val == "" || strings.ContainsAny(val, " \t") {
			t.Errorf("bad value in %q", line)
		}
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "x")
	b := r.NewCounter("dup_total", "x")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registered counter not shared")
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("j_total", "x").Add(7)
	h := r.NewHistogram("j_lat_ns", "x")
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i * 10)
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"j_total": 7`) {
		t.Errorf("JSON missing counter: %s", out)
	}
	if !strings.Contains(out, `"count":100`) {
		t.Errorf("JSON missing histogram count: %s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("h_total", "x").Add(9)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for _, tc := range []struct{ url, want, ctype string }{
		{srv.URL, "h_total 9", "text/plain"},
		{srv.URL + "?format=json", `"h_total": 9`, "application/json"},
	} {
		resp, err := srv.Client().Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if !strings.Contains(string(body[:n]), tc.want) {
			t.Errorf("GET %s missing %q: %s", tc.url, tc.want, body[:n])
		}
		if !strings.Contains(resp.Header.Get("Content-Type"), tc.ctype) {
			t.Errorf("GET %s Content-Type = %q", tc.url, resp.Header.Get("Content-Type"))
		}
	}
}

func TestRuntimeCollector(t *testing.T) {
	sampleRuntime()
	if gGCCycles.Value() < 0 {
		t.Fatal("negative GC cycles")
	}
	if gHeapObjects.Value() <= 0 {
		t.Fatal("heap objects gauge not populated")
	}
	// The collector is wired into Default: rendering must include the
	// runtime families.
	var b strings.Builder
	if err := Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"go_gc_mark_cpu_seconds", "go_heap_objects_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Default render missing %s", want)
		}
	}
}
