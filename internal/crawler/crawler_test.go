package crawler

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/netsim"
	"repro/internal/webserver"
)

// farmSeq hands each test farm a distinct listener IP so tests can host
// several sites on one network.
var farmSeq atomic.Uint32

func startSite(t *testing.T, nw *netsim.Network, cfg webserver.Config) *webserver.Site {
	t.Helper()
	farm, err := webserver.NewFarm(nw, fmt.Sprintf("203.0.116.%d", farmSeq.Add(1)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { farm.Close() })
	site, err := farm.StartSite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func TestCompliantCrawlerHonorsWildcard(t *testing.T) {
	nw := netsim.New()
	site := startSite(t, nw, webserver.WildcardDisallowSite("w.test", "203.0.113.10"))
	c, err := New(nw, Profile{Token: "GPTBot", SourceIP: "24.0.1.1", Behavior: Compliant})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Crawl(context.Background(), site.URL())
	if err != nil {
		t.Fatal(err)
	}
	if !v.RobotsRequested || v.RobotsStatus != 200 {
		t.Fatalf("robots fetch: %+v", v)
	}
	if len(v.Fetched) != 0 {
		t.Fatalf("compliant crawler fetched %v on a fully disallowed site", v.Fetched)
	}
	if len(v.Skipped) == 0 {
		t.Fatal("crawler should record the skipped root")
	}
	// Server log agrees: only /robots.txt was requested.
	for _, rec := range site.Log() {
		if rec.Path != "/robots.txt" {
			t.Fatalf("server saw %s from a compliant crawler", rec.Path)
		}
	}
}

func TestCompliantCrawlerCrawlsAllowedSite(t *testing.T) {
	nw := netsim.New()
	robots := "User-agent: *\nDisallow: /blog/\n"
	cfg := webserver.Config{
		Domain: "open.test", IP: "203.0.113.11",
		RobotsTxt: &robots,
		Pages:     webserver.ContentPages("open.test"),
	}
	site := startSite(t, nw, cfg)
	c, _ := New(nw, Profile{Token: "CCBot", SourceIP: "17.0.1.1", Behavior: Compliant})
	v, err := c.Crawl(context.Background(), site.URL())
	if err != nil {
		t.Fatal(err)
	}
	fetched := map[string]bool{}
	for _, p := range v.Fetched {
		fetched[p] = true
	}
	if !fetched["/"] || !fetched["/gallery.html"] || !fetched["/images/art1.png"] {
		t.Fatalf("fetched = %v; BFS should reach linked content", v.Fetched)
	}
	if fetched["/blog/post1.html"] {
		t.Fatal("crawler entered the disallowed /blog/ prefix")
	}
	found := false
	for _, p := range v.Skipped {
		if p == "/blog/post1.html" {
			found = true
		}
	}
	if !found {
		t.Fatalf("skipped = %v; /blog/post1.html should be recorded", v.Skipped)
	}
}

func TestFetchIgnoreCrawler(t *testing.T) {
	nw := netsim.New()
	site := startSite(t, nw, webserver.WildcardDisallowSite("b.test", "203.0.113.12"))
	c, _ := New(nw, Profile{Token: "Bytespider", SourceIP: "16.0.1.1", Behavior: FetchIgnore})
	v, err := c.Crawl(context.Background(), site.URL())
	if err != nil {
		t.Fatal(err)
	}
	if !v.RobotsRequested {
		t.Fatal("Bytespider profile must fetch robots.txt")
	}
	if len(v.Fetched) == 0 {
		t.Fatal("Bytespider profile must crawl despite the disallow")
	}
	// Server log shows both the robots fetch and content fetches — the
	// §5.2.1 passive-measurement signature of fetch-but-ignore.
	sawRobots, sawContent := false, false
	for _, rec := range site.Log() {
		if rec.Path == "/robots.txt" {
			sawRobots = true
		} else {
			sawContent = true
		}
	}
	if !sawRobots || !sawContent {
		t.Fatal("server log must show robots fetch AND content fetches")
	}
}

func TestNoFetchCrawler(t *testing.T) {
	nw := netsim.New()
	site := startSite(t, nw, webserver.WildcardDisallowSite("n.test", "203.0.113.13"))
	c, _ := New(nw, Profile{Token: "ShadyFetcher", SourceIP: "99.0.0.1", Behavior: NoFetch})
	v, err := c.Crawl(context.Background(), site.URL())
	if err != nil {
		t.Fatal(err)
	}
	if v.RobotsRequested {
		t.Fatal("no-fetch crawler must not request robots.txt")
	}
	if len(v.Fetched) == 0 {
		t.Fatal("no-fetch crawler crawls unrestricted")
	}
	for _, rec := range site.Log() {
		if rec.Path == "/robots.txt" {
			t.Fatal("server must never see a robots.txt request")
		}
	}
}

func TestBuggyFetchCrawler(t *testing.T) {
	nw := netsim.New()
	site := startSite(t, nw, webserver.WildcardDisallowSite("bug.test", "203.0.113.14"))
	c, _ := New(nw, Profile{Token: "BuggyBot", SourceIP: "99.0.0.2", Behavior: BuggyFetch})
	v, err := c.Crawl(context.Background(), site.URL())
	if err != nil {
		t.Fatal(err)
	}
	if !v.RobotsRequested || v.RobotsPath == "/robots.txt" {
		t.Fatalf("buggy crawler must request a malformed robots path, got %q", v.RobotsPath)
	}
	if v.RobotsStatus == 200 {
		t.Fatal("malformed robots request must not succeed")
	}
	if len(v.Fetched) == 0 {
		t.Fatal("buggy crawler crawls because it never saw the policy")
	}
}

func TestIntermittentFetchCrawler(t *testing.T) {
	nw := netsim.New()
	site := startSite(t, nw, webserver.WildcardDisallowSite("int.test", "203.0.113.15"))
	c, _ := New(nw, Profile{Token: "SometimesBot", SourceIP: "99.0.0.3", Behavior: IntermittentFetch})
	ctx := context.Background()
	var robotsFetches int
	for i := 0; i < 6; i++ {
		v, err := c.Crawl(ctx, site.URL())
		if err != nil {
			t.Fatal(err)
		}
		if v.RobotsRequested {
			robotsFetches++
			if len(v.Fetched) != 0 {
				t.Fatal("when it fetches robots it must honor them")
			}
		} else if len(v.Fetched) == 0 {
			t.Fatal("without robots it crawls")
		}
	}
	if robotsFetches != 2 {
		t.Fatalf("robots fetched %d times in 6 visits, want 2 (1-in-3)", robotsFetches)
	}
	_ = site
}

func TestFetchOneCompliant(t *testing.T) {
	nw := netsim.New()
	site := startSite(t, nw, webserver.WildcardDisallowSite("one.test", "203.0.113.16"))
	c, _ := New(nw, Profile{Token: "ChatGPT-User", SourceIP: "18.0.1.1", Behavior: Compliant})
	fetched, v, err := c.FetchOne(context.Background(), site.URL()+"/about.html")
	if err != nil {
		t.Fatal(err)
	}
	if fetched {
		t.Fatal("compliant assistant must decline a disallowed page")
	}
	if !v.RobotsRequested {
		t.Fatal("assistant must first check robots.txt")
	}
	// Allowed site: the fetch goes through.
	open := startSite(t, nw, webserver.Config{
		Domain: "one2.test", IP: "203.0.113.17",
		Pages: webserver.ContentPages("one2.test"),
	})
	fetched, _, err = c.FetchOne(context.Background(), open.URL()+"/about.html")
	if err != nil {
		t.Fatal(err)
	}
	if !fetched {
		t.Fatal("assistant must fetch from a site with no robots.txt")
	}
}

func TestFetchOneNoFetch(t *testing.T) {
	nw := netsim.New()
	site := startSite(t, nw, webserver.WildcardDisallowSite("one3.test", "203.0.113.18"))
	c, _ := New(nw, Profile{Token: "ThirdPartyFetcher", SourceIP: "99.0.0.4", Behavior: NoFetch})
	fetched, v, err := c.FetchOne(context.Background(), site.URL()+"/about.html")
	if err != nil {
		t.Fatal(err)
	}
	if !fetched || v.RobotsRequested {
		t.Fatal("no-fetch assistant grabs the page without consulting robots.txt")
	}
}

func TestPerAgentSiteDistinguishesCrawlers(t *testing.T) {
	nw := netsim.New()
	site := startSite(t, nw, webserver.PerAgentDisallowSite("per.test", "203.0.113.19",
		[]string{"GPTBot", "CCBot"}))
	blocked, _ := New(nw, Profile{Token: "GPTBot", SourceIP: "24.0.1.2", Behavior: Compliant})
	free, _ := New(nw, Profile{Token: "Googlebot", SourceIP: "66.0.1.1", Behavior: Compliant})
	ctx := context.Background()
	v1, _ := blocked.Crawl(ctx, site.URL())
	v2, _ := free.Crawl(ctx, site.URL())
	if len(v1.Fetched) != 0 {
		t.Fatal("GPTBot is named and must fetch nothing")
	}
	if len(v2.Fetched) == 0 {
		t.Fatal("Googlebot is not named and crawls freely")
	}
}

func TestExtractLinks(t *testing.T) {
	body := `<a href="/a.html">A</a> <A HREF="/b.html">B</A>
<img src="/img.png"> <a href="#frag">skip</a>
<a href="javascript:void(0)">skip</a> <a href="https://other.test/x">ext</a>`
	links := ExtractLinks(body)
	sort.Strings(links)
	want := []string{"/a.html", "/b.html", "/img.png", "https://other.test/x"}
	if len(links) != len(want) {
		t.Fatalf("links = %v, want %v", links, want)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("links = %v, want %v", links, want)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	nw := netsim.New()
	if _, err := New(nw, Profile{SourceIP: "1.1.1.1"}); err == nil {
		t.Fatal("missing token must fail")
	}
	if _, err := New(nw, Profile{Token: "X"}); err == nil {
		t.Fatal("missing source IP must fail")
	}
}

func TestBehaviorStrings(t *testing.T) {
	for b, want := range map[Behavior]string{
		Compliant: "compliant", FetchIgnore: "fetch-ignore", NoFetch: "no-fetch",
		BuggyFetch: "buggy-fetch", IntermittentFetch: "intermittent-fetch",
		Behavior(99): "unknown",
	} {
		if got := b.String(); got != want {
			t.Errorf("Behavior(%d) = %q, want %q", b, got, want)
		}
	}
}

func TestMaxPagesBound(t *testing.T) {
	nw := netsim.New()
	site := startSite(t, nw, webserver.Config{
		Domain: "cap.test", IP: "203.0.113.20",
		Pages: webserver.ContentPages("cap.test"),
	})
	c, _ := New(nw, Profile{Token: "CapBot", SourceIP: "99.0.0.5", Behavior: NoFetch, MaxPages: 2})
	v, err := c.Crawl(context.Background(), site.URL())
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Fetched) != 2 {
		t.Fatalf("fetched %d pages, want cap of 2", len(v.Fetched))
	}
}

// §8.2: a compliant crawler with a robots.txt cache keeps honoring the
// STALE policy after the site tightens it — fetching content a fresh read
// would forbid.
func TestStaleRobotsCache(t *testing.T) {
	nw := netsim.New()
	openRobots := "User-agent: *\nDisallow: /admin/\n"
	site := startSite(t, nw, webserver.Config{
		Domain: "stale.test", IP: "203.0.113.21",
		RobotsTxt: &openRobots,
		Pages:     webserver.ContentPages("stale.test"),
	})
	caching, _ := New(nw, Profile{
		Token: "CachedBot", SourceIP: "99.0.0.6",
		Behavior: Compliant, CacheRobots: true,
	})
	fresh, _ := New(nw, Profile{
		Token: "FreshBot", SourceIP: "99.0.0.7", Behavior: Compliant,
	})
	ctx := context.Background()

	// First visit: permissive policy, both crawl.
	v, err := caching.Crawl(ctx, site.URL())
	if err != nil {
		t.Fatal(err)
	}
	if v.RobotsFromCache || len(v.Fetched) == 0 {
		t.Fatalf("first visit must fetch robots and crawl: %+v", v)
	}

	// The site owner flips to a full disallow.
	blocked := "User-agent: *\nDisallow: /\n"
	site.SetRobots(&blocked)

	// The caching crawler reuses the stale policy and keeps crawling.
	v, err = caching.Crawl(ctx, site.URL())
	if err != nil {
		t.Fatal(err)
	}
	if !v.RobotsFromCache {
		t.Fatal("second visit must come from cache")
	}
	if len(v.Fetched) == 0 {
		t.Fatal("stale cache means the crawler still fetches content")
	}
	// A cache-less crawler sees the new policy and stops.
	v, err = fresh.Crawl(ctx, site.URL())
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Fetched) != 0 {
		t.Fatal("fresh crawler must honor the tightened policy")
	}
	// After invalidation the caching crawler complies again.
	caching.InvalidateCache()
	v, err = caching.Crawl(ctx, site.URL())
	if err != nil {
		t.Fatal(err)
	}
	if v.RobotsFromCache {
		t.Fatal("invalidated cache must refetch")
	}
	if len(v.Fetched) != 0 {
		t.Fatal("refetched policy must be honored")
	}
}

func TestFetchOneUsesCache(t *testing.T) {
	nw := netsim.New()
	site := startSite(t, nw, webserver.WildcardDisallowSite("cache2.test", "203.0.113.22"))
	c, _ := New(nw, Profile{
		Token: "CachedBot", SourceIP: "99.0.0.8",
		Behavior: Compliant, CacheRobots: true,
	})
	ctx := context.Background()
	if _, _, err := c.FetchOne(ctx, site.URL()+"/about.html"); err != nil {
		t.Fatal(err)
	}
	fetched, v, err := c.FetchOne(ctx, site.URL()+"/gallery.html")
	if err != nil {
		t.Fatal(err)
	}
	if !v.RobotsFromCache {
		t.Fatal("second FetchOne must hit the cache")
	}
	if fetched {
		t.Fatal("cached disallow must still be honored")
	}
	// Server saw exactly one robots.txt request.
	robotsReqs := 0
	for _, rec := range site.Log() {
		if rec.Path == "/robots.txt" {
			robotsReqs++
		}
	}
	if robotsReqs != 1 {
		t.Fatalf("robots.txt requests = %d, want 1", robotsReqs)
	}
}

func TestProfileAccessorAndDefaults(t *testing.T) {
	nw := netsim.New()
	c, err := New(nw, Profile{Token: "X", SourceIP: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Profile()
	if p.MaxPages != 32 {
		t.Errorf("default MaxPages = %d, want 32", p.MaxPages)
	}
	if p.UserAgent == "" || p.Behavior != Compliant {
		t.Errorf("defaults not applied: %+v", p)
	}
}

func TestCrawlBadURL(t *testing.T) {
	nw := netsim.New()
	c, _ := New(nw, Profile{Token: "X", SourceIP: "1.2.3.4"})
	if _, err := c.Crawl(context.Background(), "http://bad url/"); err == nil {
		t.Fatal("malformed base URL must error")
	}
	if _, _, err := c.FetchOne(context.Background(), "http://bad url/x"); err == nil {
		t.Fatal("malformed FetchOne URL must error")
	}
}

func TestFetchOneUnreachableHost(t *testing.T) {
	nw := netsim.New()
	c, _ := New(nw, Profile{Token: "X", SourceIP: "1.2.3.4", Behavior: NoFetch})
	fetched, _, err := c.FetchOne(context.Background(), "http://nowhere.test/x")
	if err == nil || fetched {
		t.Fatal("unreachable host must surface the transport error")
	}
}

func TestFetchOneBlockedPage(t *testing.T) {
	// A 403 from an active blocker is a failed fetch, not content.
	nw := netsim.New()
	cfg := webserver.Config{
		Domain: "fb.test", IP: "203.0.113.23",
		Pages: webserver.ContentPages("fb.test"),
		Blocker: webserver.BlockerFunc(func(r *http.Request) *webserver.BlockDecision {
			return &webserver.BlockDecision{Status: 403, Body: "no"}
		}),
	}
	site := startSite(t, nw, cfg)
	c, _ := New(nw, Profile{Token: "X", SourceIP: "1.2.3.4", Behavior: NoFetch})
	fetched, v, err := c.FetchOne(context.Background(), site.URL()+"/about.html")
	if err != nil {
		t.Fatal(err)
	}
	if fetched || len(v.Failed) != 1 {
		t.Fatalf("blocked fetch must be recorded as failed: %+v", v)
	}
}

func TestCrawlRecordsFailedPages(t *testing.T) {
	nw := netsim.New()
	// Index links to a missing page: the 404 lands in Failed, crawl goes on.
	cfg := webserver.Config{
		Domain: "miss.test", IP: "203.0.113.24",
		Pages: map[string]webserver.Page{
			"/":          {Body: `<a href="/gone.html">x</a><a href="/here.html">y</a>`},
			"/here.html": {Body: "<html>here</html>"},
		},
	}
	site := startSite(t, nw, cfg)
	c, _ := New(nw, Profile{Token: "X", SourceIP: "1.2.3.4", Behavior: NoFetch})
	v, err := c.Crawl(context.Background(), site.URL())
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Failed) != 1 || v.Failed[0] != "/gone.html" {
		t.Fatalf("failed = %v, want [/gone.html]", v.Failed)
	}
	found := false
	for _, p := range v.Fetched {
		if p == "/here.html" {
			found = true
		}
	}
	if !found {
		t.Fatal("crawl must continue past a 404")
	}
}

func TestCrawlContextCancellation(t *testing.T) {
	nw := netsim.New()
	site := startSite(t, nw, webserver.Config{
		Domain: "ctx.test", IP: "203.0.113.25",
		Pages: webserver.ContentPages("ctx.test"),
	})
	c, _ := New(nw, Profile{Token: "X", SourceIP: "1.2.3.4", Behavior: NoFetch})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err := c.Crawl(ctx, site.URL())
	if err != nil {
		t.Fatal(err) // crawl itself tolerates per-request failures
	}
	if len(v.Fetched) != 0 {
		t.Fatalf("cancelled context must fetch nothing, got %v", v.Fetched)
	}
}
