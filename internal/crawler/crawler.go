// Package crawler implements the AI crawler fleet for the paper's §5
// experiments: an HTTP crawler engine that optionally fetches and honors
// robots.txt, plus per-company compliance profiles reproducing the
// behaviours the paper observed in the wild (compliant crawlers,
// Bytespider's fetch-but-ignore, assistant crawlers that never fetch
// robots.txt, and one with a buggy robots fetch).
package crawler

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"repro/internal/netsim"
	"repro/internal/robots"
	"repro/internal/useragent"
)

// Behavior is how a crawler treats robots.txt.
type Behavior int

const (
	// Compliant crawlers fetch robots.txt and honor it.
	Compliant Behavior = iota
	// FetchIgnore crawlers fetch robots.txt but ignore its directives
	// (Bytespider, §5.2.1).
	FetchIgnore
	// NoFetch crawlers never request robots.txt (most third-party AI
	// assistant crawlers, §5.2.2).
	NoFetch
	// BuggyFetch crawlers request a malformed robots.txt URL, never see
	// the real policy, and crawl as if unrestricted (§5.2.2: "one has a
	// bug in its implementation that caused it to incorrectly fetch the
	// robots.txt file").
	BuggyFetch
	// IntermittentFetch crawlers only sometimes fetch robots.txt ("one
	// did not fetch the robots.txt file most of the time", §5.2.2). The
	// engine fetches when the visit sequence number modulo 3 is 0.
	IntermittentFetch
)

// String names the behaviour.
func (b Behavior) String() string {
	switch b {
	case Compliant:
		return "compliant"
	case FetchIgnore:
		return "fetch-ignore"
	case NoFetch:
		return "no-fetch"
	case BuggyFetch:
		return "buggy-fetch"
	case IntermittentFetch:
		return "intermittent-fetch"
	default:
		return "unknown"
	}
}

// Profile configures one crawler.
type Profile struct {
	// Token is the product token presented in robots.txt terms.
	Token string
	// UserAgent is the full User-Agent header; defaults to a realistic
	// header derived from Token.
	UserAgent string
	// SourceIP is the address the crawler dials from.
	SourceIP string
	// Behavior is the robots.txt compliance mode.
	Behavior Behavior
	// MaxPages bounds a single crawl; 0 means 32.
	MaxPages int
	// CacheRobots makes the crawler reuse a previously fetched robots.txt
	// for the same host instead of refetching — the §8.2 staleness
	// problem: compliant crawlers "may cache robots.txt and may continue
	// to fetch content even after it has changed".
	CacheRobots bool
}

// Crawler is a runnable crawler instance.
type Crawler struct {
	profile Profile
	client  *http.Client
	// baseHdr carries the preset User-Agent and is shared across all of
	// this crawler's requests; transports only read request headers, so
	// one map serves every fetch.
	baseHdr     http.Header
	visits      int
	robotsCache map[string]*robots.Robots
}

// Visit is the record of one crawl of one site.
type Visit struct {
	// BaseURL is the crawl root.
	BaseURL string
	// RobotsRequested is true when any robots.txt request was attempted.
	RobotsRequested bool
	// RobotsPath is the path the crawler used for robots.txt (buggy
	// crawlers use a malformed one).
	RobotsPath string
	// RobotsStatus is the robots.txt response status (0 if not fetched).
	RobotsStatus int
	// RobotsFromCache is true when a cached policy was reused instead of
	// refetching (§8.2 staleness).
	RobotsFromCache bool
	// Fetched lists content paths successfully downloaded (HTTP 200).
	Fetched []string
	// Failed lists content paths requested but not served (non-200), such
	// as pages behind an active blocker.
	Failed []string
	// Skipped lists paths the crawler declined to fetch because robots.txt
	// disallowed them.
	Skipped []string
}

// New creates a crawler on the given network.
func New(nw *netsim.Network, p Profile) (*Crawler, error) {
	if p.Token == "" {
		return nil, fmt.Errorf("crawler: profile needs a product token")
	}
	if p.SourceIP == "" {
		return nil, fmt.Errorf("crawler: profile needs a source IP")
	}
	if p.UserAgent == "" {
		p.UserAgent = useragent.FullUA(p.Token, "1.0")
	}
	if p.MaxPages == 0 {
		p.MaxPages = 32
	}
	return &Crawler{
		profile:     p,
		client:      nw.HTTPClient(p.SourceIP),
		baseHdr:     http.Header{"User-Agent": []string{p.UserAgent}},
		robotsCache: make(map[string]*robots.Robots),
	}, nil
}

// fetchPolicy retrieves (or, with CacheRobots, reuses) the robots.txt
// policy for host, recording the request on v. A nil return means no
// usable policy was obtained.
func (c *Crawler) fetchPolicy(ctx context.Context, base *url.URL, robotsPath string, v *Visit) *robots.Robots {
	if c.profile.CacheRobots {
		if cached, ok := c.robotsCache[base.Host]; ok {
			v.RobotsFromCache = true
			return cached
		}
	}
	v.RobotsRequested = true
	v.RobotsPath = robotsPath
	robotsURL := *base
	robotsURL.Path = robotsPath
	robotsURL.RawQuery = ""
	status, body, err := c.get(ctx, robotsURL.String())
	if err != nil {
		return nil
	}
	v.RobotsStatus = status
	if status != http.StatusOK || robotsPath != "/robots.txt" {
		return nil
	}
	// The fleet sees the same few policies thousands of times; the shared
	// content-keyed cache parses each distinct body once.
	policy := robots.ParseCached(body)
	if c.profile.CacheRobots {
		c.robotsCache[base.Host] = policy
	}
	return policy
}

// InvalidateCache drops the cached robots.txt for every host, modeling a
// crawler whose cache TTL expired.
func (c *Crawler) InvalidateCache() {
	c.robotsCache = make(map[string]*robots.Robots)
}

// Profile returns the crawler's configuration.
func (c *Crawler) Profile() Profile { return c.profile }

// AdvanceVisits advances the visit counter by n without fetching, as if
// n earlier visits had already happened. Behaviours keyed to the visit
// sequence (IntermittentFetch's every-third-visit robots fetch) resume
// mid-cycle, so a simulation can reconstruct a crawler at an arbitrary
// point of its schedule from a fresh instance.
func (c *Crawler) AdvanceVisits(n int) {
	if n > 0 {
		c.visits += n
	}
}

// Crawl visits the site rooted at baseURL: depending on the profile it
// fetches robots.txt first, then breadth-first follows same-site links
// from "/" subject to the robots policy.
func (c *Crawler) Crawl(ctx context.Context, baseURL string) (*Visit, error) {
	c.visits++
	base, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("crawler: bad base URL: %w", err)
	}
	v := &Visit{BaseURL: baseURL}

	var policy *robots.Robots
	fetchRobots := false
	robotsPath := "/robots.txt"
	switch c.profile.Behavior {
	case Compliant, FetchIgnore:
		fetchRobots = true
	case BuggyFetch:
		fetchRobots = true
		robotsPath = "/robots.txt%00" // malformed: never resolves to the policy
	case IntermittentFetch:
		fetchRobots = (c.visits-1)%3 == 0
	}
	if fetchRobots {
		policy = c.fetchPolicy(ctx, base, robotsPath, v)
	}
	honor := c.profile.Behavior == Compliant || c.profile.Behavior == IntermittentFetch

	allowed := func(path string) bool {
		if policy == nil || !honor {
			return true
		}
		return policy.Allowed(c.profile.Token, path)
	}

	sitePrefix := base.Scheme + "://" + base.Host
	queue := []string{"/"}
	seen := map[string]bool{"/": true}
	for len(queue) > 0 && len(v.Fetched) < c.profile.MaxPages {
		path := queue[0]
		queue = queue[1:]
		if !allowed(path) {
			v.Skipped = append(v.Skipped, path)
			continue
		}
		status, body, err := c.get(ctx, sitePrefix+path)
		if err != nil {
			continue
		}
		if status != http.StatusOK {
			v.Failed = append(v.Failed, path)
			continue
		}
		v.Fetched = append(v.Fetched, path)
		for _, link := range ExtractLinks(body) {
			p, ok := sameSitePath(link, base, sitePrefix)
			if !ok {
				continue
			}
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return v, nil
}

// sameSitePath resolves a link against the crawl base and returns its
// path when it stays on the same host. Root-relative and same-site
// absolute links — the overwhelming majority — resolve without parsing a
// URL; anything that needs real URL semantics (percent-escapes, dot
// segments, relative references, foreign hosts) falls back to net/url so
// the resolved path matches what ResolveReference would produce.
func sameSitePath(link string, base *url.URL, sitePrefix string) (string, bool) {
	// "/." catches every dot-segment form ("/../x", "/./x", trailing "/..")
	// in the absolute paths the fast path handles; false positives like
	// "/.well-known/" just take the slower, equivalent fallback.
	if !strings.Contains(link, "%") && !strings.Contains(link, "/.") {
		switch {
		case strings.HasPrefix(link, "/"):
			if !strings.HasPrefix(link, "//") { // "//host/path" is scheme-relative
				return trimPath(link), true
			}
		case strings.HasPrefix(link, sitePrefix):
			rest := link[len(sitePrefix):]
			if rest == "" {
				return "/", true
			}
			if rest[0] == '/' {
				return trimPath(rest), true
			}
		}
	}
	ref, err := url.Parse(link)
	if err != nil {
		return "", false
	}
	abs := base.ResolveReference(ref)
	if abs.Host != base.Host {
		return "", false
	}
	if abs.Path == "" {
		return "/", true
	}
	return abs.Path, true
}

// trimPath drops a query string or fragment from a root-relative link,
// mirroring what resolving through url.URL.Path would keep.
func trimPath(p string) string {
	if i := strings.IndexAny(p, "?#"); i >= 0 {
		p = p[:i]
	}
	if p == "" {
		return "/"
	}
	return p
}

// FetchOne retrieves a single URL the way assistant crawlers do for a
// user-triggered request, honoring the profile's robots behaviour.
// It reports whether the content was fetched (vs declined by policy).
func (c *Crawler) FetchOne(ctx context.Context, rawURL string) (fetched bool, v *Visit, err error) {
	c.visits++
	u, err := url.Parse(rawURL)
	if err != nil {
		return false, nil, fmt.Errorf("crawler: bad URL: %w", err)
	}
	v = &Visit{BaseURL: rawURL}

	var policy *robots.Robots
	fetchRobots := false
	robotsPath := "/robots.txt"
	switch c.profile.Behavior {
	case Compliant, FetchIgnore:
		fetchRobots = true
	case BuggyFetch:
		fetchRobots = true
		robotsPath = "/robots.txt%00"
	case IntermittentFetch:
		fetchRobots = (c.visits-1)%3 == 0
	}
	if fetchRobots {
		policy = c.fetchPolicy(ctx, u, robotsPath, v)
	}
	honor := c.profile.Behavior == Compliant || c.profile.Behavior == IntermittentFetch
	path := u.Path
	if path == "" {
		path = "/"
	}
	if policy != nil && honor && !policy.Allowed(c.profile.Token, path) {
		v.Skipped = append(v.Skipped, path)
		return false, v, nil
	}
	status, _, err := c.get(ctx, rawURL)
	if err != nil {
		return false, v, err
	}
	if status != http.StatusOK {
		v.Failed = append(v.Failed, path)
		return false, v, nil
	}
	v.Fetched = append(v.Fetched, path)
	return true, v, nil
}

// maxBodyBytes bounds how much of a response a crawler reads.
const maxBodyBytes = 1 << 20

// copyBufPool recycles the scratch buffers get uses to drain response
// bodies; draining fully (instead of closing early) is what lets the
// transport return the connection to the keep-alive pool.
var copyBufPool = sync.Pool{
	New: func() any { return make([]byte, 16*1024) },
}

func (c *Crawler) get(ctx context.Context, rawURL string) (int, string, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return 0, "", err
	}
	// Built by hand instead of NewRequestWithContext so every fetch
	// shares baseHdr rather than allocating and populating a fresh map.
	req := (&http.Request{
		Method:     http.MethodGet,
		URL:        u,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     c.baseHdr,
		Host:       u.Host,
	}).WithContext(ctx)
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if resp.ContentLength > 0 && resp.ContentLength <= maxBodyBytes {
		sb.Grow(int(resp.ContentLength))
	}
	buf := copyBufPool.Get().([]byte)
	_, err = io.CopyBuffer(&sb, io.LimitReader(resp.Body, maxBodyBytes), buf)
	copyBufPool.Put(buf) //nolint:staticcheck // fixed-size []byte scratch buffer
	if err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, sb.String(), nil
}

// ExtractLinks scans HTML for href and src attribute values. It is a
// small tokenizer, not a full HTML parser: good enough for the
// well-formed pages the instrumented sites serve. Attribute names are
// matched case-insensitively in place, without lowercasing a copy of the
// page.
func ExtractLinks(body string) []string {
	var out []string
	for _, attr := range []string{`href="`, `src="`} {
		idx := 0
		for {
			i := indexFold(body[idx:], attr)
			if i < 0 {
				break
			}
			start := idx + i + len(attr)
			end := strings.IndexByte(body[start:], '"')
			if end < 0 {
				break
			}
			link := body[start : start+end]
			if link != "" && !strings.HasPrefix(link, "#") && !hasPrefixFold(link, "javascript:") {
				out = append(out, link)
			}
			idx = start + end
		}
	}
	return out
}

// indexFold returns the index of the first ASCII case-insensitive
// occurrence of substr in s, or -1. substr must be lowercase ASCII.
func indexFold(s, substr string) int {
	if len(substr) == 0 {
		return 0
	}
	for i := 0; i+len(substr) <= len(s); i++ {
		if lowerByte(s[i]) != substr[0] {
			continue
		}
		if hasPrefixFold(s[i:], substr) {
			return i
		}
	}
	return -1
}

// hasPrefixFold reports whether s starts with prefix under ASCII case
// folding. prefix must be lowercase ASCII.
func hasPrefixFold(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		if lowerByte(s[i]) != prefix[i] {
			return false
		}
	}
	return true
}

func lowerByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}
