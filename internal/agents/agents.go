// Package agents is the registry of AI crawler user agents studied in the
// paper, mirroring the role the Dark Visitors list [113] plays for the
// original study, plus the rule lists of the blocking services evaluated
// in §6 (Cloudflare, Appendix C.2/C.3) and the hosting providers of §4
// (Squarespace, Appendix C.1).
package agents

import (
	"sort"
	"strings"
	"time"

	"repro/internal/useragent"
)

// Category classifies an AI user agent the way the paper does (§2.1,
// derived from the Dark Visitors taxonomy).
type Category int

const (
	// AIData crawlers collect training data (e.g. GPTBot).
	AIData Category = iota
	// AIAssistant crawlers fetch pages live for AI assistants
	// (e.g. ChatGPT-User).
	AIAssistant
	// AISearch crawlers index content for AI-backed search engines
	// (e.g. OAI-SearchBot).
	AISearch
	// Undocumented agents appear in the wild without documentation
	// (e.g. anthropic-ai).
	Undocumented
)

// String returns the paper's name for the category.
func (c Category) String() string {
	switch c {
	case AIData:
		return "AI Data"
	case AIAssistant:
		return "AI Assistant"
	case AISearch:
		return "AI Search"
	case Undocumented:
		return "Undocumented AI"
	default:
		return "Unknown"
	}
}

// TriState captures the Yes/No/'-' cells of Table 1.
type TriState int

const (
	// Unknown renders as '-' (no documentation or no observation).
	Unknown TriState = iota
	// Yes renders as "Yes".
	Yes
	// No renders as "No".
	No
)

// String renders the Table 1 cell text.
func (t TriState) String() string {
	switch t {
	case Yes:
		return "Yes"
	case No:
		return "No"
	default:
		return "-"
	}
}

// Agent is one row of Table 1.
type Agent struct {
	// UserAgent is the product token as it appears in robots.txt.
	UserAgent string
	// Category is the crawler's purpose class.
	Category Category
	// Company operates the crawler.
	Company string
	// PublishesIPs reports whether the company documents the IP ranges
	// the crawler uses ('-' for virtual tokens, which have no crawler).
	PublishesIPs TriState
	// ClaimsRespect reports whether the company's documentation claims
	// the crawler respects robots.txt.
	ClaimsRespect TriState
	// RespectsInPractice is the paper's §5 measurement result; the
	// measurement harness in internal/measure regenerates this column.
	RespectsInPractice TriState
	// VirtualToken is true for control-only tokens (Applebot-Extended,
	// Google-Extended, Webzio-Extended) that no real crawler presents.
	VirtualToken bool
	// Announced is when the user agent became publicly known, gating when
	// sites could have started naming it in robots.txt (§3.2).
	Announced time.Time
	// IPPrefix is the simulated /24 this crawler dials from in netsim
	// experiments (documented ranges for publishers, stable-but-unlisted
	// pools otherwise).
	IPPrefix string
}

// Token returns the canonical lowercase product token.
func (a Agent) Token() string {
	return strings.ToLower(useragent.ExtractToken(a.UserAgent))
}

// FullUserAgent returns a realistic full User-Agent header for the agent.
func (a Agent) FullUserAgent() string {
	return useragent.FullUA(a.UserAgent, "1.0")
}

func d(y int, m time.Month) time.Time {
	return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
}

// Table1 is the paper's Table 1: the 24 AI user agents studied, with the
// attributes the paper documents for each. Order matches the paper
// (alphabetical).
var Table1 = []Agent{
	{UserAgent: "Amazonbot", Category: AISearch, Company: "Amazon", PublishesIPs: Yes, ClaimsRespect: Yes, RespectsInPractice: Yes, Announced: d(2022, time.May), IPPrefix: "12.0.1"},
	{UserAgent: "AI2Bot", Category: AIData, Company: "Ai2", PublishesIPs: No, ClaimsRespect: Unknown, RespectsInPractice: Unknown, Announced: d(2024, time.May), IPPrefix: "13.0.1"},
	{UserAgent: "anthropic-ai", Category: Undocumented, Company: "Anthropic", PublishesIPs: No, ClaimsRespect: Unknown, RespectsInPractice: Unknown, Announced: d(2023, time.April), IPPrefix: "14.0.1"},
	{UserAgent: "Applebot", Category: AISearch, Company: "Apple", PublishesIPs: Yes, ClaimsRespect: Yes, RespectsInPractice: Yes, Announced: d(2022, time.January), IPPrefix: "15.0.1"},
	{UserAgent: "Applebot-Extended", Category: AIData, Company: "Apple", PublishesIPs: Unknown, ClaimsRespect: Yes, RespectsInPractice: Unknown, VirtualToken: true, Announced: d(2024, time.June)},
	{UserAgent: "Bytespider", Category: AIData, Company: "ByteDance", PublishesIPs: No, ClaimsRespect: Unknown, RespectsInPractice: No, Announced: d(2023, time.May), IPPrefix: "16.0.1"},
	{UserAgent: "CCBot", Category: AIData, Company: "Common Crawl", PublishesIPs: Yes, ClaimsRespect: Yes, RespectsInPractice: Yes, Announced: d(2022, time.January), IPPrefix: "17.0.1"},
	{UserAgent: "ChatGPT-User", Category: AIAssistant, Company: "OpenAI", PublishesIPs: Yes, ClaimsRespect: Yes, RespectsInPractice: Yes, Announced: d(2023, time.August), IPPrefix: "18.0.1"},
	{UserAgent: "Claude-Web", Category: Undocumented, Company: "Anthropic", PublishesIPs: No, ClaimsRespect: Unknown, RespectsInPractice: Unknown, Announced: d(2023, time.September), IPPrefix: "19.0.1"},
	{UserAgent: "ClaudeBot", Category: AIData, Company: "Anthropic", PublishesIPs: No, ClaimsRespect: Yes, RespectsInPractice: Yes, Announced: d(2024, time.March), IPPrefix: "20.0.1"},
	{UserAgent: "cohere-ai", Category: Undocumented, Company: "Cohere", PublishesIPs: No, ClaimsRespect: Unknown, RespectsInPractice: Unknown, Announced: d(2023, time.September), IPPrefix: "21.0.1"},
	{UserAgent: "Diffbot", Category: AIData, Company: "Diffbot", PublishesIPs: No, ClaimsRespect: Unknown, RespectsInPractice: Unknown, Announced: d(2022, time.January), IPPrefix: "22.0.1"},
	{UserAgent: "FacebookBot", Category: AIData, Company: "Meta", PublishesIPs: Yes, ClaimsRespect: Yes, RespectsInPractice: Unknown, Announced: d(2022, time.January), IPPrefix: "23.0.1"},
	{UserAgent: "Google-Extended", Category: AIData, Company: "Google", PublishesIPs: Unknown, ClaimsRespect: Yes, RespectsInPractice: Unknown, VirtualToken: true, Announced: d(2023, time.September)},
	{UserAgent: "GPTBot", Category: AIData, Company: "OpenAI", PublishesIPs: Yes, ClaimsRespect: Yes, RespectsInPractice: Yes, Announced: d(2023, time.August), IPPrefix: "24.0.1"},
	{UserAgent: "Kangaroo Bot", Category: AIData, Company: "Kangaroo LLM", PublishesIPs: No, ClaimsRespect: Yes, RespectsInPractice: Unknown, Announced: d(2024, time.July), IPPrefix: "25.0.1"},
	{UserAgent: "Meta-ExternalAgent", Category: AIData, Company: "Meta", PublishesIPs: Yes, ClaimsRespect: Unknown, RespectsInPractice: Yes, Announced: d(2024, time.August), IPPrefix: "26.0.1"},
	{UserAgent: "Meta-ExternalFetcher", Category: AIAssistant, Company: "Meta", PublishesIPs: Yes, ClaimsRespect: No, RespectsInPractice: Unknown, Announced: d(2024, time.August), IPPrefix: "27.0.1"},
	{UserAgent: "OAI-SearchBot", Category: AISearch, Company: "OpenAI", PublishesIPs: Yes, ClaimsRespect: Yes, RespectsInPractice: Yes, Announced: d(2024, time.July), IPPrefix: "28.0.1"},
	{UserAgent: "omgili", Category: AIData, Company: "Webz.io", PublishesIPs: No, ClaimsRespect: Yes, RespectsInPractice: Unknown, Announced: d(2022, time.January), IPPrefix: "29.0.1"},
	{UserAgent: "PerplexityBot", Category: AISearch, Company: "Perplexity", PublishesIPs: No, ClaimsRespect: Yes, RespectsInPractice: Unknown, Announced: d(2023, time.June), IPPrefix: "30.0.1"},
	{UserAgent: "Timpibot", Category: AIData, Company: "Timpi", PublishesIPs: No, ClaimsRespect: Unknown, RespectsInPractice: Unknown, Announced: d(2023, time.October), IPPrefix: "31.0.1"},
	{UserAgent: "Webzio-Extended", Category: AIData, Company: "Webz.io", PublishesIPs: Unknown, ClaimsRespect: Yes, RespectsInPractice: Unknown, VirtualToken: true, Announced: d(2024, time.April)},
	{UserAgent: "YouBot", Category: AISearch, Company: "You.com", PublishesIPs: No, ClaimsRespect: Unknown, RespectsInPractice: Unknown, Announced: d(2023, time.February), IPPrefix: "32.0.1"},
}

// ByToken returns the Table 1 agent with the given product token.
func ByToken(token string) (Agent, bool) {
	want := strings.ToLower(useragent.ExtractToken(token))
	for _, a := range Table1 {
		if a.Token() == want {
			return a, true
		}
	}
	return Agent{}, false
}

// Tokens returns the product tokens of all Table 1 agents in table order.
func Tokens() []string {
	out := make([]string, len(Table1))
	for i, a := range Table1 {
		out[i] = a.UserAgent
	}
	return out
}

// ByCategory returns the Table 1 agents in the given category.
func ByCategory(c Category) []Agent {
	var out []Agent
	for _, a := range Table1 {
		if a.Category == c {
			out = append(out, a)
		}
	}
	return out
}

// RealCrawlers returns Table 1 agents that operate actual crawlers
// (excluding the three virtual control tokens).
func RealCrawlers() []Agent {
	var out []Agent
	for _, a := range Table1 {
		if !a.VirtualToken {
			out = append(out, a)
		}
	}
	return out
}

// VirtualTokens returns the control-only tokens (§6.2: Google-Extended,
// Applebot-Extended, Webzio-Extended).
func VirtualTokens() []Agent {
	var out []Agent
	for _, a := range Table1 {
		if a.VirtualToken {
			out = append(out, a)
		}
	}
	return out
}

// Figure3Agents are the ten user agents whose adoption curves Figure 3
// plots, in legend order.
var Figure3Agents = []string{
	"GPTBot", "CCBot", "Google-Extended", "ChatGPT-User", "anthropic-ai",
	"ClaudeBot", "Claude-Web", "PerplexityBot", "Bytespider", "omgili",
}

// AnnouncedBy reports whether the token was publicly known by t, so a site
// could plausibly have written a rule for it. Unknown tokens return true
// (no gating).
func AnnouncedBy(token string, t time.Time) bool {
	a, ok := ByToken(token)
	if !ok {
		return true
	}
	return !a.Announced.After(t)
}

// SquarespaceBlockedAgents is the list from Appendix C.1: the ten user
// agents Squarespace fully disallows when a customer turns off the
// "Artificial Intelligence Crawlers" option.
var SquarespaceBlockedAgents = []string{
	"GPTBot", "ChatGPT-User", "CCBot", "anthropic-ai", "Google-Extended",
	"FacebookBot", "Claude-Web", "cohere-ai", "PerplexityBot",
	"Applebot-Extended",
}

// CloudflareDefinitelyAutomated is the user-agent list from Appendix C.2:
// what Cloudflare's "Definitely Automated" managed ruleset blocks.
var CloudflareDefinitelyAutomated = []string{
	"360Spider", "AHC", "aiohttp", "anthropic-ai", "Apache-HttpClient",
	"axios", "binlar", "Bytespider", "CCBot", "centurybot", "Claudebot",
	"curl", "Diffbot", "Go-http-client", "grub.org", "HeadlessChrome",
	"httpx", "libwww-perl", "magpie-crawler", "MeltwaterNews", "node-fetch",
	"Nutch", "omgili", "PerplexityBot", "PhantomJS", "PHP-Curl-Class",
	"PiplBot", "python-requests", "Python-urllib", "Scrapy", "serpstatbot",
	"Teoma", "W3C-checklink", "wget",
}

// CloudflareBlockAIBots is the user-agent substring list from Appendix
// C.3: what Cloudflare's "Block AI Scrapers and Crawlers" option blocks.
// Entries with a trailing '/' match the token-plus-version form only.
var CloudflareBlockAIBots = []string{
	"Amazonbot", "AwarioRssBot", "AwarioSmartBot", "Bytespider", "CCBot/",
	"ChatGPT-User", "Claude-Web", "ClaudeBot", "cohere-ai", "Diffbot/",
	"GPTBot/", "magpie-crawler", "MeltwaterNews", "omgili/", "PerplexityBot",
	"PiplBot", "YouBot",
}

// CloudflareVerifiedAIBots are the AI crawlers on Cloudflare's verified
// bots list (§6.3 footnote 8), with whether the Block AI Bots feature
// blocks them. Verified bots are validated by source IP, not user agent.
var CloudflareVerifiedAIBots = map[string]bool{
	"Amazonbot":     true,
	"Applebot":      false,
	"GPTBot":        true,
	"OAI-SearchBot": false,
	"ChatGPT-User":  true,
	"ICC Crawler":   false,
	"DuckAssistbot": false,
}

// genericBotNames seed the synthetic public crawler list (the paper probes
// 590 user agents from github.com/monperrus/crawler-user-agents on top of
// Table 1's 24).
var genericBotNames = []string{
	// The Awario/magpie/Meltwater/Pipl entries matter: they are in the
	// public corpus and in Cloudflare's Block AI list but not in Table 1,
	// so the §6.3 grey-box probe can only discover those rules through
	// the generic list, exactly as the paper's 590-UA probe did.
	"AwarioRssBot", "AwarioSmartBot", "magpie-crawler", "MeltwaterNews",
	"PiplBot",
	"AhrefsBot", "SemrushBot", "DotBot", "MJ12bot", "BLEXBot", "YandexBot",
	"bingbot", "DuckDuckBot", "Baiduspider", "Sogou", "Exabot", "SeznamBot",
	"PetalBot", "Qwantify", "archive.org_bot", "ia_archiver", "FeedFetcher",
	"Slackbot", "Twitterbot", "LinkedInBot", "Pinterestbot", "WhatsApp",
	"TelegramBot", "Discordbot", "redditbot", "rogerbot", "SiteAuditBot",
	"UptimeRobot", "StatusCake", "Pingdom", "GTmetrix", "W3C_Validator",
	"ZoominfoBot", "DataForSeoBot", "AwarioBot", "Linguee", "turnitinbot",
	"CopyScape", "Screaming Frog", "netEstate", "SEOkicks", "CheckMarkNetwork",
	"startmebot", "AppSignalBot", "Better Uptime Bot", "CriteoBot",
	"proximic", "grapeshot", "AdsBot-Google", "Mediapartners-Google",
	"Applebot-Extended-Probe", "facebookexternalhit", "Embedly", "Quora-Bot",
	"vkShare", "OdklBot", "SkypeUriPreview", "bitlybot", "Tumblr",
	"NewsBlur", "Feedly", "Superfeedr", "inoreader", "TinyRSS",
}

// GenericCrawlerUserAgents returns n full user-agent strings representing
// the public crawler-user-agents corpus [79]. The list is deterministic:
// base bot names are cycled with version variants.
func GenericCrawlerUserAgents(n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		name := genericBotNames[i%len(genericBotNames)]
		version := 1 + i/len(genericBotNames)
		out = append(out, useragent.FullUA(name, itoa(version)+".0"))
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// AllCompanies returns the distinct companies of Table 1, sorted.
func AllCompanies() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range Table1 {
		if !seen[a.Company] {
			seen[a.Company] = true
			out = append(out, a.Company)
		}
	}
	sort.Strings(out)
	return out
}
