package agents

import (
	"strings"
	"testing"
	"time"

	"repro/internal/useragent"
)

func TestTable1Size(t *testing.T) {
	if len(Table1) != 24 {
		t.Fatalf("Table 1 has %d agents, want 24 (as in the paper)", len(Table1))
	}
}

func TestTable1TokensUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Table1 {
		tok := a.Token()
		if tok == "" {
			t.Errorf("agent %q has empty token", a.UserAgent)
		}
		if seen[tok] {
			t.Errorf("duplicate token %q", tok)
		}
		seen[tok] = true
	}
}

func TestVirtualTokens(t *testing.T) {
	vt := VirtualTokens()
	if len(vt) != 3 {
		t.Fatalf("virtual tokens = %d, want 3", len(vt))
	}
	want := map[string]bool{
		"Applebot-Extended": true, "Google-Extended": true, "Webzio-Extended": true,
	}
	for _, a := range vt {
		if !want[a.UserAgent] {
			t.Errorf("unexpected virtual token %q", a.UserAgent)
		}
		if a.PublishesIPs != Unknown {
			t.Errorf("%s: virtual tokens have no IPs, PublishesIPs must be '-'", a.UserAgent)
		}
		if a.IPPrefix != "" {
			t.Errorf("%s: virtual token must not have an IP prefix", a.UserAgent)
		}
	}
	if len(RealCrawlers())+len(vt) != len(Table1) {
		t.Error("real + virtual must partition Table 1")
	}
}

func TestRealCrawlersHaveIPs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range RealCrawlers() {
		if a.IPPrefix == "" {
			t.Errorf("%s: real crawler needs a simulated IP prefix", a.UserAgent)
		}
		if seen[a.IPPrefix] {
			t.Errorf("%s: IP prefix %s reused", a.UserAgent, a.IPPrefix)
		}
		seen[a.IPPrefix] = true
	}
}

func TestByToken(t *testing.T) {
	a, ok := ByToken("gptbot")
	if !ok || a.Company != "OpenAI" {
		t.Fatalf("ByToken(gptbot) = %+v, %v", a, ok)
	}
	// Full UA strings resolve via token extraction.
	a, ok = ByToken(useragent.FullUA("ClaudeBot", "1.0")[strings.Index(useragent.FullUA("ClaudeBot", "1.0"), "ClaudeBot"):])
	if !ok || a.Company != "Anthropic" {
		t.Fatalf("ByToken(ClaudeBot/1.0…) = %+v, %v", a, ok)
	}
	if _, ok := ByToken("NotARealBot"); ok {
		t.Fatal("unknown token must not resolve")
	}
}

func TestCategories(t *testing.T) {
	// Paper's taxonomy: spot-check representative classifications.
	checks := map[string]Category{
		"GPTBot":        AIData,
		"ChatGPT-User":  AIAssistant,
		"OAI-SearchBot": AISearch,
		"anthropic-ai":  Undocumented,
		"Bytespider":    AIData,
		"PerplexityBot": AISearch,
	}
	for tok, want := range checks {
		a, ok := ByToken(tok)
		if !ok {
			t.Fatalf("missing %s", tok)
		}
		if a.Category != want {
			t.Errorf("%s category = %v, want %v", tok, a.Category, want)
		}
	}
	if len(ByCategory(Undocumented)) != 3 {
		t.Errorf("undocumented agents = %d, want 3 (anthropic-ai, Claude-Web, cohere-ai)",
			len(ByCategory(Undocumented)))
	}
}

func TestCategoryStrings(t *testing.T) {
	for c, want := range map[Category]string{
		AIData: "AI Data", AIAssistant: "AI Assistant", AISearch: "AI Search",
		Undocumented: "Undocumented AI", Category(9): "Unknown",
	} {
		if got := c.String(); got != want {
			t.Errorf("Category(%d) = %q, want %q", c, got, want)
		}
	}
}

func TestTriStateStrings(t *testing.T) {
	if Yes.String() != "Yes" || No.String() != "No" || Unknown.String() != "-" {
		t.Fatal("tri-state rendering broken")
	}
}

func TestTable1PaperFacts(t *testing.T) {
	// §5.2.1: Bytespider fetches robots.txt but does not respect it.
	bs, _ := ByToken("Bytespider")
	if bs.RespectsInPractice != No {
		t.Error("Bytespider must be recorded as not respecting robots.txt")
	}
	// The seven respecting visitors of the passive study.
	for _, tok := range []string{"Amazonbot", "Applebot", "CCBot", "ClaudeBot",
		"GPTBot", "Meta-ExternalAgent", "OAI-SearchBot", "ChatGPT-User"} {
		a, _ := ByToken(tok)
		if a.RespectsInPractice != Yes {
			t.Errorf("%s must be recorded as respecting robots.txt", tok)
		}
	}
	// Meta-ExternalFetcher documents that it ignores robots.txt (§8.1).
	mef, _ := ByToken("Meta-ExternalFetcher")
	if mef.ClaimsRespect != No {
		t.Error("Meta-ExternalFetcher claims not to respect robots.txt")
	}
}

func TestAnnouncedBy(t *testing.T) {
	aug2023 := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	if AnnouncedBy("GPTBot", aug2023.AddDate(0, -1, 0)) {
		t.Error("GPTBot was not announced before Aug 2023")
	}
	if !AnnouncedBy("GPTBot", aug2023) {
		t.Error("GPTBot was announced by Aug 2023")
	}
	if !AnnouncedBy("CCBot", time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("CCBot predates the study window")
	}
	if !AnnouncedBy("TotallyUnknownBot", time.Time{}) {
		t.Error("unknown tokens must not be gated")
	}
}

func TestFigure3AgentsResolvable(t *testing.T) {
	if len(Figure3Agents) != 10 {
		t.Fatalf("figure 3 plots 10 agents, have %d", len(Figure3Agents))
	}
	for _, tok := range Figure3Agents {
		if _, ok := ByToken(tok); !ok {
			t.Errorf("figure 3 agent %q not in Table 1", tok)
		}
	}
}

func TestSquarespaceList(t *testing.T) {
	if len(SquarespaceBlockedAgents) != 10 {
		t.Fatalf("Squarespace blocks %d agents, want 10 (App. C.1)",
			len(SquarespaceBlockedAgents))
	}
	for _, ua := range SquarespaceBlockedAgents {
		if _, ok := ByToken(ua); !ok {
			t.Errorf("Squarespace agent %q not in Table 1", ua)
		}
	}
}

func TestCloudflareBlockAIBotsList(t *testing.T) {
	if len(CloudflareBlockAIBots) != 17 {
		t.Fatalf("Block AI Bots blocks %d user agents, want 17 (§6.3)",
			len(CloudflareBlockAIBots))
	}
	// Five entries are outside the 24 studied agents: the four the C.3
	// note calls out as not on the Dark Visitors AI list (AwarioRssBot,
	// AwarioSmartBot, magpie-crawler, MeltwaterNews) plus PiplBot.
	nonAI := 0
	for _, pat := range CloudflareBlockAIBots {
		tok := strings.TrimSuffix(pat, "/")
		if _, ok := ByToken(tok); !ok {
			nonAI++
		}
	}
	if nonAI != 5 {
		t.Errorf("non-Table-1 entries = %d, want 5", nonAI)
	}
}

func TestCloudflareDefinitelyAutomatedList(t *testing.T) {
	if len(CloudflareDefinitelyAutomated) != 34 {
		t.Fatalf("Definitely Automated blocks %d user agents, want 34 (App. C.2)",
			len(CloudflareDefinitelyAutomated))
	}
	// The §6.3 probe UAs must be present.
	for _, ua := range []string{"Claudebot", "anthropic-ai", "HeadlessChrome", "libwww-perl"} {
		found := false
		for _, e := range CloudflareDefinitelyAutomated {
			if strings.EqualFold(e, ua) {
				found = true
			}
		}
		if !found {
			t.Errorf("%q missing from Definitely Automated list", ua)
		}
	}
}

func TestVerifiedAIBots(t *testing.T) {
	// §6.3 footnote 8: Applebot, OAI-SearchBot, ICC Crawler and
	// DuckAssistbot are verified but NOT blocked.
	for ua, blocked := range map[string]bool{
		"Applebot": false, "OAI-SearchBot": false, "ICC Crawler": false,
		"DuckAssistbot": false, "Amazonbot": true, "GPTBot": true,
		"ChatGPT-User": true,
	} {
		got, ok := CloudflareVerifiedAIBots[ua]
		if !ok {
			t.Errorf("%q missing from verified list", ua)
			continue
		}
		if got != blocked {
			t.Errorf("%q blocked=%v, want %v", ua, got, blocked)
		}
	}
}

func TestGenericCrawlerUserAgents(t *testing.T) {
	uas := GenericCrawlerUserAgents(590)
	if len(uas) != 590 {
		t.Fatalf("len = %d", len(uas))
	}
	seen := map[string]bool{}
	for _, ua := range uas {
		if seen[ua] {
			t.Fatalf("duplicate UA %q", ua)
		}
		seen[ua] = true
		if !strings.Contains(ua, "/") {
			t.Fatalf("UA %q lacks version", ua)
		}
	}
	// Determinism.
	again := GenericCrawlerUserAgents(590)
	for i := range uas {
		if uas[i] != again[i] {
			t.Fatal("generic UA list must be deterministic")
		}
	}
}

func TestAllCompanies(t *testing.T) {
	cs := AllCompanies()
	if len(cs) == 0 {
		t.Fatal("no companies")
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("companies not sorted/unique: %v", cs)
		}
	}
	found := false
	for _, c := range cs {
		if c == "OpenAI" {
			found = true
		}
	}
	if !found {
		t.Fatal("OpenAI missing")
	}
}

func TestFullUserAgent(t *testing.T) {
	a, _ := ByToken("GPTBot")
	full := a.FullUserAgent()
	if !useragent.ContainsFold(full, "GPTBot/") {
		t.Fatalf("full UA %q must contain token/version", full)
	}
}
