package policyd

import (
	"context"
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestVersionFeedInProcess covers the in-process watch channel: current
// version on subscribe, coalescing under a slow consumer, cancel
// detaches.
func TestVersionFeedInProcess(t *testing.T) {
	f := NewVersionFeed("v1")
	if f.Current() != "v1" {
		t.Fatalf("Current %q", f.Current())
	}

	// In-process subscribers read Current themselves; the channel carries
	// only subsequent announcements (serveConn adds the on-connect line
	// for wire clients).
	ch, cancel := f.Watch()
	defer cancel()

	// Publishing the current version is a no-op.
	f.Publish("v1")
	select {
	case v := <-ch:
		t.Fatalf("duplicate publish delivered %q", v)
	default:
	}

	// A slow consumer never blocks Publish; it observes the latest value.
	for i := 0; i < 100; i++ {
		f.Publish("v2")
		f.Publish("v3")
	}
	last := ""
	for {
		select {
		case v := <-ch:
			last = v
			continue
		default:
		}
		break
	}
	if last != "v3" {
		t.Fatalf("coalesced tail %q, want v3", last)
	}

	cancel()
	f.Publish("v4") // must not panic or block on the dead watcher
}

// TestWatchWire runs the line protocol over netsim: a subscriber hears
// the current version on connect and each distinct swap afterwards, in
// order.
func TestWatchWire(t *testing.T) {
	nw := netsim.New()
	ln, err := nw.Listen("10.0.0.2", 82)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(mustSnap(t, "v1"))
	go ServeWatch(ln, svc)

	c, err := nw.Dial(context.Background(), "10.0.0.1", "10.0.0.2:82")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	lines := make(chan string, 8)
	go WatchVersions(c, func(v string) bool {
		lines <- v
		return true
	})
	expect := func(want string) {
		t.Helper()
		select {
		case v := <-lines:
			if v != want {
				t.Fatalf("watch line %q, want %q", v, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no watch line within 5s, want %q", want)
		}
	}

	expect("v1")
	svc.Swap(mustSnap(t, "v2"))
	expect("v2")
	svc.Swap(mustSnap(t, "v2")) // same version: silent
	svc.Swap(mustSnap(t, "v3"))
	expect("v3")
}

func mustSnap(t *testing.T, version string) *Snapshot {
	t.Helper()
	b := &Builder{}
	b.Add("h.test", HostConfig{})
	sn, err := b.Build(context.Background(), version, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sn
}
