package policyd

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestFrameV2RoundTrip: the status-OK payload carries version +
// decisions and decodes back exactly.
func TestFrameV2RoundTrip(t *testing.T) {
	ds := []Decision{
		{Allow, SignalNone},
		{Deny, SignalRobotsAgent},
		{Block, SignalBlocker},
	}
	frame := AppendDecisionFrameV2(nil, ds, "2023-40")
	got, version, err := DecodeResponsePayloadV2(frame[4:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if version != "2023-40" {
		t.Fatalf("version %q", version)
	}
	if len(got) != len(ds) {
		t.Fatalf("%d decisions", len(got))
	}
	for i := range ds {
		if got[i] != ds[i] {
			t.Fatalf("decision %d: %v != %v", i, got[i], ds[i])
		}
	}
}

// TestFrameV2RateLimit: the status-1 payload decodes to *RateLimitError
// carrying the retry-after duration.
func TestFrameV2RateLimit(t *testing.T) {
	frame := AppendRateLimitFrame(nil, 1500*time.Millisecond)
	_, _, err := DecodeResponsePayloadV2(frame[4:], nil)
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("error %v, want *RateLimitError", err)
	}
	if rle.RetryAfter != 1500*time.Millisecond {
		t.Fatalf("RetryAfter %s", rle.RetryAfter)
	}
}

// TestFrameV2Malformed: truncated and trailing-garbage payloads must
// error, never panic or mis-decode.
func TestFrameV2Malformed(t *testing.T) {
	good := AppendDecisionFrameV2(nil, []Decision{{Allow, SignalNone}}, "v1")[4:]
	cases := map[string][]byte{
		"empty":            {},
		"status-only":      {0},
		"truncated-verlen": {0, 0},
		"truncated-ver":    {0, 0, 5, 'v'},
		"truncated-count":  good[:len(good)-3],
		"trailing-bytes":   append(append([]byte{}, good...), 0xFF),
		"unknown-status":   {7, 0, 0},
		"ratelimit-short":  {1, 0, 0},
	}
	for name, payload := range cases {
		_, _, err := DecodeResponsePayloadV2(payload, nil)
		if err == nil {
			t.Errorf("%s: decoded without error", name)
		}
		var rle *RateLimitError
		if errors.As(err, &rle) {
			t.Errorf("%s: misread as a rate-limit response", name)
		}
	}
}

// TestFrameV2Serve: one listener speaks both frame dialects — a v2
// client gets versioned responses across a swap, while a legacy v1
// client on the same listener still works.
func TestFrameV2Serve(t *testing.T) {
	nw := netsim.New()
	ln, err := nw.Listen("10.0.0.2", 81)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(mustSnap(t, "v1"))
	go ServeFrames(ln, svc)
	ctx := context.Background()

	c2, err := nw.Dial(ctx, "10.0.0.1", "10.0.0.2:81")
	if err != nil {
		t.Fatal(err)
	}
	fc2, err := NewFrameClientV2(c2)
	if err != nil {
		t.Fatal(err)
	}
	defer fc2.Close()

	qs := []Query{{Host: "h.test", Agent: "GPTBot", Path: "/"}}
	ds, version, err := fc2.Decide(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if version != "v1" || len(ds) != 1 {
		t.Fatalf("v2 decide: version %q, %d decisions", version, len(ds))
	}

	svc.Swap(mustSnap(t, "v2"))
	if _, version, err = fc2.Decide(qs, nil); err != nil || version != "v2" {
		t.Fatalf("after swap: version %q err %v", version, err)
	}

	c1, err := nw.Dial(ctx, "10.0.0.1", "10.0.0.2:81")
	if err != nil {
		t.Fatal(err)
	}
	fc1, err := NewFrameClient(c1)
	if err != nil {
		t.Fatal(err)
	}
	defer fc1.Close()
	if ds, err := fc1.Decide(qs, nil); err != nil || len(ds) != 1 {
		t.Fatalf("legacy v1 decide on dual listener: %d decisions, err %v", len(ds), err)
	}
}
