package policyd

import (
	"testing"
)

// FuzzFrameDecode throws arbitrary payloads at both frame decoders: any
// input must either decode (and then re-encode losslessly) or return an
// error — never panic. This is the boundary a hostile frame peer can
// reach before the connection is dropped.
func FuzzFrameDecode(f *testing.F) {
	seedQ, err := AppendQueryFrame(nil, []Query{
		{Host: "a.test", Agent: "GPTBot", Path: "/"},
		{Host: "b.test", Agent: "ClaudeBot", Path: "/images/art.png"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seedQ[4:])
	seedD := AppendDecisionFrame(nil, []Decision{{Allow, SignalNone}, {Block, SignalBlocker}})
	f.Add(seedD[4:])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255})
	f.Add([]byte{1, 0, 0, 0, 5, 0, 'a'})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if qs, err := DecodeQueryPayload(payload, nil); err == nil {
			re, err := AppendQueryFrame(nil, qs)
			if err != nil {
				t.Fatalf("decoded queries do not re-encode: %v", err)
			}
			back, err := DecodeQueryPayload(re[4:], nil)
			if err != nil || len(back) != len(qs) {
				t.Fatalf("re-encoded queries do not round-trip: %d vs %d, %v", len(back), len(qs), err)
			}
		}
		if ds, err := DecodeDecisionPayload(payload, nil); err == nil {
			re := AppendDecisionFrame(nil, ds)
			back, err := DecodeDecisionPayload(re[4:], nil)
			if err != nil || len(back) != len(ds) {
				t.Fatalf("re-encoded decisions do not round-trip: %d vs %d, %v", len(back), len(ds), err)
			}
		}
	})
}
