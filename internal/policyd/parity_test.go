package policyd

import (
	"context"
	"testing"

	"repro/internal/agents"
	"repro/internal/aitxt"
	"repro/internal/corpus"
	"repro/internal/metatags"
	"repro/internal/robots"
	"repro/internal/useragent"
)

// parityPaths exercises the matcher corners: root, the generic wildcard
// disallows the corpus renders (/admin/, /search, …), the per-agent
// partial patterns (/images/, /gallery/), query strings, mixed-case
// image extensions, and the always-allowed /robots.txt.
var parityPaths = []string{
	"/",
	"/about.html",
	"/admin/",
	"/admin/panel.php",
	"/search?q=art",
	"/images/private/piece.png",
	"/gallery/2024/work.JPG",
	"/blog/2024/post?id=1",
	"/robots.txt",
	"/cgi-bin/run",
	"/piece.webp",
}

// referenceDecision recomputes a decision directly from the raw policy
// surface with the substrate packages the batch pipelines use —
// robots.Robots.Agent/Allowed (the robots.Match path), aitxt.Permitted,
// metatags.Scan, useragent.MatchesAny — composed in the documented
// precedence (the same ordering the scenario flush applies before
// measure.Classify sees a log window: blocked requests first, then
// robots policy, then use-time signals).
func referenceDecision(src HostConfig, agent, path string) Decision {
	if src.Blocklist != nil {
		if _, hit := useragent.MatchesAny(agent, src.Blocklist); hit {
			return Decision{Block, SignalBlocker}
		}
	}
	robotsSignal := SignalNone
	if src.RobotsTxt != "" {
		acc := robots.ParseCached(src.RobotsTxt).Agent(agent)
		if acc.HasRules() {
			robotsSignal = SignalRobotsWildcard
			if acc.Explicit {
				robotsSignal = SignalRobotsAgent
			}
			if !acc.Allowed(path) {
				return Decision{Deny, robotsSignal}
			}
		}
	}
	if src.AITxt != "" && !aitxt.ParseString(src.AITxt).Permitted(path) {
		return Decision{Deny, SignalAITxt}
	}
	if src.MetaHTML != "" {
		d := metatags.Scan(src.MetaHTML)
		if d.NoAI || (d.NoImageAI && aitxt.MediaOf(path) == aitxt.MediaImage) {
			return Decision{Deny, SignalMeta}
		}
	}
	return Decision{Allow, robotsSignal}
}

// TestCorpusParity is the service's correctness anchor: for every host
// in the bench-scale corpus snapshot, every Table 1 agent (plus non-AI
// and off-roster agents), and every parity path, the batched service
// decision must equal the reference composition of direct substrate
// calls. Run at two corpus snapshots so both sparse and dense policy
// states are covered.
func TestCorpusParity(t *testing.T) {
	ctx := context.Background()
	c, err := corpus.New(ctx, corpus.Config{Seed: 20251028, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	queryAgents := append(agents.Tokens(), "Googlebot", "Mozilla", "UnknownCrawler9000")

	for _, snapIdx := range []int{corpus.GPTBotAnnouncedIndex, len(corpus.Snapshots) - 1} {
		snap, err := FromCorpus(ctx, c, snapIdx, 4)
		if err != nil {
			t.Fatal(err)
		}
		svc := NewService(snap)
		checked := 0
		for _, host := range snap.Hosts() {
			src, ok := snap.Source(host)
			if !ok {
				t.Fatalf("no source for %s", host)
			}
			qs := make([]Query, 0, len(queryAgents)*len(parityPaths))
			for _, a := range queryAgents {
				for _, p := range parityPaths {
					qs = append(qs, Query{Host: host, Agent: a, Path: p})
				}
			}
			got := svc.DecideBatch(qs, make([]Decision, 0, len(qs)))
			for i, q := range qs {
				want := referenceDecision(src, q.Agent, q.Path)
				if got[i] != want {
					t.Fatalf("snapshot %s: Decide(%s, %s, %s) = %v/%v, reference = %v/%v",
						snap.Version, q.Host, q.Agent, q.Path,
						got[i].Action, got[i].Signal, want.Action, want.Signal)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatal("no decisions checked")
		}
		t.Logf("snapshot %s: %d hosts, %d decisions parity-checked", snap.Version, snap.Len(), checked)
	}
}

// TestPrecedence pins the multi-signal ordering the package documents:
// blocker > robots > ai.txt > meta, with deny-if-any-denies semantics.
func TestPrecedence(t *testing.T) {
	b := &Builder{Shards: 2}
	// Every signal denies GPTBot on /art.png; precedence picks the winner.
	all := HostConfig{
		RobotsTxt: "User-agent: GPTBot\nDisallow: /\n",
		AITxt:     "Image: N\n",
		MetaHTML:  `<meta name="robots" content="noai">`,
		Blocklist: []string{"GPTBot"},
	}
	b.Add("all.test", all)
	noBlock := all
	noBlock.Blocklist = nil
	b.Add("noblock.test", noBlock)
	noRobots := noBlock
	noRobots.RobotsTxt = ""
	b.Add("norobots.test", noRobots)
	noAITxt := noRobots
	noAITxt.AITxt = ""
	b.Add("noaitxt.test", noAITxt)
	snap, err := b.Build(context.Background(), "precedence", 1)
	if err != nil {
		t.Fatal(err)
	}
	q := func(host string) Decision { return snap.Decide(Query{host, "GPTBot", "/art.png"}) }
	for host, want := range map[string]Decision{
		"all.test":      {Block, SignalBlocker},
		"noblock.test":  {Deny, SignalRobotsAgent},
		"norobots.test": {Deny, SignalAITxt},
		"noaitxt.test":  {Deny, SignalMeta},
	} {
		if got := q(host); got != want {
			t.Errorf("%s: %v/%v, want %v/%v", host, got.Action, got.Signal, want.Action, want.Signal)
		}
	}
}
