package policyd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
)

// buildTestSnapshot compiles a small hand-written host set covering all
// four signal classes.
func buildTestSnapshot(t testing.TB) *Snapshot {
	t.Helper()
	b := &Builder{Shards: 8}
	b.Add("plain.test", HostConfig{
		RobotsTxt: "User-agent: *\nDisallow: /admin/\n",
	})
	b.Add("ai-restricted.test", HostConfig{
		RobotsTxt: "User-agent: GPTBot\nDisallow: /\n\nUser-agent: *\nDisallow: /admin/\n",
	})
	b.Add("aitxt.test", HostConfig{
		RobotsTxt: "User-agent: *\nDisallow: /admin/\n",
		AITxt:     "User-Agent: *\nImage: N\nDisallow: /gallery/\n",
	})
	b.Add("meta.test", HostConfig{
		RobotsTxt: "User-agent: *\nDisallow:\n",
		MetaHTML:  `<html><head><meta name="robots" content="noimageai"></head></html>`,
	})
	b.Add("blocked.test", HostConfig{
		RobotsTxt: "User-agent: *\nDisallow: /admin/\n",
		Blocklist: []string{"GPTBot", "ClaudeBot"},
	})
	b.Add("norobots.test", HostConfig{})
	snap, err := b.Build(context.Background(), "test", 2)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestDecideSignals(t *testing.T) {
	snap := buildTestSnapshot(t)
	cases := []struct {
		q    Query
		want Decision
	}{
		// Unknown host: default allow.
		{Query{"unknown.test", "GPTBot", "/"}, Decision{Allow, SignalNone}},
		// Wildcard group governs everyone.
		{Query{"plain.test", "GPTBot", "/admin/x"}, Decision{Deny, SignalRobotsWildcard}},
		{Query{"plain.test", "GPTBot", "/about"}, Decision{Allow, SignalRobotsWildcard}},
		// Explicit group beats wildcard for the named agent.
		{Query{"ai-restricted.test", "GPTBot", "/about"}, Decision{Deny, SignalRobotsAgent}},
		{Query{"ai-restricted.test", "CCBot", "/about"}, Decision{Allow, SignalRobotsWildcard}},
		// /robots.txt is always fetchable (RFC 9309).
		{Query{"ai-restricted.test", "GPTBot", "/robots.txt"}, Decision{Allow, SignalRobotsAgent}},
		// ai.txt: path pattern beats media default; media default denies.
		{Query{"aitxt.test", "GPTBot", "/gallery/piece.html"}, Decision{Deny, SignalAITxt}},
		{Query{"aitxt.test", "GPTBot", "/piece.PNG"}, Decision{Deny, SignalAITxt}},
		{Query{"aitxt.test", "GPTBot", "/about.html"}, Decision{Allow, SignalRobotsWildcard}},
		// noimageai denies images only.
		{Query{"meta.test", "GPTBot", "/art.jpg"}, Decision{Deny, SignalMeta}},
		// The wildcard group (with its empty, match-nothing Disallow)
		// still governs the agent, so the allow reports that signal.
		{Query{"meta.test", "GPTBot", "/about.html"}, Decision{Allow, SignalRobotsWildcard}},
		// Active blocking dominates everything, including robots.txt.
		{Query{"blocked.test", "GPTBot", "/about"}, Decision{Block, SignalBlocker}},
		{Query{"blocked.test", "Googlebot", "/admin/x"}, Decision{Deny, SignalRobotsWildcard}},
		// Host case folds; agents outside the roster still resolve.
		{Query{"BLOCKED.test", "claudebot-news", "/"}, Decision{Block, SignalBlocker}},
		{Query{"norobots.test", "GPTBot", "/anything"}, Decision{Allow, SignalNone}},
	}
	svc := NewService(snap)
	for _, c := range cases {
		if got := svc.Decide(c.q); got != c.want {
			t.Errorf("Decide(%+v) = %v/%v, want %v/%v",
				c.q, got.Action, got.Signal, c.want.Action, c.want.Signal)
		}
	}
	if st := svc.Stats(); st.Queries != uint64(len(cases)) || st.Hosts != 6 {
		t.Errorf("stats = %+v, want %d queries, 6 hosts", st, len(cases))
	}
}

func TestDecideBatchMatchesSingle(t *testing.T) {
	snap := buildTestSnapshot(t)
	svc := NewService(snap)
	var qs []Query
	for _, h := range snap.Hosts() {
		for _, a := range []string{"GPTBot", "CCBot", "Googlebot", "UnknownBot"} {
			for _, p := range []string{"/", "/admin/x", "/gallery/a.png", "/robots.txt"} {
				qs = append(qs, Query{h, a, p})
			}
		}
	}
	batch := svc.DecideBatch(qs, make([]Decision, 0, len(qs)))
	for i, q := range qs {
		if single := snap.Decide(q); batch[i] != single {
			t.Fatalf("batch[%d] (%+v) = %v, single = %v", i, q, batch[i], single)
		}
	}
}

// TestDecideZeroAlloc locks in the hot-path contract: roster agents
// against snapshot hosts decide without allocating.
func TestDecideZeroAlloc(t *testing.T) {
	snap := buildTestSnapshot(t)
	svc := NewService(snap)
	qs := []Query{
		{"plain.test", "GPTBot", "/admin/x"},
		{"ai-restricted.test", "CCBot", "/about"},
		{"aitxt.test", "ClaudeBot", "/gallery/piece.html"},
		{"meta.test", "GPTBot", "/art.jpg"},
		{"blocked.test", "Bytespider", "/"},
		{"norobots.test", "Googlebot", "/x"},
	}
	// Warm every (host, agent) pair once (the compile already did).
	for _, q := range qs {
		svc.Decide(q)
	}
	i := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		svc.Decide(qs[i%len(qs)])
		i++
	}); allocs != 0 {
		t.Fatalf("Decide allocated %v/op on the cached hot path, want 0", allocs)
	}
	out := make([]Decision, 0, len(qs))
	if allocs := testing.AllocsPerRun(1000, func() {
		out = svc.DecideBatch(qs, out[:0])
	}); allocs != 0 {
		t.Fatalf("DecideBatch allocated %v/op on the cached hot path, want 0", allocs)
	}
}

// TestSwapRace hammers queries concurrently with snapshot swaps; under
// -race this proves the hot path and hot reload share no mutable state.
func TestSwapRace(t *testing.T) {
	snapA := buildTestSnapshot(t)
	bldr := &Builder{Shards: 4}
	bldr.Add("plain.test", HostConfig{RobotsTxt: "User-agent: *\nDisallow: /\n"})
	bldr.Add("blocked.test", HostConfig{Blocklist: []string{"GPTBot"}})
	snapB, err := bldr.Build(context.Background(), "test-b", 2)
	if err != nil {
		t.Fatal(err)
	}

	svc := NewService(snapA)
	qs := []Query{
		{"plain.test", "GPTBot", "/admin/x"},
		{"blocked.test", "GPTBot", "/"},
		{"ai-restricted.test", "CCBot", "/about"},
		{"unknown.test", "GPTBot", "/"},
	}
	const (
		readers = 8
		decides = 20_000
		swaps   = 2_000
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out := make([]Decision, 0, len(qs))
			for i := 0; i < decides; i++ {
				q := qs[(i+r)%len(qs)]
				d := svc.Decide(q)
				if q.Host == "unknown.test" && d != (Decision{Allow, SignalNone}) {
					t.Errorf("unknown host decided %v", d)
					return
				}
				if i%64 == 0 {
					out = svc.DecideBatch(qs, out[:0])
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			if i%2 == 0 {
				svc.Swap(snapB)
			} else {
				svc.Swap(snapA)
			}
		}
	}()
	wg.Wait()
}

func TestFromCorpusEnrichment(t *testing.T) {
	ctx := context.Background()
	c, err := corpus.New(ctx, corpus.Config{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	early, err := FromCorpus(ctx, c, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	late, err := FromCorpus(ctx, c, len(corpus.Snapshots)-1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if early.Len() != len(c.Sites()) || late.Len() != early.Len() {
		t.Fatalf("host counts: early %d late %d corpus %d", early.Len(), late.Len(), len(c.Sites()))
	}
	if early.Version != corpus.Snapshots[0].ID || late.Version != corpus.Snapshots[len(corpus.Snapshots)-1].ID {
		t.Fatalf("versions %q %q", early.Version, late.Version)
	}
	// Enrichment traits are snapshot-independent; policies evolve.
	var aiHosts, blockHosts, metaHosts, deniesLate, deniesEarly int
	for _, h := range early.Hosts() {
		se, _ := early.Source(h)
		sl, ok := late.Source(h)
		if !ok {
			t.Fatalf("host %s missing from late snapshot", h)
		}
		if (se.AITxt == "") != (sl.AITxt == "") || (se.Blocklist == nil) != (sl.Blocklist == nil) ||
			se.MetaHTML != sl.MetaHTML {
			t.Fatalf("host %s enrichment traits changed across snapshots", h)
		}
		if se.AITxt != "" {
			aiHosts++
		}
		if se.Blocklist != nil {
			blockHosts++
			if len(sl.Blocklist) < len(se.Blocklist) {
				t.Fatalf("host %s blocklist shrank over time", h)
			}
		}
		if se.MetaHTML != "" {
			metaHosts++
		}
		q := Query{h, "GPTBot", "/about.html"}
		if !early.Decide(q).Allowed() {
			deniesEarly++
		}
		if !late.Decide(q).Allowed() {
			deniesLate++
		}
	}
	if aiHosts == 0 || blockHosts == 0 {
		t.Fatalf("enrichment missing: %d ai.txt hosts, %d blocking hosts", aiHosts, blockHosts)
	}
	// Adoption grows over the window, so the late snapshot denies more.
	if deniesLate <= deniesEarly {
		t.Fatalf("GPTBot denials: early %d, late %d — expected growth", deniesEarly, deniesLate)
	}
	_ = metaHosts // rare at small scale; presence asserted by rates test below
}

func TestHTTPAPI(t *testing.T) {
	snap := buildTestSnapshot(t)
	svc := NewService(snap)
	h := NewHandler(svc)

	get := func(url string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
		return w
	}

	w := get("/v1/decide?host=blocked.test&agent=GPTBot&path=/")
	if w.Code != http.StatusOK {
		t.Fatalf("decide status %d: %s", w.Code, w.Body)
	}
	var dj DecisionJSON
	if err := json.Unmarshal(w.Body.Bytes(), &dj); err != nil {
		t.Fatal(err)
	}
	if dj.Action != "block" || dj.Signal != "blocker" {
		t.Fatalf("decide = %+v", dj)
	}

	if w := get("/v1/decide?agent=GPTBot"); w.Code != http.StatusBadRequest {
		t.Fatalf("missing host: status %d", w.Code)
	}

	req := BatchRequest{Queries: []Query{
		{"plain.test", "GPTBot", "/admin/x"},
		{"unknown.test", "CCBot", "/"},
	}}
	body, _ := json.Marshal(req)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Decisions) != 2 || resp.Decisions[0].Action != "deny" || resp.Decisions[1].Action != "allow" {
		t.Fatalf("batch = %+v", resp.Decisions)
	}

	w = get("/v1/stats")
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Hosts != 6 || st.Version != "test" || st.Queries < 3 {
		t.Fatalf("stats = %+v", st)
	}
	if w := get("/healthz"); !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz = %q", w.Body)
	}
}
