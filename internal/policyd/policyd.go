// Package policyd is the online serving layer over the consent signals
// the paper measures: an in-memory crawl-policy decision service that
// answers "may agent U fetch path P on host H right now?" at wire speed.
//
// Every batch artifact in this repository — the longitudinal corpus, the
// §5 measurement sites, the §6 blocking surveys — encodes the same four
// mechanisms a crawler operator would have to consult before fetching:
// robots.txt groups, ai.txt directives, NoAI meta tags, and active
// (user-agent) blocking. policyd compiles those signals into an
// immutable, sharded Snapshot and serves single and batched Decision
// queries against it with zero allocations on the cached hot path.
// Snapshots swap atomically under live traffic (Service.Swap), so a
// running service hot-reloads as a corpus month advances or a scenario
// world mutates, exactly like a production rule-store push.
//
// Signal precedence mirrors how the measurement stack already composes
// the mechanisms (the scenario engine's log flush and measure.Classify):
// an active block means the request is never served, so it dominates
// everything (the 403 branch of the flush); robots.txt governs
// collection (the §5 verdicts); ai.txt governs use at training time
// (§2.2); the NoAI meta tag is the weakest, page-level hint. A query is
// denied when any applicable signal denies it, and the reported Signal
// is the highest-precedence denier.
package policyd

import (
	"strings"
	"sync/atomic"

	"repro/internal/robots"
)

// Query asks whether one agent may fetch one path on one host. Agent may
// be a bare product token ("GPTBot") or a full User-Agent header —
// robots.txt matching extracts the token either way, and blocklists
// match by substring exactly as webserver blockers do. Host matching is
// exact (snapshot hosts are lowercase; Decide folds uppercase hosts on a
// slow path).
type Query struct {
	Host  string `json:"host"`
	Agent string `json:"agent"`
	Path  string `json:"path"`
}

// Action is the outcome class of a decision.
type Action uint8

const (
	// Allow: no applicable signal denies the fetch.
	Allow Action = iota
	// Deny: a consent signal (robots.txt, ai.txt, or a meta tag) denies
	// it; a compliant crawler must not fetch.
	Deny
	// Block: the host actively blocks the agent — the request would never
	// be served regardless of the crawler's compliance.
	Block
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	case Block:
		return "block"
	default:
		return "unknown"
	}
}

// Signal identifies which mechanism won the decision, in precedence
// order: blocker > robots (explicit group > wildcard group) > ai.txt >
// meta tag > none.
type Signal uint8

const (
	// SignalNone: no signal applied (default allow, or unknown host).
	SignalNone Signal = iota
	// SignalBlocker: an active user-agent blocklist matched the agent.
	SignalBlocker
	// SignalRobotsAgent: a robots.txt group explicitly naming the
	// agent's product token decided the outcome.
	SignalRobotsAgent
	// SignalRobotsWildcard: the robots.txt wildcard group decided it.
	SignalRobotsWildcard
	// SignalAITxt: the host's ai.txt denied AI use of the path.
	SignalAITxt
	// SignalMeta: a NoAI/NoImageAI robots meta tag denied it.
	SignalMeta
)

// String names the signal.
func (s Signal) String() string {
	switch s {
	case SignalNone:
		return "none"
	case SignalBlocker:
		return "blocker"
	case SignalRobotsAgent:
		return "robots-agent"
	case SignalRobotsWildcard:
		return "robots-wildcard"
	case SignalAITxt:
		return "ai-txt"
	case SignalMeta:
		return "meta"
	default:
		return "unknown"
	}
}

// Decision is the service's answer to one Query.
type Decision struct {
	// Action is allow, deny, or block.
	Action Action
	// Signal is the mechanism that determined the action. For an Allow it
	// is the robots signal that affirmatively governed the agent (a site
	// whose robots.txt names GPTBot and allows it reports
	// SignalRobotsAgent), or SignalNone when no policy applied.
	Signal Signal
}

// Allowed reports whether the fetch may proceed.
func (d Decision) Allowed() bool { return d.Action == Allow }

// Service serves decisions from the current snapshot and hot-swaps
// snapshots atomically: queries racing a Swap see either the old or the
// new snapshot, never a mix, because a Decision is computed entirely
// from one immutable *Snapshot.
type Service struct {
	snap    atomic.Pointer[Snapshot]
	queries atomic.Uint64
	feed    *VersionFeed
}

// NewService returns a service answering from snap.
func NewService(snap *Snapshot) *Service {
	s := &Service{feed: NewVersionFeed(snap.Version)}
	s.snap.Store(snap)
	return s
}

// Current returns the snapshot queries are being answered from.
func (s *Service) Current() *Snapshot { return s.snap.Load() }

// Swap atomically installs a new snapshot, announces its version on the
// watch feed, and returns the previous snapshot. In-flight queries
// finish against whichever snapshot they loaded.
func (s *Service) Swap(snap *Snapshot) *Snapshot {
	mSwaps.Inc()
	prev := s.snap.Swap(snap)
	s.feed.Publish(snap.Version)
	return prev
}

// Watch subscribes to snapshot swaps: the returned channel receives the
// new version after each Swap (coalescing under a slow reader). Cancel
// with the returned func.
func (s *Service) Watch() (<-chan string, func()) { return s.feed.Watch() }

// Decide answers one query against the current snapshot.
func (s *Service) Decide(q Query) Decision {
	s.queries.Add(1)
	d := s.snap.Load().Decide(q)
	countDecision(d)
	return d
}

// DecideBatch answers every query against one consistent snapshot —
// batches never straddle a Swap. Results are appended to out (pass a
// pre-sized out[:0] to avoid allocation) and the filled slice returned.
func (s *Service) DecideBatch(qs []Query, out []Decision) []Decision {
	out, _ = s.DecideBatchVersioned(qs, out)
	return out
}

// DecideBatchVersioned is DecideBatch plus the version of the snapshot
// that answered — the whole batch, by construction. Fleet routing uses
// the version to prove a scattered client batch never mixes snapshots.
func (s *Service) DecideBatchVersioned(qs []Query, out []Decision) ([]Decision, string) {
	s.queries.Add(uint64(len(qs)))
	mBatchSize.Observe(uint64(len(qs)))
	snap := s.snap.Load()
	// Decision counts accumulate on the stack and flush once per batch:
	// one shard pick per populated (action, signal) cell instead of one
	// per query.
	var counts [Block + 1][SignalMeta + 1]uint64
	for _, q := range qs {
		d := snap.Decide(q)
		if d.Action <= Block && d.Signal <= SignalMeta {
			counts[d.Action][d.Signal]++
		}
		out = append(out, d)
	}
	for a := range counts {
		for sig, n := range counts[a] {
			if n > 0 {
				mDecisions[a][sig].Add(n)
			}
		}
	}
	return out, snap.Version
}

// Stats is a point-in-time view of the service.
type Stats struct {
	// Queries is the number of decisions served since construction.
	Queries uint64 `json:"queries"`
	// Version labels the current snapshot.
	Version string `json:"version"`
	// Hosts and Shards describe the current snapshot's index.
	Hosts  int `json:"hosts"`
	Shards int `json:"shards"`
}

// Stats returns current counters and snapshot metadata.
func (s *Service) Stats() Stats {
	snap := s.snap.Load()
	return Stats{
		Queries: s.queries.Load(),
		Version: snap.Version,
		Hosts:   snap.hosts,
		Shards:  len(snap.shards),
	}
}

// Decide answers one query against this snapshot. The hot path — a host
// in the snapshot queried with an agent from the compiled roster —
// performs no allocations: host lookup is a shard-map probe, the agent
// resolves through the snapshot-wide roster index to precompiled
// per-host access views, and path matching reuses the robots.txt
// matcher's allocation-free routines.
func (sn *Snapshot) Decide(q Query) Decision {
	hp := sn.lookup(q.Host)
	if hp == nil {
		return Decision{Action: Allow, Signal: SignalNone}
	}
	id, known := sn.agentIDs[q.Agent]

	// Active blocking dominates: the request would never be served.
	if hp.blockPatterns != nil {
		blocked := false
		if known {
			blocked = hp.blocked[id]
		} else {
			blocked = matchesAnyFold(q.Agent, hp.blockPatterns)
		}
		if blocked {
			return Decision{Action: Block, Signal: SignalBlocker}
		}
	}

	// robots.txt: collection-time consent, the §5 measurement's frame.
	robotsSignal := SignalNone
	if hp.robots != nil {
		var acc robots.Access
		if known {
			acc = hp.access[id]
		} else {
			acc = hp.robots.Agent(q.Agent)
		}
		if acc.HasRules() {
			robotsSignal = SignalRobotsWildcard
			if acc.Explicit {
				robotsSignal = SignalRobotsAgent
			}
			if !acc.Allowed(q.Path) {
				return Decision{Action: Deny, Signal: robotsSignal}
			}
		}
	}

	// ai.txt: use-time consent (§2.2).
	if hp.ai != nil && !hp.ai.permitted(q.Path) {
		return Decision{Action: Deny, Signal: SignalAITxt}
	}

	// NoAI meta tags: the weakest, page-level hint.
	if hp.meta.denies(q.Path) {
		return Decision{Action: Deny, Signal: SignalMeta}
	}
	return Decision{Action: Allow, Signal: robotsSignal}
}

// matchesAnyFold is the slow-path blocklist check for agents outside the
// compiled roster: case-insensitive substring match against each
// pattern, the same semantics webserver UA blockers use.
func matchesAnyFold(agent string, patterns []string) bool {
	for _, p := range patterns {
		if p == "" {
			continue
		}
		if containsFold(agent, p) {
			return true
		}
	}
	return false
}

// containsFold reports whether s contains substr ASCII-case-
// insensitively without allocating (unlike strings.ToLower).
func containsFold(s, substr string) bool {
	if len(substr) == 0 {
		return true
	}
	if len(substr) > len(s) {
		return false
	}
	for i := 0; i+len(substr) <= len(s); i++ {
		if equalFoldAt(s, i, substr) {
			return true
		}
	}
	return false
}

func equalFoldAt(s string, off int, substr string) bool {
	for j := 0; j < len(substr); j++ {
		a, b := s[off+j], substr[j]
		if a == b {
			continue
		}
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if a != b {
			return false
		}
	}
	return true
}

// foldHost lowercases a host only when needed, so the common all-
// lowercase case stays allocation-free.
func foldHost(host string) string {
	for i := 0; i < len(host); i++ {
		if c := host[i]; 'A' <= c && c <= 'Z' {
			return strings.ToLower(host)
		}
	}
	return host
}
