package policyd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
	"unsafe"
)

// The binary frame protocol: /v1/batch semantics without HTTP or JSON.
//
// JSON encode/decode dominates the batched decision path once transport
// framing is fast — marshalling a 4096-query batch costs more than
// answering it. The frame protocol keeps the exact batch semantics
// (queries in, positionally aligned decisions out, one consistent
// snapshot per batch) on a length-prefixed little-endian wire:
//
//	conn preamble:  4-byte magic "RPB1" (protocol name + version)
//	request frame:  u32 payload length, then payload:
//	                  u32 query count
//	                  per query: u16 len + bytes for host, agent, path
//	response frame: u32 payload length, then payload:
//	                  u32 decision count
//	                  per decision: 1 byte action, 1 byte signal
//
// A malformed or oversized frame closes the connection — there is no
// in-band error channel, exactly like a broken-framing TCP peer. The
// limits are shared with the JSON API: MaxBatch queries per frame,
// maxBatchBytes payload bytes.

// FrameMagic is the 4-byte connection preamble; the trailing byte is the
// protocol version.
var FrameMagic = [4]byte{'R', 'P', 'B', '1'}

// FrameMagicV2 selects protocol version 2: request frames are identical,
// but every response payload starts with a status byte, so the wire
// carries the serving snapshot's version (status 0) and an in-band
// rate-limit signal with Retry-After (status 1) — what a fleet gateway
// needs that a single replica never did:
//
//	v2 response payload, status 0 (decisions):
//	  u8 0, u16 version len + bytes, u32 count, per decision 2 bytes
//	v2 response payload, status 1 (rate-limited):
//	  u8 1, u32 retry-after in milliseconds
//
// ServeFrames answers each connection in the dialect its preamble chose.
var FrameMagicV2 = [4]byte{'R', 'P', 'B', '2'}

// v2 response status bytes.
const (
	frameStatusOK        = 0
	frameStatusRateLimit = 1
)

// RateLimitError reports a request rejected by a quota, carrying the
// server's earliest useful retry time. Both wires surface it: HTTP as
// 429 + Retry-After, frames as a status-1 response.
type RateLimitError struct {
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("policyd: rate limited, retry after %s", e.RetryAfter)
}

// maxFramePayload bounds one frame's payload, mirroring the JSON API's
// body cap.
const maxFramePayload = maxBatchBytes

// Frame decode/encode errors.
var (
	ErrFrameTruncated = errors.New("policyd: frame truncated")
	ErrFrameOversized = errors.New("policyd: frame exceeds limits")
	ErrFrameGarbled   = errors.New("policyd: frame garbled")
)

// AppendQueryFrame appends one complete request frame (length prefix
// included) for qs to dst and returns the extended slice. It fails when
// a batch exceeds the wire limits (query count, string lengths, total
// payload).
func AppendQueryFrame(dst []byte, qs []Query) ([]byte, error) {
	if len(qs) > MaxBatch {
		return dst, fmt.Errorf("%w: %d queries > %d", ErrFrameOversized, len(qs), MaxBatch)
	}
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // payload length backfilled below
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(qs)))
	for _, q := range qs {
		var err error
		if dst, err = appendString16(dst, q.Host); err != nil {
			return dst[:base], err
		}
		if dst, err = appendString16(dst, q.Agent); err != nil {
			return dst[:base], err
		}
		if dst, err = appendString16(dst, q.Path); err != nil {
			return dst[:base], err
		}
	}
	payload := len(dst) - base - 4
	if payload > maxFramePayload {
		return dst[:base], fmt.Errorf("%w: payload %d bytes", ErrFrameOversized, payload)
	}
	binary.LittleEndian.PutUint32(dst[base:], uint32(payload))
	return dst, nil
}

func appendString16(dst []byte, s string) ([]byte, error) {
	if len(s) > 0xFFFF {
		return dst, fmt.Errorf("%w: string of %d bytes", ErrFrameOversized, len(s))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

// DecodeQueryPayload decodes a request frame's payload (the bytes after
// the u32 length prefix), appending to qs. Malformed input — truncated
// strings, trailing bytes, an oversized count — returns an error, never
// panics.
//
// The decoded query strings alias payload to keep the hot serve loop
// allocation-free; they are valid only until the caller reuses the
// buffer, which is safe here because Snapshot.Decide never retains its
// query.
func DecodeQueryPayload(payload []byte, qs []Query) ([]Query, error) {
	if len(payload) > maxFramePayload {
		return qs, ErrFrameOversized
	}
	if len(payload) < 4 {
		return qs, ErrFrameTruncated
	}
	count := binary.LittleEndian.Uint32(payload)
	if count > MaxBatch {
		return qs, fmt.Errorf("%w: %d queries > %d", ErrFrameOversized, count, MaxBatch)
	}
	off := 4
	for i := uint32(0); i < count; i++ {
		var q Query
		var err error
		if q.Host, off, err = readString16(payload, off); err != nil {
			return qs, err
		}
		if q.Agent, off, err = readString16(payload, off); err != nil {
			return qs, err
		}
		if q.Path, off, err = readString16(payload, off); err != nil {
			return qs, err
		}
		qs = append(qs, q)
	}
	if off != len(payload) {
		return qs, fmt.Errorf("%w: %d trailing bytes", ErrFrameGarbled, len(payload)-off)
	}
	return qs, nil
}

// readString16 reads a u16-length-prefixed string aliasing payload.
func readString16(payload []byte, off int) (string, int, error) {
	if off+2 > len(payload) {
		return "", off, ErrFrameTruncated
	}
	n := int(binary.LittleEndian.Uint16(payload[off:]))
	off += 2
	if off+n > len(payload) {
		return "", off, ErrFrameTruncated
	}
	if n == 0 {
		return "", off, nil
	}
	s := unsafe.String(&payload[off], n)
	return s, off + n, nil
}

// AppendDecisionFrame appends one complete response frame (length prefix
// included) for ds to dst.
func AppendDecisionFrame(dst []byte, ds []Decision) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(4+2*len(ds)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ds)))
	for _, d := range ds {
		dst = append(dst, byte(d.Action), byte(d.Signal))
	}
	return dst
}

// DecodeDecisionPayload decodes a response frame's payload, appending to
// ds. Out-of-range action or signal bytes are rejected.
func DecodeDecisionPayload(payload []byte, ds []Decision) ([]Decision, error) {
	if len(payload) < 4 {
		return ds, ErrFrameTruncated
	}
	count := binary.LittleEndian.Uint32(payload)
	if count > MaxBatch {
		return ds, fmt.Errorf("%w: %d decisions > %d", ErrFrameOversized, count, MaxBatch)
	}
	if len(payload) != 4+2*int(count) {
		return ds, fmt.Errorf("%w: %d bytes for %d decisions", ErrFrameGarbled, len(payload), count)
	}
	for i := uint32(0); i < count; i++ {
		a, s := payload[4+2*i], payload[5+2*i]
		if a > byte(Block) || s > byte(SignalMeta) {
			return ds, fmt.Errorf("%w: decision bytes (%d, %d)", ErrFrameGarbled, a, s)
		}
		ds = append(ds, Decision{Action: Action(a), Signal: Signal(s)})
	}
	return ds, nil
}

// AppendDecisionFrameV2 appends one complete v2 OK response frame for ds
// to dst, naming the snapshot version that produced the decisions.
func AppendDecisionFrameV2(dst []byte, ds []Decision, version string) []byte {
	if len(version) > 0xFFFF {
		version = version[:0xFFFF]
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+2+len(version)+4+2*len(ds)))
	dst = append(dst, frameStatusOK)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(version)))
	dst = append(dst, version...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ds)))
	for _, d := range ds {
		dst = append(dst, byte(d.Action), byte(d.Signal))
	}
	return dst
}

// AppendRateLimitFrame appends one complete v2 rate-limited response
// frame to dst. retryAfter is carried in milliseconds, clamped to u32.
func AppendRateLimitFrame(dst []byte, retryAfter time.Duration) []byte {
	ms := retryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > 0xFFFFFFFF {
		ms = 0xFFFFFFFF
	}
	dst = binary.LittleEndian.AppendUint32(dst, 1+4)
	dst = append(dst, frameStatusRateLimit)
	return binary.LittleEndian.AppendUint32(dst, uint32(ms))
}

// DecodeResponsePayloadV2 decodes a v2 response payload. An OK status
// appends the decisions to ds and returns the serving snapshot version;
// a rate-limited status returns a *RateLimitError carrying Retry-After.
func DecodeResponsePayloadV2(payload []byte, ds []Decision) ([]Decision, string, error) {
	if len(payload) < 1 {
		return ds, "", ErrFrameTruncated
	}
	switch payload[0] {
	case frameStatusRateLimit:
		if len(payload) != 5 {
			return ds, "", fmt.Errorf("%w: rate-limit frame of %d bytes", ErrFrameGarbled, len(payload))
		}
		ms := binary.LittleEndian.Uint32(payload[1:])
		return ds, "", &RateLimitError{RetryAfter: time.Duration(ms) * time.Millisecond}
	case frameStatusOK:
		if len(payload) < 3 {
			return ds, "", ErrFrameTruncated
		}
		vn := int(binary.LittleEndian.Uint16(payload[1:]))
		if 3+vn > len(payload) {
			return ds, "", ErrFrameTruncated
		}
		version := string(payload[3 : 3+vn])
		ds, err := DecodeDecisionPayload(payload[3+vn:], ds)
		return ds, version, err
	default:
		return ds, "", fmt.Errorf("%w: response status %d", ErrFrameGarbled, payload[0])
	}
}

// ServeFrames accepts connections from ln and answers frame batches from
// svc until the listener closes; it returns the Accept error (net.ErrClosed
// on a clean shutdown). Each connection gets its own goroutine and reused
// buffers, and speaks the protocol version its preamble selected (RPB1
// legacy responses, RPB2 versioned responses); a protocol violation
// closes that connection only.
func ServeFrames(ln net.Listener, svc *Service) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		go serveFrameConn(c, svc)
	}
}

func serveFrameConn(c net.Conn, svc *Service) {
	defer c.Close()
	var magic [4]byte
	if _, err := io.ReadFull(c, magic[:]); err != nil {
		return
	}
	v2 := magic == FrameMagicV2
	if !v2 && magic != FrameMagic {
		return
	}
	var lenBuf [4]byte
	payload := make([]byte, 0, 64*1024)
	wbuf := make([]byte, 0, 16*1024)
	var qs []Query
	var out []Decision
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > maxFramePayload {
			return
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(c, payload); err != nil {
			return
		}
		var err error
		qs, err = DecodeQueryPayload(payload, qs[:0])
		if err != nil {
			return
		}
		mWireFrame.Inc()
		if v2 {
			var version string
			out, version = svc.DecideBatchVersioned(qs, out[:0])
			wbuf = AppendDecisionFrameV2(wbuf[:0], out, version)
		} else {
			out = svc.DecideBatch(qs, out[:0])
			wbuf = AppendDecisionFrame(wbuf[:0], out)
		}
		if _, err := c.Write(wbuf); err != nil {
			return
		}
	}
}

// FrameClient speaks the frame protocol over one connection. It is not
// safe for concurrent use — batches are strictly request/response, like
// a non-pipelined HTTP client; open one per worker.
type FrameClient struct {
	c      net.Conn
	lenBuf [4]byte
	wbuf   []byte
	rbuf   []byte
}

// NewFrameClient sends the protocol preamble on c and returns a client.
func NewFrameClient(c net.Conn) (*FrameClient, error) {
	if _, err := c.Write(FrameMagic[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("policyd: frame preamble: %w", err)
	}
	return &FrameClient{c: c, wbuf: make([]byte, 0, 16*1024), rbuf: make([]byte, 0, 16*1024)}, nil
}

// Decide answers one batch, appending the decisions to out (pass a
// pre-sized out[:0] for an allocation-free exchange). The server answers
// exactly one decision per query, in order.
func (fc *FrameClient) Decide(qs []Query, out []Decision) ([]Decision, error) {
	var err error
	fc.wbuf, err = AppendQueryFrame(fc.wbuf[:0], qs)
	if err != nil {
		return out, err
	}
	if _, err := fc.c.Write(fc.wbuf); err != nil {
		return out, err
	}
	if _, err := io.ReadFull(fc.c, fc.lenBuf[:]); err != nil {
		return out, err
	}
	n := binary.LittleEndian.Uint32(fc.lenBuf[:])
	if n > maxFramePayload {
		return out, ErrFrameOversized
	}
	if cap(fc.rbuf) < int(n) {
		fc.rbuf = make([]byte, n)
	}
	fc.rbuf = fc.rbuf[:n]
	if _, err := io.ReadFull(fc.c, fc.rbuf); err != nil {
		return out, err
	}
	start := len(out)
	out, err = DecodeDecisionPayload(fc.rbuf, out)
	if err != nil {
		return out, err
	}
	if len(out)-start != len(qs) {
		return out, fmt.Errorf("%w: %d decisions for %d queries", ErrFrameGarbled, len(out)-start, len(qs))
	}
	return out, nil
}

// Close closes the underlying connection.
func (fc *FrameClient) Close() error { return fc.c.Close() }

// FrameClientV2 speaks protocol version 2 over one connection: same
// batch semantics as FrameClient, but every answer names the snapshot
// version that produced it, and a server-side quota rejection surfaces
// as *RateLimitError instead of a dead connection. Not safe for
// concurrent use; open one per worker.
type FrameClientV2 struct {
	c       net.Conn
	lenBuf  [4]byte
	wbuf    []byte
	rbuf    []byte
	version string // last serving version, interned across responses
}

// NewFrameClientV2 sends the v2 preamble on c and returns a client.
func NewFrameClientV2(c net.Conn) (*FrameClientV2, error) {
	if _, err := c.Write(FrameMagicV2[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("policyd: frame preamble: %w", err)
	}
	return &FrameClientV2{c: c, wbuf: make([]byte, 0, 16*1024), rbuf: make([]byte, 0, 16*1024)}, nil
}

// Decide answers one batch, appending the decisions to out and returning
// the snapshot version that served the whole batch. A *RateLimitError
// return leaves the connection usable — retry after the carried delay;
// any other error poisons the framing and the client must be closed.
func (fc *FrameClientV2) Decide(qs []Query, out []Decision) ([]Decision, string, error) {
	var err error
	fc.wbuf, err = AppendQueryFrame(fc.wbuf[:0], qs)
	if err != nil {
		return out, "", err
	}
	if _, err := fc.c.Write(fc.wbuf); err != nil {
		return out, "", err
	}
	if _, err := io.ReadFull(fc.c, fc.lenBuf[:]); err != nil {
		return out, "", err
	}
	n := binary.LittleEndian.Uint32(fc.lenBuf[:])
	if n > maxFramePayload {
		return out, "", ErrFrameOversized
	}
	if cap(fc.rbuf) < int(n) {
		fc.rbuf = make([]byte, n)
	}
	fc.rbuf = fc.rbuf[:n]
	if _, err := io.ReadFull(fc.c, fc.rbuf); err != nil {
		return out, "", err
	}
	start := len(out)
	var version string
	out, version, err = DecodeResponsePayloadV2(fc.rbuf, out)
	if err != nil {
		return out, "", err
	}
	if len(out)-start != len(qs) {
		return out, "", fmt.Errorf("%w: %d decisions for %d queries", ErrFrameGarbled, len(out)-start, len(qs))
	}
	// Intern the version: it is stable for swap-long stretches, so reuse
	// the previous string instead of keeping one allocation per batch.
	if version != fc.version {
		fc.version = version
	}
	return out, fc.version, nil
}

// Close closes the underlying connection.
func (fc *FrameClientV2) Close() error { return fc.c.Close() }
