package policyd

import (
	"fmt"

	"repro/internal/obs"
)

// Service metrics. The decision matrix is 3 actions × 6 signals of
// pre-registered counters so the hot path indexes an array instead of
// formatting labels; DecideBatch accumulates on the stack and flushes
// once per batch.
var mDecisions = func() (m [Block + 1][SignalMeta + 1]*obs.Counter) {
	for a := Allow; a <= Block; a++ {
		for sig := SignalNone; sig <= SignalMeta; sig++ {
			m[a][sig] = obs.NewCounter(
				fmt.Sprintf(`policyd_decisions_total{action=%q,signal=%q}`, a.String(), sig.String()),
				"Decisions served, by outcome action and winning signal.")
		}
	}
	return m
}()

var (
	mBatchSize = obs.NewHistogram("policyd_batch_size",
		"Queries per DecideBatch call.")
	mSwaps = obs.NewCounter("policyd_snapshot_swaps_total",
		"Snapshot hot swaps installed on the service.")
	mCompileNS = obs.NewHistogram("policyd_compile_duration_ns",
		"Wall-clock spent compiling a corpus month into a snapshot, ns.")
	mWireJSON = obs.NewCounter(`policyd_wire_requests_total{wire="json"}`,
		"Wire-level decision requests, by protocol (one frame batch or one HTTP request each).")
	mWireFrame = obs.NewCounter(`policyd_wire_requests_total{wire="frame"}`,
		"Wire-level decision requests, by protocol (one frame batch or one HTTP request each).")
	mCompileReused = obs.NewCounter(`policyd_compile_hosts_total{mode="reused"}`,
		"Hosts whose compiled policy was carried over from the previous snapshot (incremental build).")
	mCompileFresh = obs.NewCounter(`policyd_compile_hosts_total{mode="compiled"}`,
		"Hosts compiled from their raw policy surface during a snapshot build.")
)

// countDecision records one decision in the action×signal matrix.
// Bounds are clamped defensively: a corrupted enum must not panic the
// serving path.
func countDecision(d Decision) {
	if d.Action > Block || d.Signal > SignalMeta {
		return
	}
	mDecisions[d.Action][d.Signal].Inc()
}
