package policyd

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// The JSON API, served identically over netsim (in-harness experiments)
// and real TCP (cmd/policyd):
//
//	GET  /v1/decide?host=H&agent=U&path=P   -> {"action":"allow","signal":"none"}
//	POST /v1/batch  {"queries":[{...}]}     -> {"decisions":[{...}]}
//	GET  /v1/stats                          -> {"queries":N,"version":...,"hosts":N,"shards":N}
//	GET  /healthz                           -> ok

// DecisionJSON is a decision's wire form.
type DecisionJSON struct {
	Action string `json:"action"`
	Signal string `json:"signal"`
}

// JSON converts a decision to its wire form.
func (d Decision) JSON() DecisionJSON {
	return DecisionJSON{Action: d.Action.String(), Signal: d.Signal.String()}
}

// BatchRequest is the /v1/batch request body.
type BatchRequest struct {
	Queries []Query `json:"queries"`
}

// BatchResponse is the /v1/batch response body; decisions align with
// the request's queries by index.
type BatchResponse struct {
	Decisions []DecisionJSON `json:"decisions"`
}

// MaxBatch bounds one /v1/batch request, like any ingress guard.
const MaxBatch = 4096

// maxBatchBytes caps the /v1/batch request body so the size guard holds
// before JSON decoding allocates anything: MaxBatch queries with
// generous host/agent/path strings fit well within it.
const maxBatchBytes = 4 << 20

// NewHandler returns the service's HTTP API.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/decide", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		q := Query{
			Host:  r.URL.Query().Get("host"),
			Agent: r.URL.Query().Get("agent"),
			Path:  r.URL.Query().Get("path"),
		}
		if q.Host == "" || q.Agent == "" {
			http.Error(w, "host and agent are required", http.StatusBadRequest)
			return
		}
		mWireJSON.Inc()
		writeDecision(w, svc.Decide(q))
	})
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req BatchRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes)).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
			return
		}
		if len(req.Queries) > MaxBatch {
			http.Error(w, fmt.Sprintf("batch exceeds %d queries", MaxBatch), http.StatusRequestEntityTooLarge)
			return
		}
		mWireJSON.Inc()
		decisions := svc.DecideBatch(req.Queries, make([]Decision, 0, len(req.Queries)))
		resp := BatchResponse{Decisions: make([]DecisionJSON, len(decisions))}
		for i, d := range decisions {
			resp.Decisions[i] = d.JSON()
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, svc.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decideResponses holds the pre-rendered /v1/decide body for every
// (action, signal) pair. The single-query endpoint dominates wire
// traffic and its response space is tiny, so rendering the 18 bodies
// once turns the hot path's marshal into an index and a write.
var decideResponses = func() (t [Block + 1][SignalMeta + 1][]byte) {
	for a := Allow; a <= Block; a++ {
		for s := SignalNone; s <= SignalMeta; s++ {
			b, err := json.Marshal(Decision{Action: a, Signal: s}.JSON())
			if err != nil {
				panic(err)
			}
			t[a][s] = append(b, '\n')
		}
	}
	return t
}()

// DecisionBody returns the pre-rendered /v1/decide response body for d
// (trailing newline included), or ok=false for out-of-range pairs. The
// fleet gateway renders with the same bytes so gateway-routed responses
// are byte-identical to a replica's.
func DecisionBody(d Decision) ([]byte, bool) {
	if d.Action <= Block && d.Signal <= SignalMeta {
		return decideResponses[d.Action][d.Signal], true
	}
	return nil, false
}

// writeDecision writes a single decision, pre-rendered when the pair is
// in range (always, for decisions the service produces).
func writeDecision(w http.ResponseWriter, d Decision) {
	if d.Action <= Block && d.Signal <= SignalMeta {
		w.Header().Set("Content-Type", "application/json")
		w.Write(decideResponses[d.Action][d.Signal])
		return
	}
	writeJSON(w, d.JSON())
}
