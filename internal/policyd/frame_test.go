package policyd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/agents"
	"repro/internal/corpus"
	"repro/internal/netsim"
)

func TestFrameQueryRoundTrip(t *testing.T) {
	cases := [][]Query{
		{},
		{{Host: "a.test", Agent: "GPTBot", Path: "/"}},
		{
			{Host: "a.test", Agent: "GPTBot", Path: "/images/art.png"},
			{Host: "", Agent: "", Path: ""},
			{Host: "b.test", Agent: "Mozilla/5.0 (compatible; ClaudeBot/1.0)", Path: "/search?q=x&y=z"},
			{Host: strings.Repeat("h", 0xFFFF), Agent: "x", Path: "/p"},
		},
	}
	for _, qs := range cases {
		frame, err := AppendQueryFrame(nil, qs)
		if err != nil {
			t.Fatalf("encode %d queries: %v", len(qs), err)
		}
		got, err := DecodeQueryPayload(frame[4:], nil)
		if err != nil {
			t.Fatalf("decode %d queries: %v", len(qs), err)
		}
		if len(qs) == 0 {
			if len(got) != 0 {
				t.Fatalf("decoded %d queries from empty batch", len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, qs) {
			t.Fatalf("round trip diverged:\nin:  %+v\nout: %+v", qs, got)
		}
	}
}

func TestFrameDecisionRoundTrip(t *testing.T) {
	ds := []Decision{
		{Allow, SignalNone},
		{Deny, SignalRobotsAgent},
		{Deny, SignalRobotsWildcard},
		{Deny, SignalAITxt},
		{Deny, SignalMeta},
		{Block, SignalBlocker},
	}
	frame := AppendDecisionFrame(nil, ds)
	got, err := DecodeDecisionPayload(frame[4:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ds) {
		t.Fatalf("round trip diverged:\nin:  %v\nout: %v", ds, got)
	}
}

// TestFrameDecodeMalformed pins the decoder's contract on hostile input:
// an error, never a panic, never a bogus success.
func TestFrameDecodeMalformed(t *testing.T) {
	good, err := AppendQueryFrame(nil, []Query{{Host: "a.test", Agent: "GPTBot", Path: "/"}})
	if err != nil {
		t.Fatal(err)
	}
	payload := good[4:]
	queryCases := map[string][]byte{
		"empty":              {},
		"short header":       {1, 0},
		"count only":         {1, 0, 0, 0},
		"truncated strlen":   payload[:5],
		"truncated string":   payload[:len(payload)-1],
		"trailing bytes":     append(append([]byte(nil), payload...), 0),
		"oversized count":    {255, 255, 255, 255},
		"count beyond batch": {0x01, 0x10, 0, 0}, // 4097 > MaxBatch
	}
	for name, p := range queryCases {
		if _, err := DecodeQueryPayload(p, nil); err == nil {
			t.Errorf("query payload %q: decoded without error", name)
		}
	}
	decisionCases := map[string][]byte{
		"empty":            {},
		"short header":     {1, 0},
		"length mismatch":  {1, 0, 0, 0, 0},
		"bad action byte":  {1, 0, 0, 0, 7, 0},
		"bad signal byte":  {1, 0, 0, 0, 0, 9},
		"oversized count":  {255, 255, 255, 255},
		"truncated record": {2, 0, 0, 0, 0, 0},
	}
	for name, p := range decisionCases {
		if _, err := DecodeDecisionPayload(p, nil); err == nil {
			t.Errorf("decision payload %q: decoded without error", name)
		}
	}
}

func TestFrameEncodeLimits(t *testing.T) {
	if _, err := AppendQueryFrame(nil, make([]Query, MaxBatch+1)); err == nil {
		t.Error("oversized batch encoded without error")
	}
	long := strings.Repeat("x", 0x10000)
	if _, err := AppendQueryFrame(nil, []Query{{Host: long}}); err == nil {
		t.Error("oversized string encoded without error")
	}
}

// TestFrameJSONParityCorpus is the wire-format correctness anchor: the
// same >100k-query corpus workload is answered over the binary frame
// protocol and over the JSON /v1/batch API, both served from one Service
// over netsim, and every decision must agree (and match the in-process
// engine). This is the cross-wire guarantee cmd/loadgen -wire relies on.
func TestFrameJSONParityCorpus(t *testing.T) {
	ctx := context.Background()
	c, err := corpus.New(ctx, corpus.Config{Seed: 20251028, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := FromCorpus(ctx, c, len(corpus.Snapshots)-1, 4)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(snap)

	nw := netsim.New()
	jsonLn, err := nw.Listen("203.0.113.70", 80)
	if err != nil {
		t.Fatal(err)
	}
	nw.Register("policyd.test", "203.0.113.70")
	srv := &http.Server{Handler: NewHandler(svc)}
	srvDone := make(chan struct{})
	go func() { defer close(srvDone); srv.Serve(jsonLn) }()
	defer func() { srv.Close(); <-srvDone }()

	frameLn, err := nw.Listen("203.0.113.71", 80)
	if err != nil {
		t.Fatal(err)
	}
	go ServeFrames(frameLn, svc)
	defer frameLn.Close()

	conn, err := nw.Dial(ctx, "198.51.100.70", "203.0.113.71:80")
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFrameClient(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	client := nw.HTTPClient("198.51.100.71")

	// Every corpus host × a crawler mix × the matcher-corner paths:
	// comfortably over the 100k-query bar at bench scale.
	queryAgents := append(agents.Tokens()[:3], "Googlebot", "Mozilla")
	var all []Query
	for _, host := range snap.Hosts() {
		for _, a := range queryAgents {
			for _, p := range parityPaths {
				all = append(all, Query{Host: host, Agent: a, Path: p})
			}
		}
	}
	if len(all) < 100_000 {
		t.Fatalf("workload too small for the parity bar: %d queries", len(all))
	}

	frameOut := make([]Decision, 0, MaxBatch)
	direct := make([]Decision, 0, MaxBatch)
	checked := 0
	for off := 0; off < len(all); off += MaxBatch {
		qs := all[off:min(off+MaxBatch, len(all))]

		frameOut, err = fc.Decide(qs, frameOut[:0])
		if err != nil {
			t.Fatalf("frame batch at %d: %v", off, err)
		}

		body, err := json.Marshal(BatchRequest{Queries: qs})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post("http://policyd.test/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("json batch at %d: %v", off, err)
		}
		var br BatchResponse
		err = json.NewDecoder(resp.Body).Decode(&br)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(br.Decisions) != len(qs) || len(frameOut) != len(qs) {
			t.Fatalf("batch at %d: %d json, %d frame decisions for %d queries",
				off, len(br.Decisions), len(frameOut), len(qs))
		}

		direct = svc.DecideBatch(qs, direct[:0])
		for i := range qs {
			if got, want := frameOut[i].JSON(), br.Decisions[i]; got != want {
				t.Fatalf("query %+v: frame %+v, json %+v", qs[i], got, want)
			}
			if frameOut[i] != direct[i] {
				t.Fatalf("query %+v: frame %v/%v, engine %v/%v", qs[i],
					frameOut[i].Action, frameOut[i].Signal, direct[i].Action, direct[i].Signal)
			}
			checked++
		}
	}
	t.Logf("%d decisions parity-checked across frame, JSON, and in-process wires", checked)
}
