package policyd

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/agents"
	"repro/internal/aitxt"
	"repro/internal/metatags"
	"repro/internal/par"
	"repro/internal/robots"
)

// DefaultShards is the shard count used when a Builder does not specify
// one. Shards bound per-map size and let snapshot compilation fan out;
// lookups are lock-free either way because snapshots are immutable.
const DefaultShards = 64

// HostConfig is the raw policy surface of one host, as a crawler (or a
// measurement pipeline) would observe it on the wire.
type HostConfig struct {
	// RobotsTxt is the robots.txt body; "" means the host serves none.
	RobotsTxt string
	// AITxt is the ai.txt body; "" means none.
	AITxt string
	// MetaHTML is homepage markup scanned for robots meta directives
	// (noai / noimageai); "" means none.
	MetaHTML string
	// Blocklist holds user-agent substrings the host actively blocks;
	// nil means no active blocking.
	Blocklist []string
}

// hostPolicy is a host's compiled, query-ready form.
type hostPolicy struct {
	robots *robots.Robots
	// access precomputes the robots view per roster agent (indexed by
	// Snapshot.agentIDs), so roster queries never touch the Robots
	// value's internal memo.
	access []robots.Access
	ai     *aiPolicy
	meta   metaPolicy
	// blockPatterns is nil when the host does not block; blocked
	// precomputes the roster verdicts.
	blockPatterns []string
	blocked       []bool

	src HostConfig
}

// shard is one immutable partition of the host index.
type shard struct {
	hosts map[string]*hostPolicy
}

// Snapshot is an immutable compiled policy index. Build one with a
// Builder (or FromCorpus) and serve it through a Service; all methods
// are safe for unlimited concurrent use.
type Snapshot struct {
	// Version labels the snapshot in stats output ("2024-42", …).
	Version string

	shards   []shard
	mask     uint32
	hosts    int
	agentIDs map[string]int
	roster   []string
	reused   int
}

// ReusedHosts reports how many hosts this snapshot shares, compiled,
// with the Builder's Prev snapshot — the incremental-recompile hit
// count. Zero for full builds.
func (sn *Snapshot) ReusedHosts() int { return sn.reused }

// lookup returns the compiled policy for host, folding case on a slow
// path, or nil when the host is not in the snapshot.
func (sn *Snapshot) lookup(host string) *hostPolicy {
	host = foldHost(host)
	sh := &sn.shards[fnv1a(host)&sn.mask]
	return sh.hosts[host]
}

// Hosts returns the snapshot's host names, sorted.
func (sn *Snapshot) Hosts() []string {
	out := make([]string, 0, sn.hosts)
	for i := range sn.shards {
		for h := range sn.shards[i].hosts {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of indexed hosts.
func (sn *Snapshot) Len() int { return sn.hosts }

// Roster returns the agent roster the snapshot precompiled.
func (sn *Snapshot) Roster() []string { return append([]string(nil), sn.roster...) }

// Source returns the raw policy surface the host was compiled from,
// for introspection and parity testing.
func (sn *Snapshot) Source(host string) (HostConfig, bool) {
	hp := sn.lookup(host)
	if hp == nil {
		return HostConfig{}, false
	}
	return hp.src, true
}

// fnv1a hashes a host name without allocating.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// DefaultRoster is the agent set snapshots precompile when the builder
// is not given one: every Table 1 product token plus the traditional
// search crawler and a browser token, so both AI and non-AI queries hit
// the allocation-free path.
func DefaultRoster() []string {
	return append(agents.Tokens(), "Googlebot", "Mozilla")
}

// Builder stages hosts and compiles them into a Snapshot. Add every
// host, then call Build once; builders are not safe for concurrent use
// and must not be reused after Build.
type Builder struct {
	// Shards is the shard count, rounded up to a power of two; 0 means
	// DefaultShards.
	Shards int
	// Roster lists the agents to precompile per host; nil means
	// DefaultRoster. Queries for agents outside the roster are still
	// answered correctly, just through the allocating slow path.
	Roster []string
	// Prev, when set, enables incremental recompilation: a staged host
	// whose config is policy-equivalent to its compiled form in Prev
	// (robots.txt equal under the normalized parse-cache key, everything
	// else exactly equal) reuses Prev's compiled state instead of
	// compiling. Sharing is safe because snapshots are immutable. Prev's
	// roster must equal the builder's roster or it is ignored.
	Prev *Snapshot

	hosts   []string
	configs []HostConfig
}

// Add stages one host. Later Adds of the same host win.
func (b *Builder) Add(host string, cfg HostConfig) {
	b.hosts = append(b.hosts, foldHost(host))
	b.configs = append(b.configs, cfg)
}

// Build compiles the staged hosts on a workers-bounded pool (0 means
// GOMAXPROCS) into an immutable snapshot. robots.txt bodies parse
// through the shared content-keyed cache, so repeated templates compile
// once; per-host compilation is independent and runs sharded.
func (b *Builder) Build(ctx context.Context, version string, workers int) (*Snapshot, error) {
	roster := b.Roster
	if roster == nil {
		roster = DefaultRoster()
	}
	nShards := b.Shards
	if nShards <= 0 {
		nShards = DefaultShards
	}
	pow := 1
	for pow < nShards {
		pow *= 2
	}
	sn := &Snapshot{
		Version:  version,
		shards:   make([]shard, pow),
		mask:     uint32(pow - 1),
		agentIDs: make(map[string]int, len(roster)),
		roster:   append([]string(nil), roster...),
	}
	for i := range sn.shards {
		sn.shards[i].hosts = make(map[string]*hostPolicy)
	}
	for i, a := range roster {
		sn.agentIDs[a] = i
	}

	prev := b.Prev
	if prev != nil && !rosterEqual(prev.roster, roster) {
		prev = nil
	}
	var reused atomic.Int64
	compiled := make([]*hostPolicy, len(b.hosts))
	if err := par.Do(ctx, workers, len(b.hosts), func(start, end int) {
		n := 0
		for i := start; i < end; i++ {
			if prev != nil {
				if hp := prev.lookup(b.hosts[i]); hp != nil {
					if r := reuseHost(hp, b.configs[i]); r != nil {
						compiled[i] = r
						n++
						continue
					}
				}
			}
			compiled[i] = compileHost(b.configs[i], roster)
		}
		if n > 0 {
			reused.Add(int64(n))
		}
	}); err != nil {
		return nil, err
	}
	sn.reused = int(reused.Load())
	if sn.reused > 0 {
		mCompileReused.Add(uint64(sn.reused))
	}
	if fresh := len(b.hosts) - sn.reused; fresh > 0 {
		mCompileFresh.Add(uint64(fresh))
	}
	for i, host := range b.hosts {
		sh := &sn.shards[fnv1a(host)&sn.mask]
		if _, dup := sh.hosts[host]; !dup {
			sn.hosts++
		}
		sh.hosts[host] = compiled[i]
	}
	return sn, nil
}

// rosterEqual reports whether two rosters precompile the same agents in
// the same index order (the compiled access/blocked slices are
// roster-indexed, so order matters).
func rosterEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reuseHost returns a compiled policy equivalent to compiling cfg, built
// from hp (a previous snapshot's compiled form of the same host), or nil
// when cfg's policy may differ and must compile for real. robots.txt
// bodies compare under the normalized parse-cache key — per-site comment
// and Sitemap lines churn between corpus months without changing rule
// semantics — while the other three mechanisms compare exactly.
func reuseHost(hp *hostPolicy, cfg HostConfig) *hostPolicy {
	old := hp.src
	if old.AITxt != cfg.AITxt || old.MetaHTML != cfg.MetaHTML {
		return nil
	}
	if len(old.Blocklist) != len(cfg.Blocklist) {
		return nil
	}
	for i := range old.Blocklist {
		if old.Blocklist[i] != cfg.Blocklist[i] {
			return nil
		}
	}
	if old.RobotsTxt == cfg.RobotsTxt {
		return hp
	}
	if !robots.EqualNormalized(old.RobotsTxt, cfg.RobotsTxt) {
		return nil
	}
	// Same rule semantics, different verbatim body: share the compiled
	// state but carry the new source so Source() stays faithful.
	cp := *hp
	cp.src = cfg
	return &cp
}

// compileHost turns one host's raw policy surface into its query form.
func compileHost(cfg HostConfig, roster []string) *hostPolicy {
	hp := &hostPolicy{src: cfg}
	if cfg.RobotsTxt != "" {
		hp.robots = robots.ParseCached(cfg.RobotsTxt)
		hp.access = make([]robots.Access, len(roster))
		for i, a := range roster {
			hp.access[i] = hp.robots.Agent(a)
		}
	}
	if cfg.AITxt != "" {
		hp.ai = compileAIPolicy(aitxt.ParseString(cfg.AITxt))
	}
	if cfg.MetaHTML != "" {
		d := metatags.Scan(cfg.MetaHTML)
		hp.meta = metaPolicy{noAI: d.NoAI, noImageAI: d.NoImageAI}
	}
	if cfg.Blocklist != nil {
		hp.blockPatterns = cfg.Blocklist
		hp.blocked = make([]bool, len(roster))
		for i, a := range roster {
			hp.blocked[i] = matchesAnyFold(a, cfg.Blocklist)
		}
	}
	return hp
}

// metaPolicy is the compiled form of a page's robots meta directives.
type metaPolicy struct {
	noAI      bool
	noImageAI bool
}

// denies reports whether the directives deny AI use of the path: noai
// denies everything, noimageai denies image resources (the same
// classification ai.txt applies).
func (m metaPolicy) denies(path string) bool {
	if m.noAI {
		return true
	}
	return m.noImageAI && mediaOfPath(path) == aitxt.MediaImage
}

// aiPolicy is the compiled, allocation-free form of an ai.txt file. It
// mirrors aitxt.Policy.Permitted exactly: path patterns beat media
// defaults, the longest (raw-length) matching pattern wins, allow wins
// ties, and absent media types default to permitted.
type aiPolicy struct {
	rules []aiRule
	// media holds per-type tri-state permissions indexed by mediaIndex:
	// -1 unset, 0 denied, 1 permitted.
	media [nMediaTypes]int8
}

type aiRule struct {
	// pat is the match pattern: for suffix rules the ".ext" suffix, for
	// anchored rules the pattern with '$' stripped, otherwise verbatim.
	pat string
	// rawLen is the original pattern's length, the specificity metric
	// aitxt uses for precedence.
	rawLen   int
	suffix   bool
	anchored bool
	allow    bool
}

const nMediaTypes = 5

// mediaOrder fixes the media-type indexing of aiPolicy.media.
var mediaOrder = [nMediaTypes]aitxt.MediaType{
	aitxt.MediaText, aitxt.MediaImage, aitxt.MediaAudio, aitxt.MediaVideo, aitxt.MediaCode,
}

func mediaIndex(mt aitxt.MediaType) int {
	for i, m := range mediaOrder {
		if m == mt {
			return i
		}
	}
	return 0 // aitxt defaults unknown paths to text
}

// compileAIPolicy flattens a parsed policy. Disallow patterns compile
// before allow patterns, preserving Permitted's evaluation order.
func compileAIPolicy(p *aitxt.Policy) *aiPolicy {
	out := &aiPolicy{}
	for i := range out.media {
		out.media[i] = -1
	}
	for mt, allowed := range p.Media {
		v := int8(0)
		if allowed {
			v = 1
		}
		out.media[mediaIndex(mt)] = v
	}
	add := func(pats []string, allow bool) {
		for _, pat := range pats {
			if pat == "" {
				continue
			}
			r := aiRule{rawLen: len(pat), allow: allow}
			switch {
			case len(pat) >= 2 && pat[0] == '*' && pat[1] == '.':
				r.suffix = true
				r.pat = pat[1:]
			case pat[len(pat)-1] == '$':
				r.anchored = true
				r.pat = pat[:len(pat)-1]
			default:
				r.pat = pat
			}
			out.rules = append(out.rules, r)
		}
	}
	add(p.DisallowPatterns, false)
	add(p.AllowPatterns, true)
	return out
}

// permitted reports whether AI use of path is allowed, with
// aitxt.Policy.Permitted's exact semantics but no allocations.
func (p *aiPolicy) permitted(path string) bool {
	bestLen := -1
	permitted := true
	for _, r := range p.rules {
		if !r.match(path) {
			continue
		}
		switch {
		case r.rawLen > bestLen:
			bestLen = r.rawLen
			permitted = r.allow
		case r.rawLen == bestLen && r.allow:
			permitted = true
		}
	}
	if bestLen >= 0 {
		return permitted
	}
	if v := p.media[mediaIndex(mediaOfPath(path))]; v >= 0 {
		return v == 1
	}
	return true
}

func (r aiRule) match(path string) bool {
	if r.suffix {
		n := len(r.pat)
		return len(path) >= n && equalFoldAt(path, len(path)-n, r.pat)
	}
	return wildcardMatch(r.pat, path, r.anchored)
}

// wildcardMatch reports whether pattern (with '*' wildcards) matches
// path, greedily with backtracking; when anchored is false the pattern
// carries an implicit trailing '*'. Same routine as the robots.txt
// matcher, duplicated here because patterns were pre-split differently.
func wildcardMatch(pattern, path string, anchored bool) bool {
	var p, s, starP, starS int
	starP, starS = -1, -1
	for s < len(path) {
		if !anchored && p == len(pattern) {
			return true
		}
		switch {
		case p < len(pattern) && pattern[p] == '*':
			starP, starS = p, s
			p++
		case p < len(pattern) && pattern[p] == path[s]:
			p++
			s++
		case starP >= 0:
			starS++
			s = starS
			p = starP + 1
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// mediaOfPath mirrors aitxt.MediaOf without allocating: classify by
// extension, defaulting to text.
func mediaOfPath(path string) aitxt.MediaType {
	i := len(path) - 1
	for i >= 0 && path[i] != '.' && path[i] != '/' {
		i--
	}
	if i < 0 || path[i] != '.' {
		return aitxt.MediaText
	}
	ext := path[i:]
	for _, e := range mediaExts {
		if len(ext) == len(e.ext) && equalFoldAt(ext, 0, e.ext) {
			return e.mt
		}
	}
	return aitxt.MediaText
}

// mediaExts mirrors the aitxt extension tables.
var mediaExts = []struct {
	ext string
	mt  aitxt.MediaType
}{
	{".txt", aitxt.MediaText}, {".html", aitxt.MediaText}, {".htm", aitxt.MediaText},
	{".md", aitxt.MediaText}, {".pdf", aitxt.MediaText},
	{".jpg", aitxt.MediaImage}, {".jpeg", aitxt.MediaImage}, {".png", aitxt.MediaImage},
	{".gif", aitxt.MediaImage}, {".webp", aitxt.MediaImage}, {".svg", aitxt.MediaImage},
	{".mp3", aitxt.MediaAudio}, {".wav", aitxt.MediaAudio}, {".flac", aitxt.MediaAudio},
	{".mp4", aitxt.MediaVideo}, {".webm", aitxt.MediaVideo}, {".mov", aitxt.MediaVideo},
	{".js", aitxt.MediaCode}, {".py", aitxt.MediaCode}, {".go", aitxt.MediaCode},
	{".c", aitxt.MediaCode},
}

// String renders a compact identity for logs.
func (sn *Snapshot) String() string {
	return fmt.Sprintf("policyd.Snapshot{%s: %d hosts, %d shards}", sn.Version, sn.hosts, len(sn.shards))
}
