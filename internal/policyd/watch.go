package policyd

import (
	"bufio"
	"net"
	"sync"
)

// Snapshot-version watching: the invalidation half of a hot reload.
//
// A fleet client (the gateway, a cache, a loadgen process) needs to know
// *when* a replica swapped snapshots, not just which snapshot answered
// its last batch. VersionFeed is that channel: Swap publishes the new
// snapshot's version to every subscriber, in-process through Watch and
// over the wire through a deliberately tiny line protocol (ServeWatch) —
// one version string per line, the current version written immediately
// on connect. The protocol is identical over netsim duplex conns and
// real TCP, so the same watcher code runs in-harness and in production
// shape; it is the webhook-invalidation pattern with the connection
// inverted (long-lived subscriber instead of server-push callbacks),
// which needs no client-side listener.

// VersionFeed fans out version announcements to subscribers. The zero
// value is not usable; construct with NewVersionFeed.
type VersionFeed struct {
	mu       sync.Mutex
	cur      string
	seq      uint64
	watchers map[uint64]chan string
}

// NewVersionFeed returns a feed whose current version is cur ("" when
// not yet known).
func NewVersionFeed(cur string) *VersionFeed {
	return &VersionFeed{cur: cur, watchers: make(map[uint64]chan string)}
}

// Current returns the most recently published version.
func (f *VersionFeed) Current() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur
}

// Publish announces v to every watcher; publishing the current version
// again is a no-op. Slow watchers coalesce: when a subscriber's channel
// is full the oldest pending version is dropped, so the latest version
// always arrives but intermediate ones may not — exactly the semantics a
// cache invalidation needs.
func (f *VersionFeed) Publish(v string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if v == f.cur {
		return
	}
	f.cur = v
	for _, ch := range f.watchers {
		select {
		case ch <- v:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- v:
			default:
			}
		}
	}
}

// Watch subscribes to version announcements. The returned channel
// receives each published version (coalescing under a slow reader);
// cancel unsubscribes and must be called to release the watcher.
func (f *VersionFeed) Watch() (<-chan string, func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := f.seq
	f.seq++
	ch := make(chan string, 4)
	f.watchers[id] = ch
	cancel := func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		delete(f.watchers, id)
	}
	return ch, cancel
}

// Serve answers watch connections from ln until the listener closes,
// returning the Accept error (net.ErrClosed on clean shutdown). Each
// connection immediately receives the current version (when known) as
// one line, then one line per subsequent Publish.
func (f *VersionFeed) Serve(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		go f.serveConn(c)
	}
}

func (f *VersionFeed) serveConn(c net.Conn) {
	defer c.Close()
	ch, cancel := f.Watch()
	defer cancel()
	// The conn is write-only for the server; a returning read (EOF or
	// error) means the client hung up and unblocks the select below.
	done := make(chan struct{})
	go func() {
		var b [1]byte
		for {
			if _, err := c.Read(b[:]); err != nil {
				close(done)
				return
			}
		}
	}()
	if v := f.Current(); v != "" {
		if _, err := c.Write(append([]byte(v), '\n')); err != nil {
			return
		}
	}
	for {
		select {
		case v := <-ch:
			if _, err := c.Write(append([]byte(v), '\n')); err != nil {
				return
			}
		case <-done:
			return
		}
	}
}

// WatchVersions reads version lines from a watch connection, calling fn
// for each until fn returns false (clean stop, nil error) or the
// connection fails. Duplicate announcements are possible across a
// subscribe race; treat each line as idempotent.
func WatchVersions(c net.Conn, fn func(version string) bool) error {
	sc := bufio.NewScanner(c)
	for sc.Scan() {
		if !fn(sc.Text()) {
			return nil
		}
	}
	return sc.Err()
}

// ServeWatch serves the service's version feed on ln: the wire form of
// Service.Watch, announcing every Swap to connected clients.
func ServeWatch(ln net.Listener, svc *Service) error {
	return svc.feed.Serve(ln)
}
