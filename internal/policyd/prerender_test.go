package policyd

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestPrerenderedDecisionsMatchEncoder pins the pre-rendered table to
// the bytes json.NewEncoder would stream for every (action, signal)
// pair — the exact wire form clients saw before the table existed.
func TestPrerenderedDecisionsMatchEncoder(t *testing.T) {
	for a := Allow; a <= Block; a++ {
		for s := SignalNone; s <= SignalMeta; s++ {
			var want bytes.Buffer
			if err := json.NewEncoder(&want).Encode(Decision{Action: a, Signal: s}.JSON()); err != nil {
				t.Fatal(err)
			}
			if got := decideResponses[a][s]; !bytes.Equal(got, want.Bytes()) {
				t.Errorf("(%v,%v): prerendered %q, encoder %q", a, s, got, want.Bytes())
			}
		}
	}
}

func TestWriteDecision(t *testing.T) {
	rec := httptest.NewRecorder()
	writeDecision(rec, Decision{Action: Deny, Signal: SignalMeta})
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var got DecisionJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("body %q: %v", rec.Body.String(), err)
	}
	if got.Action != "deny" || got.Signal != "meta" {
		t.Errorf("decoded %+v", got)
	}

	// Out-of-range pairs fall back to the live encoder rather than
	// indexing past the table.
	rec = httptest.NewRecorder()
	writeDecision(rec, Decision{Action: Block + 1, Signal: SignalMeta + 1})
	if !json.Valid(rec.Body.Bytes()) {
		t.Errorf("fallback body not JSON: %q", rec.Body.String())
	}
}
