package policyd

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func buildSnap(t *testing.T, version, robots string) *Snapshot {
	t.Helper()
	b := &Builder{Shards: 2}
	b.Add("a.test", HostConfig{RobotsTxt: robots})
	b.Add("b.test", HostConfig{Blocklist: []string{"GPTBot"}})
	snap, err := b.Build(context.Background(), version, 1)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// decisionTotal sums the whole action×signal counter matrix.
func decisionTotal() uint64 {
	var sum uint64
	for a := Allow; a <= Block; a++ {
		for sig := SignalNone; sig <= SignalMeta; sig++ {
			sum += mDecisions[a][sig].Value()
		}
	}
	return sum
}

// TestDecisionCountersAcrossSwap hammers Decide and DecideBatch from
// several goroutines while another goroutine hot-swaps snapshots, then
// checks the decision matrix advanced by exactly the number of
// decisions issued: counters must neither double-count nor tear when a
// reload races the hot path. Run under -race in CI.
func TestDecisionCountersAcrossSwap(t *testing.T) {
	snapA := buildSnap(t, "swap-a", "User-agent: *\nDisallow: /private/\n")
	snapB := buildSnap(t, "swap-b", "User-agent: *\nDisallow: /\n")
	svc := NewService(snapA)

	before := decisionTotal()
	beforeSwaps := mSwaps.Value()

	const (
		workers   = 4
		perWorker = 5000
		batchLen  = 16
	)
	queries := []Query{
		{Host: "a.test", Agent: "GPTBot", Path: "/private/x"},
		{Host: "a.test", Agent: "ClaudeBot", Path: "/"},
		{Host: "b.test", Agent: "GPTBot", Path: "/"},
		{Host: "missing.test", Agent: "GPTBot", Path: "/"},
	}

	done := make(chan struct{})
	var swaps int
	var swapperWg sync.WaitGroup
	swapperWg.Add(1)
	go func() {
		defer swapperWg.Done()
		cur := snapB
		for {
			select {
			case <-done:
				return
			default:
			}
			svc.Swap(cur)
			swaps++
			if cur == snapA {
				cur = snapB
			} else {
				cur = snapA
			}
		}
	}()

	var issued uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n uint64
			batch := make([]Query, batchLen)
			out := make([]Decision, 0, batchLen)
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					svc.Decide(queries[(w+i)%len(queries)])
					n++
				} else {
					for j := range batch {
						batch[j] = queries[(w+i+j)%len(queries)]
					}
					out = svc.DecideBatch(batch, out[:0])
					n += batchLen
				}
			}
			mu.Lock()
			issued += n
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	close(done)
	swapperWg.Wait()

	delta := decisionTotal() - before
	if delta != issued {
		t.Fatalf("decision matrix advanced by %d, issued %d (double count or tear across %d swaps)",
			delta, issued, swaps)
	}
	if got := mSwaps.Value() - beforeSwaps; got != uint64(swaps) {
		t.Fatalf("swap counter advanced by %d, performed %d", got, swaps)
	}
	if swaps == 0 {
		t.Fatal("swapper never ran; test proved nothing")
	}
}

// TestMetricsDisabledDecideStillCorrect proves the no-op knob leaves
// decisions untouched and counters frozen.
func TestMetricsDisabledDecideStillCorrect(t *testing.T) {
	defer obs.SetEnabled(true)
	snap := buildSnap(t, "noop", "User-agent: *\nDisallow: /\n")
	svc := NewService(snap)

	obs.SetEnabled(false)
	before := decisionTotal()
	d := svc.Decide(Query{Host: "a.test", Agent: "GPTBot", Path: "/x"})
	if d.Action != Deny {
		t.Fatalf("Decide with metrics off = %v, want deny", d)
	}
	if got := decisionTotal(); got != before {
		t.Fatalf("counters advanced by %d while disabled", got-before)
	}
	obs.SetEnabled(true)
	svc.Decide(Query{Host: "a.test", Agent: "GPTBot", Path: "/x"})
	if got := decisionTotal(); got != before+1 {
		t.Fatalf("counters did not resume after re-enable")
	}
}

// TestWireCountersRegistered spot-checks the policyd families render in
// the Default registry output.
func TestWireCountersRegistered(t *testing.T) {
	var b strings.Builder
	if err := obs.Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"policyd_decisions_total", "policyd_batch_size", "policyd_snapshot_swaps_total",
		"policyd_compile_duration_ns", "policyd_wire_requests_total",
	} {
		if !strings.Contains(b.String(), fam) {
			t.Errorf("Default registry missing family %s", fam)
		}
	}
}
