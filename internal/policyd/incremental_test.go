package policyd

import (
	"context"
	"testing"

	"repro/internal/corpus"
)

// TestIncrementalCompileEquivalence proves the month-advance fast path:
// compiling snapshot index i+1 with the index-i snapshot as Prev must
// produce decisions identical to a cold full compile, while actually
// reusing a meaningful fraction of host policies (most sites' robots.txt
// changes only in normalization-invisible ways between adjacent months).
func TestIncrementalCompileEquivalence(t *testing.T) {
	ctx := context.Background()
	c, err := corpus.New(ctx, corpus.Config{Seed: 20251028, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	base, err := FromCorpus(ctx, c, corpus.GPTBotAnnouncedIndex, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FromCorpus(ctx, c, corpus.GPTBotAnnouncedIndex+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := FromCorpusIncremental(ctx, c, corpus.GPTBotAnnouncedIndex+1, 0, base)
	if err != nil {
		t.Fatal(err)
	}

	if full.ReusedHosts() != 0 {
		t.Fatalf("cold compile reports %d reused hosts", full.ReusedHosts())
	}
	if incr.ReusedHosts() == 0 {
		t.Fatal("incremental compile reused no hosts — fast path never engaged")
	}
	if incr.ReusedHosts() >= incr.Len() {
		t.Fatalf("incremental compile reused all %d hosts — the month advance changed nothing?", incr.Len())
	}
	t.Logf("reused %d/%d hosts across the month advance", incr.ReusedHosts(), incr.Len())

	if incr.Version != full.Version {
		t.Fatalf("version %q != %q", incr.Version, full.Version)
	}

	fullSvc, incrSvc := NewService(full), NewService(incr)
	agents := []string{"GPTBot", "CCBot", "Google-Extended", "Googlebot", "Mozilla", "anthropic-ai"}
	paths := []string{"/", "/about.html", "/admin/secret", "/gallery/a.png", "/search?q=x"}
	checked := 0
	for i, host := range full.Hosts() {
		q := Query{Host: host, Agent: agents[i%len(agents)], Path: paths[i%len(paths)]}
		if a, b := fullSvc.Decide(q), incrSvc.Decide(q); a != b {
			t.Fatalf("host %s agent %s path %s: full %v/%v, incremental %v/%v",
				q.Host, q.Agent, q.Path, a.Action, a.Signal, b.Action, b.Signal)
		}
		checked++
	}
	if checked != full.Len() {
		t.Fatalf("checked %d of %d hosts", checked, full.Len())
	}

	// Reuse against a different-index Prev must also survive query-level
	// scrutiny for every agent on a sample of hosts (decision surface, not
	// just the sampled path above).
	hosts := full.Hosts()
	for i := 0; i < len(hosts); i += 37 {
		for _, ag := range agents {
			for _, p := range paths {
				q := Query{Host: hosts[i], Agent: ag, Path: p}
				if a, b := fullSvc.Decide(q), incrSvc.Decide(q); a != b {
					t.Fatalf("dense check host %s agent %s path %s: full %v incremental %v", q.Host, ag, p, a, b)
				}
			}
		}
	}
}

// TestIncrementalRosterChange: a Prev compiled against a different
// agent roster must be ignored wholesale — host policies precompute
// roster-indexed verdict tables, so reuse across rosters would serve
// stale verdicts. A host-set change, by contrast, reuses fine (lookup
// is by name).
func TestIncrementalRosterChange(t *testing.T) {
	ctx := context.Background()
	b1 := &Builder{}
	b1.Add("a.test", HostConfig{RobotsTxt: "User-agent: *\nDisallow: /x\n"})
	b1.Add("b.test", HostConfig{})
	prev, err := b1.Build(ctx, "v1", 0)
	if err != nil {
		t.Fatal(err)
	}

	b2 := &Builder{Prev: prev, Roster: []string{"GPTBot", "CCBot"}}
	b2.Add("a.test", HostConfig{RobotsTxt: "User-agent: *\nDisallow: /x\n"})
	b2.Add("b.test", HostConfig{})
	next, err := b2.Build(ctx, "v2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if next.ReusedHosts() != 0 {
		t.Fatalf("reused %d hosts across an agent-roster change", next.ReusedHosts())
	}

	// Host-set change, same roster: the surviving host is reused.
	b3 := &Builder{Prev: prev}
	b3.Add("a.test", HostConfig{RobotsTxt: "User-agent: *\nDisallow: /x\n"})
	b3.Add("c.test", HostConfig{})
	grown, err := b3.Build(ctx, "v3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if grown.ReusedHosts() != 1 {
		t.Fatalf("host-set change reused %d hosts, want 1 (a.test)", grown.ReusedHosts())
	}
}

// TestIncrementalNormalizedReuse pins the parse-cache-key contract at
// the Builder level: comment/Sitemap-only robots.txt edits reuse the
// compiled host, semantic edits do not.
func TestIncrementalNormalizedReuse(t *testing.T) {
	ctx := context.Background()
	mk := func(prev *Snapshot, robots string) *Snapshot {
		b := &Builder{Prev: prev}
		b.Add("site.test", HostConfig{RobotsTxt: robots})
		b.Add("other.test", HostConfig{})
		sn, err := b.Build(ctx, "v", 0)
		if err != nil {
			t.Fatal(err)
		}
		return sn
	}
	base := mk(nil, "User-agent: GPTBot\nDisallow: /\n")

	// Normalization-invisible edit (comment + Sitemap lines): reused.
	cosmetic := mk(base, "# crawler policy\nUser-agent: GPTBot\nDisallow: /\nSitemap: https://site.test/s.xml\n")
	if cosmetic.ReusedHosts() != 2 {
		t.Fatalf("cosmetic robots edit reused %d hosts, want 2", cosmetic.ReusedHosts())
	}
	q := Query{Host: "site.test", Agent: "GPTBot", Path: "/p"}
	if d := NewService(cosmetic).Decide(q); d.Action != Deny {
		t.Fatalf("reused host lost its policy: %v", d)
	}

	// Semantic edit: recompiled, new policy visible.
	semantic := mk(base, "User-agent: GPTBot\nAllow: /\n")
	if semantic.ReusedHosts() != 1 { // only other.test
		t.Fatalf("semantic robots edit reused %d hosts, want 1", semantic.ReusedHosts())
	}
	if d := NewService(semantic).Decide(q); d.Action != Allow {
		t.Fatalf("recompiled host kept the old policy: %v", d)
	}

	// Non-robots surface change (ai.txt) must also force recompile.
	b := &Builder{Prev: base}
	b.Add("site.test", HostConfig{RobotsTxt: "User-agent: GPTBot\nDisallow: /\n", AITxt: "User-agent: *\nDisallow: /\n"})
	b.Add("other.test", HostConfig{})
	sn, err := b.Build(ctx, "v", 0)
	if err != nil {
		t.Fatal(err)
	}
	if sn.ReusedHosts() != 1 {
		t.Fatalf("ai.txt change reused %d hosts, want 1", sn.ReusedHosts())
	}
}
