package policyd

import (
	"context"
	"time"

	"repro/internal/agents"
	"repro/internal/aitxt"
	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Enrichment rates for the signals the corpus does not model itself,
// calibrated to the paper's population measurements so a compiled
// snapshot carries all four mechanisms in realistic proportions.
const (
	// aiTxtRate approximates ai.txt adoption: a niche mechanism (§2.2),
	// a little above the NoAI-tag rate.
	aiTxtRate = 0.015
	// noAIRate / noImageAIRate reproduce the §2.2 top-10k scan
	// proportions (17 and 16 of 10,000; most adopters set both).
	noAIRate      = 17.0 / 10_000
	noImageAIRate = 16.0 / 10_000
	// blockRate is the §6.2 active-blocking adoption (1,433 of 10,000).
	blockRate = blocking.PaperUABlockRate
)

// FromCorpus compiles one corpus snapshot into a servable policy index:
// each analysis site contributes the robots.txt it serves at snapshot
// index snap (rendered by the same code the longitudinal analysis
// parses), and a deterministic, seed-derived minority of sites
// additionally carry the signals the corpus does not model — an ai.txt,
// NoAI meta tags, and active user-agent blocking — at the paper's
// adoption rates. Which sites carry which extra signal is stable across
// snapshot indices; only the policies themselves evolve (robots.txt
// follows the site's event timeline, blocklists hold the agents
// announced by the snapshot date), so swapping between FromCorpus
// snapshots is exactly a policy-push hot reload.
func FromCorpus(ctx context.Context, c *corpus.Corpus, snap, workers int) (*Snapshot, error) {
	return FromCorpusIncremental(ctx, c, snap, workers, nil)
}

// FromCorpusIncremental is FromCorpus reusing prev (a snapshot built from
// the same corpus at another index) for hosts whose policy surface is
// unchanged: most sites' robots.txt differs between adjacent months only
// in per-site comment/Sitemap lines, which the normalized parse-cache
// key already proves semantics-preserving, so a month-advance reload
// recompiles only the hosts whose rules actually moved. prev may be nil
// (full build). The result is decision-identical to a full build.
func FromCorpusIncremental(ctx context.Context, c *corpus.Corpus, snap, workers int, prev *Snapshot) (*Snapshot, error) {
	if obs.Enabled() {
		defer mCompileNS.ObserveSince(time.Now())
	}
	if snap < 0 {
		snap = 0
	}
	if snap >= len(corpus.Snapshots) {
		snap = len(corpus.Snapshots) - 1
	}
	meta := corpus.Snapshots[snap]

	// The blocklist a provider would push at this date: every announced
	// real crawler, the same derivation the scenario engine's blockers
	// use. Shared across hosts — the compiled roster verdicts are
	// per-host, but the pattern slice is one allocation.
	var blockPatterns []string
	for _, a := range agents.RealCrawlers() {
		if agents.AnnouncedBy(a.UserAgent, meta.Date) {
			blockPatterns = append(blockPatterns, a.UserAgent)
		}
	}

	sites := c.Sites()
	b := &Builder{Prev: prev}
	// Per-site forks derive sequentially from one policyd stream (Fork
	// consumes parent state); the draws below are per-site and ordered,
	// so enrichment is bit-identical at any worker count and independent
	// of the snapshot index.
	rn := stats.NewRand(c.Config().Seed).Fork("policyd")
	for _, s := range sites {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sr := rn.Fork(s.Domain)
		cfg := HostConfig{RobotsTxt: c.RobotsBody(s, snap)}
		if sr.Bool(aiTxtRate) {
			cfg.AITxt = siteAITxt(sr)
		}
		noai := sr.Bool(noAIRate)
		noimg := sr.Bool(noImageAIRate)
		if noai || noimg {
			cfg.MetaHTML = metaHomepage(noai, noimg)
		}
		if sr.Bool(blockRate) {
			cfg.Blocklist = blockPatterns
		}
		b.Add(s.Domain, cfg)
	}
	return b.Build(ctx, meta.ID, workers)
}

// siteAITxt renders a plausible artist-site ai.txt: images always
// denied, text denied for some, with a gallery path pattern.
func siteAITxt(sr *stats.Rand) string {
	media := map[aitxt.MediaType]bool{aitxt.MediaImage: false}
	if sr.Bool(0.4) {
		media[aitxt.MediaText] = false
	}
	var disallow []string
	if sr.Bool(0.5) {
		disallow = []string{"/gallery/", "*.png"}
	}
	return aitxt.Generate(media, disallow, nil)
}

// metaHomepage renders the homepage head carrying the NoAI directives,
// in the DeviantArt style the §2.2 scan looks for.
func metaHomepage(noai, noimg bool) string {
	content := ""
	switch {
	case noai && noimg:
		content = "noai, noimageai"
	case noai:
		content = "noai"
	default:
		content = "noimageai"
	}
	return `<html><head><meta name="robots" content="` + content +
		`"><title>protected</title></head><body><p>art</p></body></html>`
}
