// Package core is the experiment engine: every table and figure in the
// paper's evaluation is a named, runnable Experiment that drives the
// substrate packages through a shared Env and renders results in the
// paper's shape. RunAll schedules independent experiments on a bounded
// worker pool and emits results to a pluggable Sink in deterministic
// registration order. The cmd/somesite binary and the benchmark harness
// are thin wrappers around this package.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// Config parameterizes experiment runs. The zero value is not usable; use
// DefaultConfig (paper scale) or QuickConfig (CI scale).
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Scale multiplies the longitudinal corpus populations (1.0 = the
	// paper's 40,455 analysis sites).
	Scale float64
	// BlockingSites is the §6.2 survey population (paper: 10,000).
	BlockingSites int
	// CloudflareSites is the §6.3 survey population (paper: 2,018).
	CloudflareSites int
	// Apps is the number of GPT apps exercised in §5.2.2.
	Apps int
	// Workers bounds probe and substrate concurrency (0 = GOMAXPROCS).
	Workers int
}

// EffectiveWorkers resolves the Workers field (0 means GOMAXPROCS).
func (c Config) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig runs experiments at the paper's full scale.
func DefaultConfig() Config {
	return Config{
		Seed:            stats.DefaultSeed,
		Scale:           1.0,
		BlockingSites:   10_000,
		CloudflareSites: 2_018,
		Apps:            120,
		Workers:         64,
	}
}

// QuickConfig runs everything at reduced scale, suitable for tests.
func QuickConfig() Config {
	return Config{
		Seed:            stats.DefaultSeed,
		Scale:           0.08,
		BlockingSites:   600,
		CloudflareSites: 400,
		Apps:            60,
		Workers:         16,
	}
}

// Table is a rendered result table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// Section is one heading plus its content.
type Section struct {
	Heading string         `json:",omitempty"`
	Table   *Table         `json:",omitempty"`
	Series  []stats.Series `json:",omitempty"`
	Notes   []string       `json:",omitempty"`
}

// Result is a completed experiment.
type Result struct {
	ID       string
	Title    string
	Sections []Section
}

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	// ID is the registry key ("figure2", "table1", …).
	ID string
	// Title describes the artifact in the paper's terms.
	Title string
	// Run executes the experiment against a shared environment. It must
	// honor ctx cancellation and must not mutate env beyond its cache.
	Run func(ctx context.Context, env *Env) (*Result, error)
}

var (
	registryMu   sync.Mutex
	registry     []Experiment
	registryByID = make(map[string]Experiment)
)

func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registryByID[e.ID]; dup {
		panic(fmt.Sprintf("core: duplicate experiment id %q", e.ID))
	}
	registry = append(registry, e)
	registryByID[e.ID] = e
}

// Experiments returns all registered experiments in registration order.
func Experiments() []Experiment {
	registryMu.Lock()
	defer registryMu.Unlock()
	return append([]Experiment(nil), registry...)
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	e, ok := registryByID[id]
	return e, ok
}

// pct formats a percentage cell.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// count formats an integer cell.
func count(v int) string { return fmt.Sprintf("%d", v) }
