// Package core is the experiment registry: every table and figure in the
// paper's evaluation is a named, runnable Experiment that drives the
// substrate packages and renders results in the paper's shape. The
// cmd/somesite binary and the benchmark harness are thin wrappers around
// this package.
package core

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/stats"
)

// Config parameterizes experiment runs. The zero value is not usable; use
// DefaultConfig (paper scale) or QuickConfig (CI scale).
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Scale multiplies the longitudinal corpus populations (1.0 = the
	// paper's 40,455 analysis sites).
	Scale float64
	// BlockingSites is the §6.2 survey population (paper: 10,000).
	BlockingSites int
	// CloudflareSites is the §6.3 survey population (paper: 2,018).
	CloudflareSites int
	// Apps is the number of GPT apps exercised in §5.2.2.
	Apps int
	// Workers bounds probe concurrency.
	Workers int
}

// DefaultConfig runs experiments at the paper's full scale.
func DefaultConfig() Config {
	return Config{
		Seed:            stats.DefaultSeed,
		Scale:           1.0,
		BlockingSites:   10_000,
		CloudflareSites: 2_018,
		Apps:            120,
		Workers:         64,
	}
}

// QuickConfig runs everything at reduced scale, suitable for tests.
func QuickConfig() Config {
	return Config{
		Seed:            stats.DefaultSeed,
		Scale:           0.08,
		BlockingSites:   600,
		CloudflareSites: 400,
		Apps:            60,
		Workers:         16,
	}
}

// Table is a rendered result table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// Section is one heading plus its content.
type Section struct {
	Heading string
	Table   *Table
	Series  []stats.Series
	Notes   []string
}

// Result is a completed experiment.
type Result struct {
	ID       string
	Title    string
	Sections []Section
}

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	// ID is the registry key ("figure2", "table1", …).
	ID string
	// Title describes the artifact in the paper's terms.
	Title string
	// Run executes the experiment.
	Run func(cfg Config) (*Result, error)
}

var (
	registryMu sync.Mutex
	registry   []Experiment
)

func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry = append(registry, e)
}

// Experiments returns all registered experiments in registration order.
func Experiments() []Experiment {
	registryMu.Lock()
	defer registryMu.Unlock()
	return append([]Experiment(nil), registry...)
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Render writes a result as aligned text.
func Render(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintf(w, "=== %s — %s ===\n", res.ID, res.Title); err != nil {
		return err
	}
	for _, sec := range res.Sections {
		if sec.Heading != "" {
			fmt.Fprintf(w, "\n%s\n", sec.Heading)
		}
		if sec.Table != nil {
			renderTable(w, sec.Table)
		}
		for _, s := range sec.Series {
			fmt.Fprintf(w, "  %-24s %s  (last %.2f, max %.2f)\n",
				s.Name, s.Sparkline(), s.Last().Value, s.Max())
		}
		for _, note := range sec.Notes {
			fmt.Fprintf(w, "  note: %s\n", note)
		}
	}
	fmt.Fprintln(w)
	return nil
}

func renderTable(w io.Writer, t *Table) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		sb.WriteString("  ")
		for i, cell := range cells {
			pad := widths[i] - len(cell)
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", pad+2))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// pct formats a percentage cell.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// count formats an integer cell.
func count(v int) string { return fmt.Sprintf("%d", v) }
