package core

import (
	"fmt"
	"io"
	"strings"
)

// RenderMarkdown writes a result as GitHub-flavored markdown, so
// experiment output can be pasted into reports like EXPERIMENTS.md.
func RenderMarkdown(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n", res.ID, res.Title); err != nil {
		return err
	}
	for _, sec := range res.Sections {
		if sec.Heading != "" {
			fmt.Fprintf(w, "\n### %s\n", sec.Heading)
		}
		if sec.Table != nil {
			fmt.Fprintln(w)
			writeMarkdownTable(w, sec.Table)
		}
		if len(sec.Series) > 0 {
			fmt.Fprintln(w)
			for _, s := range sec.Series {
				fmt.Fprintf(w, "- `%s` %s (last %.2f, max %.2f)\n",
					s.Name, s.Sparkline(), s.Last().Value, s.Max())
			}
		}
		if len(sec.Notes) > 0 {
			fmt.Fprintln(w)
			for _, n := range sec.Notes {
				fmt.Fprintf(w, "> %s\n", n)
			}
		}
	}
	fmt.Fprintln(w)
	return nil
}

func writeMarkdownTable(w io.Writer, t *Table) {
	esc := func(s string) string {
		return strings.ReplaceAll(s, "|", "\\|")
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		out := make([]string, len(t.Headers))
		for i := range out {
			if i < len(row) {
				out[i] = esc(row[i])
			}
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(out, " | "))
	}
}
