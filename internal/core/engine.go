package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Options configures RunAll.
type Options struct {
	// Parallelism bounds how many experiments run concurrently; values
	// below 1 mean sequential. Output is byte-identical at any setting:
	// experiments only share state through the Env cache, and results are
	// emitted in registration order.
	Parallelism int
	// IDs selects a subset of experiments. Unknown IDs fail the run
	// before anything executes; nil means every registered experiment.
	// Experiments run and emit in registration order regardless of the
	// order IDs are given in.
	IDs []string
	// Sink receives each successful result in registration order as soon
	// as it and all its predecessors have completed. nil discards output.
	// The sink is not closed by RunAll; the caller owns its lifecycle.
	Sink Sink
}

// RunAll executes the selected experiments against one shared Env,
// scheduling them on a bounded worker pool. The returned slice is in
// registration order; entries whose experiment failed are nil, and the
// error joins every per-experiment failure (including cancellations).
func RunAll(ctx context.Context, cfg Config, opts Options) ([]*Result, error) {
	exps, err := selectExperiments(opts.IDs)
	if err != nil {
		return nil, err
	}
	env := NewEnv(cfg)
	workers := opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(exps) {
		workers = len(exps)
	}

	results := make([]*Result, len(exps))
	errs := make([]error, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
				} else {
					results[i], errs[i] = exps[i].Run(ctx, env)
				}
				close(done[i])
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range exps {
			jobs <- i
		}
	}()

	// Emit in registration order as completions arrive; a parallel run
	// produces exactly the sequence a sequential run would.
	sink := opts.Sink
	var failures []error
	for i := range exps {
		<-done[i]
		if errs[i] != nil {
			failures = append(failures, fmt.Errorf("%s: %w", exps[i].ID, errs[i]))
			continue
		}
		if sink == nil {
			continue
		}
		if err := sink.Emit(results[i]); err != nil {
			failures = append(failures, fmt.Errorf("emit %s: %w", exps[i].ID, err))
			sink = nil // the writer is broken; stop emitting
		}
	}
	wg.Wait()
	return results, errors.Join(failures...)
}

// selectExperiments resolves an ID subset against the registry,
// preserving registration order.
func selectExperiments(ids []string) ([]Experiment, error) {
	if len(ids) == 0 {
		return Experiments(), nil
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			return nil, fmt.Errorf("core: unknown experiment %q", id)
		}
		want[id] = true
	}
	var out []Experiment
	for _, e := range Experiments() {
		if want[e.ID] {
			out = append(out, e)
		}
	}
	return out, nil
}
