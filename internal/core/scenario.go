package core

import (
	"context"
	"fmt"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// Scenario experiments: the §8 what-if questions run through the
// discrete-event ecosystem simulator. They register after the paper
// reproductions (this file sorts after experiments.go), so existing
// output order is unchanged.
func init() {
	register(Experiment{"scenario-baseline", "Scenario engine: baseline replay of the observed §5 world", runScenarioBaseline})
	register(Experiment{"scenario-adoption", "Counterfactual: what if robots.txt adoption quadrupled (§8)", runScenarioAdoption})
	register(Experiment{"scenario-rogue", "Counterfactual: a rogue non-compliant crawler joins mid-study (§8)", runScenarioRogue})
	register(Experiment{"scenario-manager", "Counterfactual sweep: managed robots.txt service uptake (§8.1)", runScenarioManager})
}

// scenarioSites scales an ecosystem size with the configured corpus
// scale, keeping enough sites for the sampled cohorts to be populated.
func scenarioSites(cfg Config, base int) int {
	n := int(float64(base)*cfg.Scale + 0.5)
	if n < 24 {
		n = 24
	}
	return n
}

// scenarioMonths is the simulated window of the counterfactual runs:
// two years from October 2022, matching the paper's study window.
const scenarioMonths = 24

// runScenarioBaseline checks the simulator against the seed measurement:
// replaying the observed world (two instrumented sites, the passive
// fleet) must reproduce the §5 verdict classes from simulated logs.
func runScenarioBaseline(ctx context.Context, env *Env) (*Result, error) {
	sim, err := env.Scenario(ctx, scenario.Baseline(env.Config.Seed))
	if err != nil {
		return nil, err
	}
	passive, err := env.PassiveMeasurement(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"product token", "scenario verdict", "measured verdict (§5)", "match"}}
	matches := 0
	for _, tok := range sim.Tokens() {
		got := sim.Verdicts[tok]
		want, observed := passive.Verdicts[tok]
		ok := observed && got == want
		if ok {
			matches++
		}
		mark := "yes"
		if !ok {
			mark = "NO"
		}
		t.Rows = append(t.Rows, []string{tok, got.String(), want.String(), mark})
	}
	return &Result{
		ID:    "scenario-baseline",
		Title: "Scenario engine validation: baseline replay vs the §5 passive measurement",
		Sections: []Section{{
			Table: t,
			Notes: []string{
				fmt.Sprintf("verdict classes agree for %d of %d observed crawlers", matches, len(sim.Tokens())),
				fmt.Sprintf("replay drove %d crawl visits; %d KiB fetched from disallowed paths",
					sim.TotalVisits, sim.TotalDisallowedBytes/1024),
				"both worlds classify from unmodified webserver logs; the engine adds only the virtual clock",
			},
		}},
	}, nil
}

// runScenarioAdoption contrasts the observed adoption curve with a 4×
// counterfactual: robots.txt adoption alone cannot stop non-compliant
// crawlers — the violation volume grows with the number of sites whose
// policies are being ignored.
func runScenarioAdoption(ctx context.Context, env *Env) (*Result, error) {
	sites := scenarioSites(env.Config, 400)
	observed, err := env.Scenario(ctx, scenario.Observed(env.Config.Seed, sites, scenarioMonths))
	if err != nil {
		return nil, err
	}
	high, err := env.Scenario(ctx, scenario.HighAdoption(env.Config.Seed, sites, scenarioMonths, 4))
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"month", "adoption", "adoption 4x", "violation KiB", "violation KiB 4x", "respect", "respect 4x"}}
	for m := range observed.Months {
		o, h := observed.Months[m], high.Months[m]
		t.Rows = append(t.Rows, []string{
			o.Label,
			pct(stats.Percent(o.AdoptedSites, sites)), pct(stats.Percent(h.AdoptedSites, sites)),
			fmt.Sprintf("%d", o.DisallowedBytes/1024), fmt.Sprintf("%d", h.DisallowedBytes/1024),
			pct(100 * o.RespectRate()), pct(100 * h.RespectRate()),
		})
	}
	obsSeries := observed.DisallowedKBSeries()
	obsSeries.Name = "violation KiB (observed)"
	highSeries := high.DisallowedKBSeries()
	highSeries.Name = "violation KiB (4x adoption)"
	return &Result{
		ID:    "scenario-adoption",
		Title: fmt.Sprintf("High-adoption counterfactual over %d sites, %d months", sites, scenarioMonths),
		Sections: []Section{{
			Table:  t,
			Series: []stats.Series{obsSeries, highSeries},
			Notes: []string{
				fmt.Sprintf("total bytes crawled from disallowed paths: %d KiB observed vs %d KiB at 4x adoption",
					observed.TotalDisallowedBytes/1024, high.TotalDisallowedBytes/1024),
				"more adoption means more violations, not fewer: compliant crawlers already skip, and non-compliers ignore the new rules (§8)",
			},
		}},
	}, nil
}

// runScenarioRogue adds an undocumented non-complier mid-run against a
// control world with the same blocking rollout: UA rule lists catch the
// announced fleet but are blind to the newcomer.
func runScenarioRogue(ctx context.Context, env *Env) (*Result, error) {
	sites := scenarioSites(env.Config, 400)
	withRogue := scenario.RogueCrawler(env.Config.Seed, sites, scenarioMonths)
	control := scenario.RogueCrawler(env.Config.Seed, sites, scenarioMonths)
	control.Name = "rogue-control"
	control.Description = "the rogue world without the rogue: same fleet, same blocking rollout"
	control.Crawlers = control.Crawlers[:len(control.Crawlers)-1]

	ctl, err := env.Scenario(ctx, control)
	if err != nil {
		return nil, err
	}
	rogue, err := env.Scenario(ctx, withRogue)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"month", "violation KiB (control)", "violation KiB (rogue)", "blocked reqs (control)", "blocked reqs (rogue)"}}
	for m := range ctl.Months {
		c, r := ctl.Months[m], rogue.Months[m]
		t.Rows = append(t.Rows, []string{
			c.Label,
			fmt.Sprintf("%d", c.DisallowedBytes/1024), fmt.Sprintf("%d", r.DisallowedBytes/1024),
			count(c.BlockedRequests), count(r.BlockedRequests),
		})
	}
	ctlSeries := ctl.DisallowedKBSeries()
	ctlSeries.Name = "violation KiB (control)"
	rogueSeries := rogue.DisallowedKBSeries()
	rogueSeries.Name = "violation KiB (rogue)"
	rogueVerdict := rogue.Verdicts["Scrapezilla"]
	return &Result{
		ID:    "scenario-rogue",
		Title: fmt.Sprintf("Rogue-crawler counterfactual: Scrapezilla joins at month %d", scenarioMonths/2),
		Sections: []Section{{
			Table:  t,
			Series: []stats.Series{ctlSeries, rogueSeries},
			Notes: []string{
				fmt.Sprintf("rogue verdict from simulated logs: %s", rogueVerdict),
				fmt.Sprintf("extra blocked requests attributable to the rogue: %d (UA rule lists never name it)",
					rogue.TotalBlockedRequests-ctl.TotalBlockedRequests),
				fmt.Sprintf("violation volume rises from %d to %d KiB once the rogue arrives",
					ctl.TotalDisallowedBytes/1024, rogue.TotalDisallowedBytes/1024),
			},
		}},
	}, nil
}

// scenarioUptakeLevels is the managed-service sweep grid.
var scenarioUptakeLevels = []float64{0, 0.25, 0.5, 0.75, 1}

// runScenarioManager sweeps managed robots.txt uptake and reports the
// coverage gap hand-maintained lists accumulate (§8.1): the maintenance
// burden the managed services exist to absorb.
func runScenarioManager(ctx context.Context, env *Env) (*Result, error) {
	sites := scenarioSites(env.Config, 240)
	t := &Table{Headers: []string{"managed uptake", "adopters", "managed", "final coverage gap", "mean gap over run"}}
	var gapSeries []stats.Series
	for _, uptake := range scenarioUptakeLevels {
		res, err := env.Scenario(ctx, scenario.ManagedUptake(env.Config.Seed, sites, scenarioMonths, uptake))
		if err != nil {
			return nil, err
		}
		last := res.Months[len(res.Months)-1]
		var gaps []float64
		for _, m := range res.Months {
			if m.GapSites > 0 {
				gaps = append(gaps, 100*m.StaticGap())
			}
		}
		t.Rows = append(t.Rows, []string{
			pct(100 * uptake), count(last.AdoptedSites), count(last.ManagedSites),
			pct(100 * last.StaticGap()), pct(stats.Mean(gaps)),
		})
		if uptake == 0 || uptake == 1 {
			s := res.GapSeries()
			s.Name = fmt.Sprintf("gap %% at %.0f%% uptake", 100*uptake)
			gapSeries = append(gapSeries, s)
		}
	}
	return &Result{
		ID:    "scenario-manager",
		Title: fmt.Sprintf("Managed robots.txt uptake sweep over %d sites", sites),
		Sections: []Section{{
			Table:  t,
			Series: gapSeries,
			Notes: []string{
				"hand-written per-agent lists silently lose coverage as new agents are announced; managed lists track the registry (§8.1)",
				"compare experiment maintenance-gap: the same effect measured on one frozen list instead of an ecosystem",
			},
		}},
	}, nil
}
