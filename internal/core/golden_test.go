package core

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden experiment outputs")

// TestGoldenOutputs locks down the rendered output of every experiment at
// a fixed quick-scale configuration. Any change to calibration, rendering
// or analysis shows up as a readable diff; regenerate intentionally with:
//
//	go test ./internal/core -run TestGoldenOutputs -update
func TestGoldenOutputs(t *testing.T) {
	cfg := QuickConfig()
	cfg.Seed = 424242
	env := NewEnv(cfg)
	ctx := context.Background()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(ctx, env)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := RenderMarkdown(&buf, res); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", e.ID+".golden.md")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output changed; run with -update if intentional.\n--- got ---\n%s\n--- want ---\n%s",
					firstDiffWindow(buf.Bytes(), want), firstDiffWindow(want, buf.Bytes()))
			}
		})
	}
}

// firstDiffWindow returns a readable window around the first divergence.
func firstDiffWindow(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	start := i - 120
	if start < 0 {
		start = 0
	}
	end := i + 240
	if end > len(a) {
		end = len(a)
	}
	return string(a[start:end])
}
