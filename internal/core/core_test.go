package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"figure2", "figure3", "figure4", "table1", "table2", "table3",
		"table4", "survey-demographics", "survey-headline", "survey-codebook",
		"noai-meta", "active-assistants", "active-blocking",
		"cloudflare-greybox", "figure7", "robots-lint",
		"ablation-parsers", "ablation-detector", "maintenance-gap",
		"scenario-baseline", "scenario-adoption", "scenario-rogue",
		"scenario-manager", "policy-service-throughput",
	}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if exps[i].Title == "" || exps[i].Run == nil {
			t.Errorf("%s: incomplete registration", id)
		}
	}
	if _, ok := ByID("figure2"); !ok {
		t.Error("ByID must find figure2")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("ByID must reject unknown ids")
	}
}

func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	cfg := QuickConfig()
	cfg.Seed = 31
	env := NewEnv(cfg)
	ctx := context.Background()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(ctx, env)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Errorf("result ID %q != experiment ID %q", res.ID, e.ID)
			}
			if len(res.Sections) == 0 {
				t.Errorf("%s: empty result", e.ID)
			}
			var buf bytes.Buffer
			if err := Render(&buf, res); err != nil {
				t.Fatalf("render: %v", err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("rendered output missing experiment id:\n%s", out)
			}
			if len(out) < 80 {
				t.Errorf("%s: suspiciously short output:\n%s", e.ID, out)
			}
		})
	}
}

func TestRenderTableAlignment(t *testing.T) {
	res := &Result{
		ID:    "demo",
		Title: "demo",
		Sections: []Section{{
			Heading: "section",
			Table: &Table{
				Headers: []string{"col", "value"},
				Rows:    [][]string{{"short", "1"}, {"much-longer-cell", "22"}},
			},
			Notes: []string{"a note"},
		}},
	}
	var buf bytes.Buffer
	if err := Render(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"col", "much-longer-cell", "note: a note", "section"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Header separator present.
	if !strings.Contains(out, "---") {
		t.Error("missing header separator")
	}
}

func TestCacheReuse(t *testing.T) {
	ctx := context.Background()
	cfg := QuickConfig()
	cfg.Seed = 32
	cfg.Scale = 0.03
	env := NewEnv(cfg)
	r1, err := env.Longitudinal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := env.Longitudinal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("identical configs must hit the cache")
	}
	cfg2 := cfg
	cfg2.Seed = 33
	r3, err := NewEnv(cfg2).Longitudinal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("separate environments must not share cache entries")
	}
}

func TestDefaultAndQuickConfigs(t *testing.T) {
	d := DefaultConfig()
	if d.Scale != 1.0 || d.BlockingSites != 10_000 || d.CloudflareSites != 2_018 {
		t.Fatalf("default config = %+v", d)
	}
	q := QuickConfig()
	if q.Scale >= d.Scale || q.BlockingSites >= d.BlockingSites {
		t.Fatal("quick config must be smaller than default")
	}
}

func TestRenderMarkdown(t *testing.T) {
	res := &Result{
		ID: "demo", Title: "demo title",
		Sections: []Section{{
			Heading: "sec",
			Table: &Table{
				Headers: []string{"a", "b|pipe"},
				Rows:    [][]string{{"1", "x|y"}, {"2"}},
			},
			Notes: []string{"a note"},
		}},
	}
	var buf bytes.Buffer
	if err := RenderMarkdown(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## demo — demo title", "### sec", "| a | b\\|pipe |",
		"| --- | --- |", "| 1 | x\\|y |", "| 2 |  |", "> a note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderRaggedRow(t *testing.T) {
	res := &Result{
		ID: "demo", Title: "demo",
		Sections: []Section{{Table: &Table{
			Headers: []string{"a", "b"},
			Rows:    [][]string{{"1", "2", "EXTRA"}, {"3"}},
		}}},
	}
	var buf bytes.Buffer
	if err := Render(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "EXTRA") {
		t.Errorf("cells beyond the header count must be dropped:\n%s", out)
	}
	if !strings.Contains(out, "1") || !strings.Contains(out, "3") {
		t.Errorf("in-bounds cells missing:\n%s", out)
	}
}
