package core

import (
	"sync"

	"repro/internal/corpus"
	"repro/internal/longitudinal"
)

// longitudinalCache memoizes the corpus build + analysis, which several
// experiments (Figures 2–4, Tables 3–4, the lint rate) share. Keyed by
// (seed, scale).
type longitudinalCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*longitudinal.Result
}

type cacheKey struct {
	seed  int64
	scale float64
}

var longCache = &longitudinalCache{entries: make(map[cacheKey]*longitudinal.Result)}

// analyzed returns the longitudinal analysis for cfg, computing it once.
func analyzed(cfg Config) (*longitudinal.Result, error) {
	key := cacheKey{cfg.Seed, cfg.Scale}
	longCache.mu.Lock()
	defer longCache.mu.Unlock()
	if res, ok := longCache.entries[key]; ok {
		return res, nil
	}
	c, err := corpus.New(corpus.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, err
	}
	res, err := longitudinal.Analyze(c)
	if err != nil {
		return nil, err
	}
	longCache.entries[key] = res
	return res, nil
}
