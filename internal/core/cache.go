package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/longitudinal"
	"repro/internal/measure"
	"repro/internal/policyd"
	"repro/internal/proxy"
	"repro/internal/scenario"
	"repro/internal/survey"
)

// Cache is a keyed, concurrency-safe memoization cache. Concurrent
// callers of the same key block until the first caller's computation
// finishes and then share its value (singleflight semantics), so a
// substrate shared by several parallel experiments is built exactly once.
// Failed computations are evicted rather than cached, so a later caller
// retries instead of inheriting a stale error (for example a context
// cancellation from an earlier run).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Do returns the value cached under key, computing it with fn on the
// first call. fn runs outside the cache lock.
func (c *Cache) Do(key string, fn func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	e.val, e.err = fn()
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Env is the execution environment one engine run hands to every
// experiment: the configuration plus the shared substrate cache. All
// experiments scheduled by the same RunAll call share one Env, so
// expensive substrates — the corpus, the longitudinal analysis, the
// blocking survey, the survey population — are built once regardless of
// how many experiments consume them or on how many goroutines they run.
type Env struct {
	Config Config
	cache  *Cache
}

// NewEnv returns a fresh environment with an empty cache.
func NewEnv(cfg Config) *Env {
	return &Env{Config: cfg, cache: NewCache()}
}

// memo is the typed access path to the Env cache.
func memo[T any](e *Env, key string, fn func() (T, error)) (T, error) {
	v, err := e.cache.Do(key, func() (any, error) { return fn() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// Corpus returns the shared corpus at the configured scale.
func (e *Env) Corpus(ctx context.Context) (*corpus.Corpus, error) {
	return e.CorpusAt(ctx, e.Config.Scale)
}

// CorpusAt returns the shared corpus at an explicit scale (the parser
// ablation caps its corpus below the configured scale).
func (e *Env) CorpusAt(ctx context.Context, scale float64) (*corpus.Corpus, error) {
	key := fmt.Sprintf("corpus/%d/%g", e.Config.Seed, scale)
	return memo(e, key, func() (*corpus.Corpus, error) {
		return corpus.New(ctx, corpus.Config{
			Seed:    e.Config.Seed,
			Scale:   scale,
			Workers: e.Config.Workers,
		})
	})
}

// Longitudinal returns the §3 analysis over the shared corpus, computed
// once per (seed, scale).
func (e *Env) Longitudinal(ctx context.Context) (*longitudinal.Result, error) {
	key := fmt.Sprintf("longitudinal/%d/%g", e.Config.Seed, e.Config.Scale)
	return memo(e, key, func() (*longitudinal.Result, error) {
		c, err := e.Corpus(ctx)
		if err != nil {
			return nil, err
		}
		return longitudinal.Analyze(ctx, c, e.Config.Workers)
	})
}

// SurveyPopulation returns the shared §4 artist survey population.
func (e *Env) SurveyPopulation() *survey.Population {
	pop, _ := memo(e, fmt.Sprintf("survey/%d", e.Config.Seed), func() (*survey.Population, error) {
		return survey.Generate(e.Config.Seed), nil
	})
	return pop
}

// BlockingSurvey returns the §6.2 survey result for the given detector,
// computed once per detector configuration. The active-blocking
// experiment and the detector ablation share the full-detector run.
func (e *Env) BlockingSurvey(ctx context.Context, opts blocking.DetectorOptions) (*blocking.SurveyResult, error) {
	key := fmt.Sprintf("blocking/%d/%d/%+v", e.Config.Seed, e.Config.BlockingSites, opts)
	return memo(e, key, func() (*blocking.SurveyResult, error) {
		return blocking.RunSurvey(ctx, e.Config.BlockingSites, e.Config.Seed, e.Config.EffectiveWorkers(), opts)
	})
}

// InferenceSurvey returns the shared §6.3 Cloudflare inference survey.
func (e *Env) InferenceSurvey(ctx context.Context) (*proxy.CFSurveyResult, error) {
	key := fmt.Sprintf("cf-inference/%d/%d", e.Config.Seed, e.Config.CloudflareSites)
	return memo(e, key, func() (*proxy.CFSurveyResult, error) {
		return proxy.RunInferenceSurvey(ctx, e.Config.CloudflareSites, e.Config.Seed, e.Config.EffectiveWorkers())
	})
}

// Scenario returns the result of one counterfactual simulation, memoized
// by the spec's full identity: re-running or re-rendering an experiment
// within one engine run never repeats a simulation. Each scenario
// experiment currently declares distinct worlds, so distinct experiments
// do not share runs.
func (e *Env) Scenario(ctx context.Context, spec scenario.Spec) (*scenario.Result, error) {
	key := "scenario/" + spec.CacheKey()
	return memo(e, key, func() (*scenario.Result, error) {
		return scenario.Run(ctx, spec, e.Config.EffectiveWorkers())
	})
}

// PolicySnapshot returns the compiled policyd serving index for one
// corpus snapshot, built over the shared corpus and memoized per
// (seed, scale, snapshot) — hot-reload experiments that swap between
// months compile each month once per engine run.
func (e *Env) PolicySnapshot(ctx context.Context, snap int) (*policyd.Snapshot, error) {
	key := fmt.Sprintf("policyd/%d/%g/%d", e.Config.Seed, e.Config.Scale, snap)
	return memo(e, key, func() (*policyd.Snapshot, error) {
		c, err := e.Corpus(ctx)
		if err != nil {
			return nil, err
		}
		return policyd.FromCorpus(ctx, c, snap, e.Config.Workers)
	})
}

// PassiveMeasurement returns the shared §5 passive study result.
func (e *Env) PassiveMeasurement(ctx context.Context) (*measure.PassiveResult, error) {
	return memo(e, fmt.Sprintf("passive/%d", e.Config.Seed), func() (*measure.PassiveResult, error) {
		return measure.RunPassive(ctx, e.Config.Seed)
	})
}

// ActiveMeasurement returns the shared §5.2.2 active study result.
func (e *Env) ActiveMeasurement(ctx context.Context) (*measure.ActiveResult, error) {
	return memo(e, fmt.Sprintf("active/%d/%d", e.Config.Seed, e.Config.Apps), func() (*measure.ActiveResult, error) {
		return measure.RunActive(ctx, e.Config.Seed, e.Config.Apps)
	})
}
