package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Sink consumes completed experiment results. RunAll emits results to
// its sink in deterministic registration order, so any Sink
// implementation observes the same sequence whether the run was
// sequential or parallel. Emit is never called concurrently.
type Sink interface {
	// Emit renders one result.
	Emit(res *Result) error
	// Close flushes any buffered output once the run completes.
	Close() error
}

// Formats lists the sink formats NewSink accepts.
var Formats = []string{"text", "markdown", "json"}

// NewSink returns the sink for a format name: "text" (aligned tables with
// sparklines), "markdown" (GitHub-flavored), or "json" (one JSON object
// per result, newline-delimited).
func NewSink(format string, w io.Writer) (Sink, error) {
	switch format {
	case "text":
		return NewTextSink(w), nil
	case "markdown", "md":
		return NewMarkdownSink(w), nil
	case "json":
		return NewJSONSink(w), nil
	default:
		return nil, fmt.Errorf("core: unknown sink format %q (want %s)",
			format, strings.Join(Formats, ", "))
	}
}

// NewTextSink renders results as aligned terminal text.
func NewTextSink(w io.Writer) Sink { return textSink{w} }

type textSink struct{ w io.Writer }

func (s textSink) Emit(res *Result) error { return Render(s.w, res) }
func (s textSink) Close() error           { return nil }

// NewMarkdownSink renders results as GitHub-flavored markdown.
func NewMarkdownSink(w io.Writer) Sink { return markdownSink{w} }

type markdownSink struct{ w io.Writer }

func (s markdownSink) Emit(res *Result) error { return RenderMarkdown(s.w, res) }
func (s markdownSink) Close() error           { return nil }

// NewJSONSink emits each result as one JSON object per line (NDJSON), so
// output can be streamed into jq or loaded row by row.
func NewJSONSink(w io.Writer) Sink {
	return jsonSink{json.NewEncoder(w)}
}

type jsonSink struct{ enc *json.Encoder }

func (s jsonSink) Emit(res *Result) error { return s.enc.Encode(res) }
func (s jsonSink) Close() error           { return nil }

// Render writes a result as aligned text.
func Render(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintf(w, "=== %s — %s ===\n", res.ID, res.Title); err != nil {
		return err
	}
	for _, sec := range res.Sections {
		if sec.Heading != "" {
			fmt.Fprintf(w, "\n%s\n", sec.Heading)
		}
		if sec.Table != nil {
			renderTable(w, sec.Table)
		}
		for _, s := range sec.Series {
			fmt.Fprintf(w, "  %-24s %s  (last %.2f, max %.2f)\n",
				s.Name, s.Sparkline(), s.Last().Value, s.Max())
		}
		for _, note := range sec.Notes {
			fmt.Fprintf(w, "  note: %s\n", note)
		}
	}
	fmt.Fprintln(w)
	return nil
}

func renderTable(w io.Writer, t *Table) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		sb.WriteString("  ")
		for i, cell := range cells {
			if i >= len(widths) {
				break // ragged row: drop cells beyond the header count
			}
			pad := widths[i] - len(cell)
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", pad+2))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// RenderMarkdown writes a result as GitHub-flavored markdown, so
// experiment output can be pasted into reports like EXPERIMENTS.md.
func RenderMarkdown(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n", res.ID, res.Title); err != nil {
		return err
	}
	for _, sec := range res.Sections {
		if sec.Heading != "" {
			fmt.Fprintf(w, "\n### %s\n", sec.Heading)
		}
		if sec.Table != nil {
			fmt.Fprintln(w)
			writeMarkdownTable(w, sec.Table)
		}
		if len(sec.Series) > 0 {
			fmt.Fprintln(w)
			for _, s := range sec.Series {
				fmt.Fprintf(w, "- `%s` %s (last %.2f, max %.2f)\n",
					s.Name, s.Sparkline(), s.Last().Value, s.Max())
			}
		}
		if len(sec.Notes) > 0 {
			fmt.Fprintln(w)
			for _, n := range sec.Notes {
				fmt.Fprintf(w, "> %s\n", n)
			}
		}
	}
	fmt.Fprintln(w)
	return nil
}

func writeMarkdownTable(w io.Writer, t *Table) {
	esc := func(s string) string {
		return strings.ReplaceAll(s, "|", "\\|")
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		out := make([]string, len(t.Headers))
		for i := range out {
			if i < len(row) {
				out[i] = esc(row[i])
			}
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(out, " | "))
	}
}
