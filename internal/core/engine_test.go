package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// tinyConfig keeps the full registry runnable several times per test.
func tinyConfig() Config {
	return Config{
		Seed:            31,
		Scale:           0.02,
		BlockingSites:   150,
		CloudflareSites: 120,
		Apps:            30,
		Workers:         8,
	}
}

// TestRunAllParallelMatchesSequential is the engine's headline
// guarantee: a parallel run emits byte-identical output to a sequential
// run, for every registered experiment.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	cfg := tinyConfig()

	var seq bytes.Buffer
	if _, err := RunAll(ctx, cfg, Options{Parallelism: 1, Sink: NewMarkdownSink(&seq)}); err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{4, 16} {
		var par bytes.Buffer
		if _, err := RunAll(ctx, cfg, Options{Parallelism: parallelism, Sink: NewMarkdownSink(&par)}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Fatalf("parallelism %d output diverges from sequential (%d vs %d bytes)",
				parallelism, par.Len(), seq.Len())
		}
	}
	if seq.Len() == 0 {
		t.Fatal("sequential run produced no output")
	}
}

func TestRunAllResultsInRegistrationOrder(t *testing.T) {
	ctx := context.Background()
	// IDs deliberately out of registration order; a fast subset.
	results, err := RunAll(ctx, tinyConfig(), Options{
		Parallelism: 4,
		IDs:         []string{"survey-headline", "table2", "noai-meta", "survey-demographics"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"table2", "survey-demographics", "survey-headline", "noai-meta"}
	if len(results) != len(want) {
		t.Fatalf("results = %d, want %d", len(results), len(want))
	}
	for i, id := range want {
		if results[i].ID != id {
			t.Errorf("result %d = %s, want %s", i, results[i].ID, id)
		}
	}
}

func TestRunAllUnknownID(t *testing.T) {
	if _, err := RunAll(context.Background(), tinyConfig(), Options{IDs: []string{"nonsense"}}); err == nil {
		t.Fatal("unknown id must fail the run before executing")
	}
}

// cancelAfterSink cancels the run's context once n results have been
// emitted.
type cancelAfterSink struct {
	cancel  context.CancelFunc
	after   int
	emitted int
}

func (s *cancelAfterSink) Emit(*Result) error {
	s.emitted++
	if s.emitted == s.after {
		s.cancel()
	}
	return nil
}
func (s *cancelAfterSink) Close() error { return nil }

func TestRunAllHonorsCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Run the full registry: the heavyweight experiments (blocking
	// survey, grey-box replay, ablations) cannot possibly finish in the
	// instant between the second emission and the cancellation, so some
	// result slots are guaranteed to be cancelled.
	sink := &cancelAfterSink{cancel: cancel, after: 2}
	results, err := RunAll(ctx, tinyConfig(), Options{
		Parallelism: 2,
		Sink:        sink,
	})
	if err == nil {
		t.Fatal("cancelled run must report an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	var completed int
	for _, r := range results {
		if r != nil {
			completed++
		}
	}
	if completed == len(results) {
		t.Error("every experiment completed despite mid-run cancellation")
	}
}

func TestRunAllPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var emitted atomic.Int64
	results, err := RunAll(ctx, tinyConfig(), Options{Parallelism: 4, Sink: sinkFunc(func(*Result) error {
		emitted.Add(1)
		return nil
	})})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("result %d ran on a pre-cancelled context", i)
		}
	}
	if n := emitted.Load(); n != 0 {
		t.Errorf("%d results emitted on a pre-cancelled context", n)
	}
}

type sinkFunc func(*Result) error

func (f sinkFunc) Emit(r *Result) error { return f(r) }
func (sinkFunc) Close() error           { return nil }

func TestRunAllSinkError(t *testing.T) {
	broken := errors.New("disk full")
	calls := 0
	_, err := RunAll(context.Background(), tinyConfig(), Options{
		IDs: []string{"table2", "survey-headline", "noai-meta"},
		Sink: sinkFunc(func(*Result) error {
			calls++
			return broken
		}),
	})
	if !errors.Is(err, broken) {
		t.Fatalf("err = %v, want the sink failure", err)
	}
	if calls != 1 {
		t.Errorf("sink called %d times after failing, want 1", calls)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	var computed atomic.Int64
	var wg sync.WaitGroup
	const callers = 16
	vals := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do("key", func() (any, error) {
				computed.Add(1)
				return "value", nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	for _, v := range vals {
		if v != "value" {
			t.Fatalf("caller saw %v", v)
		}
	}
}

func TestCacheErrorEviction(t *testing.T) {
	c := NewCache()
	boom := errors.New("boom")
	if _, err := c.Do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.Do("k", func() (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("failed computation was cached: v=%v err=%v", v, err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", c.Len())
	}
}

func TestJSONSink(t *testing.T) {
	var buf bytes.Buffer
	sink, err := NewSink("json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{ID: "demo", Title: "t", Sections: []Section{{
		Table: &Table{Headers: []string{"a"}, Rows: [][]string{{"1"}}},
	}}}
	if err := sink.Emit(res); err != nil {
		t.Fatal(err)
	}
	if err := sink.Emit(res); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("json sink wrote %d lines, want 2 (NDJSON)", len(lines))
	}
	for _, line := range lines {
		var got Result
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("invalid JSON line: %v\n%s", err, line)
		}
		if got.ID != "demo" || got.Sections[0].Table.Rows[0][0] != "1" {
			t.Fatalf("round-trip mismatch: %+v", got)
		}
	}
}

func TestNewSinkUnknownFormat(t *testing.T) {
	if _, err := NewSink("yaml", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format must error")
	}
	for _, f := range Formats {
		if _, err := NewSink(f, &bytes.Buffer{}); err != nil {
			t.Errorf("format %s: %v", f, err)
		}
	}
}

// TestEnvSharedSubstrates verifies cross-experiment sharing: two
// experiments that consume the same substrate through one Env trigger a
// single build.
func TestEnvSharedSubstrates(t *testing.T) {
	ctx := context.Background()
	env := NewEnv(tinyConfig())
	c1, err := env.Corpus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := env.CorpusAt(ctx, env.Config.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("Corpus and CorpusAt(default scale) must share one cache entry")
	}
	if p1, p2 := env.SurveyPopulation(), env.SurveyPopulation(); p1 != p2 {
		t.Fatal("survey population must be shared")
	}
}

func ExampleRunAll() {
	cfg := Config{Seed: 1, Scale: 0.01, BlockingSites: 60, CloudflareSites: 50, Apps: 10, Workers: 4}
	results, err := RunAll(context.Background(), cfg, Options{
		Parallelism: 4,
		IDs:         []string{"table3"},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(results[0].ID)
	// Output: table3
}
