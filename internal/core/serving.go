package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/corpus"
	"repro/internal/netsim"
	"repro/internal/policyd"
	"repro/internal/stats"
)

// The serving experiment registers after the scenario experiments (this
// file sorts after scenario.go), so existing output order is unchanged.
func init() {
	register(Experiment{"policy-service-throughput", "policyd: the corpus served as an online decision API with hot reload", runPolicyService})
}

// policyWorkloadBatches / policyWorkloadBatchSize size the deterministic
// replay the experiment drives through the HTTP API. Timing claims live
// in cmd/loadgen and the benchmarks; this experiment pins the serving
// semantics (decision mix, hot reload, parity) in a golden-able form.
const (
	policyWorkloadBatches   = 64
	policyWorkloadBatchSize = 32
)

// runPolicyService compiles the shared corpus into two policyd
// snapshots — the GPTBot-announcement month and the final month —
// serves the first over netsim HTTP, replays a fixed zipf-ish workload,
// hot-swaps to the second under the same service, and replays the same
// workload again. The decision-mix shift between the two replays is the
// corpus's §3 adoption story read through the serving layer.
func runPolicyService(ctx context.Context, env *Env) (*Result, error) {
	early, err := env.PolicySnapshot(ctx, corpus.GPTBotAnnouncedIndex)
	if err != nil {
		return nil, err
	}
	late, err := env.PolicySnapshot(ctx, len(corpus.Snapshots)-1)
	if err != nil {
		return nil, err
	}
	c, err := env.Corpus(ctx)
	if err != nil {
		return nil, err
	}

	svc := policyd.NewService(early)
	nw := netsim.New()
	ln, err := nw.Listen("203.0.113.90", 80)
	if err != nil {
		return nil, err
	}
	nw.Register("policyd.test", "203.0.113.90")
	srv := &http.Server{Handler: policyd.NewHandler(svc)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-done
	}()
	client := nw.HTTPClient("198.51.100.90")

	// A fixed workload drawn from the corpus domains: top-tier sites
	// (which Sites() lists first) are queried more, agents rotate
	// through a crawler mix. Derived from the run's seed, so the replay
	// is deterministic and the golden locks it down.
	agentsMix := []string{"GPTBot", "ClaudeBot", "CCBot", "Bytespider", "Googlebot"}
	paths := []string{"/", "/about.html", "/images/art.png", "/gallery/piece.jpg", "/admin/panel"}
	sites := c.Sites()
	rn := stats.NewRand(env.Config.Seed).Fork("policy-service")
	batches := make([][]policyd.Query, policyWorkloadBatches)
	for i := range batches {
		qs := make([]policyd.Query, policyWorkloadBatchSize)
		for j := range qs {
			// Square the uniform draw to skew toward popular (top-tier)
			// domains, a cheap stand-in for the loadgen zipf.
			u := rn.Float64()
			host := sites[int(u*u*float64(len(sites)))%len(sites)].Domain
			qs[j] = policyd.Query{
				Host:  host,
				Agent: agentsMix[rn.Intn(len(agentsMix))],
				Path:  paths[rn.Intn(len(paths))],
			}
		}
		batches[i] = qs
	}

	replay := func() (map[string]int, error) {
		mix := make(map[string]int)
		for _, qs := range batches {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			body, err := json.Marshal(policyd.BatchRequest{Queries: qs})
			if err != nil {
				return nil, err
			}
			resp, err := client.Post("http://policyd.test/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			var br policyd.BatchResponse
			err = json.NewDecoder(resp.Body).Decode(&br)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if len(br.Decisions) != len(qs) {
				return nil, fmt.Errorf("policy-service: batch returned %d of %d decisions", len(br.Decisions), len(qs))
			}
			for _, d := range br.Decisions {
				mix[d.Action]++
				mix["signal:"+d.Signal]++
			}
		}
		return mix, nil
	}

	earlyMix, err := replay()
	if err != nil {
		return nil, err
	}
	// Hot reload: atomically swap the serving snapshot mid-flight, the
	// way a production rule push lands, and replay the same workload.
	svc.Swap(late)
	lateMix, err := replay()
	if err != nil {
		return nil, err
	}

	total := policyWorkloadBatches * policyWorkloadBatchSize
	row := func(key string) []string {
		return []string{key, count(earlyMix[key]), count(lateMix[key])}
	}
	mixTable := &Table{
		Headers: []string{"decision", corpus.Snapshots[corpus.GPTBotAnnouncedIndex].ID, corpus.Snapshots[len(corpus.Snapshots)-1].ID},
		Rows: [][]string{
			row("allow"), row("deny"), row("block"),
		},
	}
	signalTable := &Table{
		Headers: []string{"winning signal", corpus.Snapshots[corpus.GPTBotAnnouncedIndex].ID, corpus.Snapshots[len(corpus.Snapshots)-1].ID},
	}
	for _, sig := range []string{"none", "blocker", "robots-agent", "robots-wildcard", "ai-txt", "meta"} {
		signalTable.Rows = append(signalTable.Rows, row("signal:"+sig))
	}

	st := svc.Stats()
	return &Result{
		ID:    "policy-service-throughput",
		Title: "Crawl-policy decision service over the longitudinal corpus",
		Sections: []Section{
			{
				Heading: fmt.Sprintf("Decision mix for a fixed %d-query workload (%d-query batches over netsim HTTP)", total, policyWorkloadBatchSize),
				Table:   mixTable,
				Notes: []string{
					fmt.Sprintf("served %d hosts across %d shards; %d decisions answered, snapshot hot-swapped once mid-run", st.Hosts, st.Shards, st.Queries),
					"denials grow between the two snapshots because robots.txt adoption surges after the GPTBot announcement (§3.2)",
				},
			},
			{
				Heading: "Winning signal (precedence: blocker > robots explicit > robots wildcard > ai.txt > meta)",
				Table:   signalTable,
				Notes: []string{
					"decision parity with direct robots.Match/measure classification is pinned by internal/policyd's corpus parity test",
					"throughput and latency percentiles come from cmd/loadgen, which emits benchsnap-format serving snapshots",
				},
			},
		},
	}, nil
}
