package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/agents"
	"repro/internal/blocking"
	"repro/internal/corpus"
	"repro/internal/hosting"
	"repro/internal/manager"
	"repro/internal/measure"
	"repro/internal/metatags"
	"repro/internal/proxy"
	"repro/internal/robots"
	"repro/internal/stats"
	"repro/internal/survey"
)

func init() {
	register(Experiment{"figure2", "Percent of sites fully disallowing ≥1 AI crawler (Stable Top 5k vs others)", runFigure2})
	register(Experiment{"figure3", "Percent of Stable Top 100k sites restricting each AI user agent", runFigure3})
	register(Experiment{"figure4", "Sites explicitly allowing AI crawlers and removing restrictions", runFigure4})
	register(Experiment{"table1", "AI user agents and robots.txt respect in practice (§5)", runTable1})
	register(Experiment{"table2", "Artist hosting providers and robots.txt control (§4.4)", runTable2})
	register(Experiment{"table3", "Corpus snapshots and robots.txt coverage", runTable3})
	register(Experiment{"table4", "Domains explicitly allowing GPTBot with first-seen snapshot", runTable4})
	register(Experiment{"survey-demographics", "Artist survey demographics (Tables 5–8)", runSurveyDemographics})
	register(Experiment{"survey-headline", "Artist survey headline findings (§4.2–4.3)", runSurveyHeadline})
	register(Experiment{"survey-codebook", "Open-answer codebook theme frequencies (Tables 9–12)", runSurveyCodebook})
	register(Experiment{"noai-meta", "NoAI meta tag adoption in the top 10k (§2.2)", runNoAIMeta})
	register(Experiment{"active-assistants", "AI assistant crawlers and robots.txt (§5.2.2)", runActiveAssistants})
	register(Experiment{"active-blocking", "Active blocking adoption in the top 10k (§6.2)", runActiveBlocking})
	register(Experiment{"cloudflare-greybox", "Grey-box inference of Block AI Bots rules (§6.3, App. C.3)", runGreyBox})
	register(Experiment{"figure7", "Inferring the Block AI Bots setting across Cloudflare sites", runFigure7})
	register(Experiment{"robots-lint", "robots.txt authoring mistakes (§8.1)", runRobotsLint})
	register(Experiment{"ablation-parsers", "Ablation: measurement error under non-compliant robots.txt parsers", runAblationParsers})
	register(Experiment{"ablation-detector", "Ablation: §6.1 detector features (status-only vs full)", runAblationDetector})
	register(Experiment{"maintenance-gap", "Extension: coverage lost by hand-maintained AI blocklists (§8.1)", runMaintenanceGap})
}

func seriesTable(headers []string, series ...stats.Series) *Table {
	t := &Table{Headers: headers}
	if len(series) == 0 || len(series[0].Points) == 0 {
		return t
	}
	for i := range series[0].Points {
		row := []string{series[0].Points[i].Label}
		for _, s := range series {
			row = append(row, pct(s.Points[i].Value))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func runFigure2(ctx context.Context, env *Env) (*Result, error) {
	res, err := env.Longitudinal(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:    "figure2",
		Title: "Percent of sites that fully disallow at least one AI crawler user agent",
		Sections: []Section{
			{
				Heading: fmt.Sprintf("Populations: Stable Top 5k = %d sites, others = %d sites",
					res.Top5kCount, res.OtherCount),
				Table:  seriesTable([]string{"snapshot", "stable top 5k", "other sites"}, res.Fig2Top5k, res.Fig2Other),
				Series: []stats.Series{res.Fig2Top5k, res.Fig2Other},
				Notes: []string{
					"paper: surge after the Aug 2023 GPTBot announcement; 12–14% vs 8–10% by late 2024",
				},
			},
		},
	}, nil
}

func runFigure3(ctx context.Context, env *Env) (*Result, error) {
	res, err := env.Longitudinal(ctx)
	if err != nil {
		return nil, err
	}
	var series []stats.Series
	for _, ua := range agents.Figure3Agents {
		series = append(series, res.Fig3[ua])
	}
	headers := append([]string{"snapshot"}, agents.Figure3Agents...)
	return &Result{
		ID:    "figure3",
		Title: "Percent of Stable Top 100k sites partially or fully disallowing each AI user agent",
		Sections: []Section{
			{
				Table:  seriesTable(headers, series...),
				Series: series,
				Notes: []string{
					"paper: GPTBot and CCBot are the most restricted; EU AI Act uptick after Aug 2024",
				},
			},
		},
	}, nil
}

func runFigure4(ctx context.Context, env *Env) (*Result, error) {
	res, err := env.Longitudinal(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"snapshot", "explicitly allowed", "removed restrictions"}}
	for i := range res.Fig4Allowed.Points {
		t.Rows = append(t.Rows, []string{
			res.Fig4Allowed.Points[i].Label,
			fmt.Sprintf("%.0f", res.Fig4Allowed.Points[i].Value),
			fmt.Sprintf("%.0f", res.Fig4Removed.Points[i].Value),
		})
	}
	return &Result{
		ID:    "figure4",
		Title: "Explicit allows and restriction removals over time",
		Sections: []Section{
			{
				Table:  t,
				Series: []stats.Series{res.Fig4Allowed, res.Fig4Removed},
				Notes: []string{
					fmt.Sprintf("sites that removed a GPTBot restriction after its announcement: %d (paper: 484 at full scale)", res.GPTBotRemovals),
					"removal spikes align with the Dotdash/Stack Exchange (May 2024), Condé Nast (Aug 2024) and Vox Media (Oct 2024) deals",
				},
			},
		},
	}, nil
}

func runTable1(ctx context.Context, env *Env) (*Result, error) {
	passive, err := env.PassiveMeasurement(ctx)
	if err != nil {
		return nil, err
	}
	rows := measure.Table1Rows(passive)
	t := &Table{Headers: []string{"user agent", "category", "company", "publish IP", "claim respect", "respect in practice", "observed behaviour"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Agent.UserAgent, r.Agent.Category.String(), r.Agent.Company,
			r.Agent.PublishesIPs.String(), r.Agent.ClaimsRespect.String(),
			r.Measured.String(), r.Verdict.String(),
		})
	}
	return &Result{
		ID:    "table1",
		Title: "AI user agents studied and measured robots.txt respect",
		Sections: []Section{
			{
				Table: t,
				Notes: []string{
					fmt.Sprintf("passive study observed %d distinct crawlers", len(passive.Visitors)),
					"paper: 7 visitors respected robots.txt, Bytespider fetched-but-ignored, ChatGPT-User visited once anomalously",
				},
			},
		},
	}, nil
}

func runTable2(ctx context.Context, env *Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pop := hosting.GeneratePopulation(0, env.Config.Seed)
	rows := hosting.Table2(pop)
	sum := hosting.Summarize(pop)
	t := &Table{Headers: []string{"hosting provider", "% sites", "edit?", "% disallow AI"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Provider, pct(r.SharePct), r.Control.String(), pct(r.DisallowAIPct),
		})
	}
	return &Result{
		ID:    "table2",
		Title: "Top artist hosting providers and their robots.txt options",
		Sections: []Section{
			{
				Table: t,
				Notes: []string{
					fmt.Sprintf("AI-toggle adoption: %d of %d eligible sites (%s; paper: 49 of 293 = 17%%)",
						sum.ToggleEnabled, sum.ToggleEligible,
						pct(stats.Percent(sum.ToggleEnabled, sum.ToggleEligible))),
					"paper: only Carbonmade's defaults disallow AI crawlers; paid Wix allows editing but no artist edits",
				},
			},
		},
	}, nil
}

func runTable3(ctx context.Context, env *Env) (*Result, error) {
	res, err := env.Longitudinal(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"snapshot", "months", "# sites", "+ robots.txt"}}
	for _, row := range res.Table3 {
		t.Rows = append(t.Rows, []string{row.Snapshot, row.Label, count(row.Sites), count(row.Robots)})
	}
	return &Result{
		ID:    "table3",
		Title: "Snapshots used in the historic AI crawler analysis",
		Sections: []Section{{
			Table: t,
			Notes: []string{fmt.Sprintf("counts scale with corpus scale %.2f; at 1.0 they match Table 3 exactly", env.Config.Scale)},
		}},
	}, nil
}

func runTable4(ctx context.Context, env *Env) (*Result, error) {
	res, err := env.Longitudinal(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"site", "first-seen snapshot"}}
	for _, row := range res.Table4 {
		t.Rows = append(t.Rows, []string{row.Domain, row.FirstSeen})
	}
	return &Result{
		ID:    "table4",
		Title: "Domains that explicitly and fully allow GPTBot",
		Sections: []Section{{
			Table: t,
			Notes: []string{fmt.Sprintf("%d domains (paper's Table 4 lists 78)", len(res.Table4))},
		}},
	}, nil
}

func runSurveyDemographics(ctx context.Context, env *Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pop := env.SurveyPopulation()

	t5 := &Table{Headers: []string{"duration", "count"}}
	total5 := 0
	for _, b := range []survey.IncomeBucket{survey.LessThan1Year, survey.OneToFiveYears,
		survey.FiveToTenYears, survey.TenPlusYears} {
		k := pop.Table5()[b]
		total5 += k
		t5.Rows = append(t5.Rows, []string{b.String(), count(k)})
	}
	t5.Rows = append(t5.Rows, []string{"Total", count(total5)})

	t6 := &Table{Headers: []string{"continent", "count"}}
	table6 := pop.Table6()
	for _, c := range []string{"North America", "Europe", "Asia", "South America", "Africa", "Oceania"} {
		t6.Rows = append(t6.Rows, []string{c, count(table6[c])})
	}

	t7 := &Table{Headers: []string{"art type", "count"}}
	for i, e := range pop.Table7() {
		if i >= 5 {
			break
		}
		t7.Rows = append(t7.Rows, []string{e.Key, count(e.Count)})
	}

	t8 := &Table{Headers: []string{"term", "average familiarity"}}
	table8 := pop.Table8()
	for _, term := range survey.Terms {
		t8.Rows = append(t8.Rows, []string{string(term), fmt.Sprintf("%.2f", table8[term])})
	}

	return &Result{
		ID:    "survey-demographics",
		Title: "Artist survey demographics",
		Sections: []Section{
			{Heading: "Table 5 — time making money from art", Table: t5},
			{Heading: "Table 6 — continent of residence", Table: t6},
			{Heading: "Table 7 — top five art types (multi-select)", Table: t7},
			{Heading: "Table 8 — term familiarity (1–5; bogus item in italics in the paper)", Table: t8},
		},
	}, nil
}

func runSurveyHeadline(ctx context.Context, env *Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pop := env.SurveyPopulation()
	h := pop.ComputeHeadline()
	t := &Table{Headers: []string{"finding", "measured", "paper"}}
	add := func(name, measured, paper string) {
		t.Rows = append(t.Rows, []string{name, measured, paper})
	}
	add("valid responses", count(h.N), "203")
	add("professional artists", pct(h.ProfessionalPct), "67%")
	add("make money from art", pct(h.MakesMoneyPct), "87%")
	add("never heard of robots.txt", pct(h.NeverHeardRobotsPct), "59%")
	add("understood after explanation", count(h.UnderstoodAfterCount), "113 of 119")
	add("expect ≥moderate job impact", pct(h.ModerateImpactPlusPct), "over 79%")
	add("expect significant/severe impact", pct(h.SignificantPlusPct), "more than 54%")
	add("took protective action", pct(h.TookActionPct), "83%")
	add("Glaze among action-takers", pct(h.GlazeAmongActorsPct), "71%")
	add("very likely to enable blocking", pct(h.VeryLikelyBlockPct), "93%")
	add("want a blocking mechanism", pct(h.WantBlockPct), "over 97%")
	add("distrust AI companies (new to robots.txt)", pct(h.DistrustAmongNewPct), "77%")
	add("aware + personal site", count(h.AwareWithSite), "38")
	add("of those, not using robots.txt", count(h.AwareSiteNotUsing), "27")
	add("of those, no control over robots.txt", count(h.AwareSiteNoControl), "9")
	add("of those, multi-platform limitation", count(h.MultiPlatform), "5")
	return &Result{
		ID:       "survey-headline",
		Title:    "Artist survey headline findings",
		Sections: []Section{{Table: t}},
	}, nil
}

func runSurveyCodebook(ctx context.Context, env *Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pop := env.SurveyPopulation()
	var sections []Section
	titles := map[string]string{
		survey.QOtherActions: "Table 9 — other actions taken against AI art",
		survey.QWhyNotAdopt:  "Table 10 — why artists would not adopt robots.txt",
		survey.QWhyBlock:     "Table 11 — why artists would enable a blocking mechanism",
		survey.QWhyDistrust:  "Table 12 — why artists distrust AI companies",
	}
	for _, q := range survey.Questions() {
		t := &Table{Headers: []string{"theme", "responses", "example"}}
		for _, e := range pop.ThemeCounts(q) {
			quote := survey.ExampleQuote(q, e.Key)
			if len(quote) > 60 {
				quote = quote[:57] + "..."
			}
			t.Rows = append(t.Rows, []string{e.Key, count(e.Count), quote})
		}
		sections = append(sections, Section{Heading: titles[q], Table: t})
	}
	return &Result{ID: "survey-codebook", Title: "Codebook theme frequencies", Sections: sections}, nil
}

func runNoAIMeta(ctx context.Context, env *Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := metatags.RunTop10kScan(env.Config.Seed)
	t := &Table{
		Headers: []string{"directive", "sites", "paper"},
		Rows: [][]string{
			{"noai", count(res.NoAI), "17"},
			{"noimageai", count(res.NoImageAI), "16"},
		},
	}
	return &Result{
		ID:    "noai-meta",
		Title: fmt.Sprintf("NoAI meta tags across %d top-ranked sites", res.Scanned),
		Sections: []Section{{
			Table: t,
			Notes: []string{"adoption of the DeviantArt NoAI tags remains negligible (§2.2)"},
		}},
	}, nil
}

func runActiveAssistants(ctx context.Context, env *Env) (*Result, error) {
	res, err := env.ActiveMeasurement(ctx)
	if err != nil {
		return nil, err
	}
	builtin := &Table{Headers: []string{"built-in assistant", "verdict"}}
	var names []string
	for name := range res.BuiltinVerdicts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		builtin.Rows = append(builtin.Rows, []string{name, res.BuiltinVerdicts[name].String()})
	}
	summary := &Table{Headers: []string{"third-party behaviour", "crawlers", "paper"}}
	summary.Rows = append(summary.Rows,
		[]string{measure.Respected.String(), count(res.Summary[measure.Respected]), "1"},
		[]string{measure.BuggyRobotsFetch.String(), count(res.Summary[measure.BuggyRobotsFetch]), "1"},
		[]string{measure.IntermittentRespect.String(), count(res.Summary[measure.IntermittentRespect]), "1"},
		[]string{measure.NotFetched.String(), count(res.Summary[measure.NotFetched]), "20"},
	)
	return &Result{
		ID:    "active-assistants",
		Title: "Active measurement of AI assistant crawlers",
		Sections: []Section{
			{Heading: "Built-in assistants", Table: builtin},
			{
				Heading: fmt.Sprintf("Third-party GPT-app crawlers (%d apps → %d distinct crawlers; paper: 23)",
					res.AppsProbed, res.DistinctCrawlers),
				Table: summary,
			},
		},
	}, nil
}

func runActiveBlocking(ctx context.Context, env *Env) (*Result, error) {
	res, err := env.BlockingSurvey(ctx, blocking.DefaultDetector)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Headers: []string{"category", "sites", "% of probed", "paper"},
		Rows: [][]string{
			{"probed", count(res.Probed), "100%", "10,000"},
			{"inherently block automation", count(res.InherentlyBlocked), pct(stats.Percent(res.InherentlyBlocked, res.Probed)), "1,487 (15%)"},
			{"actively block AI user agents", count(res.ActiveBlockers), pct(stats.Percent(res.ActiveBlockers, res.Probed)), "1,433 (14%)"},
			{"blockers also restricting via robots.txt", count(res.RobotsOverlap), pct(stats.Percent(res.RobotsOverlap, res.ActiveBlockers)), "35 (2%)"},
		},
	}
	return &Result{
		ID:       "active-blocking",
		Title:    "Active blocking of the Anthropic user agents across the top 10k",
		Sections: []Section{{Table: t, Notes: []string{"lower bound: nothing can be inferred for sites that block the probe tool itself"}}},
	}, nil
}

func runGreyBox(ctx context.Context, env *Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := proxy.RunGreyBox(env.Config.Seed, 590)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"blocked user agent token"}}
	for _, tok := range res.BlockedTokens {
		t.Rows = append(t.Rows, []string{tok})
	}
	return &Result{
		ID:    "cloudflare-greybox",
		Title: fmt.Sprintf("Block AI Bots rule inference: %d of %d probed user agents blocked (paper: 17)", len(res.BlockedTokens), res.Probed),
		Sections: []Section{{
			Table: t,
			Notes: []string{"matches Appendix C.3; Applebot, OAI-SearchBot, ICC Crawler and DuckAssistbot remain unblocked verified bots"},
		}},
	}, nil
}

func runFigure7(ctx context.Context, env *Env) (*Result, error) {
	res, err := env.InferenceSurvey(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Headers: []string{"inference", "sites", "% of proxied", "paper"},
		Rows: [][]string{
			{"Block AI off", count(res.Off), pct(stats.Percent(res.Off, res.Total)), "87.01%"},
			{"Block AI on (block page)", count(res.OnBlock), pct(stats.Percent(res.OnBlock, res.Total)), "4.16%"},
			{"Block AI on (challenge page)", count(res.OnChallenge), pct(stats.Percent(res.OnChallenge, res.Total)), "1.64%"},
			{"inconclusive", count(res.Inconclusive), pct(stats.Percent(res.Inconclusive, res.Total)), "7.19%"},
		},
	}
	return &Result{
		ID:    "figure7",
		Title: fmt.Sprintf("Block AI Bots inference across %d Cloudflare-proxied sites", res.Total),
		Sections: []Section{{
			Table: t,
			Notes: []string{
				fmt.Sprintf("conclusive: %s (paper: 93%%); adoption among conclusive: %s (paper: 5.7%%)",
					pct(100*res.ConclusiveRate()), pct(100*res.OnRate())),
				fmt.Sprintf("robots.txt AI restrictions: %s of enabled sites vs %s of others (paper: 24%% vs 12%%)",
					pct(100*res.OnRobotsRate), pct(100*res.OffRobotsRate)),
			},
		}},
	}, nil
}

func runRobotsLint(ctx context.Context, env *Env) (*Result, error) {
	res, err := env.Longitudinal(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Headers: []string{"metric", "measured", "paper"},
		Rows: [][]string{
			{"sites with robots.txt mistakes", pct(100 * res.MistakeRate), "≈1%"},
			{"sites with blanket wildcard disallow", pct(100 * res.WildcardFullRate), "<2%"},
		},
	}
	return &Result{
		ID:       "robots-lint",
		Title:    "robots.txt authoring quality across the corpus",
		Sections: []Section{{Table: t}},
	}, nil
}

// runAblationParsers quantifies §8.1's parser-bug finding: the same
// corpus measured through non-compliant parsers yields materially
// different disallow rates.
func runAblationParsers(ctx context.Context, env *Env) (*Result, error) {
	c, err := env.CorpusAt(ctx, math.Min(env.Config.Scale, 0.15))
	if err != nil {
		return nil, err
	}
	profiles := []robots.Profile{
		robots.ProfileGoogle, robots.ProfileStrictRFC,
		robots.ProfileLegacyBuggy, robots.ProfileClassic1994,
	}
	lastSnap := len(corpus.Snapshots) - 1
	bodies := make([]string, 0, len(c.Sites()))
	for _, site := range c.Sites() {
		bodies = append(bodies, c.RobotsBody(site, lastSnap))
	}
	t := &Table{Headers: []string{"parser profile", "agent restrictions found", "sites restricting ≥1 agent", "restrictions vs google"}}
	var baseline int
	for _, p := range profiles {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pairs, sites := 0, 0
		for _, body := range bodies {
			rb := robots.ParseStringProfile(body, p)
			siteHit := false
			// Query every Table 1 agent: the buggy parsers' losses come
			// precisely from groups whose earlier User-agent lines they
			// dropped, which AgentTokens would still list.
			for _, a := range agents.Table1 {
				if lvl, explicit := rb.ExplicitRestriction(a.UserAgent); explicit && lvl.Restricted() {
					pairs++
					siteHit = true
				}
			}
			if siteHit {
				sites++
			}
		}
		if p.Name == "google" {
			baseline = pairs
		}
		rel := "—"
		if baseline > 0 {
			rel = pct(100 * float64(pairs) / float64(baseline))
		}
		t.Rows = append(t.Rows, []string{p.Name, count(pairs), count(sites), rel})
	}
	return &Result{
		ID:    "ablation-parsers",
		Title: "Measured AI-restriction rates under different parser semantics",
		Sections: []Section{{
			Table: t,
			Notes: []string{"the paper estimates ~10% parse error for the buggy prior-work parser (§3.1 fn. 3, §8.1)"},
		}},
	}, nil
}

func runAblationDetector(ctx context.Context, env *Env) (*Result, error) {
	full, err := env.BlockingSurvey(ctx, blocking.DefaultDetector)
	if err != nil {
		return nil, err
	}
	statusOnly, err := env.BlockingSurvey(ctx, blocking.StatusOnlyDetector)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Headers: []string{"detector", "active blockers found", "share of ground truth"},
		Rows: [][]string{
			{"status + length + errors (paper)", count(full.ActiveBlockers), pct(100)},
			{"status only", count(statusOnly.ActiveBlockers),
				pct(stats.Percent(statusOnly.ActiveBlockers, full.ActiveBlockers))},
		},
	}
	return &Result{
		ID:       "ablation-detector",
		Title:    "Detector-feature ablation for the §6.1 probe",
		Sections: []Section{{Table: t, Notes: []string{"soft-200 block pages are invisible to a status-only comparison"}}},
	}, nil
}

// runMaintenanceGap quantifies §8.1's "burden placed on each site
// administrator": a static blocklist written at the GPTBot surge loses
// coverage as new agents are announced, while a managed list does not.
func runMaintenanceGap(ctx context.Context, env *Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snaps := corpus.Snapshots
	var dates []time.Time
	for _, s := range snaps {
		dates = append(dates, s.Date)
	}
	freeze := snaps[corpus.GPTBotAnnouncedIndex].Date
	covs := manager.MaintenanceGap(manager.BlockAllAI, freeze, dates)
	t := &Table{Headers: []string{"snapshot", "agents announced", "static list covers", "managed list covers", "static gap"}}
	for i, c := range covs {
		t.Rows = append(t.Rows, []string{
			snaps[i].ID, count(c.Announced), count(c.StaticCovered),
			count(c.ManagedCovered), pct(100 * c.Gap()),
		})
	}
	newcomers := manager.AgentsAnnouncedBetween(freeze, dates[len(dates)-1])
	names := make([]string, 0, len(newcomers))
	for _, a := range newcomers {
		names = append(names, a.UserAgent)
	}
	return &Result{
		ID:    "maintenance-gap",
		Title: "Static vs managed robots.txt blocklists over the study window",
		Sections: []Section{{
			Table:  t,
			Series: []stats.Series{manager.GapSeries(covs)},
			Notes: []string{
				"agents a static Oct 2023 list misses by Oct 2024: " + strings.Join(names, ", "),
				"managed services (Dark Visitors, Yoast, AIOSEO — §2.2) exist precisely to close this gap",
			},
		}},
	}, nil
}
