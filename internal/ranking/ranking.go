// Package ranking models Tranco-style monthly top-site rankings with
// list churn, and implements the paper's Stable Top K methodology (§3.1):
// selecting the sites that appear in every monthly top-100k list across
// the two-year study window, to avoid results being affected by churn [96].
//
// The model is constructive: the populations that the paper measures
// (2,551 sites always in the top 5k; 51,605 always in the top 100k) are
// built in exactly, while the remaining list slots churn month to month
// the way real rankings do. The StableTopK analysis function is honest
// methodology code — it intersects the generated lists the same way the
// paper intersects real Tranco lists, and the tests verify it recovers
// the constructed populations.
package ranking

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/stats"
)

// Config parameterizes the ranking model. Zero fields take the paper's
// values (scaled by Scale if set).
type Config struct {
	// Months are the list dates; defaults to DefaultMonths().
	Months []time.Time
	// TopK is the list length (paper: 100,000).
	TopK int
	// TopTier is the "very largest sites" cutoff (paper: 5,000).
	TopTier int
	// StableCount is how many domains appear in every monthly list
	// (paper: 51,605).
	StableCount int
	// StableTopTierCount is how many domains appear in the top tier of
	// every monthly list (paper: 2,551).
	StableTopTierCount int
	// RequiredStable lists domains that must be part of the stable
	// population (the corpus pins the Table 4 publisher domains here).
	RequiredStable []string
	// Seed drives all randomness.
	Seed int64
}

// DefaultMonths returns the paper's study window: every month from
// October 2022 through October 2024 inclusive (25 lists).
func DefaultMonths() []time.Time {
	var out []time.Time
	for t := time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC); !t.After(time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)); t = t.AddDate(0, 1, 0) {
		out = append(out, t)
	}
	return out
}

func (c *Config) fillDefaults() {
	if len(c.Months) == 0 {
		c.Months = DefaultMonths()
	}
	if c.TopK == 0 {
		c.TopK = 100_000
	}
	if c.TopTier == 0 {
		c.TopTier = 5_000
	}
	if c.StableCount == 0 {
		c.StableCount = 51_605
	}
	if c.StableTopTierCount == 0 {
		c.StableTopTierCount = 2_551
	}
	if c.Seed == 0 {
		c.Seed = stats.DefaultSeed
	}
}

// Scaled returns a copy of the paper's default configuration with all
// population sizes multiplied by f (minimum sizes keep the structure
// valid). Use f=1 for full scale, f=0.1 for quick runs.
func Scaled(f float64) Config {
	var c Config
	c.fillDefaults()
	scale := func(n int) int {
		v := int(float64(n) * f)
		if v < 10 {
			v = 10
		}
		return v
	}
	c.TopK = scale(c.TopK)
	c.TopTier = scale(c.TopTier)
	c.StableCount = scale(c.StableCount)
	c.StableTopTierCount = scale(c.StableTopTierCount)
	return c
}

// Model generates monthly ranked lists.
type Model struct {
	cfg Config
	// stableTop are always ranked within the top tier.
	stableTop []string
	// stableRest are always in the list, outside or inside the top tier.
	stableRest []string
	// churners appear in some months only; each skips at least one month.
	churners []string
	// skipMonth[domain] is the month index the churner is forced to miss.
	skipMonth map[string]int
}

// NewModel builds a ranking model from cfg.
func NewModel(cfg Config) (*Model, error) {
	cfg.fillDefaults()
	if cfg.StableTopTierCount > cfg.TopTier {
		return nil, fmt.Errorf("ranking: stable top tier %d exceeds tier size %d",
			cfg.StableTopTierCount, cfg.TopTier)
	}
	if cfg.StableCount > cfg.TopK {
		return nil, fmt.Errorf("ranking: stable count %d exceeds list size %d",
			cfg.StableCount, cfg.TopK)
	}
	if cfg.StableTopTierCount > cfg.StableCount {
		return nil, fmt.Errorf("ranking: stable top tier %d exceeds stable count %d",
			cfg.StableTopTierCount, cfg.StableCount)
	}
	rn := stats.NewRand(cfg.Seed).Fork("ranking")
	m := &Model{cfg: cfg, skipMonth: make(map[string]int)}

	gen := newNameGen(rn.Fork("names"))
	used := make(map[string]bool, cfg.TopK*2)
	reserve := func(name string) string {
		for used[name] {
			name = gen.next()
		}
		used[name] = true
		return name
	}

	// Required domains join the stable populations first.
	req := append([]string(nil), cfg.RequiredStable...)
	sort.Strings(req)
	for _, d := range req {
		used[d] = true
	}
	nTop := cfg.StableTopTierCount
	nRest := cfg.StableCount - cfg.StableTopTierCount
	for i := 0; i < nTop; i++ {
		m.stableTop = append(m.stableTop, reserve(gen.next()))
	}
	for _, d := range req {
		m.stableRest = append(m.stableRest, d)
	}
	for len(m.stableRest) < nRest {
		m.stableRest = append(m.stableRest, reserve(gen.next()))
	}
	// Churner pool: enough distinct domains that monthly churn slots are
	// never exhausted; 1.6x the open slots mirrors real Tranco churn.
	openSlots := cfg.TopK - cfg.StableCount
	poolSize := openSlots + openSlots/2 + 1
	churnRand := rn.Fork("churn")
	for i := 0; i < poolSize; i++ {
		d := reserve(gen.next())
		m.churners = append(m.churners, d)
		m.skipMonth[d] = churnRand.Intn(len(cfg.Months))
	}
	return m, nil
}

// Config returns the effective configuration.
func (m *Model) Config() Config { return m.cfg }

// StableTopTier returns the domains constructed to appear in the top tier
// of every monthly list, sorted.
func (m *Model) StableTopTier() []string {
	out := append([]string(nil), m.stableTop...)
	sort.Strings(out)
	return out
}

// StableDomains returns all domains constructed to appear in every
// monthly list (top tier plus the rest), sorted.
func (m *Model) StableDomains() []string {
	out := make([]string, 0, len(m.stableTop)+len(m.stableRest))
	out = append(out, m.stableTop...)
	out = append(out, m.stableRest...)
	sort.Strings(out)
	return out
}

// MonthIndex returns the index of month in the configured window, or -1.
func (m *Model) MonthIndex(month time.Time) int {
	for i, t := range m.cfg.Months {
		if t.Year() == month.Year() && t.Month() == month.Month() {
			return i
		}
	}
	return -1
}

// MonthlyList generates the ranked list for the given month. The first
// TopTier entries are the tier the paper calls "the very largest sites".
// Generation is deterministic in (seed, month).
func (m *Model) MonthlyList(month time.Time) ([]string, error) {
	mi := m.MonthIndex(month)
	if mi < 0 {
		return nil, fmt.Errorf("ranking: month %s outside study window", month.Format("2006-01"))
	}
	rn := stats.NewRand(m.cfg.Seed).Fork(fmt.Sprintf("month-%d", mi))

	list := make([]string, 0, m.cfg.TopK)

	// Top tier: all stable-top domains plus a rotating fill from the
	// stable-rest population.
	fill := m.cfg.TopTier - len(m.stableTop)
	list = append(list, m.stableTop...)
	idx := rn.SampleWithoutReplacement(len(m.stableRest), fill)
	inTier := make(map[int]bool, fill)
	for _, i := range idx {
		list = append(list, m.stableRest[i])
		inTier[i] = true
	}
	rn.Shuffle(m.cfg.TopTier, func(i, j int) { list[i], list[j] = list[j], list[i] })

	// Remainder: the rest of the stable population, then churners active
	// this month until the list is full.
	for i, d := range m.stableRest {
		if !inTier[i] {
			list = append(list, d)
		}
	}
	added := make(map[string]bool, m.cfg.TopK-len(list))
	for _, d := range m.churners {
		if len(list) >= m.cfg.TopK {
			break
		}
		if m.skipMonth[d] == mi {
			continue
		}
		// Monthly presence: churners drop in and out.
		if rn.Bool(0.75) {
			list = append(list, d)
			added[d] = true
		}
	}
	// If presence sampling left slots open, fill from the remaining
	// churners (still deterministic, still absent in their skip month).
	for _, d := range m.churners {
		if len(list) >= m.cfg.TopK {
			break
		}
		if m.skipMonth[d] == mi || added[d] {
			continue
		}
		list = append(list, d)
	}
	if len(list) < m.cfg.TopK {
		return nil, fmt.Errorf("ranking: churner pool exhausted (%d < %d)", len(list), m.cfg.TopK)
	}
	tail := list[m.cfg.TopTier:]
	rn.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
	return list, nil
}

// StableTopK intersects the first k entries of every list and returns the
// domains present in all of them, sorted. This is the paper's Stable Top
// 100k / Stable Top 5k construction and works on any ranked lists.
func StableTopK(lists [][]string, k int) []string {
	if len(lists) == 0 {
		return nil
	}
	counts := make(map[string]int)
	for _, list := range lists {
		n := k
		if n > len(list) {
			n = len(list)
		}
		seen := make(map[string]bool, n)
		for _, d := range list[:n] {
			if !seen[d] {
				seen[d] = true
				counts[d]++
			}
		}
	}
	var out []string
	for d, c := range counts {
		if c == len(lists) {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// nameGen produces deterministic, realistic-looking domain names.
type nameGen struct {
	rn *stats.Rand
	n  int
}

var (
	nameParts1 = []string{
		"news", "tech", "art", "shop", "blog", "game", "data", "web", "cloud",
		"media", "photo", "travel", "food", "music", "sport", "film", "design",
		"craft", "pixel", "digital", "global", "daily", "metro", "prime",
		"nova", "vertex", "quantum", "stellar", "urban", "coastal",
	}
	nameParts2 = []string{
		"hub", "zone", "base", "land", "works", "press", "wire", "cast",
		"space", "port", "point", "nest", "forge", "lab", "deck", "dock",
		"field", "gate", "grid", "line", "mart", "path", "peak", "ridge",
		"vault", "verse", "view", "wave", "well", "yard",
	}
	nameTLDs = []string{".com", ".net", ".org", ".io", ".co", ".info"}
)

func newNameGen(rn *stats.Rand) *nameGen { return &nameGen{rn: rn} }

func (g *nameGen) next() string {
	g.n++
	p1 := stats.Pick(g.rn, nameParts1)
	p2 := stats.Pick(g.rn, nameParts2)
	tld := stats.Pick(g.rn, nameTLDs)
	if g.n <= len(nameParts1)*len(nameParts2) {
		return p1 + p2 + tld
	}
	return fmt.Sprintf("%s%s%d%s", p1, p2, g.n, tld)
}
