package ranking

import (
	"testing"
	"time"
)

func smallConfig() Config {
	return Config{
		TopK:               1000,
		TopTier:            50,
		StableCount:        520,
		StableTopTierCount: 26,
		Seed:               7,
	}
}

func TestDefaultMonths(t *testing.T) {
	months := DefaultMonths()
	if len(months) != 25 {
		t.Fatalf("months = %d, want 25 (Oct 2022 – Oct 2024)", len(months))
	}
	if months[0] != time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC) {
		t.Fatalf("first month = %v", months[0])
	}
	if months[24] != time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC) {
		t.Fatalf("last month = %v", months[24])
	}
}

func TestModelInvalidConfigs(t *testing.T) {
	bad := []Config{
		{TopK: 100, TopTier: 50, StableCount: 90, StableTopTierCount: 60}, // tier overflow
		{TopK: 100, TopTier: 50, StableCount: 200, StableTopTierCount: 10},
		{TopK: 100, TopTier: 50, StableCount: 20, StableTopTierCount: 30},
	}
	for i, cfg := range bad {
		cfg.Seed = 1
		cfg.Months = DefaultMonths()[:3]
		if _, err := NewModel(cfg); err == nil {
			t.Errorf("config %d must be rejected", i)
		}
	}
}

func TestMonthlyListShape(t *testing.T) {
	m, err := NewModel(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	list, err := m.MonthlyList(DefaultMonths()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1000 {
		t.Fatalf("list size = %d", len(list))
	}
	seen := map[string]bool{}
	for _, d := range list {
		if seen[d] {
			t.Fatalf("duplicate domain %q in list", d)
		}
		seen[d] = true
	}
}

func TestMonthlyListDeterministic(t *testing.T) {
	m1, _ := NewModel(smallConfig())
	m2, _ := NewModel(smallConfig())
	month := DefaultMonths()[5]
	l1, _ := m1.MonthlyList(month)
	l2, _ := m2.MonthlyList(month)
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("lists diverge at %d: %q vs %q", i, l1[i], l2[i])
		}
	}
}

func TestMonthOutsideWindow(t *testing.T) {
	m, _ := NewModel(smallConfig())
	if _, err := m.MonthlyList(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)); err == nil {
		t.Fatal("month outside the window must error")
	}
}

// The heart of §3.1: intersecting the monthly lists recovers exactly the
// constructed stable populations.
func TestStableTopKRecoversConstruction(t *testing.T) {
	cfg := smallConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lists [][]string
	for _, month := range DefaultMonths() {
		l, err := m.MonthlyList(month)
		if err != nil {
			t.Fatal(err)
		}
		lists = append(lists, l)
	}
	stable := StableTopK(lists, cfg.TopK)
	if len(stable) != cfg.StableCount {
		t.Fatalf("stable top %d = %d domains, want %d",
			cfg.TopK, len(stable), cfg.StableCount)
	}
	wantStable := m.StableDomains()
	for i := range stable {
		if stable[i] != wantStable[i] {
			t.Fatalf("stable set mismatch at %d: %q vs %q", i, stable[i], wantStable[i])
		}
	}

	stableTier := StableTopK(lists, cfg.TopTier)
	if len(stableTier) != cfg.StableTopTierCount {
		t.Fatalf("stable top tier = %d, want %d", len(stableTier), cfg.StableTopTierCount)
	}
	wantTier := m.StableTopTier()
	for i := range stableTier {
		if stableTier[i] != wantTier[i] {
			t.Fatalf("stable tier mismatch at %d", i)
		}
	}
}

func TestChurnExists(t *testing.T) {
	cfg := smallConfig()
	m, _ := NewModel(cfg)
	months := DefaultMonths()
	l1, _ := m.MonthlyList(months[0])
	l2, _ := m.MonthlyList(months[1])
	set1 := map[string]bool{}
	for _, d := range l1 {
		set1[d] = true
	}
	var missing int
	for _, d := range l2 {
		if !set1[d] {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("consecutive months must churn some list entries")
	}
	if missing > cfg.TopK-cfg.StableCount {
		t.Fatalf("churn %d exceeds open slots", missing)
	}
}

func TestRequiredStableIncluded(t *testing.T) {
	cfg := smallConfig()
	cfg.RequiredStable = []string{"vox.com", "sbnation.com", "wired.example"}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stable := map[string]bool{}
	for _, d := range m.StableDomains() {
		stable[d] = true
	}
	for _, d := range cfg.RequiredStable {
		if !stable[d] {
			t.Errorf("required domain %q not in stable set", d)
		}
	}
	// And they really appear in every month's list.
	for _, month := range DefaultMonths()[:4] {
		l, _ := m.MonthlyList(month)
		present := map[string]bool{}
		for _, d := range l {
			present[d] = true
		}
		for _, d := range cfg.RequiredStable {
			if !present[d] {
				t.Errorf("%s missing from %s list", d, month.Format("2006-01"))
			}
		}
	}
}

func TestStableTopTierAlwaysInTier(t *testing.T) {
	cfg := smallConfig()
	m, _ := NewModel(cfg)
	tier := map[string]bool{}
	for _, d := range m.StableTopTier() {
		tier[d] = true
	}
	for _, month := range DefaultMonths() {
		l, _ := m.MonthlyList(month)
		inTier := map[string]bool{}
		for _, d := range l[:cfg.TopTier] {
			inTier[d] = true
		}
		for d := range tier {
			if !inTier[d] {
				t.Fatalf("stable-tier domain %q outside tier in %s", d, month.Format("2006-01"))
			}
		}
	}
}

func TestStableTopKEdgeCases(t *testing.T) {
	if got := StableTopK(nil, 10); got != nil {
		t.Fatal("no lists → nil")
	}
	lists := [][]string{{"a", "b"}, {"b", "c"}}
	got := StableTopK(lists, 10)
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("intersection = %v, want [b]", got)
	}
	// k smaller than list length restricts the window.
	lists = [][]string{{"a", "b"}, {"a", "b"}}
	got = StableTopK(lists, 1)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("k=1 intersection = %v, want [a]", got)
	}
}

func TestScaled(t *testing.T) {
	c := Scaled(0.1)
	if c.TopK != 10_000 || c.TopTier != 500 {
		t.Fatalf("scaled sizes: %+v", c)
	}
	if c.StableCount != 5160 || c.StableTopTierCount != 255 {
		t.Fatalf("scaled stable sizes: %d, %d", c.StableCount, c.StableTopTierCount)
	}
	tiny := Scaled(0.000001)
	if tiny.TopTier < 10 {
		t.Fatal("scaling must respect minimum sizes")
	}
}

func TestFullScaleConstructionCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale model in -short mode")
	}
	cfg := Scaled(1.0)
	cfg.Seed = 42
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.StableDomains()); got != 51_605 {
		t.Fatalf("stable population = %d, want 51605", got)
	}
	if got := len(m.StableTopTier()); got != 2_551 {
		t.Fatalf("stable top-tier population = %d, want 2551", got)
	}
	list, err := m.MonthlyList(DefaultMonths()[12])
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 100_000 {
		t.Fatalf("monthly list = %d", len(list))
	}
}

func TestDomainNamesLookReal(t *testing.T) {
	m, _ := NewModel(smallConfig())
	for _, d := range m.StableDomains()[:20] {
		if len(d) < 5 {
			t.Errorf("domain %q too short", d)
		}
		dot := false
		for _, r := range d {
			if r == '.' {
				dot = true
			}
		}
		if !dot {
			t.Errorf("domain %q has no TLD", d)
		}
	}
}
