package longitudinal

import (
	"context"
	"testing"

	"repro/internal/corpus"
)

// analyzeScaled builds and analyzes a reduced-scale corpus once for the
// whole test file.
var cachedResult *Result

func result(t *testing.T) *Result {
	t.Helper()
	if cachedResult != nil {
		return cachedResult
	}
	c, err := corpus.New(context.Background(), corpus.Config{Seed: 23, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(context.Background(), c, 0)
	if err != nil {
		t.Fatal(err)
	}
	cachedResult = res
	return res
}

// TestAnalyzeParallelIdentical locks down the sharding guarantee: the
// analysis merges shard-local accumulators with commutative operations,
// so every worker count produces the same result.
func TestAnalyzeParallelIdentical(t *testing.T) {
	ctx := context.Background()
	c, err := corpus.New(ctx, corpus.Config{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Analyze(ctx, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Analyze(ctx, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.GPTBotRemovals != par.GPTBotRemovals {
		t.Errorf("GPTBot removals: %d vs %d", seq.GPTBotRemovals, par.GPTBotRemovals)
	}
	if seq.MistakeRate != par.MistakeRate || seq.WildcardFullRate != par.WildcardFullRate {
		t.Error("lint rates diverge between worker counts")
	}
	if len(seq.Table4) != len(par.Table4) {
		t.Fatalf("table 4 rows: %d vs %d", len(seq.Table4), len(par.Table4))
	}
	for i := range seq.Table4 {
		if seq.Table4[i] != par.Table4[i] {
			t.Fatalf("table 4 row %d: %+v vs %+v", i, seq.Table4[i], par.Table4[i])
		}
	}
	for k := range seq.Fig2Top5k.Points {
		if seq.Fig2Top5k.Points[k] != par.Fig2Top5k.Points[k] ||
			seq.Fig2Other.Points[k] != par.Fig2Other.Points[k] {
			t.Fatalf("figure 2 diverges at snapshot %d", k)
		}
		for ua := range seq.Fig3 {
			if seq.Fig3[ua].Points[k] != par.Fig3[ua].Points[k] {
				t.Fatalf("figure 3 %s diverges at snapshot %d", ua, k)
			}
		}
	}
}

func TestAnalyzeCancellation(t *testing.T) {
	ctx := context.Background()
	c, err := corpus.New(ctx, corpus.Config{Seed: 7, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Analyze(cancelled, c, 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSeriesShapes(t *testing.T) {
	res := result(t)
	n := len(corpus.Snapshots)
	if len(res.Fig2Top5k.Points) != n || len(res.Fig2Other.Points) != n {
		t.Fatal("figure 2 series must have one point per snapshot")
	}
	if len(res.Fig3) != 10 {
		t.Fatalf("figure 3 agents = %d, want 10", len(res.Fig3))
	}
	for ua, s := range res.Fig3 {
		if len(s.Points) != n {
			t.Fatalf("%s series has %d points", ua, len(s.Points))
		}
	}
	if len(res.Table3) != n {
		t.Fatal("table 3 must have one row per snapshot")
	}
}

// Figure 2's central findings: a surge at the first post-announcement
// snapshot, top-tier sites restricting more than the rest, and end-of-
// window levels near the paper's 12–14% / 8–10% bands.
func TestFigure2Shape(t *testing.T) {
	res := result(t)
	surgeIdx := corpus.GPTBotAnnouncedIndex
	preTop := res.Fig2Top5k.Points[surgeIdx-1].Value
	postTop := res.Fig2Top5k.Points[surgeIdx].Value
	if postTop < 3*preTop {
		t.Errorf("top5k surge: %.2f%% -> %.2f%%, want >=3x jump", preTop, postTop)
	}
	preOther := res.Fig2Other.Points[surgeIdx-1].Value
	postOther := res.Fig2Other.Points[surgeIdx].Value
	if postOther < 3*preOther {
		t.Errorf("other surge: %.2f%% -> %.2f%%, want >=3x jump", preOther, postOther)
	}
	// Top tier restricts more throughout the post-surge era. At reduced
	// scale the pinned publisher domains (a fixed absolute population in
	// the "other" tier) inflate that curve by up to ~2 points mid-window,
	// so allow a one-point margin; the end-of-window comparison is exact
	// because every deal has executed by then.
	for k := surgeIdx; k < len(corpus.Snapshots); k++ {
		if res.Fig2Top5k.Points[k].Value <= res.Fig2Other.Points[k].Value-1.0 {
			t.Errorf("snapshot %d: top5k %.2f%% <= other %.2f%%", k,
				res.Fig2Top5k.Points[k].Value, res.Fig2Other.Points[k].Value)
		}
	}
	if res.Fig2Top5k.Last().Value <= res.Fig2Other.Last().Value {
		t.Errorf("end of window: top5k %.2f%% must exceed other %.2f%%",
			res.Fig2Top5k.Last().Value, res.Fig2Other.Last().Value)
	}
	endTop := res.Fig2Top5k.Last().Value
	endOther := res.Fig2Other.Last().Value
	if endTop < 10 || endTop > 17 {
		t.Errorf("top5k end = %.2f%%, want in the paper's 12-14%% region", endTop)
	}
	if endOther < 6.5 || endOther > 12 {
		t.Errorf("other end = %.2f%%, want in the paper's 8-10%% region", endOther)
	}
}

// Figure 3: GPTBot and CCBot are the most-restricted agents, with GPTBot
// zero before its announcement; all agents tick upward after the EU AI
// Act draft.
func TestFigure3Shape(t *testing.T) {
	res := result(t)
	gpt := res.Fig3["GPTBot"]
	cc := res.Fig3["CCBot"]
	for k := 0; k < corpus.GPTBotAnnouncedIndex; k++ {
		if gpt.Points[k].Value != 0 {
			t.Errorf("GPTBot restricted at snapshot %d before announcement", k)
		}
	}
	end := len(corpus.Snapshots) - 1
	if gpt.Points[end].Value <= cc.Points[end].Value {
		t.Errorf("GPTBot (%.2f%%) must lead CCBot (%.2f%%)",
			gpt.Points[end].Value, cc.Points[end].Value)
	}
	for ua, s := range res.Fig3 {
		if ua == "GPTBot" || ua == "CCBot" {
			continue
		}
		if s.Points[end].Value >= gpt.Points[end].Value {
			t.Errorf("%s (%.2f%%) must trail GPTBot (%.2f%%)",
				ua, s.Points[end].Value, gpt.Points[end].Value)
		}
	}
	// EU AI Act uptick: restriction grows from Aug 2024 to Oct 2024 for
	// every agent not subject to licensing-deal removals (the OpenAI
	// agents dip when the Condé Nast and Vox deals execute, which at
	// reduced scale can outweigh organic growth).
	for ua, s := range res.Fig3 {
		if ua == "GPTBot" || ua == "ChatGPT-User" {
			continue
		}
		if s.Points[end].Value < s.Points[corpus.EUAIActIndex-1].Value {
			t.Errorf("%s decreased across the EU AI Act window", ua)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	res := result(t)
	// The explicit-allow curve is (weakly) increasing and ends >= the
	// Table 4 population (pinned domains) present in the corpus.
	last := 0.0
	for _, p := range res.Fig4Allowed.Points {
		if p.Value < last-0.5 {
			t.Errorf("explicit-allow curve decreased at %s", p.Label)
		}
		last = p.Value
	}
	if res.Fig4Allowed.Last().Value < float64(len(res.Table4)) {
		t.Errorf("allowed end %.0f < GPTBot allowers %d",
			res.Fig4Allowed.Last().Value, len(res.Table4))
	}
	// Removal spikes at the deal snapshots: May 2024 (Dotdash + Stack
	// Exchange + Future PLC) must exceed the adjacent background periods.
	may := corpus.SnapshotIndex("2024-22")
	if res.Fig4Removed.Points[may].Value <= res.Fig4Removed.Points[may-1].Value {
		t.Error("May 2024 deal spike missing from removal series")
	}
	oct := corpus.SnapshotIndex("2024-42")
	if res.Fig4Removed.Points[oct].Value <= 0 {
		t.Error("Vox Media deal must register removals in Oct 2024")
	}
	if res.Fig4Removed.Points[0].Value != 0 {
		t.Error("first snapshot has no prior period; removals must be 0")
	}
}

func TestTable4Reproduction(t *testing.T) {
	res := result(t)
	// Exactly the pinned Table 4 domains allow GPTBot (background allows
	// use other agents).
	want := map[string]string{}
	for _, r := range corpus.Table4 {
		want[r.Domain] = r.FirstSeen
	}
	if len(res.Table4) != len(want) {
		t.Fatalf("table 4 rows = %d, want %d", len(res.Table4), len(want))
	}
	for _, row := range res.Table4 {
		fs, ok := want[row.Domain]
		if !ok {
			t.Errorf("unexpected GPTBot allower %s", row.Domain)
			continue
		}
		if fs != row.FirstSeen {
			t.Errorf("%s first seen %s, want %s", row.Domain, row.FirstSeen, fs)
		}
	}
	// Sorted by snapshot then domain.
	for i := 1; i < len(res.Table4); i++ {
		a, b := res.Table4[i-1], res.Table4[i]
		ai, bi := corpus.SnapshotIndex(a.FirstSeen), corpus.SnapshotIndex(b.FirstSeen)
		if ai > bi || (ai == bi && a.Domain > b.Domain) {
			t.Fatal("table 4 not sorted")
		}
	}
}

func TestGPTBotRemovals(t *testing.T) {
	res := result(t)
	// All deal domains removed GPTBot; background removals add more. At
	// 0.08 scale the paper's 484 scales to roughly 40-140 given the ~100
	// pinned deal domains are never scaled down.
	if res.GPTBotRemovals < len(dealDomainCount())-10 {
		t.Errorf("GPTBot removals = %d, want at least the deal domains (~%d)",
			res.GPTBotRemovals, len(dealDomainCount()))
	}
}

func dealDomainCount() map[string]bool {
	m := map[string]bool{}
	for _, d := range corpus.Deals {
		for _, dom := range d.Domains {
			m[dom] = true
		}
	}
	return m
}

func TestRates(t *testing.T) {
	res := result(t)
	if res.MistakeRate < 0.003 || res.MistakeRate > 0.03 {
		t.Errorf("mistake rate = %.4f, want ~0.01 (§8.1)", res.MistakeRate)
	}
	if res.WildcardFullRate < 0.005 || res.WildcardFullRate > 0.03 {
		t.Errorf("wildcard-full rate = %.4f, want <0.02 (§3.1)", res.WildcardFullRate)
	}
}

func TestTable3Rows(t *testing.T) {
	res := result(t)
	for i, row := range res.Table3 {
		if row.Snapshot != corpus.Snapshots[i].ID {
			t.Fatalf("row %d snapshot %s", i, row.Snapshot)
		}
		if row.Robots > row.Sites || row.Sites == 0 {
			t.Fatalf("row %d: sites=%d robots=%d", i, row.Sites, row.Robots)
		}
	}
}

func TestAnalyzeEmptyCorpusFails(t *testing.T) {
	// A corpus cannot really be empty through the public API, so exercise
	// the guard through a zero-scale corpus (clamped to >=1 site, so this
	// checks Analyze succeeds even at minimum size).
	c, err := corpus.New(context.Background(), corpus.Config{Seed: 3, Scale: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(context.Background(), c, 0); err != nil {
		t.Fatalf("minimum corpus must analyze: %v", err)
	}
}

func TestCrawlDelayRate(t *testing.T) {
	res := result(t)
	if res.CrawlDelayRate < 0.05 || res.CrawlDelayRate > 0.12 {
		t.Errorf("crawl-delay rate = %.3f, want ≈0.08", res.CrawlDelayRate)
	}
}
