// Package longitudinal implements the paper's §3 analyses over a corpus of
// historic robots.txt snapshots: the trend of AI-crawler restrictions
// (Figure 2), per-agent adoption curves (Figure 3), explicit allows and
// restriction removals (Figure 4, Table 4), and snapshot coverage
// (Table 3).
//
// The analysis consumes only rendered robots.txt text — every file is
// parsed with internal/robots and categorized with the paper's explicit-
// restriction notion (§3.1: a site counts as disallowing an AI crawler
// only when robots.txt names that crawler's user agent; blanket wildcard
// rules do not express AI-specific intent).
package longitudinal

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/agents"
	"repro/internal/corpus"
	"repro/internal/par"
	"repro/internal/robots"
	"repro/internal/stats"
)

// Result bundles every §3 analysis output.
type Result struct {
	// Fig2Top5k and Fig2Other are the Figure 2 series: percent of sites in
	// each tier that fully disallow at least one AI crawler user agent.
	Fig2Top5k stats.Series
	Fig2Other stats.Series
	// Fig3 maps each Figure 3 user agent to its series: percent of all
	// analysis sites that partially or fully disallow it.
	Fig3 map[string]stats.Series
	// Fig4Allowed counts sites whose robots.txt explicitly allows at least
	// one AI crawler, per snapshot (Figure 4's rising curve).
	Fig4Allowed stats.Series
	// Fig4Removed counts sites that removed at least one explicit AI
	// restriction in each inter-snapshot period (Figure 4's event series;
	// the first snapshot has no prior period and is always 0).
	Fig4Removed stats.Series
	// GPTBotRemovals is the number of distinct sites that removed an
	// explicit GPTBot restriction after its announcement (paper: 484).
	GPTBotRemovals int
	// Table3 reports per-snapshot corpus coverage.
	Table3 []Table3Row
	// Table4 lists sites that explicitly and fully allow GPTBot with the
	// snapshot where that was first observed (paper's Table 4).
	Table4 []AllowRow
	// MistakeRate is the fraction of sites whose final robots.txt has
	// authoring mistakes (paper §8.1: ~1%).
	MistakeRate float64
	// WildcardFullRate is the fraction of sites with a blanket
	// "User-agent: *; Disallow: /" (paper §3.1: <2%).
	WildcardFullRate float64
	// CrawlDelayRate is the fraction of sites still carrying the
	// deprecated Crawl-Delay extension (context: Sun et al. [108]).
	CrawlDelayRate float64
	// Top5kCount and OtherCount are the tier denominators.
	Top5kCount, OtherCount int
}

// Table3Row is one row of Table 3.
type Table3Row struct {
	Snapshot string
	Label    string
	Sites    int
	Robots   int
}

// AllowRow is one row of Table 4.
type AllowRow struct {
	Domain    string
	FirstSeen string // snapshot ID
}

// summary is the per-body categorization extract the analysis needs.
type summary struct {
	full       map[string]bool // Table-1 agents explicitly fully disallowed
	restrict   map[string]bool // explicitly partially-or-fully disallowed
	allowed    map[string]bool // explicitly allowed
	mistake    bool
	wildcard   bool
	crawlDelay bool
}

// siteCounts is one shard's accumulator. Every field merges with a
// commutative, associative operation (integer sums, set union, row
// append followed by a total sort), so the merged result is identical
// for any sharding and any worker count.
type siteCounts struct {
	fullCountTop   []int
	fullCountOther []int
	restrictCount  map[string][]int
	allowedCount   []int
	removedCount   []int
	gptRemovals    map[string]bool
	mistakes       int
	wildcards      int
	crawlDelays    int
	table4         []AllowRow
}

func newSiteCounts(nSnaps int) *siteCounts {
	sc := &siteCounts{
		fullCountTop:   make([]int, nSnaps),
		fullCountOther: make([]int, nSnaps),
		restrictCount:  make(map[string][]int, len(agents.Figure3Agents)),
		allowedCount:   make([]int, nSnaps),
		removedCount:   make([]int, nSnaps),
		gptRemovals:    make(map[string]bool),
	}
	for _, ua := range agents.Figure3Agents {
		sc.restrictCount[ua] = make([]int, nSnaps)
	}
	return sc
}

func (sc *siteCounts) merge(o *siteCounts) {
	for k := range o.fullCountTop {
		sc.fullCountTop[k] += o.fullCountTop[k]
		sc.fullCountOther[k] += o.fullCountOther[k]
		sc.allowedCount[k] += o.allowedCount[k]
		sc.removedCount[k] += o.removedCount[k]
	}
	for ua, counts := range o.restrictCount {
		dst := sc.restrictCount[ua]
		for k, v := range counts {
			dst[k] += v
		}
	}
	for d := range o.gptRemovals {
		sc.gptRemovals[d] = true
	}
	sc.mistakes += o.mistakes
	sc.wildcards += o.wildcards
	sc.crawlDelays += o.crawlDelays
	sc.table4 = append(sc.table4, o.table4...)
}

// accumulateSite folds one site's snapshot timeline into the accumulator.
func accumulateSite(c *corpus.Corpus, site *corpus.Site, table1Tokens map[string]string, sc *siteCounts) {
	nSnaps := len(corpus.Snapshots)
	var prevBody string
	var sum summary
	var prev summary
	for k := 0; k < nSnaps; k++ {
		body := c.RobotsBody(site, k)
		if k == 0 || body != prevBody {
			sum = summarize(body, table1Tokens)
		}
		prevBody = body

		if len(sum.full) > 0 {
			if site.Top5k {
				sc.fullCountTop[k]++
			} else {
				sc.fullCountOther[k]++
			}
		}
		for _, ua := range agents.Figure3Agents {
			if sum.restrict[ua] {
				sc.restrictCount[ua][k]++
			}
		}
		if len(sum.allowed) > 0 {
			sc.allowedCount[k]++
		}
		if k > 0 {
			removed := false
			for ua := range prev.restrict {
				if !sum.restrict[ua] {
					removed = true
					if ua == "GPTBot" && k >= corpus.GPTBotAnnouncedIndex {
						sc.gptRemovals[site.Domain] = true
					}
				}
			}
			if removed {
				sc.removedCount[k]++
			}
		}
		if k == nSnaps-1 {
			if sum.mistake {
				sc.mistakes++
			}
			if sum.wildcard {
				sc.wildcards++
			}
			if sum.crawlDelay {
				sc.crawlDelays++
			}
			if sum.allowed["GPTBot"] {
				// First-seen scan for Table 4.
				first := firstAllowSnapshot(c, site, table1Tokens)
				sc.table4 = append(sc.table4, AllowRow{
					Domain:    site.Domain,
					FirstSeen: corpus.Snapshots[first].ID,
				})
			}
		}
		prev = sum
	}
}

// Analyze runs every §3 analysis over the corpus. The per-site pass —
// rendering and parsing every robots.txt snapshot — is the hot loop of
// the whole reproduction; it runs sharded on a workers-bounded pool
// (0 = GOMAXPROCS) with cancellation checked between shards, and its
// output is identical for every worker count.
func Analyze(ctx context.Context, c *corpus.Corpus, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nSnaps := len(corpus.Snapshots)
	sites := c.Sites()
	if len(sites) == 0 {
		return nil, fmt.Errorf("longitudinal: empty corpus")
	}

	res := &Result{
		Fig3:       make(map[string]stats.Series, len(agents.Figure3Agents)),
		Top5kCount: c.Top5kCount(),
		OtherCount: len(sites) - c.Top5kCount(),
	}

	table1Tokens := make(map[string]string, len(agents.Table1)) // lower token -> UA
	for _, a := range agents.Table1 {
		table1Tokens[a.Token()] = a.UserAgent
	}

	total := newSiteCounts(nSnaps)
	var mergeMu sync.Mutex
	if err := par.Do(ctx, workers, len(sites), func(start, end int) {
		local := newSiteCounts(nSnaps)
		for _, site := range sites[start:end] {
			accumulateSite(c, site, table1Tokens, local)
		}
		mergeMu.Lock()
		total.merge(local)
		mergeMu.Unlock()
	}); err != nil {
		return nil, err
	}
	fullCountTop := total.fullCountTop
	fullCountOther := total.fullCountOther
	restrictCount := total.restrictCount
	allowedCount := total.allowedCount
	removedCount := total.removedCount
	gptRemovals := total.gptRemovals
	mistakes, wildcards, crawlDelays := total.mistakes, total.wildcards, total.crawlDelays
	res.Table4 = total.table4

	for k, snap := range corpus.Snapshots {
		label := snap.Date.Format("Jan 2006")
		pt := func(v float64) stats.Point {
			return stats.Point{Time: snap.Date, Label: label, Value: v}
		}
		res.Fig2Top5k.Points = append(res.Fig2Top5k.Points,
			pt(stats.Percent(fullCountTop[k], res.Top5kCount)))
		res.Fig2Other.Points = append(res.Fig2Other.Points,
			pt(stats.Percent(fullCountOther[k], res.OtherCount)))
		for _, ua := range agents.Figure3Agents {
			s := res.Fig3[ua]
			s.Name = ua
			s.Points = append(s.Points, pt(stats.Percent(restrictCount[ua][k], len(sites))))
			res.Fig3[ua] = s
		}
		res.Fig4Allowed.Points = append(res.Fig4Allowed.Points, pt(float64(allowedCount[k])))
		res.Fig4Removed.Points = append(res.Fig4Removed.Points, pt(float64(removedCount[k])))

		sitesN, robotsN := c.PresenceCounts(k)
		res.Table3 = append(res.Table3, Table3Row{
			Snapshot: snap.ID, Label: snap.Label, Sites: sitesN, Robots: robotsN,
		})
	}
	res.Fig2Top5k.Name = "Stable Top 5k"
	res.Fig2Other.Name = "Other Sites"
	res.Fig4Allowed.Name = "Explicitly Allowed"
	res.Fig4Removed.Name = "Removed Restrictions"
	res.GPTBotRemovals = len(gptRemovals)
	res.MistakeRate = float64(mistakes) / float64(len(sites))
	res.WildcardFullRate = float64(wildcards) / float64(len(sites))
	res.CrawlDelayRate = float64(crawlDelays) / float64(len(sites))
	sortAllowRows(res.Table4)
	return res, nil
}

// summarize parses one robots.txt body and extracts the categorization the
// analysis needs: explicit restriction levels and explicit allows for the
// Table 1 user agents, plus lint facts.
func summarize(body string, table1Tokens map[string]string) summary {
	rb := robots.ParseString(body)
	sum := summary{
		full:       make(map[string]bool),
		restrict:   make(map[string]bool),
		allowed:    make(map[string]bool),
		mistake:    rb.HasMistakes(),
		wildcard:   rb.WildcardFullDisallow(),
		crawlDelay: hasCrawlDelay(rb),
	}
	// Only user agents the file names explicitly can be explicitly
	// restricted or allowed; AgentTokens narrows the query set.
	for _, tok := range rb.AgentTokens() {
		ua, ok := table1Tokens[lower(tok)]
		if !ok {
			continue
		}
		if lvl, explicit := rb.ExplicitRestriction(ua); explicit && lvl.Restricted() {
			sum.restrict[ua] = true
			if lvl == robots.FullyDisallowed {
				sum.full[ua] = true
			}
		}
		if rb.ExplicitlyAllows(ua) {
			sum.allowed[ua] = true
		}
	}
	return sum
}

// hasCrawlDelay reports whether any recorded extension is a Crawl-Delay.
func hasCrawlDelay(rb *robots.Robots) bool {
	for _, ext := range rb.Extensions {
		if ext.Key == "crawl-delay" || ext.Key == "crawldelay" {
			return true
		}
	}
	return false
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// firstAllowSnapshot finds the first snapshot where the site's robots.txt
// explicitly allows GPTBot.
func firstAllowSnapshot(c *corpus.Corpus, site *corpus.Site, table1Tokens map[string]string) int {
	var prevBody string
	var sum summary
	for k := 0; k < len(corpus.Snapshots); k++ {
		body := c.RobotsBody(site, k)
		if k == 0 || body != prevBody {
			sum = summarize(body, table1Tokens)
		}
		prevBody = body
		if sum.allowed["GPTBot"] {
			return k
		}
	}
	return len(corpus.Snapshots) - 1
}

// sortAllowRows orders Table 4 by first-seen snapshot, then domain.
func sortAllowRows(rows []AllowRow) {
	sort.Slice(rows, func(i, j int) bool {
		ai, bi := corpus.SnapshotIndex(rows[i].FirstSeen), corpus.SnapshotIndex(rows[j].FirstSeen)
		if ai != bi {
			return ai < bi
		}
		return rows[i].Domain < rows[j].Domain
	})
}
