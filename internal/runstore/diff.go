package runstore

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Absent marks a token or segment present on only one side of a diff.
const Absent = "(absent)"

// VerdictMigration is one product token whose verdict class differs
// between the runs — the headline semantic change the CI gate watches.
type VerdictMigration struct {
	Token string `json:"token"`
	From  string `json:"from"`
	To    string `json:"to"`
}

// MonthDelta is one changed integer field of one month.
type MonthDelta struct {
	Month int    `json:"month"`
	Label string `json:"label,omitempty"`
	Field string `json:"field"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
}

// PolicyFlip is one site whose stored policy plan differs between runs:
// a different adoption month, policy style, or blocker assignment.
type PolicyFlip struct {
	Site   int    `json:"site"`
	Domain string `json:"domain"`
	Field  string `json:"field"` // adopt_month | style | blocker
	A      string `json:"a"`
	B      string `json:"b"`
}

// MixDelta is one changed decision-mix count.
type MixDelta struct {
	Action string `json:"action"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

// QuotaDelta is one changed per-tenant quota-ledger count between two
// gateway-driven loadgen runs — a tenant-mix shift at the fleet edge.
type QuotaDelta struct {
	Tenant string `json:"tenant"`
	Field  string `json:"field"` // granted | throttled | rate | burst
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

// ExperimentChange is one experiment whose stored output changed.
type ExperimentChange struct {
	ID string `json:"id"`
	// Change is "changed", "only-a", or "only-b".
	Change string `json:"change"`
}

// BenchDelta compares one benchmark present in both runs' bench
// segments. Advisory: wall-clock, not semantics.
type BenchDelta struct {
	Name    string  `json:"name"`
	ANsOp   float64 `json:"a_ns_op"`
	BNsOp   float64 `json:"b_ns_op"`
	Speedup float64 `json:"speedup"` // a/b: >1 means b is faster
	AAllocs int64   `json:"a_allocs"`
	BAllocs int64   `json:"b_allocs"`
}

// maxStoredFlips caps the per-site flip list a Diff carries; FlipTotals
// always holds the full per-field counts.
const maxStoredFlips = 1000

// Diff is the semantic delta between two runs. The first six fields are
// semantic — Empty reports on them alone; BenchDeltas and MetricDeltas
// are advisory (measured performance and process-metric drift vary
// between identical runs by construction).
type Diff struct {
	A Meta `json:"a"`
	B Meta `json:"b"`

	VerdictMigrations []VerdictMigration `json:"verdict_migrations,omitempty"`
	MonthDeltas       []MonthDelta       `json:"month_deltas,omitempty"`
	PolicyFlips       []PolicyFlip       `json:"policy_flips,omitempty"`
	// FlipTotals counts every flip per field, even past the stored cap.
	FlipTotals        map[string]int     `json:"flip_totals,omitempty"`
	MixDeltas         []MixDelta         `json:"mix_deltas,omitempty"`
	QuotaDeltas       []QuotaDelta       `json:"quota_deltas,omitempty"`
	ExperimentChanges []ExperimentChange `json:"experiment_changes,omitempty"`

	BenchDeltas  []BenchDelta `json:"bench_deltas,omitempty"`
	MetricDeltas []obs.Delta  `json:"metric_deltas,omitempty"`
}

// Empty reports whether the runs are semantically identical. Advisory
// sections (bench, metrics) are ignored: two runs of the same
// (spec, seed, rev) must diff Empty even though their wall-clock
// metrics drifted.
func (d *Diff) Empty() bool {
	return len(d.VerdictMigrations) == 0 && len(d.MonthDeltas) == 0 &&
		len(d.PolicyFlips) == 0 && len(d.MixDeltas) == 0 &&
		len(d.QuotaDeltas) == 0 && len(d.ExperimentChanges) == 0
}

// DiffRuns computes the semantic delta from a to b. Only segments both
// runs carry are compared, so scenario runs diff against scenario runs,
// experiment runs against experiment runs, and a mixed pair degrades to
// the shared segments (typically just metrics drift).
func DiffRuns(a, b *Run) *Diff {
	d := &Diff{A: a.Meta, B: b.Meta}
	diffVerdicts(d, a, b)
	diffMonths(d, a, b)
	diffSites(d, a, b)
	diffMix(d, a, b)
	diffQuotas(d, a, b)
	diffExperiments(d, a, b)
	diffBench(d, a, b)
	if len(a.Metrics) > 0 && len(b.Metrics) > 0 {
		// Snapshot drift is advisory; a malformed segment (hand-edited
		// store) degrades to no metric section rather than failing the
		// whole diff.
		if deltas, err := obs.SnapshotDelta(a.Metrics, b.Metrics); err == nil {
			d.MetricDeltas = deltas
		}
	}
	return d
}

func diffVerdicts(d *Diff, a, b *Run) {
	if a.Verdicts == nil && b.Verdicts == nil {
		return
	}
	tokens := make(map[string]struct{}, len(a.Verdicts)+len(b.Verdicts))
	for t := range a.Verdicts {
		tokens[t] = struct{}{}
	}
	for t := range b.Verdicts {
		tokens[t] = struct{}{}
	}
	for t := range tokens {
		va, inA := a.Verdicts[t]
		vb, inB := b.Verdicts[t]
		if inA && inB && va == vb {
			continue
		}
		if !inA {
			va = Absent
		}
		if !inB {
			vb = Absent
		}
		d.VerdictMigrations = append(d.VerdictMigrations, VerdictMigration{Token: t, From: va, To: vb})
	}
	sort.Slice(d.VerdictMigrations, func(i, j int) bool {
		return d.VerdictMigrations[i].Token < d.VerdictMigrations[j].Token
	})
}

// monthFields enumerates MonthMetrics' integer fields for the differ.
var monthFields = []struct {
	name string
	get  func(scenario.MonthMetrics) int64
}{
	{"adopted_sites", func(m scenario.MonthMetrics) int64 { return int64(m.AdoptedSites) }},
	{"managed_sites", func(m scenario.MonthMetrics) int64 { return int64(m.ManagedSites) }},
	{"active_blockers", func(m scenario.MonthMetrics) int64 { return int64(m.ActiveBlockers) }},
	{"visits", func(m scenario.MonthMetrics) int64 { return int64(m.Visits) }},
	{"robots_fetches", func(m scenario.MonthMetrics) int64 { return int64(m.RobotsFetches) }},
	{"disallowed_bytes", func(m scenario.MonthMetrics) int64 { return m.DisallowedBytes }},
	{"allowed_bytes", func(m scenario.MonthMetrics) int64 { return m.AllowedBytes }},
	{"blocked_requests", func(m scenario.MonthMetrics) int64 { return int64(m.BlockedRequests) }},
	{"gap_missing", func(m scenario.MonthMetrics) int64 { return int64(m.GapMissing) }},
	{"gap_announced", func(m scenario.MonthMetrics) int64 { return int64(m.GapAnnounced) }},
	{"gap_sites", func(m scenario.MonthMetrics) int64 { return int64(m.GapSites) }},
}

func diffMonths(d *Diff, a, b *Run) {
	if len(a.Months) == 0 && len(b.Months) == 0 {
		return
	}
	if len(a.Months) != len(b.Months) {
		d.MonthDeltas = append(d.MonthDeltas, MonthDelta{
			Month: -1, Field: "month_count",
			A: int64(len(a.Months)), B: int64(len(b.Months)),
		})
	}
	n := len(a.Months)
	if len(b.Months) < n {
		n = len(b.Months)
	}
	for i := 0; i < n; i++ {
		ma, mb := a.Months[i], b.Months[i]
		for _, f := range monthFields {
			if va, vb := f.get(ma), f.get(mb); va != vb {
				d.MonthDeltas = append(d.MonthDeltas, MonthDelta{
					Month: ma.Month, Label: ma.Label, Field: f.name, A: va, B: vb,
				})
			}
		}
		for c := range ma.ClassCounts {
			if va, vb := ma.ClassCounts[c], mb.ClassCounts[c]; va != vb {
				d.MonthDeltas = append(d.MonthDeltas, MonthDelta{
					Month: ma.Month, Label: ma.Label,
					Field: "class:" + measure.Verdict(c).String(),
					A:     int64(va), B: int64(vb),
				})
			}
		}
	}
}

func diffSites(d *Diff, a, b *Run) {
	if len(a.Sites) == 0 || len(b.Sites) == 0 {
		return
	}
	record := func(f PolicyFlip) {
		if d.FlipTotals == nil {
			d.FlipTotals = make(map[string]int)
		}
		d.FlipTotals[f.Field]++
		if len(d.PolicyFlips) < maxStoredFlips {
			d.PolicyFlips = append(d.PolicyFlips, f)
		}
	}
	n := len(a.Sites)
	if len(b.Sites) < n {
		n = len(b.Sites)
	}
	for i := 0; i < n; i++ {
		pa, pb := a.Sites[i], b.Sites[i]
		if pa.AdoptMonth != pb.AdoptMonth {
			record(PolicyFlip{
				Site: pa.Site, Domain: pa.Domain, Field: "adopt_month",
				A: fmt.Sprint(pa.AdoptMonth), B: fmt.Sprint(pb.AdoptMonth),
			})
		}
		if pa.Style != pb.Style {
			record(PolicyFlip{
				Site: pa.Site, Domain: pa.Domain, Field: "style",
				A: orNone(pa.Style), B: orNone(pb.Style),
			})
		}
		if pa.Blocker != pb.Blocker {
			record(PolicyFlip{
				Site: pa.Site, Domain: pa.Domain, Field: "blocker",
				A: fmt.Sprint(pa.Blocker), B: fmt.Sprint(pb.Blocker),
			})
		}
	}
	if len(a.Sites) != len(b.Sites) {
		record(PolicyFlip{
			Site: -1, Domain: "(population)", Field: "site_count",
			A: fmt.Sprint(len(a.Sites)), B: fmt.Sprint(len(b.Sites)),
		})
	}
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func diffMix(d *Diff, a, b *Run) {
	if a.Decisions == nil || b.Decisions == nil {
		return
	}
	ma, mb := a.Decisions, b.Decisions
	for _, f := range []struct {
		name string
		a, b int64
	}{
		{"issued", ma.Issued, mb.Issued},
		{"allow", ma.Allow, mb.Allow},
		{"deny", ma.Deny, mb.Deny},
		{"block", ma.Block, mb.Block},
	} {
		if f.a != f.b {
			d.MixDeltas = append(d.MixDeltas, MixDelta{Action: f.name, A: f.a, B: f.b})
		}
	}
}

func diffQuotas(d *Diff, a, b *Run) {
	if a.Quotas == nil || b.Quotas == nil {
		return
	}
	qa, qb := a.Quotas, b.Quotas
	if qa.Rate != qb.Rate {
		d.QuotaDeltas = append(d.QuotaDeltas, QuotaDelta{
			Tenant: "(limiter)", Field: "rate", A: int64(qa.Rate), B: int64(qb.Rate)})
	}
	if qa.Burst != qb.Burst {
		d.QuotaDeltas = append(d.QuotaDeltas, QuotaDelta{
			Tenant: "(limiter)", Field: "burst", A: int64(qa.Burst), B: int64(qb.Burst)})
	}
	byTenant := func(ts []TenantQuota) map[string]TenantQuota {
		m := make(map[string]TenantQuota, len(ts))
		for _, t := range ts {
			m[t.Tenant] = t
		}
		return m
	}
	am, bm := byTenant(qa.Tenants), byTenant(qb.Tenants)
	names := make([]string, 0, len(am)+len(bm))
	seen := make(map[string]struct{}, len(am)+len(bm))
	for _, t := range qa.Tenants {
		if _, ok := seen[t.Tenant]; !ok {
			seen[t.Tenant] = struct{}{}
			names = append(names, t.Tenant)
		}
	}
	for _, t := range qb.Tenants {
		if _, ok := seen[t.Tenant]; !ok {
			seen[t.Tenant] = struct{}{}
			names = append(names, t.Tenant)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		ta, tb := am[n], bm[n] // zero value when absent: counts read 0
		if ta.Granted != tb.Granted {
			d.QuotaDeltas = append(d.QuotaDeltas, QuotaDelta{
				Tenant: n, Field: "granted", A: int64(ta.Granted), B: int64(tb.Granted)})
		}
		if ta.Throttled != tb.Throttled {
			d.QuotaDeltas = append(d.QuotaDeltas, QuotaDelta{
				Tenant: n, Field: "throttled", A: int64(ta.Throttled), B: int64(tb.Throttled)})
		}
	}
}

func diffExperiments(d *Diff, a, b *Run) {
	if len(a.Experiments) == 0 && len(b.Experiments) == 0 {
		return
	}
	byID := func(recs []ExperimentRecord) map[string][]byte {
		m := make(map[string][]byte, len(recs))
		for _, r := range recs {
			m[r.ID] = r.Raw
		}
		return m
	}
	am, bm := byID(a.Experiments), byID(b.Experiments)
	ids := make([]string, 0, len(am)+len(bm))
	seen := make(map[string]struct{}, len(am)+len(bm))
	for _, r := range a.Experiments {
		if _, ok := seen[r.ID]; !ok {
			seen[r.ID] = struct{}{}
			ids = append(ids, r.ID)
		}
	}
	for _, r := range b.Experiments {
		if _, ok := seen[r.ID]; !ok {
			seen[r.ID] = struct{}{}
			ids = append(ids, r.ID)
		}
	}
	for _, id := range ids {
		ra, inA := am[id]
		rb, inB := bm[id]
		switch {
		case !inA:
			d.ExperimentChanges = append(d.ExperimentChanges, ExperimentChange{ID: id, Change: "only-b"})
		case !inB:
			d.ExperimentChanges = append(d.ExperimentChanges, ExperimentChange{ID: id, Change: "only-a"})
		case !bytes.Equal(ra, rb):
			d.ExperimentChanges = append(d.ExperimentChanges, ExperimentChange{ID: id, Change: "changed"})
		}
	}
}

func diffBench(d *Diff, a, b *Run) {
	if len(a.Bench) == 0 || len(b.Bench) == 0 {
		return
	}
	names := make([]string, 0, len(a.Bench))
	for n := range a.Bench {
		if _, ok := b.Bench[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		ea, eb := a.Bench[n], b.Bench[n]
		bd := BenchDelta{
			Name: n, ANsOp: ea.NsPerOp, BNsOp: eb.NsPerOp,
			AAllocs: ea.AllocsPerOp, BAllocs: eb.AllocsPerOp,
		}
		if eb.NsPerOp > 0 {
			bd.Speedup = ea.NsPerOp / eb.NsPerOp
		}
		d.BenchDeltas = append(d.BenchDeltas, bd)
	}
}
