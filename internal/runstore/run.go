package runstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/scenario"
)

// ExperimentRecord is one stored experiment result: its id plus the raw
// NDJSON line, compared byte-for-byte by the differ.
type ExperimentRecord struct {
	ID  string
	Raw json.RawMessage
}

// BenchEntry is the slice of a benchsnap-schema benchmark entry the
// differ reads.
type BenchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Run is one loaded run directory. Segments a run kind doesn't produce
// stay nil/empty; the differ only compares what both sides have.
type Run struct {
	Dir  string
	Meta Meta

	Spec     *scenario.Spec
	Months   []scenario.MonthMetrics
	Verdicts map[string]string
	Sites    []scenario.SitePlan
	Summary  *Summary

	Experiments []ExperimentRecord
	Decisions   *DecisionMix
	Quotas      *QuotaAccounting
	Bench       map[string]BenchEntry

	// Metrics is the raw end-of-run obs snapshot (metrics.json).
	Metrics []byte
}

// LoadRun reads a run by id from the store.
func (s *Store) LoadRun(id string) (*Run, error) {
	return LoadRunDir(s.RunDir(id))
}

// LoadRunDir reads a run directory — a store member or a standalone
// (e.g. checked-in golden) directory.
func LoadRunDir(dir string) (*Run, error) {
	r := &Run{Dir: dir}
	if err := readJSONFile(filepath.Join(dir, metaFile), &r.Meta); err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("runstore: %s is not a run directory (no %s)", dir, metaFile)
		}
		return nil, err
	}

	var spec scenario.Spec
	switch err := readJSONFile(filepath.Join(dir, specFile), &spec); {
	case err == nil:
		r.Spec = &spec
	case !os.IsNotExist(err):
		return nil, err
	}
	if err := readNDJSONFile(filepath.Join(dir, monthsFile), func(line []byte) error {
		var m scenario.MonthMetrics
		if err := json.Unmarshal(line, &m); err != nil {
			return err
		}
		r.Months = append(r.Months, m)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := readJSONFile(filepath.Join(dir, verdictsFile), &r.Verdicts); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	if err := readNDJSONFile(filepath.Join(dir, sitesFile), func(line []byte) error {
		var p scenario.SitePlan
		if err := json.Unmarshal(line, &p); err != nil {
			return err
		}
		r.Sites = append(r.Sites, p)
		return nil
	}); err != nil {
		return nil, err
	}
	var sum Summary
	switch err := readJSONFile(filepath.Join(dir, summaryFile), &sum); {
	case err == nil:
		r.Summary = &sum
	case !os.IsNotExist(err):
		return nil, err
	}

	if err := readNDJSONFile(filepath.Join(dir, experimentsFile), func(line []byte) error {
		var idOnly struct {
			ID string `json:"ID"`
		}
		if err := json.Unmarshal(line, &idOnly); err != nil {
			return err
		}
		r.Experiments = append(r.Experiments,
			ExperimentRecord{ID: idOnly.ID, Raw: append(json.RawMessage(nil), line...)})
		return nil
	}); err != nil {
		return nil, err
	}
	var mix DecisionMix
	switch err := readJSONFile(filepath.Join(dir, decisionsFile), &mix); {
	case err == nil:
		r.Decisions = &mix
	case !os.IsNotExist(err):
		return nil, err
	}
	var quotas QuotaAccounting
	switch err := readJSONFile(filepath.Join(dir, quotasFile), &quotas); {
	case err == nil:
		r.Quotas = &quotas
	case !os.IsNotExist(err):
		return nil, err
	}
	var bench struct {
		Benchmarks map[string]BenchEntry `json:"benchmarks"`
	}
	switch err := readJSONFile(filepath.Join(dir, benchFile), &bench); {
	case err == nil:
		r.Bench = bench.Benchmarks
	case !os.IsNotExist(err):
		return nil, err
	}

	if data, err := os.ReadFile(filepath.Join(dir, metricsFile)); err == nil {
		r.Metrics = data
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	return r, nil
}

// readJSONFile decodes one JSON segment; missing files pass the
// os.IsNotExist error through for the caller to treat as "segment
// absent".
func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("runstore: %s: %w", filepath.Base(path), err)
	}
	return nil
}

// readNDJSONFile streams an NDJSON segment line by line; a missing file
// is "segment absent", not an error.
func readNDJSONFile(path string, line func([]byte) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if err := line([]byte(text)); err != nil {
			return fmt.Errorf("runstore: %s: %w", filepath.Base(path), err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("runstore: %s: %w", filepath.Base(path), err)
	}
	return nil
}
