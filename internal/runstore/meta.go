// Package runstore is the longitudinal results store: a compact
// on-disk record of every run's semantic outputs — per-month scenario
// metrics, verdict tables, per-site policy plans, experiment results,
// policyd decision mixes, and an end-of-run obs snapshot — keyed by
// (spec hash, seed, git rev, timestamp), plus a differ that renders
// what changed between two runs or two code revisions.
//
// Layout: a store is a directory holding one subdirectory per run and
// an append-only NDJSON manifest (one Meta line per run). Within a run
// directory, each output lives in its own segment file. Semantic
// segments are written deterministically — same spec, seed, and
// revision produce byte-identical files — which is what makes the
// differ's "empty diff" result trustworthy; attribution segments
// (meta.json's timestamp, metrics.json's wall-clock histograms) are
// allowed to vary and the differ treats their drift as advisory.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Run kinds.
const (
	KindScenario    = "scenario"
	KindExperiments = "experiments"
	KindLoadgen     = "loadgen"
)

// Attribution stamps a run (or a benchmark snapshot) with where it came
// from: the code revision and the machine shape. cmd/benchsnap and
// cmd/loadgen embed it in their -o JSON; the store embeds it in every
// manifest line.
type Attribution struct {
	GitRev     string `json:"git_rev,omitempty"`
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
}

// Stamp captures the current process's attribution.
func Stamp() Attribution {
	return Attribution{
		GitRev:     GitRev(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
	}
}

// GitRev resolves the current source revision without exec'ing git:
// from the binary's embedded VCS stamp when present (installed builds),
// else by reading .git/HEAD upward from the working directory (the
// `go run` and test path, where the toolchain embeds no stamp). Returns
// "" when neither source is available.
func GitRev() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		if rev := readGitHead(filepath.Join(dir, ".git")); rev != "" {
			return rev
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// readGitHead resolves HEAD within one .git directory (or worktree
// pointer file): a detached HEAD is the hash itself; a symbolic ref is
// resolved through the loose ref file, then packed-refs.
func readGitHead(gitDir string) string {
	if fi, err := os.Stat(gitDir); err != nil {
		return ""
	} else if !fi.IsDir() {
		// Worktree: ".git" is a file containing "gitdir: <path>".
		data, err := os.ReadFile(gitDir)
		if err != nil {
			return ""
		}
		line := strings.TrimSpace(string(data))
		if !strings.HasPrefix(line, "gitdir:") {
			return ""
		}
		gitDir = strings.TrimSpace(strings.TrimPrefix(line, "gitdir:"))
	}
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return ""
	}
	line := strings.TrimSpace(string(head))
	if !strings.HasPrefix(line, "ref:") {
		return line // detached HEAD
	}
	ref := strings.TrimSpace(strings.TrimPrefix(line, "ref:"))
	if data, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return strings.TrimSpace(string(data))
	}
	packed, err := os.ReadFile(filepath.Join(gitDir, "packed-refs"))
	if err != nil {
		return ""
	}
	for _, l := range strings.Split(string(packed), "\n") {
		if hash, name, ok := strings.Cut(strings.TrimSpace(l), " "); ok && name == ref {
			return hash
		}
	}
	return ""
}

// Meta is one run's manifest entry: identity, keying, attribution, and
// a small summary for listings. It is the only place a run's wall-clock
// timestamp appears — segment files never embed one, which is what
// keeps them byte-identical across re-runs of the same (spec, seed,
// rev).
type Meta struct {
	// ID names the run directory, assigned at Begin time:
	// <UTC-timestamp>-<kind>-<spec-hash-prefix>, uniquified on collision.
	ID string `json:"id"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Name labels the run (scenario spec name, CLI name).
	Name string `json:"name"`
	// SpecHash identifies what ran: a hash of the full spec/config.
	SpecHash string `json:"spec_hash"`
	Seed     int64  `json:"seed"`
	Attribution
	Timestamp time.Time `json:"timestamp"`

	// Listing summary, filled by the writers.
	Sites   int `json:"sites,omitempty"`
	Months  int `json:"months,omitempty"`
	Visits  int `json:"visits,omitempty"`
	Records int `json:"records,omitempty"`
}

// NewMeta assembles a manifest entry for a run about to start: kind and
// name label it, seed and the hash of spec (any canonical serialization
// of what is being run, e.g. scenario.Spec.CacheKey) key it, and the
// attribution and timestamp are stamped from the current process.
func NewMeta(kind, name string, seed int64, spec string) Meta {
	return Meta{
		Kind:        kind,
		Name:        name,
		SpecHash:    HashSpec(spec),
		Seed:        seed,
		Attribution: Stamp(),
		Timestamp:   time.Now().UTC(),
	}
}

// HashSpec is the store's spec identity: a short hex SHA-256.
func HashSpec(spec string) string {
	sum := sha256.Sum256([]byte(spec))
	return hex.EncodeToString(sum[:])[:12]
}

// ShortRev abbreviates a revision hash for rendering.
func ShortRev(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}
