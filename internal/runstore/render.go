package runstore

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Render formats.
const (
	FormatText     = "text"
	FormatMarkdown = "markdown"
	FormatJSON     = "json"
)

// Render writes the diff in the given format ("text", "markdown",
// "json").
func (d *Diff) Render(w io.Writer, format string) error {
	switch format {
	case FormatJSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(d)
	case FormatText:
		return d.renderTabular(w, false)
	case FormatMarkdown:
		return d.renderTabular(w, true)
	default:
		return fmt.Errorf("runstore: unknown render format %q", format)
	}
}

// renderTabular writes the text and markdown renderings, which share
// structure: a header identifying the two runs, then one section per
// non-empty diff category.
func (d *Diff) renderTabular(w io.Writer, md bool) error {
	section := func(title string) {
		if md {
			fmt.Fprintf(w, "\n## %s\n\n", title)
		} else {
			fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
		}
	}
	table := func(header []string, rows [][]string) {
		if md {
			fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | "))
			sep := make([]string, len(header))
			for i := range sep {
				sep[i] = "---"
			}
			fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
			for _, r := range rows {
				fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
			}
			return
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, strings.Join(header, "\t"))
		for _, r := range rows {
			fmt.Fprintln(tw, strings.Join(r, "\t"))
		}
		tw.Flush()
	}

	if md {
		fmt.Fprintf(w, "# rundiff: %s vs %s\n\n", d.A.ID, d.B.ID)
	} else {
		fmt.Fprintf(w, "rundiff: %s vs %s\n", d.A.ID, d.B.ID)
	}
	describe := func(side string, m Meta) {
		fmt.Fprintf(w, "%s: %s kind=%s name=%s spec=%s seed=%d rev=%s\n",
			side, m.ID, m.Kind, m.Name, m.SpecHash, m.Seed, orNone(ShortRev(m.GitRev)))
	}
	describe("  a", d.A)
	describe("  b", d.B)

	if d.Empty() {
		fmt.Fprintf(w, "\nsemantically identical (no verdict, month, policy, mix, quota, or experiment deltas)\n")
	}

	if len(d.VerdictMigrations) > 0 {
		section(fmt.Sprintf("Verdict migrations (%d)", len(d.VerdictMigrations)))
		rows := make([][]string, 0, len(d.VerdictMigrations))
		for _, m := range d.VerdictMigrations {
			rows = append(rows, []string{m.Token, m.From, "->", m.To})
		}
		table([]string{"token", "from", "", "to"}, rows)
	}

	if len(d.MonthDeltas) > 0 {
		section(fmt.Sprintf("Month metric deltas (%d)", len(d.MonthDeltas)))
		rows := make([][]string, 0, len(d.MonthDeltas))
		for _, m := range d.MonthDeltas {
			label := m.Label
			if m.Month < 0 {
				label = "(shape)"
			}
			rows = append(rows, []string{
				label, m.Field,
				fmt.Sprint(m.A), fmt.Sprint(m.B), fmt.Sprintf("%+d", m.B-m.A),
			})
		}
		table([]string{"month", "field", "a", "b", "delta"}, rows)
	}

	if len(d.PolicyFlips) > 0 {
		total := 0
		for _, n := range d.FlipTotals {
			total += n
		}
		section(fmt.Sprintf("Policy/blocker flips (%d)", total))
		rows := make([][]string, 0, len(d.PolicyFlips))
		for _, f := range d.PolicyFlips {
			rows = append(rows, []string{f.Domain, f.Field, f.A, "->", f.B})
		}
		table([]string{"host", "field", "a", "", "b"}, rows)
		if total > len(d.PolicyFlips) {
			fmt.Fprintf(w, "\n(%d flips shown of %d; totals by field: %s)\n",
				len(d.PolicyFlips), total, formatTotals(d.FlipTotals))
		} else {
			fmt.Fprintf(w, "\n(totals by field: %s)\n", formatTotals(d.FlipTotals))
		}
	}

	if len(d.MixDeltas) > 0 {
		section(fmt.Sprintf("Decision mix shifts (%d)", len(d.MixDeltas)))
		rows := make([][]string, 0, len(d.MixDeltas))
		for _, m := range d.MixDeltas {
			rows = append(rows, []string{
				m.Action, fmt.Sprint(m.A), fmt.Sprint(m.B), fmt.Sprintf("%+d", m.B-m.A),
			})
		}
		table([]string{"action", "a", "b", "delta"}, rows)
	}

	if len(d.QuotaDeltas) > 0 {
		section(fmt.Sprintf("Tenant quota shifts (%d)", len(d.QuotaDeltas)))
		rows := make([][]string, 0, len(d.QuotaDeltas))
		for _, q := range d.QuotaDeltas {
			rows = append(rows, []string{
				q.Tenant, q.Field, fmt.Sprint(q.A), fmt.Sprint(q.B), fmt.Sprintf("%+d", q.B-q.A),
			})
		}
		table([]string{"tenant", "field", "a", "b", "delta"}, rows)
	}

	if len(d.ExperimentChanges) > 0 {
		section(fmt.Sprintf("Experiment changes (%d)", len(d.ExperimentChanges)))
		rows := make([][]string, 0, len(d.ExperimentChanges))
		for _, c := range d.ExperimentChanges {
			rows = append(rows, []string{c.ID, c.Change})
		}
		table([]string{"experiment", "change"}, rows)
	}

	if len(d.BenchDeltas) > 0 {
		section(fmt.Sprintf("Benchmark deltas (advisory, %d)", len(d.BenchDeltas)))
		rows := make([][]string, 0, len(d.BenchDeltas))
		for _, b := range d.BenchDeltas {
			rows = append(rows, []string{
				b.Name,
				fmt.Sprintf("%.0f", b.ANsOp), fmt.Sprintf("%.0f", b.BNsOp),
				fmt.Sprintf("%.2fx", b.Speedup),
				fmt.Sprint(b.AAllocs), fmt.Sprint(b.BAllocs),
			})
		}
		table([]string{"benchmark", "a ns/op", "b ns/op", "speedup", "a allocs", "b allocs"}, rows)
	}

	if len(d.MetricDeltas) > 0 {
		section(fmt.Sprintf("Obs metric drift (advisory, %d)", len(d.MetricDeltas)))
		rows := make([][]string, 0, len(d.MetricDeltas))
		for _, m := range d.MetricDeltas {
			a, b := fmt.Sprintf("%g", m.A), fmt.Sprintf("%g", m.B)
			if !m.InA {
				a = Absent
			}
			if !m.InB {
				b = Absent
			}
			rows = append(rows, []string{m.Name, a, b, fmt.Sprintf("%+g", m.Diff)})
		}
		table([]string{"metric", "a", "b", "delta"}, rows)
	}
	return nil
}

func formatTotals(totals map[string]int) string {
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, totals[k]))
	}
	return strings.Join(parts, " ")
}

// RenderList writes a one-line-per-run listing of manifest entries.
func RenderList(w io.Writer, runs []Meta) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tKIND\tNAME\tSPEC\tSEED\tREV\tSITES\tMONTHS\tVISITS\tRECORDS")
	for _, m := range runs {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%s\t%d\t%d\t%d\t%d\n",
			m.ID, m.Kind, m.Name, m.SpecHash, m.Seed, orNone(ShortRev(m.GitRev)),
			m.Sites, m.Months, m.Visits, m.Records)
	}
	tw.Flush()
}

// RenderRun writes a human summary of one loaded run.
func RenderRun(w io.Writer, r *Run) {
	m := r.Meta
	fmt.Fprintf(w, "run %s\n", m.ID)
	fmt.Fprintf(w, "  kind=%s name=%s spec=%s seed=%d\n", m.Kind, m.Name, m.SpecHash, m.Seed)
	fmt.Fprintf(w, "  rev=%s go=%s gomaxprocs=%d cpus=%d\n",
		orNone(ShortRev(m.GitRev)), m.GoVersion, m.GOMAXPROCS, m.CPUs)
	fmt.Fprintf(w, "  at %s\n", m.Timestamp.Format("2006-01-02T15:04:05Z"))
	if len(r.Months) > 0 {
		fmt.Fprintf(w, "  months=%d sites=%d visits=%d\n", len(r.Months), m.Sites, m.Visits)
	}
	if r.Summary != nil {
		fmt.Fprintf(w, "  visits=%d disallowed_bytes=%d blocked=%d\n",
			r.Summary.TotalVisits, r.Summary.TotalDisallowedBytes, r.Summary.TotalBlockedRequests)
		if len(r.Summary.VerdictClasses) > 0 {
			keys := make([]string, 0, len(r.Summary.VerdictClasses))
			for k := range r.Summary.VerdictClasses {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%d", k, r.Summary.VerdictClasses[k]))
			}
			fmt.Fprintf(w, "  verdicts: %s\n", strings.Join(parts, " "))
		}
	}
	if len(r.Experiments) > 0 {
		fmt.Fprintf(w, "  experiments=%d\n", len(r.Experiments))
	}
	if r.Decisions != nil {
		fmt.Fprintf(w, "  decisions: issued=%d allow=%d deny=%d block=%d\n",
			r.Decisions.Issued, r.Decisions.Allow, r.Decisions.Deny, r.Decisions.Block)
	}
	if len(r.Sites) > 0 {
		fmt.Fprintf(w, "  site plans stored: %d\n", len(r.Sites))
	}
	if len(r.Bench) > 0 {
		fmt.Fprintf(w, "  bench entries: %d\n", len(r.Bench))
	}
	if len(r.Metrics) > 0 {
		fmt.Fprintf(w, "  obs snapshot: %d bytes\n", len(r.Metrics))
	}
}
