package runstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Segment file names within a run directory.
const (
	manifestFile    = "manifest.ndjson"
	metaFile        = "meta.json"
	specFile        = "spec.json"
	monthsFile      = "months.ndjson"
	verdictsFile    = "verdicts.json"
	sitesFile       = "sites.ndjson"
	summaryFile     = "summary.json"
	experimentsFile = "experiments.ndjson"
	decisionsFile   = "decisions.json"
	quotasFile      = "quotas.json"
	benchFile       = "bench.json"
	metricsFile     = "metrics.json"
)

// SemanticSegments are the run-directory files covered by the
// determinism contract: the same (spec, seed, rev) must reproduce them
// byte for byte. meta.json (timestamp), metrics.json (wall-clock
// histograms), and bench.json (measured performance) are attribution
// segments and excluded.
var SemanticSegments = []string{
	specFile, monthsFile, verdictsFile, sitesFile,
	summaryFile, experimentsFile, decisionsFile, quotasFile,
}

// MaxSitePlans bounds the per-site segment: a run with more sites than
// this stores aggregate state only, so million-site runs don't pay a
// multi-megabyte sites.ndjson by default. Writers expose the knob.
const MaxSitePlans = 65536

// Store is one run-store directory. All methods are safe for concurrent
// use within a process; cross-process manifest appends rely on
// O_APPEND, and run-directory creation on mkdir atomicity.
type Store struct {
	dir string
	mu  sync.Mutex
}

// Open opens (creating if needed) a store directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir is the store's root directory.
func (s *Store) Dir() string { return s.dir }

// RunDir is the directory of a run id.
func (s *Store) RunDir(id string) string { return filepath.Join(s.dir, id) }

// begin allocates a unique run id and creates its directory. The id
// embeds the wall-clock start, kind, and spec-hash prefix; a numeric
// suffix disambiguates collisions (two runs of the same spec within a
// second).
func (s *Store) begin(meta *Meta) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := fmt.Sprintf("%s-%s-%s",
		meta.Timestamp.Format("20060102T150405Z"), meta.Kind, meta.SpecHash[:8])
	id := base
	for n := 2; ; n++ {
		err := os.Mkdir(filepath.Join(s.dir, id), 0o755)
		if err == nil {
			meta.ID = id
			return filepath.Join(s.dir, id), nil
		}
		if !os.IsExist(err) {
			return "", fmt.Errorf("runstore: %w", err)
		}
		id = fmt.Sprintf("%s-%d", base, n)
	}
}

// commit writes the run's meta.json and obs snapshot and appends the
// manifest line — the moment a run becomes visible to Runs/Resolve.
func (s *Store) commit(dir string, meta Meta) error {
	var sb strings.Builder
	if err := obs.Default.WriteJSON(&sb); err != nil {
		return fmt.Errorf("runstore: metrics snapshot: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, metricsFile), []byte(sb.String()), 0o644); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if err := writeJSONFile(filepath.Join(dir, metaFile), meta); err != nil {
		return err
	}
	line, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(filepath.Join(s.dir, manifestFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	return f.Close()
}

// abort removes a run directory that will never commit.
func (s *Store) abort(dir string) {
	if dir != "" {
		os.RemoveAll(dir)
	}
}

// Runs lists committed runs, oldest first (manifest order). Manifest
// lines whose run directory has been removed out-of-band are skipped.
func (s *Store) Runs() ([]Meta, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	var out []Meta
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var m Meta
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			return nil, fmt.Errorf("runstore: manifest: %w", err)
		}
		if _, err := os.Stat(s.RunDir(m.ID)); err != nil {
			continue
		}
		out = append(out, m)
	}
	return out, nil
}

// Resolve maps a user-supplied run reference to a manifest entry:
// "latest" (newest by timestamp, then id), an exact id, or a unique id
// prefix.
func (s *Store) Resolve(ref string) (Meta, error) {
	runs, err := s.Runs()
	if err != nil {
		return Meta{}, err
	}
	if len(runs) == 0 {
		return Meta{}, fmt.Errorf("runstore: store %s has no runs", s.dir)
	}
	if ref == "latest" {
		best := runs[0]
		for _, m := range runs[1:] {
			if m.Timestamp.After(best.Timestamp) ||
				(m.Timestamp.Equal(best.Timestamp) && m.ID > best.ID) {
				best = m
			}
		}
		return best, nil
	}
	var matches []Meta
	for _, m := range runs {
		if m.ID == ref {
			return m, nil
		}
		if strings.HasPrefix(m.ID, ref) {
			matches = append(matches, m)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return Meta{}, fmt.Errorf("runstore: no run matches %q", ref)
	default:
		ids := make([]string, len(matches))
		for i, m := range matches {
			ids[i] = m.ID
		}
		return Meta{}, fmt.Errorf("runstore: %q is ambiguous: %s", ref, strings.Join(ids, ", "))
	}
}

// GC keeps the newest `keep` runs and deletes the rest, rewriting the
// manifest atomically. It returns the ids removed.
func (s *Store) GC(keep int) ([]string, error) {
	if keep < 0 {
		keep = 0
	}
	runs, err := s.Runs()
	if err != nil {
		return nil, err
	}
	sort.Slice(runs, func(i, j int) bool {
		if !runs[i].Timestamp.Equal(runs[j].Timestamp) {
			return runs[i].Timestamp.Before(runs[j].Timestamp)
		}
		return runs[i].ID < runs[j].ID
	})
	if len(runs) <= keep {
		return nil, nil
	}
	victims, kept := runs[:len(runs)-keep], runs[len(runs)-keep:]
	removed := make([]string, 0, len(victims))
	for _, m := range victims {
		if err := os.RemoveAll(s.RunDir(m.ID)); err != nil {
			return removed, fmt.Errorf("runstore: %w", err)
		}
		removed = append(removed, m.ID)
	}
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for _, m := range kept {
		if err := enc.Encode(m); err != nil {
			return removed, fmt.Errorf("runstore: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := filepath.Join(s.dir, manifestFile+".tmp")
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		return removed, fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestFile)); err != nil {
		return removed, fmt.Errorf("runstore: %w", err)
	}
	return removed, nil
}

// Summary is a scenario run's stored run-level totals.
type Summary struct {
	TotalVisits          int   `json:"total_visits"`
	TotalDisallowedBytes int64 `json:"total_disallowed_bytes"`
	TotalBlockedRequests int   `json:"total_blocked_requests"`
	// VerdictClasses counts tokens per verdict class name.
	VerdictClasses map[string]int `json:"verdict_classes,omitempty"`
	// SitesStored is the number of per-site plan lines in sites.ndjson;
	// 0 with SitesTruncated set means the population exceeded the cap.
	SitesStored    int  `json:"sites_stored"`
	SitesTruncated bool `json:"sites_truncated,omitempty"`
}

// DecisionMix is a loadgen run's semantic output: how the issued
// decisions split by action. Counts are deterministic for a seeded
// in-process workload; latency and throughput stay out (they belong to
// the bench.json attribution segment).
type DecisionMix struct {
	Issued int64  `json:"issued"`
	Allow  int64  `json:"allow"`
	Deny   int64  `json:"deny"`
	Block  int64  `json:"block"`
	Batch  int    `json:"batch"`
	Wire   string `json:"wire,omitempty"`
}

// TenantQuota is one tenant's gateway quota ledger line. The JSON shape
// mirrors internal/fleet's accounting exactly (the segment is written
// from a /v1/quotas response body), but the type is duplicated here so
// the store stays free of serving-layer imports.
type TenantQuota struct {
	Tenant    string `json:"tenant"`
	Granted   uint64 `json:"granted"`
	Throttled uint64 `json:"throttled"`
}

// QuotaAccounting is a gateway's end-of-run per-tenant quota ledger —
// the fleet-layer semantic segment. For a seeded workload against a
// fixed limiter spec the ledger is deterministic, so cross-run diffs
// surface tenant-mix shifts the way decisions.json surfaces action-mix
// shifts.
type QuotaAccounting struct {
	Rate    float64       `json:"rate"`
	Burst   float64       `json:"burst,omitempty"`
	Tenants []TenantQuota `json:"tenants"`
}

// ScenarioWriter persists one scenario run as the engine produces it.
// It implements scenario.Observer: pass it to scenario.RunObserved or
// TierOptions.Observer, then Close. Errors during observation are
// deferred to Close (the Observer interface returns none).
type ScenarioWriter struct {
	st   *Store
	dir  string
	meta Meta
	// MaxSites caps the per-site plan segment (default MaxSitePlans);
	// set before the run finishes.
	MaxSites int

	mf     *os.File
	mw     *bufio.Writer
	enc    *json.Encoder
	err    error
	months int
	done   bool
}

// BeginScenario allocates a run directory and returns its writer.
func (s *Store) BeginScenario(meta Meta) (*ScenarioWriter, error) {
	dir, err := s.begin(&meta)
	if err != nil {
		return nil, err
	}
	return &ScenarioWriter{st: s, dir: dir, meta: meta, MaxSites: MaxSitePlans}, nil
}

// ID is the run id assigned at Begin.
func (w *ScenarioWriter) ID() string { return w.meta.ID }

// fail records the first error for Close to surface.
func (w *ScenarioWriter) fail(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// ObserveMonth appends one month line to the months segment.
func (w *ScenarioWriter) ObserveMonth(m scenario.MonthMetrics) {
	if w.err != nil {
		return
	}
	if w.mf == nil {
		f, err := os.Create(filepath.Join(w.dir, monthsFile))
		if err != nil {
			w.fail(err)
			return
		}
		w.mf = f
		w.mw = bufio.NewWriter(f)
		w.enc = json.NewEncoder(w.mw)
	}
	w.fail(w.enc.Encode(m))
	w.months++
}

// ObserveResult writes the run's spec, verdict table, summary, and
// per-site plan segments from the finished result.
func (w *ScenarioWriter) ObserveResult(r *scenario.Result) {
	if w.err != nil {
		return
	}
	w.done = true
	w.meta.Sites = r.Spec.Sites
	w.meta.Months = len(r.Months)
	w.meta.Visits = r.TotalVisits

	w.fail(writeJSONFile(filepath.Join(w.dir, specFile), r.Spec))

	verdicts := make(map[string]string, len(r.Verdicts))
	classes := make(map[string]int)
	for tok, v := range r.Verdicts {
		verdicts[tok] = v.String()
		classes[v.String()]++
	}
	w.fail(writeJSONFile(filepath.Join(w.dir, verdictsFile), verdicts))

	sum := Summary{
		TotalVisits:          r.TotalVisits,
		TotalDisallowedBytes: r.TotalDisallowedBytes,
		TotalBlockedRequests: r.TotalBlockedRequests,
		VerdictClasses:       classes,
	}
	if r.Spec.Sites <= w.MaxSites {
		plans, err := scenario.SitePlans(r.Spec)
		if err != nil {
			w.fail(err)
			return
		}
		w.fail(writeNDJSONFile(filepath.Join(w.dir, sitesFile), func(enc *json.Encoder) error {
			for _, p := range plans {
				if err := enc.Encode(p); err != nil {
					return err
				}
			}
			return nil
		}))
		sum.SitesStored = len(plans)
	} else {
		sum.SitesTruncated = true
	}
	w.fail(writeJSONFile(filepath.Join(w.dir, summaryFile), sum))
}

// Close flushes the segments and commits the run to the manifest. If
// the run never finished (no ObserveResult) or any write failed, the
// run directory is removed instead and the first error returned.
func (w *ScenarioWriter) Close() error {
	if w.mw != nil {
		w.fail(w.mw.Flush())
		w.fail(w.mf.Close())
	}
	if !w.done && w.err == nil {
		w.err = fmt.Errorf("runstore: run %s never finalized", w.meta.ID)
	}
	if w.err != nil {
		w.st.abort(w.dir)
		return w.err
	}
	if err := w.st.commit(w.dir, w.meta); err != nil {
		w.st.abort(w.dir)
		return err
	}
	return nil
}

// Abort discards the run directory without committing.
func (w *ScenarioWriter) Abort() {
	if w.mw != nil {
		w.mf.Close()
		w.mf, w.mw = nil, nil
	}
	w.st.abort(w.dir)
	w.err = fmt.Errorf("runstore: run %s aborted", w.meta.ID)
}

// SaveScenario stores a completed scenario result in one call — the
// non-streaming convenience over BeginScenario/Observe/Close.
func (s *Store) SaveScenario(meta Meta, res *scenario.Result) (string, error) {
	w, err := s.BeginScenario(meta)
	if err != nil {
		return "", err
	}
	for _, m := range res.Months {
		w.ObserveMonth(m)
	}
	w.ObserveResult(res)
	if err := w.Close(); err != nil {
		return "", err
	}
	return w.ID(), nil
}

// ExperimentsWriter persists a core experiment run as an NDJSON segment.
// It implements core.Sink, so it can tee alongside any user-facing sink:
// results arrive in deterministic registration order, making the
// segment byte-stable across re-runs.
type ExperimentsWriter struct {
	st   *Store
	dir  string
	meta Meta
	f    *os.File
	bw   *bufio.Writer
	enc  *json.Encoder
	err  error
}

var _ core.Sink = (*ExperimentsWriter)(nil)

// BeginExperiments allocates a run directory for an experiment run.
func (s *Store) BeginExperiments(meta Meta) (*ExperimentsWriter, error) {
	dir, err := s.begin(&meta)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, experimentsFile))
	if err != nil {
		s.abort(dir)
		return nil, fmt.Errorf("runstore: %w", err)
	}
	bw := bufio.NewWriter(f)
	return &ExperimentsWriter{st: s, dir: dir, meta: meta, f: f, bw: bw, enc: json.NewEncoder(bw)}, nil
}

// ID is the run id assigned at Begin.
func (w *ExperimentsWriter) ID() string { return w.meta.ID }

// Emit appends one experiment result line.
func (w *ExperimentsWriter) Emit(res *core.Result) error {
	if w.err != nil {
		return w.err
	}
	if err := w.enc.Encode(res); err != nil {
		w.err = err
		return err
	}
	w.meta.Records++
	return nil
}

// Close flushes the segment and commits the run.
func (w *ExperimentsWriter) Close() error {
	if ferr := w.bw.Flush(); w.err == nil {
		w.err = ferr
	}
	if cerr := w.f.Close(); w.err == nil {
		w.err = cerr
	}
	if w.err != nil {
		w.st.abort(w.dir)
		return w.err
	}
	if err := w.st.commit(w.dir, w.meta); err != nil {
		w.st.abort(w.dir)
		return err
	}
	return nil
}

// Abort discards the run directory without committing.
func (w *ExperimentsWriter) Abort() {
	w.f.Close()
	w.st.abort(w.dir)
	w.err = fmt.Errorf("runstore: run %s aborted", w.meta.ID)
}

// SaveLoadgen stores a loadgen run: the semantic decision mix plus an
// optional benchsnap-schema performance snapshot (attribution segment,
// used for advisory bench deltas). Runs that drove a gateway attach its
// quota ledger with SaveLoadgenQuotas.
func (s *Store) SaveLoadgen(meta Meta, mix DecisionMix, bench []byte) (string, error) {
	return s.SaveLoadgenQuotas(meta, mix, nil, bench)
}

// SaveLoadgenQuotas is SaveLoadgen plus the gateway's per-tenant quota
// ledger as a second semantic segment (quotas.json); quotas may be nil.
func (s *Store) SaveLoadgenQuotas(meta Meta, mix DecisionMix, quotas *QuotaAccounting, bench []byte) (string, error) {
	meta.Records = int(mix.Issued)
	dir, err := s.begin(&meta)
	if err != nil {
		return "", err
	}
	if err := writeJSONFile(filepath.Join(dir, decisionsFile), mix); err != nil {
		s.abort(dir)
		return "", err
	}
	if quotas != nil {
		if err := writeJSONFile(filepath.Join(dir, quotasFile), quotas); err != nil {
			s.abort(dir)
			return "", err
		}
	}
	if len(bench) > 0 {
		if err := os.WriteFile(filepath.Join(dir, benchFile), bench, 0o644); err != nil {
			s.abort(dir)
			return "", fmt.Errorf("runstore: %w", err)
		}
	}
	if err := s.commit(dir, meta); err != nil {
		s.abort(dir)
		return "", err
	}
	return meta.ID, nil
}

// writeJSONFile writes indented, key-sorted JSON (json.Marshal sorts
// map keys; struct fields keep declaration order) with a trailing
// newline — the deterministic segment encoding.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}

// writeNDJSONFile streams records through a buffered encoder.
func writeNDJSONFile(path string, fill func(*json.Encoder) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := fill(json.NewEncoder(bw)); err != nil {
		f.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}
