package runstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/scenario"
)

// testSpec is a tiny mixed world: adoption, managed uptake, blocking,
// and both compliant and non-compliant crawlers, so every semantic
// segment gets real content.
func testSpec(seed int64) scenario.Spec {
	return scenario.Spec{
		Name: "store-test", Seed: seed, Sites: 6, Months: 5, Start: "2023-08",
		Adoption: scenario.AdoptionSpec{Source: scenario.SourceCorpusOther, Multiplier: 8, PerAgentShare: 0.5},
		Crawlers: []scenario.CrawlerSpec{
			{Token: "GPTBot", Behavior: "compliant"},
			{Token: "Bytespider", Behavior: "fetch-ignore", Cadence: 2},
		},
		Manager:          scenario.ManagerSpec{Uptake: 0.5},
		Blocking:         scenario.BlockingSpec{Share: 0.5, StartMonth: 2, RefreshMonthly: true},
		MaxPagesPerCrawl: 3,
	}
}

// storeRun runs a spec through the observer pipeline into the store and
// returns the run id.
func storeRun(t *testing.T, st *Store, spec scenario.Spec) string {
	t.Helper()
	w, err := st.BeginScenario(NewMeta(KindScenario, spec.Name, spec.Seed, spec.CacheKey()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.RunObserved(context.Background(), spec, 2, w); err != nil {
		w.Abort()
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return w.ID()
}

// TestDeterministicSegments is the store's core contract: two runs of
// the same (spec, seed) produce byte-identical semantic segments and an
// empty semantic diff.
func TestDeterministicSegments(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(7)
	idA := storeRun(t, st, spec)
	idB := storeRun(t, st, spec)
	if idA == idB {
		t.Fatalf("run ids collided: %s", idA)
	}

	for _, seg := range SemanticSegments {
		a, errA := os.ReadFile(filepath.Join(st.RunDir(idA), seg))
		b, errB := os.ReadFile(filepath.Join(st.RunDir(idB), seg))
		if os.IsNotExist(errA) && os.IsNotExist(errB) {
			continue // segment not produced by this run kind
		}
		if errA != nil || errB != nil {
			t.Fatalf("%s: %v / %v", seg, errA, errB)
		}
		if string(a) != string(b) {
			t.Errorf("segment %s differs between identical runs", seg)
		}
	}

	ra, err := st.LoadRun(idA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := st.LoadRun(idB)
	if err != nil {
		t.Fatal(err)
	}
	d := DiffRuns(ra, rb)
	if !d.Empty() {
		t.Errorf("identical runs produced a non-empty semantic diff: %+v", d)
	}
}

// TestForcedPolicyFlip pins both worlds with explicit adoption curves —
// nobody adopts vs everybody adopts at month 0 — and checks the diff
// reports exactly the expected per-site flips.
func TestForcedPolicyFlip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	none := testSpec(7)
	none.Adoption = scenario.AdoptionSpec{Curve: []float64{0}, PerAgentShare: 0.5}
	all := testSpec(7)
	all.Adoption = scenario.AdoptionSpec{Curve: []float64{1}, PerAgentShare: 0.5}

	ra, err := st.LoadRun(storeRun(t, st, none))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := st.LoadRun(storeRun(t, st, all))
	if err != nil {
		t.Fatal(err)
	}
	d := DiffRuns(ra, rb)
	if d.Empty() {
		t.Fatal("counterfactual pair produced an empty diff")
	}

	// The expected flips are exactly the plan differences: sites whose
	// adoptRoll clears the (0.98-capped) full-adoption curve flip from
	// never-adopts to month 0 and gain a style; blocker draws are
	// unchanged (same seed, same draw order).
	plansA, err := scenario.SitePlans(none)
	if err != nil {
		t.Fatal(err)
	}
	plansB, err := scenario.SitePlans(all)
	if err != nil {
		t.Fatal(err)
	}
	wantFlips := 0
	for i := range plansA {
		if plansA[i].AdoptMonth != plansB[i].AdoptMonth {
			wantFlips++
		}
	}
	if wantFlips == 0 {
		t.Fatal("counterfactual specs produced identical site plans")
	}
	if got := d.FlipTotals["adopt_month"]; got != wantFlips {
		t.Errorf("adopt_month flips = %d, want %d", got, wantFlips)
	}
	if got := d.FlipTotals["style"]; got != wantFlips {
		t.Errorf("style flips = %d, want %d", got, wantFlips)
	}
	if got := d.FlipTotals["blocker"]; got != 0 {
		t.Errorf("blocker flips = %d, want 0 (same seed)", got)
	}
	for _, f := range d.PolicyFlips {
		if f.Field == "adopt_month" && (f.A != "-1" || f.B != "0") {
			t.Errorf("site %d adopt_month flip %s -> %s, want -1 -> 0", f.Site, f.A, f.B)
		}
	}
	if len(d.MonthDeltas) == 0 {
		t.Error("expected month-metric deltas between no-adoption and full-adoption worlds")
	}
	// The compliant crawler's byte mix must shift once robots.txt
	// appears everywhere.
	if ra.Summary.TotalDisallowedBytes == rb.Summary.TotalDisallowedBytes &&
		ra.Summary.TotalVisits == rb.Summary.TotalVisits {
		t.Error("summaries identical across the counterfactual")
	}
}

// TestVerdictMigrationDiff checks the verdict table differ directly on
// synthetic runs, including tokens present on only one side.
func TestVerdictMigrationDiff(t *testing.T) {
	a := &Run{Meta: Meta{ID: "a"}, Verdicts: map[string]string{
		"GPTBot": "respects robots.txt", "Bytespider": "fetches but ignores robots.txt",
		"OldBot": "respects robots.txt",
	}}
	b := &Run{Meta: Meta{ID: "b"}, Verdicts: map[string]string{
		"GPTBot": "respects robots.txt", "Bytespider": "does not fetch robots.txt",
		"NewBot": "respects robots.txt",
	}}
	d := DiffRuns(a, b)
	want := []VerdictMigration{
		{Token: "Bytespider", From: "fetches but ignores robots.txt", To: "does not fetch robots.txt"},
		{Token: "NewBot", From: Absent, To: "respects robots.txt"},
		{Token: "OldBot", From: "respects robots.txt", To: Absent},
	}
	if len(d.VerdictMigrations) != len(want) {
		t.Fatalf("got %d migrations, want %d: %+v", len(d.VerdictMigrations), len(want), d.VerdictMigrations)
	}
	for i, m := range d.VerdictMigrations {
		if m != want[i] {
			t.Errorf("migration[%d] = %+v, want %+v", i, m, want[i])
		}
	}
}

// TestConcurrentWriters exercises the store's locking: many goroutines
// persisting runs into one store must all commit, with distinct ids and
// a complete manifest. Run under -race.
func TestConcurrentWriters(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mix := DecisionMix{Issued: int64(100 + i), Allow: int64(90 + i), Deny: 5, Block: 5, Batch: 1, Wire: "json"}
			id, err := st.SaveLoadgen(NewMeta(KindLoadgen, fmt.Sprintf("w%d", i), int64(i), fmt.Sprintf("spec-%d", i)), mix, nil)
			ids[i], errs[i] = id, err
		}(i)
	}
	wg.Wait()
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("writer %d: %v", i, errs[i])
		}
		if seen[ids[i]] {
			t.Fatalf("duplicate run id %s", ids[i])
		}
		seen[ids[i]] = true
	}
	runs, err := st.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != n {
		t.Fatalf("manifest holds %d runs, want %d", len(runs), n)
	}
}

// TestResolveAndGC covers ref resolution and retention.
func TestResolveAndGC(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := st.SaveLoadgen(NewMeta(KindLoadgen, "gc", int64(i), fmt.Sprintf("gc-%d", i)),
			DecisionMix{Issued: 1, Allow: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	if m, err := st.Resolve(ids[1]); err != nil || m.ID != ids[1] {
		t.Fatalf("Resolve(exact) = %v, %v", m.ID, err)
	}
	latest, err := st.Resolve("latest")
	if err != nil {
		t.Fatal(err)
	}
	if latest.ID != ids[2] {
		t.Fatalf("Resolve(latest) = %s, want %s", latest.ID, ids[2])
	}
	if _, err := st.Resolve("no-such-run"); err == nil {
		t.Fatal("Resolve of unknown ref succeeded")
	}

	removed, err := st.GC(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("GC removed %d runs, want 2: %v", len(removed), removed)
	}
	runs, err := st.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].ID != latest.ID {
		t.Fatalf("after GC: %+v, want only %s", runs, latest.ID)
	}
	if _, err := os.Stat(st.RunDir(removed[0])); !os.IsNotExist(err) {
		t.Fatalf("gc'd run dir still exists: %v", err)
	}
}

// TestMixAndBenchDiff covers the loadgen segments end to end: decision
// mixes diff semantically, bench snapshots diff advisorily.
func TestMixAndBenchDiff(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bench := []byte(`{"schema":"repro-benchsnap/1","benchmarks":{"policyd_loadgen_inproc":{"ns_per_op":100,"allocs_per_op":0}}}`)
	benchB := []byte(`{"schema":"repro-benchsnap/1","benchmarks":{"policyd_loadgen_inproc":{"ns_per_op":50,"allocs_per_op":0}}}`)
	idA, err := st.SaveLoadgen(NewMeta(KindLoadgen, "mix", 1, "mix-spec"),
		DecisionMix{Issued: 100, Allow: 80, Deny: 15, Block: 5, Batch: 1, Wire: "json"}, bench)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := st.SaveLoadgen(NewMeta(KindLoadgen, "mix", 1, "mix-spec"),
		DecisionMix{Issued: 100, Allow: 70, Deny: 20, Block: 10, Batch: 1, Wire: "json"}, benchB)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := st.LoadRun(idA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := st.LoadRun(idB)
	if err != nil {
		t.Fatal(err)
	}
	d := DiffRuns(ra, rb)
	if len(d.MixDeltas) != 3 {
		t.Fatalf("mix deltas = %+v, want allow/deny/block shifts", d.MixDeltas)
	}
	if len(d.BenchDeltas) != 1 || d.BenchDeltas[0].Speedup != 2 {
		t.Fatalf("bench deltas = %+v, want one 2.00x entry", d.BenchDeltas)
	}
	// Bench drift alone must not make the diff semantically non-empty.
	rb.Decisions = ra.Decisions
	if d := DiffRuns(ra, rb); !d.Empty() {
		t.Errorf("bench-only difference counted as semantic: %+v", d)
	}
}

// TestLoadRunDirRejectsNonRun guards the golden-dir path in CI: a
// directory without meta.json is an explicit error, not a zero Run.
func TestLoadRunDirRejectsNonRun(t *testing.T) {
	if _, err := LoadRunDir(t.TempDir()); err == nil {
		t.Fatal("LoadRunDir on an empty directory succeeded")
	}
}
