package scenario

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/agents"
	"repro/internal/blocking"
	"repro/internal/measure"
	"repro/internal/robots"
	"repro/internal/stats"
	"repro/internal/useragent"
	"repro/internal/webserver"
)

// The tiered engine's long-tail representation. A full-fidelity site
// costs a live webserver, crawler instances, an event heap, and a log;
// a long-tail site costs ~11 bytes of flat columnar state — one array
// per field indexed by dense site id — because everything else about a
// site's month is derivable: its policy is one of a handful of interned
// renderings, its blocker rule list is a function of the month, and its
// crawl schedule follows from the roster alone.

// bitset is a flat bit array indexed by dense site id.
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }

// tailState is the whole site population in columnar form. Workers own
// disjoint contiguous site ranges aligned to 64-site boundaries, so the
// arrays — bitsets included — are shared without locks.
type tailState struct {
	n          int
	adoptMonth []int16  // month the site adopts; -1 = never
	frozen     []uint16 // hand-written list size at adoption
	policyID   []uint16 // current policy (policies index); 0 = none
	waves      []uint32 // crawl waves absorbed so far (tail + hot)

	perAgent  bitset // writes a per-agent list rather than wildcard
	managed   bitset // delegates the list to the managed service
	blocker   bitset // behind the active-blocking provider
	adopted   bitset // policy currently published
	blockerOn bitset // provider blocking currently enabled
	hot       bitset // currently simulated at full fidelity
}

func newTailState(n int) *tailState {
	return &tailState{
		n:          n,
		adoptMonth: make([]int16, n),
		frozen:     make([]uint16, n),
		policyID:   make([]uint16, n),
		waves:      make([]uint32, n),
		perAgent:   newBitset(n),
		managed:    newBitset(n),
		blocker:    newBitset(n),
		adopted:    newBitset(n),
		blockerOn:  newBitset(n),
		hot:        newBitset(n),
	}
}

// bytes reports the steady-state columnar footprint.
func (t *tailState) bytes() int {
	return 2*len(t.adoptMonth) + 2*len(t.frozen) + 2*len(t.policyID) + 4*len(t.waves) +
		8*(len(t.perAgent)+len(t.managed)+len(t.blocker)+len(t.adopted)+len(t.blockerOn)+len(t.hot))
}

// policyDef is one interned robots.txt policy: the rendered body, its
// parsed form, and a per-agent decision bitset — bit r set when the
// policy restricts roster token r at the root. The bits are compiled
// once per (policy, fleet) like a policyd snapshot shard, so the tail
// replay path answers "does this policy apply to this crawler" with a
// single bit probe instead of walking robots groups.
type policyDef struct {
	body      string
	parsed    *robots.Robots
	restricts bitset
}

// blockerDef is one interned provider rule list; every blocker-enabled
// site shares the month's immutable instance.
type blockerDef struct {
	patterns []string
	blocker  webserver.Blocker
}

// tierWorld is everything the tiered engine precomputes once per run —
// O(months + roster), independent of site count: interned policies and
// blocker rule lists, per-month derived ids, and the roster's observable
// identity.
type tierWorld struct {
	sp     Spec
	start  time.Time
	roster []resolvedCrawler

	// tokens interns the product tokens roster traffic is logged under;
	// tokenIndex inverts it, rosterToken maps roster entries into it.
	tokens      []string
	tokenIndex  map[string]int
	rosterToken []int

	policies []policyDef // index 0: no robots.txt
	// wildcardID and measurementID are the date-free adoption styles;
	// managedID/frozenID vary by month because their rendered bodies
	// embed the rule-list date.
	wildcardID        uint16
	measurementID     uint16
	measurementFrozen uint16
	managedID         []uint16
	frozenID          []uint16
	frozenCount       []uint16

	// blockers holds the interned provider rule lists (index 0: none);
	// blockerID[m] is the list a rollout or refresh at month m installs,
	// announced[m] the announced-agent count the gap metric uses.
	blockers  []blockerDef
	blockerID []uint16
	announced []int
}

// newTierWorld precomputes the run's interned policy and blocker
// universe. Policy bodies come from four renderers, two of them dated,
// so the table holds at most 2+2*months entries however many sites run.
func newTierWorld(sp Spec, roster []resolvedCrawler, start time.Time) *tierWorld {
	w := &tierWorld{sp: sp, start: start, roster: roster}

	w.tokenIndex = make(map[string]int)
	w.rosterToken = make([]int, len(roster))
	for r, rc := range roster {
		tok := measure.ProductToken(useragent.FullUA(rc.spec.Token, "1.0"))
		id, ok := w.tokenIndex[tok]
		if !ok {
			id = len(w.tokens)
			w.tokens = append(w.tokens, tok)
			w.tokenIndex[tok] = id
		}
		w.rosterToken[r] = id
	}

	w.policies = []policyDef{{}}
	byBody := make(map[string]uint16)
	intern := func(body string) uint16 {
		if id, ok := byBody[body]; ok {
			return id
		}
		parsed := robots.ParseCached(body)
		def := policyDef{body: body, parsed: parsed, restricts: newBitset(len(w.tokens))}
		for t, tok := range w.tokens {
			if !parsed.Allowed(tok, "/") {
				def.restricts.set(t)
			}
		}
		id := uint16(len(w.policies))
		w.policies = append(w.policies, def)
		byBody[body] = id
		return id
	}

	w.wildcardID = intern("User-agent: *\nDisallow: /\n")
	mb := robots.NewBuilder()
	for _, tok := range agents.Tokens() {
		mb.Group(tok).DisallowAll()
	}
	w.measurementID = intern(mb.String())
	w.measurementFrozen = uint16(len(agents.Tokens()))

	M := sp.Months
	w.managedID = make([]uint16, M)
	w.frozenID = make([]uint16, M)
	w.frozenCount = make([]uint16, M)
	w.announced = make([]int, M)
	w.blockerID = make([]uint16, M)
	w.blockers = []blockerDef{{}}
	byPatterns := make(map[string]uint16)
	for m := 0; m < M; m++ {
		now := start.AddDate(0, m, 0)
		w.managedID[m] = intern(blockAll.Render(now))

		frozen := blockAll.BlockedAgents(now)
		w.frozenCount[m] = uint16(len(frozen))
		w.announced[m] = len(frozen)
		fb := robots.NewBuilder()
		fb.Comment("hand-maintained robots.txt — list written " + now.Format("2006-01-02"))
		if len(frozen) > 0 {
			fb.Group(frozen...).DisallowAll()
		}
		fb.Group("*").Disallow()
		w.frozenID[m] = intern(fb.String())

		var patterns []string
		for _, a := range agents.RealCrawlers() {
			if agents.AnnouncedBy(a.UserAgent, now) {
				patterns = append(patterns, a.UserAgent)
			}
		}
		key := strings.Join(patterns, "\n")
		id, ok := byPatterns[key]
		if !ok {
			id = uint16(len(w.blockers))
			w.blockers = append(w.blockers, blockerDef{
				patterns: patterns,
				blocker:  &blocking.UABlocker{Patterns: patterns, Style: blocking.StyleForbidden},
			})
			byPatterns[key] = id
		}
		w.blockerID[m] = id
	}
	return w
}

// activeBlockerID is the provider rule list in force at month m for a
// site whose blocking is enabled: frozen at the rollout month, or the
// month's own list under monthly refresh.
func (w *tierWorld) activeBlockerID(m int) uint16 {
	bm := w.sp.Blocking.StartMonth
	if w.sp.Blocking.RefreshMonthly && m > bm {
		bm = m
	}
	return w.blockerID[bm]
}

// restrictsFunc returns the root-restriction predicate for a policy id,
// answered from the precompiled per-agent decision bits, plus the parsed
// policy for per-path checks. Tokens outside the interned fleet (none in
// practice — only roster crawlers generate traffic) fall back to a live
// robots walk so the predicate stays exact.
func (w *tierWorld) restrictsFunc(pid uint16) (func(string) bool, *robots.Robots) {
	if pid == 0 {
		return func(string) bool { return false }, nil
	}
	pol := &w.policies[pid]
	return func(tok string) bool {
		if t, ok := w.tokenIndex[tok]; ok {
			return pol.restricts.get(t)
		}
		return !pol.parsed.Allowed(tok, "/")
	}, pol.parsed
}

// planSite fills site i's columnar state from its private RNG stream:
// the same four draws, in the same order, as the full engine's runSite,
// from the seed Fork would have derived. The source is transient — at a
// million sites, holding every fork live would cost gigabytes of
// generator state for four Float64s each.
func (w *tierWorld) planSite(t *tailState, i int, seed int64, curve []float64) {
	rn := stats.NewRand(seed)
	adoptRoll := rn.Float64()
	perAgentRoll := rn.Float64()
	managedRoll := rn.Float64()
	blockedRoll := rn.Float64()

	adoptMonth := -1
	perAgent, managed := false, false
	switch w.sp.Adoption.Source {
	case SourceMeasurement:
		adoptMonth = 0
		perAgent = i%2 == 1
	case SourceNone:
	default:
		for m, target := range curve {
			if adoptRoll < target {
				adoptMonth = m
				break
			}
		}
		perAgent = perAgentRoll < w.sp.Adoption.PerAgentShare
		managed = adoptMonth >= 0 && perAgent && managedRoll < w.sp.Manager.Uptake
	}
	t.adoptMonth[i] = int16(adoptMonth)
	if perAgent {
		t.perAgent.set(i)
	}
	if managed {
		t.managed.set(i)
	}
	if blockedRoll < w.sp.Blocking.Share {
		t.blocker.set(i)
	}
}

// waveIndex reports whether roster entry cs has a crawl wave at month m
// and, if so, which visit in its per-site schedule it is (0-based). The
// full engine's visit chain is fully derivable — visits fall at
// FirstMonth + k*Cadence while k stays under MaxVisits and the month
// within [FirstMonth, LastMonth] — so the tail needs no stored event
// heap: each worker walks its implicit, already-sharded schedule.
func waveIndex(cs CrawlerSpec, m int) (int, bool) {
	if m < cs.FirstMonth || m > cs.LastMonth {
		return 0, false
	}
	d := m - cs.FirstMonth
	if d%cs.Cadence != 0 {
		return 0, false
	}
	k := d / cs.Cadence
	if cs.MaxVisits > 0 && k >= cs.MaxVisits {
		return 0, false
	}
	return k, true
}

// domainDigits is the digit width of site i's domain name. Scenario
// domains are fmt.Sprintf("site-%05d.scenario.test", i): the served "/"
// page embeds absolute self-links, so response byte counts depend on the
// domain's length and the wave cache keys on it.
func domainDigits(i int) uint8 {
	if d := len(strconv.Itoa(i)); d > 5 {
		return uint8(d)
	}
	return 5
}
