package scenario

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/crawler"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/webserver"
)

// RunTiered executes the scenario on the tiered engine: a hot cohort
// simulated at full fidelity (live farm-hosted webservers, real netsim
// HTTP) and a long tail advanced on the compiled fast path (columnar
// state + the wave cache), with deterministic promotion and demotion
// between tiers.
//
// The output contract is strict: RunTiered is bit-identical to Run for
// the same spec — not just on the hot cohort but on the entire Result —
// at any HotSites value and any worker count. That holds because the
// wave cache memoizes real execution keyed on everything a wave can
// observe, monthly flushes are order-free integer folds, and per-site
// randomness comes from sequentially derived seeds exactly as Run
// derives its forks. The parity suite enforces it.
//
// Unlike Run's dynamically claimed shards, each worker owns one static
// contiguous site range and advances it month-major — the event queue,
// sharded per worker, exists only implicitly: policy transitions and
// crawl waves are computed from (site, month) on the fly, so month
// advancement is embarrassingly parallel with no cross-worker barrier.
func RunTiered(ctx context.Context, spec Spec, opts TierOptions) (*Result, error) {
	if obs.Enabled() {
		defer mRunWallNS.ObserveSince(time.Now())
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sp := spec.withDefaults()
	roster, err := resolveRoster(sp)
	if err != nil {
		return nil, err
	}
	if len(roster) > 255 {
		return nil, fmt.Errorf("scenario %s: tiered mode supports at most 255 roster entries", sp.Name)
	}
	start := sp.startDate()
	curve := sp.monthlyCurve()
	world := newTierWorld(sp, roster, start)

	hot := opts.HotSites
	if hot < 0 {
		hot = 0
	}
	if hot > sp.Sites {
		hot = sp.Sites
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > sp.Sites {
		workers = sp.Sites
	}

	// Seeds are derived sequentially in site order — the exact stream
	// Run's Fork loop consumes — then handed to workers, which is what
	// keeps per-site randomness identical to the full engine and across
	// worker counts.
	root := stats.NewRand(sp.Seed).Fork("scenario")
	seeds := make([]int64, sp.Sites)
	for i := range seeds {
		seeds[i] = root.ForkSeed(fmt.Sprintf("site-%d", i))
	}

	tail := newTailState(sp.Sites)
	cache := &waveCache{m: make(map[waveKey]waveEffect)}

	// Shard boundaries are rounded down to 64-site multiples so the
	// columnar bitsets partition cleanly: no two workers ever touch the
	// same word, so the arrays need no locks (and no atomics).
	cuts := make([]int, workers+1)
	for wi := 1; wi < workers; wi++ {
		cuts[wi] = (wi * sp.Sites / workers) &^ 63
	}
	cuts[workers] = sp.Sites

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ws := make([]*tierWorker, workers)
	for wi := range ws {
		w, err := newTierWorker(world, tail, cache, curve, hot,
			cuts[wi], cuts[wi+1])
		if err != nil {
			for _, prev := range ws[:wi] {
				prev.close()
			}
			return nil, err
		}
		ws[wi] = w
	}
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for _, w := range ws {
		wg.Add(1)
		go func(w *tierWorker) {
			defer wg.Done()
			defer w.close()
			if err := w.run(runCtx, seeds); err != nil {
				errOnce.Do(func() { firstErr = err; cancel() })
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Merge worker accumulators in shard order; all integer adds, so the
	// result is independent of scheduling and worker count.
	res := newResult(sp, start)
	evidence := make(map[string]measure.Evidence)
	var ts TierStats
	for _, w := range ws {
		for m := range w.months {
			res.Months[m].add(w.months[m])
		}
		for tok, ev := range w.evidence {
			evidence[tok] = evidence[tok].Merge(ev)
		}
		ts.HotSiteMonths += w.stats.HotSiteMonths
		ts.ColdSiteMonths += w.stats.ColdSiteMonths
		ts.Promotions += w.stats.Promotions
		ts.Demotions += w.stats.Demotions
		ts.CompiledWaves += w.stats.CompiledWaves
		ts.ReplayedWaves += w.stats.ReplayedWaves
	}
	res.finalize(evidence, opts.Observer)

	if opts.Stats != nil {
		ts.DistinctPolicies = len(world.policies) - 1
		ts.DistinctBlockers = len(world.blockers) - 1
		ts.WaveClasses = len(cache.m)
		ts.ColumnarBytes = tail.bytes()
		*opts.Stats = ts
	}
	return res, nil
}

// TierOptions configures RunTiered.
type TierOptions struct {
	// HotSites pins the first k sites to full-fidelity simulation for
	// the whole run (the hot cohort). Long-tail sites are still promoted
	// for their state-transition months. 0 means no pinned cohort.
	HotSites int
	// Workers is the number of static site shards, each advanced by its
	// own goroutine; 0 means GOMAXPROCS. The result does not depend on
	// it.
	Workers int
	// Stats, when non-nil, receives the run's tier accounting.
	Stats *TierStats
	// Observer, when non-nil, receives the merged months and finished
	// result from the finalize path, exactly as RunObserved delivers
	// them for the full engine.
	Observer Observer
}

// TierStats reports how a tiered run split its work. Site-month and
// promotion counts are deterministic; the compiled/replayed split can
// shift between runs when workers race to compile the same wave class.
type TierStats struct {
	HotSiteMonths  int // site-months at full fidelity
	ColdSiteMonths int // site-months on the compiled fast path
	Promotions     int // cold→hot transitions after month 0
	Demotions      int // hot→cold transitions

	CompiledWaves    int // cache misses executed for real
	ReplayedWaves    int // tail waves answered from the cache
	WaveClasses      int // distinct wave situations encountered
	DistinctPolicies int // interned robots.txt policies
	DistinctBlockers int // interned provider rule lists

	ColumnarBytes int // steady-state long-tail state footprint
}

// BytesPerSite is the columnar footprint per site.
func (s TierStats) BytesPerSite(sites int) float64 {
	if sites == 0 {
		return 0
	}
	return float64(s.ColumnarBytes) / float64(sites)
}

// tierWorker advances one contiguous site range through every month. It
// owns a live farm for hot site-months, a scratch compiler for wave
// cache misses, and per-worker accumulators merged after the join.
type tierWorker struct {
	world    *tierWorld
	tail     *tailState
	cache    *waveCache
	local    map[waveKey]waveEffect // lock-free L1 over cache
	curve    []float64
	hotSites int
	lo, hi   int

	compiler *waveCompiler
	hotNW    *netsim.Network
	hotFarm  *webserver.Farm

	months    []MonthMetrics
	evidence  map[string]measure.Evidence
	evScratch []measure.Evidence // per-site-month, indexed by token id
	touched   []int32
	stats     TierStats
}

func newTierWorker(world *tierWorld, tail *tailState, cache *waveCache,
	curve []float64, hotSites, lo, hi int) (*tierWorker, error) {
	compiler, err := newWaveCompiler(world)
	if err != nil {
		return nil, err
	}
	hotNW := netsim.New()
	hotFarm, err := webserver.NewFarm(hotNW, siteIP)
	if err != nil {
		compiler.close()
		return nil, err
	}
	return &tierWorker{
		world:     world,
		tail:      tail,
		cache:     cache,
		local:     make(map[waveKey]waveEffect),
		curve:     curve,
		hotSites:  hotSites,
		lo:        lo,
		hi:        hi,
		compiler:  compiler,
		hotNW:     hotNW,
		hotFarm:   hotFarm,
		months:    make([]MonthMetrics, world.sp.Months),
		evidence:  make(map[string]measure.Evidence),
		evScratch: make([]measure.Evidence, len(world.tokens)),
	}, nil
}

func (w *tierWorker) close() {
	w.compiler.close()
	w.hotFarm.Close()
}

// run plans the shard's sites, then advances them month-major: the
// columnar arrays are walked sequentially per month, so the common
// (cold) case is a cache-friendly linear scan.
func (w *tierWorker) run(ctx context.Context, seeds []int64) error {
	for i := w.lo; i < w.hi; i++ {
		w.world.planSite(w.tail, i, seeds[i], w.curve)
	}
	for m := 0; m < w.world.sp.Months; m++ {
		for i := w.lo; i < w.hi; i++ {
			if i&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := w.advance(ctx, i, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// hotFor decides site i's tier for month m. The pinned cohort stays
// hot; a long-tail site is promoted for exactly the months where its
// observable state transitions originate — its adoption month and the
// blocking provider's rollout month — and demoted after. The rule reads
// only site-local columnar state, so tier decisions never serialize
// workers; and because the fast path is exact, the choice affects cost,
// never output.
func (w *tierWorker) hotFor(i, m int) bool {
	if i < w.hotSites {
		return true
	}
	if int(w.tail.adoptMonth[i]) == m {
		return true
	}
	return w.tail.blocker.get(i) && m == w.world.sp.Blocking.StartMonth
}

func (w *tierWorker) advance(ctx context.Context, i, m int) error {
	hot := w.hotFor(i, m)
	if wasHot := w.tail.hot.get(i); hot != wasHot {
		if hot {
			w.tail.hot.set(i)
			if m > 0 {
				w.stats.Promotions++
				mTierPromotions.Inc()
			}
		} else {
			w.tail.hot.clear(i)
			w.stats.Demotions++
			mTierDemotions.Inc()
		}
	}
	if hot {
		w.stats.HotSiteMonths++
		mTierHotSiteMonths.Inc()
		return w.runHotMonth(ctx, i, m)
	}
	w.stats.ColdSiteMonths++
	mTierColdSiteMonths.Inc()
	return w.runColdMonth(ctx, i, m)
}

// applyMonthState applies month m's policy and blocker events to site
// i's columnar state, in the same prioPolicy < prioBlocking order the
// full engine's event queue guarantees. Crawl waves always run after
// both (prioVisit), so the post-event state is the state every wave
// observes.
func (w *tierWorker) applyMonthState(i, m int) {
	t, world := w.tail, w.world
	if int(t.adoptMonth[i]) == m {
		t.adopted.set(i)
		switch {
		case !t.perAgent.get(i):
			t.policyID[i] = world.wildcardID
		case world.sp.Adoption.Source == SourceMeasurement:
			t.policyID[i] = world.measurementID
			t.frozen[i] = world.measurementFrozen
		case t.managed.get(i):
			t.policyID[i] = world.managedID[m]
		default:
			t.policyID[i] = world.frozenID[m]
			t.frozen[i] = world.frozenCount[m]
		}
	} else if t.adopted.get(i) && t.managed.get(i) && m > int(t.adoptMonth[i]) {
		t.policyID[i] = world.managedID[m]
	}
	if t.blocker.get(i) && m >= world.sp.Blocking.StartMonth {
		t.blockerOn.set(i)
	}
}

// effect resolves one wave situation: worker-local L1, then the shared
// cache, then a real compile on the scratch farm.
func (w *tierWorker) effect(ctx context.Context, key waveKey) (waveEffect, error) {
	if eff, ok := w.local[key]; ok {
		return eff, nil
	}
	eff, ok := w.cache.get(key)
	if !ok {
		compiled, err := w.compiler.compile(ctx, key)
		if err != nil {
			return waveEffect{}, err
		}
		eff = w.cache.put(key, compiled)
		w.stats.CompiledWaves++
	}
	w.local[key] = eff
	return eff, nil
}

// runColdMonth advances one long-tail site-month: O(roster) columnar
// reads, cached wave effects, and an integer flush — no HTTP, no
// allocation beyond first-touch scratch growth.
func (w *tierWorker) runColdMonth(ctx context.Context, i, m int) error {
	w.applyMonthState(i, m)
	t, world := w.tail, w.world
	var d MonthMetrics

	pid := t.policyID[i]
	bid := uint16(0)
	if t.blockerOn.get(i) {
		bid = world.activeBlockerID(m)
	}
	dg := domainDigits(i)
	for r := range world.roster {
		rc := &world.roster[r]
		if rc.spec.SiteLimit > 0 && i >= rc.spec.SiteLimit {
			continue
		}
		k, due := waveIndex(rc.spec, m)
		if !due {
			continue
		}
		eff, err := w.effect(ctx, waveKey{
			roster:  uint8(r),
			phase:   wavePhase(rc.behavior, k),
			policy:  pid,
			blocker: bid,
			digits:  dg,
		})
		if err != nil {
			return err
		}
		w.stats.ReplayedWaves++
		mTierReplayedWaves.Inc()
		d.Visits++
		t.waves[i]++
		d.RobotsFetches += int(eff.robotsFetches)
		d.BlockedRequests += int(eff.blockedRequests)
		d.DisallowedBytes += eff.disallowedBytes
		d.AllowedBytes += eff.allowedBytes
		if eff.token >= 0 {
			if w.evScratch[eff.token] == (measure.Evidence{}) {
				w.touched = append(w.touched, eff.token)
			}
			w.evScratch[eff.token] = w.evScratch[eff.token].Merge(eff.ev)
		}
	}
	// Flush-equivalent: classify this site-month's per-token evidence
	// (windowEv entries are never zero, so touched is exact) and fold the
	// policy-state counters from columnar state.
	for _, tk := range w.touched {
		ev := w.evScratch[tk]
		d.ClassCounts[measure.ClassifyEvidence(ev)]++
		tok := world.tokens[tk]
		w.evidence[tok] = w.evidence[tok].Merge(ev)
		w.evScratch[tk] = measure.Evidence{}
	}
	w.touched = w.touched[:0]
	w.monthStateCounters(i, m, &d)
	w.months[m].add(d)
	return nil
}

// runHotMonth simulates one site-month at full fidelity: a live
// farm-hosted site reconstructed from columnar state, real crawler
// instances advanced to their schedule position, real netsim HTTP, and
// a flush from the real request log. Hot hosting is stateless across
// months — the site is started and removed per month, since its entire
// observable state (policy body, blocker list, crawler visit phase) is
// derivable from the columns.
func (w *tierWorker) runHotMonth(ctx context.Context, i, m int) error {
	t, world := w.tail, w.world
	w.applyMonthState(i, m)

	domain := SiteDomain(i)
	site, err := w.hotFarm.StartSite(webserver.Config{
		Domain: domain,
		IP:     siteIP,
		Pages:  webserver.ContentPages(domain),
	})
	if err != nil {
		return err
	}
	defer site.Close()
	if pid := t.policyID[i]; pid != 0 {
		body := world.policies[pid].body
		site.SetRobots(&body)
	}
	if t.blockerOn.get(i) {
		site.SetBlocker(world.blockers[world.activeBlockerID(m)].blocker)
	}

	var d MonthMetrics
	for r := range world.roster {
		rc := &world.roster[r]
		if rc.spec.SiteLimit > 0 && i >= rc.spec.SiteLimit {
			continue
		}
		k, due := waveIndex(rc.spec, m)
		if !due {
			continue
		}
		cr, err := crawler.New(w.hotNW, crawler.Profile{
			Token:    rc.spec.Token,
			SourceIP: rc.sourceIP,
			Behavior: rc.behavior,
			MaxPages: world.sp.MaxPagesPerCrawl,
		})
		if err != nil {
			return err
		}
		cr.AdvanceVisits(k)
		if rc.spec.SinglePage {
			if _, _, err := cr.FetchOne(ctx, site.URL()+"/about.html"); err != nil {
				return err
			}
		} else if _, err := cr.Crawl(ctx, site.URL()); err != nil {
			return err
		}
		mCrawlWaves.Inc()
		d.Visits++
		t.waves[i]++
	}

	restricts, parsed := world.restrictsFunc(t.policyID[i])
	windowEv := make(map[string]measure.Evidence)
	absorbWindow(site.Log(), parsed, restricts, &d, windowEv)
	for tok, ev := range windowEv {
		d.ClassCounts[measure.ClassifyEvidence(ev)]++
		w.evidence[tok] = w.evidence[tok].Merge(ev)
	}
	w.monthStateCounters(i, m, &d)
	w.months[m].add(d)
	return nil
}

// monthStateCounters records the flush-time policy-state tallies for
// site i from columnar state — the same counters the full engine's
// flush derives from its per-site struct.
func (w *tierWorker) monthStateCounters(i, m int, d *MonthMetrics) {
	t, world := w.tail, w.world
	if t.adopted.get(i) {
		d.AdoptedSites++
		if t.managed.get(i) {
			d.ManagedSites++
		}
		announced := world.announced[m]
		covered := announced // wildcard and managed lists track everything
		if t.perAgent.get(i) && !t.managed.get(i) {
			covered = int(t.frozen[i])
			if covered > announced {
				covered = announced
			}
		}
		if announced > 0 {
			d.GapMissing += announced - covered
			d.GapAnnounced += announced
		}
		d.GapSites++
	}
	if t.blockerOn.get(i) {
		d.ActiveBlockers++
	}
}
