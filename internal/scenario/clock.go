package scenario

import (
	"container/heap"
	"context"
	"time"

	"repro/internal/obs"
)

// Event priorities: everything scheduled for the same virtual month runs
// in priority order, ties broken by scheduling sequence, so the timeline
// is deterministic regardless of how events were enqueued. Policy
// changes land before the blocking toggle, both land before any crawl
// traffic, and the month's metrics flush observes the settled state.
const (
	prioPolicy = iota
	prioBlocking
	prioVisit
	prioFlush
)

// clock is the virtual monthly clock of one site simulation.
type clock struct {
	start time.Time
	month int
}

// date returns the current virtual date.
func (c *clock) date() time.Time { return c.start.AddDate(0, c.month, 0) }

// eventFn handles one event at its virtual date. Handlers may schedule
// follow-up events (a crawl wave enqueues the next visit on its
// cadence).
type eventFn func(now time.Time) error

type event struct {
	month int
	prio  int
	seq   int
	fn    eventFn
}

// eventQueue is a deterministic discrete-event queue ordered by
// (month, priority, scheduling sequence).
type eventQueue struct {
	h   eventHeap
	seq int
}

// schedule enqueues fn at the given virtual month and priority. Events
// scheduled beyond the horizon are dropped by run.
func (q *eventQueue) schedule(month, prio int, fn eventFn) {
	q.seq++
	heap.Push(&q.h, &event{month: month, prio: prio, seq: q.seq, fn: fn})
}

// run drains the queue in timeline order, advancing clk to each event's
// month, until the queue is empty or an event falls at or beyond the
// horizon month. Cancellation is checked between events.
func (q *eventQueue) run(ctx context.Context, clk *clock, horizon int) error {
	// Month boundaries are monotone within one site's queue, so the real
	// time between them is this site's wall-clock cost of that month.
	var lastBoundary time.Time
	if obs.Enabled() {
		lastBoundary = time.Now()
	}
	for q.h.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		ev := heap.Pop(&q.h).(*event)
		if ev.month >= horizon {
			continue
		}
		if ev.month > clk.month && !lastBoundary.IsZero() {
			now := time.Now()
			mMonthWallNS.Observe(uint64(now.Sub(lastBoundary)))
			lastBoundary = now
		}
		clk.month = ev.month
		mEvents.Inc()
		if err := ev.fn(clk.date()); err != nil {
			return err
		}
	}
	if !lastBoundary.IsZero() {
		mMonthWallNS.ObserveSince(lastBoundary)
	}
	return nil
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].month != h[j].month {
		return h[i].month < h[j].month
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
