package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/measure"
)

// testSpec is a small world exercising every engine feature: calibrated
// adoption, managed uptake, a blocking rollout with monthly refreshes,
// and a mid-run rogue arrival.
func testSpec() Spec {
	return Spec{
		Name:   "engine-test",
		Seed:   99,
		Sites:  10,
		Months: 10,
		Adoption: AdoptionSpec{
			Source:     SourceCorpusOther,
			Multiplier: 6,
		},
		Manager:  ManagerSpec{Uptake: 0.5},
		Blocking: BlockingSpec{Share: 0.5, StartMonth: 3, RefreshMonthly: true},
		Crawlers: []CrawlerSpec{
			{Token: "GPTBot", Behavior: "compliant", Cadence: 1},
			{Token: "Bytespider", Behavior: "fetch-ignore", Cadence: 2},
			{Token: "Scrapezilla", Behavior: "no-fetch", Cadence: 1, FirstMonth: 5},
		},
		MaxPagesPerCrawl: 4,
	}
}

func TestWorkerParity(t *testing.T) {
	ctx := context.Background()
	var outputs [][]byte
	for _, workers := range []int{1, 4, 8} {
		res, err := Run(ctx, testSpec(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, b)
	}
	for i := 1; i < len(outputs); i++ {
		if string(outputs[i]) != string(outputs[0]) {
			t.Fatalf("results differ between worker counts:\n%s\nvs\n%s",
				outputs[0], outputs[i])
		}
	}
}

func TestBaselineReplayMatchesMeasure(t *testing.T) {
	ctx := context.Background()
	seed := int64(20251028)
	sim, err := Run(ctx, Baseline(seed), 4)
	if err != nil {
		t.Fatal(err)
	}
	passive, err := measure.RunPassive(ctx, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Verdicts) != len(passive.Verdicts) {
		t.Fatalf("simulated %d crawlers (%v), measured %d (%v)",
			len(sim.Verdicts), sim.Tokens(), len(passive.Verdicts), passive.Visitors)
	}
	for tok, want := range passive.Verdicts {
		if got, ok := sim.Verdicts[tok]; !ok || got != want {
			t.Errorf("%s: scenario verdict = %v, measured = %v", tok, got, want)
		}
	}
}

func TestRogueCrawlerEvadesBlocklists(t *testing.T) {
	ctx := context.Background()
	spec := RogueCrawler(7, 16, 24)
	spec.Adoption.Multiplier = 6      // enough adopters at this tiny scale
	spec.Adoption.PerAgentShare = 0.4 // ensure some blanket-wildcard adopters
	res, err := Run(ctx, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Verdicts["Scrapezilla"]; v != measure.NotFetched {
		t.Errorf("rogue verdict = %v, want %v", v, measure.NotFetched)
	}
	// The rogue joins at months/2; no no-fetch windows can precede its
	// arrival (the rest of the fleet requests robots.txt), and some must
	// follow on adopted sites.
	var before, after int
	for _, m := range res.Months {
		ev := m.ClassCounts[measure.NotFetched] + m.ClassCounts[measure.Anomalous]
		if m.Month < 12 {
			before += ev
		} else {
			after += ev
		}
	}
	if before != 0 {
		t.Errorf("no-fetch windows before the rogue joined: %d", before)
	}
	if after == 0 {
		t.Error("rogue never produced a no-fetch classification window")
	}
	// Announced crawlers are blocked on blocking sites, so some requests
	// must have been denied; the rogue is not on any rule list.
	total := 0
	for _, m := range res.Months {
		total += m.BlockedRequests
	}
	if total == 0 {
		t.Error("blocking rollout never denied a request")
	}
}

func TestManagedUptakeClosesCoverageGap(t *testing.T) {
	ctx := context.Background()
	gapAt := func(uptake float64) float64 {
		spec := ManagedUptake(11, 12, 24, uptake)
		spec.Adoption.Multiplier = 6
		res, err := Run(ctx, spec, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res.Months[len(res.Months)-1].StaticGap()
	}
	none := gapAt(0)
	full := gapAt(1)
	if none <= 0 {
		t.Errorf("hand-maintained world has no coverage gap (%.3f); announcements should outrun frozen lists", none)
	}
	if full != 0 {
		t.Errorf("fully managed world still has a gap: %.3f", full)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testSpec(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSpecValidation(t *testing.T) {
	base := testSpec()
	bad := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Sites = 0 },
		func(s *Spec) { s.Months = 0 },
		func(s *Spec) { s.Months = maxMonths + 1 },
		func(s *Spec) { s.Start = "yesterday" },
		func(s *Spec) { s.Crawlers = nil },
		func(s *Spec) { s.Crawlers[0].Token = "" },
		func(s *Spec) { s.Crawlers[0].Behavior = "polite" },
		func(s *Spec) { s.Crawlers[0].Cadence = -1 },
		func(s *Spec) { s.Crawlers[0].FirstMonth = 5; s.Crawlers[0].LastMonth = 3 },
		func(s *Spec) { s.Crawlers[0].FirstMonth = s.Months },
		func(s *Spec) { s.Blocking = BlockingSpec{Share: 0.5, StartMonth: s.Months} },
		func(s *Spec) { s.Adoption.Source = "martian" },
		func(s *Spec) { s.Adoption.Source = SourceNone; s.Adoption.Curve = []float64{0.2} },
		func(s *Spec) { s.Adoption.Curve = []float64{0.5, 0.2} },
		func(s *Spec) { s.Adoption.Curve = []float64{1.5} },
		func(s *Spec) { s.Manager.Uptake = 1.5 },
		func(s *Spec) { s.Blocking.Share = -0.1 },
		func(s *Spec) { s.Blocking.StartMonth = -2 },
	}
	for i, mutate := range bad {
		s := base
		s.Crawlers = append([]CrawlerSpec(nil), base.Crawlers...)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: invalid spec passed validation", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	want := testSpec()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.CacheKey() != want.CacheKey() {
		t.Fatalf("round trip changed the spec:\n%s\nvs\n%s", got.CacheKey(), want.CacheKey())
	}
	// Unknown fields are typos in counterfactual knobs; reject them.
	if _, err := ParseSpec([]byte(`{"name":"x","sites":1,"months":1,"crawler":[]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestBuiltins(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Builtins() {
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate builtin name %s", s.Name)
		}
		seen[s.Name] = true
		if got, ok := BuiltinByName(s.Name); !ok || got.Name != s.Name {
			t.Errorf("BuiltinByName(%s) missing", s.Name)
		}
	}
	if _, ok := BuiltinByName("no-such-world"); ok {
		t.Error("unknown builtin resolved")
	}
}

func TestMonthlyCurve(t *testing.T) {
	s := Spec{
		Name: "c", Sites: 1, Months: 26, Start: "2022-10",
		Adoption: AdoptionSpec{Source: SourceCorpusOther},
		Crawlers: []CrawlerSpec{{Token: "GPTBot"}},
	}
	curve := s.withDefaults().monthlyCurve()
	prev := 0.0
	for m, v := range curve {
		if v < prev {
			t.Fatalf("curve decreases at month %d", m)
		}
		prev = v
	}
	if curve[0] <= 0 || curve[len(curve)-1] <= curve[0] {
		t.Fatalf("corpus resample looks wrong: %v", curve)
	}
	// The multiplier scales but saturates.
	s.Adoption.Multiplier = 1000
	for m, v := range s.withDefaults().monthlyCurve() {
		if v > 0.98 {
			t.Fatalf("month %d exceeds the saturation cap: %v", m, v)
		}
	}
	// Explicit curves hold their last value.
	s.Adoption.Multiplier = 0
	s.Adoption.Curve = []float64{0.1, 0.4}
	curve = s.withDefaults().monthlyCurve()
	if curve[0] != 0.1 || curve[1] != 0.4 || curve[25] != 0.4 {
		t.Fatalf("explicit curve misresampled: %v", curve)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var got []string
	q := &eventQueue{}
	log := func(name string) eventFn {
		return func(time.Time) error { got = append(got, name); return nil }
	}
	q.schedule(1, prioVisit, log("m1-visit"))
	q.schedule(0, prioFlush, log("m0-flush"))
	q.schedule(1, prioPolicy, log("m1-policy"))
	q.schedule(0, prioVisit, log("m0-visit-a"))
	q.schedule(0, prioVisit, log("m0-visit-b"))
	q.schedule(5, prioVisit, log("beyond-horizon"))
	clk := &clock{start: time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC)}
	if err := q.run(context.Background(), clk, 5); err != nil {
		t.Fatal(err)
	}
	want := []string{"m0-visit-a", "m0-visit-b", "m0-flush", "m1-policy", "m1-visit"}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ran %v, want %v", got, want)
		}
	}
	if clk.month != 1 || clk.date().Month() != time.November {
		t.Fatalf("clock ended at month %d (%v)", clk.month, clk.date())
	}
}
