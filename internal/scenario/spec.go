// Package scenario is a discrete-event simulator for counterfactual
// web-ecosystem experiments (§8 of the paper asks them as open
// questions): what if more sites adopted AI-restricting robots.txt, what
// if a new non-compliant crawler appeared mid-study, what if managed
// robots.txt services or active-blocking providers were more widely
// deployed?
//
// A Spec declares one such world: N sites whose policy-adoption
// schedules are drawn from the corpus-calibrated distributions, a
// crawler roster with per-company revisit cadences and mid-run
// mutations, managed-robots uptake, and an active-blocking rollout. The
// engine composes the existing substrates over a virtual monthly clock —
// every site is a real instrumented webserver on an in-memory netsim
// network, every crawler speaks real HTTP, and all metrics derive from
// the server logs alone, exactly like internal/measure. Runs are
// deterministic: identical specs are bit-identical at any worker count.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/stats"
)

// DefaultStart is the first month of the simulated window, aligned with
// the paper's first corpus snapshot (October 2022) so user-agent
// announcement dates fall inside the run.
const DefaultStart = "2022-10"

// maxMonths bounds a run's virtual duration (ten years).
const maxMonths = 120

// Spec declares one counterfactual world. The zero value is not
// runnable; fill the fields or start from a builtin (Builtins) and
// override. Specs serialize to JSON for cmd/scenario.
type Spec struct {
	// Name identifies the scenario in output and cache keys.
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Seed drives all randomness; 0 means stats.DefaultSeed.
	Seed int64 `json:"seed,omitempty"`
	// Sites is the ecosystem size (hundreds to thousands).
	Sites int `json:"sites"`
	// Months is the virtual duration in monthly ticks.
	Months int `json:"months"`
	// Start is the first virtual month, "YYYY-MM"; empty means
	// DefaultStart.
	Start string `json:"start,omitempty"`
	// Adoption schedules when sites adopt AI-restricting robots.txt.
	Adoption AdoptionSpec `json:"adoption"`
	// Crawlers is the fleet roster, including mid-run arrivals.
	Crawlers []CrawlerSpec `json:"crawlers"`
	// Manager controls managed-robots.txt service uptake.
	Manager ManagerSpec `json:"manager"`
	// Blocking controls the active-blocking provider rollout.
	Blocking BlockingSpec `json:"blocking"`
	// MaxPagesPerCrawl bounds each crawl wave; 0 means 6.
	MaxPagesPerCrawl int `json:"max_pages_per_crawl,omitempty"`
}

// Adoption curve sources.
const (
	// SourceCorpusOther draws adoption times from the corpus curve for
	// non-top-tier sites (the default).
	SourceCorpusOther = "corpus-other"
	// SourceCorpusTop5k draws from the Stable Top 5k curve.
	SourceCorpusTop5k = "corpus-top5k"
	// SourceMeasurement replays the paper's §5.1 measurement deployment:
	// every site adopts at month 0, alternating the wildcard-disallow and
	// per-agent-disallow policies of the two instrumented sites.
	SourceMeasurement = "measurement"
	// SourceNone disables adoption (no site ever restricts).
	SourceNone = "none"
)

// AdoptionSpec schedules robots.txt adoption across the site population.
type AdoptionSpec struct {
	// Source selects a named curve (see the Source constants); empty
	// means SourceCorpusOther. Ignored when Curve is set.
	Source string `json:"source,omitempty"`
	// Curve, when non-empty, is the cumulative fraction of sites that
	// have adopted by each month index. Values must be non-decreasing in
	// [0, 1]; shorter curves hold their last value.
	Curve []float64 `json:"curve,omitempty"`
	// Multiplier scales the curve (capped at 0.98), expressing "what if
	// k× more sites adopted"; 0 means 1.
	Multiplier float64 `json:"multiplier,omitempty"`
	// PerAgentShare is the fraction of adopters that write per-agent
	// rule lists (whose coverage decays as new agents are announced)
	// rather than a blanket wildcard disallow; 0 means 0.85.
	PerAgentShare float64 `json:"per_agent_share,omitempty"`
}

// CrawlerSpec is one fleet member.
type CrawlerSpec struct {
	// Token is the product token (robots.txt user agent).
	Token string `json:"token"`
	// Behavior is the robots.txt compliance mode: "compliant",
	// "fetch-ignore", "no-fetch", "buggy-fetch", or "intermittent-fetch".
	// Empty means "compliant".
	Behavior string `json:"behavior,omitempty"`
	// SourceIP overrides the dial address; empty derives it from the
	// agent registry (or synthesizes a stable pool for unknown tokens).
	SourceIP string `json:"source_ip,omitempty"`
	// Cadence is the revisit interval in months; 0 means 1 (monthly).
	Cadence int `json:"cadence_months,omitempty"`
	// FirstMonth is when the crawler joins the fleet (0 = from the
	// start). Rogue-crawler counterfactuals set this mid-run.
	FirstMonth int `json:"first_month,omitempty"`
	// LastMonth is the final month the crawler is active; 0 means it
	// stays until the end.
	LastMonth int `json:"last_month,omitempty"`
	// SinglePage fetches one content page per visit (assistant style)
	// instead of a breadth-first crawl.
	SinglePage bool `json:"single_page,omitempty"`
	// MaxVisits bounds total visits per site; 0 means unlimited.
	MaxVisits int `json:"max_visits,omitempty"`
	// SiteLimit restricts the crawler to the first k sites; 0 means all.
	SiteLimit int `json:"site_limit,omitempty"`
}

// ManagerSpec controls managed robots.txt service uptake (§2.2, §8.1).
type ManagerSpec struct {
	// Uptake is the fraction of adopting sites that delegate their rule
	// list to a managed service, which tracks agent announcements
	// automatically; the rest freeze a hand-written list at adoption.
	Uptake float64 `json:"uptake,omitempty"`
}

// BlockingSpec controls the active-blocking provider rollout (§6).
type BlockingSpec struct {
	// Share is the fraction of sites behind the blocking provider.
	Share float64 `json:"share,omitempty"`
	// StartMonth is when the provider enables AI blocking.
	StartMonth int `json:"start_month,omitempty"`
	// RefreshMonthly updates the provider's user-agent rule list every
	// month as agents are announced; false freezes it at StartMonth,
	// reproducing the stale-rule-list gap.
	RefreshMonthly bool `json:"refresh_monthly,omitempty"`
}

// behaviorNames maps spec strings to crawler behaviours, using the same
// names crawler.Behavior.String produces.
var behaviorNames = map[string]crawler.Behavior{
	"":                   crawler.Compliant,
	"compliant":          crawler.Compliant,
	"fetch-ignore":       crawler.FetchIgnore,
	"no-fetch":           crawler.NoFetch,
	"buggy-fetch":        crawler.BuggyFetch,
	"intermittent-fetch": crawler.IntermittentFetch,
}

// ParseSpec decodes and validates a JSON spec. Unknown fields are
// rejected so typos in counterfactual knobs fail loudly.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads and validates a JSON spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return ParseSpec(data)
}

// Validate checks the spec for runnability.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if s.Sites < 1 {
		return fmt.Errorf("scenario %s: sites must be >= 1", s.Name)
	}
	if s.Months < 1 || s.Months > maxMonths {
		return fmt.Errorf("scenario %s: months must be in [1, %d]", s.Name, maxMonths)
	}
	if s.Start != "" {
		if _, err := time.Parse("2006-01", s.Start); err != nil {
			return fmt.Errorf("scenario %s: bad start %q (want YYYY-MM)", s.Name, s.Start)
		}
	}
	if len(s.Crawlers) == 0 {
		return fmt.Errorf("scenario %s: roster is empty", s.Name)
	}
	for i, c := range s.Crawlers {
		if c.Token == "" {
			return fmt.Errorf("scenario %s: crawler %d has no token", s.Name, i)
		}
		if _, ok := behaviorNames[c.Behavior]; !ok {
			return fmt.Errorf("scenario %s: crawler %s: unknown behavior %q",
				s.Name, c.Token, c.Behavior)
		}
		if c.Cadence < 0 || c.FirstMonth < 0 || c.LastMonth < 0 ||
			c.MaxVisits < 0 || c.SiteLimit < 0 {
			return fmt.Errorf("scenario %s: crawler %s: negative schedule field", s.Name, c.Token)
		}
		if c.LastMonth != 0 && c.LastMonth < c.FirstMonth {
			return fmt.Errorf("scenario %s: crawler %s: last_month %d precedes first_month %d",
				s.Name, c.Token, c.LastMonth, c.FirstMonth)
		}
		if c.FirstMonth >= s.Months {
			return fmt.Errorf("scenario %s: crawler %s: first_month %d is beyond the %d-month run",
				s.Name, c.Token, c.FirstMonth, s.Months)
		}
	}
	switch s.Adoption.Source {
	case "", SourceCorpusOther, SourceCorpusTop5k:
	case SourceMeasurement, SourceNone:
		if len(s.Adoption.Curve) > 0 {
			return fmt.Errorf("scenario %s: adoption source %q pins the schedule structurally and cannot combine with an explicit curve",
				s.Name, s.Adoption.Source)
		}
	default:
		return fmt.Errorf("scenario %s: unknown adoption source %q", s.Name, s.Adoption.Source)
	}
	prev := 0.0
	for i, v := range s.Adoption.Curve {
		if v < 0 || v > 1 || v < prev {
			return fmt.Errorf("scenario %s: adoption curve must be non-decreasing in [0,1] (index %d)", s.Name, i)
		}
		prev = v
	}
	for name, v := range map[string]float64{
		"adoption.multiplier":      s.Adoption.Multiplier,
		"adoption.per_agent_share": s.Adoption.PerAgentShare,
		"manager.uptake":           s.Manager.Uptake,
		"blocking.share":           s.Blocking.Share,
	} {
		if v < 0 || (v > 1 && name != "adoption.multiplier") {
			return fmt.Errorf("scenario %s: %s out of range", s.Name, name)
		}
	}
	if s.Blocking.StartMonth < 0 || s.MaxPagesPerCrawl < 0 {
		return fmt.Errorf("scenario %s: negative field", s.Name)
	}
	if s.Blocking.Share > 0 && s.Blocking.StartMonth >= s.Months {
		return fmt.Errorf("scenario %s: blocking start_month %d is beyond the %d-month run",
			s.Name, s.Blocking.StartMonth, s.Months)
	}
	return nil
}

// CacheKey returns a deterministic identity string covering every field,
// used by the core Env substrate cache.
func (s Spec) CacheKey() string {
	b, _ := json.Marshal(s)
	return string(b)
}

// withDefaults returns a copy with zero-value knobs resolved.
func (s Spec) withDefaults() Spec {
	if s.Seed == 0 {
		s.Seed = stats.DefaultSeed
	}
	if s.Start == "" {
		s.Start = DefaultStart
	}
	if s.Adoption.Source == "" {
		s.Adoption.Source = SourceCorpusOther
	}
	if s.Adoption.Multiplier == 0 {
		s.Adoption.Multiplier = 1
	}
	if s.Adoption.PerAgentShare == 0 {
		s.Adoption.PerAgentShare = 0.85
	}
	if s.MaxPagesPerCrawl == 0 {
		s.MaxPagesPerCrawl = 6
	}
	out := make([]CrawlerSpec, len(s.Crawlers))
	for i, c := range s.Crawlers {
		if c.Behavior == "" {
			c.Behavior = "compliant"
		}
		if c.Cadence == 0 {
			c.Cadence = 1
		}
		if c.LastMonth == 0 {
			c.LastMonth = s.Months - 1
		}
		out[i] = c
	}
	s.Crawlers = out
	return s
}

// startDate parses the (defaulted) start month.
func (s Spec) startDate() time.Time {
	t, err := time.Parse("2006-01", s.Start)
	if err != nil {
		t, _ = time.Parse("2006-01", DefaultStart)
	}
	return t
}

// monthlyCurve resolves the adoption schedule to one cumulative fraction
// per simulated month.
func (s Spec) monthlyCurve() []float64 {
	out := make([]float64, s.Months)
	switch {
	case len(s.Adoption.Curve) > 0:
		last := 0.0
		for m := range out {
			if m < len(s.Adoption.Curve) {
				last = s.Adoption.Curve[m]
			}
			out[m] = last
		}
	case s.Adoption.Source == SourceNone || s.Adoption.Source == SourceMeasurement:
		// Handled structurally by the engine; the curve is unused.
		return out
	default:
		// Resample the snapshot-indexed corpus curve onto the monthly
		// clock: each month holds the most recent snapshot's value.
		curve := corpus.AdoptionCurve(s.Adoption.Source == SourceCorpusTop5k)
		start := s.startDate()
		for m := range out {
			date := start.AddDate(0, m, 0)
			v := 0.0
			for i, snap := range corpus.Snapshots {
				if !snap.Date.After(date) {
					v = curve[i]
				}
			}
			out[m] = v
		}
	}
	mult := s.Adoption.Multiplier
	if mult == 0 {
		mult = 1
	}
	for m, v := range out {
		v *= mult
		if v > 0.98 {
			v = 0.98
		}
		out[m] = v
	}
	return out
}

// DefaultFleet returns the crawler roster of the paper's observed world:
// the eight crawlers the passive study saw visit unprompted (§5.2.1),
// with their measured behaviours and plausible per-company cadences.
func DefaultFleet() []CrawlerSpec {
	return []CrawlerSpec{
		{Token: "Amazonbot", Behavior: "compliant", Cadence: 2},
		{Token: "Applebot", Behavior: "compliant", Cadence: 3},
		{Token: "Bytespider", Behavior: "fetch-ignore", Cadence: 1},
		{Token: "CCBot", Behavior: "compliant", Cadence: 2},
		{Token: "ClaudeBot", Behavior: "compliant", Cadence: 1},
		{Token: "GPTBot", Behavior: "compliant", Cadence: 1},
		{Token: "Meta-ExternalAgent", Behavior: "compliant", Cadence: 2},
		{Token: "OAI-SearchBot", Behavior: "compliant", Cadence: 3},
	}
}

// Baseline replays the paper's observed §5.1 world: the two instrumented
// measurement sites (wildcard-disallow and per-agent-disallow), one
// crawl wave per passive visitor, and ChatGPT-User's single anomalous
// content visit. Classifying its simulated logs must reproduce the seed
// measurement's Table 1 verdict classes.
func Baseline(seed int64) Spec {
	fleet := DefaultFleet()
	for i := range fleet {
		// One wave each, as in the six-month passive study's evidence.
		fleet[i].Cadence = 6
		fleet[i].MaxVisits = 1
	}
	fleet = append(fleet, CrawlerSpec{
		Token:      "ChatGPT-User",
		Behavior:   "no-fetch",
		SinglePage: true,
		MaxVisits:  1,
		SiteLimit:  1,
		Cadence:    6,
	})
	return Spec{
		Name:        "baseline-replay",
		Description: "the paper's observed world: two instrumented sites, the passive-study fleet",
		Seed:        seed,
		Sites:       2,
		Months:      6,
		Adoption:    AdoptionSpec{Source: SourceMeasurement},
		Crawlers:    fleet,
		// The passive study's crawlers walked the whole measurement site.
		MaxPagesPerCrawl: 32,
	}
}

// Observed is the observed-world counterfactual anchor: adoption follows
// the corpus-calibrated curve, the fleet is the passive-study roster.
func Observed(seed int64, sites, months int) Spec {
	return Spec{
		Name:        "observed-world",
		Description: "corpus-calibrated adoption, the observed crawler fleet",
		Seed:        seed,
		Sites:       sites,
		Months:      months,
		Adoption:    AdoptionSpec{Source: SourceCorpusOther},
		Crawlers:    DefaultFleet(),
	}
}

// HighAdoption asks §8's first what-if: the same world with a k× steeper
// policy-adoption curve.
func HighAdoption(seed int64, sites, months int, multiplier float64) Spec {
	s := Observed(seed, sites, months)
	s.Name = "high-adoption"
	s.Description = fmt.Sprintf("counterfactual: %gx robots.txt adoption", multiplier)
	s.Adoption.Multiplier = multiplier
	return s
}

// RogueCrawler adds a Bytespider-like non-complier that appears mid-run,
// too new for any rule list, with an aggressive monthly cadence.
func RogueCrawler(seed int64, sites, months int) Spec {
	s := Observed(seed, sites, months)
	s.Name = "rogue-crawler"
	s.Description = "counterfactual: an undocumented non-compliant crawler joins mid-run"
	s.Blocking = BlockingSpec{Share: 0.3, StartMonth: months / 4, RefreshMonthly: true}
	s.Crawlers = append(s.Crawlers, CrawlerSpec{
		Token:      "Scrapezilla",
		Behavior:   "no-fetch",
		Cadence:    1,
		FirstMonth: months / 2,
	})
	return s
}

// ManagedUptake sweeps managed-robots.txt service adoption: at uptake u,
// that fraction of adopting sites track announcements automatically
// while the rest freeze hand-written lists.
func ManagedUptake(seed int64, sites, months int, uptake float64) Spec {
	s := Observed(seed, sites, months)
	s.Name = fmt.Sprintf("managed-uptake-%02.0f", 100*uptake)
	s.Description = fmt.Sprintf("counterfactual: %.0f%% of adopters use a managed robots.txt service", 100*uptake)
	// Hand-written per-agent lists everywhere makes the coverage gap the
	// headline metric.
	s.Adoption.PerAgentShare = 1
	s.Manager.Uptake = uptake
	// The gap metric needs no traffic; a lean fleet keeps sweeps cheap.
	s.Crawlers = []CrawlerSpec{
		{Token: "GPTBot", Behavior: "compliant", Cadence: 3},
		{Token: "Bytespider", Behavior: "fetch-ignore", Cadence: 3},
	}
	return s
}

// Builtins returns the named built-in specs cmd/scenario exposes, in
// stable order. Sizes here are standalone-friendly defaults; the core
// experiments scale them with the engine config.
func Builtins() []Spec {
	seed := stats.DefaultSeed
	return []Spec{
		Baseline(seed),
		Observed(seed, 120, 24),
		HighAdoption(seed, 120, 24, 4),
		RogueCrawler(seed, 120, 24),
		ManagedUptake(seed, 120, 24, 0.5),
	}
}

// BuiltinByName resolves one built-in spec.
func BuiltinByName(name string) (Spec, bool) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
